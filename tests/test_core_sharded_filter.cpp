// ShardedFilter: the shard-partition invariant and the equivalence
// property the multi-core datapath stands on — an N-shard filter makes,
// per flow, exactly the decisions a single-shard engine makes when fed
// the same per-shard substream with the same derived seed. Equivalence is
// structural (no shared state, deterministic seed derivation), so any
// divergence here means cross-shard state leaked in.

#include "core/sharded_filter.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace mafic::core {
namespace {

constexpr std::uint64_t kSeed = 20260729;

MaficConfig test_config() {
  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation windows
  cfg.probe_enabled = true;
  cfg.drop_probability = 0.9;
  return cfg;
}

sim::Packet packet_for(std::uint32_t flow) {
  sim::Packet p;
  p.label = {util::make_addr(172, 16, (flow >> 8) & 0xff, flow & 0xff),
             util::make_addr(172, 17, 0, 1), std::uint16_t(1024 + flow),
             80};
  p.proto = sim::Protocol::kTcp;
  p.size_bytes = 1000;
  return p;
}

/// A scripted workload: `flows` flows, mixed behaviors (steady fast,
/// rate-halving, trickle, stopping), delivered in global time order as
/// (time, packet) pairs.
struct Workload {
  std::vector<std::pair<double, sim::Packet>> events;
};

Workload make_workload(std::uint32_t flows) {
  Workload w;
  for (std::uint32_t i = 0; i < flows; ++i) {
    const double phase = 1e-4 * double(i);
    const auto send = [&](double t) {
      w.events.emplace_back(t + phase, packet_for(i));
    };
    switch (i % 4) {
      case 0:  // steady fast
        for (double t = 0.01; t < 0.5; t += 0.004) send(t);
        break;
      case 1:  // halves its rate mid-probation
        for (double t = 0.01; t < 0.05; t += 0.004) send(t);
        for (double t = 0.05; t < 0.5; t += 0.008) send(t);
        break;
      case 2:  // trickle
        for (double t = 0.02; t < 0.5; t += 0.09) send(t);
        break;
      case 3:  // stops mid-probation
        for (double t = 0.01; t < 0.055; t += 0.004) send(t);
        break;
    }
  }
  std::stable_sort(w.events.begin(), w.events.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  return w;
}

struct FlowOutcome {
  TableKind dest = TableKind::kNone;
  std::uint32_t baseline = 0;
  std::uint32_t probe = 0;

  friend bool operator==(const FlowOutcome&, const FlowOutcome&) = default;
};

TEST(ShardedFilter, PartitionCoversAllShardsAndIsStable) {
  MaficConfig cfg = test_config();
  ShardedFilter filter(8, cfg, nullptr, kSeed);
  std::vector<std::size_t> hits(8, 0);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const sim::Packet p = packet_for(i);
    const std::size_t s = filter.shard_for(p);
    ASSERT_LT(s, 8u);
    ASSERT_EQ(s, filter.shard_for(p));  // stable
    ++hits[s];
  }
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_GT(hits[s], 4096u / 16) << "shard " << s << " starved";
  }
}

TEST(ShardedFilter, NShardDecisionsMatchSingleShardSubstreams) {
  constexpr std::size_t kShards = 4;
  constexpr std::uint32_t kFlows = 96;
  const MaficConfig cfg = test_config();
  const Workload w = make_workload(kFlows);
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};

  // --- the N-shard run: every packet routed to its home shard ---------
  ShardedFilter sharded(kShards, cfg, nullptr, kSeed);
  sharded.activate(victims);
  std::map<std::uint64_t, FlowOutcome> sharded_outcomes;
  for (std::size_t s = 0; s < kShards; ++s) {
    sharded.engine(s).set_classification_callback(
        [&, s](const SftEntry& e, TableKind dest) {
          // Partition invariant: a shard only ever resolves its own keys.
          EXPECT_EQ(sharded.shard_of(e.key), s);
          sharded_outcomes[e.key] =
              FlowOutcome{dest, e.baseline_count, e.probe_count};
        });
  }
  std::vector<std::vector<std::pair<double, sim::Packet>>> substreams(
      kShards);
  std::map<std::uint64_t, EngineVerdict> last_verdict_sharded;
  for (const auto& [t, p] : w.events) {
    sharded.advance_until(t);
    const std::size_t s = sharded.shard_for(p);
    substreams[s].emplace_back(t, p);
    last_verdict_sharded[sim::hash_label(p.label)] = sharded.inspect(p);
  }
  sharded.advance_until(1.0);

  // --- replay each substream into a fresh single-shard engine ---------
  // Seeded with the same derived stream, driven only by its own packets:
  // per-shard state must be byte-equivalent, so outcomes must match.
  std::map<std::uint64_t, FlowOutcome> solo_outcomes;
  std::map<std::uint64_t, EngineVerdict> last_verdict_solo;
  for (std::size_t s = 0; s < kShards; ++s) {
    EngineRuntime solo(cfg, nullptr,
                       util::Rng(ShardedFilter::shard_seed(kSeed, s)));
    solo.engine().activate(victims);
    solo.engine().set_classification_callback(
        [&](const SftEntry& e, TableKind dest) {
          solo_outcomes[e.key] =
              FlowOutcome{dest, e.baseline_count, e.probe_count};
        });
    for (const auto& [t, p] : substreams[s]) {
      solo.advance_until(t);
      last_verdict_solo[sim::hash_label(p.label)] = solo.engine().inspect(p);
    }
    solo.advance_until(1.0);

    EXPECT_EQ(solo.engine().tables().nft_size(),
              sharded.engine(s).tables().nft_size())
        << "shard " << s;
    EXPECT_EQ(solo.engine().tables().pdt_size(),
              sharded.engine(s).tables().pdt_size())
        << "shard " << s;
    EXPECT_EQ(solo.engine().stats().dropped_probation,
              sharded.engine(s).stats().dropped_probation)
        << "shard " << s;
    EXPECT_EQ(solo.probes().probes_sent(),
              sharded.shard(s).probes().probes_sent())
        << "shard " << s;
  }

  // Per-flow: destination table, both half-window counts, and the final
  // verdict each flow saw must be identical.
  ASSERT_EQ(sharded_outcomes.size(), solo_outcomes.size());
  EXPECT_EQ(sharded_outcomes.size(), kFlows);
  for (const auto& [key, outcome] : sharded_outcomes) {
    ASSERT_TRUE(solo_outcomes.contains(key));
    EXPECT_EQ(solo_outcomes.at(key), outcome);
  }
  ASSERT_EQ(last_verdict_sharded.size(), last_verdict_solo.size());
  for (const auto& [key, v] : last_verdict_sharded) {
    EXPECT_EQ(last_verdict_solo.at(key), v);
  }
}

TEST(ShardedFilter, IndirectBatchMatchesScalarInspect) {
  // Two same-seed filters, one driven packet-by-packet, one in spans
  // through the indirect (burst) inspect_batch: span-ordered
  // classification must produce the identical verdict sequence.
  const MaficConfig cfg = test_config();
  const Workload w = make_workload(48);
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};

  ShardedFilter scalar(4, cfg, nullptr, kSeed);
  ShardedFilter batched(4, cfg, nullptr, kSeed);
  scalar.activate(victims);
  batched.activate(victims);

  std::vector<EngineVerdict> scalar_verdicts;
  std::vector<EngineVerdict> batched_verdicts;
  std::vector<const sim::Packet*> span;
  std::vector<EngineVerdict> span_out;
  std::size_t i = 0;
  while (i < w.events.size()) {
    // Deterministically sized spans (1..13) of same-time-ordered packets.
    const std::size_t n =
        std::min<std::size_t>(1 + (i * 7) % 13, w.events.size() - i);
    const double t = w.events[i + n - 1].first;
    scalar.advance_until(t);
    batched.advance_until(t);
    span.clear();
    for (std::size_t j = 0; j < n; ++j) {
      scalar_verdicts.push_back(scalar.inspect(w.events[i + j].second));
      span.push_back(&w.events[i + j].second);
    }
    span_out.resize(n);
    batched.inspect_batch(span.data(), n, span_out.data());
    batched_verdicts.insert(batched_verdicts.end(), span_out.begin(),
                            span_out.end());
    i += n;
  }
  scalar.advance_until(1.0);
  batched.advance_until(1.0);

  EXPECT_EQ(scalar_verdicts, batched_verdicts);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(scalar.engine(s).tables().nft_size(),
              batched.engine(s).tables().nft_size());
    EXPECT_EQ(scalar.engine(s).tables().pdt_size(),
              batched.engine(s).tables().pdt_size());
  }
}

TEST(ShardedFilter, SameSeedRunsAreIdentical) {
  const MaficConfig cfg = test_config();
  const Workload w = make_workload(32);
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};

  const auto run = [&] {
    ShardedFilter f(4, cfg, nullptr, kSeed);
    f.activate(victims);
    std::vector<EngineVerdict> verdicts;
    for (const auto& [t, p] : w.events) {
      f.advance_until(t);
      verdicts.push_back(f.inspect(p));
    }
    f.advance_until(1.0);
    return verdicts;
  };
  EXPECT_EQ(run(), run());
}

TEST(ShardedFilter, AggregateStatsSumShards) {
  MaficConfig cfg = test_config();
  cfg.drop_probability = 1.0;  // every first sight admits
  ShardedFilter filter(4, cfg, nullptr, kSeed);
  filter.activate({util::make_addr(172, 17, 0, 1)});
  for (std::uint32_t i = 0; i < 256; ++i) {
    const sim::Packet p = packet_for(i);
    filter.inspect(p);
  }
  filter.advance_until(1.0);  // silent flows all resolve nice
  const FilterEngine::Stats agg = filter.aggregate_stats();
  EXPECT_EQ(agg.offered, 256u);
  EXPECT_EQ(agg.dropped_probation, 256u);
  EXPECT_EQ(agg.decided_nice, 256u);
  EXPECT_EQ(filter.resident(), 256u);

  filter.deactivate();
  EXPECT_EQ(filter.resident(), 0u);
  EXPECT_FALSE(filter.active());
}

}  // namespace
}  // namespace mafic::core
