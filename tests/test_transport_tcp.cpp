#include "transport/tcp.hpp"

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/tcp_sink.hpp"

namespace mafic::transport {
namespace {

class TcpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    topology::DumbbellConfig cfg;
    cfg.left_hosts = 1;
    cfg.right_hosts = 1;
    cfg.bottleneck_bandwidth_bps = 5e6;
    cfg.bottleneck_delay_s = 0.02;
    bell = topology::build_dumbbell(*net, cfg);
    src_node = net->node(bell.left_hosts[0]);
    dst_node = net->node(bell.right_hosts[0]);

    sender = std::make_unique<TcpSender>(&sim, &factory, src_node, 5000);
    sink = std::make_unique<TcpSink>(&sim, &factory, dst_node, 80);
    sender->connect(dst_node->addr(), 80);
    sink->connect(src_node->addr(), 5000);
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  topology::Dumbbell bell;
  sim::Node* src_node{};
  sim::Node* dst_node{};
  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpSink> sink;
};

TEST_F(TcpTest, DeliversInOrderStream) {
  sender->start();
  sim.run_until(2.0);
  sender->stop();
  EXPECT_GT(sink->stats().unique_delivered, 100u);
  // Cumulative delivery: everything below rcv_nxt arrived exactly once.
  EXPECT_EQ(sink->rcv_nxt(), sink->stats().unique_delivered + 1);
}

TEST_F(TcpTest, SaturatesBottleneckWithinTwentyPercent) {
  sender->start();
  sim.run_until(3.0);
  // 5 Mb/s bottleneck, 1000-byte packets -> 625 pkt/s. Measure the second
  // half (after slow start).
  const double goodput_pps =
      double(sink->stats().unique_delivered) / 3.0;
  EXPECT_GT(goodput_pps, 0.5 * 625.0);
  EXPECT_LE(goodput_pps, 1.05 * 625.0);
}

TEST_F(TcpTest, SlowStartDoublesWindow) {
  sender->start();
  // After a couple of RTTs (RTT ~ 48ms) cwnd should have grown well past
  // the initial value but the run is too short for saturation losses.
  sim.run_until(0.3);
  EXPECT_GT(sender->cwnd(), 8.0);
  EXPECT_EQ(sender->stats().timeouts, 0u);
}

TEST_F(TcpTest, RttEstimateTracksPathRtt) {
  sender->start();
  sim.run_until(1.0);
  // Path RTT: 2 x (2 + 20 + 2) ms = 48 ms plus queueing.
  EXPECT_GT(sender->srtt(), 0.04);
  EXPECT_LT(sender->srtt(), 0.30);
}

TEST_F(TcpTest, ThreeDupAcksTriggerFastRetransmit) {
  sender->start();
  sim.run_until(0.5);
  const auto before = sender->stats().fast_recoveries;
  const double cwnd_before = sender->cwnd();
  // Inject 3 duplicate ACKs (ack_no = 0 never advances snd_una) — exactly
  // what a MAFIC probe does.
  for (int i = 0; i < 3; ++i) {
    auto p = factory.make();
    p->label = sender->label().reversed();
    p->proto = sim::Protocol::kTcp;
    p->flags = sim::tcp_flags::kAck;
    p->ack_no = 0;
    src_node->send(std::move(p));
  }
  sim.run_until(0.6);
  EXPECT_EQ(sender->stats().fast_recoveries, before + 1);
  EXPECT_LT(sender->cwnd(), cwnd_before);
  EXPECT_GT(sender->stats().retransmits, 0u);
}

TEST_F(TcpTest, FewerThanThreeDupAcksDoNothing) {
  sender->start();
  sim.run_until(0.5);
  const auto before = sender->stats().fast_recoveries;
  for (int i = 0; i < 2; ++i) {
    auto p = factory.make();
    p->label = sender->label().reversed();
    p->proto = sim::Protocol::kTcp;
    p->flags = sim::tcp_flags::kAck;
    p->ack_no = 0;
    src_node->send(std::move(p));
  }
  sim.run_until(0.6);
  EXPECT_EQ(sender->stats().fast_recoveries, before);
}

TEST_F(TcpTest, LossRecoveryViaSinkDupAcks) {
  // Tiny bottleneck queue forces drops; the sink's duplicate ACKs must
  // drive fast retransmits and keep the stream progressing.
  sender->start();
  sim.run_until(3.0);
  EXPECT_GT(sender->stats().fast_recoveries + sender->stats().timeouts, 0u);
  EXPECT_GT(sink->stats().dup_acks_sent, 0u);
  EXPECT_GT(sink->stats().unique_delivered, 500u);
}

TEST_F(TcpTest, StopHaltsTransmission) {
  sender->start();
  sim.run_until(0.5);
  sender->stop();
  const auto sent = sender->stats().data_packets_sent;
  sim.run_until(1.5);
  EXPECT_EQ(sender->stats().data_packets_sent, sent);
}

TEST_F(TcpTest, SinkEchoesTimestamps) {
  sender->start();
  sim.run_until(0.2);
  EXPECT_GT(sink->stats().acks_sent, 0u);
  // The sender derived RTT samples, so the echo worked.
  EXPECT_GT(sender->srtt(), 0.0);
}

TEST_F(TcpTest, SinkBuffersOutOfOrder) {
  // Drive the sink directly: deliver 1, 3, 4, then 2.
  auto data = [&](std::uint32_t seq) {
    auto p = factory.make();
    p->label = sim::FlowLabel{src_node->addr(), dst_node->addr(), 5000, 80};
    p->proto = sim::Protocol::kTcp;
    p->size_bytes = 1000;
    p->seq = seq;
    sink->recv(std::move(p));
  };
  data(1);
  EXPECT_EQ(sink->rcv_nxt(), 2u);
  data(3);
  data(4);
  EXPECT_EQ(sink->rcv_nxt(), 2u);  // gap at 2
  EXPECT_EQ(sink->stats().dup_acks_sent, 2u);
  data(2);  // fills the gap; 3 and 4 drain from the buffer
  EXPECT_EQ(sink->rcv_nxt(), 5u);
  EXPECT_EQ(sink->stats().unique_delivered, 4u);
}

TEST_F(TcpTest, DuplicateDataAcknowledgedNotDoubleCounted) {
  auto data = [&](std::uint32_t seq) {
    auto p = factory.make();
    p->label = sim::FlowLabel{src_node->addr(), dst_node->addr(), 5000, 80};
    p->proto = sim::Protocol::kTcp;
    p->size_bytes = 1000;
    p->seq = seq;
    sink->recv(std::move(p));
  };
  data(1);
  data(1);
  EXPECT_EQ(sink->stats().unique_delivered, 1u);
  EXPECT_EQ(sink->stats().duplicate_data, 1u);
}

TEST_F(TcpTest, SenderIgnoresNonAckPackets) {
  sender->start();
  sim.run_until(0.1);
  const auto acks = sender->stats().acks_received;
  auto p = factory.make();
  p->label = sender->label().reversed();
  p->proto = sim::Protocol::kUdp;  // not TCP
  src_node->send(std::move(p));
  sim.run_until(0.2);
  // The UDP packet must not have been counted as an ACK.
  EXPECT_GE(sender->stats().acks_received, acks);
  EXPECT_EQ(sender->stats().dup_acks_received, 0u);
}

TEST_F(TcpTest, TimeoutCollapsesWindow) {
  sender->start();
  sim.run_until(0.3);
  // Sever the path: unbind the sink so ACKs stop.
  dst_node->unbind_port(80);
  sim.run_until(3.0);
  EXPECT_GT(sender->stats().timeouts, 0u);
  EXPECT_LE(sender->cwnd(), 2.0);
}

}  // namespace
}  // namespace mafic::transport
