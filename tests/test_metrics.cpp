#include <gtest/gtest.h>

#include <cmath>

#include "metrics/ledger.hpp"
#include "metrics/report.hpp"

namespace mafic::metrics {
namespace {

sim::Packet packet_for(sim::FlowId flow, std::uint32_t bytes = 1000,
                       bool probe = false) {
  sim::Packet p;
  p.flow_id = flow;
  p.size_bytes = bytes;
  p.probe = probe;
  return p;
}

FlowGroundTruth truth(sim::FlowId id, bool malicious, bool tcp = true) {
  FlowGroundTruth t;
  t.id = id;
  t.malicious = malicious;
  t.tcp = tcp;
  return t;
}

TEST(Ledger, PhaseSplitAtTriggerTime) {
  PacketLedger ledger;
  ledger.register_flow(truth(1, false));
  ledger.set_trigger_time(5.0);
  const auto p = packet_for(1);
  ledger.on_defense_offered(p, 4.0);
  ledger.on_defense_offered(p, 6.0);
  ledger.on_defense_offered(p, 7.0);
  const auto* rec = ledger.flow(1);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->pre.offered_at_defense, 1u);
  EXPECT_EQ(rec->post.offered_at_defense, 2u);
}

TEST(Ledger, UntriggeredEverythingIsPre) {
  PacketLedger ledger;
  ledger.register_flow(truth(1, false));
  EXPECT_FALSE(ledger.triggered());
  ledger.on_defense_offered(packet_for(1), 100.0);
  EXPECT_EQ(ledger.flow(1)->pre.offered_at_defense, 1u);
}

TEST(Ledger, DropAttributionByReason) {
  PacketLedger ledger;
  ledger.register_flow(truth(1, true));
  ledger.set_trigger_time(0.0);
  const auto p = packet_for(1);
  ledger.on_drop(p, sim::DropReason::kDefenseProbe, 0, 1.0);
  ledger.on_drop(p, sim::DropReason::kDefensePdt, 0, 1.0);
  ledger.on_drop(p, sim::DropReason::kDefensePdt, 0, 1.0);
  ledger.on_drop(p, sim::DropReason::kDefenseBaseline, 0, 1.0);
  ledger.on_drop(p, sim::DropReason::kQueueOverflow, 0, 1.0);
  ledger.on_drop(p, sim::DropReason::kNoRoute, 0, 1.0);  // unattributed
  const auto& post = ledger.flow(1)->post;
  EXPECT_EQ(post.dropped_probation, 1u);
  EXPECT_EQ(post.dropped_pdt, 2u);
  EXPECT_EQ(post.dropped_baseline, 1u);
  EXPECT_EQ(post.queue_drops, 1u);
  EXPECT_EQ(post.defense_drops(), 4u);
}

TEST(Ledger, ProbePacketsAreOverheadNotFlowTraffic) {
  PacketLedger ledger;
  ledger.register_flow(truth(1, false));
  ledger.on_drop(packet_for(1, 40, /*probe=*/true),
                 sim::DropReason::kQueueOverflow, 0, 1.0);
  EXPECT_EQ(ledger.flow(1)->pre.queue_drops, 0u);
  EXPECT_EQ(ledger.probe_packets_seen(), 1u);
}

TEST(Ledger, UnknownFlowDropsCounted) {
  PacketLedger ledger;
  ledger.on_drop(packet_for(42), sim::DropReason::kQueueOverflow, 0, 1.0);
  EXPECT_EQ(ledger.untracked_drops(), 1u);
}

TEST(Ledger, VictimSeriesAccumulate) {
  PacketLedger ledger(0.1);
  ledger.on_victim_offered(packet_for(1, 500), 0.25);
  ledger.on_victim_offered(packet_for(1, 500), 0.26);
  ledger.on_victim_delivered(packet_for(1, 500), 0.30);
  EXPECT_DOUBLE_EQ(ledger.victim_offered_bytes().total(), 1000.0);
  EXPECT_DOUBLE_EQ(ledger.victim_delivered_bytes().total(), 500.0);
  EXPECT_DOUBLE_EQ(ledger.victim_offered_packets().total(), 2.0);
}

TEST(Report, UntriggeredYieldsNaNs) {
  PacketLedger ledger;
  const Metrics m = compute_metrics(ledger);
  EXPECT_FALSE(m.triggered);
  EXPECT_TRUE(std::isnan(m.alpha));
  EXPECT_NE(format_metrics(m).find("never triggered"), std::string::npos);
}

class ReportFormulas : public ::testing::Test {
 protected:
  void SetUp() override {
    ledger.register_flow(truth(1, true, false));   // malicious
    ledger.register_flow(truth(2, false, true));   // legit TCP
    ledger.register_flow(truth(3, false, false));  // legit UDP
    ledger.set_trigger_time(10.0);

    // Malicious: 1000 offered, 990 dropped (900 probation + 90 pdt),
    // 6 reached the victim.
    for (int i = 0; i < 1000; ++i) {
      ledger.on_defense_offered(packet_for(1), 11.0);
    }
    for (int i = 0; i < 900; ++i) {
      ledger.on_drop(packet_for(1), sim::DropReason::kDefenseProbe, 0, 11.0);
    }
    for (int i = 0; i < 90; ++i) {
      ledger.on_drop(packet_for(1), sim::DropReason::kDefensePdt, 0, 11.0);
    }
    for (int i = 0; i < 6; ++i) {
      ledger.on_victim_delivered(packet_for(1), 11.0);
    }

    // Legit TCP: 500 offered, 10 probation drops + 5 wrongly-PDT drops.
    for (int i = 0; i < 500; ++i) {
      ledger.on_defense_offered(packet_for(2), 11.0);
    }
    for (int i = 0; i < 10; ++i) {
      ledger.on_drop(packet_for(2), sim::DropReason::kDefenseProbe, 0, 11.0);
    }
    for (int i = 0; i < 5; ++i) {
      ledger.on_drop(packet_for(2), sim::DropReason::kDefensePdt, 0, 11.0);
    }

    // Legit UDP (unresponsive): 100 offered, 20 PDT drops — acceptable
    // collateral, must not count toward theta_p.
    for (int i = 0; i < 100; ++i) {
      ledger.on_defense_offered(packet_for(3), 11.0);
    }
    for (int i = 0; i < 20; ++i) {
      ledger.on_drop(packet_for(3), sim::DropReason::kDefensePdt, 0, 11.0);
    }
  }

  PacketLedger ledger;
};

TEST_F(ReportFormulas, Alpha) {
  const Metrics m = compute_metrics(ledger);
  EXPECT_NEAR(m.alpha, 990.0 / 1000.0, 1e-12);
  EXPECT_EQ(m.malicious_offered, 1000u);
  EXPECT_EQ(m.malicious_dropped, 990u);
}

TEST_F(ReportFormulas, ThetaNIsDefenseLineLeak) {
  const Metrics m = compute_metrics(ledger);
  EXPECT_NEAR(m.theta_n, 10.0 / 1000.0, 1e-12);
  EXPECT_EQ(m.malicious_arrived, 6u);
}

TEST_F(ReportFormulas, ThetaPCountsOnlyResponsiveLegitPdtDrops) {
  const Metrics m = compute_metrics(ledger);
  // 5 wrong PDT drops of the TCP flow / 1600 total offered.
  EXPECT_NEAR(m.theta_p, 5.0 / 1600.0, 1e-12);
}

TEST_F(ReportFormulas, LrCountsAllLegitDefenseDrops) {
  const Metrics m = compute_metrics(ledger);
  EXPECT_NEAR(m.lr, (10.0 + 5.0 + 20.0) / 600.0, 1e-12);
  EXPECT_EQ(m.legit_offered, 600u);
}

TEST_F(ReportFormulas, BetaFromVictimSeries) {
  // Pre rate: 2000 B per 0.4 s window; post: 200 B in the 0.1 s window.
  for (int i = 0; i < 4; ++i) {
    ledger.on_victim_offered(packet_for(1, 500), 9.6 + 0.1 * i);
  }
  ledger.on_victim_offered(packet_for(1, 200), 10.1);
  ReportWindows w;
  w.beta_pre_window = 0.4;
  w.beta_post_skip = 0.04;
  w.beta_post_window = 0.1;
  const Metrics m = compute_metrics(ledger, w);
  EXPECT_GT(m.beta, 0.0);
  EXPECT_GT(m.pre_rate_bps, m.post_rate_bps);
}

TEST_F(ReportFormulas, FormatMentionsKeyNumbers) {
  const Metrics m = compute_metrics(ledger);
  const std::string s = format_metrics(m);
  EXPECT_NE(s.find("alpha=99.00%"), std::string::npos);
  EXPECT_NE(s.find("990/1000"), std::string::npos);
}

}  // namespace
}  // namespace mafic::metrics
