// The speculative threaded sim-shard path: ShardedMaficFilter fans each
// burst span out to a ShardWorkerPool as per-shard sub-spans, workers
// journal every seam side effect, and the sim thread merges the journals
// deterministically in span order. The battery proves the new path earns
// the arrival-order invariant back through tests:
//   1. ShardWorkerPool mechanics — every task runs exactly once across
//      rounds, and destruction with a batch still in flight completes the
//      in-flight sub-spans before joining (the TSan job race-checks it).
//   2. ShardSeamJournal scripted unit tests — buffered schedule/cancel
//      literal replay, stale-handle rejection across slot reuse, fire-
//      path slot reclamation, and the empty-burst case.
//   3. A randomized property sweep — burst sizes 1–64, shard counts
//      1/2/4/8, worker counts 0/1/2/4, multiple seeds and both coin
//      modes: the threaded runs must be bit-identical to shard_threads=0
//      (survivor uid stream, classification order, drop/admission/
//      eviction counters).
//   4. Journal-merge degenerate cases — bursts landing entirely on one
//      shard (every other sub-span empty), cold-only bursts, burst size
//      1, and the single-shard filter driven by many workers.
//   5. End-to-end Experiments differing only in shard_threads (0 vs
//      1/2/4, quotas off and on) — identical verdicts, timer order,
//      probe order, per-victim stats and events_processed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "core/journal_seams.hpp"
#include "core/shard_worker_pool.hpp"
#include "core/sharded_mafic_filter.hpp"
#include "core/standalone_runtime.hpp"
#include "scenario/experiment.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mafic::core {
namespace {

constexpr std::uint64_t kSeed = 20260729;

sim::FlowLabel label_for(std::uint32_t i, bool cold = false) {
  return {util::make_addr(172, 16, (i >> 8) & 0xff, i & 0xff),
          cold ? util::make_addr(172, 18, 0, 1)
               : util::make_addr(172, 17, 0, 1),
          std::uint16_t(1024 + i), 80};
}

// ---------------------------------------------------------------------------
// 1. ShardWorkerPool
// ---------------------------------------------------------------------------

TEST(ShardWorkerPool, EveryTaskRunsExactlyOnceAcrossRounds) {
  ShardWorkerPool pool(3);
  EXPECT_EQ(pool.worker_count(), 3u);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 1 + std::size_t(round % 9);
    std::vector<std::atomic<int>> hits(n);
    pool.submit([&](std::size_t i) { hits[i].fetch_add(1); }, n);
    pool.wait();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "round " << round << " task " << i;
    }
  }
  // Empty batches are a no-op.
  pool.submit([](std::size_t) { FAIL() << "task ran for n=0"; }, 0);
  pool.wait();
}

TEST(ShardWorkerPool, DestructionCompletesInFlightSubSpans) {
  // The destructor must finish a submitted batch (in-flight sub-spans
  // included) before joining — never drop or deadlock on it. Run under
  // the TSan CI job, this also race-checks the shutdown handoff.
  std::atomic<int> done{0};
  {
    ShardWorkerPool pool(4);
    pool.submit(
        [&](std::size_t) {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          done.fetch_add(1);
        },
        8);
    // No wait(): the pool is torn down with tasks still in flight.
  }
  EXPECT_EQ(done.load(), 8);
}

// ---------------------------------------------------------------------------
// 2. ShardSeamJournal scripted unit tests
// ---------------------------------------------------------------------------

struct JournalFixture {
  ManualClock clock;
  WheelTimerService wheel{&clock};
  CountingProbeSink probes;
  ShardSeamJournal journal{&wheel, &probes};
};

TEST(ShardSeamJournal, BufferedScheduleCancelLiteralReplay) {
  JournalFixture fx;
  std::vector<int> fired;

  fx.journal.begin_burst();
  fx.journal.begin_packet(0);
  const sim::TimerId a =
      fx.journal.schedule_at(0.1, [&] { fired.push_back(1); });
  fx.journal.begin_packet(1);
  const sim::TimerId b =
      fx.journal.schedule_at(0.1, [&] { fired.push_back(2); });
  fx.journal.begin_packet(2);
  // Cancel a timer scheduled earlier in the same burst: revoked exactly
  // once, the second cancel is a stale no-op (serial wheel semantics).
  EXPECT_TRUE(fx.journal.cancel(a));
  EXPECT_FALSE(fx.journal.cancel(a));
  fx.journal.send_probe(label_for(7));
  fx.journal.end_burst();

  // Nothing reached the underlying seams while buffering.
  EXPECT_EQ(fx.wheel.wheel().size(), 0u);
  EXPECT_EQ(fx.probes.probes_sent(), 0u);

  // Literal replay in journal order: schedule a, schedule b, cancel a,
  // probe — afterwards only b is armed.
  const auto& ops = fx.journal.ops();
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].span, 0u);
  EXPECT_EQ(ops[1].span, 1u);
  EXPECT_EQ(ops[2].span, 2u);
  for (const auto& op : ops) {
    if (op.kind == ShardSeamJournal::OpKind::kProbe) {
      fx.journal.underlying_probes()->send_probe(op.flow);
    } else {
      fx.journal.apply_timer(op);
    }
  }
  fx.journal.clear_ops();

  EXPECT_EQ(fx.wheel.wheel().size(), 1u);
  EXPECT_EQ(fx.probes.probes_sent(), 1u);
  fx.wheel.advance_until(0.2);
  EXPECT_EQ(fired, std::vector<int>({2}));
  EXPECT_EQ(fx.journal.live_slots(), 0u);  // fire reclaimed b's slot

  // Handles of fired timers are stale, even after their slot is reused.
  EXPECT_FALSE(fx.journal.cancel(b));
  const sim::TimerId c = fx.journal.schedule_at(0.3, [] {});
  EXPECT_FALSE(fx.journal.cancel(a));
  EXPECT_FALSE(fx.journal.cancel(b));
  EXPECT_TRUE(fx.journal.cancel(c));
  EXPECT_EQ(fx.journal.live_slots(), 0u);
}

TEST(ShardSeamJournal, PassthroughOutsideBurstsMatchesWheelSemantics) {
  JournalFixture fx;
  std::vector<int> fired;

  // Outside a burst the journal is a transparent shim over the wheel.
  const sim::TimerId a =
      fx.journal.schedule_at(0.05, [&] { fired.push_back(1); });
  const sim::TimerId b =
      fx.journal.schedule_at(0.05, [&] { fired.push_back(2); });
  EXPECT_EQ(fx.wheel.wheel().size(), 2u);
  EXPECT_TRUE(fx.journal.reschedule(b, 0.2));
  fx.wheel.advance_until(0.1);
  EXPECT_EQ(fired, std::vector<int>({1}));
  EXPECT_FALSE(fx.journal.cancel(a));  // already fired
  EXPECT_TRUE(fx.journal.cancel(b));
  EXPECT_EQ(fx.journal.live_slots(), 0u);
  fx.journal.send_probe(label_for(3));
  EXPECT_EQ(fx.probes.probes_sent(), 1u);

  // An empty burst journals nothing.
  fx.journal.begin_burst();
  fx.journal.end_burst();
  EXPECT_TRUE(fx.journal.ops().empty());
}

// ---------------------------------------------------------------------------
// 3. + 4. Randomized property sweep and degenerate merge cases
// ---------------------------------------------------------------------------

/// A scripted traffic timeline: spans of (flow, cold?) ids delivered as
/// bursts at fixed times. Built once per seed so every run configuration
/// replays the identical workload.
struct SpanSpec {
  double time = 0.0;
  std::vector<std::pair<std::uint32_t, bool>> pkts;  ///< (flow, cold)
};

std::vector<SpanSpec> make_timeline(std::uint64_t seed,
                                    std::size_t max_span) {
  util::Rng rng(seed);
  // Flow arrival processes: mixed rates, a few cold (non-victim) flows.
  // 144 concurrent hot flows against small per-shard SFTs (see
  // run_scripted) keep capacity evictions — and thus journaled timer
  // cancels from the eviction hook — firing mid-burst.
  std::vector<std::pair<double, std::pair<std::uint32_t, bool>>> events;
  for (std::uint32_t f = 0; f < 168; ++f) {
    const bool cold = f % 7 == 3;
    double t = rng.uniform(0.01, 0.3);
    const double gap = rng.uniform(0.004, 0.08);
    while (t < 1.0) {
      events.push_back({t, {f, cold}});
      t += gap * rng.uniform(0.5, 1.5);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second.first < b.second.first;
            });
  // Chunk consecutive arrivals into bursts of random span size.
  std::vector<SpanSpec> spans;
  std::size_t i = 0;
  while (i < events.size()) {
    const std::size_t n =
        std::min(events.size() - i, 1 + rng.index(max_span));
    SpanSpec s;
    s.time = events[i].first;
    for (std::size_t j = 0; j < n; ++j) {
      s.pkts.push_back(events[i + j].second);
    }
    spans.push_back(std::move(s));
    i += n;
  }
  return spans;
}

/// Everything observable from one scripted run; operator== is the
/// bit-identity check.
struct RunResult {
  std::vector<std::uint64_t> survivor_uids;  ///< forwarded, in order
  std::vector<std::pair<std::uint64_t, int>> classifications;  ///< order!
  FilterEngine::Stats stats{};
  FlowTables::Stats tables{};
  std::uint64_t threaded_bursts = 0;

  friend bool operator==(const RunResult& a, const RunResult& b) {
    return a.survivor_uids == b.survivor_uids &&
           a.classifications == b.classifications &&
           a.stats.offered == b.stats.offered &&
           a.stats.forwarded == b.stats.forwarded &&
           a.stats.dropped_probation == b.stats.dropped_probation &&
           a.stats.dropped_pdt == b.stats.dropped_pdt &&
           a.stats.decided_nice == b.stats.decided_nice &&
           a.stats.decided_malicious == b.stats.decided_malicious &&
           a.tables.sft_admissions == b.tables.sft_admissions &&
           a.tables.sft_evictions == b.tables.sft_evictions &&
           a.tables.moved_to_nft == b.tables.moved_to_nft &&
           a.tables.moved_to_pdt == b.tables.moved_to_pdt;
  }
};

RunResult run_scripted(const std::vector<SpanSpec>& timeline,
                       std::size_t num_shards, std::size_t threads,
                       CoinMode coin_mode, std::size_t sft_capacity) {
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  sim::PacketFactory factory;

  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation windows
  cfg.drop_probability = 0.9;
  cfg.probe_enabled = false;  // no wired topology in this fixture
  cfg.coin_mode = coin_mode;
  cfg.coin_seed = 0xfeedULL;
  cfg.sft_capacity = sft_capacity;  // small => capacity evictions fire
                                    // journaled timer cancels mid-burst

  std::unique_ptr<ShardWorkerPool> pool;
  if (threads > 0) pool = std::make_unique<ShardWorkerPool>(threads);
  ShardedMaficFilter filter(&sim, &factory, atr, num_shards, cfg, nullptr,
                            kSeed, pool.get());
  class UidSink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr p) override { uids.push_back(p->uid); }
    std::vector<std::uint64_t> uids;
  } sink;
  filter.set_target(&sink);
  filter.activate({util::make_addr(172, 17, 0, 1)});

  RunResult run;
  filter.set_classification_callback(
      [&](const SftEntry& e, TableKind dest) {
        run.classifications.push_back({e.key, int(dest)});
      });

  for (const SpanSpec& span : timeline) {
    sim.schedule_at(span.time, [&, &span = span] {
      std::vector<sim::PacketPtr> pkts;
      pkts.reserve(span.pkts.size());
      for (const auto& [flow, cold] : span.pkts) {
        auto p = factory.make();
        p->label = label_for(flow, cold);
        p->proto = sim::Protocol::kTcp;
        p->size_bytes = 1000;
        pkts.push_back(std::move(p));
      }
      filter.recv_burst(pkts.data(), pkts.size());
    });
  }
  sim.run();

  run.survivor_uids = std::move(sink.uids);
  run.stats = filter.stats();
  run.tables = filter.tables_stats();
  run.threaded_bursts = filter.threaded_bursts();
  // The filter (and its journals) must drain before the pool dies; both
  // orders are exercised across the battery — here the pool outlives it.
  return run;
}

class ThreadedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadedSweep, BitIdenticalToSerialAcrossShardAndWorkerCounts) {
  const std::vector<SpanSpec> timeline =
      make_timeline(GetParam(), /*max_span=*/64);
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    const RunResult serial = run_scripted(timeline, shards, /*threads=*/0,
                                          CoinMode::kPacketHash,
                                          /*sft_capacity=*/8);
    ASSERT_GT(serial.stats.offered, 0u);
    ASSERT_GT(serial.tables.sft_admissions, 0u);
    EXPECT_GT(serial.tables.sft_evictions, 0u)
        << "fixture no longer exercises journaled eviction cancels";
    for (const std::size_t threads : {1u, 2u, 4u}) {
      const RunResult threaded = run_scripted(
          timeline, shards, threads, CoinMode::kPacketHash, 8);
      EXPECT_GT(threaded.threaded_bursts, 0u);
      EXPECT_TRUE(threaded == serial)
          << "shards=" << shards << " threads=" << threads
          << " seed=" << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedSweep,
                         ::testing::Values(1, 17, 20260729));

TEST(ThreadedSweep, EngineStreamCoinsAlsoBitIdentical) {
  // Per-shard RNG streams draw in within-shard arrival order, which the
  // sub-span fan-out preserves — so threaded-vs-serial identity holds
  // even for the paper-faithful kEngineStream coins (scalar-vs-sharded
  // needs kPacketHash; threaded-vs-serial does not).
  const std::vector<SpanSpec> timeline = make_timeline(99, 32);
  for (const std::size_t shards : {2u, 4u}) {
    const RunResult serial = run_scripted(timeline, shards, 0,
                                          CoinMode::kEngineStream, 64);
    const RunResult threaded = run_scripted(timeline, shards, 4,
                                            CoinMode::kEngineStream, 64);
    EXPECT_TRUE(threaded == serial) << "shards=" << shards;
  }
}

TEST(JournalMerge, BurstLandingEntirelyOnOneShardLeavesOthersEmpty) {
  // Pick flows that all live on shard 0 of a 4-shard filter: every other
  // worker sees an empty sub-span, and the merge must still replay shard
  // 0's journal in full span order.
  sim::Simulator probe_sim;
  sim::Network probe_net(&probe_sim);
  sim::Node* probe_atr = probe_net.add_router(util::make_addr(10, 0, 0, 9));
  sim::PacketFactory probe_factory;
  MaficConfig probe_cfg;
  ShardedMaficFilter probe_filter(&probe_sim, &probe_factory, probe_atr, 4,
                                  probe_cfg, nullptr, kSeed);
  std::vector<std::uint32_t> same_shard;
  for (std::uint32_t f = 0; same_shard.size() < 24 && f < 4096; ++f) {
    sim::Packet p;
    p.label = label_for(f);
    if (probe_filter.sharded().shard_for(p) == 0) same_shard.push_back(f);
  }
  ASSERT_EQ(same_shard.size(), 24u);

  std::vector<SpanSpec> timeline;
  util::Rng rng(5);
  double t = 0.01;
  for (int burst = 0; burst < 40; ++burst) {
    SpanSpec s;
    s.time = t;
    const std::size_t n = 1 + rng.index(24);
    for (std::size_t j = 0; j < n; ++j) {
      s.pkts.push_back({same_shard[rng.index(same_shard.size())], false});
    }
    timeline.push_back(std::move(s));
    t += 0.01;
  }
  const RunResult serial =
      run_scripted(timeline, 4, 0, CoinMode::kPacketHash, 16);
  const RunResult threaded =
      run_scripted(timeline, 4, 4, CoinMode::kPacketHash, 16);
  ASSERT_GT(serial.stats.offered, 0u);
  EXPECT_TRUE(threaded == serial);
}

TEST(JournalMerge, DegenerateSpansSingleShardAndColdBursts) {
  // Burst size 1, a single-shard filter under many workers, and bursts
  // of cold (non-victim) packets that produce no journal ops at all.
  std::vector<SpanSpec> timeline;
  double t = 0.01;
  for (std::uint32_t f = 0; f < 30; ++f) {
    SpanSpec one;
    one.time = t;
    one.pkts.push_back({f, false});
    timeline.push_back(one);  // size-1 span
    t += 0.005;
  }
  SpanSpec cold;
  cold.time = t;
  for (std::uint32_t f = 0; f < 16; ++f) cold.pkts.push_back({f, true});
  timeline.push_back(cold);  // all-cold span: every sub-span empty

  for (const std::size_t shards : {1u, 4u}) {
    const RunResult serial =
        run_scripted(timeline, shards, 0, CoinMode::kPacketHash, 64);
    const RunResult threaded =
        run_scripted(timeline, shards, 4, CoinMode::kPacketHash, 64);
    ASSERT_GT(serial.stats.offered, 0u);
    EXPECT_TRUE(threaded == serial) << "shards=" << shards;
  }
}

// ---------------------------------------------------------------------------
// 5. End-to-end Experiments: shard_threads=0 vs 1/2/4
// ---------------------------------------------------------------------------

void expect_identical(const scenario::ExperimentResult& a,
                      const scenario::ExperimentResult& b,
                      const char* what) {
  // The whole simulation stayed in lockstep: identical verdict streams,
  // timer order and probe order imply identical packet uid streams and
  // therefore an identical event count.
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.sft_admissions, b.sft_admissions) << what;
  EXPECT_EQ(a.sft_evictions, b.sft_evictions) << what;
  EXPECT_EQ(a.quota_evictions, b.quota_evictions) << what;
  EXPECT_EQ(a.moved_to_nft, b.moved_to_nft) << what;
  EXPECT_EQ(a.moved_to_pdt, b.moved_to_pdt) << what;
  EXPECT_EQ(a.screened_sources, b.screened_sources) << what;
  EXPECT_EQ(a.probes_issued, b.probes_issued) << what;
  ASSERT_EQ(a.per_victim.size(), b.per_victim.size()) << what;
  for (std::size_t i = 0; i < a.per_victim.size(); ++i) {
    EXPECT_EQ(a.per_victim[i].victim, b.per_victim[i].victim) << what;
    EXPECT_EQ(a.per_victim[i].decided_nice, b.per_victim[i].decided_nice)
        << what;
    EXPECT_EQ(a.per_victim[i].decided_malicious,
              b.per_victim[i].decided_malicious)
        << what;
    EXPECT_EQ(a.per_victim[i].screened_sources,
              b.per_victim[i].screened_sources)
        << what;
    EXPECT_EQ(a.per_victim[i].evictions, b.per_victim[i].evictions) << what;
    EXPECT_EQ(a.per_victim[i].quota_evictions,
              b.per_victim[i].quota_evictions)
        << what;
  }
  EXPECT_EQ(a.metrics.malicious_dropped, b.metrics.malicious_dropped)
      << what;
  EXPECT_EQ(a.metrics.legit_dropped, b.metrics.legit_dropped) << what;
  EXPECT_EQ(a.metrics.alpha, b.metrics.alpha) << what;
}

TEST(ThreadedExperiment, BitIdenticalResultsAcrossWorkerCounts) {
  scenario::ExperimentConfig base;
  base.seed = 7;
  base.total_flows = 24;
  base.router_count = 10;
  base.end_time = 6.0;
  base.link_burst_size = 8;
  base.num_shards = 4;

  const auto run = [&](std::size_t threads, std::uint64_t* bursts) {
    scenario::ExperimentConfig cfg = base;
    cfg.shard_threads = threads;
    scenario::Experiment exp(cfg);
    scenario::ExperimentResult r = exp.run();
    if (bursts != nullptr) {
      *bursts = 0;
      for (const auto* f : exp.sharded_filters()) {
        *bursts += f->threaded_bursts();
      }
    }
    return r;
  };

  const scenario::ExperimentResult serial = run(0, nullptr);
  ASSERT_GT(serial.sft_admissions, 0u);
  ASSERT_GT(serial.probes_issued, 0u);
  ASSERT_FALSE(std::isnan(serial.metrics.alpha));
  for (const std::size_t threads : {1u, 2u, 4u}) {
    std::uint64_t bursts = 0;
    const scenario::ExperimentResult threaded = run(threads, &bursts);
    EXPECT_GT(bursts, 0u) << "threaded path never engaged";
    expect_identical(serial, threaded,
                     threads == 1   ? "threads=1"
                     : threads == 2 ? "threads=2"
                                    : "threads=4");
  }
}

TEST(ThreadedExperiment, BitIdenticalWithPerVictimQuotas) {
  scenario::ExperimentConfig base;
  base.seed = 42;
  base.total_flows = 24;
  base.router_count = 10;
  base.end_time = 5.0;
  base.link_burst_size = 8;
  base.num_shards = 4;
  base.extra_victims = 1;
  base.sft_victim_quota = 0.25;

  const auto run = [&](std::size_t threads) {
    scenario::ExperimentConfig cfg = base;
    cfg.shard_threads = threads;
    scenario::Experiment exp(cfg);
    return exp.run();
  };
  const scenario::ExperimentResult serial = run(0);
  const scenario::ExperimentResult threaded = run(4);
  ASSERT_GT(serial.sft_admissions, 0u);
  expect_identical(serial, threaded, "quotas threads=4");
}

}  // namespace
}  // namespace mafic::core
