#include "util/ip.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mafic::util {
namespace {

TEST(Addr, MakeAndFormat) {
  const Addr a = make_addr(10, 0, 3, 17);
  EXPECT_EQ(format_addr(a), "10.0.3.17");
  EXPECT_EQ(format_addr(make_addr(255, 255, 255, 255)), "255.255.255.255");
  EXPECT_EQ(format_addr(make_addr(0, 0, 0, 1)), "0.0.0.1");
}

TEST(Subnet, MaskComputation) {
  EXPECT_EQ((Subnet{0, 0}).mask(), 0u);
  EXPECT_EQ((Subnet{0, 8}).mask(), 0xff000000u);
  EXPECT_EQ((Subnet{0, 24}).mask(), 0xffffff00u);
  EXPECT_EQ((Subnet{0, 32}).mask(), 0xffffffffu);
}

TEST(Subnet, Contains) {
  const Subnet s{make_addr(172, 16, 5, 0), 24};
  EXPECT_TRUE(s.contains(make_addr(172, 16, 5, 1)));
  EXPECT_TRUE(s.contains(make_addr(172, 16, 5, 255)));
  EXPECT_FALSE(s.contains(make_addr(172, 16, 6, 1)));
  EXPECT_FALSE(s.contains(make_addr(10, 16, 5, 1)));
}

TEST(Subnet, CapacityExcludesBase) {
  EXPECT_EQ((Subnet{0, 24}).capacity(), 255u);
  EXPECT_EQ((Subnet{0, 30}).capacity(), 3u);
  EXPECT_EQ((Subnet{0, 32}).capacity(), 0u);
}

TEST(Subnet, FormatSubnet) {
  EXPECT_EQ(format_subnet(Subnet{make_addr(10, 1, 0, 0), 16}), "10.1.0.0/16");
}

TEST(SubnetAllocator, SequentialUniqueAddresses) {
  SubnetAllocator alloc(Subnet{make_addr(172, 16, 0, 0), 24});
  std::set<Addr> seen;
  for (int i = 0; i < 255; ++i) {
    auto a = alloc.allocate();
    ASSERT_TRUE(a.has_value());
    EXPECT_TRUE(seen.insert(*a).second) << "duplicate address";
    EXPECT_TRUE((Subnet{make_addr(172, 16, 0, 0), 24}).contains(*a));
  }
  EXPECT_EQ(alloc.allocated_count(), 255u);
}

TEST(SubnetAllocator, ExhaustionReturnsNullopt) {
  SubnetAllocator alloc(Subnet{make_addr(10, 0, 0, 0), 30});  // 3 hosts
  EXPECT_TRUE(alloc.allocate().has_value());
  EXPECT_TRUE(alloc.allocate().has_value());
  EXPECT_TRUE(alloc.allocate().has_value());
  EXPECT_FALSE(alloc.allocate().has_value());
}

TEST(SubnetAllocator, SkipsSubnetBaseAddress) {
  SubnetAllocator alloc(Subnet{make_addr(10, 0, 0, 0), 24});
  EXPECT_EQ(*alloc.allocate(), make_addr(10, 0, 0, 1));
}

TEST(AddressValidator, LegalRequiresRegisteredSubnet) {
  AddressValidator v;
  v.add_subnet(Subnet{make_addr(10, 0, 0, 0), 8});
  EXPECT_TRUE(v.is_legal(make_addr(10, 9, 9, 9)));
  EXPECT_FALSE(v.is_legal(make_addr(11, 0, 0, 1)));
  EXPECT_FALSE(v.is_legal(kInvalidAddr));
}

TEST(AddressValidator, ReachableRequiresAllocatedHost) {
  AddressValidator v;
  v.add_subnet(Subnet{make_addr(10, 0, 0, 0), 8});
  const Addr host = make_addr(10, 1, 2, 3);
  EXPECT_FALSE(v.is_reachable(host));  // legal but not allocated
  v.add_host(host);
  EXPECT_TRUE(v.is_reachable(host));
}

TEST(AddressValidator, HostOutsideSubnetsIsNotReachable) {
  AddressValidator v;
  v.add_subnet(Subnet{make_addr(10, 0, 0, 0), 8});
  const Addr rogue = make_addr(192, 168, 0, 1);
  v.add_host(rogue);  // allocated but in no registered subnet
  EXPECT_FALSE(v.is_reachable(rogue));
}

TEST(AddressValidator, MultipleSubnets) {
  AddressValidator v;
  v.add_subnet(Subnet{make_addr(10, 0, 0, 0), 8});
  v.add_subnet(Subnet{make_addr(172, 16, 0, 0), 12});
  EXPECT_TRUE(v.is_legal(make_addr(172, 20, 1, 1)));
  EXPECT_TRUE(v.is_legal(make_addr(10, 255, 1, 1)));
  EXPECT_FALSE(v.is_legal(make_addr(172, 32, 1, 1)));
  EXPECT_EQ(v.subnet_count(), 2u);
}

}  // namespace
}  // namespace mafic::util
