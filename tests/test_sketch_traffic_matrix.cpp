#include "sketch/traffic_matrix.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "sim/network.hpp"
#include "sketch/router_tap.hpp"

namespace mafic::sketch {
namespace {

TEST(RouterSketchBank, RecordsPerRouter) {
  RouterSketchBank bank(3, 10, 42);
  for (std::uint64_t i = 0; i < 20000; ++i) bank.record_ingress(0, i);
  for (std::uint64_t i = 0; i < 5000; ++i) bank.record_egress(2, i);
  EXPECT_NEAR(bank.s(0).estimate(), 20000.0, 3000.0);
  EXPECT_LT(bank.s(1).estimate(), 500.0);
  EXPECT_NEAR(bank.d(2).estimate(), 5000.0, 1500.0);
}

TEST(RouterSketchBank, CountersAreMutuallyCompatible) {
  RouterSketchBank bank(4, 10, 7);
  EXPECT_TRUE(bank.s(0).compatible(bank.d(3)));
  EXPECT_TRUE(bank.s(1).compatible(bank.s(2)));
}

TEST(RouterSketchBank, ResetClearsAll) {
  RouterSketchBank bank(2, 10, 7);
  for (std::uint64_t i = 0; i < 10000; ++i) bank.record_ingress(0, i);
  bank.reset();
  EXPECT_LT(bank.s(0).estimate(), 500.0);
}

TEST(RouterSketchBank, MemoryScalesWithRouters) {
  EXPECT_EQ(RouterSketchBank(10, 10, 0).memory_bytes(), 10u * 2u * 1024u);
}

TEST(ExactSketchBank, GroundTruthIntersection) {
  ExactSketchBank bank(3);
  for (std::uint64_t i = 0; i < 100; ++i) bank.record_ingress(0, i);
  for (std::uint64_t i = 50; i < 150; ++i) bank.record_egress(2, i);
  EXPECT_DOUBLE_EQ(bank.intersection(0, 2), 50.0);
  EXPECT_DOUBLE_EQ(bank.s_count(0), 100.0);
  EXPECT_DOUBLE_EQ(bank.d_count(2), 100.0);
  EXPECT_DOUBLE_EQ(bank.intersection(1, 2), 0.0);
}

TEST(TrafficMatrix, SketchTracksExactWithinTolerance) {
  RouterSketchBank bank(2, 12, 9);
  ExactSketchBank exact(2);
  // 30k packets from router 0 to "router 1's hosts", 10k elsewhere.
  for (std::uint64_t i = 0; i < 30000; ++i) {
    bank.record_ingress(0, i);
    exact.record_ingress(0, i);
    bank.record_egress(1, i);
    exact.record_egress(1, i);
  }
  for (std::uint64_t i = 100000; i < 110000; ++i) {
    bank.record_ingress(0, i);
    exact.record_ingress(0, i);
  }
  const double est = intersection_estimate(bank.s(0), bank.d(1));
  EXPECT_NEAR(est, exact.intersection(0, 1), 30000.0 * 0.25);
}

TEST(TrafficMonitor, EpochsFireAndReset) {
  sim::Simulator sim;
  RouterSketchBank bank(2, 10, 1);
  TrafficMonitor monitor(&sim, &bank, 0.1);
  std::vector<TrafficMatrixSnapshot> snaps;
  monitor.subscribe([&](const TrafficMatrixSnapshot& s) {
    snaps.push_back(s);
  });
  monitor.start();

  // 1000 packets in the first epoch only.
  sim.schedule_at(0.05, [&] {
    for (std::uint64_t i = 0; i < 1000; ++i) bank.record_ingress(0, i);
  });
  sim.run_until(0.35);
  monitor.stop();

  ASSERT_EQ(snaps.size(), 3u);
  EXPECT_EQ(snaps[0].epoch_index, 0u);
  EXPECT_NEAR(snaps[0].s_count(0), 1000.0, 300.0);
  EXPECT_LT(snaps[1].s_count(0), 300.0);  // bank was reset
  EXPECT_NEAR(snaps[0].duration(), 0.1, 1e-9);
  EXPECT_EQ(monitor.epochs_completed(), 3u);
}

TEST(TrafficMonitor, StopPreventsFurtherEpochs) {
  sim::Simulator sim;
  RouterSketchBank bank(1, 10, 1);
  TrafficMonitor monitor(&sim, &bank, 0.1);
  int count = 0;
  monitor.subscribe([&](const TrafficMatrixSnapshot&) { ++count; });
  monitor.start();
  sim.run_until(0.25);
  monitor.stop();
  sim.run_until(1.0);
  EXPECT_EQ(count, 2);
}

TEST(TrafficMatrixSnapshot, ColumnComputesAij) {
  RouterSketchBank bank(3, 12, 5);
  // Router 0 injects packets that leave at router 2.
  for (std::uint64_t i = 0; i < 20000; ++i) {
    bank.record_ingress(0, i);
    bank.record_egress(2, i);
  }
  // Router 1 injects unrelated packets that leave elsewhere.
  for (std::uint64_t i = 500000; i < 520000; ++i) bank.record_ingress(1, i);

  sim::Simulator sim;
  TrafficMonitor monitor(&sim, &bank, 0.1);
  TrafficMatrixSnapshot snap;
  monitor.subscribe([&](const TrafficMatrixSnapshot& s) { snap = s; });
  monitor.start();
  sim.run_until(0.1);

  const auto col = snap.column(2);
  ASSERT_EQ(col.size(), 3u);
  EXPECT_GT(col[0], 12000.0);  // strong overlap
  EXPECT_LT(col[1], 8000.0);   // unrelated traffic
}

TEST(RouterTaps, AttachedTapsRecordTraffic) {
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::Node* host = net.add_host(util::make_addr(172, 16, 0, 1));
  sim::Node* router = net.add_router(util::make_addr(10, 0, 0, 1));
  auto [down, up] = net.add_duplex(router->id(), host->id(), {});
  net.build_routes();

  RouterSketchBank bank(1, 10, 3);
  ExactSketchBank exact(1);
  attach_ingress_counter(up, 0, &bank, &exact);
  attach_egress_counter(down, 0, &bank, &exact);

  sim::PacketFactory factory;
  for (int i = 0; i < 100; ++i) {
    auto p = factory.make();
    p->label = sim::FlowLabel{host->addr(), router->addr(), 1, 2};
    p->size_bytes = 100;
    host->send(std::move(p));
  }
  sim.run();
  EXPECT_DOUBLE_EQ(exact.s_count(0), 100.0);
  EXPECT_DOUBLE_EQ(exact.d_count(0), 0.0);
  EXPECT_GT(bank.s(0).items_added(), 0u);
}

}  // namespace
}  // namespace mafic::sketch
