#include "util/time_series.hpp"

#include <gtest/gtest.h>

namespace mafic::util {
namespace {

TEST(BinnedSeries, EmptyBehaviour) {
  BinnedSeries s(0.1);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.total(), 0.0);
  EXPECT_DOUBLE_EQ(s.rate_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(s.sum_between(0.0, 10.0), 0.0);
}

TEST(BinnedSeries, AddAccumulatesIntoCorrectBin) {
  BinnedSeries s(0.1);
  s.add(0.05, 1.0);
  s.add(0.09, 2.0);
  s.add(0.11, 4.0);
  EXPECT_DOUBLE_EQ(s.bins()[0], 3.0);
  EXPECT_DOUBLE_EQ(s.bins()[1], 4.0);
  EXPECT_DOUBLE_EQ(s.total(), 7.0);
}

TEST(BinnedSeries, NegativeTimesIgnored) {
  BinnedSeries s(0.1);
  s.add(-0.5, 9.0);
  EXPECT_TRUE(s.empty());
}

TEST(BinnedSeries, RateAtDividesByBinWidth) {
  BinnedSeries s(0.5);
  s.add(0.25, 10.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0.4), 20.0);
  EXPECT_DOUBLE_EQ(s.rate_at(0.9), 0.0);
}

TEST(BinnedSeries, SumBetweenWholeBins) {
  BinnedSeries s(1.0);
  s.add(0.5, 1.0);
  s.add(1.5, 2.0);
  s.add(2.5, 4.0);
  EXPECT_DOUBLE_EQ(s.sum_between(0.0, 3.0), 7.0);
  EXPECT_DOUBLE_EQ(s.sum_between(1.0, 2.0), 2.0);
}

TEST(BinnedSeries, SumBetweenFractionalOverlap) {
  BinnedSeries s(1.0);
  s.add(0.5, 10.0);  // bin [0,1)
  // Query covering half the bin sees half the weight (uniform spread
  // assumption).
  EXPECT_DOUBLE_EQ(s.sum_between(0.0, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.sum_between(0.25, 0.75), 5.0);
  EXPECT_DOUBLE_EQ(s.sum_between(0.9, 2.0), 1.0);
}

TEST(BinnedSeries, RateBetween) {
  BinnedSeries s(0.1);
  for (int i = 0; i < 10; ++i) s.add(0.05 + 0.1 * i, 3.0);  // 30/s for 1s
  EXPECT_NEAR(s.rate_between(0.0, 1.0), 30.0, 1e-9);
  EXPECT_NEAR(s.rate_between(0.2, 0.4), 30.0, 1e-9);
}

TEST(BinnedSeries, RateBetweenDegenerateWindow) {
  BinnedSeries s(0.1);
  s.add(0.05, 1.0);
  EXPECT_DOUBLE_EQ(s.rate_between(0.5, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.rate_between(0.5, 0.4), 0.0);
}

TEST(BinnedSeries, GrowsOnDemand) {
  BinnedSeries s(0.1);
  s.add(99.95, 1.0);
  EXPECT_GE(s.bins().size(), 1000u);
  EXPECT_DOUBLE_EQ(s.rate_at(99.95), 10.0);
}

}  // namespace
}  // namespace mafic::util
