// Detector-mode cross-strategy battery.
//
// Catalog shapes re-run with TriggerMode::kDetector — the asynchronous
// control plane (epoch snapshots, per-victim feature detection,
// apply-after-control-delay) replaces the scripted trigger — and must
// stay BIT-IDENTICAL across the four comparable datapath strategies:
// same detector_fingerprint (decision counts + per-victim alarm/engage
// outcome + identified-ATR set), and exactly equal per-victim trigger /
// clear times (apply events are epoch-aligned, so the doubles match to
// the bit even though they stay out of the hash).
//
// This extends the PR 3/5/6 equivalence contract to the control plane:
// detection runs inline on the scalar/sharded strategies and as
// ShardWorkerPool tasks on the threaded/fleet ones, and neither the
// pooling nor fleet tick batching may move a single alarm or ATR.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "scenario/scenario_catalog.hpp"
#include "scenario/scenario_spec.hpp"

namespace mafic::scenario {
namespace {

// The detector battery's shape coverage: the multi-victim rolling sweep
// (every victim must trigger on its own schedule), the spoof-rotating
// flood (detection keyed on |Dj|, not source identity), and an unlatched
// pulse so clear -> disengage -> re-engage sequences cross strategies.
struct DetectorCase {
  const char* scenario;
  bool latch;
};

constexpr DetectorCase kCases[] = {
    {"carpet_bomb", true},
    {"spoof_churn", true},
    {"pulse_shrew", false},
};

ScenarioSpec detector_spec(const DetectorCase& c) {
  const CatalogEntry* e = find_scenario(c.scenario);
  EXPECT_NE(e, nullptr) << c.scenario;
  ScenarioSpec spec = smoke_scale(e->spec);
  spec.detector_trigger = true;
  spec.detector_latch = c.latch;
  // Smoke scale caps the army at 8e6 bps — too faint against last-hop
  // routers polluted by colocated egress. The battery runs a hotter army
  // and floors |Dj| above the ack-stream noise so detection is on the
  // flood, not on background wobble.
  spec.attack_total_bps = 24e6;
  spec.detector_min_packets = 150.0;
  spec.name = spec.name + (c.latch ? "+detector" : "+detector_unlatched");
  return spec;
}

// One run per (case, strategy) shared by every test in the binary.
const ScenarioOutcome& outcome_of(const ScenarioSpec& spec,
                                  const Strategy& strat) {
  static std::map<std::string, ScenarioOutcome> cache;
  const std::string key = spec.name + "/" + strat.label;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, run_scenario(spec, strat)).first;
  }
  return it->second;
}

TEST(DetectorCatalog, CrossStrategyBitIdentity) {
  const auto strategies = equivalence_strategies();
  ASSERT_EQ(strategies.size(), 4u);
  for (const DetectorCase& c : kCases) {
    const ScenarioSpec spec = detector_spec(c);
    const ScenarioOutcome& base = outcome_of(spec, strategies.front());
    for (std::size_t s = 1; s < strategies.size(); ++s) {
      const ScenarioOutcome& other = outcome_of(spec, strategies[s]);
      SCOPED_TRACE(spec.name + ": " + strategies.front().label + " vs " +
                   strategies[s].label);
      // Per-victim control-plane outcome first, field by field, so a
      // mismatch names the victim and the diverging quantity.
      ASSERT_EQ(base.result.per_victim.size(),
                other.result.per_victim.size());
      for (std::size_t v = 0; v < base.result.per_victim.size(); ++v) {
        const auto& pa = base.result.per_victim[v];
        const auto& pb = other.result.per_victim[v];
        SCOPED_TRACE("victim " + std::to_string(v));
        EXPECT_EQ(pa.alarms, pb.alarms);
        // Apply events fire at epoch_end + control_delay on every
        // strategy, so the times are equal to the BIT, not just close.
        EXPECT_EQ(pa.trigger_time, pb.trigger_time);
        EXPECT_EQ(pa.clear_time, pb.clear_time);
        EXPECT_EQ(pa.decided_nice, pb.decided_nice);
        EXPECT_EQ(pa.decided_malicious, pb.decided_malicious);
      }
      EXPECT_EQ(base.result.atr.identified, other.result.atr.identified);
      EXPECT_EQ(detector_fingerprint(base.result),
                detector_fingerprint(other.result));
    }
  }
}

TEST(DetectorCatalog, GoldenDetectorFingerprints) {
  // Pinned at the catalog seeds, smoke scale, scalar strategy. Any
  // control-plane decision shift re-opens these on purpose; regenerate
  // with   ./build/example_scenario_catalog --detector
  const std::map<std::string, std::uint64_t> golden = {
      {"carpet_bomb+detector", 0x87de30be813091baULL},
      {"spoof_churn+detector", 0xb13f6d2f29fbca72ULL},
      {"pulse_shrew+detector_unlatched", 0x99636742aaca4aadULL},
  };
  const Strategy scalar = equivalence_strategies().front();
  for (const DetectorCase& c : kCases) {
    const ScenarioSpec spec = detector_spec(c);
    const auto it = golden.find(spec.name);
    ASSERT_NE(it, golden.end()) << "no golden for " << spec.name;
    EXPECT_EQ(detector_fingerprint(outcome_of(spec, scalar).result),
              it->second)
        << spec.name << ": detector fingerprint drifted";
  }
}

TEST(DetectorCatalog, EveryVictimTriggersInCarpetBomb) {
  // The single-victim regression at catalog scale: the rolling sweep
  // hits every victim, so every victim's own detector must raise and
  // engage — not just the primary's.
  const ScenarioSpec spec = detector_spec(kCases[0]);
  const Strategy scalar = equivalence_strategies().front();
  const auto& r = outcome_of(spec, scalar).result;
  ASSERT_EQ(r.per_victim.size(), spec.victims);
  ASSERT_GE(spec.victims, 2u);
  for (std::size_t v = 0; v < r.per_victim.size(); ++v) {
    SCOPED_TRACE("victim " + std::to_string(v));
    EXPECT_GE(r.per_victim[v].alarms, 1u);
    EXPECT_GT(r.per_victim[v].trigger_time, spec.attack_start);
  }
  EXPECT_TRUE(r.metrics.triggered);
  EXPECT_FALSE(r.atr.identified.empty());
}

TEST(DetectorCatalog, UnlatchedPulseClearsBetweenBursts) {
  // pulse_shrew with latch off: the alarm must clear in at least one
  // silent trough, producing a recorded disengagement.
  const ScenarioSpec spec = detector_spec(kCases[2]);
  const Strategy scalar = equivalence_strategies().front();
  const auto& r = outcome_of(spec, scalar).result;
  EXPECT_TRUE(r.metrics.triggered);
  ASSERT_FALSE(r.per_victim.empty());
  EXPECT_GE(r.per_victim[0].alarms, 1u);
  EXPECT_GE(r.per_victim[0].clear_time, 0.0);
}

TEST(DetectorCatalog, DetectorRunsCutTheFlood) {
  // Detector-mode defense must still do its job: the flood is mostly
  // dropped in every battery case, with a sane per-victim report.
  const Strategy scalar = equivalence_strategies().front();
  for (const DetectorCase& c : kCases) {
    const ScenarioSpec spec = detector_spec(c);
    SCOPED_TRACE(spec.name);
    const auto& r = outcome_of(spec, scalar).result;
    EXPECT_TRUE(r.metrics.triggered);
    EXPECT_GT(r.metrics.malicious_dropped, 0u);
    EXPECT_GT(r.metrics.alpha, 0.5);
    EXPECT_EQ(r.per_victim.size(), spec.victims);
  }
}

}  // namespace
}  // namespace mafic::scenario
