// Asynchronous control-plane detector layer: feature pipeline units,
// multi-victim coordinator actuation (engage / disengage / retarget),
// ControlPlane end-to-end sequences against fake actuators, pooled-vs-
// inline bit-identity, and the multi-victim experiment regression
// (every protected destination must trigger detector-mode defense).

#include <gtest/gtest.h>

#include <vector>

#include "core/shard_worker_pool.hpp"
#include "pushback/control_plane.hpp"
#include "pushback/coordinator.hpp"
#include "pushback/detector_features.hpp"
#include "scenario/experiment.hpp"
#include "sim/simulator.hpp"

namespace mafic::pushback {
namespace {

struct FlowSpec {
  sim::NodeId src;
  sim::NodeId dst;
  std::uint64_t n;
};

/// Builds a snapshot from (src router, dst router, packet count) triples;
/// uid_base keeps packet populations distinct across epochs.
sketch::TrafficMatrixSnapshot make_snapshot(std::size_t routers,
                                            std::vector<FlowSpec> flows,
                                            std::uint64_t uid_base,
                                            double epoch_end = 0.1) {
  sketch::RouterSketchBank bank(routers, 12, 77);
  std::uint64_t uid = uid_base;
  for (const FlowSpec& f : flows) {
    for (std::uint64_t i = 0; i < f.n; ++i, ++uid) {
      bank.record_ingress(f.src, uid);
      bank.record_egress(f.dst, uid);
    }
  }
  sketch::TrafficMatrixSnapshot snap;
  snap.epoch_start = epoch_end - 0.1;
  snap.epoch_end = epoch_end;
  for (std::size_t i = 0; i < routers; ++i) {
    snap.s.push_back(bank.s(sim::NodeId(i)));
    snap.d.push_back(bank.d(sim::NodeId(i)));
  }
  return snap;
}

sketch::ControlSnapshot control_snap(sketch::TrafficMatrixSnapshot matrix,
                                     std::vector<sketch::VictimCounterSample>
                                         victims) {
  sketch::ControlSnapshot cs;
  cs.matrix = std::move(matrix);
  cs.victims = std::move(victims);
  return cs;
}

// --------------------------------------------------------------- pipeline ---

TEST(DetectorFeaturePipeline, DefaultDecisionMatchesPlainDetector) {
  VictimDetector::Config dcfg;
  dcfg.warmup_epochs = 2;
  dcfg.trigger_factor = 2.0;
  dcfg.clear_factor = 1.5;
  dcfg.min_packets_per_epoch = 50;

  FeatureConfig fcfg;
  fcfg.ewma = dcfg;
  DetectorFeaturePipeline pipe(fcfg);
  VictimDetector plain(dcfg);

  const sketch::VictimCounterSample v{/*victim=*/42, /*router=*/1, 0, 0, 0,
                                      0};
  // Baseline, surge, persist, subside — the combined decision must track
  // the plain detector exactly when the extra gates are off.
  const std::uint64_t loads[] = {200, 200, 200, 200, 3000, 3000, 210, 200};
  std::uint64_t uid = 0;
  for (const std::uint64_t n : loads) {
    auto matrix = make_snapshot(3, {{0, 1, n}}, uid);
    uid += 1000000;
    plain.on_epoch(matrix);
    const auto decisions = pipe.step(control_snap(std::move(matrix), {v}));
    ASSERT_EQ(decisions.size(), 1u);
    EXPECT_EQ(decisions[0].alarming, plain.alarming(1)) << "load " << n;
  }
}

TEST(DetectorFeaturePipeline, ComputesVelocityFanInAndPopulationShift) {
  FeatureConfig fcfg;
  fcfg.ewma.warmup_epochs = 100;  // keep the EWMA rule quiet
  fcfg.fan_in_floor = 50.0;
  DetectorFeaturePipeline pipe(fcfg);

  sketch::VictimCounterSample v;
  v.victim = 42;
  v.last_hop_router = 2;

  // Epoch 1: routers 0 and 1 both feed victim router 2; router 0 also
  // sends unrelated traffic to router 3 (not in the column).
  auto d1 = pipe.step(control_snap(
      make_snapshot(4, {{0, 2, 400}, {1, 2, 300}, {0, 3, 500}}, 0), {v}));
  ASSERT_EQ(d1.size(), 1u);
  EXPECT_NEAR(d1[0].features.d, 700.0, 70.0);
  EXPECT_EQ(d1[0].features.fan_in, 2.0);
  EXPECT_EQ(d1[0].features.velocity, 0.0);  // no previous epoch
  EXPECT_EQ(d1[0].features.malicious_share, 0.0);

  // Epoch 2: volume doubles, fan-in collapses to one source, and the
  // filters have decided 30 nice / 90 malicious flows.
  v.decided_nice = 30;
  v.decided_malicious = 90;
  auto d2 = pipe.step(
      control_snap(make_snapshot(4, {{0, 2, 1400}}, 10000000), {v}));
  EXPECT_NEAR(d2[0].features.velocity,
              d2[0].features.d - d1[0].features.d, 1e-9);
  EXPECT_GT(d2[0].features.velocity, 400.0);
  EXPECT_EQ(d2[0].features.fan_in, 1.0);
  EXPECT_DOUBLE_EQ(d2[0].features.malicious_share, 0.75);
  EXPECT_DOUBLE_EQ(d2[0].features.population_shift, 0.75);

  // Epoch 3: share stays put, so the shift goes to zero.
  auto d3 = pipe.step(
      control_snap(make_snapshot(4, {{0, 2, 1400}}, 20000000), {v}));
  EXPECT_DOUBLE_EQ(d3[0].features.population_shift, 0.0);
}

TEST(DetectorFeaturePipeline, VelocityGateRaisesAndClearsWithoutEwma) {
  FeatureConfig fcfg;
  fcfg.ewma.warmup_epochs = 100;  // EWMA rule can never fire
  fcfg.velocity_trigger = 500.0;
  DetectorFeaturePipeline pipe(fcfg);

  const sketch::VictimCounterSample v{42, 1, 0, 0, 0, 0};
  auto d1 =
      pipe.step(control_snap(make_snapshot(2, {{0, 1, 200}}, 0), {v}));
  EXPECT_FALSE(d1[0].alarming);
  auto d2 = pipe.step(
      control_snap(make_snapshot(2, {{0, 1, 2000}}, 10000000), {v}));
  EXPECT_TRUE(d2[0].raised);
  EXPECT_TRUE(d2[0].alarming);
  // Level-triggered: steady volume means zero velocity, so it clears.
  auto d3 = pipe.step(
      control_snap(make_snapshot(2, {{0, 1, 2000}}, 20000000), {v}));
  EXPECT_TRUE(d3[0].cleared);
  EXPECT_FALSE(d3[0].alarming);
}

// ------------------------------------------------- coordinator actuation ---

class FakeActuator final : public core::DefenseActuator {
 public:
  void activate(const core::VictimSet& v) override {
    active_ = true;
    for (const util::Addr a : v) victims.insert(a);
    ++activations;
  }
  void refresh() override { ++refreshes; }
  void deactivate() override {
    active_ = false;
    victims.clear();  // a real engine flushes all tables
    ++deactivations;
  }
  bool active() const noexcept override { return active_; }

  bool active_ = false;
  int activations = 0;
  int refreshes = 0;
  int deactivations = 0;
  core::VictimSet victims;
};

std::vector<AtrScore> scores_for(std::vector<sim::NodeId> routers) {
  std::vector<AtrScore> out;
  for (const sim::NodeId r : routers) {
    out.push_back(AtrScore{r, 1000.0, 0.5});
  }
  return out;
}

PushbackCoordinator::Config coord_cfg(bool latch = true) {
  PushbackCoordinator::Config cfg;
  cfg.control_delay = 0.01;
  cfg.refresh_interval = 0.1;
  cfg.latch = latch;
  return cfg;
}

TEST(CoordinatorMultiVictim, EngageActivatesPerRouterUnion) {
  sim::Simulator sim;
  PushbackCoordinator coord(&sim, coord_cfg());
  FakeActuator a0, a1;
  coord.register_actuator(0, &a0);
  coord.register_actuator(1, &a1);

  coord.engage_victim(/*victim=*/100, /*victim_router=*/2,
                      scores_for({0, 1}));
  EXPECT_TRUE(a0.active() && a1.active());
  EXPECT_TRUE(a0.victims.contains(100) && a1.victims.contains(100));
  EXPECT_TRUE(coord.triggered());

  // Second victim shares router 1 only: a1 gains victim 101, a0 is
  // untouched, and the ATR union covers both routers.
  coord.engage_victim(/*victim=*/101, /*victim_router=*/3, scores_for({1}));
  EXPECT_FALSE(a0.victims.contains(101));
  EXPECT_TRUE(a1.victims.contains(100) && a1.victims.contains(101));
  EXPECT_EQ(coord.engaged_atrs(), (std::vector<sim::NodeId>{0, 1}));
  ASSERT_EQ(coord.responses().size(), 2u);
  EXPECT_EQ(coord.responses().at(100).engagements, 1u);

  // Re-engaging with an already-known ATR is a no-op for the actuator.
  const int before = a0.activations;
  coord.engage_victim(100, 2, scores_for({0}));
  EXPECT_EQ(a0.activations, before);
}

TEST(CoordinatorMultiVictim, DisengageRetargetsSharedRoutersOnly) {
  sim::Simulator sim;
  PushbackCoordinator coord(&sim, coord_cfg());
  FakeActuator a0, a1;
  coord.register_actuator(0, &a0);
  coord.register_actuator(1, &a1);

  coord.engage_victim(100, 2, scores_for({0, 1}));
  coord.engage_victim(101, 3, scores_for({1}));

  coord.disengage_victim(100);
  // Router 0 was exclusive to victim 100: plain deactivation.
  EXPECT_FALSE(a0.active());
  // Router 1 is shared: flush + re-activate with the remaining victim.
  EXPECT_TRUE(a1.active());
  EXPECT_TRUE(a1.victims.contains(101));
  EXPECT_FALSE(a1.victims.contains(100));
  EXPECT_EQ(coord.retargets(), 1u);
  EXPECT_EQ(coord.engaged_atrs(), (std::vector<sim::NodeId>{1}));
  EXPECT_FALSE(coord.responses().at(100).engaged);
  EXPECT_GE(coord.responses().at(100).clear_time, 0.0);
  // The first trigger time survives the disengage for reporting.
  EXPECT_GE(coord.responses().at(100).trigger_time, 0.0);

  // Re-engagement counts and re-activates.
  coord.engage_victim(100, 2, scores_for({0}));
  EXPECT_TRUE(a0.active());
  EXPECT_EQ(coord.responses().at(100).engagements, 2u);
}

TEST(CoordinatorMultiVictim, RefreshCoversEveryEngagedResponse) {
  sim::Simulator sim;
  PushbackCoordinator coord(&sim, coord_cfg());
  FakeActuator a0, a1;
  coord.register_actuator(0, &a0);
  coord.register_actuator(1, &a1);

  coord.engage_victim(100, 2, scores_for({0}));
  coord.engage_victim(101, 3, scores_for({1}));
  sim.run_until(0.35);  // three refresh ticks
  EXPECT_GE(a0.refreshes, 3);
  EXPECT_GE(a1.refreshes, 3);
  // A shared router is refreshed once per tick, not once per victim.
  coord.engage_victim(101, 3, scores_for({0}));
  const int base = a0.refreshes;
  sim.run_until(0.45);
  EXPECT_LE(a0.refreshes - base, 1);

  coord.cancel();
  EXPECT_FALSE(a0.active());
  EXPECT_FALSE(a1.active());
  EXPECT_TRUE(coord.engaged_atrs().empty());
}

// ----------------------------------------------------- control plane e2e ---

struct PlaneHarness {
  explicit PlaneHarness(core::ShardWorkerPool* pool = nullptr,
                        bool latch = false) {
    ControlPlane::Config cfg;
    cfg.control_delay = 0.01;
    cfg.latch = latch;
    cfg.atr.share_threshold = 0.2;
    cfg.atr.min_intersection = 100;
    cfg.features.ewma.warmup_epochs = 1;
    cfg.features.ewma.trigger_factor = 2.0;
    cfg.features.ewma.clear_factor = 1.5;
    cfg.features.ewma.min_packets_per_epoch = 50;
    auto ccfg = coord_cfg(latch);
    coord = std::make_unique<PushbackCoordinator>(&sim, ccfg);
    plane = std::make_unique<ControlPlane>(&sim, coord.get(), cfg);
    coord->register_actuator(0, &a0);
    coord->register_actuator(1, &a1);
    // Victim A (addr 100) behind router 2, victim B (addr 101) behind 3.
    plane->protect(2, 100);
    plane->protect(3, 101);
    if (pool != nullptr) plane->set_pool(pool);
  }

  /// Schedules one epoch snapshot: router 0 -> victim A's router 2 with
  /// `to_a` packets, router 1 -> victim B's router 3 with `to_b`.
  void epoch_at(double t, std::uint64_t to_a, std::uint64_t to_b) {
    auto snap = make_snapshot(
        4, {{0, 2, to_a}, {1, 3, to_b}},
        static_cast<std::uint64_t>(t * 1e9), t);
    sim.schedule_at(t, [this, s = std::move(snap)] { plane->ingest(s); });
  }

  sim::Simulator sim;
  std::unique_ptr<PushbackCoordinator> coord;
  std::unique_ptr<ControlPlane> plane;
  FakeActuator a0, a1;
};

TEST(ControlPlane, EngagesEachVictimIndependently) {
  PlaneHarness h;
  // Baselines for both victims, then victim A is flooded; two epochs
  // later victim B too.
  h.epoch_at(0.1, 200, 200);
  h.epoch_at(0.2, 200, 200);
  h.epoch_at(0.3, 2000, 200);  // A floods
  h.epoch_at(0.4, 2000, 200);
  h.epoch_at(0.5, 2000, 2000);  // B floods

  h.sim.run_until(0.45);
  const auto& st = h.plane->statuses();
  ASSERT_EQ(st.size(), 2u);
  EXPECT_TRUE(st[0].alarming);
  EXPECT_TRUE(st[0].engaged);
  EXPECT_DOUBLE_EQ(st[0].trigger_time, 0.31);  // epoch + control delay
  EXPECT_EQ(st[0].atrs, (std::vector<sim::NodeId>{0}));
  EXPECT_TRUE(h.a0.active());
  EXPECT_TRUE(h.a0.victims.contains(100));
  // Victim B is still quiet: no alarm, no actuation at its ATR.
  EXPECT_FALSE(st[1].alarming);
  EXPECT_FALSE(st[1].engaged);
  EXPECT_FALSE(h.a1.active());

  h.sim.run_until(0.55);
  EXPECT_TRUE(h.plane->statuses()[1].engaged);
  EXPECT_DOUBLE_EQ(h.plane->statuses()[1].trigger_time, 0.51);
  EXPECT_TRUE(h.a1.active());
  EXPECT_TRUE(h.a1.victims.contains(101));
  EXPECT_EQ(h.plane->active_atrs(), (std::vector<sim::NodeId>{0, 1}));
}

TEST(ControlPlane, UnlatchedClearDisengagesAndReengages) {
  PlaneHarness h(nullptr, /*latch=*/false);
  h.epoch_at(0.1, 200, 200);
  h.epoch_at(0.2, 2000, 200);  // A floods -> engage
  h.epoch_at(0.3, 210, 200);   // subsides -> clear -> disengage
  h.epoch_at(0.4, 2000, 200);  // floods again -> re-engage

  h.sim.run_until(0.35);
  const auto& st = h.plane->statuses();
  EXPECT_FALSE(st[0].alarming);
  EXPECT_FALSE(st[0].engaged);
  EXPECT_DOUBLE_EQ(st[0].clear_time, 0.31);
  EXPECT_FALSE(h.a0.active());
  EXPECT_EQ(st[0].alarms, 1u);

  h.sim.run_until(0.45);
  EXPECT_TRUE(h.plane->statuses()[0].engaged);
  EXPECT_EQ(h.plane->statuses()[0].alarms, 2u);
  EXPECT_TRUE(h.a0.active());
  // The first trigger time is preserved across re-engagements.
  EXPECT_DOUBLE_EQ(h.plane->statuses()[0].trigger_time, 0.21);
  EXPECT_EQ(h.coord->responses().at(100).engagements, 2u);
}

TEST(ControlPlane, LatchedResponseSurvivesClear) {
  PlaneHarness h(nullptr, /*latch=*/true);
  h.epoch_at(0.1, 200, 200);
  h.epoch_at(0.2, 2000, 200);
  h.epoch_at(0.3, 210, 200);  // alarm clears, response must not

  h.sim.run_until(0.35);
  const auto& st = h.plane->statuses();
  EXPECT_FALSE(st[0].alarming);
  EXPECT_TRUE(st[0].engaged);
  EXPECT_LT(st[0].clear_time, 0.0);
  EXPECT_TRUE(h.a0.active());
}

TEST(ControlPlane, PooledDetectionIsBitIdenticalToInline) {
  core::ShardWorkerPool pool(2);
  PlaneHarness inline_h(nullptr, /*latch=*/false);
  PlaneHarness pooled_h(&pool, /*latch=*/false);
  for (PlaneHarness* h : {&inline_h, &pooled_h}) {
    h->epoch_at(0.1, 200, 200);
    h->epoch_at(0.2, 2000, 200);
    h->epoch_at(0.3, 2000, 2000);
    h->epoch_at(0.4, 210, 210);
    h->epoch_at(0.5, 2000, 200);
    h->sim.run_until(0.6);
  }
  EXPECT_EQ(pooled_h.plane->detection_steps_pooled(), 5u);
  EXPECT_EQ(inline_h.plane->detection_steps_pooled(), 0u);

  const auto& a = inline_h.plane->statuses();
  const auto& b = pooled_h.plane->statuses();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].alarming, b[i].alarming);
    EXPECT_EQ(a[i].engaged, b[i].engaged);
    EXPECT_EQ(a[i].alarms, b[i].alarms);
    EXPECT_DOUBLE_EQ(a[i].trigger_time, b[i].trigger_time);
    EXPECT_DOUBLE_EQ(a[i].clear_time, b[i].clear_time);
    EXPECT_EQ(a[i].atrs, b[i].atrs);
    EXPECT_DOUBLE_EQ(a[i].features.d, b[i].features.d);
    EXPECT_DOUBLE_EQ(a[i].features.velocity, b[i].features.velocity);
    EXPECT_DOUBLE_EQ(a[i].features.fan_in, b[i].features.fan_in);
  }
  EXPECT_EQ(inline_h.a0.activations, pooled_h.a0.activations);
  EXPECT_EQ(inline_h.a1.activations, pooled_h.a1.activations);
}

}  // namespace
}  // namespace mafic::pushback

// -------------------------------------------- experiment-level regression ---

namespace mafic::scenario {
namespace {

TEST(ControlPlaneExperiment, DetectorModeProtectsEveryVictim) {
  // Regression for the single-victim build_defense() bug: with
  // extra_victims > 0 only the primary destination was ever protected
  // (and only its access link sketch-tapped), so secondary victims never
  // triggered detector-mode defense. Every victim must now alarm and
  // engage on its own schedule.
  ExperimentConfig cfg;
  cfg.total_flows = 24;  // 18 legit + 6 zombies, 2 per victim
  cfg.tcp_fraction = 0.75;
  cfg.router_count = 12;
  cfg.seed = 7;
  cfg.extra_victims = 2;
  cfg.trigger = TriggerMode::kDetector;
  cfg.attack_army_total_bps = 60e6;
  // A victim's last-hop |Dj| also carries colocated hosts' egress (TCP
  // ack streams), so the floor sits above that background noise.
  cfg.pushback.detector.min_packets_per_epoch = 120;
  cfg.end_time = 10.0;

  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  ASSERT_EQ(r.per_victim.size(), 3u);
  for (std::size_t v = 0; v < r.per_victim.size(); ++v) {
    SCOPED_TRACE("victim " + std::to_string(v));
    EXPECT_GE(r.per_victim[v].alarms, 1u);
    EXPECT_GT(r.per_victim[v].trigger_time, cfg.attack_start);
    EXPECT_LT(r.per_victim[v].trigger_time, cfg.attack_start + 1.5);
  }
  // The per-victim ATR union still finds every zombie router.
  EXPECT_GE(r.atr.recall, 0.99);

  ASSERT_NE(exp.control_plane(), nullptr);
  EXPECT_GT(exp.control_plane()->epochs_observed(), 0u);
  EXPECT_EQ(exp.control_plane()->detection_steps_pooled(), 0u);
}

TEST(ControlPlaneExperiment, ThreadedDatapathRunsDetectionAsPoolWork) {
  ExperimentConfig cfg;
  cfg.total_flows = 24;
  cfg.tcp_fraction = 0.75;
  cfg.router_count = 12;
  cfg.seed = 7;
  cfg.extra_victims = 2;
  cfg.trigger = TriggerMode::kDetector;
  cfg.attack_army_total_bps = 60e6;
  cfg.pushback.detector.min_packets_per_epoch = 120;
  cfg.num_shards = 4;
  cfg.shard_threads = 2;
  cfg.link_burst_size = 8;
  cfg.end_time = 10.0;

  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  ASSERT_NE(exp.control_plane(), nullptr);
  // Every observed epoch ran its detection step on the worker pool.
  EXPECT_GT(exp.control_plane()->epochs_observed(), 0u);
  EXPECT_EQ(exp.control_plane()->detection_steps_pooled(),
            exp.control_plane()->epochs_observed());
  for (const auto& pv : r.per_victim) {
    EXPECT_GT(pv.trigger_time, cfg.attack_start);
  }
}

}  // namespace
}  // namespace mafic::scenario
