#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mafic::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_FALSE(sim.pending());
}

TEST(Simulator, ScheduleAdvancesClockOnRun) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule_at(7.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 7.0);
}

TEST(Simulator, PastTimesClampToNow) {
  Simulator sim;
  sim.schedule_at(5.0, [] {});
  sim.run();
  double seen = -1.0;
  sim.schedule_at(1.0, [&] { seen = sim.now(); });  // in the past
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  double seen = -1.0;
  sim.schedule(-3.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 0.0);
}

TEST(Simulator, RunUntilProcessesOnlyDueEvents) {
  Simulator sim;
  std::vector<int> ran;
  sim.schedule_at(1.0, [&] { ran.push_back(1); });
  sim.schedule_at(2.0, [&] { ran.push_back(2); });
  sim.schedule_at(3.0, [&] { ran.push_back(3); });
  sim.run_until(2.0);
  EXPECT_EQ(ran, (std::vector<int>{1, 2}));
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_TRUE(sim.pending());
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(4.0);
  EXPECT_DOUBLE_EQ(sim.now(), 4.0);
}

TEST(Simulator, NestedSchedulingWithinEvents) {
  Simulator sim;
  std::vector<double> times;
  sim.schedule(1.0, [&] {
    times.push_back(sim.now());
    sim.schedule(1.0, [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[0], 1.0);
  EXPECT_DOUBLE_EQ(times[1], 2.0);
}

TEST(Simulator, CancelPendingEvent) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, StopHaltsProcessing) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule(i, [&] {
      ++count;
      if (count == 3) sim.stop();
    });
  }
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_TRUE(sim.pending());
  sim.run();  // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulator, EventsProcessedCounter) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_EQ(sim.events_processed(), 5u);
}

TEST(Simulator, RunReturnsEventCount) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.schedule(2.0, [] {});
  EXPECT_EQ(sim.run(), 2u);
}

TEST(Simulator, SimultaneousEventsRunInScheduleOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, WheelTimersInterleaveWithQueueEvents) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_timer_at(0.030, [&] { order.push_back(3); });
  sim.schedule_at(0.010, [&] { order.push_back(1); });
  sim.schedule_timer_at(0.020, [&] { order.push_back(2); });
  sim.schedule_at(0.040, [&] { order.push_back(4); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 0.040);
}

TEST(Simulator, QueueEventsWinTiesAgainstWheelTimers) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_timer_at(0.010, [&] { order.push_back(2); });
  sim.schedule_at(0.010, [&] { order.push_back(1); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Simulator, CancelAndRescheduleTimers) {
  Simulator sim;
  bool cancelled_ran = false;
  std::vector<double> fired;
  const TimerId doomed =
      sim.schedule_timer(0.5, [&] { cancelled_ran = true; });
  const TimerId moved = sim.schedule_timer(0.5, [&] {
    fired.push_back(sim.now());
  });
  EXPECT_TRUE(sim.cancel_timer(doomed));
  EXPECT_TRUE(sim.reschedule_timer(moved, 1.5));
  sim.run();
  EXPECT_FALSE(cancelled_ran);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 1.5);
}

TEST(Simulator, TimerScheduledAfterIdlePeekFiresOnTime) {
  // Regression: run_until() peeks the wheel's next_time, advancing its
  // internal cursor toward a far-future timer; a timer scheduled *after*
  // that peek for an earlier time must still fire at its own time.
  Simulator sim;
  std::vector<double> fired;
  sim.schedule_timer_at(100.0, [&] { fired.push_back(sim.now()); });
  sim.run_until(1.0);  // nothing fires; merely peeks the wheel
  EXPECT_TRUE(fired.empty());
  sim.schedule_timer_at(2.0, [&] { fired.push_back(sim.now()); });
  sim.run_until(3.0);
  EXPECT_EQ(fired, (std::vector<double>{2.0}));
  sim.run();
  EXPECT_EQ(fired, (std::vector<double>{2.0, 100.0}));
}

}  // namespace
}  // namespace mafic::sim
