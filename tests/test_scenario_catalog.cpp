// Cross-strategy differential battery over the scenario catalog.
//
// Every catalog entry, shrunk by smoke_scale() at its fixed seed, must
// produce BIT-IDENTICAL decision statistics across the four comparable
// datapath strategies — scalar (num_shards=1), sharded (4), threaded
// (4 shards x 2 workers), fleet tick batching — extending the
// CoinMode::kPacketHash equivalence contract of PR 3/5/6 from bespoke
// wirings to the whole generated-workload catalog. The legacy head
// filter (num_shards=0) drops BEFORE the uplink queue, so its packet
// interleaving legitimately differs; it is sanity-checked, not
// bit-compared.
//
// FNV golden fingerprints pin each scenario's integer decision counts
// and per-victim stats at the catalog seed, so a change that shifts any
// decision anywhere in the catalog has to re-justify the goldens.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "scenario/scenario_catalog.hpp"
#include "scenario/scenario_spec.hpp"

namespace mafic::scenario {
namespace {

// One run per (entry, strategy) for the whole binary: the battery, the
// goldens and the sanity checks all read the same cached outcomes.
const ScenarioOutcome& outcome_of(const ScenarioSpec& smoke_spec,
                                  const Strategy& strat) {
  static std::map<std::string, ScenarioOutcome> cache;
  const std::string key = smoke_spec.name + "/" + strat.label;
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, run_scenario(smoke_spec, strat)).first;
  }
  return it->second;
}

TEST(ScenarioCatalog, ShipsTheRequiredShapes) {
  const auto& entries = catalog();
  ASSERT_GE(entries.size(), 6u);

  std::set<std::string> names;
  std::set<AttackShape> shapes;
  for (const auto& e : entries) {
    EXPECT_TRUE(names.insert(e.spec.name).second)
        << "duplicate catalog name " << e.spec.name;
    shapes.insert(e.spec.shape);
    EXPECT_GE(e.spec.victims, 1u);
    EXPECT_NE(e.motivation, nullptr);
    EXPECT_NE(e.expectation, nullptr);
  }
  // The issue's required workload axes, one named entry each.
  for (const char* required :
       {"pulse_shrew", "flash_crowd", "udp_flood", "carpet_bomb",
        "spoof_churn", "mixed_background"}) {
    EXPECT_NE(find_scenario(required), nullptr) << required;
  }
  for (const AttackShape s :
       {AttackShape::kNone, AttackShape::kFlood, AttackShape::kPulse,
        AttackShape::kCarpetBomb, AttackShape::kSpoofChurn}) {
    EXPECT_TRUE(shapes.count(s)) << "no entry with shape " << to_string(s);
  }
}

TEST(ScenarioCatalog, CrossStrategyBitIdentity) {
  const auto strategies = equivalence_strategies();
  ASSERT_EQ(strategies.size(), 4u);
  for (const auto& e : catalog()) {
    const ScenarioSpec spec = smoke_scale(e.spec);
    const ScenarioOutcome& base = outcome_of(spec, strategies.front());
    for (std::size_t s = 1; s < strategies.size(); ++s) {
      const ScenarioOutcome& other = outcome_of(spec, strategies[s]);
      SCOPED_TRACE(spec.name + ": " + strategies.front().label + " vs " +
                   strategies[s].label);
      // Field-by-field first so a mismatch names the diverging counter,
      // then the fingerprint seals everything at once.
      EXPECT_EQ(base.result.events_processed,
                other.result.events_processed);
      EXPECT_EQ(base.result.sft_admissions, other.result.sft_admissions);
      EXPECT_EQ(base.result.sft_evictions, other.result.sft_evictions);
      EXPECT_EQ(base.result.quota_evictions,
                other.result.quota_evictions);
      EXPECT_EQ(base.result.moved_to_nft, other.result.moved_to_nft);
      EXPECT_EQ(base.result.moved_to_pdt, other.result.moved_to_pdt);
      EXPECT_EQ(base.result.probes_issued, other.result.probes_issued);
      EXPECT_EQ(base.result.metrics.malicious_dropped,
                other.result.metrics.malicious_dropped);
      EXPECT_EQ(base.result.metrics.legit_dropped,
                other.result.metrics.legit_dropped);
      EXPECT_EQ(base.result.metrics.total_offered,
                other.result.metrics.total_offered);
      ASSERT_EQ(base.result.per_victim.size(),
                other.result.per_victim.size());
      for (std::size_t v = 0; v < base.result.per_victim.size(); ++v) {
        const auto& pa = base.result.per_victim[v];
        const auto& pb = other.result.per_victim[v];
        EXPECT_EQ(pa.victim, pb.victim);
        EXPECT_EQ(pa.decided_nice, pb.decided_nice);
        EXPECT_EQ(pa.decided_malicious, pb.decided_malicious);
        EXPECT_EQ(pa.evictions, pb.evictions);
        EXPECT_EQ(pa.quota_evictions, pb.quota_evictions);
      }
      EXPECT_EQ(base.fingerprint, other.fingerprint);
      EXPECT_EQ(base.phases_fired, other.phases_fired);
    }
  }
}

TEST(ScenarioCatalog, GoldenFingerprints) {
  // Pinned at the catalog seeds, smoke scale, scalar strategy. Any
  // decision shift anywhere re-opens these on purpose; regenerate with
  //   ./build/example_scenario_catalog --smoke
  const std::map<std::string, std::uint64_t> golden = {
      {"pulse_shrew", 0x466371f314e19833ULL},
      {"flash_crowd", 0x36de5ea54b1e51a3ULL},
      {"udp_flood", 0x8364f4e673a97f4eULL},
      {"carpet_bomb", 0x1c67126847ceb0a1ULL},
      {"spoof_churn", 0xe5dd84df552143aaULL},
      {"mixed_background", 0x2b4f1be0e45155b8ULL},
  };
  const Strategy scalar = equivalence_strategies().front();
  for (const auto& e : catalog()) {
    const ScenarioSpec spec = smoke_scale(e.spec);
    const auto it = golden.find(spec.name);
    ASSERT_NE(it, golden.end()) << "no golden for " << spec.name;
    EXPECT_EQ(outcome_of(spec, scalar).fingerprint, it->second)
        << spec.name << ": fingerprint drifted — decisions changed";
  }
}

TEST(ScenarioCatalog, TimelinesGenerateAndFireCompletely) {
  const Strategy scalar = equivalence_strategies().front();
  for (const auto& e : catalog()) {
    const ScenarioSpec spec = smoke_scale(e.spec);
    SCOPED_TRACE(spec.name);
    const Timeline tl = generate_timeline(spec);
    EXPECT_EQ(validate_timeline(spec, tl), "");
    const ScenarioOutcome& out = outcome_of(spec, scalar);
    EXPECT_EQ(out.timeline.size(), tl.size());
    // Every phase boundary inside the run window actually ran.
    EXPECT_EQ(out.phases_fired, tl.size());
    const bool dynamic = spec.shape == AttackShape::kPulse ||
                         spec.shape == AttackShape::kCarpetBomb ||
                         spec.shape == AttackShape::kSpoofChurn;
    if (dynamic) EXPECT_GT(tl.size(), 0u);
  }
}

TEST(ScenarioCatalog, EveryEntryDefendsAndReportsPerVictim) {
  const Strategy scalar = equivalence_strategies().front();
  for (const auto& e : catalog()) {
    const ScenarioSpec spec = smoke_scale(e.spec);
    SCOPED_TRACE(spec.name);
    const auto& r = outcome_of(spec, scalar).result;
    EXPECT_TRUE(r.metrics.triggered);
    EXPECT_EQ(r.per_victim.size(), spec.victims);
    std::uint64_t decisions = 0;
    for (const auto& pv : r.per_victim) {
      decisions += pv.decided_nice + pv.decided_malicious;
    }
    EXPECT_GT(decisions, 0u);
    EXPECT_GT(r.sft_admissions, 0u);
    if (spec.shape != AttackShape::kNone) {
      EXPECT_GT(r.metrics.malicious_dropped, 0u);
      // The defense cuts most of the flood in every shape.
      EXPECT_GT(r.metrics.alpha, 0.5);
    }
  }
}

TEST(ScenarioCatalog, HeadFilterStrategyRunsEveryEntry) {
  // The legacy pre-queue scalar filter: not bit-comparable (it drops
  // before the uplink queue, changing the arrival interleaving), but it
  // must keep running every generated workload.
  for (const auto& e : catalog()) {
    const ScenarioSpec spec = smoke_scale(e.spec);
    SCOPED_TRACE(spec.name);
    const ScenarioOutcome& out = outcome_of(spec, head_strategy());
    EXPECT_TRUE(out.result.metrics.triggered);
    EXPECT_GT(out.result.sft_admissions, 0u);
    EXPECT_EQ(out.phases_fired, out.timeline.size());
  }
}

TEST(ScenarioCatalog, SmokeScaleIsIdempotentAndBounded) {
  for (const auto& e : catalog()) {
    const ScenarioSpec once = smoke_scale(e.spec);
    const ScenarioSpec twice = smoke_scale(once);
    EXPECT_EQ(once.legit_flows, twice.legit_flows);
    EXPECT_EQ(once.zombies, twice.zombies);
    EXPECT_EQ(once.victims, twice.victims);
    EXPECT_EQ(once.end_time, twice.end_time);
    EXPECT_LE(once.legit_flows, 32u);
    EXPECT_LE(once.zombies, 8u);
    EXPECT_LE(once.victims, 4u);
    EXPECT_LE(once.victim_provisioned_bps.size(), once.victims);
  }
}

}  // namespace
}  // namespace mafic::scenario
