#include <gtest/gtest.h>

#include <cmath>

#include "sketch/hyperloglog.hpp"
#include "sketch/loglog.hpp"
#include "sketch/set_union.hpp"

namespace mafic::sketch {
namespace {

TEST(LogLog, EmptyEstimatesNearZero) {
  LogLog c(10);
  EXPECT_LT(c.estimate(), c.register_count() * 0.5);
  EXPECT_EQ(c.items_added(), 0u);
}

TEST(LogLog, RejectsBadPrecision) {
  EXPECT_THROW(LogLog(2), std::invalid_argument);
  EXPECT_THROW(LogLog(25), std::invalid_argument);
}

TEST(LogLog, DuplicatesDoNotInflate) {
  LogLog c(10);
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t i = 0; i < 100; ++i) c.add(i);
  }
  // 100 distinct items added 100 times each. LogLog is noisy at tiny
  // cardinalities; just verify it is nowhere near 10,000.
  EXPECT_LT(c.estimate(), 1000.0);
}

class LogLogAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogLogAccuracy, WithinFifteenPercent) {
  const std::uint64_t n = GetParam();
  LogLog c(11);  // m = 2048, stderr ~ 1.3/sqrt(2048) ~ 2.9%
  for (std::uint64_t i = 0; i < n; ++i) c.add(i * 0x9E3779B97F4A7C15ULL + i);
  EXPECT_NEAR(c.estimate(), double(n), double(n) * 0.15);
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, LogLogAccuracy,
                         ::testing::Values(5000, 20000, 100000, 500000));

class HllAccuracy : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HllAccuracy, WithinTenPercent) {
  const std::uint64_t n = GetParam();
  HyperLogLog c(11);
  for (std::uint64_t i = 0; i < n; ++i) c.add(i * 0x9E3779B97F4A7C15ULL + i);
  EXPECT_NEAR(c.estimate(), double(n), std::max(double(n) * 0.10, 8.0));
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(100, 5000, 100000, 500000));

TEST(HyperLogLog, SmallRangeCorrectionIsAccurate) {
  HyperLogLog c(10);
  for (std::uint64_t i = 0; i < 50; ++i) c.add(i);
  // Linear counting regime: should be very tight.
  EXPECT_NEAR(c.estimate(), 50.0, 5.0);
}

TEST(LogLog, MergeEqualsUnionOfStreams) {
  LogLog a(10, 42), b(10, 42), whole(10, 42);
  for (std::uint64_t i = 0; i < 40000; ++i) {
    if (i % 2 == 0) a.add(i);
    if (i % 3 == 0) b.add(i);
    if (i % 2 == 0 || i % 3 == 0) whole.add(i);
  }
  LogLog merged = a;
  merged.merge(b);
  EXPECT_NEAR(merged.estimate(), whole.estimate(), 1e-9);
}

TEST(LogLog, MergeRequiresCompatibility) {
  LogLog a(10, 1), b(10, 2), c(11, 1);
  EXPECT_THROW(a.merge(b), std::invalid_argument);  // different seed
  EXPECT_THROW(a.merge(c), std::invalid_argument);  // different precision
  EXPECT_FALSE(a.compatible(b));
  LogLog d(10, 1);
  EXPECT_TRUE(a.compatible(d));
}

TEST(LogLog, UnionEstimateDoesNotMutate) {
  LogLog a(10), b(10);
  for (std::uint64_t i = 0; i < 1000; ++i) a.add(i);
  for (std::uint64_t i = 500; i < 1500; ++i) b.add(i);
  const double ea = a.estimate();
  (void)LogLog::union_estimate(a, b);
  EXPECT_DOUBLE_EQ(a.estimate(), ea);
}

TEST(LogLog, ResetClearsRegisters) {
  LogLog c(10);
  for (std::uint64_t i = 0; i < 10000; ++i) c.add(i);
  c.reset();
  EXPECT_EQ(c.items_added(), 0u);
  EXPECT_LT(c.estimate(), 500.0);
}

TEST(LogLog, MemoryFootprintMatchesRegisters) {
  EXPECT_EQ(LogLog(10).memory_bytes(), 1024u);
  EXPECT_EQ(LogLog(12).memory_bytes(), 4096u);
}

TEST(SetUnion, IntersectionEstimateAccuracy) {
  // |A| = 60k, |B| = 60k, |A ∩ B| = 20k.
  LogLog a(12, 7), b(12, 7);
  for (std::uint64_t i = 0; i < 60000; ++i) a.add(i);
  for (std::uint64_t i = 40000; i < 100000; ++i) b.add(i);
  const double inter = intersection_estimate(a, b);
  // Inclusion-exclusion amplifies sketch error; allow a generous band.
  EXPECT_NEAR(inter, 20000.0, 8000.0);
}

TEST(SetUnion, DisjointSetsEstimateNearZero) {
  LogLog a(12, 7), b(12, 7);
  for (std::uint64_t i = 0; i < 50000; ++i) a.add(i);
  for (std::uint64_t i = 100000; i < 150000; ++i) b.add(i);
  // Clamped at zero; noise may produce a small positive value.
  EXPECT_LT(intersection_estimate(a, b), 7000.0);
  EXPECT_GE(intersection_estimate(a, b), 0.0);
}

TEST(SetUnion, OverlapFractionBounds) {
  LogLog a(11, 3), b(11, 3);
  for (std::uint64_t i = 0; i < 30000; ++i) {
    a.add(i);
    b.add(i);
  }
  EXPECT_GT(overlap_fraction(a, b), 0.8);  // identical sets
  EXPECT_LE(overlap_fraction(a, b), 1.0);
}

TEST(SetUnion, WorksWithHyperLogLogToo) {
  HyperLogLog a(12, 7), b(12, 7);
  for (std::uint64_t i = 0; i < 60000; ++i) a.add(i);
  for (std::uint64_t i = 40000; i < 100000; ++i) b.add(i);
  EXPECT_NEAR(intersection_estimate(a, b), 20000.0, 6000.0);
}

TEST(Sketch, HllBeatsLogLogOnAverage) {
  // The ablation claim (A2): HLL's constant is smaller. Compare mean
  // absolute relative error over several disjoint streams.
  double ll_err = 0, hll_err = 0;
  const int kRuns = 8;
  const std::uint64_t n = 50000;
  for (int run = 0; run < kRuns; ++run) {
    LogLog ll(10, 99);
    HyperLogLog hll(10, 99);
    const std::uint64_t base = run * 10'000'000ULL;
    for (std::uint64_t i = 0; i < n; ++i) {
      ll.add(base + i);
      hll.add(base + i);
    }
    ll_err += std::abs(ll.estimate() - double(n)) / double(n);
    hll_err += std::abs(hll.estimate() - double(n)) / double(n);
  }
  EXPECT_LT(hll_err / kRuns, 0.08);
  EXPECT_LT(ll_err / kRuns, 0.15);
}

}  // namespace
}  // namespace mafic::sketch
