#include "topology/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "sim/simulator.hpp"

namespace mafic::topology {
namespace {

TEST(Dumbbell, StructureAndRouting) {
  sim::Simulator sim;
  sim::Network net(&sim);
  DumbbellConfig cfg;
  cfg.left_hosts = 3;
  cfg.right_hosts = 2;
  const Dumbbell d = build_dumbbell(net, cfg);

  EXPECT_EQ(d.left_hosts.size(), 3u);
  EXPECT_EQ(d.right_hosts.size(), 2u);
  ASSERT_NE(d.bottleneck_forward, nullptr);
  EXPECT_EQ(d.bottleneck_forward->from(), d.left_router);
  EXPECT_EQ(d.bottleneck_forward->to(), d.right_router);
  // 2 routers + 5 hosts; duplex everywhere: 2*(1 + 5) links.
  EXPECT_EQ(net.node_count(), 7u);
  EXPECT_EQ(net.link_count(), 12u);

  // Left host can route to right host.
  sim::Node* lh = net.node(d.left_hosts[0]);
  sim::Node* rh = net.node(d.right_hosts[0]);
  EXPECT_NE(lh->route_for(rh->addr()), nullptr);
}

class DomainTest : public ::testing::Test {
 protected:
  void build(std::size_t routers) {
    cfg.router_count = routers;
    net = std::make_unique<sim::Network>(&sim);
    domain = std::make_unique<Domain>(net.get(), util::Rng(11), cfg);
    domain->build_core();
  }

  sim::Simulator sim;
  DomainConfig cfg;
  std::unique_ptr<sim::Network> net;
  std::unique_ptr<Domain> domain;
};

TEST_F(DomainTest, BuildsRequestedRouterCount) {
  build(40);
  EXPECT_EQ(domain->routers().size(), 40u);
  EXPECT_NE(domain->victim_host(), sim::kInvalidNode);
  EXPECT_EQ(domain->victim_router(), domain->routers().front());
}

TEST_F(DomainTest, VictimLinkUsesVictimConfig) {
  cfg.victim_bandwidth_bps = 1.5e6;
  build(10);
  EXPECT_DOUBLE_EQ(
      domain->victim_access().downlink->config().bandwidth_bps, 1.5e6);
}

TEST_F(DomainTest, CoreIsConnected) {
  build(60);
  net->build_routes();
  // Every router must reach the victim host.
  const util::Addr victim = domain->victim_addr();
  for (const auto r : domain->routers()) {
    if (r == domain->victim_router()) continue;
    EXPECT_NE(net->node(r)->route_for(victim), nullptr)
        << "router " << r << " cannot reach the victim";
  }
}

TEST_F(DomainTest, AttachHostAllocatesUniqueRegisteredAddresses) {
  build(10);
  std::set<util::Addr> addrs;
  for (int i = 0; i < 50; ++i) {
    auto& access = domain->attach_host();
    sim::Node* host = net->node(access.host);
    EXPECT_TRUE(addrs.insert(host->addr()).second);
    EXPECT_TRUE(domain->validator().is_reachable(host->addr()));
    EXPECT_NE(access.router, domain->victim_router());
    EXPECT_EQ(access.uplink->from(), access.host);
    EXPECT_EQ(access.uplink->to(), access.router);
    EXPECT_EQ(access.downlink->from(), access.router);
  }
  EXPECT_EQ(domain->host_addresses().size(), 50u);
}

TEST_F(DomainTest, AttachHostToSpecificRouter) {
  build(10);
  const sim::NodeId target = domain->routers()[5];
  auto& access = domain->attach_host(target);
  EXPECT_EQ(access.router, target);
}

TEST_F(DomainTest, AttachHostRejectsUnknownRouter) {
  build(5);
  EXPECT_THROW(domain->attach_host(sim::NodeId{9999}), std::invalid_argument);
}

TEST_F(DomainTest, HostsReachVictimAfterRouting) {
  build(20);
  std::vector<sim::NodeId> hosts;
  for (int i = 0; i < 10; ++i) hosts.push_back(domain->attach_host().host);
  net->build_routes();
  for (const auto h : hosts) {
    EXPECT_NE(net->node(h)->route_for(domain->victim_addr()), nullptr);
  }
}

TEST_F(DomainTest, SpoofSubnetsBehaveAsDocumented) {
  build(10);
  auto& access = domain->attach_host();
  (void)access;
  const auto& v = domain->validator();
  // Unreachable: legal prefix, never allocated.
  const util::Addr u = domain->unreachable_subnet().base + 1;
  EXPECT_TRUE(v.is_legal(u));
  EXPECT_FALSE(v.is_reachable(u));
  // Illegal: outside every registered subnet.
  const util::Addr i = domain->illegal_subnet().base + 1;
  EXPECT_FALSE(v.is_legal(i));
}

TEST_F(DomainTest, IngressRoutersExcludeVictimRouter) {
  build(10);
  const auto ingress = domain->ingress_routers();
  EXPECT_EQ(ingress.size(), 9u);
  for (const auto r : ingress) EXPECT_NE(r, domain->victim_router());
}

TEST_F(DomainTest, BuildCoreTwiceThrows) {
  build(5);
  EXPECT_THROW(domain->build_core(), std::logic_error);
}

TEST_F(DomainTest, TooFewRoutersThrows) {
  cfg.router_count = 1;
  net = std::make_unique<sim::Network>(&sim);
  domain = std::make_unique<Domain>(net.get(), util::Rng(1), cfg);
  EXPECT_THROW(domain->build_core(), std::invalid_argument);
}

class DomainSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DomainSizeSweep, AllSizesConnected) {
  sim::Simulator sim;
  sim::Network net(&sim);
  DomainConfig cfg;
  cfg.router_count = GetParam();
  Domain domain(&net, util::Rng(3), cfg);
  domain.build_core();
  for (int i = 0; i < 5; ++i) domain.attach_host();
  net.build_routes();
  for (const auto& access : domain.access_links()) {
    EXPECT_NE(net.node(access.host)->route_for(domain.victim_addr()),
              nullptr);
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, DomainSizeSweep,
                         ::testing::Values(20, 40, 80, 120, 160));

}  // namespace
}  // namespace mafic::topology
