#include "core/mafic_filter.hpp"

#include <gtest/gtest.h>

#include "attack/zombie.hpp"
#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/cbr.hpp"
#include "transport/tcp.hpp"
#include "transport/tcp_sink.hpp"
#include "transport/udp.hpp"

namespace mafic::core {
namespace {

/// Fixture: two source hosts behind an ATR router, a victim behind a second
/// router. A MaficFilter guards each source's uplink.
class MaficFilterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    src_a = net->add_host(util::make_addr(172, 16, 0, 1));
    src_b = net->add_host(util::make_addr(172, 16, 0, 2));
    atr = net->add_router(util::make_addr(10, 0, 0, 1));
    last_hop = net->add_router(util::make_addr(10, 0, 0, 2));
    victim = net->add_host(util::make_addr(172, 17, 0, 1));

    sim::SimplexLink::Config fast;
    fast.bandwidth_bps = 100e6;
    fast.delay_s = 0.005;
    auto [a_up_fwd, a_up_bwd] = net->add_duplex(src_a->id(), atr->id(), fast);
    (void)a_up_bwd;
    auto [b_up_fwd, b_up_bwd] = net->add_duplex(src_b->id(), atr->id(), fast);
    (void)b_up_bwd;
    net->add_duplex(atr->id(), last_hop->id(), fast);
    net->add_duplex(last_hop->id(), victim->id(), fast);
    net->build_routes();

    validator.add_subnet({util::make_addr(172, 16, 0, 0), 16});
    validator.add_subnet({util::make_addr(172, 17, 0, 0), 16});
    validator.add_subnet({util::make_addr(10, 0, 0, 0), 8});
    validator.add_host(src_a->addr());
    validator.add_host(src_b->addr());
    validator.add_host(victim->addr());
    policy = std::make_unique<AddressPolicy>(&validator);

    cfg.default_rtt = 0.1;  // 0.2 s probation windows: roomy for tests
    cfg.drop_probability = 0.9;

    auto make_filter = [&](sim::SimplexLink* uplink) {
      auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                             policy.get(), util::Rng(5));
      MaficFilter* raw = f.get();
      uplink->add_head_filter(std::move(f));
      return raw;
    };
    filter_a = make_filter(a_up_fwd);
    filter_b = make_filter(b_up_fwd);
  }

  void activate_all() {
    const VictimSet victims{victim->addr()};
    filter_a->activate(victims);
    filter_b->activate(victims);
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  sim::Node *src_a{}, *src_b{}, *atr{}, *last_hop{}, *victim{};
  util::AddressValidator validator;
  std::unique_ptr<AddressPolicy> policy;
  MaficConfig cfg;
  MaficFilter* filter_a{};
  MaficFilter* filter_b{};
};

TEST_F(MaficFilterTest, InactiveFiltersForwardEverything) {
  transport::UdpSink sink(&sim, &factory, victim, 80);
  transport::CbrSource src(&sim, &factory, src_a, 5000,
                           {.rate_bps = 1e6, .packet_bytes = 500,
                            .jitter_fraction = 0.0},
                           util::Rng(1));
  src.connect(victim->addr(), 80);
  src.start();
  sim.run_until(1.0);
  EXPECT_EQ(filter_a->stats().offered, 0u);
  EXPECT_GT(sink.packets_received(), 200u);
}

TEST_F(MaficFilterTest, ActiveFilterIgnoresOtherDestinations) {
  activate_all();
  // Traffic from A to B does not target the victim.
  transport::UdpSink sink(&sim, &factory, src_b, 80);
  transport::CbrSource src(&sim, &factory, src_a, 5000,
                           {.rate_bps = 1e6, .packet_bytes = 500,
                            .jitter_fraction = 0.0},
                           util::Rng(1));
  src.connect(src_b->addr(), 80);
  src.start();
  sim.run_until(0.5);
  EXPECT_EQ(filter_a->stats().offered, 0u);
  EXPECT_GT(sink.packets_received(), 100u);
}

TEST_F(MaficFilterTest, IllegalSourceGoesStraightToPdt) {
  activate_all();
  auto p = factory.make();
  p->label = sim::FlowLabel{util::make_addr(203, 0, 113, 5), victim->addr(),
                            5000, 80};
  p->proto = sim::Protocol::kTcp;
  p->size_bytes = 500;
  src_a->send(std::move(p));
  sim.run();
  EXPECT_EQ(filter_a->stats().screened_sources, 1u);
  EXPECT_EQ(filter_a->stats().dropped_pdt, 1u);
  EXPECT_EQ(filter_a->tables().pdt_size(), 1u);
  EXPECT_EQ(filter_a->tables().stats().direct_pdt, 1u);
}

TEST_F(MaficFilterTest, UnreachableSourceGoesStraightToPdt) {
  activate_all();
  auto p = factory.make();
  // 172.16.200.1 is inside a registered subnet but never allocated.
  p->label = sim::FlowLabel{util::make_addr(172, 16, 200, 1),
                            victim->addr(), 5000, 80};
  p->proto = sim::Protocol::kTcp;
  p->size_bytes = 500;
  src_a->send(std::move(p));
  sim.run();
  EXPECT_EQ(filter_a->stats().screened_sources, 1u);
}

TEST_F(MaficFilterTest, ScreeningCanBeDisabled) {
  cfg.address_screening = false;
  auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                         policy.get(), util::Rng(5));
  MaficFilter* raw = f.get();
  raw->activate({victim->addr()});
  auto p = factory.make();
  p->label = sim::FlowLabel{util::make_addr(203, 0, 113, 5), victim->addr(),
                            5000, 80};
  p->size_bytes = 100;
  // Feed directly: inspect is protected, so route through recv().
  raw->set_target(nullptr);
  raw->recv(std::move(p));
  EXPECT_EQ(raw->stats().screened_sources, 0u);
}

TEST_F(MaficFilterTest, UnresponsiveFlowEndsInPdt) {
  transport::UdpSink sink(&sim, &factory, victim, 80);
  attack::Flooder::Config zc;
  zc.rate_bps = 2e6;
  zc.packet_bytes = 500;  // 500 pkt/s
  attack::Flooder zombie(&sim, &factory, src_a, 5000, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(0.5);
  const auto before = sink.packets_received();
  activate_all();
  sim.run_until(1.5);

  EXPECT_TRUE(filter_a->tables().in_pdt(sim::hash_label(zombie.wire_label())));
  EXPECT_EQ(filter_a->stats().decided_malicious, 1u);
  EXPECT_EQ(filter_a->stats().decided_nice, 0u);
  // After classification (+0.2 s) every packet is dropped: at most the
  // probation leak got through.
  const auto after = sink.packets_received() - before;
  EXPECT_LT(after, 60u);  // ~500/s for 1 s would be 500 unfiltered
  EXPECT_GT(filter_a->stats().dropped_pdt, 300u);
}

TEST_F(MaficFilterTest, ResponsiveTcpFlowEndsInNftAndRecovers) {
  transport::TcpSink sink(&sim, &factory, victim, 80);
  transport::TcpSender sender(&sim, &factory, src_a, 5000);
  sender.connect(victim->addr(), 80);
  sink.connect(src_a->addr(), 5000);
  sender.start();
  sim.run_until(1.0);
  activate_all();
  sim.run_until(2.0);

  const auto key = sim::hash_label(sender.label());
  EXPECT_TRUE(filter_a->tables().in_nft(key));
  EXPECT_EQ(filter_a->stats().decided_malicious, 0u);

  // NFT flows are never dropped again: goodput resumes.
  const auto delivered_at_2 = sink.stats().unique_delivered;
  sim.run_until(3.0);
  EXPECT_GT(sink.stats().unique_delivered, delivered_at_2 + 100);
}

TEST_F(MaficFilterTest, ProbeIsSentForSuspiciousFlows) {
  attack::Flooder::Config zc;
  zc.rate_bps = 2e6;
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_a, 5000, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(0.2);
  activate_all();
  sim.run_until(1.0);
  EXPECT_EQ(filter_a->stats().probes_issued, 1u);
  EXPECT_EQ(filter_a->prober().probe_packets_sent(), cfg.probe_dup_acks);
  // The zombie received and ignored the probe duplicate ACKs.
  EXPECT_GE(zombie.feedback_ignored(), std::uint64_t(cfg.probe_dup_acks));
}

TEST_F(MaficFilterTest, ThinFlowGetsBenefitOfDoubt) {
  transport::UdpSink sink(&sim, &factory, victim, 80);
  transport::CbrSource trickle(&sim, &factory, src_a, 5000,
                               {.rate_bps = 20e3, .packet_bytes = 500,
                                .jitter_fraction = 0.0},
                               util::Rng(3));  // 5 pkt/s: ~0.5 per window half
  trickle.connect(victim->addr(), 80);
  trickle.start();
  sim.run_until(0.5);
  activate_all();
  sim.run_until(3.0);
  const auto key = sim::hash_label(trickle.label());
  EXPECT_TRUE(filter_a->tables().in_nft(key));
}

TEST_F(MaficFilterTest, DropAllInSftModeDropsDeterministically) {
  cfg.drop_all_in_sft = true;
  auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                         policy.get(), util::Rng(5));
  MaficFilter* raw = f.get();
  net->find_link(src_b->id(), atr->id())->add_head_filter(std::move(f));
  raw->activate({victim->addr()});

  transport::UdpSink sink(&sim, &factory, victim, 80);
  attack::Flooder::Config zc;
  zc.rate_bps = 2e6;
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_b, 5001, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(1.0);
  // Once in SFT, everything is dropped; only pre-admission packets could
  // pass (about (1-Pd)/Pd of one packet on average).
  EXPECT_LT(sink.packets_received(), 5u);
}

TEST_F(MaficFilterTest, DeactivateFlushesAndForwards) {
  activate_all();
  attack::Flooder::Config zc;
  zc.rate_bps = 2e6;
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_a, 5000, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(1.0);
  EXPECT_GT(filter_a->tables().pdt_size(), 0u);

  filter_a->deactivate();
  EXPECT_FALSE(filter_a->active());
  EXPECT_EQ(filter_a->tables().pdt_size(), 0u);
  EXPECT_EQ(filter_a->tables().sft_size(), 0u);

  transport::UdpSink sink(&sim, &factory, victim, 80);
  const auto dropped = filter_a->stats().dropped_pdt;
  sim.run_until(2.0);
  EXPECT_EQ(filter_a->stats().dropped_pdt, dropped);  // no more drops
  EXPECT_GT(sink.packets_received(), 300u);           // flood passes again
}

TEST_F(MaficFilterTest, RefreshTimeoutSelfDeactivates) {
  cfg.refresh_timeout = 0.5;
  auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                         policy.get(), util::Rng(5));
  MaficFilter* raw = f.get();
  net->find_link(src_b->id(), atr->id())->add_head_filter(std::move(f));
  raw->activate({victim->addr()});
  EXPECT_TRUE(raw->active());
  sim.run_until(0.6);  // no refresh arrives
  EXPECT_FALSE(raw->active());
}

TEST_F(MaficFilterTest, RefreshExtendsActivation) {
  cfg.refresh_timeout = 0.5;
  auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                         policy.get(), util::Rng(5));
  MaficFilter* raw = f.get();
  net->find_link(src_b->id(), atr->id())->add_head_filter(std::move(f));
  raw->activate({victim->addr()});
  for (int i = 1; i <= 4; ++i) {
    sim.schedule_at(0.3 * i, [raw] { raw->refresh(); });
  }
  sim.run_until(1.4);
  EXPECT_TRUE(raw->active());
  sim.run_until(2.5);  // refreshes stopped at 1.2 -> expires at 1.7
  EXPECT_FALSE(raw->active());
}

TEST_F(MaficFilterTest, OfferedCallbackSeesVictimBoundPackets) {
  activate_all();
  std::uint64_t offered = 0;
  filter_a->set_offered_callback([&](const sim::Packet&) { ++offered; });
  attack::Flooder::Config zc;
  zc.rate_bps = 1e6;
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_a, 5000, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(0.5);
  EXPECT_EQ(offered, filter_a->stats().offered);
  EXPECT_GT(offered, 50u);
}

TEST_F(MaficFilterTest, ClassificationCallbackReportsOutcome) {
  activate_all();
  std::vector<TableKind> outcomes;
  filter_a->set_classification_callback(
      [&](const SftEntry& e, TableKind kind) {
        EXPECT_GT(e.baseline_count, 0u);
        outcomes.push_back(kind);
      });
  attack::Flooder::Config zc;
  zc.rate_bps = 2e6;
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_a, 5000, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(1.0);
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0], TableKind::kPermanentDrop);
}

TEST_F(MaficFilterTest, ProbationDropRateTracksPd) {
  // With probing disabled and an unresponsive source, drops during the
  // window should match Pd statistically.
  cfg.probe_enabled = false;
  cfg.default_rtt = 0.1;  // window 0.2 s
  auto f = std::make_unique<MaficFilter>(&sim, &factory, atr, cfg,
                                         policy.get(), util::Rng(5));
  MaficFilter* raw = f.get();
  net->find_link(src_b->id(), atr->id())->add_head_filter(std::move(f));
  raw->activate({victim->addr()});

  attack::Flooder::Config zc;
  zc.rate_bps = 20e6;  // 5000 pkt/s -> ~1000 packets in the window
  zc.packet_bytes = 500;
  attack::Flooder zombie(&sim, &factory, src_b, 5001, zc, util::Rng(2));
  zombie.connect(victim->addr(), 80);
  zombie.start();
  sim.run_until(0.19);  // stay inside the probation window
  const double offered = double(raw->stats().offered);
  const double dropped = double(raw->stats().dropped_probation);
  ASSERT_GT(offered, 500.0);
  EXPECT_NEAR(dropped / offered, 0.9, 0.05);
}

}  // namespace
}  // namespace mafic::core
