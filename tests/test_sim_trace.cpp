#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "sim/network.hpp"

namespace mafic::sim {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<Network>(&sim);
    a = net->add_host(util::make_addr(172, 16, 0, 1));
    b = net->add_host(util::make_addr(172, 17, 0, 1));
    SimplexLink::Config cfg;
    cfg.bandwidth_bps = 1e6;
    cfg.delay_s = 0.01;
    auto [fwd, bwd] = net->add_duplex(a->id(), b->id(), cfg);
    forward = fwd;
    (void)bwd;
    net->build_routes();
  }

  PacketPtr packet(std::uint32_t seq = 1) {
    auto p = factory.make();
    p->label = FlowLabel{a->addr(), b->addr(), 5000, 80};
    p->proto = Protocol::kTcp;
    p->flags = tcp_flags::kAck;
    p->size_bytes = 1000;
    p->seq = seq;
    p->flow_id = 12;
    return p;
  }

  Simulator sim;
  PacketFactory factory;
  std::unique_ptr<Network> net;
  Node *a{}, *b{};
  SimplexLink* forward{};
};

TEST_F(TraceTest, RecordsEnqueueAndReceive) {
  std::ostringstream out;
  TraceWriter writer(&out);
  LinkTracer tracer(&sim, forward, &writer);

  a->send(packet());
  sim.run();

  const std::string text = out.str();
  EXPECT_NE(text.find("+ 0.000000"), std::string::npos);
  EXPECT_NE(text.find("r 0.018000"), std::string::npos);  // 8ms tx + 10ms
  EXPECT_NE(text.find("tcp 1000 ---A 12"), std::string::npos);
  EXPECT_NE(text.find("172.16.0.1:5000 172.17.0.1:80"), std::string::npos);
  EXPECT_EQ(writer.events_recorded(), 2u);
  EXPECT_EQ(writer.lines_written(), 2u);
}

TEST_F(TraceTest, DropHandlerRecordsReason) {
  std::ostringstream out;
  TraceWriter writer(&out);
  forward->set_drop_handler(trace_drop_handler(&writer, &sim));

  // Overflow the queue: 64-packet default + 1 transmitting.
  for (int i = 0; i < 80; ++i) a->send(packet(std::uint32_t(i)));
  sim.run();

  const std::string text = out.str();
  EXPECT_NE(text.find("d "), std::string::npos);
  EXPECT_NE(text.find("queue-overflow"), std::string::npos);
  EXPECT_GT(writer.events_recorded(), 10u);
}

TEST_F(TraceTest, ProbePacketsFlagged) {
  std::ostringstream out;
  TraceWriter writer(&out);
  LinkTracer tracer(&sim, forward, &writer);
  auto p = packet();
  p->probe = true;
  a->send(std::move(p));
  sim.run();
  EXPECT_NE(out.str().find("--PA"), std::string::npos);
}

TEST_F(TraceTest, LineLimitCapsOutputButCountsEvents) {
  std::ostringstream out;
  TraceWriter writer(&out);
  writer.set_line_limit(3);
  LinkTracer tracer(&sim, forward, &writer);
  for (int i = 0; i < 10; ++i) a->send(packet(std::uint32_t(i)));
  sim.run();
  EXPECT_EQ(writer.lines_written(), 3u);
  EXPECT_EQ(writer.events_recorded(), 20u);  // 10 enqueues + 10 receives
}

TEST_F(TraceTest, NullStreamCountsOnly) {
  TraceWriter writer(nullptr);
  LinkTracer tracer(&sim, forward, &writer);
  a->send(packet());
  sim.run();
  EXPECT_EQ(writer.events_recorded(), 2u);
  EXPECT_EQ(writer.lines_written(), 0u);
}

}  // namespace
}  // namespace mafic::sim
