// Tests for the TCP fidelity options: delayed ACKs on the sink and
// application-limited (paced) sending on the sender.

#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/tcp.hpp"
#include "transport/tcp_sink.hpp"

namespace mafic::transport {
namespace {

class TcpOptionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    topology::DumbbellConfig cfg;
    cfg.left_hosts = 1;
    cfg.right_hosts = 1;
    cfg.bottleneck_bandwidth_bps = 10e6;  // roomy: no congestive loss
    cfg.bottleneck_queue_packets = 200;
    bell = topology::build_dumbbell(*net, cfg);
    src_node = net->node(bell.left_hosts[0]);
    dst_node = net->node(bell.right_hosts[0]);
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  topology::Dumbbell bell;
  sim::Node* src_node{};
  sim::Node* dst_node{};
};

TEST_F(TcpOptionsTest, DelayedAckRoughlyHalvesAckCount) {
  TcpSink::Config immediate{};
  TcpSink::Config delayed{};
  delayed.delayed_ack = true;
  delayed.ack_delay_s = 0.2;

  std::uint64_t acks_immediate = 0, acks_delayed = 0;
  std::uint64_t delivered_immediate = 0, delivered_delayed = 0;
  for (const bool use_delayed : {false, true}) {
    sim::Simulator local_sim;
    sim::PacketFactory local_factory;
    sim::Network local_net(&local_sim);
    topology::DumbbellConfig dcfg;
    dcfg.bottleneck_bandwidth_bps = 10e6;
    dcfg.bottleneck_queue_packets = 200;
    const auto d = topology::build_dumbbell(local_net, dcfg);
    sim::Node* src = local_net.node(d.left_hosts[0]);
    sim::Node* dst = local_net.node(d.right_hosts[0]);

    TcpSender sender(&local_sim, &local_factory, src, 5000);
    TcpSink sink(&local_sim, &local_factory, dst, 80,
                 use_delayed ? delayed : immediate);
    sender.connect(dst->addr(), 80);
    sink.connect(src->addr(), 5000);
    sender.start();
    local_sim.run_until(2.0);
    sender.stop();
    if (use_delayed) {
      acks_delayed = sink.stats().acks_sent;
      delivered_delayed = sink.stats().unique_delivered;
    } else {
      acks_immediate = sink.stats().acks_sent;
      delivered_immediate = sink.stats().unique_delivered;
    }
  }
  // The stream still flows (within 40%) with roughly half the ACKs.
  EXPECT_GT(delivered_delayed, delivered_immediate / 2);
  EXPECT_LT(double(acks_delayed) / double(delivered_delayed), 0.7);
  EXPECT_NEAR(double(acks_immediate) / double(delivered_immediate), 1.0,
              0.1);
}

TEST_F(TcpOptionsTest, DelayedAckStillSendsImmediateDupAcks) {
  TcpSink::Config cfg;
  cfg.delayed_ack = true;
  TcpSink sink(&sim, &factory, dst_node, 80, cfg);
  auto data = [&](std::uint32_t seq) {
    auto p = factory.make();
    p->label = sim::FlowLabel{src_node->addr(), dst_node->addr(), 5000, 80};
    p->proto = sim::Protocol::kTcp;
    p->size_bytes = 1000;
    p->seq = seq;
    sink.recv(std::move(p));
  };
  data(1);
  data(3);  // gap at 2 -> must dup-ACK immediately despite delayed mode
  data(4);
  EXPECT_EQ(sink.stats().dup_acks_sent, 2u);
}

TEST_F(TcpOptionsTest, DelayedAckTimerFlushesLoneSegment) {
  TcpSink::Config cfg;
  cfg.delayed_ack = true;
  cfg.ack_delay_s = 0.1;
  TcpSink sink(&sim, &factory, dst_node, 80, cfg);
  auto p = factory.make();
  p->label = sim::FlowLabel{src_node->addr(), dst_node->addr(), 5000, 80};
  p->proto = sim::Protocol::kTcp;
  p->size_bytes = 1000;
  p->seq = 1;
  sink.recv(std::move(p));
  EXPECT_EQ(sink.stats().acks_sent, 0u);  // held back
  sim.run_until(0.2);
  EXPECT_EQ(sink.stats().acks_sent, 1u);
  EXPECT_EQ(sink.stats().delayed_acks, 1u);
}

TEST_F(TcpOptionsTest, AppLimitedSenderPacesToConfiguredRate) {
  TcpSender::Config cfg;
  cfg.app_rate_bps = 800e3;  // 100 pkt/s @ 1000 B
  TcpSender sender(&sim, &factory, src_node, 5000, cfg);
  TcpSink sink(&sim, &factory, dst_node, 80);
  sender.connect(dst_node->addr(), 80);
  sink.connect(src_node->addr(), 5000);
  sender.start();
  sim.run_until(5.0);
  sender.stop();
  // ~500 packets in 5 s despite a 10 Mb/s path.
  EXPECT_NEAR(double(sink.stats().unique_delivered), 500.0, 30.0);
}

TEST_F(TcpOptionsTest, AppLimitedSenderStillRespondsToLoss) {
  TcpSender::Config cfg;
  cfg.app_rate_bps = 2e6;
  TcpSender sender(&sim, &factory, src_node, 5000, cfg);
  TcpSink sink(&sim, &factory, dst_node, 80);
  sender.connect(dst_node->addr(), 80);
  sink.connect(src_node->addr(), 5000);
  sender.start();
  sim.run_until(1.0);
  // Deliver three back-to-back duplicate ACKs (the MAFIC probe burst).
  // Direct delivery keeps them consecutive; over the wire they could
  // interleave with the paced flow's genuine ACK clock.
  for (int i = 0; i < 3; ++i) {
    auto p = factory.make();
    p->label = sender.label().reversed();
    p->proto = sim::Protocol::kTcp;
    p->flags = sim::tcp_flags::kAck;
    p->ack_no = 0;
    sender.recv(std::move(p));
  }
  sim.run_until(1.2);
  EXPECT_GE(sender.stats().fast_recoveries, 1u);
}

TEST_F(TcpOptionsTest, GreedyDefaultIsUnpaced) {
  TcpSender sender(&sim, &factory, src_node, 5000);
  TcpSink sink(&sim, &factory, dst_node, 80);
  sender.connect(dst_node->addr(), 80);
  sink.connect(src_node->addr(), 5000);
  sender.start();
  sim.run_until(3.0);
  // Should fill a good share of the 10 Mb/s path: >> any accidental pacing.
  EXPECT_GT(sink.stats().unique_delivered, 1500u);
}

}  // namespace
}  // namespace mafic::transport
