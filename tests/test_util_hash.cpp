#include "util/hash.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>

namespace mafic::util {
namespace {

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hash, Mix64AvalancheOnSingleBitFlips) {
  // Flipping one input bit should flip roughly half the output bits.
  const std::uint64_t base = 0x0123456789abcdefULL;
  const std::uint64_t h0 = mix64(base);
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t h1 = mix64(base ^ (1ULL << bit));
    const int flipped = std::popcount(h0 ^ h1);
    EXPECT_GT(flipped, 16) << "weak avalanche at bit " << bit;
    EXPECT_LT(flipped, 48) << "weak avalanche at bit " << bit;
  }
}

TEST(Hash, Mix64FewCollisionsOnSequentialInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 100000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 100000u);
}

TEST(Hash, HashCombineOrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(Hash, HashCombineDiffersFromInputs) {
  const std::uint64_t h = hash_combine(123, 456);
  EXPECT_NE(h, 123u);
  EXPECT_NE(h, 456u);
}

TEST(Hash, Fnv1aKnownValues) {
  // FNV-1a 64-bit offset basis for the empty string.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
  EXPECT_NE(fnv1a64("ab"), fnv1a64("ba"));
}

TEST(Hash, SeededHashDiffersBySeed) {
  const std::uint64_t x = 789;
  EXPECT_NE(seeded_hash(1, x), seeded_hash(2, x));
  EXPECT_EQ(seeded_hash(1, x), seeded_hash(1, x));
}

TEST(Hash, SeededHashUniformHighBits) {
  // The sketch uses the top bits for bucketing; verify rough uniformity.
  constexpr int kBuckets = 16;
  int counts[kBuckets] = {};
  const int n = 160000;
  for (int i = 0; i < n; ++i) {
    counts[seeded_hash(7, std::uint64_t(i)) >> 60] += 1;
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], n / kBuckets, n / kBuckets * 0.1);
  }
}

TEST(Hash, ConstexprUsable) {
  constexpr std::uint64_t h = mix64(5);
  static_assert(h == mix64(5));
  EXPECT_EQ(h, mix64(5));
}

}  // namespace
}  // namespace mafic::util
