// ShardedMaficFilter: the sharded datapath inside the discrete-event
// simulator. Pins (1) the scripted scalar-vs-sharded equivalence — with
// CoinMode::kPacketHash, a ShardedMaficFilter makes identical per-flow
// classification decisions for 1 and N shards, because all cross-flow
// coupling (tables, timers, RTT estimates, coin streams) is gone; and
// (2) the end-to-end golden equivalence: two full Experiments differing
// only in num_shards (1 vs 4), with burst links, produce identical
// classification decisions, probe counts and metrics at a fixed seed.

#include "core/sharded_mafic_filter.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "scenario/experiment.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {
namespace {

constexpr std::uint64_t kSeed = 20260729;

sim::FlowLabel label_for(std::uint32_t i) {
  return {util::make_addr(172, 16, (i >> 8) & 0xff, i & 0xff),
          util::make_addr(172, 17, 0, 1), std::uint16_t(1024 + i), 80};
}

struct FlowOutcome {
  TableKind dest = TableKind::kNone;
  std::uint32_t baseline = 0;
  std::uint32_t probe = 0;

  friend bool operator==(const FlowOutcome&, const FlowOutcome&) = default;
};

/// Drives a ShardedMaficFilter with a scripted schedule (the four flow
/// behaviors of the classification regression) and returns per-flow
/// outcomes plus the drop count.
struct ScriptedRun {
  std::map<std::uint64_t, FlowOutcome> outcomes;
  std::uint64_t dropped = 0;
  std::uint64_t probes = 0;
};

ScriptedRun run_scripted(std::size_t num_shards) {
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  sim::PacketFactory factory;

  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation windows
  cfg.drop_probability = 0.9;
  cfg.probe_enabled = false;  // no wired topology in this fixture
  cfg.coin_mode = CoinMode::kPacketHash;
  cfg.coin_seed = 0xfeedULL;

  ShardedMaficFilter filter(&sim, &factory, atr, num_shards, cfg, nullptr,
                            kSeed);
  class Sink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr) override {}
  } sink;
  filter.set_target(&sink);
  filter.activate({util::make_addr(172, 17, 0, 1)});

  ScriptedRun run;
  filter.set_classification_callback(
      [&](const SftEntry& e, TableKind dest) {
        run.outcomes[e.key] =
            FlowOutcome{dest, e.baseline_count, e.probe_count};
      });

  const auto send = [&](std::uint32_t flow, double t) {
    sim.schedule_at(t, [&, flow] {
      auto p = factory.make();
      p->label = label_for(flow);
      p->proto = sim::Protocol::kTcp;
      p->size_bytes = 1000;
      filter.recv(std::move(p));
    });
  };
  for (std::uint32_t i = 0; i < 64; ++i) {
    const double phase = 1e-4 * double(i);
    switch (i % 4) {
      case 0:  // steady fast
        for (double t = 0.01; t < 0.5; t += 0.004) send(i, t + phase);
        break;
      case 1:  // halves its rate mid-probation
        for (double t = 0.01; t < 0.05; t += 0.004) send(i, t + phase);
        for (double t = 0.05; t < 0.5; t += 0.008) send(i, t + phase);
        break;
      case 2:  // trickle
        for (double t = 0.02; t < 0.5; t += 0.09) send(i, t + phase);
        break;
      case 3:  // stops mid-probation
        for (double t = 0.01; t < 0.055; t += 0.004) send(i, t + phase);
        break;
    }
  }
  sim.run();
  const FilterEngine::Stats stats = filter.stats();
  run.dropped = stats.dropped_probation + stats.dropped_pdt;
  run.probes = stats.probes_issued;
  return run;
}

TEST(ShardedMaficFilter, ScriptedDecisionsIdenticalAcrossShardCounts) {
  const ScriptedRun one = run_scripted(1);
  const ScriptedRun four = run_scripted(4);
  const ScriptedRun eight = run_scripted(8);

  ASSERT_EQ(one.outcomes.size(), 64u);
  EXPECT_EQ(one.outcomes, four.outcomes);
  EXPECT_EQ(one.outcomes, eight.outcomes);
  // Not just the same destinations — the same packets were dropped.
  EXPECT_EQ(one.dropped, four.dropped);
  EXPECT_EQ(one.dropped, eight.dropped);
}

TEST(ShardedMaficFilter, ShardPartitionIsRespected) {
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  sim::PacketFactory factory;

  MaficConfig cfg;
  cfg.drop_probability = 1.0;  // admit every flow on first sight
  cfg.probe_enabled = false;
  ShardedMaficFilter filter(&sim, &factory, atr, 4, cfg, nullptr, kSeed);
  class Sink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr) override {}
  } sink;
  filter.set_target(&sink);
  filter.activate({util::make_addr(172, 17, 0, 1)});

  for (std::uint32_t i = 0; i < 256; ++i) {
    auto p = factory.make();
    p->label = label_for(i);
    p->proto = sim::Protocol::kTcp;
    p->size_bytes = 1000;
    filter.recv(std::move(p));
  }
  // Every flow admitted exactly once, on its home shard.
  std::size_t resident = 0;
  for (std::size_t s = 0; s < 4; ++s) {
    const FlowTables& t = filter.engine(s).tables();
    EXPECT_GT(t.sft_size(), 0u) << "shard " << s << " starved";
    resident += t.resident();
  }
  EXPECT_EQ(resident, 256u);
  EXPECT_EQ(filter.stats().dropped_probation, 256u);

  filter.deactivate();
  EXPECT_FALSE(filter.active());
  EXPECT_EQ(filter.sharded().resident(), 0u);
}

/// The tentpole acceptance property: full figure-bench-shaped runs that
/// differ only in num_shards make identical classification decisions.
TEST(ShardedExperiment, GoldenEquivalenceScalarVsShardedWithBursts) {
  scenario::ExperimentConfig base;
  base.seed = 7;
  base.total_flows = 24;
  base.router_count = 10;
  base.end_time = 6.0;
  base.link_burst_size = 8;

  const auto run = [&](std::size_t shards) {
    scenario::ExperimentConfig cfg = base;
    cfg.num_shards = shards;
    scenario::Experiment exp(cfg);
    return exp.run();
  };
  const scenario::ExperimentResult one = run(1);
  const scenario::ExperimentResult four = run(4);

  // Classification decisions: identical per victim, table by table.
  ASSERT_EQ(one.per_victim.size(), four.per_victim.size());
  for (std::size_t i = 0; i < one.per_victim.size(); ++i) {
    EXPECT_EQ(one.per_victim[i].victim, four.per_victim[i].victim);
    EXPECT_EQ(one.per_victim[i].decided_nice,
              four.per_victim[i].decided_nice);
    EXPECT_EQ(one.per_victim[i].decided_malicious,
              four.per_victim[i].decided_malicious);
    EXPECT_EQ(one.per_victim[i].screened_sources,
              four.per_victim[i].screened_sources);
  }
  EXPECT_GT(one.sft_admissions, 0u);
  EXPECT_EQ(one.sft_admissions, four.sft_admissions);
  EXPECT_EQ(one.moved_to_nft, four.moved_to_nft);
  EXPECT_EQ(one.moved_to_pdt, four.moved_to_pdt);
  EXPECT_EQ(one.screened_sources, four.screened_sources);
  EXPECT_EQ(one.probes_issued, four.probes_issued);

  // The whole simulation stayed in lockstep, not just the verdict sums.
  EXPECT_EQ(one.events_processed, four.events_processed);
  EXPECT_EQ(one.metrics.malicious_dropped, four.metrics.malicious_dropped);
  EXPECT_EQ(one.metrics.legit_dropped, four.metrics.legit_dropped);
  EXPECT_EQ(one.metrics.alpha, four.metrics.alpha);
  EXPECT_FALSE(std::isnan(one.metrics.alpha));
}

/// The scalar adapter's burst path (MaficFilter installed where spans
/// arrive, e.g. as a tail tap) must be verdict-identical to per-packet
/// recv() — the claim its inspect_burst override makes.
TEST(MaficFilterBurst, BatchedVerdictsMatchPerPacketRecv) {
  MaficConfig cfg;
  cfg.default_rtt = 0.04;
  cfg.drop_probability = 0.9;
  cfg.probe_enabled = false;
  cfg.coin_mode = CoinMode::kPacketHash;  // coins follow (key, uid)
  cfg.coin_seed = 0xabcdULL;

  class UidSink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr p) override { uids.push_back(p->uid); }
    std::vector<std::uint64_t> uids;
  };

  const auto run = [&](bool bursty) {
    sim::Simulator sim;
    sim::Network net(&sim);
    sim::Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
    sim::PacketFactory factory;
    MaficFilter filter(&sim, &factory, atr, cfg, nullptr, util::Rng(5));
    UidSink sink;
    filter.set_target(&sink);
    filter.activate({util::make_addr(172, 17, 0, 1)});

    std::vector<sim::PacketPtr> span;
    for (std::uint32_t i = 0; i < 300; ++i) {
      auto p = factory.make();
      p->label = label_for(i % 24);
      p->proto = sim::Protocol::kTcp;
      p->size_bytes = 1000;
      if (!bursty) {
        filter.recv(std::move(p));
        continue;
      }
      span.push_back(std::move(p));
      if (span.size() == 7) {
        filter.recv_burst(span.data(), span.size());
        span.clear();
      }
    }
    if (!span.empty()) filter.recv_burst(span.data(), span.size());
    return std::pair{sink.uids, filter.stats().dropped_probation};
  };

  const auto per_packet = run(false);
  const auto batched = run(true);
  EXPECT_EQ(per_packet.first, batched.first);  // same survivors, in order
  EXPECT_EQ(per_packet.second, batched.second);
  EXPECT_GT(per_packet.second, 0u);
}

/// Bursts actually reach the batched path (the sim would silently fall
/// back to per-packet delivery if the plumbing regressed).
TEST(ShardedExperiment, BurstsReachTheShardedFilters) {
  scenario::ExperimentConfig cfg;
  cfg.seed = 11;
  cfg.total_flows = 24;
  cfg.router_count = 10;
  cfg.end_time = 5.0;
  cfg.num_shards = 4;
  cfg.link_burst_size = 8;

  scenario::Experiment exp(cfg);
  const scenario::ExperimentResult r = exp.run();
  std::size_t max_burst = 0;
  std::uint64_t probes = 0;
  for (const auto* f : exp.sharded_filters()) {
    max_burst = std::max(max_burst, f->max_burst_seen());
    for (std::size_t s = 0; s < f->num_shards(); ++s) {
      probes += f->shard_probes(s);
    }
  }
  EXPECT_GT(exp.sharded_filters().size(), 0u);
  EXPECT_GT(max_burst, 1u) << "no burst ever reached a sharded filter";
  EXPECT_GT(probes, 0u) << "per-shard probe sinks never fired";
  EXPECT_EQ(probes, r.probes_issued);
}

}  // namespace
}  // namespace mafic::core
