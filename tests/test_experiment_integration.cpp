#include "scenario/experiment.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mafic::scenario {
namespace {

ExperimentConfig small_config() {
  ExperimentConfig cfg;
  cfg.total_flows = 20;
  cfg.router_count = 12;
  cfg.seed = 7;
  cfg.end_time = 8.0;
  return cfg;
}

TEST(ExperimentIntegration, ScriptedTriggerProducesPaperBandMetrics) {
  Experiment exp(small_config());
  const auto r = exp.run();
  const auto& m = r.metrics;
  ASSERT_TRUE(m.triggered);
  EXPECT_NEAR(m.trigger_time, 2.7, 1e-9);
  EXPECT_GT(m.alpha, 0.97);
  EXPECT_LT(m.theta_n, 0.03);
  EXPECT_LT(m.lr, 0.12);
  EXPECT_GE(m.theta_p, 0.0);
  EXPECT_LT(m.theta_p, 0.01);
  EXPECT_GT(m.beta, 0.5);
  EXPECT_NEAR(m.alpha + m.theta_n, 1.0, 1e-9);  // complementary by definition
}

TEST(ExperimentIntegration, FlowCountsFollowGamma) {
  auto cfg = small_config();
  cfg.total_flows = 40;
  cfg.tcp_fraction = 0.75;
  Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_EQ(r.legit_flows, 30u);
  EXPECT_EQ(r.attack_flows, 10u);
}

TEST(ExperimentIntegration, AtLeastOneZombieWheneverGammaBelowOne) {
  auto cfg = small_config();
  cfg.total_flows = 10;
  cfg.tcp_fraction = 0.99;
  Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_EQ(r.attack_flows, 1u);
  EXPECT_EQ(r.legit_flows, 9u);
}

TEST(ExperimentIntegration, DeterministicAcrossRuns) {
  const auto cfg = small_config();
  Experiment a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.events_processed, rb.events_processed);
  EXPECT_DOUBLE_EQ(ra.metrics.alpha, rb.metrics.alpha);
  EXPECT_DOUBLE_EQ(ra.metrics.lr, rb.metrics.lr);
  EXPECT_EQ(ra.metrics.malicious_offered, rb.metrics.malicious_offered);
}

TEST(ExperimentIntegration, SeedsChangeOutcomes) {
  auto cfg = small_config();
  Experiment a(cfg);
  cfg.seed = 99;
  Experiment b(cfg);
  EXPECT_NE(a.run().events_processed, b.run().events_processed);
}

TEST(ExperimentIntegration, AttackIsCutAtVictimLink) {
  Experiment exp(small_config());
  const auto r = exp.run();
  const auto& series = r.victim_offered_bytes;
  const double flood = series.rate_between(2.3, 2.7) * 8.0;
  const double after = series.rate_between(3.5, 4.5) * 8.0;
  EXPECT_GT(flood, 2.0 * after);
}

TEST(ExperimentIntegration, TcpRecoversAfterCut) {
  Experiment exp(small_config());
  const auto r = exp.run();
  const auto& series = r.victim_offered_bytes;
  // Legitimate traffic resumes: late-run rate is well above the probation
  // trough right after the trigger.
  const double trough = series.rate_between(2.74, 2.80) * 8.0;
  const double late = series.rate_between(6.0, 8.0) * 8.0;
  EXPECT_GT(late, trough);
}

TEST(ExperimentIntegration, NoDefenseMeansNoTriggerAndNoDrops) {
  auto cfg = small_config();
  cfg.defense = DefenseKind::kNone;
  Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_FALSE(r.metrics.triggered);
  EXPECT_EQ(r.sft_admissions, 0u);
}

TEST(ExperimentIntegration, ProportionalBaselineHurtsLegitMore) {
  auto cfg = small_config();
  cfg.end_time = 10.0;
  Experiment mafic_exp(cfg);
  const auto mafic_r = mafic_exp.run();

  cfg.defense = DefenseKind::kProportional;
  Experiment prop_exp(cfg);
  const auto prop_r = prop_exp.run();

  ASSERT_TRUE(prop_r.metrics.triggered);
  // Flow-blind dropping keeps eating legitimate packets forever.
  EXPECT_GT(prop_r.metrics.lr, 3.0 * std::max(mafic_r.metrics.lr, 0.001));
  // Both cut the attack hard, though.
  EXPECT_GT(prop_r.metrics.alpha, 0.8);
}

TEST(ExperimentIntegration, AggregateBaselineCutsTraffic) {
  auto cfg = small_config();
  cfg.defense = DefenseKind::kAggregate;
  cfg.aggregate.limit_bps = 200e3;
  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  EXPECT_GT(r.metrics.alpha, 0.5);   // blunt but effective on volume
  EXPECT_GT(r.metrics.lr, 0.02);     // and indiscriminate
}

TEST(ExperimentIntegration, DetectorModeTriggersOnFlood) {
  auto cfg = small_config();
  cfg.trigger = TriggerMode::kDetector;
  cfg.end_time = 10.0;
  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  // Detection happens after the attack begins and within ~1.5 s.
  EXPECT_GT(r.metrics.trigger_time, cfg.attack_start);
  EXPECT_LT(r.metrics.trigger_time, cfg.attack_start + 1.5);
  EXPECT_GT(r.metrics.alpha, 0.9);
}

TEST(ExperimentIntegration, DetectorModeIdentifiesZombieRouters) {
  auto cfg = small_config();
  cfg.trigger = TriggerMode::kDetector;
  cfg.total_flows = 30;
  cfg.tcp_fraction = 0.9;  // 3 zombies
  cfg.end_time = 10.0;
  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  // Every ground-truth attack router should be found (recall), since the
  // flood dominates the matrix column.
  EXPECT_GE(r.atr.recall, 0.99);
}

TEST(ExperimentIntegration, ZombieRouterScopeSparesRemoteLegitFlows) {
  auto cfg = small_config();
  cfg.atr_scope = AtrScope::kZombieRouters;
  Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  // Oracle scoping still kills the attack...
  EXPECT_GT(r.metrics.alpha, 0.97);
  // ...and collateral is not worse than the all-ingress default.
  EXPECT_LT(r.metrics.lr, 0.12);
}

TEST(ExperimentIntegration, FilterConservation) {
  Experiment exp(small_config());
  exp.run();
  for (const auto* f : exp.mafic_filters()) {
    const auto& s = f->stats();
    EXPECT_EQ(s.offered,
              s.forwarded + s.dropped_probation + s.dropped_pdt)
        << "packets must be either forwarded or dropped";
  }
}

TEST(ExperimentIntegration, TablesPartitionFlows) {
  Experiment exp(small_config());
  const auto r = exp.run();
  // Every admitted probation resolved into exactly one table (none left
  // suspended at the end beyond flows that went quiet mid-window).
  EXPECT_EQ(r.sft_admissions, r.moved_to_nft + r.moved_to_pdt +
                                  [&] {
                                    std::size_t pending = 0;
                                    for (const auto* f :
                                         exp.mafic_filters()) {
                                      pending += f->tables().sft_size();
                                    }
                                    return pending;
                                  }());
}

TEST(ExperimentIntegration, SpoofedIllegalSourcesAreScreened) {
  auto cfg = small_config();
  cfg.spoofing.legitimate_weight = 0.0;
  cfg.spoofing.illegal_weight = 0.5;
  cfg.spoofing.unreachable_weight = 0.5;
  Experiment exp(cfg);
  const auto r = exp.run();
  EXPECT_GT(r.screened_sources, 0u);
  EXPECT_GT(r.metrics.alpha, 0.97);
}

TEST(ExperimentIntegration, SnapshotResultMidRun) {
  Experiment exp(small_config());
  exp.run_until(1.0);  // before the attack
  const auto early = exp.snapshot_result();
  EXPECT_FALSE(early.metrics.triggered);
  exp.run_until(8.0);
  const auto late = exp.snapshot_result();
  EXPECT_TRUE(late.metrics.triggered);
}

}  // namespace
}  // namespace mafic::scenario
