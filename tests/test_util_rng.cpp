#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace mafic::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedResetsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), first[i]);
}

TEST(Rng, Uniform01Bounds) {
  Rng r(42);
  for (int i = 0; i < 100000; ++i) {
    const double x = r.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, Uniform01Mean) {
  Rng r(42);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveRangeCoversAllValues) {
  Rng r(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(r.uniform_int(10, 15));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_EQ(*seen.begin(), 10u);
  EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(Rng, UniformIntSingleton) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(42, 42), 42u);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-0.5));
    EXPECT_TRUE(r.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(double(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMean) {
  Rng r(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.5);
  EXPECT_NEAR(sum / n, 2.5, 0.05);
}

TEST(Rng, ExponentialNonNegative) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) ASSERT_GE(r.exponential(1.0), 0.0);
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  const int n = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(10.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, IndexWithinBounds) {
  Rng r(23);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(r.index(7), 7u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  r.shuffle(v);
  auto copy = v;
  std::sort(copy.begin(), copy.end());
  EXPECT_EQ(copy, sorted);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng r(31);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  const auto orig = v;
  r.shuffle(v);
  EXPECT_NE(v, orig);
}

TEST(Rng, SplitStreamsAreIndependentish) {
  Rng parent(37);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 2);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, Uniform01MeanStableAcrossSeeds) {
  Rng r(GetParam());
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(RngSeedSweep, BernoulliHalfAcrossSeeds) {
  Rng r(GetParam());
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.5);
  EXPECT_NEAR(double(hits) / n, 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(1, 2, 3, 99, 12345, 0xdeadbeef));

}  // namespace
}  // namespace mafic::util
