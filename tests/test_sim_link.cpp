#include "sim/link.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"

namespace mafic::sim {
namespace {

class Collector final : public Connector {
 public:
  void recv(PacketPtr p) override {
    times.push_back(sim_->now());
    uids.push_back(p->uid);
  }
  explicit Collector(Simulator* sim) : sim_(sim) {}
  Simulator* sim_;
  std::vector<double> times;
  std::vector<std::uint64_t> uids;
};

PacketPtr make_packet(std::uint32_t bytes, std::uint64_t uid = 0) {
  auto p = std::make_unique<Packet>();
  p->size_bytes = bytes;
  p->uid = uid;
  return p;
}

SimplexLink::Config cfg(double bw, double delay, std::size_t q = 64) {
  SimplexLink::Config c;
  c.bandwidth_bps = bw;
  c.delay_s = delay;
  c.queue_capacity_packets = q;
  return c;
}

TEST(SimplexLink, DeliveryTimeIsTransmissionPlusPropagation) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.01));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  link.entry()->recv(make_packet(1000, 7));  // 8000 bits / 1e6 = 8 ms tx
  sim.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_NEAR(sink.times[0], 0.008 + 0.01, 1e-12);
  EXPECT_EQ(sink.uids[0], 7u);
}

TEST(SimplexLink, BackToBackPacketsSerialize) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.0));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  link.entry()->recv(make_packet(1000, 1));
  link.entry()->recv(make_packet(1000, 2));
  sim.run();
  ASSERT_EQ(sink.times.size(), 2u);
  EXPECT_NEAR(sink.times[0], 0.008, 1e-12);
  EXPECT_NEAR(sink.times[1], 0.016, 1e-12);  // waited for the first
}

TEST(SimplexLink, PropagationPipelines) {
  // Long delay, fast link: both packets are in flight simultaneously.
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e8, 0.1));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  link.entry()->recv(make_packet(1000, 1));  // tx 80 us
  link.entry()->recv(make_packet(1000, 2));
  sim.run();
  ASSERT_EQ(sink.times.size(), 2u);
  EXPECT_NEAR(sink.times[1] - sink.times[0], 80e-6, 1e-9);
}

TEST(SimplexLink, QueueOverflowDrops) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e3, 0.0, 2));  // slow link, queue 2
  Collector sink(&sim);
  link.set_endpoint(&sink);
  int drops = 0;
  link.set_drop_handler([&](const Packet&, DropReason r, NodeId) {
    EXPECT_EQ(r, DropReason::kQueueOverflow);
    ++drops;
  });
  for (int i = 0; i < 10; ++i) link.entry()->recv(make_packet(1000));
  sim.run();
  // 1 in transmission... the first packet dequeues immediately, 2 buffered,
  // the rest dropped.
  EXPECT_EQ(drops, 7);
  EXPECT_EQ(sink.times.size(), 3u);
}

TEST(SimplexLink, HeadFiltersRunInInstallationOrder) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.0));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  std::vector<int> order;
  link.add_head_filter(std::make_unique<TapConnector>(
      [&](const Packet&) { order.push_back(1); }));
  link.add_head_filter(std::make_unique<TapConnector>(
      [&](const Packet&) { order.push_back(2); }));
  link.entry()->recv(make_packet(100));
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(sink.times.size(), 1u);
}

TEST(SimplexLink, InlineFilterCanDrop) {
  class DropAll final : public InlineFilter {
   protected:
    Decision inspect(Packet&) override {
      return Decision::drop(DropReason::kDefenseProbe);
    }
  };
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.0));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  int drops = 0;
  link.set_drop_handler(
      [&](const Packet&, DropReason, NodeId where) {
        EXPECT_EQ(where, 0u);
        ++drops;
      });
  link.add_head_filter(std::make_unique<DropAll>());
  link.entry()->recv(make_packet(100));
  sim.run();
  EXPECT_EQ(drops, 1);
  EXPECT_TRUE(sink.times.empty());
}

TEST(SimplexLink, TailTapSeesOnlySurvivors) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e3, 0.0, 1));  // tight queue
  Collector sink(&sim);
  link.set_endpoint(&sink);
  int head_count = 0, tail_count = 0;
  link.add_head_filter(std::make_unique<TapConnector>(
      [&](const Packet&) { ++head_count; }));
  link.add_tail_tap(std::make_unique<TapConnector>(
      [&](const Packet&) { ++tail_count; }));
  for (int i = 0; i < 5; ++i) link.entry()->recv(make_packet(1000));
  sim.run();
  EXPECT_EQ(head_count, 5);
  EXPECT_EQ(tail_count, 2);  // 1 transmitting + 1 queued survive
  EXPECT_EQ(sink.times.size(), 2u);
}

TEST(SimplexLink, TransmitterStatsAccumulate) {
  Simulator sim;
  SimplexLink link(&sim, 3, 9, cfg(1e6, 0.001));
  Collector sink(&sim);
  link.set_endpoint(&sink);
  link.entry()->recv(make_packet(500));
  link.entry()->recv(make_packet(500));
  sim.run();
  EXPECT_EQ(link.transmitter().packets_delivered(), 2u);
  EXPECT_EQ(link.transmitter().bytes_delivered(), 1000u);
  EXPECT_EQ(link.from(), 3u);
  EXPECT_EQ(link.to(), 9u);
}

}  // namespace
}  // namespace mafic::sim
