#include <gtest/gtest.h>

#include "attack/attack_plan.hpp"
#include "attack/spoofing.hpp"
#include "attack/zombie.hpp"
#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/udp.hpp"

namespace mafic::attack {
namespace {

util::Subnet unreachable() {
  return {util::make_addr(172, 31, 0, 0), 16};
}
util::Subnet illegal() { return {util::make_addr(203, 0, 113, 0), 24}; }

TEST(SpoofingModel, WeightsRespectedApproximately) {
  SpoofingConfig cfg;
  cfg.genuine_weight = 1;
  cfg.legitimate_weight = 1;
  cfg.unreachable_weight = 1;
  cfg.illegal_weight = 1;
  SpoofingModel model(cfg, {util::make_addr(172, 16, 0, 5)}, unreachable(),
                      illegal(), util::Rng(5));
  int counts[4] = {};
  for (int i = 0; i < 40000; ++i) {
    counts[static_cast<int>(model.draw_kind())] += 1;
  }
  for (const int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(SpoofingModel, ZeroTotalWeightThrows) {
  SpoofingConfig cfg;
  cfg.genuine_weight = cfg.legitimate_weight = 0;
  cfg.unreachable_weight = cfg.illegal_weight = 0;
  EXPECT_THROW(
      SpoofingModel(cfg, {}, unreachable(), illegal(), util::Rng(1)),
      std::invalid_argument);
}

TEST(SpoofingModel, AddressesMatchCategory) {
  SpoofingConfig cfg;
  cfg.genuine_weight = 1;
  cfg.legitimate_weight = 1;
  cfg.unreachable_weight = 1;
  cfg.illegal_weight = 1;
  const util::Addr real_host = util::make_addr(172, 16, 0, 5);
  const util::Addr me = util::make_addr(172, 16, 1, 1);
  SpoofingModel model(cfg, {real_host}, unreachable(), illegal(),
                      util::Rng(5));
  for (int i = 0; i < 1000; ++i) {
    const auto s = model.draw(me);
    switch (s.kind) {
      case SpoofKind::kGenuine:
        EXPECT_EQ(s.addr, me);
        break;
      case SpoofKind::kLegitimate:
        EXPECT_EQ(s.addr, real_host);
        break;
      case SpoofKind::kUnreachable:
        EXPECT_TRUE(unreachable().contains(s.addr));
        break;
      case SpoofKind::kIllegal:
        EXPECT_TRUE(illegal().contains(s.addr));
        break;
    }
  }
}

TEST(SpoofingModel, EmptyHostPoolFallsBackToGenuine) {
  SpoofingConfig cfg;  // default: all legitimate
  SpoofingModel model(cfg, {}, unreachable(), illegal(), util::Rng(5));
  const util::Addr me = util::make_addr(172, 16, 1, 1);
  EXPECT_EQ(model.draw_address(SpoofKind::kLegitimate, me), me);
}

class FlooderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    bell = topology::build_dumbbell(*net, {});
    zombie_node = net->node(bell.left_hosts[0]);
    victim_node = net->node(bell.right_hosts[0]);
    sink = std::make_unique<transport::UdpSink>(&sim, &factory, victim_node,
                                                80);
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  topology::Dumbbell bell;
  sim::Node* zombie_node{};
  sim::Node* victim_node{};
  std::unique_ptr<transport::UdpSink> sink;
};

TEST_F(FlooderTest, EmitsAtConfiguredRate) {
  Flooder::Config cfg;
  cfg.rate_bps = 800e3;
  cfg.packet_bytes = 1000;
  cfg.jitter_fraction = 0.0;
  Flooder z(&sim, &factory, zombie_node, 5000, cfg, util::Rng(3));
  z.connect(victim_node->addr(), 80);
  z.start();
  sim.run_until(2.0);
  z.stop();
  EXPECT_NEAR(double(z.packets_sent()), 200.0, 8.0);
}

TEST_F(FlooderTest, SpoofedLabelIsStablePerFlow) {
  SpoofingConfig scfg;  // all "legitimate" spoofs
  const util::Addr innocent = util::make_addr(172, 16, 9, 9);
  SpoofingModel model(scfg, {innocent}, unreachable(), illegal(),
                      util::Rng(7));
  Flooder::Config cfg;
  cfg.framing = sim::Protocol::kTcp;
  Flooder z(&sim, &factory, zombie_node, 5000, cfg, util::Rng(3));
  z.connect(victim_node->addr(), 80);
  z.set_spoof(&model);
  EXPECT_EQ(z.wire_label().src, innocent);
  EXPECT_EQ(z.spoof_kind(), SpoofKind::kLegitimate);

  std::set<util::Addr> sources;
  sink->set_observer([&](const sim::Packet& p) {
    sources.insert(p.label.src);
    EXPECT_EQ(p.proto, sim::Protocol::kTcp);
    EXPECT_TRUE(p.has_flag(sim::tcp_flags::kAck));
    EXPECT_EQ(p.tsecr, 0.0);  // zombies do not echo timestamps
  });
  z.start();
  sim.run_until(0.5);
  EXPECT_EQ(sources.size(), 1u);
  EXPECT_TRUE(sources.contains(innocent));
}

TEST_F(FlooderTest, PerPacketSpoofingVariesSource) {
  SpoofingConfig scfg;
  scfg.legitimate_weight = 0;
  scfg.unreachable_weight = 1;
  SpoofingModel model(scfg, {}, unreachable(), illegal(), util::Rng(7));
  Flooder::Config cfg;
  cfg.per_packet_spoofing = true;
  cfg.rate_bps = 4e6;
  Flooder z(&sim, &factory, zombie_node, 5000, cfg, util::Rng(3));
  z.connect(victim_node->addr(), 80);
  z.set_spoof(&model);
  std::set<util::Addr> sources;
  sink->set_observer(
      [&](const sim::Packet& p) { sources.insert(p.label.src); });
  z.start();
  sim.run_until(0.5);
  EXPECT_GT(sources.size(), 10u);
}

TEST_F(FlooderTest, IgnoresFeedback) {
  Flooder::Config cfg;
  Flooder z(&sim, &factory, zombie_node, 5000, cfg, util::Rng(3));
  z.connect(victim_node->addr(), 80);
  auto probe = factory.make();
  probe->label = z.label().reversed();
  z.recv(std::move(probe));
  EXPECT_EQ(z.feedback_ignored(), 1u);
  EXPECT_EQ(z.packets_sent(), 0u);  // no reaction
}

TEST_F(FlooderTest, SequenceNumbersIncrease) {
  Flooder::Config cfg;
  cfg.rate_bps = 4e6;
  Flooder z(&sim, &factory, zombie_node, 5000, cfg, util::Rng(3));
  z.connect(victim_node->addr(), 80);
  std::uint32_t last = 0;
  sink->set_observer([&](const sim::Packet& p) {
    EXPECT_GT(p.seq, last);
    last = p.seq;
  });
  z.start();
  sim.run_until(0.2);
  EXPECT_GT(last, 0u);
}

TEST_F(FlooderTest, AttackPlanStaggersStartsWithinRamp) {
  Flooder::Config cfg;
  cfg.rate_bps = 1e6;
  std::vector<std::unique_ptr<Flooder>> zombies;
  AttackPlan::Config pc;
  pc.start_time = 1.0;
  pc.ramp_seconds = 0.5;
  pc.stop_time = 2.0;
  AttackPlan plan(&sim, pc);
  for (int i = 0; i < 5; ++i) {
    auto z = std::make_unique<Flooder>(&sim, &factory, zombie_node,
                                       std::uint16_t(6000 + i), cfg,
                                       util::Rng(i));
    z->connect(victim_node->addr(), 80);
    plan.add(z.get());
    zombies.push_back(std::move(z));
  }
  util::Rng rng(9);
  plan.arm(rng);
  EXPECT_EQ(plan.zombie_count(), 5u);

  sim.run_until(0.99);
  for (const auto& z : zombies) EXPECT_FALSE(z->running());
  sim.run_until(1.51);
  for (const auto& z : zombies) EXPECT_TRUE(z->running());
  sim.run_until(2.01);
  for (const auto& z : zombies) EXPECT_FALSE(z->running());
}

}  // namespace
}  // namespace mafic::attack
