// Burst delivery: LinkTransmitter's departure coalescing, burst-capable
// connector chains, and Node burst routing. Pins the semantics the
// sharded datapath rides on — spans preserve per-packet identity,
// timestamps and order; boundaries fall exactly where the queue ran dry
// or the burst cap was hit; and bursts survive taps and routing hops.

#include <gtest/gtest.h>

#include <vector>

#include "sim/link.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace mafic::sim {
namespace {

/// Records every arrival: time, uid, and the size of the span it came in.
class BurstCollector final : public Connector {
 public:
  explicit BurstCollector(Simulator* sim) : sim_(sim) {}

  void recv(PacketPtr p) override { record(&p, 1); }
  void recv_burst(PacketPtr* pkts, std::size_t n) override {
    record(pkts, n);
  }

  Simulator* sim_;
  std::vector<double> times;
  std::vector<std::uint64_t> uids;
  std::vector<double> tsvals;
  std::vector<std::size_t> span_sizes;  ///< one entry per delivery event

 private:
  void record(PacketPtr* pkts, std::size_t n) {
    span_sizes.push_back(n);
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(sim_->now());
      uids.push_back(pkts[i]->uid);
      tsvals.push_back(pkts[i]->tsval);
    }
  }
};

PacketPtr make_packet(std::uint32_t bytes, std::uint64_t uid,
                      double tsval = 0.0) {
  auto p = std::make_unique<Packet>();
  p->size_bytes = bytes;
  p->uid = uid;
  p->tsval = tsval;
  return p;
}

SimplexLink::Config cfg(double bw, double delay, std::size_t q,
                        std::size_t burst) {
  SimplexLink::Config c;
  c.bandwidth_bps = bw;
  c.delay_s = delay;
  c.queue_capacity_packets = q;
  c.burst_packets = burst;
  return c;
}

TEST(BurstLink, SpanDeliveredAtLastBitPlusPropagation) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.01, 64, 8));
  BurstCollector sink(&sim);
  link.set_endpoint(&sink);
  // Three 1000-byte packets, 8 ms serialization each, back to back.
  for (std::uint64_t u = 1; u <= 3; ++u) {
    link.entry()->recv(make_packet(1000, u, 0.25 * double(u)));
  }
  sim.run();
  // The first packet starts transmitting immediately (queue was empty →
  // its own train); the remaining two coalesce into one span.
  ASSERT_EQ(sink.span_sizes, (std::vector<std::size_t>{1, 2}));
  EXPECT_NEAR(sink.times[0], 0.008 + 0.01, 1e-12);
  EXPECT_NEAR(sink.times[1], 0.008 + 0.016 + 0.01, 1e-12);
  EXPECT_NEAR(sink.times[2], sink.times[1], 1e-12);  // same span
  // Identity, order and timestamps are untouched by coalescing.
  EXPECT_EQ(sink.uids, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(sink.tsvals, (std::vector<double>{0.25, 0.5, 0.75}));
  EXPECT_EQ(link.transmitter().packets_delivered(), 3u);
  EXPECT_EQ(link.transmitter().bytes_delivered(), 3000u);
  EXPECT_EQ(link.transmitter().bursts_delivered(), 2u);
}

TEST(BurstLink, BurstCapBoundsSpans) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.0, 64, 3));
  BurstCollector sink(&sim);
  link.set_endpoint(&sink);
  for (std::uint64_t u = 1; u <= 7; ++u) {
    link.entry()->recv(make_packet(1000, u));
  }
  sim.run();
  // 1 (immediate pull) + capped trains of 3 from the backlog.
  ASSERT_EQ(sink.span_sizes, (std::vector<std::size_t>{1, 3, 3}));
  EXPECT_EQ(sink.uids,
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7}));
}

TEST(BurstLink, BurstOfOneMatchesLegacyTiming) {
  const auto run = [](std::size_t burst) {
    Simulator sim;
    SimplexLink link(&sim, 0, 1, cfg(1e6, 0.01, 64, burst));
    BurstCollector sink(&sim);
    link.set_endpoint(&sink);
    for (std::uint64_t u = 1; u <= 4; ++u) {
      link.entry()->recv(make_packet(500, u));
    }
    sim.run();
    return sink.times;
  };
  // burst_packets = 1 must reproduce the per-packet event sequence
  // exactly (it takes the legacy transmit path).
  EXPECT_EQ(run(1), run(0));  // 0 clamps to 1
}

TEST(BurstLink, QueueOverflowStillDropsPerPacket) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e3, 0.0, 2, 4));  // slow link, queue 2
  BurstCollector sink(&sim);
  link.set_endpoint(&sink);
  int drops = 0;
  link.set_drop_handler([&](const Packet&, DropReason r, NodeId) {
    EXPECT_EQ(r, DropReason::kQueueOverflow);
    ++drops;
  });
  for (std::uint64_t u = 1; u <= 10; ++u) {
    link.entry()->recv(make_packet(1000, u));
  }
  sim.run();
  EXPECT_EQ(drops, 7);  // 1 transmitting + 2 buffered survive
  EXPECT_EQ(sink.uids.size(), 3u);
}

TEST(BurstLink, TapsObserveEveryPacketAndKeepTheSpan) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, cfg(1e6, 0.0, 64, 8));
  BurstCollector sink(&sim);
  link.set_endpoint(&sink);
  int tapped = 0;
  link.add_tail_tap(std::make_unique<TapConnector>(
      [&](const Packet&) { ++tapped; }));
  for (std::uint64_t u = 1; u <= 5; ++u) {
    link.entry()->recv(make_packet(1000, u));
  }
  sim.run();
  EXPECT_EQ(tapped, 5);
  ASSERT_EQ(sink.span_sizes, (std::vector<std::size_t>{1, 4}));
}

TEST(BurstLink, TailInlineFilterDropsInsideTheSpan) {
  class DropOdd final : public InlineFilter {
   protected:
    Decision inspect(Packet& p) override {
      return p.uid % 2 == 1 ? Decision::drop(DropReason::kDefenseProbe)
                            : Decision::forward();
    }
  };
  Simulator sim;
  SimplexLink link(&sim, 0, 7, cfg(1e6, 0.0, 64, 8));
  BurstCollector sink(&sim);
  link.set_endpoint(&sink);
  int drops = 0;
  link.set_drop_handler([&](const Packet&, DropReason, NodeId where) {
    EXPECT_EQ(where, 7u);  // tail filters drop at the receiving node
    ++drops;
  });
  link.add_tail_tap(std::make_unique<DropOdd>());
  for (std::uint64_t u = 1; u <= 6; ++u) {
    link.entry()->recv(make_packet(1000, u));
  }
  sim.run();
  EXPECT_EQ(drops, 3);
  EXPECT_EQ(sink.uids, (std::vector<std::uint64_t>{2, 4, 6}));
  // Span 1 ([1]) was dropped whole; the survivors of span [2..6] still
  // arrive as one span.
  EXPECT_EQ(sink.span_sizes, (std::vector<std::size_t>{3}));
}

TEST(BurstLink, NodeRoutingSplitsSpansByNextHop) {
  Simulator sim;
  Network net(&sim);
  Node* router = net.add_router(util::make_addr(10, 0, 0, 1));
  Node* a = net.add_host(util::make_addr(172, 16, 0, 1));
  Node* b = net.add_host(util::make_addr(172, 16, 0, 2));
  Node* src = net.add_host(util::make_addr(172, 16, 0, 3));
  // src -> router with burst mode; router -> {a, b} per-packet.
  SimplexLink* in = net.add_simplex(src->id(), router->id(),
                                    cfg(1e6, 0.0, 64, 8));
  net.add_simplex(router->id(), a->id(), cfg(1e8, 0.0, 64, 8));
  net.add_simplex(router->id(), b->id(), cfg(1e8, 0.0, 64, 8));
  net.build_routes();

  // Count spans entering each egress link with a head tap... the taps
  // see packets, so count span boundaries at the hosts instead.
  BurstCollector at_a(&sim);
  BurstCollector at_b(&sim);
  net.find_link(router->id(), a->id())->set_endpoint(&at_a);
  net.find_link(router->id(), b->id())->set_endpoint(&at_b);

  // a a b b a: the router must emit spans [a,a], [b,b], [a].
  const util::Addr dsts[] = {a->addr(), a->addr(), b->addr(), b->addr(),
                             a->addr()};
  for (std::uint64_t u = 0; u < 5; ++u) {
    auto p = make_packet(1000, u + 1);
    p->label.src = src->addr();
    p->label.dst = dsts[u];
    in->entry()->recv(std::move(p));
  }
  sim.run();
  EXPECT_EQ(at_a.uids, (std::vector<std::uint64_t>{1, 2, 5}));
  EXPECT_EQ(at_b.uids, (std::vector<std::uint64_t>{3, 4}));
  // First packet rode alone (queue-empty pull); the 4-packet span was
  // split into contiguous same-next-hop runs by the router.
  EXPECT_EQ(at_a.span_sizes, (std::vector<std::size_t>{1, 1, 1}));
  EXPECT_EQ(at_b.span_sizes, (std::vector<std::size_t>{2}));
}

}  // namespace
}  // namespace mafic::sim
