#include "sim/queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mafic::sim {
namespace {

PacketPtr make_packet(std::uint32_t bytes, std::uint64_t uid = 0) {
  auto p = std::make_unique<Packet>();
  p->size_bytes = bytes;
  p->uid = uid;
  return p;
}

TEST(DropTailQueue, BuffersAndDequeuesFifo) {
  DropTailQueue q;
  q.recv(make_packet(100, 1));
  q.recv(make_packet(100, 2));
  q.recv(make_packet(100, 3));
  EXPECT_EQ(q.depth_packets(), 3u);
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue()->uid, 3u);
  EXPECT_EQ(q.dequeue(), nullptr);
}

TEST(DropTailQueue, DropsWhenPacketCapacityExceeded) {
  DropTailQueue q(DropTailQueue::Config{2, 0});
  std::vector<DropReason> drops;
  q.set_drop_handler([&](const Packet&, DropReason r, NodeId) {
    drops.push_back(r);
  });
  q.recv(make_packet(100));
  q.recv(make_packet(100));
  q.recv(make_packet(100));  // over
  EXPECT_EQ(q.depth_packets(), 2u);
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0], DropReason::kQueueOverflow);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(DropTailQueue, ByteCapacityBound) {
  DropTailQueue q(DropTailQueue::Config{100, 250});
  q.recv(make_packet(100));
  q.recv(make_packet(100));
  q.recv(make_packet(100));  // 300 bytes > 250
  EXPECT_EQ(q.depth_packets(), 2u);
  EXPECT_EQ(q.depth_bytes(), 200u);
  EXPECT_EQ(q.stats().dropped, 1u);
}

TEST(DropTailQueue, ReadyCallbackFiresOnAccept) {
  DropTailQueue q(DropTailQueue::Config{1, 0});
  int ready = 0;
  q.set_ready_callback([&] { ++ready; });
  q.recv(make_packet(10));
  EXPECT_EQ(ready, 1);
  q.recv(make_packet(10));  // dropped -> no callback
  EXPECT_EQ(ready, 1);
}

TEST(DropTailQueue, StatsTrackPeakAndCounts) {
  DropTailQueue q;
  q.recv(make_packet(10));
  q.recv(make_packet(10));
  q.dequeue();
  q.recv(make_packet(10));
  EXPECT_EQ(q.stats().enqueued, 3u);
  EXPECT_EQ(q.stats().dequeued, 1u);
  EXPECT_EQ(q.stats().peak_depth, 2u);
}

TEST(DropTailQueue, BytesTrackedThroughDequeue) {
  DropTailQueue q;
  q.recv(make_packet(100));
  q.recv(make_packet(50));
  EXPECT_EQ(q.depth_bytes(), 150u);
  q.dequeue();
  EXPECT_EQ(q.depth_bytes(), 50u);
}

TEST(RedQueue, ForwardsBelowMinThreshold) {
  RedQueue q(util::Rng(1), RedQueue::Config{64, 5, 15, 0.1, 0.5});
  for (int i = 0; i < 4; ++i) q.recv(make_packet(10));
  EXPECT_EQ(q.stats().dropped, 0u);
  EXPECT_EQ(q.depth_packets(), 4u);
}

TEST(RedQueue, HardDropAtCapacity) {
  RedQueue q(util::Rng(1), RedQueue::Config{3, 100, 200, 0.1, 0.002});
  for (int i = 0; i < 5; ++i) q.recv(make_packet(10));
  EXPECT_EQ(q.depth_packets(), 3u);
  EXPECT_EQ(q.stats().dropped, 2u);
}

TEST(RedQueue, EarlyDropsWhenAverageHigh) {
  // High EWMA weight makes the average track the instantaneous depth, so
  // sustained occupancy above max_threshold forces early drops.
  RedQueue q(util::Rng(7), RedQueue::Config{64, 2, 4, 0.5, 0.9});
  int accepted = 0;
  for (int i = 0; i < 50; ++i) {
    const auto before = q.stats().enqueued;
    q.recv(make_packet(10));
    accepted += (q.stats().enqueued > before);
  }
  EXPECT_GT(q.stats().dropped, 0u);
  EXPECT_LT(accepted, 50);
}

TEST(RedQueue, AverageTracksOccupancy) {
  RedQueue q(util::Rng(1), RedQueue::Config{64, 50, 60, 0.1, 1.0});
  for (int i = 0; i < 10; ++i) q.recv(make_packet(10));
  // With weight 1.0 the average equals the pre-arrival depth.
  EXPECT_NEAR(q.average_depth(), 9.0, 1e-9);
}

TEST(RedQueue, DequeueFifo) {
  RedQueue q(util::Rng(1));
  q.recv(make_packet(10, 1));
  q.recv(make_packet(10, 2));
  EXPECT_EQ(q.dequeue()->uid, 1u);
  EXPECT_EQ(q.dequeue()->uid, 2u);
  EXPECT_EQ(q.dequeue(), nullptr);
}

}  // namespace
}  // namespace mafic::sim
