// Fixed-seed regression pin for MaficFilter classification decisions.
//
// The flow store and probation timers were rebuilt (flat open-addressing
// table + hierarchical timer wheel) on the premise that the *decisions* the
// filter makes are bit-identical to the original map-based implementation.
// This test drives the filter with a fully scripted packet schedule and a
// fixed Rng seed and compares every probation outcome — flow, destination
// table, and both half-window arrival counts — against goldens recorded
// from the pre-refactor implementation.
//
// Regenerate goldens (only if the *algorithm* legitimately changes):
//   MAFIC_PRINT_GOLDEN=1 ./test_core_classification_regression

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/mafic_filter.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {
namespace {

struct Outcome {
  std::uint32_t flow;
  TableKind dest;
  std::uint32_t baseline;
  std::uint32_t probe;

  friend bool operator==(const Outcome&, const Outcome&) = default;
};

sim::FlowLabel label_for(std::uint32_t i) {
  return {util::make_addr(172, 16, (i >> 8) & 0xff, i & 0xff),
          util::make_addr(172, 17, 0, 1), std::uint16_t(1024 + i), 80};
}

/// Scripted arrivals: 48 flows send at fixed times for 1.2 s. Flows are
/// striped across four behaviors so all decision branches are exercised:
///   i % 4 == 0  steady fast (no rate decrease => PDT)
///   i % 4 == 1  halves its rate at t=0.05, mid-probation (decrease => NFT)
///   i % 4 == 2  slow trickle (too thin to judge => NFT benefit of doubt)
///   i % 4 == 3  stops entirely at t=0.055 (decrease => NFT)
std::vector<Outcome> run_scripted() {
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  sim::PacketFactory factory;

  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation window
  cfg.drop_probability = 0.9;

  MaficFilter filter(&sim, &factory, atr, cfg, nullptr, util::Rng(42));

  class Sink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr) override {}
  } sink;
  filter.set_target(&sink);

  const util::Addr victim = util::make_addr(172, 17, 0, 1);
  filter.activate({victim});

  std::vector<Outcome> outcomes;
  std::vector<std::uint64_t> keys;
  for (std::uint32_t i = 0; i < 48; ++i) {
    keys.push_back(sim::hash_label(label_for(i)));
  }
  filter.set_classification_callback(
      [&](const SftEntry& e, TableKind dest) {
        std::uint32_t flow = 0xffffffffu;
        for (std::uint32_t i = 0; i < keys.size(); ++i) {
          if (keys[i] == e.key) flow = i;
        }
        outcomes.push_back(
            Outcome{flow, dest, e.baseline_count, e.probe_count});
      });

  const auto send_at = [&](double t, std::uint32_t flow) {
    sim.schedule_at(t, [&filter, &factory, flow] {
      auto p = factory.make();
      p->label = label_for(flow);
      p->proto = sim::Protocol::kTcp;
      p->size_bytes = 1000;
      filter.recv(std::move(p));
    });
  };

  for (std::uint32_t i = 0; i < 48; ++i) {
    // Per-flow phase offset; prime-ish steps avoid synchronized ties.
    const double phase = 1e-4 * double(i);
    switch (i % 4) {
      case 0:  // steady fast: 4 ms spacing throughout
        for (double t = 0.01 + phase; t < 0.6; t += 0.004) send_at(t, i);
        break;
      case 1:  // halves its rate mid-probation
        for (double t = 0.01 + phase; t < 0.05; t += 0.004) send_at(t, i);
        for (double t = 0.05 + phase; t < 0.6; t += 0.008) send_at(t, i);
        break;
      case 2:  // trickle: 90 ms spacing, thinner than min_baseline_packets
        for (double t = 0.02 + phase; t < 0.6; t += 0.09) send_at(t, i);
        break;
      case 3:  // stops mid-probation
        for (double t = 0.01 + phase; t < 0.055; t += 0.004) send_at(t, i);
        break;
    }
  }

  sim.run();
  return outcomes;
}

constexpr std::uint32_t kNft = 1;  // compact golden encoding
constexpr std::uint32_t kPdt = 2;

struct GoldenRow {
  std::uint32_t flow, dest, baseline, probe;
};

// Recorded from the pre-refactor std::unordered_map implementation
// (commit 96a7caa) with MAFIC_PRINT_GOLDEN=1.
constexpr GoldenRow kGolden[] = {
    {0, kPdt, 9, 10},  {1, kNft, 9, 5},   {3, kNft, 9, 2},
    {7, kNft, 9, 2},   {8, kPdt, 9, 10},  {9, kNft, 9, 5},
    {11, kNft, 9, 1},  {12, kPdt, 9, 10}, {13, kNft, 9, 5},
    {15, kNft, 9, 1},  {16, kPdt, 9, 10}, {17, kNft, 9, 5},
    {19, kNft, 9, 1},  {20, kPdt, 9, 10}, {21, kNft, 9, 5},
    {23, kNft, 9, 1},  {24, kPdt, 9, 10}, {25, kNft, 9, 5},
    {27, kNft, 9, 1},  {28, kPdt, 9, 10}, {29, kNft, 9, 5},
    {31, kNft, 9, 1},  {32, kPdt, 9, 10}, {33, kNft, 9, 5},
    {35, kNft, 9, 1},  {36, kPdt, 9, 10}, {37, kNft, 9, 5},
    {39, kNft, 9, 1},  {40, kPdt, 9, 10}, {43, kNft, 9, 1},
    {4, kPdt, 9, 10},  {44, kPdt, 9, 10}, {5, kNft, 9, 5},
    {47, kNft, 9, 1},  {41, kNft, 8, 5},  {45, kNft, 8, 5},
    {2, kNft, 0, 0},   {6, kNft, 0, 0},   {10, kNft, 0, 0},
    {18, kNft, 0, 0},  {22, kNft, 0, 0},  {26, kNft, 0, 0},
    {30, kNft, 0, 0},  {34, kNft, 0, 0},  {38, kNft, 0, 0},
    {42, kNft, 0, 0},  {46, kNft, 0, 0},  {14, kNft, 0, 0},
};

TEST(ClassificationRegression, MatchesMapBasedImplementation) {
  std::vector<Outcome> outcomes = run_scripted();

  if (std::getenv("MAFIC_PRINT_GOLDEN") != nullptr) {
    for (const auto& o : outcomes) {
      std::printf("    {%u, %s, %u, %u},\n", o.flow,
                  o.dest == TableKind::kNice ? "kNft" : "kPdt", o.baseline,
                  o.probe);
    }
    std::fflush(stdout);
    GTEST_SKIP() << "golden print mode";
  }

  // Compared per flow: what each flow's decision is — destination table
  // and the exact half-window counts it was judged on — must be
  // byte-identical to the map-based implementation. The *relative order*
  // of decisions across different flows is not pinned: decision timers on
  // the wheel fire on tick boundaries, so independent flows' resolutions
  // may interleave differently than the exact-time heap events did.
  std::vector<GoldenRow> want(std::begin(kGolden), std::end(kGolden));
  std::sort(want.begin(), want.end(),
            [](const GoldenRow& a, const GoldenRow& b) {
              return a.flow < b.flow;
            });
  std::sort(outcomes.begin(), outcomes.end(),
            [](const Outcome& a, const Outcome& b) {
              return a.flow < b.flow;
            });

  ASSERT_EQ(outcomes.size(), want.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const auto dest =
        want[i].dest == kNft ? TableKind::kNice : TableKind::kPermanentDrop;
    EXPECT_EQ(outcomes[i].flow, want[i].flow) << "row " << i;
    EXPECT_EQ(outcomes[i].dest, dest) << "flow " << want[i].flow;
    EXPECT_EQ(outcomes[i].baseline, want[i].baseline)
        << "flow " << want[i].flow;
    EXPECT_EQ(outcomes[i].probe, want[i].probe) << "flow " << want[i].flow;
  }
}

/// Every scripted flow resolves exactly once: NFT and PDT membership are
/// permanent with revalidation off, so no flow re-enters probation.
TEST(ClassificationRegression, EachFlowDecidedOnce) {
  std::vector<Outcome> outcomes = run_scripted();
  std::vector<int> seen(48, 0);
  for (const auto& o : outcomes) {
    ASSERT_LT(o.flow, 48u);
    ++seen[o.flow];
  }
  for (std::uint32_t i = 0; i < 48; ++i) {
    EXPECT_EQ(seen[i], 1) << "flow " << i;
  }
}

}  // namespace
}  // namespace mafic::core
