// Per-victim SFT quotas (MaficConfig::sft_victim_quota): one eviction
// ring + reserved slot budget per protected destination, so a capacity-
// saturating flood at one victim can no longer recycle another victim's
// in-flight probations before their 2 x RTT deadlines.
//
// Layers covered here:
//   * FlowTables quota semantics (self-pay vs cross-class payment,
//     fraction/absolute knob forms, clamping, re-ringing live entries);
//   * a randomized property: per-class ring occupancies always sum to the
//     SFT size, and no class strictly under its quota ever loses an entry
//     to capacity pressure;
//   * engine-level flood isolation (the bug this machinery fixes, shown
//     failing with the quota off and fixed with it on);
//   * weighted reservations (PR 8): per-victim quotas proportional to
//     provisioned bandwidth, incl. the degenerate forms (zero-bandwidth
//     victim, all-zero weights, reservations clamped into the table);
//   * experiment-level wiring (knob -> engines, per-victim eviction
//     counts in ExperimentResult::per_victim, sft_victim_weights ->
//     every engine's reservations).

#include "core/flow_tables.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "core/mafic_filter.hpp"
#include "core/standalone_runtime.hpp"
#include "scenario/experiment.hpp"
#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace mafic::core {
namespace {

constexpr util::Addr kVictimA = util::make_addr(172, 17, 0, 1);
constexpr util::Addr kVictimB = util::make_addr(172, 17, 0, 2);
constexpr util::Addr kVictimC = util::make_addr(172, 17, 0, 3);

sim::FlowLabel label_to(util::Addr dst, std::uint32_t i) {
  return {util::make_addr(10, 0, (i >> 8) & 0xff, i & 0xff) + (i << 16), dst,
          std::uint16_t(1000 + (i % 50000)), 80};
}

TEST(VictimQuota, QuotaSlotsFractionAbsoluteAndClamp) {
  {
    MaficConfig cfg;
    cfg.sft_capacity = 16;
    cfg.sft_victim_quota = 0.25;  // fraction of capacity
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB});
    EXPECT_EQ(t.victim_classes(), 2u);
    EXPECT_EQ(t.quota_slots(), 4u);
  }
  {
    MaficConfig cfg;
    cfg.sft_capacity = 16;
    cfg.sft_victim_quota = 5.0;  // absolute slots
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB});
    EXPECT_EQ(t.quota_slots(), 5u);
  }
  {
    // Summed reservations are clamped into the table so an under-quota
    // admitter always finds an over-quota payer.
    MaficConfig cfg;
    cfg.sft_capacity = 8;
    cfg.sft_victim_quota = 0.9;
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB});
    EXPECT_EQ(t.quota_slots(), 4u);  // not 7
  }
  {
    // Quota disabled or a single victim: one shared class, no budget.
    MaficConfig cfg;
    cfg.sft_capacity = 8;
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB});
    EXPECT_EQ(t.victim_classes(), 1u);
    EXPECT_EQ(t.quota_slots(), 0u);
    MaficConfig cfg2;
    cfg2.sft_victim_quota = 0.5;
    FlowTables t2(cfg2);
    t2.set_victim_classes({kVictimA});
    EXPECT_EQ(t2.victim_classes(), 1u);
  }
}

TEST(VictimQuota, OverQuotaAdmitterPaysFromItsOwnRing) {
  MaficConfig cfg;
  cfg.sft_capacity = 8;
  cfg.sft_victim_quota = 3.0;
  FlowTables t(cfg);
  t.set_victim_classes({kVictimA, kVictimB});

  std::vector<std::pair<std::uint64_t, EvictCause>> evicted;
  t.set_eviction_hook([&](const SftEntry& e, EvictCause c) {
    evicted.emplace_back(e.key, c);
  });

  // A holds 6 (3 over quota), B holds 2 (1 under quota): table full.
  std::uint64_t key = 1;
  for (int i = 0; i < 6; ++i, ++key) {
    t.admit_sft(key, label_to(kVictimA, std::uint32_t(key)), double(i), 0.2);
  }
  for (int i = 0; i < 2; ++i, ++key) {
    t.admit_sft(key, label_to(kVictimB, std::uint32_t(key)), double(i), 0.2);
  }
  ASSERT_EQ(t.sft_size(), 8u);

  // A admits again: over quota, so A's own nearest-deadline entry (key 1)
  // goes — B is untouched.
  t.admit_sft(key, label_to(kVictimA, std::uint32_t(key)), 10.0, 0.2);
  ++key;
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 1u);
  EXPECT_EQ(evicted[0].second, EvictCause::kCapacity);
  EXPECT_EQ(t.sft_size_of(kVictimB), 2u);
  EXPECT_EQ(t.stats().quota_evictions, 0u);

  // B admits: under quota (2 < 3), so the most over-quota class (A, over
  // by 3) pays — cause kQuota — and B reaches its reservation.
  t.admit_sft(key, label_to(kVictimB, std::uint32_t(key)), 10.0, 0.2);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].second, EvictCause::kQuota);
  EXPECT_EQ(t.sft_size_of(kVictimA), 5u);
  EXPECT_EQ(t.sft_size_of(kVictimB), 3u);
  EXPECT_EQ(t.stats().quota_evictions, 1u);
  EXPECT_EQ(t.stats().sft_evictions, 2u);
}

TEST(VictimQuota, RegisteringClassesReRingsLiveProbations) {
  MaficConfig cfg;
  cfg.sft_capacity = 8;
  cfg.sft_victim_quota = 0.5;  // 4 slots per victim once registered
  FlowTables t(cfg);

  // Admit before any registration: everything lands in the one shared
  // class (legacy behaviour).
  for (std::uint64_t k = 1; k <= 4; ++k) {
    t.admit_sft(k, label_to(k % 2 == 0 ? kVictimA : kVictimB,
                            std::uint32_t(k)),
                double(k), 0.2);
  }
  EXPECT_EQ(t.victim_classes(), 1u);
  EXPECT_EQ(t.sft_size_of(kVictimA), 4u);  // shared class holds all

  // Registration re-rings the live probations under their own classes.
  t.set_victim_classes({kVictimA, kVictimB});
  EXPECT_EQ(t.victim_classes(), 2u);
  EXPECT_EQ(t.sft_size_of(kVictimA), 2u);
  EXPECT_EQ(t.sft_size_of(kVictimB), 2u);
  EXPECT_EQ(t.ring_occupancy(), t.sft_size());

  // Re-registering the same set is a no-op; resolving entries afterwards
  // keeps counts coherent (the unlink finds the re-ringed slots).
  t.set_victim_classes({kVictimB, kVictimA});
  t.resolve(2, TableKind::kNice);
  t.resolve(3, TableKind::kPermanentDrop);
  EXPECT_EQ(t.sft_size_of(kVictimA), 1u);
  EXPECT_EQ(t.sft_size_of(kVictimB), 1u);
  EXPECT_EQ(t.ring_occupancy(), t.sft_size());
}

TEST(VictimQuota, ReRingingPreservesNearestDeadlineEviction) {
  // Regression: set_victim_classes must re-ring live probations in
  // ascending deadline order. Inserting in arena order would let the
  // first slot seed the ring cursor and clamp every earlier-deadline
  // slot up to it, so the next capacity eviction would take a fresh
  // probation instead of the one nearest its deadline.
  MaficConfig cfg;
  cfg.sft_capacity = 2;
  cfg.sft_victim_quota = 0.5;  // 1 reserved slot per victim
  FlowTables t(cfg);

  // Arena slot 0 gets the FAR deadline, slot 1 the NEAR one.
  t.admit_sft(1, label_to(kVictimA, 1), 0.0, 10.0);  // deadline 10.0
  t.admit_sft(2, label_to(kVictimA, 2), 0.0, 0.1);   // deadline 0.1
  t.set_victim_classes({kVictimA, kVictimB});

  // A is over its quota of 1: the next A admission self-pays with its
  // nearest-deadline probation — key 2, not the arena-first key 1.
  t.admit_sft(3, label_to(kVictimA, 3), 0.0, 10.0);
  EXPECT_EQ(t.classify(2), TableKind::kNone) << "near-deadline evicted";
  EXPECT_EQ(t.classify(1), TableKind::kSuspicious) << "far-deadline kept";
}

TEST(VictimQuota, PropertyRingOccupancyMatchesQuotaAccounting) {
  // Random admit/resolve/flush churn over three victim classes at a tiny
  // capacity: after every operation the per-class ring occupancies sum to
  // the SFT size, and no class strictly under its reservation ever loses
  // an entry to capacity pressure (the enforced isolation invariant).
  MaficConfig cfg;
  cfg.sft_capacity = 24;
  cfg.sft_victim_quota = 0.25;  // 6 reserved per victim, 6 shared
  FlowTables t(cfg);
  const std::vector<util::Addr> victims{kVictimA, kVictimB, kVictimC};
  t.set_victim_classes(victims);
  const std::size_t quota = t.quota_slots();
  ASSERT_EQ(quota, 6u);

  std::unordered_map<std::uint64_t, util::Addr> live;  // key -> victim
  std::vector<std::uint64_t> live_keys;
  bool in_admit = false;
  t.set_eviction_hook([&](const SftEntry& e, EvictCause c) {
    ASSERT_TRUE(in_admit || c == EvictCause::kFlush);
    if (c != EvictCause::kFlush) {
      // The payer was at/over its reservation when it paid (sft_size_of
      // still counts the entry the hook is handing out).
      EXPECT_GE(t.sft_size_of(e.label.dst), c == EvictCause::kQuota
                                                ? quota + 1
                                                : quota);
    }
    live.erase(e.key);
  });

  util::Rng rng(20260730);
  std::uint64_t next_key = 1;
  for (int step = 0; step < 20000; ++step) {
    const std::size_t op = rng.index(100);
    if (op < 70 || live.empty()) {
      const util::Addr dst = victims[rng.index(victims.size())];
      const std::uint64_t key = next_key++;
      in_admit = true;
      ASSERT_NE(t.admit_sft(key, label_to(dst, std::uint32_t(key)),
                            double(step) * 1e-4, 0.05 + rng.uniform01() * 0.1),
                nullptr);
      in_admit = false;
      live.emplace(key, dst);
    } else if (op < 99) {
      // Resolve a random live probation.
      live_keys.clear();
      for (const auto& [k, dst] : live) live_keys.push_back(k);
      const std::uint64_t key = live_keys[rng.index(live_keys.size())];
      t.resolve(key, rng.index(2) == 0 ? TableKind::kNice
                                       : TableKind::kPermanentDrop);
      live.erase(key);
    } else {
      t.flush();
      live.clear();
    }

    // Quota sums equal ring occupancy equals SFT size, every step.
    ASSERT_EQ(t.ring_occupancy(), t.sft_size()) << "step " << step;
    std::size_t sum = 0;
    std::unordered_map<util::Addr, std::size_t> ref_counts;
    for (const auto& [k, dst] : live) ++ref_counts[dst];
    for (const util::Addr v : victims) {
      ASSERT_EQ(t.sft_size_of(v), ref_counts[v]) << "step " << step;
      sum += t.sft_size_of(v);
    }
    ASSERT_EQ(sum, t.sft_size()) << "step " << step;
    ASSERT_LE(t.sft_size(), cfg.sft_capacity);
  }
  EXPECT_GT(t.stats().sft_evictions, 0u);
  EXPECT_GT(t.stats().quota_evictions, 0u);
}

// --- weighted reservations (provisioned-bandwidth quotas) ----------------

TEST(VictimQuota, WeightedReservationsFollowProvisionedBandwidth) {
  // capacity 32, quota 0.25: the equal path would reserve 8 per victim;
  // the weighted path splits the same 24-slot pool 3:1:0.
  MaficConfig cfg;
  cfg.sft_capacity = 32;
  cfg.sft_victim_quota = 0.25;
  FlowTables t(cfg);
  t.set_victim_classes({kVictimA, kVictimB, kVictimC}, {3.0, 1.0, 0.0});
  EXPECT_EQ(t.victim_classes(), 3u);
  EXPECT_EQ(t.quota_slots_of(kVictimA), 18u);  // 24 * 3/4
  EXPECT_EQ(t.quota_slots_of(kVictimB), 6u);   // 24 * 1/4
  EXPECT_EQ(t.quota_slots_of(kVictimC), 0u);   // zero-bandwidth: no reserve

  // Weights ride the victims through the canonical address sort, so the
  // caller's ordering cannot change anyone's reservation.
  FlowTables u(cfg);
  u.set_victim_classes({kVictimC, kVictimA, kVictimB}, {0.0, 3.0, 1.0});
  EXPECT_EQ(u.quota_slots_of(kVictimA), 18u);
  EXPECT_EQ(u.quota_slots_of(kVictimB), 6u);
  EXPECT_EQ(u.quota_slots_of(kVictimC), 0u);
}

TEST(VictimQuota, WeightedDegenerateFormsFallBackSafely) {
  MaficConfig cfg;
  cfg.sft_capacity = 16;
  cfg.sft_victim_quota = 0.25;  // pool = 8 over two victims
  {
    // All-zero weights mean "no preference": the equal split survives.
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB}, {0.0, 0.0});
    EXPECT_EQ(t.quota_slots_of(kVictimA), 4u);
    EXPECT_EQ(t.quota_slots_of(kVictimB), 4u);
  }
  {
    // Equal weights are byte-identical to the unweighted knob.
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB}, {2.0, 2.0});
    EXPECT_EQ(t.quota_slots_of(kVictimA), t.quota_slots());
    EXPECT_EQ(t.quota_slots_of(kVictimB), t.quota_slots());
  }
  {
    // A negative weight clamps to zero instead of corrupting the pool.
    FlowTables t(cfg);
    t.set_victim_classes({kVictimA, kVictimB}, {1.0, -5.0});
    EXPECT_EQ(t.quota_slots_of(kVictimA), 8u);  // the whole pool
    EXPECT_EQ(t.quota_slots_of(kVictimB), 0u);
  }
}

TEST(VictimQuota, WeightedReservationsClampIntoTheTable) {
  // Same guarantee as the unweighted clamp: summed reservations fit in
  // the table even when the knob asks for more (0.9 x 8 = 7 slots EACH
  // here), so an under-quota admitter always finds an over-quota payer.
  MaficConfig cfg;
  cfg.sft_capacity = 8;
  cfg.sft_victim_quota = 0.9;
  FlowTables t(cfg);
  t.set_victim_classes({kVictimA, kVictimB}, {3.0, 1.0});
  EXPECT_EQ(t.quota_slots_of(kVictimA), 6u);  // pool 8, split 3:1
  EXPECT_EQ(t.quota_slots_of(kVictimB), 2u);
  EXPECT_LE(t.quota_slots_of(kVictimA) + t.quota_slots_of(kVictimB),
            cfg.sft_capacity);
}

TEST(VictimQuota, ZeroWeightVictimAdmitsViaOverflowOnly) {
  // A zero-bandwidth victim holds no reservation: anything it has is
  // reclaimable by an under-quota victim, and its own admissions under
  // pressure always self-pay.
  MaficConfig cfg;
  cfg.sft_capacity = 8;
  cfg.sft_victim_quota = 3.0;  // pool = 2 x min(3, 4) = 6
  FlowTables t(cfg);
  t.set_victim_classes({kVictimA, kVictimB}, {1.0, 0.0});
  ASSERT_EQ(t.quota_slots_of(kVictimA), 6u);
  ASSERT_EQ(t.quota_slots_of(kVictimB), 0u);

  std::vector<std::pair<util::Addr, EvictCause>> evicted;
  t.set_eviction_hook([&](const SftEntry& e, EvictCause c) {
    evicted.emplace_back(e.label.dst, c);
  });

  // B fills the whole table: every slot it holds is over its zero
  // reservation (overflow capacity, lent while nobody else wants it).
  std::uint64_t key = 1;
  for (int i = 0; i < 8; ++i, ++key) {
    t.admit_sft(key, label_to(kVictimB, std::uint32_t(key)), double(i), 0.2);
  }
  ASSERT_EQ(t.sft_size(), 8u);
  ASSERT_TRUE(evicted.empty());

  // A admits: far under its quota of 6, so B pays — cause kQuota.
  t.admit_sft(key, label_to(kVictimA, std::uint32_t(key)), 10.0, 0.2);
  ++key;
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, kVictimB);
  EXPECT_EQ(evicted[0].second, EvictCause::kQuota);
  EXPECT_EQ(t.sft_size_of(kVictimA), 1u);
  EXPECT_EQ(t.sft_size_of(kVictimB), 7u);
  EXPECT_EQ(t.stats().quota_evictions, 1u);

  // B admits again while full: any occupancy is over quota, so it
  // self-pays with its own nearest-deadline probation — A untouched.
  t.admit_sft(key, label_to(kVictimB, std::uint32_t(key)), 10.0, 0.2);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].first, kVictimB);
  EXPECT_EQ(evicted[1].second, EvictCause::kCapacity);
  EXPECT_EQ(t.sft_size_of(kVictimA), 1u);
}

TEST(VictimQuota, EngineWeightsAreConsumedAtActivation) {
  // FilterEngine::set_victim_weights stages weights that the next
  // activate() resolves against its victim set; victims without a staged
  // weight default to 1.0.
  MaficConfig cfg;
  cfg.sft_capacity = 32;
  cfg.sft_victim_quota = 0.25;  // pool = 16 over two victims
  {
    EngineRuntime rt(cfg, nullptr, util::Rng(7));
    FilterEngine& eng = rt.engine();
    eng.set_victim_weights({{kVictimB, 1.0}, {kVictimA, 3.0}});
    eng.activate({kVictimA, kVictimB});
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimA), 12u);
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimB), 4u);
  }
  {
    // Only A staged: B weighs 1.0 by default, same 3:1 split.
    EngineRuntime rt(cfg, nullptr, util::Rng(7));
    FilterEngine& eng = rt.engine();
    eng.set_victim_weights({{kVictimA, 3.0}});
    eng.activate({kVictimA, kVictimB});
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimA), 12u);
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimB), 4u);
  }
  {
    // No weights staged: the unweighted equal split, unchanged.
    EngineRuntime rt(cfg, nullptr, util::Rng(7));
    FilterEngine& eng = rt.engine();
    eng.activate({kVictimA, kVictimB});
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimA), 8u);
    EXPECT_EQ(eng.tables().quota_slots_of(kVictimB), 8u);
  }
}

// --- engine-level flood isolation ---------------------------------------

struct FloodOutcome {
  std::uint64_t b_evictions = 0;
  std::uint64_t a_evictions = 0;
  std::size_t b_live_after_flood = 0;
  std::uint64_t b_decided = 0;
};

/// Floods victim A with `flood` fresh single-packet flows after parking a
/// handful of victim-B probations, then fires the decision timers.
FloodOutcome run_flood(double quota) {
  MaficConfig cfg;
  cfg.sft_capacity = 32;
  cfg.sft_victim_quota = quota;
  cfg.drop_probability = 1.0;  // every fresh flow admits on first sight
  cfg.probe_enabled = false;
  EngineRuntime rt(cfg, nullptr, util::Rng(7));
  FilterEngine& eng = rt.engine();
  eng.activate({kVictimA, kVictimB});

  const auto offer = [&](util::Addr dst, std::uint32_t i) {
    sim::Packet p;
    p.label = label_to(dst, i);
    p.proto = sim::Protocol::kTcp;
    p.size_bytes = 250;
    eng.inspect(p);
  };

  // Victim B: 4 probations in flight (inside any sane quota).
  for (std::uint32_t i = 0; i < 4; ++i) offer(kVictimB, i);
  EXPECT_EQ(eng.tables().sft_size_of(kVictimB), 4u) << "setup";

  // Victim A: a zombie flood of fresh labels runs the SFT to capacity and
  // keeps churning it (every admission past capacity evicts).
  for (std::uint32_t i = 0; i < 500; ++i) offer(kVictimA, 1000 + i);

  FloodOutcome out;
  out.b_live_after_flood = eng.tables().sft_size_of(kVictimB);
  const auto& per = eng.victim_stats();
  if (const auto it = per.find(kVictimB); it != per.end()) {
    out.b_evictions = it->second.evictions;
  }
  if (const auto it = per.find(kVictimA); it != per.end()) {
    out.a_evictions = it->second.evictions;
  }

  // Let the surviving probations reach their 2 x RTT decisions.
  rt.advance_until(1.0);
  if (const auto it = per.find(kVictimB); it != per.end()) {
    out.b_decided =
        it->second.decided_nice + it->second.decided_malicious;
  }
  return out;
}

TEST(VictimQuota, FloodAtOneVictimCannotEvictAnothersProbations) {
  // Quota on: victim B's probations survive victim A's capacity-
  // saturating flood untouched and all reach their decisions.
  const FloodOutcome quota_on = run_flood(0.25);
  EXPECT_EQ(quota_on.b_evictions, 0u);
  EXPECT_EQ(quota_on.b_live_after_flood, 4u);
  EXPECT_EQ(quota_on.b_decided, 4u);
  EXPECT_GT(quota_on.a_evictions, 400u);  // the flood paid for itself

  // Quota off (the pre-fix behaviour this PR turns into an invariant):
  // the same flood recycles B's probations before their deadlines, so
  // none of them ever reaches a decision. (b_live is not meaningful here:
  // with quotas off sft_size_of reports the single shared ring.)
  const FloodOutcome quota_off = run_flood(0.0);
  EXPECT_EQ(quota_off.b_evictions, 4u);
  EXPECT_EQ(quota_off.b_decided, 0u);
}

}  // namespace
}  // namespace mafic::core

// --- experiment-level wiring --------------------------------------------

namespace mafic::scenario {
namespace {

TEST(VictimQuotaExperiment, KnobFlowsToEnginesAndPerVictimEvictionCounts) {
  // A per-packet-spoofed zombie flood aimed at the extra victim churns a
  // deliberately tiny SFT at its ATR (the spoof pool of ~50 legitimate
  // host addresses keeps re-manufacturing untabled labels faster than
  // probations can resolve); with the quota on, the primary victim's
  // probations are never evicted and the per-victim breakdown reports
  // the flood victim's (self-paid) churn.
  ExperimentConfig cfg;
  cfg.seed = 11;
  cfg.total_flows = 50;
  cfg.tcp_fraction = 0.98;  // 49 legit TCP flows + 1 zombie
  cfg.router_count = 8;
  cfg.extra_victims = 1;    // zombie is flow 50 -> targets the extra victim
  cfg.per_packet_spoofing = true;
  cfg.sft_victim_quota = 0.25;
  cfg.mafic.sft_capacity = 16;
  cfg.end_time = 4.5;

  Experiment exp(cfg);
  const ExperimentResult r = exp.run();

  ASSERT_EQ(r.per_victim.size(), 2u);
  // The flood victim's ATR churned its SFT (every admission past
  // capacity evicts one of the flood's own probations)...
  EXPECT_GT(r.per_victim[1].evictions, 100u);
  // ...while the primary victim's probations were never evicted, and no
  // cross-victim payment was ever needed (the flood never exceeded its
  // own victim's entitlement at any other ATR).
  EXPECT_EQ(r.per_victim[0].evictions, 0u);
  EXPECT_EQ(r.per_victim[0].quota_evictions, 0u);
  EXPECT_EQ(r.sft_evictions,
            r.per_victim[0].evictions + r.per_victim[1].evictions);
  EXPECT_GT(r.per_victim[0].decided_nice, 0u);  // legit flows still judged
}

TEST(VictimQuotaExperiment, ProvisionedWeightsFlowToEveryEngine) {
  // ExperimentConfig::sft_victim_weights (victim order, primary first)
  // reaches every mounted engine: after the run, each activated filter
  // reserves SFT slots 3:1 between the two victims instead of 1:1.
  ExperimentConfig cfg;
  cfg.seed = 11;
  cfg.total_flows = 50;
  cfg.tcp_fraction = 0.98;
  cfg.router_count = 8;
  cfg.extra_victims = 1;
  cfg.per_packet_spoofing = true;
  cfg.sft_victim_quota = 0.25;
  cfg.sft_victim_weights = {3.0, 1.0};
  cfg.mafic.sft_capacity = 16;
  cfg.end_time = 4.5;

  Experiment exp(cfg);
  const ExperimentResult r = exp.run();
  EXPECT_TRUE(r.metrics.triggered);
  ASSERT_EQ(r.per_victim.size(), 2u);
  ASSERT_EQ(exp.victim_addrs().size(), 2u);
  const util::Addr primary = exp.victim_addrs()[0];
  const util::Addr extra = exp.victim_addrs()[1];

  // pool = 2 x min(4, 16/2) = 8 slots; 3:1 split = 6 and 2 (the equal
  // split would be 4 and 4).
  std::size_t activated = 0;
  for (const core::MaficFilter* f : exp.mafic_filters()) {
    if (f->tables().victim_classes() < 2) continue;  // never activated
    ++activated;
    EXPECT_EQ(f->tables().quota_slots_of(primary), 6u);
    EXPECT_EQ(f->tables().quota_slots_of(extra), 2u);
  }
  EXPECT_GT(activated, 0u);
}

}  // namespace
}  // namespace mafic::scenario
