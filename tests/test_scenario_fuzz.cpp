// Determinism + well-formedness fuzz for the scenario generator.
//
// Random ScenarioSpecs drawn from a seed must be a PURE function of that
// seed: compiling twice yields the identical ExperimentConfig, generating
// the timeline twice yields the identical event list, and actually running
// the scenario twice yields the identical fingerprint. Generated timelines
// must satisfy the structural contract validate_timeline() enforces — no
// phase before the army finished spawning, pulse edges alternating, carpet
// sweeps covering every victim exactly once per sweep — and the validator
// itself must catch deliberately tampered timelines.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "scenario/scenario_spec.hpp"
#include "util/rng.hpp"

namespace mafic::scenario {
namespace {

ScenarioSpec random_spec(std::uint64_t seed) {
  util::Rng rng(seed);
  ScenarioSpec s;
  s.name = "fuzz";
  s.seed = rng.next();
  s.routers = 4 + rng.index(8);
  const AttackShape shapes[] = {AttackShape::kNone, AttackShape::kFlood,
                                AttackShape::kPulse, AttackShape::kCarpetBomb,
                                AttackShape::kSpoofChurn};
  s.shape = shapes[rng.index(5)];
  s.victims = s.shape == AttackShape::kCarpetBomb ? 2 + rng.index(4)
                                                  : 1 + rng.index(4);
  s.legit_flows = 4 + rng.index(30);
  s.legit_udp_fraction = rng.uniform(0.0, 0.5);
  s.zombies = 1 + rng.index(8);
  s.attack_total_bps = rng.uniform(2e6, 10e6);
  s.attack_start = rng.uniform(1.0, 2.5);
  s.attack_ramp = rng.uniform(0.05, 0.5);
  s.trigger_time = s.attack_start + rng.uniform(0.3, 0.8);
  s.pulse_period = rng.uniform(0.3, 1.5);
  s.pulse_on = rng.uniform(0.05, 1.5);  // generator clamps under period
  s.carpet_dwell = rng.uniform(0.1, 0.6);
  s.churn_interval = rng.uniform(0.1, 0.8);
  if (rng.bernoulli(0.4)) {
    s.flash_fraction = rng.uniform(0.1, 0.6);
    s.flash_start = s.trigger_time + rng.uniform(0.2, 0.8);
    s.flash_ramp = rng.uniform(0.1, 0.5);
  }
  if (rng.bernoulli(0.5) && s.victims > 1) {
    s.sft_victim_quota = rng.uniform(0.05, 0.4);
    for (std::size_t v = 0; v < s.victims; ++v) {
      s.victim_provisioned_bps.push_back(rng.uniform(0.0, 8e6));
    }
  }
  // Leave room for at least one full carpet sweep past the spawn ramp.
  s.end_time = s.attack_start + s.attack_ramp +
               double(s.victims) * s.carpet_dwell + rng.uniform(1.0, 3.0);
  return s;
}

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, CompilesAndGeneratesIdenticallyOnRepeat) {
  const ScenarioSpec a = random_spec(GetParam());
  const ScenarioSpec b = random_spec(GetParam());

  const ExperimentConfig ca = compile(a);
  const ExperimentConfig cb = compile(b);
  EXPECT_EQ(ca.seed, cb.seed);
  EXPECT_EQ(ca.total_flows, cb.total_flows);
  EXPECT_EQ(ca.tcp_fraction, cb.tcp_fraction);
  EXPECT_EQ(ca.router_count, cb.router_count);
  EXPECT_EQ(ca.extra_victims, cb.extra_victims);
  EXPECT_EQ(ca.sft_victim_quota, cb.sft_victim_quota);
  EXPECT_EQ(ca.sft_victim_weights, cb.sft_victim_weights);
  EXPECT_EQ(ca.flash_crowd_fraction, cb.flash_crowd_fraction);
  EXPECT_EQ(ca.end_time, cb.end_time);

  const Timeline ta = generate_timeline(a);
  const Timeline tb = generate_timeline(b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].at, tb[i].at);
    EXPECT_EQ(ta[i].action, tb[i].action);
    EXPECT_EQ(ta[i].victim, tb[i].victim);
  }
}

TEST_P(ScenarioFuzz, TimelineIsWellFormed) {
  const ScenarioSpec s = random_spec(GetParam());
  const Timeline tl = generate_timeline(s);
  EXPECT_EQ(validate_timeline(s, tl), "");

  // No zombie fires before the whole army has spawned, independently of
  // the validator's implementation.
  const double spawn_done = s.attack_start + s.attack_ramp;
  for (const TimelineEvent& ev : tl) {
    EXPECT_GE(ev.at, spawn_done);
    EXPECT_LT(ev.at, s.end_time);
  }
}

TEST_P(ScenarioFuzz, CarpetSweepsCoverEveryVictimExactlyOnce) {
  ScenarioSpec s = random_spec(GetParam());
  s.shape = AttackShape::kCarpetBomb;
  if (s.victims < 2) s.victims = 2;
  const Timeline tl = generate_timeline(s);
  ASSERT_FALSE(tl.empty());  // end_time always leaves room for one sweep
  ASSERT_EQ(tl.size() % s.victims, 0u);
  for (std::size_t block = 0; block < tl.size(); block += s.victims) {
    std::set<std::size_t> hit;
    for (std::size_t i = 0; i < s.victims; ++i) {
      const TimelineEvent& ev = tl[block + i];
      EXPECT_EQ(ev.action, attack::PhaseAction::kRetarget);
      EXPECT_LT(ev.victim, s.victims);
      EXPECT_TRUE(hit.insert(ev.victim).second)
          << "victim " << ev.victim << " hit twice in sweep "
          << block / s.victims;
    }
    EXPECT_EQ(hit.size(), s.victims);
  }
}

TEST_P(ScenarioFuzz, ValidatorCatchesTampering) {
  ScenarioSpec s = random_spec(GetParam());
  s.shape = AttackShape::kCarpetBomb;
  if (s.victims < 2) s.victims = 2;
  const Timeline tl = generate_timeline(s);
  ASSERT_FALSE(tl.empty());

  {  // phase before the army finished spawning
    Timeline bad = tl;
    bad.front().at = s.attack_start * 0.5;
    EXPECT_NE(validate_timeline(s, bad), "");
  }
  {  // out-of-range victim index
    Timeline bad = tl;
    bad.front().victim = s.victims;
    EXPECT_NE(validate_timeline(s, bad), "");
  }
  {  // broken sweep: one victim hit twice
    Timeline bad = tl;
    bad[1].victim = bad[0].victim;
    EXPECT_NE(validate_timeline(s, bad), "");
  }
  {  // time order violated
    Timeline bad = tl;
    std::swap(bad.front().at, bad.back().at);
    EXPECT_NE(validate_timeline(s, bad), "");
  }
  {  // foreign action kind for the shape
    Timeline bad = tl;
    bad.front().action = attack::PhaseAction::kRotateSpoof;
    EXPECT_NE(validate_timeline(s, bad), "");
  }
  {  // double stop on a pulse shape
    ScenarioSpec p = s;
    p.shape = AttackShape::kPulse;
    Timeline pulse = generate_timeline(p);
    if (pulse.size() >= 2) {
      Timeline bad = pulse;
      bad[1] = bad[0];
      EXPECT_NE(validate_timeline(p, bad), "");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 5ULL, 8ULL,
                                           13ULL, 21ULL, 34ULL, 55ULL,
                                           89ULL, 144ULL, 233ULL));

// Whole-pipeline determinism: the same random spec RUN twice (fresh
// Experiment, fresh simulator) lands on the identical fingerprint. Two
// seeds keep this affordable; the catalog battery covers breadth.
TEST(ScenarioFuzzRun, RepeatedRunsAreBitIdentical) {
  for (const std::uint64_t seed : {7ULL, 42ULL}) {
    const ScenarioSpec s = random_spec(seed);
    const Strategy strat = equivalence_strategies().front();
    const ScenarioOutcome a = run_scenario(s, strat);
    const ScenarioOutcome b = run_scenario(s, strat);
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << seed;
    EXPECT_EQ(a.phases_fired, b.phases_fired);
    EXPECT_EQ(a.result.events_processed, b.result.events_processed);
  }
}

}  // namespace
}  // namespace mafic::scenario
