// Model-based randomized tests: the event queue against a reference
// implementation, end-to-end conservation checks on random topologies,
// and a sub-span split/merge fuzzer over the speculative threaded
// sharded datapath's partition/merge path.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_set>

#include "core/shard_worker_pool.hpp"
#include "core/sharded_mafic_filter.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/cbr.hpp"
#include "transport/udp.hpp"
#include "util/rng.hpp"

namespace mafic::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  EventQueue q;
  // Reference: ordered multimap (time, id) of live events.
  std::multimap<std::pair<SimTime, EventId>, int> model;
  std::vector<EventId> live_ids;
  int next_tag = 0;
  std::vector<int> popped_real, popped_model;

  for (int step = 0; step < 5000; ++step) {
    const double action = rng.uniform01();
    if (action < 0.55 || q.empty()) {
      const SimTime t = rng.uniform(0.0, 100.0);
      const int tag = next_tag++;
      const EventId id = q.push(t, [] {});
      model.emplace(std::make_pair(t, id), tag);
      live_ids.push_back(id);
    } else if (action < 0.75 && !live_ids.empty()) {
      // Cancel a random (possibly stale) id.
      const std::size_t pick = rng.index(live_ids.size());
      const EventId id = live_ids[pick];
      const bool cancelled = q.cancel(id);
      // Mirror in the model.
      bool in_model = false;
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->first.second == id) {
          model.erase(it);
          in_model = true;
          break;
        }
      }
      EXPECT_EQ(cancelled, in_model);
      live_ids.erase(live_ids.begin() + long(pick));
    } else if (!q.empty()) {
      auto popped = q.pop();
      ASSERT_FALSE(model.empty());
      const auto expect = model.begin();
      EXPECT_DOUBLE_EQ(popped.time, expect->first.first);
      EXPECT_EQ(popped.id, expect->first.second);
      popped_real.push_back(int(popped.id));
      popped_model.push_back(int(expect->first.second));
      model.erase(expect);
      live_ids.erase(
          std::remove(live_ids.begin(), live_ids.end(), popped.id),
          live_ids.end());
    }
    ASSERT_EQ(q.size(), model.size());
  }
  EXPECT_EQ(popped_real, popped_model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 99));

class ConservationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// On a random domain with random CBR flows, every emitted packet must be
// accounted for: delivered to an agent, dropped with a reason, or still
// queued/in flight when the run stops.
TEST_P(ConservationFuzz, PacketsAreConserved) {
  Simulator sim;
  Network net(&sim);
  util::Rng rng(GetParam());

  topology::DomainConfig dc;
  dc.router_count = 6 + rng.index(6);
  dc.victim_bandwidth_bps = 2e6;  // force queue drops
  dc.victim_queue_packets = 20;
  topology::Domain domain(&net, rng.split(), dc);
  domain.build_core();

  PacketFactory factory;
  std::vector<std::unique_ptr<transport::CbrSource>> sources;
  std::vector<std::unique_ptr<transport::UdpSink>> sinks;
  Node* victim = net.node(domain.victim_host());

  const int flows = 3 + int(rng.index(6));
  for (int i = 0; i < flows; ++i) {
    auto& access = domain.attach_host();
    transport::CbrSource::Config cc;
    cc.rate_bps = rng.uniform(200e3, 2e6);
    cc.packet_bytes = 500;
    auto src = std::make_unique<transport::CbrSource>(
        &sim, &factory, net.node(access.host), 5000, cc, rng.split());
    src->connect(domain.victim_addr(), std::uint16_t(2000 + i));
    auto sink = std::make_unique<transport::UdpSink>(
        &sim, &factory, victim, std::uint16_t(2000 + i));
    src->start();
    sources.push_back(std::move(src));
    sinks.push_back(std::move(sink));
  }
  net.build_routes();

  std::uint64_t dropped = 0;
  net.set_drop_handler(
      [&](const Packet&, DropReason, NodeId) { ++dropped; });

  sim.run_until(3.0);

  std::uint64_t sent = 0, received = 0;
  for (const auto& s : sources) sent += s->packets_sent();
  for (const auto& s : sinks) received += s->packets_received();

  std::uint64_t queued = 0;
  for (const auto& link : net.links()) {
    queued += link->queue().depth_packets();
    queued += link->transmitter().idle() ? 0 : 1;
  }
  // In-flight propagation events are bounded by links count; allow them
  // as slack alongside explicit queue occupancy.
  EXPECT_LE(received + dropped, sent);
  EXPECT_GE(received + dropped + queued + net.link_count(), sent);
  EXPECT_GT(received, 0u);
  EXPECT_GT(dropped, 0u);  // the 2 Mb/s victim link must have overflowed
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationFuzz,
                         ::testing::Values(11, 22, 33, 44));

class ShardSpanFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// Sub-span split/merge fuzzer: random spans pushed through the threaded
// ShardedMaficFilter's partition -> per-shard fan-out -> deterministic
// merge must reconstruct the original arrival order exactly and never
// drop or duplicate a packet uid. With Pd = 0 nothing is ever admitted
// or dropped, so the forwarded stream IS the partition/merge round trip.
TEST_P(ShardSpanFuzz, PartitionMergeReconstructsArrivalOrder) {
  util::Rng rng(GetParam());
  const std::size_t shards = std::size_t{1} << rng.index(4);   // 1..8
  const std::size_t threads = 1 + rng.index(4);                // 1..4

  Simulator sim;
  Network net(&sim);
  Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  PacketFactory factory;

  core::MaficConfig cfg;
  cfg.drop_probability = 0.0;  // forward everything: pure order check
  cfg.probe_enabled = false;
  core::ShardWorkerPool pool(threads);
  core::ShardedMaficFilter filter(&sim, &factory, atr, shards, cfg,
                                  nullptr, /*seed=*/GetParam(), &pool);
  class UidSink final : public Connector {
   public:
    void recv(PacketPtr p) override { uids.push_back(p->uid); }
    std::vector<std::uint64_t> uids;
  } sink;
  filter.set_target(&sink);
  filter.activate({util::make_addr(172, 17, 0, 1)});

  std::vector<std::uint64_t> sent;
  double t = 0.001;
  for (int burst = 0; burst < 200; ++burst) {
    const std::size_t n = 1 + rng.index(64);
    sim.schedule_at(t, [&, n] {
      std::vector<PacketPtr> span;
      for (std::size_t i = 0; i < n; ++i) {
        auto p = factory.make();
        const auto f = static_cast<std::uint32_t>(rng.index(512));
        // ~1/5 cold packets (non-victim destination) so the fuzz mixes
        // inspected and pass-through packets within one span.
        const bool cold = rng.index(5) == 0;
        p->label = {util::make_addr(172, 16, (f >> 8) & 0xff, f & 0xff),
                    cold ? util::make_addr(172, 18, 0, 1)
                         : util::make_addr(172, 17, 0, 1),
                    std::uint16_t(1024 + f), 80};
        p->proto = Protocol::kTcp;
        p->size_bytes = 500;
        sent.push_back(p->uid);
        span.push_back(std::move(p));
      }
      filter.recv_burst(span.data(), span.size());
    });
    t += 0.0005;
  }
  sim.run();

  ASSERT_GT(filter.threaded_bursts(), 0u);
  // Exact reconstruction: same uids, same order, nothing lost or doubled.
  EXPECT_EQ(sink.uids, sent);
  std::unordered_set<std::uint64_t> unique(sink.uids.begin(),
                                           sink.uids.end());
  EXPECT_EQ(unique.size(), sink.uids.size());
}

// The same round trip with Pd = 0.9: drops thin the stream, but the
// survivors plus the dropped uids must partition the input — order
// preserved among survivors, no uid lost, none seen twice.
TEST_P(ShardSpanFuzz, DropsPartitionTheStreamWithoutLossOrDuplication) {
  util::Rng rng(GetParam() * 977 + 1);
  const std::size_t shards = std::size_t{1} << rng.index(4);

  Simulator sim;
  Network net(&sim);
  Node* atr = net.add_router(util::make_addr(10, 0, 0, 1));
  PacketFactory factory;

  core::MaficConfig cfg;
  cfg.drop_probability = 0.9;
  cfg.coin_mode = core::CoinMode::kPacketHash;
  cfg.coin_seed = GetParam();
  cfg.probe_enabled = false;
  cfg.sft_capacity = 8;  // force mid-burst capacity evictions too
  core::ShardWorkerPool pool(4);
  core::ShardedMaficFilter filter(&sim, &factory, atr, shards, cfg,
                                  nullptr, /*seed=*/GetParam(), &pool);
  class UidSink final : public Connector {
   public:
    void recv(PacketPtr p) override { uids.push_back(p->uid); }
    std::vector<std::uint64_t> uids;
  } sink;
  filter.set_target(&sink);
  std::vector<std::uint64_t> dropped;
  filter.set_drop_handler(
      [&](const Packet& p, DropReason, NodeId) { dropped.push_back(p.uid); });
  filter.activate({util::make_addr(172, 17, 0, 1)});

  std::vector<std::uint64_t> sent;
  double t = 0.001;
  for (int burst = 0; burst < 150; ++burst) {
    const std::size_t n = 1 + rng.index(64);
    sim.schedule_at(t, [&, n] {
      std::vector<PacketPtr> span;
      for (std::size_t i = 0; i < n; ++i) {
        auto p = factory.make();
        const auto f = static_cast<std::uint32_t>(rng.index(96));
        p->label = {util::make_addr(172, 16, 0, std::uint8_t(f)),
                    util::make_addr(172, 17, 0, 1),
                    std::uint16_t(1024 + f), 80};
        p->proto = Protocol::kTcp;
        p->size_bytes = 500;
        sent.push_back(p->uid);
        span.push_back(std::move(p));
      }
      filter.recv_burst(span.data(), span.size());
    });
    t += 0.001;
  }
  sim.run();

  EXPECT_GT(sink.uids.size(), 0u);
  EXPECT_GT(dropped.size(), 0u);
  EXPECT_EQ(sink.uids.size() + dropped.size(), sent.size());
  // Survivors keep arrival order (a subsequence of the input)...
  std::size_t pos = 0;
  for (const std::uint64_t uid : sink.uids) {
    while (pos < sent.size() && sent[pos] != uid) ++pos;
    ASSERT_LT(pos, sent.size()) << "survivor out of order or unknown";
    ++pos;
  }
  // ...and no uid appears on both sides or twice on either.
  std::unordered_set<std::uint64_t> seen;
  for (const std::uint64_t uid : sink.uids) {
    EXPECT_TRUE(seen.insert(uid).second);
  }
  for (const std::uint64_t uid : dropped) {
    EXPECT_TRUE(seen.insert(uid).second);
  }
  EXPECT_EQ(seen.size(), sent.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShardSpanFuzz,
                         ::testing::Values(7, 19, 101, 20260729));

}  // namespace
}  // namespace mafic::sim
