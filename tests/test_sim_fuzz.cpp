// Model-based randomized tests: the event queue against a reference
// implementation, and end-to-end conservation checks on random topologies.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/cbr.hpp"
#include "transport/udp.hpp"
#include "util/rng.hpp"

namespace mafic::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  util::Rng rng(GetParam());
  EventQueue q;
  // Reference: ordered multimap (time, id) of live events.
  std::multimap<std::pair<SimTime, EventId>, int> model;
  std::vector<EventId> live_ids;
  int next_tag = 0;
  std::vector<int> popped_real, popped_model;

  for (int step = 0; step < 5000; ++step) {
    const double action = rng.uniform01();
    if (action < 0.55 || q.empty()) {
      const SimTime t = rng.uniform(0.0, 100.0);
      const int tag = next_tag++;
      const EventId id = q.push(t, [] {});
      model.emplace(std::make_pair(t, id), tag);
      live_ids.push_back(id);
    } else if (action < 0.75 && !live_ids.empty()) {
      // Cancel a random (possibly stale) id.
      const std::size_t pick = rng.index(live_ids.size());
      const EventId id = live_ids[pick];
      const bool cancelled = q.cancel(id);
      // Mirror in the model.
      bool in_model = false;
      for (auto it = model.begin(); it != model.end(); ++it) {
        if (it->first.second == id) {
          model.erase(it);
          in_model = true;
          break;
        }
      }
      EXPECT_EQ(cancelled, in_model);
      live_ids.erase(live_ids.begin() + long(pick));
    } else if (!q.empty()) {
      auto popped = q.pop();
      ASSERT_FALSE(model.empty());
      const auto expect = model.begin();
      EXPECT_DOUBLE_EQ(popped.time, expect->first.first);
      EXPECT_EQ(popped.id, expect->first.second);
      popped_real.push_back(int(popped.id));
      popped_model.push_back(int(expect->first.second));
      model.erase(expect);
      live_ids.erase(
          std::remove(live_ids.begin(), live_ids.end(), popped.id),
          live_ids.end());
    }
    ASSERT_EQ(q.size(), model.size());
  }
  EXPECT_EQ(popped_real, popped_model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventQueueFuzz,
                         ::testing::Values(1, 2, 3, 4, 5, 99));

class ConservationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

// On a random domain with random CBR flows, every emitted packet must be
// accounted for: delivered to an agent, dropped with a reason, or still
// queued/in flight when the run stops.
TEST_P(ConservationFuzz, PacketsAreConserved) {
  Simulator sim;
  Network net(&sim);
  util::Rng rng(GetParam());

  topology::DomainConfig dc;
  dc.router_count = 6 + rng.index(6);
  dc.victim_bandwidth_bps = 2e6;  // force queue drops
  dc.victim_queue_packets = 20;
  topology::Domain domain(&net, rng.split(), dc);
  domain.build_core();

  PacketFactory factory;
  std::vector<std::unique_ptr<transport::CbrSource>> sources;
  std::vector<std::unique_ptr<transport::UdpSink>> sinks;
  Node* victim = net.node(domain.victim_host());

  const int flows = 3 + int(rng.index(6));
  for (int i = 0; i < flows; ++i) {
    auto& access = domain.attach_host();
    transport::CbrSource::Config cc;
    cc.rate_bps = rng.uniform(200e3, 2e6);
    cc.packet_bytes = 500;
    auto src = std::make_unique<transport::CbrSource>(
        &sim, &factory, net.node(access.host), 5000, cc, rng.split());
    src->connect(domain.victim_addr(), std::uint16_t(2000 + i));
    auto sink = std::make_unique<transport::UdpSink>(
        &sim, &factory, victim, std::uint16_t(2000 + i));
    src->start();
    sources.push_back(std::move(src));
    sinks.push_back(std::move(sink));
  }
  net.build_routes();

  std::uint64_t dropped = 0;
  net.set_drop_handler(
      [&](const Packet&, DropReason, NodeId) { ++dropped; });

  sim.run_until(3.0);

  std::uint64_t sent = 0, received = 0;
  for (const auto& s : sources) sent += s->packets_sent();
  for (const auto& s : sinks) received += s->packets_received();

  std::uint64_t queued = 0;
  for (const auto& link : net.links()) {
    queued += link->queue().depth_packets();
    queued += link->transmitter().idle() ? 0 : 1;
  }
  // In-flight propagation events are bounded by links count; allow them
  // as slack alongside explicit queue occupancy.
  EXPECT_LE(received + dropped, sent);
  EXPECT_GE(received + dropped + queued + net.link_count(), sent);
  EXPECT_GT(received, 0u);
  EXPECT_GT(dropped, 0u);  // the 2 Mb/s victim link must have overflowed
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConservationFuzz,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace mafic::sim
