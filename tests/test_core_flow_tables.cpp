#include "core/flow_tables.hpp"

#include <gtest/gtest.h>

namespace mafic::core {
namespace {

sim::FlowLabel label(std::uint32_t i) {
  return {util::make_addr(10, 0, 0, 1) + i, util::make_addr(172, 16, 0, 1),
          std::uint16_t(1000 + i), 80};
}

class FlowTablesTest : public ::testing::Test {
 protected:
  MaficConfig cfg;
  FlowTables tables{cfg};
};

TEST_F(FlowTablesTest, FreshKeyIsUntabled) {
  EXPECT_EQ(tables.classify(123), TableKind::kNone);
  EXPECT_EQ(tables.find_sft(123), nullptr);
}

TEST_F(FlowTablesTest, AdmitCreatesProbationWindows) {
  SftEntry* e = tables.admit_sft(42, label(1), 10.0, 0.2);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(tables.classify(42), TableKind::kSuspicious);
  EXPECT_DOUBLE_EQ(e->entry_time, 10.0);
  EXPECT_DOUBLE_EQ(e->split_time, 10.1);
  EXPECT_DOUBLE_EQ(e->deadline, 10.2);
  EXPECT_EQ(e->baseline_count, 0u);
  EXPECT_EQ(e->probe_count, 0u);
  EXPECT_FALSE(e->probe_sent);
}

TEST_F(FlowTablesTest, AdmitRefusesTabledKeys) {
  tables.admit_sft(42, label(1), 0.0, 0.2);
  EXPECT_EQ(tables.admit_sft(42, label(1), 1.0, 0.2), nullptr);
  tables.resolve(42, TableKind::kNice);
  EXPECT_EQ(tables.admit_sft(42, label(1), 2.0, 0.2), nullptr);
}

TEST_F(FlowTablesTest, ResolveMovesToNft) {
  tables.admit_sft(42, label(1), 0.0, 0.2);
  const SftEntry resolved = tables.resolve(42, TableKind::kNice);
  EXPECT_EQ(resolved.key, 42u);
  EXPECT_EQ(tables.classify(42), TableKind::kNice);
  EXPECT_TRUE(tables.in_nft(42));
  EXPECT_FALSE(tables.in_pdt(42));
  EXPECT_EQ(tables.sft_size(), 0u);
  EXPECT_EQ(tables.stats().moved_to_nft, 1u);
}

TEST_F(FlowTablesTest, ResolveMovesToPdt) {
  tables.admit_sft(43, label(2), 0.0, 0.2);
  tables.resolve(43, TableKind::kPermanentDrop);
  EXPECT_EQ(tables.classify(43), TableKind::kPermanentDrop);
  EXPECT_TRUE(tables.in_pdt(43));
  EXPECT_EQ(tables.stats().moved_to_pdt, 1u);
}

TEST_F(FlowTablesTest, KeyInAtMostOneTable) {
  // Exercise all transitions and verify exclusivity at each step.
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.admit_sft(2, label(2), 0.0, 0.2);
  tables.add_pdt_direct(3);
  tables.resolve(1, TableKind::kNice);
  tables.resolve(2, TableKind::kPermanentDrop);
  for (const std::uint64_t key : {1ULL, 2ULL, 3ULL}) {
    int membership = 0;
    membership += tables.in_nft(key);
    membership += tables.in_pdt(key);
    membership += (tables.find_sft(key) != nullptr);
    EXPECT_EQ(membership, 1) << "key " << key;
  }
}

TEST_F(FlowTablesTest, DirectPdtForScreenedSources) {
  tables.add_pdt_direct(99);
  EXPECT_EQ(tables.classify(99), TableKind::kPermanentDrop);
  EXPECT_EQ(tables.stats().direct_pdt, 1u);
}

TEST_F(FlowTablesTest, FlushEmptiesEverything) {
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.add_pdt_direct(2);
  tables.admit_sft(3, label(3), 0.0, 0.2);
  tables.resolve(3, TableKind::kNice);
  tables.flush();
  EXPECT_EQ(tables.sft_size(), 0u);
  EXPECT_EQ(tables.nft_size(), 0u);
  EXPECT_EQ(tables.pdt_size(), 0u);
  EXPECT_EQ(tables.classify(1), TableKind::kNone);
  EXPECT_EQ(tables.stats().flushes, 1u);
}

TEST_F(FlowTablesTest, SftEvictionAtCapacity) {
  MaficConfig small;
  small.sft_capacity = 4;
  FlowTables t(small);
  for (std::uint64_t k = 0; k < 4; ++k) {
    t.admit_sft(k, label(std::uint32_t(k)), double(k), 0.2);
  }
  EXPECT_EQ(t.sft_size(), 4u);
  // Fifth admission evicts the entry with the earliest deadline (key 0).
  t.admit_sft(99, label(99), 10.0, 0.2);
  EXPECT_EQ(t.sft_size(), 4u);
  EXPECT_EQ(t.classify(0), TableKind::kNone);
  EXPECT_EQ(t.classify(99), TableKind::kSuspicious);
  EXPECT_EQ(t.stats().sft_evictions, 1u);
}

TEST_F(FlowTablesTest, NftCapacityBounded) {
  MaficConfig small;
  small.nft_capacity = 8;
  FlowTables t(small);
  for (std::uint64_t k = 0; k < 32; ++k) {
    t.admit_sft(k, label(std::uint32_t(k)), 0.0, 0.2);
    t.resolve(k, TableKind::kNice);
  }
  EXPECT_LE(t.nft_size(), 8u);
}

TEST_F(FlowTablesTest, PdtCapacityBounded) {
  MaficConfig small;
  small.pdt_capacity = 8;
  FlowTables t(small);
  for (std::uint64_t k = 0; k < 32; ++k) t.add_pdt_direct(k);
  EXPECT_LE(t.pdt_size(), 8u);
}

TEST_F(FlowTablesTest, ForEachSftVisitsAll) {
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.admit_sft(2, label(2), 0.0, 0.2);
  int visited = 0;
  tables.for_each_sft([&](const SftEntry&) { ++visited; });
  EXPECT_EQ(visited, 2);
}

TEST_F(FlowTablesTest, StatsCountAdmissions) {
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.admit_sft(2, label(2), 0.0, 0.2);
  EXPECT_EQ(tables.stats().sft_admissions, 2u);
}

TEST_F(FlowTablesTest, EvictionHookFiresOnCapacityEviction) {
  MaficConfig small;
  small.sft_capacity = 2;
  FlowTables t(small);
  t.set_eviction_hook([](const SftEntry& e, EvictCause cause) {
    // The owner cancels these timers; here we just record which entry
    // was handed out and why.
    EXPECT_EQ(e.key, 1u);
    EXPECT_EQ(cause, EvictCause::kCapacity);
  });
  t.admit_sft(1, label(1), 0.0, 0.2);  // earliest deadline -> evicted
  t.admit_sft(2, label(2), 1.0, 0.2);
  t.admit_sft(3, label(3), 2.0, 0.2);
  EXPECT_EQ(t.stats().sft_evictions, 1u);
  EXPECT_EQ(t.classify(1), TableKind::kNone);
}

TEST_F(FlowTablesTest, EvictionHookFiresForEveryProbationOnFlush) {
  MaficConfig cfg2;
  FlowTables t(cfg2);
  std::vector<std::uint64_t> evicted;
  t.set_eviction_hook([&](const SftEntry& e, EvictCause cause) {
    EXPECT_EQ(cause, EvictCause::kFlush);
    evicted.push_back(e.key);
  });
  t.admit_sft(1, label(1), 0.0, 0.2);
  t.admit_sft(2, label(2), 0.0, 0.2);
  t.add_pdt_direct(3);  // non-SFT entries have no timers: no hook
  t.flush();
  std::sort(evicted.begin(), evicted.end());
  EXPECT_EQ(evicted, (std::vector<std::uint64_t>{1, 2}));
}

TEST_F(FlowTablesTest, ResolveHandsBackEntryWithoutHook) {
  // Resolution is the *decided* exit: the filter cancels timers itself in
  // decide(); the hook must not double-fire.
  int hook_calls = 0;
  tables.set_eviction_hook(
      [&](const SftEntry&, EvictCause) { ++hook_calls; });
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.resolve(1, TableKind::kNice);
  EXPECT_EQ(hook_calls, 0);
}

TEST_F(FlowTablesTest, SingleStoreKeepsKindExclusive) {
  // Flat-store invariant: one probe sequence, one record, one kind.
  // Cycle a key through every transition and confirm the store never
  // reports double membership.
  tables.admit_sft(7, label(7), 0.0, 0.2);
  EXPECT_EQ(tables.resident(), 1u);
  tables.resolve(7, TableKind::kNice);
  EXPECT_EQ(tables.resident(), 1u);
  EXPECT_TRUE(tables.in_nft(7));
  EXPECT_FALSE(tables.in_pdt(7));
  EXPECT_EQ(tables.find_sft(7), nullptr);
}

TEST_F(FlowTablesTest, ArenaRecyclesSlotsUnderChurn) {
  // Admit/resolve churn far past sft_capacity: per-kind sizes must track
  // and the store must not leak resident entries.
  MaficConfig cfg2;
  cfg2.sft_capacity = 8;
  cfg2.nft_capacity = 1 << 20;
  cfg2.pdt_capacity = 1 << 20;
  FlowTables t(cfg2);
  for (std::uint64_t k = 0; k < 10000; ++k) {
    ASSERT_NE(t.admit_sft(k, label(std::uint32_t(k)), double(k), 0.2),
              nullptr);
    t.resolve(k, k % 2 == 0 ? TableKind::kNice : TableKind::kPermanentDrop);
  }
  EXPECT_EQ(t.sft_size(), 0u);
  EXPECT_EQ(t.nft_size(), 5000u);
  EXPECT_EQ(t.pdt_size(), 5000u);
  EXPECT_EQ(t.resident(), 10000u);
}

TEST(TableKindNames, ToString) {
  EXPECT_STREQ(to_string(TableKind::kNone), "none");
  EXPECT_STREQ(to_string(TableKind::kSuspicious), "SFT");
  EXPECT_STREQ(to_string(TableKind::kNice), "NFT");
  EXPECT_STREQ(to_string(TableKind::kPermanentDrop), "PDT");
}

}  // namespace
}  // namespace mafic::core
