#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mafic::sim {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(3.0, [&] { order.push_back(3); });
  q.push(1.0, [&] { order.push_back(1); });
  q.push(2.0, [&] { order.push_back(2); });
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesBrokenByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.push(1.0, [] {});
  q.push(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.cancel(a));
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventId id = q.push(1.0, [&] { ran = true; });
  q.push(2.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  while (!q.empty()) q.pop().fn();
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelAfterPopIsHarmless) {
  EventQueue q;
  const EventId id = q.push(1.0, [] {});
  q.pop();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelInvalidIdsIsHarmless) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEvent));
  EXPECT_FALSE(q.cancel(999999));
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  const EventId early = q.push(1.0, [] {});
  q.push(5.0, [] {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.next_time(), 5.0);
}

TEST(EventQueue, PopSkipsCancelledHead) {
  EventQueue q;
  int value = 0;
  const EventId a = q.push(1.0, [&] { value = 1; });
  q.push(2.0, [&] { value = 2; });
  q.cancel(a);
  q.pop().fn();
  EXPECT_EQ(value, 2);
}

TEST(EventQueue, ClearEmptiesEverything) {
  EventQueue q;
  q.push(1.0, [] {});
  q.push(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, IdsAreUniqueAndIncreasing) {
  EventQueue q;
  EventId prev = 0;
  for (int i = 0; i < 100; ++i) {
    const EventId id = q.push(1.0, [] {});
    EXPECT_GT(id, prev);
    prev = id;
  }
}

TEST(EventQueue, PoppedEventReportsTimeAndId) {
  EventQueue q;
  const EventId id = q.push(3.5, [] {});
  auto ev = q.pop();
  EXPECT_DOUBLE_EQ(ev.time, 3.5);
  EXPECT_EQ(ev.id, id);
}

TEST(EventQueue, CompactionBoundsCancelledGarbage) {
  EventQueue q;
  // Heavy probation-style churn: schedule and cancel in waves while a few
  // long-lived events stay resident. Without compaction the heap would
  // hold every cancelled corpse until it surfaced.
  std::vector<EventId> wave;
  for (int round = 0; round < 100; ++round) {
    wave.clear();
    for (int i = 0; i < 100; ++i) {
      wave.push_back(q.push(1000.0 + round + i * 0.001, [] {}));
    }
    for (const EventId id : wave) q.cancel(id);
  }
  q.push(1.0, [] {});
  // 10k cancelled entries went through; the heap must stay within 2x the
  // live size plus the compaction floor.
  EXPECT_EQ(q.size(), 1u);
  EXPECT_LT(q.heap_footprint(), 128u);
  EXPECT_GT(q.compactions(), 0u);
  EXPECT_DOUBLE_EQ(q.next_time(), 1.0);
}

TEST(EventQueue, CompactionPreservesOrderAndLiveness) {
  EventQueue q;
  std::vector<int> order;
  std::vector<EventId> doomed;
  for (int i = 0; i < 200; ++i) {
    q.push(double(i), [&order, i] { order.push_back(i); });
    doomed.push_back(q.push(double(i) + 0.5, [] { FAIL(); }));
  }
  for (const EventId id : doomed) q.cancel(id);
  int expect = 0;
  while (!q.empty()) {
    auto ev = q.pop();
    ev.fn();
    ASSERT_EQ(order.back(), expect++);
  }
  EXPECT_EQ(expect, 200);
}

TEST(EventQueue, ManyEventsStressOrdering) {
  EventQueue q;
  for (int i = 999; i >= 0; --i) {
    q.push(static_cast<double>(i % 37), [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    auto ev = q.pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
}

}  // namespace
}  // namespace mafic::sim
