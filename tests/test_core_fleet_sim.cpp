// Fleet-wide tick batching: same-instant burst deliveries across many
// ShardedMaficFilters coalesce into ONE ShardWorkerPool submission per
// simulated tick (FleetBurstScheduler installed as the simulator's
// TickDrain), then replay their seam journals in arrival order. The
// battery proves the batched path changes nothing observable:
//   1. ShardWorkerPool heterogeneous task lists — every (ctx, arg) task
//      runs exactly once, interleaved with uniform TaskFn batches, and
//      the occupancy counters (submissions, tasks, max_tasks, busy/wall)
//      account for exactly the work submitted.
//   2. Simulator TickDrain mechanics — the drain flushes before any
//      non-batchable event, before wheel timers, before the clock
//      advances, and at run()/run_until() exit; only runs of
//      consecutive same-time batchable events coalesce.
//   3. A randomized multi-filter sweep — filters x shards x workers,
//      spans landing on a shared time grid so deliveries collide: the
//      fleet-batched runs must be bit-identical to plain serial
//      (per-filter survivor uid streams, classification order, stats),
//      with multi-filter drains actually observed.
//   4. End-to-end Experiments: fleet_tick_batch=true vs shard_threads=0
//      — identical verdicts, timers, probes, per-victim stats — plus
//      occupancy surfaced through ExperimentResult.
// Run under the TSan CI job, 1. and 3. also race-check the shared
// submission window.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "core/fleet_burst_scheduler.hpp"
#include "core/shard_worker_pool.hpp"
#include "core/sharded_mafic_filter.hpp"
#include "scenario/experiment.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mafic::core {
namespace {

constexpr std::uint64_t kSeed = 20260809;

sim::FlowLabel label_for(std::uint32_t i, bool cold = false) {
  return {util::make_addr(172, 16, (i >> 8) & 0xff, i & 0xff),
          cold ? util::make_addr(172, 18, 0, 1)
               : util::make_addr(172, 17, 0, 1),
          std::uint16_t(1024 + i), 80};
}

// ---------------------------------------------------------------------------
// 1. ShardWorkerPool heterogeneous batches + occupancy
// ---------------------------------------------------------------------------

TEST(FleetWorkerPool, HeterogeneousTasksRunExactlyOnceWithTheirArgs) {
  ShardWorkerPool pool(3);
  struct Cell {
    std::atomic<int> hits{0};
    std::size_t want_arg = 0;
  };
  for (int round = 0; round < 40; ++round) {
    const std::size_t n = 1 + std::size_t(round % 11);
    std::vector<Cell> cells(n);
    std::vector<ShardWorkerPool::Task> tasks(n);
    for (std::size_t i = 0; i < n; ++i) {
      cells[i].want_arg = 100 + i;
      tasks[i].run = [](void* ctx, std::size_t arg) {
        auto* cell = static_cast<Cell*>(ctx);
        EXPECT_EQ(arg, cell->want_arg);
        cell->hits.fetch_add(1);
      };
      tasks[i].ctx = &cells[i];
      tasks[i].arg = 100 + i;
    }
    pool.submit(tasks.data(), tasks.size());
    pool.wait();
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(cells[i].hits.load(), 1) << "round " << round << " task "
                                         << i;
    }
    // Interleave a uniform batch: both submit flavors share the window.
    std::atomic<int> uniform{0};
    pool.submit([&](std::size_t) { uniform.fetch_add(1); }, 4);
    pool.wait();
    EXPECT_EQ(uniform.load(), 4);
  }
}

TEST(FleetWorkerPool, OccupancyCountsExactlyTheWorkSubmitted) {
  ShardWorkerPool pool(2);
  EXPECT_EQ(pool.occupancy().submissions, 0u);
  EXPECT_EQ(pool.occupancy().tasks, 0u);
  EXPECT_EQ(pool.occupancy().tasks_per_submission(), 0.0);
  EXPECT_EQ(pool.occupancy().busy_fraction(2), 0.0);

  // 3 + 7 + 1 tasks over three batches; an empty submit is not counted.
  const std::size_t batches[] = {3, 7, 1};
  for (const std::size_t n : batches) {
    std::vector<ShardWorkerPool::Task> tasks(n);
    for (auto& t : tasks) {
      t.run = [](void*, std::size_t) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      };
    }
    pool.submit(tasks.data(), tasks.size());
    pool.wait();
  }
  const ShardWorkerPool::Task* none = nullptr;
  pool.submit(none, 0);
  pool.wait();

  const ShardWorkerPool::Occupancy occ = pool.occupancy();
  EXPECT_EQ(occ.submissions, 3u);
  EXPECT_EQ(occ.tasks, 11u);
  EXPECT_EQ(occ.max_tasks, 7u);
  EXPECT_NEAR(occ.tasks_per_submission(), 11.0 / 3.0, 1e-12);
  // Each task slept ~200us, so both clocks saw real time, and a batch
  // can never be busier than (helping caller + workers) x its window.
  EXPECT_GT(occ.busy_ns, 0u);
  EXPECT_GT(occ.wall_ns, 0u);
  EXPECT_LE(occ.busy_ns, occ.wall_ns * (pool.worker_count() + 1));
  EXPECT_GT(occ.busy_fraction(pool.worker_count()), 0.0);
}

// ---------------------------------------------------------------------------
// 2. Simulator TickDrain mechanics
// ---------------------------------------------------------------------------

/// Records the order of deferred flushes relative to scripted events.
struct RecordingDrain final : sim::TickDrain {
  std::vector<int>* log = nullptr;
  int deferred = 0;
  bool pending() const noexcept override { return deferred > 0; }
  void drain() override {
    for (; deferred > 0; --deferred) log->push_back(-1);  // -1 = flush
  }
};

TEST(TickDrain, FlushesBeforeForeignEventsTimersAndClockAdvance) {
  sim::Simulator sim;
  std::vector<int> log;
  RecordingDrain drain;
  drain.log = &log;
  sim.set_tick_drain(&drain);

  const auto batchable = [&](double t, int id) {
    sim.schedule_batchable_at(t, [&, id] {
      log.push_back(id);
      ++drain.deferred;
    });
  };
  // t=1: three batchable events then a plain one — the two leading
  // deferrals coalesce, flush before the plain event... but the third
  // batchable event comes AFTER the plain one in insertion order, so it
  // must not coalesce with the first two.
  batchable(1.0, 1);
  batchable(1.0, 2);
  sim.schedule_at(1.0, [&] { log.push_back(10); });
  batchable(1.0, 3);
  // t=2: a batchable event with a same-time wheel timer pending — the
  // deferral flushes before the timer fires (queue events win ties, but
  // the drain must not survive into the timer).
  batchable(2.0, 4);
  sim.schedule_timer_at(2.0, [&] { log.push_back(20); });
  // t=3: a lone batchable event, then the clock advances to t=4 — flush
  // must happen before the t=4 event observes the world.
  batchable(3.0, 5);
  sim.schedule_at(4.0, [&] { log.push_back(30); });
  // t=5: trailing batchable events; run() must flush at exit.
  batchable(5.0, 6);
  batchable(5.0, 7);

  sim.run();
  const std::vector<int> want = {1, 2,  -1, -1, 10, 3,  -1, 4, -1,
                                 20, 5, -1, 30, 6,  7,  -1, -1};
  EXPECT_EQ(log, want);
}

TEST(TickDrain, RunUntilFlushesDeferredWorkAtTheHorizon) {
  sim::Simulator sim;
  std::vector<int> log;
  RecordingDrain drain;
  drain.log = &log;
  sim.set_tick_drain(&drain);
  sim.schedule_batchable_at(1.0, [&] {
    log.push_back(1);
    ++drain.deferred;
  });
  sim.run_until(2.0);
  EXPECT_EQ(log, (std::vector<int>{1, -1}));
  EXPECT_EQ(sim.now(), 2.0);
}

// ---------------------------------------------------------------------------
// 3. Randomized multi-filter fleet sweep
// ---------------------------------------------------------------------------

/// One filter's scripted spans: (time-grid slot, packets). Slots collide
/// across filters by construction, so fleet runs exercise multi-filter
/// drains.
struct SpanSpec {
  double time = 0.0;
  std::vector<std::pair<std::uint32_t, bool>> pkts;  ///< (flow, cold)
};

std::vector<std::vector<SpanSpec>> make_fleet_timeline(
    std::uint64_t seed, std::size_t filters, std::size_t max_span) {
  util::Rng rng(seed);
  std::vector<std::vector<SpanSpec>> all(filters);
  for (std::size_t f = 0; f < filters; ++f) {
    // Spans land on a shared 5 ms grid; ~60% of slots are occupied per
    // filter, so most ticks hit several filters at once. Flow ids are
    // disjoint per filter (distinct source /16) purely for readability —
    // filters share no state either way.
    for (std::uint32_t slot = 2; slot < 160; ++slot) {
      if (rng.uniform(0.0, 1.0) > 0.6) continue;
      SpanSpec s;
      s.time = 0.005 * slot;
      const std::size_t n = 1 + rng.index(max_span);
      for (std::size_t j = 0; j < n; ++j) {
        const auto flow =
            static_cast<std::uint32_t>(f * 512 + rng.index(40));
        s.pkts.push_back({flow, rng.index(9) == 0});
      }
      all[f].push_back(std::move(s));
    }
  }
  return all;
}

/// Everything observable from one scripted fleet run, per filter.
struct FleetRunResult {
  std::vector<std::vector<std::uint64_t>> survivor_uids;
  std::vector<std::vector<std::pair<std::uint64_t, int>>> classifications;
  std::vector<std::uint64_t> offered, forwarded, admissions, evictions;
  std::uint64_t drains = 0, coalesced = 0, spans = 0;
  ShardWorkerPool::Occupancy occupancy{};

  friend bool operator==(const FleetRunResult& a, const FleetRunResult& b) {
    // Deliberately excludes the drain/occupancy diagnostics — those
    // differ across modes by design.
    return a.survivor_uids == b.survivor_uids &&
           a.classifications == b.classifications &&
           a.offered == b.offered && a.forwarded == b.forwarded &&
           a.admissions == b.admissions && a.evictions == b.evictions;
  }
};

FleetRunResult run_fleet_scripted(
    const std::vector<std::vector<SpanSpec>>& timelines,
    std::size_t num_shards, std::size_t threads, bool fleet) {
  const std::size_t nf = timelines.size();
  sim::Simulator sim;
  sim::Network net(&sim);
  sim::PacketFactory factory;

  std::unique_ptr<ShardWorkerPool> pool;
  std::unique_ptr<FleetBurstScheduler> sched;
  if (threads > 0) {
    pool = std::make_unique<ShardWorkerPool>(threads);
    if (fleet) {
      sched = std::make_unique<FleetBurstScheduler>(pool.get());
      sim.set_tick_drain(sched.get());
    }
  }

  class UidSink final : public sim::Connector {
   public:
    void recv(sim::PacketPtr p) override { uids.push_back(p->uid); }
    std::vector<std::uint64_t> uids;
  };
  std::vector<UidSink> sinks(nf);
  std::vector<std::unique_ptr<ShardedMaficFilter>> filters;
  FleetRunResult run;
  run.classifications.resize(nf);

  MaficConfig cfg;
  cfg.default_rtt = 0.04;
  cfg.drop_probability = 0.9;
  cfg.probe_enabled = false;  // no wired topology in this fixture
  cfg.coin_mode = CoinMode::kPacketHash;
  cfg.coin_seed = 0xfeedULL;
  cfg.sft_capacity = 8;  // small => capacity evictions mid-burst

  for (std::size_t f = 0; f < nf; ++f) {
    sim::Node* atr = net.add_router(
        util::make_addr(10, 0, std::uint8_t(f + 1), 1));
    filters.push_back(std::make_unique<ShardedMaficFilter>(
        &sim, &factory, atr, num_shards, cfg, nullptr, kSeed + f,
        pool.get()));
    ShardedMaficFilter* filter = filters.back().get();
    if (fleet && threads > 0) filter->set_fleet(sched.get());
    filter->set_target(&sinks[f]);
    filter->activate({util::make_addr(172, 17, 0, 1)});
    auto* cls = &run.classifications[f];
    filter->set_classification_callback(
        [cls](const SftEntry& e, TableKind dest) {
          cls->push_back({e.key, int(dest)});
        });
    for (const SpanSpec& span : timelines[f]) {
      const auto deliver = [&factory, filter, &span] {
        std::vector<sim::PacketPtr> pkts;
        pkts.reserve(span.pkts.size());
        for (const auto& [flow, cold] : span.pkts) {
          auto p = factory.make();
          p->label = label_for(flow, cold);
          p->proto = sim::Protocol::kTcp;
          p->size_bytes = 1000;
          pkts.push_back(std::move(p));
        }
        filter->recv_burst(pkts.data(), pkts.size());
      };
      // Fleet deliveries are batchable (the LinkTransmitter tags them);
      // the serial comparator uses plain events.
      if (fleet) {
        sim.schedule_batchable_at(span.time, deliver);
      } else {
        sim.schedule_at(span.time, deliver);
      }
    }
  }
  sim.run();

  for (std::size_t f = 0; f < nf; ++f) {
    run.survivor_uids.push_back(std::move(sinks[f].uids));
    run.offered.push_back(filters[f]->stats().offered);
    run.forwarded.push_back(filters[f]->stats().forwarded);
    run.admissions.push_back(filters[f]->tables_stats().sft_admissions);
    run.evictions.push_back(filters[f]->tables_stats().sft_evictions);
  }
  if (sched != nullptr) {
    run.drains = sched->drains();
    run.coalesced = sched->coalesced_drains();
    run.spans = sched->spans_drained();
  }
  if (pool != nullptr) run.occupancy = pool->occupancy();
  return run;
}

class FleetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FleetSweep, BitIdenticalToSerialAcrossFiltersShardsAndWorkers) {
  for (const std::size_t filters : {2u, 5u}) {
    const auto timelines =
        make_fleet_timeline(GetParam(), filters, /*max_span=*/24);
    for (const std::size_t shards : {1u, 4u}) {
      const FleetRunResult serial =
          run_fleet_scripted(timelines, shards, /*threads=*/0,
                             /*fleet=*/false);
      std::uint64_t total_offered = 0;
      for (const auto o : serial.offered) total_offered += o;
      ASSERT_GT(total_offered, 0u);
      for (const std::size_t threads : {1u, 2u, 4u}) {
        const FleetRunResult fleet =
            run_fleet_scripted(timelines, shards, threads, /*fleet=*/true);
        EXPECT_TRUE(fleet == serial)
            << "filters=" << filters << " shards=" << shards
            << " threads=" << threads << " seed=" << GetParam();
        EXPECT_GT(fleet.drains, 0u);
        EXPECT_GT(fleet.coalesced, 0u)
            << "time grid never collided — the fixture lost its point";
        // At most one submission per drain (all-cold ticks skip it).
        EXPECT_LE(fleet.occupancy.submissions, fleet.drains);
        EXPECT_GT(fleet.occupancy.submissions, 0u);
        // Spans drained = one per (filter, tick) with work held.
        EXPECT_GE(fleet.spans, fleet.drains);
        // Tasks never exceed filters x shards per submission.
        EXPECT_LE(fleet.occupancy.max_tasks, filters * shards);
        EXPECT_GE(fleet.occupancy.tasks_per_submission(), 1.0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FleetSweep,
                         ::testing::Values(3, 29, 20260809));

TEST(FleetSweep, FleetEqualsPerFilterThreadedPath) {
  // Transitivity double-check: the fleet path must also match PR 5's
  // per-filter speculative path (both claim serial identity).
  const auto timelines = make_fleet_timeline(77, 3, 16);
  const FleetRunResult per_filter =
      run_fleet_scripted(timelines, 4, 4, /*fleet=*/false);
  const FleetRunResult fleet =
      run_fleet_scripted(timelines, 4, 4, /*fleet=*/true);
  EXPECT_TRUE(fleet == per_filter);
}

// ---------------------------------------------------------------------------
// 4. End-to-end Experiments: fleet_tick_batch vs serial
// ---------------------------------------------------------------------------

void expect_identical(const scenario::ExperimentResult& a,
                      const scenario::ExperimentResult& b,
                      const char* what) {
  EXPECT_EQ(a.events_processed, b.events_processed) << what;
  EXPECT_EQ(a.sft_admissions, b.sft_admissions) << what;
  EXPECT_EQ(a.sft_evictions, b.sft_evictions) << what;
  EXPECT_EQ(a.quota_evictions, b.quota_evictions) << what;
  EXPECT_EQ(a.moved_to_nft, b.moved_to_nft) << what;
  EXPECT_EQ(a.moved_to_pdt, b.moved_to_pdt) << what;
  EXPECT_EQ(a.screened_sources, b.screened_sources) << what;
  EXPECT_EQ(a.probes_issued, b.probes_issued) << what;
  ASSERT_EQ(a.per_victim.size(), b.per_victim.size()) << what;
  for (std::size_t i = 0; i < a.per_victim.size(); ++i) {
    EXPECT_EQ(a.per_victim[i].decided_nice, b.per_victim[i].decided_nice)
        << what;
    EXPECT_EQ(a.per_victim[i].decided_malicious,
              b.per_victim[i].decided_malicious)
        << what;
    EXPECT_EQ(a.per_victim[i].evictions, b.per_victim[i].evictions) << what;
  }
  EXPECT_EQ(a.metrics.malicious_dropped, b.metrics.malicious_dropped)
      << what;
  EXPECT_EQ(a.metrics.legit_dropped, b.metrics.legit_dropped) << what;
  EXPECT_EQ(a.metrics.alpha, b.metrics.alpha) << what;
}

TEST(FleetExperiment, BitIdenticalResultsAndOccupancySurfaced) {
  scenario::ExperimentConfig base;
  base.seed = 11;
  base.total_flows = 24;
  base.router_count = 10;
  base.end_time = 6.0;
  base.link_burst_size = 8;
  base.num_shards = 4;

  const auto run = [&](std::size_t threads, bool fleet) {
    scenario::ExperimentConfig cfg = base;
    cfg.shard_threads = threads;
    cfg.fleet_tick_batch = fleet;
    scenario::Experiment exp(cfg);
    return exp.run();
  };

  const scenario::ExperimentResult serial = run(0, false);
  ASSERT_GT(serial.sft_admissions, 0u);
  ASSERT_GT(serial.probes_issued, 0u);
  ASSERT_FALSE(std::isnan(serial.metrics.alpha));
  EXPECT_EQ(serial.fleet_drains, 0u);
  EXPECT_EQ(serial.pool_occupancy.submissions, 0u);

  for (const std::size_t threads : {1u, 4u}) {
    const scenario::ExperimentResult fleet = run(threads, true);
    expect_identical(serial, fleet,
                     threads == 1 ? "fleet threads=1" : "fleet threads=4");
    EXPECT_GT(fleet.fleet_drains, 0u);
    EXPECT_GT(fleet.fleet_spans, 0u);
    EXPECT_EQ(fleet.pool_workers, threads);
    // Pre-activation ticks hold only cold spans and drain without
    // submitting, so submissions <= drains.
    EXPECT_LE(fleet.pool_occupancy.submissions, fleet.fleet_drains);
    EXPECT_GT(fleet.pool_occupancy.tasks, 0u);
    EXPECT_GT(fleet.pool_occupancy.busy_ns, 0u);
  }

  // Fleet batching also matches the per-filter threaded path.
  const scenario::ExperimentResult per_filter = run(4, false);
  expect_identical(serial, per_filter, "per-filter threads=4");
  EXPECT_EQ(per_filter.fleet_drains, 0u);
  EXPECT_GT(per_filter.pool_occupancy.submissions, 0u);
}

TEST(FleetExperiment, BitIdenticalWithQuotasAndExtraVictims) {
  scenario::ExperimentConfig base;
  base.seed = 42;
  base.total_flows = 24;
  base.router_count = 10;
  base.end_time = 5.0;
  base.link_burst_size = 8;
  base.num_shards = 4;
  base.extra_victims = 1;
  base.sft_victim_quota = 0.25;

  const auto run = [&](std::size_t threads, bool fleet) {
    scenario::ExperimentConfig cfg = base;
    cfg.shard_threads = threads;
    cfg.fleet_tick_batch = fleet;
    scenario::Experiment exp(cfg);
    return exp.run();
  };
  const scenario::ExperimentResult serial = run(0, false);
  const scenario::ExperimentResult fleet = run(4, true);
  ASSERT_GT(serial.sft_admissions, 0u);
  expect_identical(serial, fleet, "fleet quotas threads=4");
}

}  // namespace
}  // namespace mafic::core
