#include "sim/timer_wheel.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "util/rng.hpp"

namespace mafic::sim {
namespace {

constexpr double kRes = 0.001;  // 1 ms ticks for round numbers

TEST(TimerWheel, FiresInTimeOrder) {
  TimerWheel w(kRes);
  std::vector<int> order;
  w.schedule_at(0.030, [&] { order.push_back(3); });
  w.schedule_at(0.010, [&] { order.push_back(1); });
  w.schedule_at(0.020, [&] { order.push_back(2); });
  while (!w.empty()) w.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(TimerWheel, QuantizesUpToTickBoundary) {
  TimerWheel w(kRes);
  w.schedule_at(0.0101, [] {});
  EXPECT_DOUBLE_EQ(w.next_time(), 0.011);
  auto popped = w.pop();
  EXPECT_DOUBLE_EQ(popped.time, 0.011);

  // An exact boundary stays on its tick.
  TimerWheel w2(kRes);
  w2.schedule_at(0.004, [] {});
  EXPECT_DOUBLE_EQ(w2.next_time(), 0.004);
}

TEST(TimerWheel, SameTickFiresInScheduleOrder) {
  TimerWheel w(kRes);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    // All quantize to tick 5 despite unsorted sub-tick offsets.
    w.schedule_at(0.005 - 1e-5 * (i % 3), [&order, i] {
      order.push_back(i);
    });
  }
  while (!w.empty()) w.pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(TimerWheel, CancelPreventsExecution) {
  TimerWheel w(kRes);
  bool ran = false;
  const TimerId id = w.schedule_at(0.010, [&] { ran = true; });
  w.schedule_at(0.020, [] {});
  EXPECT_EQ(w.size(), 2u);
  EXPECT_TRUE(w.cancel(id));
  EXPECT_EQ(w.size(), 1u);
  while (!w.empty()) w.pop().fn();
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, CancelIsIdempotentAndRejectsStaleIds) {
  TimerWheel w(kRes);
  const TimerId id = w.schedule_at(0.010, [] {});
  EXPECT_TRUE(w.cancel(id));
  EXPECT_FALSE(w.cancel(id));
  EXPECT_FALSE(w.cancel(kInvalidTimer));
  EXPECT_FALSE(w.cancel(0xdeadbeefull));

  // A fired timer's id is stale too.
  const TimerId id2 = w.schedule_at(0.010, [] {});
  w.pop().fn();
  EXPECT_FALSE(w.cancel(id2));
}

TEST(TimerWheel, RecycledNodeGetsFreshGeneration) {
  TimerWheel w(kRes);
  const TimerId a = w.schedule_at(0.010, [] {});
  w.cancel(a);
  // The slab node is recycled; the stale id must not cancel the new timer.
  bool ran = false;
  w.schedule_at(0.010, [&] { ran = true; });
  EXPECT_FALSE(w.cancel(a));
  while (!w.empty()) w.pop().fn();
  EXPECT_TRUE(ran);
}

TEST(TimerWheel, RescheduleMovesFiringTime) {
  TimerWheel w(kRes);
  std::vector<int> order;
  const TimerId id = w.schedule_at(0.010, [&] { order.push_back(1); });
  w.schedule_at(0.020, [&] { order.push_back(2); });
  EXPECT_TRUE(w.reschedule(id, 0.030));
  while (!w.empty()) w.pop().fn();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TimerWheel, RescheduleKeepsTheId) {
  TimerWheel w(kRes);
  bool ran = false;
  const TimerId id = w.schedule_at(0.010, [&] { ran = true; });
  EXPECT_TRUE(w.reschedule(id, 0.050));
  EXPECT_TRUE(w.reschedule(id, 0.090));  // still valid after a move
  EXPECT_TRUE(w.cancel(id));             // and still cancellable
  EXPECT_TRUE(w.empty());
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, RescheduleStaleIdFails) {
  TimerWheel w(kRes);
  const TimerId id = w.schedule_at(0.010, [] {});
  w.cancel(id);
  EXPECT_FALSE(w.reschedule(id, 0.050));
  EXPECT_FALSE(w.reschedule(kInvalidTimer, 0.050));
}

TEST(TimerWheel, LongDelaysCascadeAcrossLevels) {
  TimerWheel w(kRes);
  std::vector<int> order;
  // Level 0 (< 256 ticks), 1 (< 2^16), 2 (< 2^24), 3 and beyond horizon.
  w.schedule_at(0.100, [&] { order.push_back(0); });       // 100 ticks
  w.schedule_at(10.0, [&] { order.push_back(1); });        // 10^4 ticks
  w.schedule_at(2000.0, [&] { order.push_back(2); });      // 2*10^6 ticks
  w.schedule_at(100000.0, [&] { order.push_back(3); });    // 10^8 ticks
  w.schedule_at(6000000.0, [&] { order.push_back(4); });   // 6*10^9 ticks
  std::vector<double> times;
  while (!w.empty()) {
    auto p = w.pop();
    times.push_back(p.time);
    p.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(times[0], 0.100);
  EXPECT_DOUBLE_EQ(times[1], 10.0);
  EXPECT_DOUBLE_EQ(times[2], 2000.0);
  EXPECT_DOUBLE_EQ(times[3], 100000.0);
  EXPECT_DOUBLE_EQ(times[4], 6000000.0);
}

TEST(TimerWheel, ScheduleDuringFireJoinsOrFollowsTick) {
  TimerWheel w(kRes);
  std::vector<int> order;
  w.schedule_at(0.005, [&] {
    order.push_back(0);
    // Same-tick (and past-time) schedules fire later this same tick...
    w.schedule_at(0.005, [&] { order.push_back(1); });
    w.schedule_at(0.001, [&] { order.push_back(2); });
    // ...future schedules fire on their own tick.
    w.schedule_at(0.006, [&] { order.push_back(3); });
  });
  std::vector<double> times;
  while (!w.empty()) {
    auto p = w.pop();
    times.push_back(p.time);
    p.fn();
  }
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(times[1], 0.005);  // joined the firing tick
  EXPECT_DOUBLE_EQ(times[2], 0.005);  // past time clamps to the cursor
  EXPECT_DOUBLE_EQ(times[3], 0.006);
}

TEST(TimerWheel, RescheduleOutOfFiringTick) {
  TimerWheel w(kRes);
  std::vector<int> order;
  TimerId sibling = kInvalidTimer;
  w.schedule_at(0.005, [&] {
    order.push_back(0);
    // The sibling is already collected for this tick; pushing it to a
    // future tick must keep it from firing now — and its id stays live.
    EXPECT_TRUE(w.reschedule(sibling, 0.009));
  });
  sibling = w.schedule_at(0.005, [&] { order.push_back(1); });
  std::vector<double> times;
  while (!w.empty()) {
    auto p = w.pop();
    times.push_back(p.time);
    p.fn();
  }
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(times[0], 0.005);
  EXPECT_DOUBLE_EQ(times[1], 0.009);
}

TEST(TimerWheel, CancelDuringFiringTick) {
  TimerWheel w(kRes);
  bool sibling_ran = false;
  TimerId sibling = kInvalidTimer;
  w.schedule_at(0.005, [&] { EXPECT_TRUE(w.cancel(sibling)); });
  sibling = w.schedule_at(0.005, [&] { sibling_ran = true; });
  while (!w.empty()) w.pop().fn();
  EXPECT_FALSE(sibling_ran);
}

TEST(TimerWheel, PeekThenEarlierScheduleRewindsCursor) {
  // next_time() may run the cursor ahead to the then-earliest timer; a
  // later schedule for an *earlier* time must still fire at its own time
  // (regression: it used to be clamped into the far-future due batch).
  TimerWheel w(kRes);
  std::vector<double> fired;
  w.schedule_at(100.0, [&] { fired.push_back(100.0); });
  EXPECT_DOUBLE_EQ(w.next_time(), 100.0);  // peek advances the cursor
  w.schedule_at(2.0, [&] { fired.push_back(2.0); });
  EXPECT_DOUBLE_EQ(w.next_time(), 2.0);
  std::vector<double> times;
  while (!w.empty()) {
    auto p = w.pop();
    times.push_back(p.time);
    p.fn();
  }
  EXPECT_EQ(fired, (std::vector<double>{2.0, 100.0}));
  EXPECT_EQ(times, (std::vector<double>{2.0, 100.0}));
}

TEST(TimerWheel, PeekThenEarlierRescheduleRewindsCursor) {
  TimerWheel w(kRes);
  std::vector<double> fired;
  const TimerId far = w.schedule_at(100.0, [&] { fired.push_back(1); });
  w.schedule_at(200.0, [&] { fired.push_back(2); });
  EXPECT_DOUBLE_EQ(w.next_time(), 100.0);
  EXPECT_TRUE(w.reschedule(far, 0.5));  // earlier than the peeked cursor
  std::vector<double> times;
  while (!w.empty()) {
    auto p = w.pop();
    times.push_back(p.time);
    p.fn();
  }
  EXPECT_EQ(fired, (std::vector<double>{1, 2}));
  EXPECT_EQ(times, (std::vector<double>{0.5, 200.0}));
}

TEST(TimerWheel, RewindNeverGoesBehindFiredTicks) {
  TimerWheel w(kRes);
  std::vector<double> times;
  w.schedule_at(0.010, [] {});
  auto p = w.pop();  // fires tick 10: committed
  EXPECT_DOUBLE_EQ(p.time, 0.010);
  // A past-time schedule now clamps to the fired tick, never earlier.
  w.schedule_at(0.001, [] {});
  EXPECT_DOUBLE_EQ(w.next_time(), 0.010);
}

TEST(TimerWheel, ClearDropsEverythingAndInvalidatesIds) {
  TimerWheel w(kRes);
  bool ran = false;
  const TimerId id = w.schedule_at(0.010, [&] { ran = true; });
  w.schedule_at(5.0, [&] { ran = true; });
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.size(), 0u);
  EXPECT_FALSE(w.cancel(id));
  // Wheel is usable after clear.
  w.schedule_at(0.010, [] {});
  EXPECT_EQ(w.size(), 1u);
  while (!w.empty()) w.pop().fn();
  EXPECT_FALSE(ran);
}

TEST(TimerWheel, SlabPlateausUnderChurn) {
  TimerWheel w(kRes);
  // 64 concurrent timers, continuously cancelled and re-armed: the node
  // slab must plateau at the concurrency high-water mark, not grow.
  std::vector<TimerId> ids;
  double t = 0.0;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(w.schedule_at(t += 0.001, [] {}));
  }
  const std::size_t plateau = w.slab_size();
  for (int round = 0; round < 1000; ++round) {
    for (auto& id : ids) {
      w.cancel(id);
      id = w.schedule_at(t += 0.001, [] {});
    }
  }
  EXPECT_EQ(w.slab_size(), plateau);
}

/// Randomized schedule/cancel/reschedule against a reference multimap:
/// firing order and times must match exactly.
TEST(TimerWheel, FuzzAgainstReferenceOrdering) {
  TimerWheel w(kRes);
  util::Rng rng(99);

  struct Ref {
    std::uint64_t tick;
    std::uint64_t seq;
    int tag;
  };
  std::vector<Ref> live;
  std::vector<TimerId> ids;
  std::uint64_t seq = 0;
  int tag = 0;
  std::vector<int> fired_wheel;

  for (int step = 0; step < 3000; ++step) {
    const auto op = rng.uniform_int(0, 3);
    if (op <= 1 || live.empty()) {  // schedule
      const std::uint64_t tick = 1 + rng.uniform_int(0, 70000);
      const int mytag = tag++;
      ids.push_back(w.schedule_at(double(tick) * kRes,
                                  [&fired_wheel, mytag] {
                                    fired_wheel.push_back(mytag);
                                  }));
      live.push_back({tick, seq++, mytag});
    } else if (op == 2) {  // cancel a random live timer
      const std::size_t pick = rng.index(live.size());
      EXPECT_TRUE(w.cancel(ids[pick]));
      ids.erase(ids.begin() + std::ptrdiff_t(pick));
      live.erase(live.begin() + std::ptrdiff_t(pick));
    } else {  // reschedule a random live timer
      const std::size_t pick = rng.index(live.size());
      const std::uint64_t tick = 1 + rng.uniform_int(0, 70000);
      EXPECT_TRUE(w.reschedule(ids[pick], double(tick) * kRes));
      live[pick].tick = tick;
      live[pick].seq = seq++;
    }
  }

  // Expected order: by (tick, seq).
  std::vector<int> expected;
  {
    std::multimap<std::pair<std::uint64_t, std::uint64_t>, int> bykey;
    for (const auto& r : live) bykey.insert({{r.tick, r.seq}, r.tag});
    for (const auto& [k, v] : bykey) expected.push_back(v);
  }

  EXPECT_EQ(w.size(), live.size());
  while (!w.empty()) w.pop().fn();
  EXPECT_EQ(fired_wheel, expected);
}

}  // namespace
}  // namespace mafic::sim
