#include "sim/monitor.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace mafic::sim {
namespace {

TEST(LinkMonitor, CountsPacketsBytesAndFlows) {
  Simulator sim;
  SimplexLink link(&sim, 0, 1, {});
  class Sink final : public Connector {
   public:
    void recv(PacketPtr) override {}
  } sink;
  link.set_endpoint(&sink);
  LinkMonitor mon(&sim, &link, 0.1);

  auto send = [&](FlowId flow, std::uint32_t bytes) {
    auto p = std::make_unique<Packet>();
    p->flow_id = flow;
    p->size_bytes = bytes;
    link.entry()->recv(std::move(p));
  };
  send(1, 100);
  send(1, 100);
  send(2, 300);
  sim.run();

  EXPECT_EQ(mon.packets(), 3u);
  EXPECT_EQ(mon.bytes(), 500u);
  EXPECT_EQ(mon.per_flow(1).packets, 2u);
  EXPECT_EQ(mon.per_flow(1).bytes, 200u);
  EXPECT_EQ(mon.per_flow(2).packets, 1u);
  EXPECT_EQ(mon.per_flow(3).packets, 0u);  // never observed: zeros

  // Sort-before-emit accessor: ascending FlowId, all observed flows.
  const auto sorted = mon.per_flow_sorted();
  ASSERT_EQ(sorted.size(), 2u);
  EXPECT_EQ(sorted[0].first, 1u);
  EXPECT_EQ(sorted[0].second.packets, 2u);
  EXPECT_EQ(sorted[1].first, 2u);
  EXPECT_EQ(sorted[1].second.bytes, 300u);
}

TEST(LinkMonitor, SeriesRecordsArrivalTimes) {
  Simulator sim;
  SimplexLink::Config cfg;
  cfg.bandwidth_bps = 1e9;
  cfg.delay_s = 0.0;
  SimplexLink link(&sim, 0, 1, cfg);
  class Sink final : public Connector {
   public:
    void recv(PacketPtr) override {}
  } sink;
  link.set_endpoint(&sink);
  LinkMonitor mon(&sim, &link, 0.1);

  sim.schedule_at(0.25, [&] {
    auto p = std::make_unique<Packet>();
    p->size_bytes = 1000;
    link.entry()->recv(std::move(p));
  });
  sim.run();
  EXPECT_DOUBLE_EQ(mon.byte_series().rate_at(0.25), 10000.0);
  EXPECT_DOUBLE_EQ(mon.packet_series().rate_at(0.25), 10.0);
  EXPECT_DOUBLE_EQ(mon.byte_series().rate_at(0.05), 0.0);
}

}  // namespace
}  // namespace mafic::sim
