#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace mafic::sim {
namespace {

class CountingHandler final : public PacketHandler {
 public:
  void recv(PacketPtr p) override {
    ++count;
    last_uid = p->uid;
  }
  int count = 0;
  std::uint64_t last_uid = 0;
};

SimplexLink::Config fast() {
  SimplexLink::Config c;
  c.bandwidth_bps = 1e9;
  c.delay_s = 0.001;
  return c;
}

SimplexLink::Config slow_path() {
  SimplexLink::Config c;
  c.bandwidth_bps = 1e9;
  c.delay_s = 0.1;  // routing should avoid this
  return c;
}

PacketPtr victim_packet(PacketFactory& f, util::Addr src, util::Addr dst,
                        std::uint16_t dport = 80) {
  auto p = f.make();
  p->label = FlowLabel{src, dst, 1000, dport};
  p->size_bytes = 100;
  return p;
}

class NodeRoutingTest : public ::testing::Test {
 protected:
  // a - r1 - r2 - b, plus a slow direct link r1 - r3 - r2 alternative.
  void SetUp() override {
    net = std::make_unique<Network>(&sim);
    a = net->add_host(util::make_addr(172, 16, 0, 1));
    b = net->add_host(util::make_addr(172, 17, 0, 1));
    r1 = net->add_router(util::make_addr(10, 0, 0, 1));
    r2 = net->add_router(util::make_addr(10, 0, 0, 2));
    r3 = net->add_router(util::make_addr(10, 0, 0, 3));
    net->add_duplex(a->id(), r1->id(), fast());
    net->add_duplex(r1->id(), r2->id(), fast());
    net->add_duplex(r2->id(), b->id(), fast());
    net->add_duplex(r1->id(), r3->id(), slow_path());
    net->add_duplex(r3->id(), r2->id(), slow_path());
    net->build_routes();
  }

  Simulator sim;
  PacketFactory factory;
  std::unique_ptr<Network> net;
  Node *a{}, *b{}, *r1{}, *r2{}, *r3{};
};

TEST_F(NodeRoutingTest, EndToEndDelivery) {
  CountingHandler h;
  b->bind_port(80, &h);
  a->send(victim_packet(factory, a->addr(), b->addr()));
  sim.run();
  EXPECT_EQ(h.count, 1);
  EXPECT_EQ(b->stats().delivered, 1u);
}

TEST_F(NodeRoutingTest, ShortestPathAvoidsSlowDetour) {
  CountingHandler h;
  b->bind_port(80, &h);
  a->send(victim_packet(factory, a->addr(), b->addr()));
  sim.run();
  // Fast path: 3 hops x 1ms (+ negligible tx) << detour 0.1s legs.
  EXPECT_LT(sim.now(), 0.01);
  EXPECT_EQ(r3->stats().forwarded, 0u);
  EXPECT_EQ(r1->stats().forwarded, 1u);
  EXPECT_EQ(r2->stats().forwarded, 1u);
}

TEST_F(NodeRoutingTest, RouteForKnowsNextHop) {
  SimplexLink* out = r1->route_for(b->addr());
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(out->to(), r2->id());
}

TEST_F(NodeRoutingTest, UnboundPortDropsWithReason) {
  int unbound = 0;
  net->set_drop_handler([&](const Packet&, DropReason r, NodeId where) {
    if (r == DropReason::kUnboundPort) {
      ++unbound;
      EXPECT_EQ(where, b->id());
    }
  });
  a->send(victim_packet(factory, a->addr(), b->addr(), 9999));
  sim.run();
  EXPECT_EQ(unbound, 1);
  EXPECT_EQ(b->stats().dropped_unbound, 1u);
}

TEST_F(NodeRoutingTest, NoRouteDrops) {
  int noroute = 0;
  net->set_drop_handler([&](const Packet&, DropReason r, NodeId) {
    noroute += (r == DropReason::kNoRoute);
  });
  a->send(victim_packet(factory, a->addr(), util::make_addr(99, 9, 9, 9)));
  sim.run();
  EXPECT_EQ(noroute, 1);
}

TEST_F(NodeRoutingTest, TtlExpiryDrops) {
  int ttl_drops = 0;
  net->set_drop_handler([&](const Packet&, DropReason r, NodeId) {
    ttl_drops += (r == DropReason::kTtlExpired);
  });
  auto p = victim_packet(factory, a->addr(), b->addr());
  p->ttl = 1;  // dies at the first router
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(ttl_drops, 1);
  EXPECT_EQ(r1->stats().dropped_ttl, 1u);
}

TEST_F(NodeRoutingTest, LoopbackDeliversLocally) {
  CountingHandler h;
  a->bind_port(80, &h);
  a->send(victim_packet(factory, a->addr(), a->addr()));
  sim.run();
  EXPECT_EQ(h.count, 1);
}

TEST_F(NodeRoutingTest, PortRebindReplacesHandler) {
  CountingHandler h1, h2;
  b->bind_port(80, &h1);
  b->bind_port(80, &h2);
  a->send(victim_packet(factory, a->addr(), b->addr()));
  sim.run();
  EXPECT_EQ(h1.count, 0);
  EXPECT_EQ(h2.count, 1);
}

TEST_F(NodeRoutingTest, UnbindStopsDelivery) {
  CountingHandler h;
  b->bind_port(80, &h);
  b->unbind_port(80);
  a->send(victim_packet(factory, a->addr(), b->addr()));
  sim.run();
  EXPECT_EQ(h.count, 0);
}

TEST_F(NodeRoutingTest, NetworkLookupHelpers) {
  EXPECT_EQ(net->node_by_addr(a->addr()), a);
  EXPECT_EQ(net->node_by_addr(util::make_addr(1, 1, 1, 1)), nullptr);
  EXPECT_NE(net->find_link(r1->id(), r2->id()), nullptr);
  EXPECT_EQ(net->find_link(a->id(), b->id()), nullptr);
  EXPECT_EQ(net->node_count(), 5u);
  EXPECT_EQ(net->link_count(), 10u);
}

TEST_F(NodeRoutingTest, ForwardingDecrementsTtl) {
  CountingHandler h;
  b->bind_port(80, &h);
  auto p = victim_packet(factory, a->addr(), b->addr());
  p->ttl = 3;  // 2 router hops: exactly enough
  a->send(std::move(p));
  sim.run();
  EXPECT_EQ(h.count, 1);
}

TEST_F(NodeRoutingTest, RoutesExistForAllDestinations) {
  // Every node can reach every other node's address.
  for (const auto& from : net->nodes()) {
    for (const auto& to : net->nodes()) {
      if (from->id() == to->id()) continue;
      EXPECT_NE(from->route_for(to->addr()), nullptr)
          << "no route " << from->id() << " -> " << to->id();
    }
  }
}

}  // namespace
}  // namespace mafic::sim
