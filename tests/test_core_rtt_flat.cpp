// Flat RttEstimator: bit-identical to the pre-flat unordered_map
// implementation (kept inline here as the reference), plus the capacity
// behavior the flat store adds — bounded residency with round-robin
// recycling — and persistence across probation transitions.

#include "core/rtt_estimator.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mafic::core {
namespace {

/// The pre-flat implementation, verbatim: unordered_map of util::Ewma.
class ReferenceRttEstimator {
 public:
  explicit ReferenceRttEstimator(const MaficConfig& cfg) : cfg_(cfg) {}

  void observe(std::uint64_t key, double raw_sample) {
    if (raw_sample <= 0.0) return;
    const double corrected = raw_sample * cfg_.rtt_correction;
    if (corrected < cfg_.min_rtt / 4.0 || corrected > cfg_.max_rtt * 4.0) {
      return;
    }
    auto [it, inserted] =
        flows_.try_emplace(key, util::Ewma{cfg_.rtt_ewma_alpha});
    it->second.update(corrected);
  }

  double rtt(std::uint64_t key) const {
    const auto it = flows_.find(key);
    if (it == flows_.end() || !it->second.initialized()) {
      return cfg_.default_rtt;
    }
    const double v = it->second.value();
    if (v < cfg_.min_rtt) return cfg_.min_rtt;
    if (v > cfg_.max_rtt) return cfg_.max_rtt;
    return v;
  }

 private:
  const MaficConfig& cfg_;
  std::unordered_map<std::uint64_t, util::Ewma> flows_;
};

TEST(FlatRttEstimator, BitIdenticalToMapReference) {
  MaficConfig cfg;
  RttEstimator flat(cfg);
  ReferenceRttEstimator ref(cfg);

  // Randomized interleaving of good, garbage and negative samples over a
  // churning key population, checking the estimate after every step.
  util::Rng rng(20260729);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 200; ++i) keys.push_back(rng.next());

  for (int step = 0; step < 20000; ++step) {
    const std::uint64_t key = keys[rng.index(keys.size())];
    double sample;
    switch (rng.index(8)) {
      case 0:
        sample = -rng.uniform01();  // non-positive: rejected
        break;
      case 1:
        sample = rng.uniform(1.0, 10.0);  // way past max_rtt: rejected
        break;
      case 2:
        sample = rng.uniform(0.0, cfg.min_rtt / 16.0);  // too small
        break;
      default:
        sample = rng.uniform(0.001, 0.12);  // plausible echo
        break;
    }
    flat.observe(key, sample);
    ref.observe(key, sample);
    // Exact equality: the flat store must run the same FP sequence.
    EXPECT_EQ(flat.rtt(key), ref.rtt(key)) << "step " << step;
  }
  for (const std::uint64_t key : keys) {
    EXPECT_EQ(flat.rtt(key), ref.rtt(key));
  }
}

TEST(FlatRttEstimator, DefaultUntilObservedAndClampedAfter) {
  MaficConfig cfg;
  RttEstimator est(cfg);
  EXPECT_EQ(est.rtt(42), cfg.default_rtt);
  EXPECT_FALSE(est.has_estimate(42));

  est.observe(42, 0.02);  // corrected: 0.04
  EXPECT_TRUE(est.has_estimate(42));
  EXPECT_DOUBLE_EQ(est.rtt(42), 0.04);

  // Clamps, never returns outside [min_rtt, max_rtt] once observed.
  for (int i = 0; i < 50; ++i) est.observe(42, 0.19);  // corrected 0.38
  EXPECT_EQ(est.rtt(42), cfg.max_rtt);
  for (int i = 0; i < 200; ++i) est.observe(42, 0.003);
  EXPECT_EQ(est.rtt(42), cfg.min_rtt);
}

TEST(FlatRttEstimator, EstimatesPersistIndependentOfFlowTables) {
  // The estimator is deliberately outside the flow tables: a flow keeps
  // its RTT through admit/resolve churn and only clear() (defense
  // deactivation) forgets it.
  MaficConfig cfg;
  RttEstimator est(cfg);
  est.observe(7, 0.025);
  const double before = est.rtt(7);
  // (probation transitions happen in FlowTables; nothing here to call —
  // the point is the API has no coupling to them)
  EXPECT_EQ(est.rtt(7), before);
  est.clear();
  EXPECT_FALSE(est.has_estimate(7));
  EXPECT_EQ(est.rtt(7), cfg.default_rtt);
  EXPECT_EQ(est.tracked_flows(), 0u);
}

TEST(FlatRttEstimator, CapacityRecyclesRoundRobin) {
  MaficConfig cfg;
  cfg.rtt_capacity = 64;
  RttEstimator est(cfg);
  for (std::uint64_t k = 1; k <= 64; ++k) est.observe(k, 0.02);
  EXPECT_EQ(est.tracked_flows(), 64u);
  EXPECT_EQ(est.recycled(), 0u);

  // Past capacity: every new flow displaces exactly one resident
  // estimate and is itself tracked.
  for (std::uint64_t k = 65; k <= 96; ++k) {
    est.observe(k, 0.03);
    EXPECT_TRUE(est.has_estimate(k));
    EXPECT_EQ(est.tracked_flows(), 64u);
  }
  EXPECT_EQ(est.recycled(), 32u);
  // Updates to resident flows never recycle.
  est.observe(96, 0.03);
  EXPECT_EQ(est.recycled(), 32u);
}

TEST(FlatRttEstimator, PinnedEstimatesSurviveRecycling) {
  // The engine pins flows with an active probation: their estimate backs
  // the live window and must not be recycled mid-probation. Round-robin
  // recycling skips pinned slots and takes the next unpinned one.
  MaficConfig cfg;
  cfg.rtt_capacity = 64;
  RttEstimator est(cfg);
  std::unordered_map<std::uint64_t, bool> pinned;
  est.set_pin_check([&](std::uint64_t key) {
    const auto it = pinned.find(key);
    return it != pinned.end() && it->second;
  });

  for (std::uint64_t k = 1; k <= 64; ++k) {
    est.observe(k, 0.02);
    pinned[k] = k <= 8;  // keys 1..8 are "under probation"
  }
  // Churn far past capacity: every displacement must land on an unpinned
  // resident.
  for (std::uint64_t k = 100; k < 300; ++k) est.observe(k, 0.03);
  EXPECT_EQ(est.tracked_flows(), 64u);
  for (std::uint64_t k = 1; k <= 8; ++k) {
    EXPECT_TRUE(est.has_estimate(k)) << "pinned key " << k << " recycled";
    EXPECT_DOUBLE_EQ(est.rtt(k), 0.04);
  }

  // Unpinning releases the slots to the normal round-robin again.
  for (std::uint64_t k = 1; k <= 8; ++k) pinned[k] = false;
  const std::uint64_t before = est.recycled();
  for (std::uint64_t k = 300; k < 600; ++k) est.observe(k, 0.03);
  EXPECT_EQ(est.recycled(), before + 300);
  bool any_former_pin_gone = false;
  for (std::uint64_t k = 1; k <= 8; ++k) {
    any_former_pin_gone = any_former_pin_gone || !est.has_estimate(k);
  }
  EXPECT_TRUE(any_former_pin_gone);
}

TEST(FlatRttEstimator, AllPinnedDropsNewObservationInsteadOfRecycling) {
  // Pathological bound: when every resident estimate backs an active
  // probation there is nothing safe to recycle — the new sample is
  // dropped (the flow reads default_rtt) rather than stealing a slot.
  MaficConfig cfg;
  cfg.rtt_capacity = 16;
  RttEstimator est(cfg);
  est.set_pin_check([](std::uint64_t) { return true; });
  for (std::uint64_t k = 1; k <= 16; ++k) est.observe(k, 0.02);
  EXPECT_EQ(est.tracked_flows(), 16u);

  est.observe(999, 0.03);
  EXPECT_FALSE(est.has_estimate(999));
  EXPECT_EQ(est.rtt(999), cfg.default_rtt);
  EXPECT_EQ(est.tracked_flows(), 16u);
  EXPECT_EQ(est.recycled(), 0u);
  // Every pre-existing estimate is intact.
  for (std::uint64_t k = 1; k <= 16; ++k) EXPECT_TRUE(est.has_estimate(k));
}

}  // namespace
}  // namespace mafic::core
