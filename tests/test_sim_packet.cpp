#include "sim/packet.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mafic::sim {
namespace {

TEST(FlowLabel, EqualityAndReversal) {
  const FlowLabel l{util::make_addr(10, 0, 0, 1), util::make_addr(10, 0, 0, 2),
                    1234, 80};
  EXPECT_EQ(l, l);
  const FlowLabel r = l.reversed();
  EXPECT_EQ(r.src, l.dst);
  EXPECT_EQ(r.dst, l.src);
  EXPECT_EQ(r.sport, l.dport);
  EXPECT_EQ(r.dport, l.sport);
  EXPECT_EQ(r.reversed(), l);
}

TEST(FlowLabel, HashDistinguishesFields) {
  const FlowLabel base{1, 2, 3, 4};
  EXPECT_NE(hash_label(base), hash_label(FlowLabel{9, 2, 3, 4}));
  EXPECT_NE(hash_label(base), hash_label(FlowLabel{1, 9, 3, 4}));
  EXPECT_NE(hash_label(base), hash_label(FlowLabel{1, 2, 9, 4}));
  EXPECT_NE(hash_label(base), hash_label(FlowLabel{1, 2, 3, 9}));
  EXPECT_EQ(hash_label(base), hash_label(FlowLabel{1, 2, 3, 4}));
}

TEST(FlowLabel, HashOfReverseDiffers) {
  const FlowLabel l{1, 2, 3, 4};
  EXPECT_NE(hash_label(l), hash_label(l.reversed()));
}

TEST(FlowLabel, FormatLabel) {
  const FlowLabel l{util::make_addr(10, 0, 0, 1), util::make_addr(172, 16, 0, 9),
                    1234, 80};
  EXPECT_EQ(format_label(l), "10.0.0.1:1234>172.16.0.9:80");
}

TEST(Packet, FactoryAssignsUniqueUids) {
  PacketFactory f;
  std::set<std::uint64_t> uids;
  for (int i = 0; i < 1000; ++i) {
    auto p = f.make();
    EXPECT_TRUE(uids.insert(p->uid).second);
  }
  EXPECT_EQ(f.issued(), 1000u);
}

TEST(Packet, CloneCopiesFieldsButFreshUid) {
  PacketFactory f;
  auto p = f.make();
  p->label = FlowLabel{1, 2, 3, 4};
  p->seq = 77;
  p->size_bytes = 999;
  auto q = f.clone(*p);
  EXPECT_EQ(q->label, p->label);
  EXPECT_EQ(q->seq, 77u);
  EXPECT_EQ(q->size_bytes, 999u);
  EXPECT_NE(q->uid, p->uid);
}

TEST(Packet, FlagHelpers) {
  Packet p;
  p.flags = tcp_flags::kAck | tcp_flags::kSyn;
  EXPECT_TRUE(p.has_flag(tcp_flags::kAck));
  EXPECT_TRUE(p.has_flag(tcp_flags::kSyn));
  EXPECT_FALSE(p.has_flag(tcp_flags::kFin));
}

TEST(Packet, IsAckOnly) {
  Packet p;
  p.proto = Protocol::kTcp;
  p.flags = tcp_flags::kAck;
  p.size_bytes = 0;
  EXPECT_TRUE(p.is_ack_only());
  p.size_bytes = 1000;
  EXPECT_FALSE(p.is_ack_only());
  EXPECT_TRUE(p.is_ack_only(1000));
}

TEST(Packet, FreelistRecyclesMemory) {
  Packet::trim_freelist();
  {
    auto p = std::make_unique<Packet>();
    (void)p;
  }
  EXPECT_GE(Packet::freelist_size(), 1u);
  const std::size_t before = Packet::freelist_size();
  auto q = std::make_unique<Packet>();  // should reuse the cached slot
  EXPECT_EQ(Packet::freelist_size(), before - 1);
  q.reset();
  Packet::trim_freelist();
  EXPECT_EQ(Packet::freelist_size(), 0u);
}

TEST(Packet, DefaultsAreSane) {
  Packet p;
  EXPECT_EQ(p.flow_id, kUntrackedFlow);
  EXPECT_EQ(p.ttl, 64);
  EXPECT_FALSE(p.probe);
  EXPECT_EQ(p.flags, 0);
}

}  // namespace
}  // namespace mafic::sim
