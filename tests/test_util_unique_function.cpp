#include "util/unique_function.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace mafic::util {
namespace {

TEST(UniqueFunction, DefaultIsEmpty) {
  UniqueFunction<void()> f;
  EXPECT_FALSE(static_cast<bool>(f));
}

TEST(UniqueFunction, InvokesLambda) {
  int calls = 0;
  UniqueFunction<void()> f([&] { ++calls; });
  ASSERT_TRUE(static_cast<bool>(f));
  f();
  f();
  EXPECT_EQ(calls, 2);
}

TEST(UniqueFunction, CapturesMoveOnlyState) {
  auto p = std::make_unique<int>(42);
  UniqueFunction<int()> f([q = std::move(p)] { return *q; });
  EXPECT_EQ(f(), 42);
}

TEST(UniqueFunction, MoveTransfersOwnership) {
  int calls = 0;
  UniqueFunction<void()> a([&] { ++calls; });
  UniqueFunction<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(calls, 1);
}

TEST(UniqueFunction, ArgumentsAndReturn) {
  UniqueFunction<int(int, int)> add([](int a, int b) { return a + b; });
  EXPECT_EQ(add(3, 4), 7);
}

TEST(UniqueFunction, MoveOnlyArgumentsForwarded) {
  UniqueFunction<int(std::unique_ptr<int>)> f(
      [](std::unique_ptr<int> p) { return *p; });
  EXPECT_EQ(f(std::make_unique<int>(9)), 9);
}

TEST(UniqueFunction, ReassignmentReplacesTarget) {
  UniqueFunction<int()> f([] { return 1; });
  f = UniqueFunction<int()>([] { return 2; });
  EXPECT_EQ(f(), 2);
}

}  // namespace
}  // namespace mafic::util
