#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "baseline/aggregate_limiter.hpp"
#include "baseline/proportional_dropper.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mafic::baseline {
namespace {

sim::PacketPtr victim_packet(util::Addr dst, std::uint32_t bytes = 1000) {
  auto p = std::make_unique<sim::Packet>();
  p->label = sim::FlowLabel{util::make_addr(172, 16, 0, 1), dst, 1000, 80};
  p->size_bytes = bytes;
  return p;
}

constexpr util::Addr kVictim = util::make_addr(172, 17, 0, 1);
constexpr util::Addr kOther = util::make_addr(172, 17, 0, 2);

TEST(ProportionalDropper, InactiveForwardsAll) {
  ProportionalDropper d(0.9, util::Rng(1));
  int forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(int* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    int* n_;
  } sink(&forwarded);
  d.set_target(&sink);
  for (int i = 0; i < 100; ++i) d.recv(victim_packet(kVictim));
  EXPECT_EQ(forwarded, 100);
  EXPECT_EQ(d.stats().offered, 0u);
}

TEST(ProportionalDropper, DropsAtConfiguredProbability) {
  ProportionalDropper d(0.7, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler([&](const sim::Packet&, sim::DropReason r,
                         sim::NodeId) {
    EXPECT_EQ(r, sim::DropReason::kDefenseBaseline);
    ++drops;
  });
  const int n = 20000;
  for (int i = 0; i < n; ++i) d.recv(victim_packet(kVictim));
  EXPECT_NEAR(double(drops) / n, 0.7, 0.02);
  EXPECT_EQ(d.stats().offered, std::uint64_t(n));
  EXPECT_EQ(d.stats().dropped + d.stats().forwarded, std::uint64_t(n));
}

TEST(ProportionalDropper, FlowBlindness) {
  // The defining weakness vs MAFIC: it keeps dropping forever, from every
  // flow alike, with no classification.
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  const int early = drops;
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  // Still dropping at the same rate much later.
  EXPECT_NEAR(double(drops - early), double(early), 100.0);
}

TEST(ProportionalDropper, OtherDestinationsUntouched) {
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kOther));
  EXPECT_EQ(drops, 0);
  EXPECT_EQ(d.stats().offered, 0u);
}

TEST(ProportionalDropper, DeactivateStopsDropping) {
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  d.deactivate();
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  EXPECT_EQ(drops, 0);
}

// Fate of every packet pushed through a dropper: uid -> dropped?
std::map<std::uint64_t, bool> run_fates(ProportionalDropper& d,
                                        std::vector<sim::PacketPtr> pkts,
                                        bool as_burst,
                                        std::size_t span = 7) {
  std::map<std::uint64_t, bool> fate;
  class Sink final : public sim::Connector {
   public:
    explicit Sink(std::map<std::uint64_t, bool>* f) : f_(f) {}
    void recv(sim::PacketPtr p) override { (*f_)[p->uid] = false; }
    std::map<std::uint64_t, bool>* f_;
  } sink(&fate);
  d.set_target(&sink);
  d.set_drop_handler([&](const sim::Packet& p, sim::DropReason,
                         sim::NodeId) { fate[p.uid] = true; });
  if (as_burst) {
    for (std::size_t i = 0; i < pkts.size(); i += span) {
      const std::size_t n = std::min(span, pkts.size() - i);
      d.recv_burst(pkts.data() + i, n);
    }
  } else {
    for (auto& p : pkts) d.recv(std::move(p));
  }
  return fate;
}

std::vector<sim::PacketPtr> coin_workload(bool reversed = false) {
  std::vector<sim::PacketPtr> pkts;
  for (std::uint32_t f = 0; f < 200; ++f) {
    auto p = victim_packet(kVictim);
    p->label.src = util::make_addr(172, 16, 0, std::uint8_t(f % 250));
    p->label.sport = std::uint16_t(1024 + f);
    p->uid = 100000 + f;
    pkts.push_back(std::move(p));
  }
  if (reversed) std::reverse(pkts.begin(), pkts.end());
  return pkts;
}

TEST(ProportionalDropper, PacketHashCoinIsOrderAndBatchInvariant) {
  // The stateless coin (the kPacketHash shape FilterEngine uses) must
  // give each packet the same fate through per-packet recv, through
  // burst spans, and in reversed inspection order — none of which holds
  // for the stateful RNG stream.
  const auto fresh = [] {
    ProportionalDropper d(0.7, util::Rng(3));
    d.set_coin(ProportionalDropper::CoinKind::kPacketHash, 0xfeedULL);
    d.activate({kVictim});
    return d;
  };
  ProportionalDropper scalar = fresh();
  ProportionalDropper burst = fresh();
  ProportionalDropper burst_rev = fresh();
  const auto fate_scalar = run_fates(scalar, coin_workload(), false);
  const auto fate_burst = run_fates(burst, coin_workload(), true);
  const auto fate_rev = run_fates(burst_rev, coin_workload(true), true);
  ASSERT_EQ(fate_scalar.size(), 200u);
  EXPECT_EQ(fate_scalar, fate_burst);
  EXPECT_EQ(fate_scalar, fate_rev);
  EXPECT_EQ(scalar.stats().offered, 200u);
  EXPECT_EQ(scalar.stats().dropped, burst.stats().dropped);
  EXPECT_EQ(scalar.stats().forwarded, burst_rev.stats().forwarded);

  // Golden pin at (pd=0.7, seed=0xfeed): exact drop count, so the coin
  // construction cannot drift silently.
  EXPECT_EQ(scalar.stats().dropped, 148u);
}

TEST(ProportionalDropper, PacketHashCoinHitsConfiguredRate) {
  ProportionalDropper d(0.7, util::Rng(3));
  d.set_coin(ProportionalDropper::CoinKind::kPacketHash, 0x5eedULL);
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    auto p = victim_packet(kVictim);
    p->uid = std::uint64_t(i);
    p->label.sport = std::uint16_t(i & 0xffff);
    d.recv(std::move(p));
  }
  EXPECT_NEAR(double(drops) / n, 0.7, 0.02);
  // Degenerate probabilities stay exact.
  ProportionalDropper never(0.0, util::Rng(3));
  never.set_coin(ProportionalDropper::CoinKind::kPacketHash, 1);
  never.activate({kVictim});
  ProportionalDropper always(1.0, util::Rng(3));
  always.set_coin(ProportionalDropper::CoinKind::kPacketHash, 1);
  always.activate({kVictim});
  const auto none = run_fates(never, coin_workload(), true);
  const auto all = run_fates(always, coin_workload(), true);
  for (const auto& [uid, dropped] : none) EXPECT_FALSE(dropped) << uid;
  for (const auto& [uid, dropped] : all) EXPECT_TRUE(dropped) << uid;
}

TEST(AggregateLimiter, EnforcesRateLimit) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 1e6;  // 125 kB/s
  cfg.burst_bytes = 2000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});

  std::uint64_t forwarded_bytes = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* b) : b_(b) {}
    void recv(sim::PacketPtr p) override { *b_ += p->size_bytes; }
    std::uint64_t* b_;
  } sink(&forwarded_bytes);
  lim.set_target(&sink);

  // Offer 10 Mb/s for 1 second via scheduled arrivals.
  for (int i = 0; i < 1250; ++i) {
    sim.schedule_at(i * 0.0008, [&lim] {
      lim.recv(victim_packet(kVictim, 1000));
    });
  }
  sim.run();
  // Forwarded ~ limit * duration = 125 kB (+ burst).
  EXPECT_NEAR(double(forwarded_bytes), 125e3, 15e3);
  EXPECT_GT(lim.stats().dropped, 1000u);
}

TEST(AggregateLimiter, UnderLimitTrafficPasses) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 10e6;
  cfg.burst_bytes = 4000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});
  std::uint64_t forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    std::uint64_t* n_;
  } sink(&forwarded);
  lim.set_target(&sink);
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(i * 0.002, [&lim] {  // 4 Mb/s offered
      lim.recv(victim_packet(kVictim, 1000));
    });
  }
  sim.run();
  EXPECT_EQ(forwarded, 500u);
  EXPECT_EQ(lim.stats().dropped, 0u);
}

TEST(AggregateLimiter, BurstPathBitIdenticalToPerPacket) {
  // The token-bucket batch path (one refill per span, no per-packet
  // virtual dispatch) must produce exactly the verdict sequence, stats
  // and token state of recv()ing the same packets one by one.
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 123457.0;  // odd rate: fractional token arithmetic
  cfg.burst_bytes = 3333.25;
  AggregateLimiter per_packet(&sim, cfg);
  AggregateLimiter burst(&sim, cfg);
  per_packet.activate({kVictim});
  burst.activate({kVictim});

  // Per-packet verdicts keyed by uid (recv_burst compacts drops before
  // forwarding the surviving span, so raw recording order differs within
  // a span even when every per-packet verdict matches).
  std::map<std::uint64_t, char> seq_a, seq_b;
  class Sink final : public sim::Connector {
   public:
    explicit Sink(std::map<std::uint64_t, char>* s) : s_(s) {}
    void recv(sim::PacketPtr p) override { (*s_)[p->uid] = 'F'; }
    std::map<std::uint64_t, char>* s_;
  } sink_a(&seq_a), sink_b(&seq_b);
  per_packet.set_target(&sink_a);
  burst.set_target(&sink_b);
  per_packet.set_drop_handler(
      [&](const sim::Packet& p, sim::DropReason, sim::NodeId) {
        seq_a[p.uid] = 'D';
      });
  burst.set_drop_handler(
      [&](const sim::Packet& p, sim::DropReason, sim::NodeId) {
        seq_b[p.uid] = 'D';
      });

  // Irregular spans at irregular times, with non-victim packets mixed in
  // (they must pass without touching the bucket on either path).
  util::Rng rng(20260729);
  std::uint64_t next_uid = 1;
  for (int span = 0; span < 60; ++span) {
    const double t = 0.0007 + span * 0.00173;
    std::vector<std::uint32_t> sizes;
    std::vector<bool> to_victim;
    std::vector<std::uint64_t> uids;
    const std::size_t n = 1 + rng.index(9);
    for (std::size_t i = 0; i < n; ++i) {
      sizes.push_back(40 + std::uint32_t(rng.index(1461)));
      to_victim.push_back(rng.index(5) != 0);
      uids.push_back(next_uid++);
    }
    sim.schedule_at(t, [&, sizes, to_victim, uids] {
      std::vector<sim::PacketPtr> span_pkts;
      for (std::size_t i = 0; i < sizes.size(); ++i) {
        const util::Addr dst = to_victim[i] ? kVictim : kOther;
        auto one = victim_packet(dst, sizes[i]);
        one->uid = uids[i];
        per_packet.recv(std::move(one));
        auto two = victim_packet(dst, sizes[i]);
        two->uid = uids[i];
        span_pkts.push_back(std::move(two));
      }
      burst.recv_burst(span_pkts.data(), span_pkts.size());
    });
  }
  sim.run();

  EXPECT_GT(seq_a.size(), 0u);
  bool any_drop = false;
  for (const auto& [uid, v] : seq_a) any_drop = any_drop || v == 'D';
  EXPECT_TRUE(any_drop);  // the bucket did bind
  EXPECT_EQ(seq_a, seq_b);
  EXPECT_EQ(per_packet.stats().offered, burst.stats().offered);
  EXPECT_EQ(per_packet.stats().forwarded, burst.stats().forwarded);
  EXPECT_EQ(per_packet.stats().dropped, burst.stats().dropped);
}

TEST(AggregateLimiter, BurstAllowsShortSpikes) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 8000;  // 1 kB/s refill
  cfg.burst_bytes = 5000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});
  std::uint64_t forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    std::uint64_t* n_;
  } sink(&forwarded);
  lim.set_target(&sink);
  for (int i = 0; i < 10; ++i) lim.recv(victim_packet(kVictim, 1000));
  EXPECT_EQ(forwarded, 5u);  // exactly the bucket depth
}

}  // namespace
}  // namespace mafic::baseline
