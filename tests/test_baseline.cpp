#include <gtest/gtest.h>

#include "baseline/aggregate_limiter.hpp"
#include "baseline/proportional_dropper.hpp"
#include "sim/simulator.hpp"

namespace mafic::baseline {
namespace {

sim::PacketPtr victim_packet(util::Addr dst, std::uint32_t bytes = 1000) {
  auto p = std::make_unique<sim::Packet>();
  p->label = sim::FlowLabel{util::make_addr(172, 16, 0, 1), dst, 1000, 80};
  p->size_bytes = bytes;
  return p;
}

constexpr util::Addr kVictim = util::make_addr(172, 17, 0, 1);
constexpr util::Addr kOther = util::make_addr(172, 17, 0, 2);

TEST(ProportionalDropper, InactiveForwardsAll) {
  ProportionalDropper d(0.9, util::Rng(1));
  int forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(int* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    int* n_;
  } sink(&forwarded);
  d.set_target(&sink);
  for (int i = 0; i < 100; ++i) d.recv(victim_packet(kVictim));
  EXPECT_EQ(forwarded, 100);
  EXPECT_EQ(d.stats().offered, 0u);
}

TEST(ProportionalDropper, DropsAtConfiguredProbability) {
  ProportionalDropper d(0.7, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler([&](const sim::Packet&, sim::DropReason r,
                         sim::NodeId) {
    EXPECT_EQ(r, sim::DropReason::kDefenseBaseline);
    ++drops;
  });
  const int n = 20000;
  for (int i = 0; i < n; ++i) d.recv(victim_packet(kVictim));
  EXPECT_NEAR(double(drops) / n, 0.7, 0.02);
  EXPECT_EQ(d.stats().offered, std::uint64_t(n));
  EXPECT_EQ(d.stats().dropped + d.stats().forwarded, std::uint64_t(n));
}

TEST(ProportionalDropper, FlowBlindness) {
  // The defining weakness vs MAFIC: it keeps dropping forever, from every
  // flow alike, with no classification.
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  const int early = drops;
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  // Still dropping at the same rate much later.
  EXPECT_NEAR(double(drops - early), double(early), 100.0);
}

TEST(ProportionalDropper, OtherDestinationsUntouched) {
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kOther));
  EXPECT_EQ(drops, 0);
  EXPECT_EQ(d.stats().offered, 0u);
}

TEST(ProportionalDropper, DeactivateStopsDropping) {
  ProportionalDropper d(0.9, util::Rng(3));
  d.activate({kVictim});
  d.deactivate();
  int drops = 0;
  d.set_drop_handler(
      [&](const sim::Packet&, sim::DropReason, sim::NodeId) { ++drops; });
  for (int i = 0; i < 1000; ++i) d.recv(victim_packet(kVictim));
  EXPECT_EQ(drops, 0);
}

TEST(AggregateLimiter, EnforcesRateLimit) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 1e6;  // 125 kB/s
  cfg.burst_bytes = 2000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});

  std::uint64_t forwarded_bytes = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* b) : b_(b) {}
    void recv(sim::PacketPtr p) override { *b_ += p->size_bytes; }
    std::uint64_t* b_;
  } sink(&forwarded_bytes);
  lim.set_target(&sink);

  // Offer 10 Mb/s for 1 second via scheduled arrivals.
  for (int i = 0; i < 1250; ++i) {
    sim.schedule_at(i * 0.0008, [&lim] {
      lim.recv(victim_packet(kVictim, 1000));
    });
  }
  sim.run();
  // Forwarded ~ limit * duration = 125 kB (+ burst).
  EXPECT_NEAR(double(forwarded_bytes), 125e3, 15e3);
  EXPECT_GT(lim.stats().dropped, 1000u);
}

TEST(AggregateLimiter, UnderLimitTrafficPasses) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 10e6;
  cfg.burst_bytes = 4000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});
  std::uint64_t forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    std::uint64_t* n_;
  } sink(&forwarded);
  lim.set_target(&sink);
  for (int i = 0; i < 500; ++i) {
    sim.schedule_at(i * 0.002, [&lim] {  // 4 Mb/s offered
      lim.recv(victim_packet(kVictim, 1000));
    });
  }
  sim.run();
  EXPECT_EQ(forwarded, 500u);
  EXPECT_EQ(lim.stats().dropped, 0u);
}

TEST(AggregateLimiter, BurstAllowsShortSpikes) {
  sim::Simulator sim;
  AggregateLimiter::Config cfg;
  cfg.limit_bps = 8000;  // 1 kB/s refill
  cfg.burst_bytes = 5000;
  AggregateLimiter lim(&sim, cfg);
  lim.activate({kVictim});
  std::uint64_t forwarded = 0;
  class Count final : public sim::Connector {
   public:
    explicit Count(std::uint64_t* n) : n_(n) {}
    void recv(sim::PacketPtr) override { ++*n_; }
    std::uint64_t* n_;
  } sink(&forwarded);
  lim.set_target(&sink);
  for (int i = 0; i < 10; ++i) lim.recv(victim_packet(kVictim, 1000));
  EXPECT_EQ(forwarded, 5u);  // exactly the bucket depth
}

}  // namespace
}  // namespace mafic::baseline
