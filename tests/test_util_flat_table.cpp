#include "util/flat_table.hpp"

#include <gtest/gtest.h>

#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace mafic::util {
namespace {

TEST(FlatTable, EmptyFindsNothing) {
  FlatTable<int> t(16);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.find(42), nullptr);
  EXPECT_FALSE(t.contains(42));
}

TEST(FlatTable, InsertFindRoundtrip) {
  FlatTable<int> t(16);
  auto [v, inserted] = t.insert(42);
  ASSERT_TRUE(inserted);
  *v = 7;
  EXPECT_EQ(t.size(), 1u);
  ASSERT_NE(t.find(42), nullptr);
  EXPECT_EQ(*t.find(42), 7);
}

TEST(FlatTable, DuplicateInsertReturnsExisting) {
  FlatTable<int> t(16);
  *t.insert(42).first = 7;
  auto [v, inserted] = t.insert(42);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable, EraseRemovesOnlyTarget) {
  FlatTable<int> t(64);
  for (std::uint64_t k = 0; k < 32; ++k) *t.insert(k).first = int(k);
  EXPECT_TRUE(t.erase(17));
  EXPECT_FALSE(t.erase(17));  // already gone
  EXPECT_EQ(t.size(), 31u);
  for (std::uint64_t k = 0; k < 32; ++k) {
    if (k == 17) {
      EXPECT_EQ(t.find(k), nullptr);
    } else {
      ASSERT_NE(t.find(k), nullptr) << k;
      EXPECT_EQ(*t.find(k), int(k));
    }
  }
}

TEST(FlatTable, EraseMissingKeyIsHarmless) {
  FlatTable<int> t(16);
  t.insert(1);
  EXPECT_FALSE(t.erase(999));
  EXPECT_EQ(t.size(), 1u);
}

TEST(FlatTable, ClearEmptiesEverything) {
  FlatTable<int> t(64);
  for (std::uint64_t k = 0; k < 20; ++k) t.insert(k);
  t.clear();
  EXPECT_TRUE(t.empty());
  for (std::uint64_t k = 0; k < 20; ++k) EXPECT_EQ(t.find(k), nullptr);
  // Usable again after clear.
  *t.insert(5).first = 50;
  EXPECT_EQ(*t.find(5), 50);
}

TEST(FlatTable, GrowsToBoundAndHoldsMaxEntries) {
  FlatTable<int> t(1000, 0.8);
  for (std::uint64_t k = 0; k < 1000; ++k) *t.insert(k).first = int(k);
  EXPECT_EQ(t.size(), 1000u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_NE(t.find(k), nullptr) << k;
    EXPECT_EQ(*t.find(k), int(k));
  }
}

TEST(FlatTable, SlotArrayStopsGrowingAtBound) {
  FlatTable<int> t(100, 0.8);
  for (std::uint64_t k = 0; k < 100; ++k) t.insert(k);
  const std::size_t slots = t.slot_count();
  // Delete + reinsert cycles must not grow the backing array further.
  for (int round = 1; round <= 10; ++round) {
    for (std::uint64_t k = 0; k < 100; ++k) {
      ASSERT_TRUE(t.erase(k + 1000 * (round - 1)));
    }
    for (std::uint64_t k = 0; k < 100; ++k) t.insert(k + 1000 * round);
  }
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.slot_count(), slots);
}

TEST(FlatTable, ForEachVisitsEveryEntry) {
  FlatTable<int> t(64);
  for (std::uint64_t k = 10; k < 20; ++k) *t.insert(k).first = int(k * 2);
  std::unordered_map<std::uint64_t, int> seen;
  t.for_each([&](std::uint64_t key, const int& v) { seen[key] = v; });
  EXPECT_EQ(seen.size(), 10u);
  for (std::uint64_t k = 10; k < 20; ++k) EXPECT_EQ(seen[k], int(k * 2));
}

TEST(FlatTable, RobinHoodKeepsProbesShortAtHighLoad) {
  FlatTable<int> t(10000, 0.9);
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) t.insert(rng.next());
  // Robin-hood bounds probe-length variance; at 0.9 load the longest
  // probe sequence stays small (a plain linear probe would show spikes
  // in the hundreds).
  EXPECT_LE(t.max_probe_length(), 64u);
}

/// Churn fuzz against a reference map: interleaved insert/erase/find must
/// agree with std::unordered_map at every step.
TEST(FlatTable, FuzzAgainstReferenceMap) {
  FlatTable<std::uint64_t> t(512);
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(1234);
  for (int step = 0; step < 50000; ++step) {
    const std::uint64_t key = rng.uniform_int(0, 700);  // force collisions
    switch (rng.uniform_int(0, 2)) {
      case 0: {  // insert (bounded)
        if (ref.size() < 512 && !ref.contains(key)) {
          const std::uint64_t value = rng.next();
          *t.insert(key).first = value;
          ref[key] = value;
        }
        break;
      }
      case 1: {  // erase
        EXPECT_EQ(t.erase(key), ref.erase(key) > 0) << "step " << step;
        break;
      }
      case 2: {  // find
        const auto it = ref.find(key);
        auto* v = t.find(key);
        if (it == ref.end()) {
          EXPECT_EQ(v, nullptr) << "step " << step;
        } else {
          ASSERT_NE(v, nullptr) << "step " << step;
          EXPECT_EQ(*v, it->second) << "step " << step;
        }
        break;
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
}

}  // namespace
}  // namespace mafic::util
