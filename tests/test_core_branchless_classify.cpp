// The branchless SoA verdict pipeline (core/verdict_pipeline.hpp) is an
// execution strategy, not a semantic change: every batched entry point
// must produce the bit-identical verdict stream, table trajectory, and
// stats that per-packet FilterEngine::inspect() produces from the same
// packets. These tests hammer that contract with randomized spans under
// table churn (probation resolution, capacity eviction, NFT
// revalidation expiry, refresh lapse + reactivation), across both coin
// modes and shard counts 1/2/4/8, through all three batch shapes
// (contiguous, indirect span, keyed-with-sequencer). A fixed-seed
// golden then pins the verdict stream itself, so a divergence that
// happens to cancel out in aggregate counters still fails loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/filter_engine.hpp"
#include "core/sharded_filter.hpp"
#include "core/standalone_runtime.hpp"

namespace mafic::core {
namespace {

sim::Packet packet_for(std::uint32_t flow, std::uint8_t victim_octet = 1) {
  sim::Packet p;
  p.label = {util::make_addr(172, 16, (flow >> 8) & 0xff, flow & 0xff),
             util::make_addr(172, 17, 0, victim_octet),
             std::uint16_t(1024 + flow), 80};
  p.proto = sim::Protocol::kTcp;
  p.size_bytes = 1000;
  return p;
}

/// Churn-heavy config: SFT small enough that the flow pool overflows it
/// (capacity eviction on most admissions), short probation windows so
/// decisions resolve inside the run, and NFT revalidation so nice flows
/// cycle back into probation — every structural-mutation path the
/// pipeline's epoch re-check guards.
MaficConfig churn_config(CoinMode mode) {
  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation windows
  cfg.probe_enabled = true;
  cfg.drop_probability = 0.9;
  cfg.coin_mode = mode;
  cfg.coin_seed = 0xc0117;
  cfg.sft_capacity = 48;
  cfg.nft_revalidation_interval = 0.3;
  return cfg;
}

/// One randomized packet: skewed flow pool (min of two uniform draws),
/// a sprinkle of non-victim and control packets to exercise the batch
/// gate, distinct uids so the kPacketHash coin actually varies
/// per packet.
sim::Packet random_packet(util::Rng& rng, std::uint32_t pool,
                          std::uint64_t uid) {
  const auto a = static_cast<std::uint32_t>(rng.index(pool));
  const auto b = static_cast<std::uint32_t>(rng.index(pool));
  const std::uint8_t octet = rng.bernoulli(0.1) ? 99 : 1;
  sim::Packet p = packet_for(a < b ? a : b, octet);
  if (rng.bernoulli(0.05)) p.proto = sim::Protocol::kControl;
  p.uid = uid;
  return p;
}

/// Bit-identity across strategies implies the whole table trajectory
/// matched, not just the final sizes — admissions, evictions, moves,
/// and expirations are all monotone counters.
void expect_tables_match(const FlowTables& a, const FlowTables& b) {
  EXPECT_EQ(a.sft_size(), b.sft_size());
  EXPECT_EQ(a.nft_size(), b.nft_size());
  EXPECT_EQ(a.pdt_size(), b.pdt_size());
  const auto sa = a.stats();
  const auto sb = b.stats();
  EXPECT_EQ(sa.sft_admissions, sb.sft_admissions);
  EXPECT_EQ(sa.sft_evictions, sb.sft_evictions);
  EXPECT_EQ(sa.moved_to_nft, sb.moved_to_nft);
  EXPECT_EQ(sa.moved_to_pdt, sb.moved_to_pdt);
  EXPECT_EQ(sa.direct_pdt, sb.direct_pdt);
  EXPECT_EQ(sa.nft_expirations, sb.nft_expirations);
  EXPECT_EQ(sa.flushes, sb.flushes);
}

// ---------------------------------------------------------------------
// Contiguous inspect_batch vs scalar inspect, single engine, both coin
// modes, with a refresh lapse (flush) and reactivation mid-run.
// ---------------------------------------------------------------------

class BranchlessContiguous : public ::testing::TestWithParam<CoinMode> {};

TEST_P(BranchlessContiguous, MatchesScalarUnderChurn) {
  MaficConfig cfg = churn_config(GetParam());
  cfg.refresh_timeout = 0.25;
  EngineRuntime scalar_rt(cfg, nullptr, util::Rng(777));
  EngineRuntime batch_rt(cfg, nullptr, util::Rng(777));
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};
  scalar_rt.engine().activate(victims);
  batch_rt.engine().activate(victims);

  util::Rng traffic(31337);
  std::uint64_t uid = 1;
  std::vector<sim::Packet> burst;
  std::vector<EngineVerdict> scalar_v;
  std::vector<EngineVerdict> batch_v;

  double now = 0.0;
  for (int round = 0; round < 160; ++round) {
    // Span sizes sweep 1..96: sub-window spans, exact windows, and
    // multi-window batches all occur.
    const std::size_t n = 1 + traffic.index(96);
    burst.clear();
    for (std::size_t i = 0; i < n; ++i) {
      burst.push_back(random_packet(traffic, 200, uid++));
    }
    scalar_v.resize(n);
    batch_v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scalar_v[i] = scalar_rt.engine().inspect(burst[i]);
    }
    batch_rt.engine().inspect_batch(burst.data(), n, batch_v.data());
    ASSERT_EQ(scalar_v, batch_v) << "round " << round;

    now += 0.004;
    scalar_rt.advance_until(now);
    batch_rt.advance_until(now);
    if (round == 30) {  // keep-alive once...
      scalar_rt.engine().refresh();
      batch_rt.engine().refresh();
    }
    if (round == 100) {  // ...then the lapse has flushed; re-arm.
      ASSERT_FALSE(scalar_rt.engine().active());
      ASSERT_EQ(scalar_rt.engine().active(), batch_rt.engine().active());
      scalar_rt.engine().activate(victims);
      batch_rt.engine().activate(victims);
    }
  }

  expect_tables_match(scalar_rt.engine().tables(),
                      batch_rt.engine().tables());
  EXPECT_EQ(scalar_rt.engine().stats().offered,
            batch_rt.engine().stats().offered);
  EXPECT_EQ(scalar_rt.engine().stats().dropped_probation,
            batch_rt.engine().stats().dropped_probation);
  EXPECT_EQ(scalar_rt.engine().stats().dropped_pdt,
            batch_rt.engine().stats().dropped_pdt);
  EXPECT_EQ(scalar_rt.engine().stats().decided_nice,
            batch_rt.engine().stats().decided_nice);
  EXPECT_EQ(scalar_rt.engine().stats().decided_malicious,
            batch_rt.engine().stats().decided_malicious);
  EXPECT_EQ(scalar_rt.probes().probes_sent(), batch_rt.probes().probes_sent());
}

INSTANTIATE_TEST_SUITE_P(CoinModes, BranchlessContiguous,
                         ::testing::Values(CoinMode::kEngineStream,
                                           CoinMode::kPacketHash),
                         [](const auto& info) {
                           return info.param == CoinMode::kEngineStream
                                      ? "EngineStream"
                                      : "PacketHash";
                         });

// ---------------------------------------------------------------------
// Indirect-span inspect_batch vs scalar inspect across shard counts.
// The pipeline's interleaved arrival-order verdict pass must preserve
// per-engine inspection order (and so the stream-coin draw order) no
// matter how the span scatters across shards.
// ---------------------------------------------------------------------

struct ShardCase {
  std::size_t shards;
  CoinMode mode;
};

class BranchlessSharded : public ::testing::TestWithParam<ShardCase> {};

TEST_P(BranchlessSharded, MatchesScalarUnderChurn) {
  const auto [shards, mode] = GetParam();
  const MaficConfig cfg = churn_config(mode);
  constexpr std::uint64_t kSeed = 20260809;
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};

  ShardedFilter scalar(shards, cfg, nullptr, kSeed);
  ShardedFilter batched(shards, cfg, nullptr, kSeed);
  scalar.activate(victims);
  batched.activate(victims);

  util::Rng traffic(0xfeed ^ shards);
  std::uint64_t uid = 1;
  std::vector<sim::Packet> storage;
  std::vector<const sim::Packet*> span;
  std::vector<EngineVerdict> scalar_v;
  std::vector<EngineVerdict> batch_v;

  double now = 0.0;
  for (int round = 0; round < 120; ++round) {
    const std::size_t n = 1 + traffic.index(80);
    storage.clear();
    span.clear();
    for (std::size_t i = 0; i < n; ++i) {
      storage.push_back(random_packet(traffic, 160, uid++));
    }
    for (const auto& p : storage) span.push_back(&p);
    scalar_v.resize(n);
    batch_v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scalar_v[i] = scalar.inspect(storage[i]);
    }
    batched.inspect_batch(span.data(), n, batch_v.data());
    ASSERT_EQ(scalar_v, batch_v)
        << "round " << round << " shards " << shards;

    now += 0.005;
    scalar.advance_until(now);
    batched.advance_until(now);
  }

  for (std::size_t s = 0; s < shards; ++s) {
    expect_tables_match(scalar.engine(s).tables(),
                        batched.engine(s).tables());
    EXPECT_EQ(scalar.engine(s).stats().dropped_probation,
              batched.engine(s).stats().dropped_probation)
        << "shard " << s;
  }
  EXPECT_EQ(scalar.aggregate_stats().decided_nice,
            batched.aggregate_stats().decided_nice);
  EXPECT_EQ(scalar.aggregate_stats().decided_malicious,
            batched.aggregate_stats().decided_malicious);
}

INSTANTIATE_TEST_SUITE_P(
    ShardGrid, BranchlessSharded,
    ::testing::Values(ShardCase{1, CoinMode::kEngineStream},
                      ShardCase{2, CoinMode::kEngineStream},
                      ShardCase{4, CoinMode::kEngineStream},
                      ShardCase{8, CoinMode::kEngineStream},
                      ShardCase{1, CoinMode::kPacketHash},
                      ShardCase{2, CoinMode::kPacketHash},
                      ShardCase{4, CoinMode::kPacketHash},
                      ShardCase{8, CoinMode::kPacketHash}),
    [](const auto& info) {
      return std::string("s") + std::to_string(info.param.shards) +
             (info.param.mode == CoinMode::kEngineStream ? "_EngineStream"
                                                         : "_PacketHash");
    });

// ---------------------------------------------------------------------
// Keyed path: pre-hashed keys + span indices through a sequencer, as
// the speculative journal merge drives it. Verdicts must match scalar
// and begin_packet must announce strictly increasing span indices.
// ---------------------------------------------------------------------

class RecordingSequencer final : public BatchSequencer {
 public:
  void begin_packet(std::uint32_t span_index) override {
    indices.push_back(span_index);
  }
  std::vector<std::uint32_t> indices;
};

TEST(BranchlessKeyed, SequencedSpansMatchScalar) {
  const MaficConfig cfg = churn_config(CoinMode::kPacketHash);
  EngineRuntime scalar_rt(cfg, nullptr, util::Rng(99));
  EngineRuntime keyed_rt(cfg, nullptr, util::Rng(99));
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};
  scalar_rt.engine().activate(victims);
  keyed_rt.engine().activate(victims);

  util::Rng traffic(4242);
  std::uint64_t uid = 1;
  std::vector<sim::Packet> storage;
  std::vector<const sim::Packet*> span;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> span_idx;
  std::vector<EngineVerdict> scalar_v;
  std::vector<EngineVerdict> keyed_v;

  double now = 0.0;
  for (int round = 0; round < 100; ++round) {
    const std::size_t n = 1 + traffic.index(70);
    storage.clear();
    span.clear();
    keys.clear();
    span_idx.clear();
    for (std::size_t i = 0; i < n; ++i) {
      // The keyed caller (the journal path) only forwards gated
      // packets, so feed victim-bound TCP only and pre-hash the label.
      sim::Packet p = random_packet(traffic, 160, uid++);
      p.label.dst = util::make_addr(172, 17, 0, 1);
      p.proto = sim::Protocol::kTcp;
      storage.push_back(p);
    }
    for (std::size_t i = 0; i < n; ++i) {
      span.push_back(&storage[i]);
      keys.push_back(sim::hash_label(storage[i].label));
      span_idx.push_back(static_cast<std::uint32_t>(i));
    }
    scalar_v.resize(n);
    keyed_v.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      scalar_v[i] = scalar_rt.engine().inspect(storage[i]);
    }
    RecordingSequencer seq;
    keyed_rt.engine().inspect_batch_keyed(span.data(), keys.data(),
                                          span_idx.data(), n,
                                          keyed_v.data(), &seq);
    ASSERT_EQ(scalar_v, keyed_v) << "round " << round;
    for (std::size_t i = 1; i < seq.indices.size(); ++i) {
      ASSERT_LT(seq.indices[i - 1], seq.indices[i]) << "round " << round;
    }
    if (!seq.indices.empty()) ASSERT_LT(seq.indices.back(), n);

    now += 0.004;
    scalar_rt.advance_until(now);
    keyed_rt.advance_until(now);
  }

  expect_tables_match(scalar_rt.engine().tables(),
                      keyed_rt.engine().tables());
  EXPECT_EQ(scalar_rt.engine().stats().dropped_probation,
            keyed_rt.engine().stats().dropped_probation);
}

// ---------------------------------------------------------------------
// Fixed-seed golden: the verdict stream itself, fingerprinted. Catches
// any semantic drift in the pipeline (or in scalar classify) even when
// a change happens to leave the aggregate counters balanced. If a PR
// changes these values it changed classification behaviour and must say
// so (and re-pin) explicitly.
// ---------------------------------------------------------------------

std::uint64_t fnv1a(const std::vector<EngineVerdict>& verdicts) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const EngineVerdict v : verdicts) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 0x100000001b3ULL;
  }
  return h;
}

struct GoldenResult {
  std::uint64_t fingerprint;
  std::uint64_t dropped_probation;
  std::uint64_t decided_nice;
  std::uint64_t decided_malicious;
};

GoldenResult run_golden(CoinMode mode) {
  const MaficConfig cfg = churn_config(mode);
  ShardedFilter filter(2, cfg, nullptr, /*seed=*/0x601d);
  filter.activate({util::make_addr(172, 17, 0, 1)});

  util::Rng traffic(0x601d);
  std::uint64_t uid = 1;
  std::vector<sim::Packet> storage;
  std::vector<const sim::Packet*> span;
  std::vector<EngineVerdict> out;
  std::vector<EngineVerdict> all;

  double now = 0.0;
  for (int round = 0; round < 80; ++round) {
    const std::size_t n = 1 + traffic.index(64);
    storage.clear();
    span.clear();
    for (std::size_t i = 0; i < n; ++i) {
      storage.push_back(random_packet(traffic, 120, uid++));
    }
    for (const auto& p : storage) span.push_back(&p);
    out.resize(n);
    filter.inspect_batch(span.data(), n, out.data());
    all.insert(all.end(), out.begin(), out.end());
    now += 0.005;
    filter.advance_until(now);
  }
  filter.advance_until(1.0);

  const auto agg = filter.aggregate_stats();
  return {fnv1a(all), agg.dropped_probation, agg.decided_nice,
          agg.decided_malicious};
}

TEST(BranchlessGolden, PacketHashVerdictStreamIsPinned) {
  const GoldenResult g = run_golden(CoinMode::kPacketHash);
  EXPECT_EQ(g.fingerprint, 2083878525354845561ULL);
  EXPECT_EQ(g.dropped_probation, 638ULL);
  EXPECT_EQ(g.decided_nice, 91ULL);
  EXPECT_EQ(g.decided_malicious, 32ULL);
}

TEST(BranchlessGolden, EngineStreamVerdictStreamIsPinned) {
  const GoldenResult g = run_golden(CoinMode::kEngineStream);
  EXPECT_EQ(g.fingerprint, 11548316698728888565ULL);
  EXPECT_EQ(g.dropped_probation, 614ULL);
  EXPECT_EQ(g.decided_nice, 84ULL);
  EXPECT_EQ(g.decided_malicious, 37ULL);
}

}  // namespace
}  // namespace mafic::core
