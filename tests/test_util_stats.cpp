#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mafic::util {
namespace {

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.push(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.push(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of the classic example is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.push(1.0);
  s.push(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.initialized());
  e.update(10.0);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.25);
  e.update(0.0);
  for (int i = 0; i < 100; ++i) e.update(8.0);
  EXPECT_NEAR(e.value(), 8.0, 1e-6);
}

TEST(Ewma, StepResponse) {
  Ewma e(0.5);
  e.update(0.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, ResetForgets) {
  Ewma e(0.5);
  e.update(10.0);
  e.reset();
  EXPECT_FALSE(e.initialized());
  e.update(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(Percentile, EmptyIsNaN) {
  EXPECT_TRUE(std::isnan(percentile({}, 0.5)));
}

TEST(Percentile, MedianAndExtremes) {
  std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
}

TEST(Percentile, Interpolates) {
  std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 0.75), 7.5);
}

TEST(Percentile, ClampsQuantile) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.5), 3.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamped to bin 0
  h.add(42.0);  // clamped to bin 9
  EXPECT_DOUBLE_EQ(h.bins()[0], 2.0);
  EXPECT_DOUBLE_EQ(h.bins()[9], 2.0);
  EXPECT_DOUBLE_EQ(h.total(), 4.0);
}

TEST(Histogram, WeightedSamples) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.5, 2.5);
  EXPECT_DOUBLE_EQ(h.bins()[1], 2.5);
  EXPECT_DOUBLE_EQ(h.total(), 2.5);
}

TEST(Histogram, ZeroBinRequestIsSafe) {
  Histogram h(0.0, 1.0, 0);
  h.add(0.5);
  EXPECT_EQ(h.bins().size(), 1u);
}

}  // namespace
}  // namespace mafic::util
