#include <gtest/gtest.h>

#include "sim/network.hpp"
#include "topology/topology.hpp"
#include "transport/cbr.hpp"
#include "transport/udp.hpp"

namespace mafic::transport {
namespace {

class CbrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    topology::DumbbellConfig cfg;
    cfg.left_hosts = 1;
    cfg.right_hosts = 1;
    bell = topology::build_dumbbell(*net, cfg);
    src_node = net->node(bell.left_hosts[0]);
    dst_node = net->node(bell.right_hosts[0]);
    sink = std::make_unique<UdpSink>(&sim, &factory, dst_node, 80);
  }

  CbrSource::Config cbr_cfg(double rate, std::uint32_t bytes,
                            double jitter = 0.0) {
    CbrSource::Config c;
    c.rate_bps = rate;
    c.packet_bytes = bytes;
    c.jitter_fraction = jitter;
    return c;
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  topology::Dumbbell bell;
  sim::Node* src_node{};
  sim::Node* dst_node{};
  std::unique_ptr<UdpSink> sink;
};

TEST_F(CbrTest, RateIsAccurateWithoutJitter) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 1000),
                util::Rng(1));
  src.connect(dst_node->addr(), 80);
  src.start();
  sim.run_until(5.0);
  src.stop();
  // 800 kb/s / 8000 bits = 100 pkt/s over 5 s = 500 packets.
  EXPECT_NEAR(double(src.packets_sent()), 500.0, 10.0);
  EXPECT_NEAR(double(sink->packets_received()), 500.0, 10.0);
}

TEST_F(CbrTest, RateHoldsUnderJitter) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 1000, 0.2),
                util::Rng(7));
  src.connect(dst_node->addr(), 80);
  src.start();
  sim.run_until(5.0);
  EXPECT_NEAR(double(src.packets_sent()), 500.0, 25.0);
}

TEST_F(CbrTest, StopHaltsEmission) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 1000),
                util::Rng(1));
  src.connect(dst_node->addr(), 80);
  src.start();
  sim.run_until(1.0);
  src.stop();
  const auto sent = src.packets_sent();
  sim.run_until(3.0);
  EXPECT_EQ(src.packets_sent(), sent);
}

TEST_F(CbrTest, RestartResumes) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 1000),
                util::Rng(1));
  src.connect(dst_node->addr(), 80);
  src.start();
  sim.run_until(1.0);
  src.stop();
  const auto sent = src.packets_sent();
  src.start();
  sim.run_until(2.0);
  EXPECT_GT(src.packets_sent(), sent);
}

TEST_F(CbrTest, IgnoresIncomingPackets) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 1000),
                util::Rng(1));
  src.connect(dst_node->addr(), 80);
  auto p = factory.make();
  p->label = src.label().reversed();
  src.recv(std::move(p));
  EXPECT_EQ(src.ignored_packets(), 1u);
}

TEST_F(CbrTest, UdpSenderStampsSequentialSeqs) {
  UdpSender src(&sim, &factory, src_node, 5000);
  src.connect(dst_node->addr(), 80);
  std::vector<std::uint32_t> seqs;
  sink->set_observer([&](const sim::Packet& p) { seqs.push_back(p.seq); });
  src.send_datagram(500);
  src.send_datagram(500);
  src.send_datagram(500);
  sim.run();
  EXPECT_EQ(seqs, (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(sink->bytes_received(), 1500u);
}

TEST_F(CbrTest, PacketsCarryFlowIdAndLabel) {
  CbrSource src(&sim, &factory, src_node, 5000, cbr_cfg(800e3, 500),
                util::Rng(1));
  src.connect(dst_node->addr(), 80);
  src.set_flow_id(77);
  bool checked = false;
  sink->set_observer([&](const sim::Packet& p) {
    EXPECT_EQ(p.flow_id, 77u);
    EXPECT_EQ(p.label.src, src_node->addr());
    EXPECT_EQ(p.label.dport, 80);
    EXPECT_EQ(p.proto, sim::Protocol::kUdp);
    checked = true;
  });
  src.start();
  sim.run_until(0.5);
  EXPECT_TRUE(checked);
}

}  // namespace
}  // namespace mafic::transport
