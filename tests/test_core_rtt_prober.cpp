#include <gtest/gtest.h>

#include "core/prober.hpp"
#include "core/rtt_estimator.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {
namespace {

TEST(RttEstimator, DefaultWhenUnobserved) {
  MaficConfig cfg;
  RttEstimator est(cfg);
  EXPECT_DOUBLE_EQ(est.rtt(1), cfg.default_rtt);
  EXPECT_FALSE(est.has_estimate(1));
}

TEST(RttEstimator, AppliesCorrectionFactor) {
  MaficConfig cfg;
  cfg.rtt_correction = 2.0;
  cfg.rtt_ewma_alpha = 1.0;  // track the last sample exactly
  RttEstimator est(cfg);
  est.observe(1, 0.03);  // raw half-path sample
  EXPECT_NEAR(est.rtt(1), 0.06, 1e-12);
}

TEST(RttEstimator, ClampsToConfiguredRange) {
  MaficConfig cfg;
  cfg.rtt_ewma_alpha = 1.0;
  RttEstimator est(cfg);
  est.observe(1, 0.004);  // corrected 0.008 < min_rtt
  EXPECT_DOUBLE_EQ(est.rtt(1), cfg.min_rtt);
  est.observe(2, 0.15);  // corrected 0.3 > max_rtt
  EXPECT_DOUBLE_EQ(est.rtt(2), cfg.max_rtt);
}

TEST(RttEstimator, RejectsGarbage) {
  MaficConfig cfg;
  RttEstimator est(cfg);
  est.observe(1, -0.5);
  est.observe(1, 0.0);
  est.observe(1, 100.0);  // stale echo way past max_rtt * 4
  EXPECT_FALSE(est.has_estimate(1));
}

TEST(RttEstimator, EwmaSmoothes) {
  MaficConfig cfg;
  cfg.rtt_correction = 1.0;
  cfg.rtt_ewma_alpha = 0.5;
  RttEstimator est(cfg);
  est.observe(1, 0.05);
  est.observe(1, 0.09);
  EXPECT_NEAR(est.rtt(1), 0.07, 1e-12);
}

TEST(RttEstimator, PerFlowIsolation) {
  MaficConfig cfg;
  cfg.rtt_correction = 1.0;
  cfg.rtt_ewma_alpha = 1.0;
  RttEstimator est(cfg);
  est.observe(1, 0.05);
  est.observe(2, 0.09);
  EXPECT_NEAR(est.rtt(1), 0.05, 1e-12);
  EXPECT_NEAR(est.rtt(2), 0.09, 1e-12);
  EXPECT_EQ(est.tracked_flows(), 2u);
  est.clear();
  EXPECT_EQ(est.tracked_flows(), 0u);
}

class ProberTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net = std::make_unique<sim::Network>(&sim);
    host = net->add_host(util::make_addr(172, 16, 0, 1));
    router = net->add_router(util::make_addr(10, 0, 0, 1));
    net->add_duplex(router->id(), host->id(), {});
    net->build_routes();
  }

  sim::Simulator sim;
  sim::PacketFactory factory;
  std::unique_ptr<sim::Network> net;
  sim::Node* host{};
  sim::Node* router{};
};

TEST_F(ProberTest, EmitsConfiguredDupAcks) {
  MaficConfig cfg;
  cfg.probe_dup_acks = 3;
  cfg.probe_spacing_s = 0.001;
  Prober prober(&sim, &factory, router, cfg);

  class Capture final : public sim::PacketHandler {
   public:
    void recv(sim::PacketPtr p) override {
      packets.push_back(std::move(p));
    }
    std::vector<sim::PacketPtr> packets;
  } capture;
  host->bind_port(5000, &capture);

  // A suspicious flow from the host toward some victim.
  const sim::FlowLabel flow{host->addr(), util::make_addr(172, 17, 0, 1),
                            5000, 80};
  prober.probe(flow);
  sim.run();

  ASSERT_EQ(capture.packets.size(), 3u);
  for (const auto& p : capture.packets) {
    EXPECT_TRUE(p->probe);
    EXPECT_EQ(p->proto, sim::Protocol::kTcp);
    EXPECT_TRUE(p->has_flag(sim::tcp_flags::kAck));
    EXPECT_EQ(p->ack_no, 0u);
    // Reverse label: pretends to come from the victim.
    EXPECT_EQ(p->label.src, flow.dst);
    EXPECT_EQ(p->label.dst, flow.src);
    EXPECT_EQ(p->label.sport, flow.dport);
    EXPECT_EQ(p->label.dport, flow.sport);
  }
  EXPECT_EQ(prober.probes_issued(), 1u);
  EXPECT_EQ(prober.probe_packets_sent(), 3u);
}

TEST_F(ProberTest, ProbeToUnboundPortIsHarmless) {
  MaficConfig cfg;
  Prober prober(&sim, &factory, router, cfg);
  int unbound = 0;
  net->set_drop_handler([&](const sim::Packet& p, sim::DropReason r,
                            sim::NodeId) {
    if (r == sim::DropReason::kUnboundPort) {
      EXPECT_TRUE(p.probe);
      ++unbound;
    }
  });
  const sim::FlowLabel flow{host->addr(), util::make_addr(172, 17, 0, 1),
                            4321, 80};  // nobody listens on 4321
  prober.probe(flow);
  sim.run();
  EXPECT_EQ(unbound, 3);
}

TEST_F(ProberTest, ProbeToUnroutableSourceDropsSilently) {
  MaficConfig cfg;
  Prober prober(&sim, &factory, router, cfg);
  int noroute = 0;
  net->set_drop_handler([&](const sim::Packet&, sim::DropReason r,
                            sim::NodeId) {
    noroute += (r == sim::DropReason::kNoRoute);
  });
  const sim::FlowLabel flow{util::make_addr(203, 0, 113, 7),
                            util::make_addr(172, 17, 0, 1), 5000, 80};
  prober.probe(flow);
  sim.run();
  EXPECT_EQ(noroute, 3);
}

TEST_F(ProberTest, SpacingSeparatesEmissions) {
  MaficConfig cfg;
  cfg.probe_dup_acks = 3;
  cfg.probe_spacing_s = 0.01;
  Prober prober(&sim, &factory, router, cfg);
  std::vector<double> arrival_times;
  class Capture final : public sim::PacketHandler {
   public:
    explicit Capture(sim::Simulator* s, std::vector<double>* t)
        : sim(s), times(t) {}
    void recv(sim::PacketPtr) override { times->push_back(sim->now()); }
    sim::Simulator* sim;
    std::vector<double>* times;
  } capture(&sim, &arrival_times);
  host->bind_port(5000, &capture);

  prober.probe({host->addr(), util::make_addr(172, 17, 0, 1), 5000, 80});
  sim.run();
  ASSERT_EQ(arrival_times.size(), 3u);
  EXPECT_NEAR(arrival_times[1] - arrival_times[0], 0.01, 1e-9);
  EXPECT_NEAR(arrival_times[2] - arrival_times[1], 0.01, 1e-9);
}

}  // namespace
}  // namespace mafic::core
