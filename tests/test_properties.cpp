// Property-style sweeps over the experiment space: for every combination of
// (Pd, seed) and a set of workload shapes, the paper's qualitative
// invariants must hold.

#include <gtest/gtest.h>

#include <cmath>

#include "scenario/experiment.hpp"

namespace mafic::scenario {
namespace {

ExperimentConfig base_config() {
  ExperimentConfig cfg;
  cfg.total_flows = 24;
  cfg.router_count = 12;
  cfg.end_time = 8.0;
  return cfg;
}

void check_invariants(const ExperimentResult& r) {
  const auto& m = r.metrics;
  ASSERT_TRUE(m.triggered);

  // All rates are probabilities.
  EXPECT_GE(m.alpha, 0.0);
  EXPECT_LE(m.alpha, 1.0);
  EXPECT_GE(m.theta_n, 0.0);
  EXPECT_LE(m.theta_n, 1.0);
  EXPECT_GE(m.theta_p, 0.0);
  EXPECT_LE(m.theta_p, 1.0);
  EXPECT_GE(m.lr, 0.0);
  EXPECT_LE(m.lr, 1.0);

  // alpha and theta_n are complementary on the defense line.
  EXPECT_NEAR(m.alpha + m.theta_n, 1.0, 1e-9);

  // The headline claims, with slack for small runs:
  EXPECT_GT(m.alpha, 0.95) << "accuracy should stay high";
  EXPECT_LT(m.lr, 0.15) << "collateral damage should stay small";
  EXPECT_LT(m.theta_p, 0.02) << "false positives should be rare";

  // Counting sanity.
  EXPECT_LE(m.malicious_dropped, m.malicious_offered);
  EXPECT_LE(m.legit_dropped, m.legit_offered);
  EXPECT_EQ(m.total_offered, m.malicious_offered + m.legit_offered);
}

using PdSeed = std::tuple<double, std::uint64_t>;

class PdSeedSweep : public ::testing::TestWithParam<PdSeed> {};

TEST_P(PdSeedSweep, InvariantsHold) {
  auto cfg = base_config();
  cfg.drop_probability = std::get<0>(GetParam());
  cfg.seed = std::get<1>(GetParam());
  Experiment exp(cfg);
  check_invariants(exp.run());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PdSeedSweep,
    ::testing::Combine(::testing::Values(0.7, 0.8, 0.9),
                       ::testing::Values(1ULL, 17ULL, 23ULL)));

class GammaSweep : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweep, InvariantsHoldAcrossTcpShare) {
  auto cfg = base_config();
  cfg.tcp_fraction = GetParam();
  cfg.seed = 5;
  Experiment exp(cfg);
  check_invariants(exp.run());
}

INSTANTIATE_TEST_SUITE_P(PaperRange, GammaSweep,
                         ::testing::Values(0.35, 0.55, 0.75, 0.95));

class VolumeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(VolumeSweep, InvariantsHoldAcrossVt) {
  auto cfg = base_config();
  cfg.total_flows = GetParam();
  cfg.seed = 3;
  Experiment exp(cfg);
  check_invariants(exp.run());
}

INSTANTIATE_TEST_SUITE_P(PaperRange, VolumeSweep,
                         ::testing::Values(10, 30, 60, 100));

class DomainSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DomainSweep, InvariantsHoldAcrossDomainSize) {
  auto cfg = base_config();
  cfg.router_count = GetParam();
  cfg.seed = 11;
  Experiment exp(cfg);
  check_invariants(exp.run());
}

INSTANTIATE_TEST_SUITE_P(PaperRange, DomainSweep,
                         ::testing::Values(20, 40, 80));

TEST(Monotonicity, HigherPdLeaksFewerAttackPackets) {
  // theta_n must decrease (weakly) as Pd grows, averaged over seeds.
  double previous = 1.0;
  for (const double pd : {0.5, 0.7, 0.9}) {
    auto cfg = base_config();
    cfg.drop_probability = pd;
    const auto m = run_averaged(cfg, 3);
    EXPECT_LT(m.theta_n, previous + 0.003)
        << "theta_n should not grow with Pd (pd=" << pd << ")";
    previous = m.theta_n;
  }
}

TEST(Monotonicity, HigherPdReducesMoreTraffic) {
  double previous = -1.0;
  for (const double pd : {0.5, 0.7, 0.9}) {
    auto cfg = base_config();
    cfg.drop_probability = pd;
    const auto m = run_averaged(cfg, 3);
    EXPECT_GT(m.beta, previous - 0.05)
        << "beta should not shrink with Pd (pd=" << pd << ")";
    previous = m.beta;
  }
}

TEST(FailureInjection, DefenseSurvivesAttackStoppingEarly) {
  auto cfg = base_config();
  // Attack dies right after the trigger: probations must still resolve.
  cfg.end_time = 8.0;
  Experiment exp(cfg);
  exp.setup();
  exp.simulator().schedule_at(3.0, [&exp] {
    for (auto* z : exp.zombies()) z->stop();
  });
  exp.run_until(cfg.end_time);
  const auto r = exp.snapshot_result();
  ASSERT_TRUE(r.metrics.triggered);
  EXPECT_GT(r.metrics.alpha, 0.9);
  // No probation should be stuck forever.
  for (const auto* f : exp.mafic_filters()) {
    f->tables().for_each_sft([&](const core::SftEntry& e) {
      EXPECT_GT(e.deadline, 3.0);
    });
  }
}

TEST(FailureInjection, LateSecondWaveIsAlsoCut) {
  auto cfg = base_config();
  cfg.end_time = 12.0;
  Experiment exp(cfg);
  exp.setup();
  // First wave stops, a second wave from the same zombies restarts later;
  // their flows are already in the PDT, so the leak must be near zero.
  exp.simulator().schedule_at(4.0, [&exp] {
    for (auto* z : exp.zombies()) z->stop();
  });
  exp.simulator().schedule_at(6.0, [&exp] {
    for (auto* z : exp.zombies()) z->start();
  });
  exp.run_until(cfg.end_time);
  const auto r = exp.snapshot_result();
  EXPECT_GT(r.metrics.alpha, 0.97);
  const double second_wave_at_victim =
      r.victim_offered_bytes.rate_between(6.5, 8.0);
  const double first_wave_at_victim =
      r.victim_offered_bytes.rate_between(2.2, 2.7);
  EXPECT_LT(second_wave_at_victim, first_wave_at_victim * 0.6);
}

TEST(Determinism, AveragingIsReproducible) {
  const auto cfg = base_config();
  const auto a = run_averaged(cfg, 2);
  const auto b = run_averaged(cfg, 2);
  EXPECT_DOUBLE_EQ(a.alpha, b.alpha);
  EXPECT_DOUBLE_EQ(a.lr, b.lr);
  EXPECT_EQ(a.malicious_offered, b.malicious_offered);
}

}  // namespace
}  // namespace mafic::scenario
