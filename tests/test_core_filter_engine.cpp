// FilterEngine under the standalone runtime (manual clock + private
// wheel): the Fig. 2 control flow with no simulator attached. The sim
// adapter path is pinned by test_core_mafic_filter and the fixed-seed
// classification goldens; these tests pin the seams themselves.

#include "core/filter_engine.hpp"

#include <gtest/gtest.h>

#include "core/standalone_runtime.hpp"

namespace mafic::core {
namespace {

sim::FlowLabel label_for(std::uint32_t i, std::uint8_t victim_octet = 1) {
  return {util::make_addr(172, 16, (i >> 8) & 0xff, i & 0xff),
          util::make_addr(172, 17, 0, victim_octet),
          std::uint16_t(1024 + i), 80};
}

sim::Packet packet_for(std::uint32_t i, std::uint8_t victim_octet = 1) {
  sim::Packet p;
  p.label = label_for(i, victim_octet);
  p.proto = sim::Protocol::kTcp;
  p.size_bytes = 1000;
  return p;
}

MaficConfig test_config() {
  MaficConfig cfg;
  cfg.default_rtt = 0.04;  // 0.08 s probation windows
  cfg.probe_enabled = true;
  return cfg;
}

class FilterEngineTest : public ::testing::Test {
 protected:
  FilterEngineTest()
      : runtime(test_config(), nullptr, util::Rng(42)),
        engine(runtime.engine()) {
    engine.activate({util::make_addr(172, 17, 0, 1)});
  }

  EngineRuntime runtime;
  FilterEngine& engine;
};

TEST_F(FilterEngineTest, InactiveOrForeignPacketsForwardUntouched) {
  EngineRuntime rt(test_config(), nullptr, util::Rng(1));
  sim::Packet p = packet_for(0);
  EXPECT_EQ(rt.engine().inspect(p), EngineVerdict::kForward);  // inactive
  EXPECT_EQ(rt.engine().stats().offered, 0u);

  sim::Packet other = packet_for(0, /*victim_octet=*/99);  // not a victim
  EXPECT_EQ(engine.inspect(other), EngineVerdict::kForward);
  EXPECT_EQ(engine.stats().offered, 0u);
}

TEST_F(FilterEngineTest, FirstDropOpensProbationWithTimers) {
  // Pd = 0.9: hammer one flow until the coin admits it (first sight with
  // seed 42 in practice, but the loop keeps the test seed-agnostic).
  sim::Packet p = packet_for(7);
  for (int i = 0; i < 64 && engine.tables().sft_size() == 0; ++i) {
    engine.inspect(p);
  }
  ASSERT_EQ(engine.tables().sft_size(), 1u);
  // Probe timer (midpoint) + decision timer ride this shard's wheel.
  EXPECT_EQ(runtime.advance_until(0.0), 0u);
  EXPECT_GE(engine.stats().dropped_probation, 1u);
}

TEST_F(FilterEngineTest, SilentFlowResolvesNiceAndProbeFires) {
  sim::Packet p = packet_for(7);
  while (engine.tables().sft_size() == 0) engine.inspect(p);
  // Advance past the 0.08 s deadline: probe fires at the midpoint, the
  // decision timer resolves the silent probation as nice (too thin).
  runtime.advance_until(0.2);
  EXPECT_EQ(engine.tables().sft_size(), 0u);
  EXPECT_EQ(engine.tables().nft_size(), 1u);
  EXPECT_EQ(runtime.probes().probes_sent(), 1u);
  EXPECT_EQ(engine.stats().probes_issued, 1u);
  EXPECT_EQ(engine.stats().decided_nice, 1u);
  // Once nice, every packet forwards.
  EXPECT_EQ(engine.inspect(p), EngineVerdict::kForward);
}

TEST_F(FilterEngineTest, UnresponsiveFastFlowResolvesMalicious) {
  sim::Packet p = packet_for(9);
  while (engine.tables().sft_size() == 0) engine.inspect(p);
  // Keep the rate flat through both half-windows: 2 ms spacing.
  for (int i = 1; i <= 40; ++i) {
    runtime.advance_until(0.002 * i);
    engine.inspect(p);
  }
  runtime.advance_until(0.5);
  EXPECT_EQ(engine.stats().decided_malicious, 1u);
  EXPECT_EQ(engine.tables().pdt_size(), 1u);
  EXPECT_EQ(engine.inspect(p), EngineVerdict::kDropPdt);
}

TEST_F(FilterEngineTest, DeactivateFlushesAndCancelsTimers) {
  sim::Packet p = packet_for(3);
  while (engine.tables().sft_size() == 0) engine.inspect(p);
  engine.deactivate();
  EXPECT_EQ(engine.tables().resident(), 0u);
  // The cancelled probe/decision timers must not fire.
  runtime.advance_until(1.0);
  EXPECT_EQ(runtime.probes().probes_sent(), 0u);
  EXPECT_EQ(engine.stats().decided_nice + engine.stats().decided_malicious,
            0u);
}

TEST(FilterEngineRefresh, TimesOutWithoutKeepAlive) {
  MaficConfig cfg = test_config();
  cfg.refresh_timeout = 0.5;
  EngineRuntime rt(cfg, nullptr, util::Rng(3));
  rt.engine().activate({util::make_addr(172, 17, 0, 1)});
  ASSERT_TRUE(rt.engine().active());

  // Keep-alives hold the activation across the timeout horizon.
  rt.advance_until(0.4);
  rt.engine().refresh();
  rt.advance_until(0.8);
  EXPECT_TRUE(rt.engine().active());

  // No further refresh: the expiry timer deactivates ("Pushback
  // Continue? -> No") and flushes.
  rt.advance_until(2.0);
  EXPECT_FALSE(rt.engine().active());
  EXPECT_EQ(rt.engine().tables().resident(), 0u);
}

TEST(FilterEngineBatch, BatchedVerdictsMatchScalarExactly) {
  // Two engines, same seed and config, same packet sequence: one inspects
  // per packet, the other in bursts. Every verdict and every table
  // outcome must be identical — inspect_batch is an execution strategy,
  // not a semantic change.
  MaficConfig cfg = test_config();
  EngineRuntime scalar_rt(cfg, nullptr, util::Rng(1234));
  EngineRuntime batch_rt(cfg, nullptr, util::Rng(1234));
  const VictimSet victims{util::make_addr(172, 17, 0, 1)};
  scalar_rt.engine().activate(victims);
  batch_rt.engine().activate(victims);

  util::Rng traffic(99);
  std::vector<sim::Packet> burst(64);
  std::vector<EngineVerdict> scalar_v(64);
  std::vector<EngineVerdict> batch_v(64);

  double now = 0.0;
  for (int round = 0; round < 50; ++round) {
    for (auto& p : burst) {
      const auto flow = static_cast<std::uint32_t>(traffic.index(200));
      // A sprinkle of non-victim and control packets exercises the
      // batch early-outs.
      const std::uint8_t octet = traffic.bernoulli(0.1) ? 99 : 1;
      p = packet_for(flow, octet);
      if (traffic.bernoulli(0.05)) p.proto = sim::Protocol::kControl;
    }
    for (std::size_t i = 0; i < burst.size(); ++i) {
      scalar_v[i] = scalar_rt.engine().inspect(burst[i]);
    }
    batch_rt.engine().inspect_batch(burst.data(), burst.size(),
                                    batch_v.data());
    ASSERT_EQ(scalar_v, batch_v) << "round " << round;

    now += 0.005;
    scalar_rt.advance_until(now);
    batch_rt.advance_until(now);
  }

  EXPECT_EQ(scalar_rt.engine().tables().nft_size(),
            batch_rt.engine().tables().nft_size());
  EXPECT_EQ(scalar_rt.engine().tables().pdt_size(),
            batch_rt.engine().tables().pdt_size());
  EXPECT_EQ(scalar_rt.engine().stats().dropped_probation,
            batch_rt.engine().stats().dropped_probation);
}

TEST(FilterEngineVictimStats, TracksDecisionsPerVictim) {
  MaficConfig cfg = test_config();
  cfg.drop_probability = 1.0;  // deterministic admission
  EngineRuntime rt(cfg, nullptr, util::Rng(5));
  const util::Addr v1 = util::make_addr(172, 17, 0, 1);
  const util::Addr v2 = util::make_addr(172, 17, 0, 2);
  rt.engine().activate({v1, v2});

  // One silent flow toward each victim -> nice; one fast flow toward v2
  // only -> malicious.
  sim::Packet a = packet_for(1, 1);
  sim::Packet b = packet_for(2, 2);
  sim::Packet fast = packet_for(3, 2);
  rt.engine().inspect(a);
  rt.engine().inspect(b);
  rt.engine().inspect(fast);
  for (int i = 1; i <= 40; ++i) {
    rt.advance_until(0.002 * i);
    rt.engine().inspect(fast);
  }
  rt.advance_until(0.5);

  const auto& per_victim = rt.engine().victim_stats();
  ASSERT_TRUE(per_victim.contains(v1));
  ASSERT_TRUE(per_victim.contains(v2));
  EXPECT_EQ(per_victim.at(v1).decided_nice, 1u);
  EXPECT_EQ(per_victim.at(v1).decided_malicious, 0u);
  EXPECT_EQ(per_victim.at(v2).decided_nice, 1u);
  EXPECT_EQ(per_victim.at(v2).decided_malicious, 1u);
}

}  // namespace
}  // namespace mafic::core
