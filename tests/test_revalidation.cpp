// Tests for the NFT revalidation extension (DESIGN.md A6) and the
// probe-evading adaptive attacker it defends against.

#include <gtest/gtest.h>

#include "core/flow_tables.hpp"
#include "scenario/experiment.hpp"

namespace mafic {
namespace {

sim::FlowLabel label(std::uint32_t i) {
  return {util::make_addr(10, 0, 0, 1) + i, util::make_addr(172, 16, 0, 1),
          std::uint16_t(1000 + i), 80};
}

TEST(NftRevalidation, DisabledMeansPermanentNft) {
  core::MaficConfig cfg;  // nft_revalidation_interval = 0
  core::FlowTables tables(cfg);
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.resolve(1, core::TableKind::kNice, /*now=*/0.2);
  EXPECT_TRUE(std::isinf(tables.nft_expiry(1)));
  EXPECT_EQ(tables.classify(1, 1e9), core::TableKind::kNice);
}

TEST(NftRevalidation, EntryExpiresAfterInterval) {
  core::MaficConfig cfg;
  cfg.nft_revalidation_interval = 1.0;
  core::FlowTables tables(cfg);
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.resolve(1, core::TableKind::kNice, /*now=*/0.2);
  EXPECT_DOUBLE_EQ(tables.nft_expiry(1), 1.2);
  EXPECT_EQ(tables.classify(1, 1.0), core::TableKind::kNice);
  EXPECT_EQ(tables.classify(1, 1.3), core::TableKind::kNone);  // expired
  EXPECT_FALSE(tables.in_nft(1));
  EXPECT_EQ(tables.stats().nft_expirations, 1u);
}

TEST(NftRevalidation, ExpiredFlowCanBeReadmitted) {
  core::MaficConfig cfg;
  cfg.nft_revalidation_interval = 1.0;
  core::FlowTables tables(cfg);
  tables.admit_sft(1, label(1), 0.0, 0.2);
  tables.resolve(1, core::TableKind::kNice, 0.2);
  ASSERT_EQ(tables.classify(1, 2.0), core::TableKind::kNone);
  EXPECT_NE(tables.admit_sft(1, label(1), 2.0, 0.2), nullptr);
  tables.resolve(1, core::TableKind::kPermanentDrop, 2.2);
  EXPECT_EQ(tables.classify(1, 2.3), core::TableKind::kPermanentDrop);
}

TEST(NftRevalidation, PdtNeverExpires) {
  core::MaficConfig cfg;
  cfg.nft_revalidation_interval = 0.5;
  core::FlowTables tables(cfg);
  tables.add_pdt_direct(7);
  EXPECT_EQ(tables.classify(7, 1e9), core::TableKind::kPermanentDrop);
}

TEST(ProbeEvasion, ZombiePausesOnThreeDupAcks) {
  sim::Simulator sim;
  sim::PacketFactory factory;
  sim::Network net(&sim);
  sim::Node* host = net.add_host(util::make_addr(172, 16, 0, 1));
  sim::Node* peer = net.add_host(util::make_addr(172, 17, 0, 1));
  net.add_duplex(host->id(), peer->id(), {});
  net.build_routes();

  attack::Flooder::Config cfg;
  cfg.probe_evasion = true;
  cfg.evasion_pause_s = 0.5;
  cfg.rate_bps = 4e6;
  attack::Flooder z(&sim, &factory, host, 5000, cfg, util::Rng(1));
  z.connect(peer->addr(), 80);
  z.start();
  sim.run_until(0.2);
  ASSERT_TRUE(z.running());

  for (int i = 0; i < 3; ++i) {
    auto probe = factory.make();
    probe->label = z.label().reversed();
    probe->proto = sim::Protocol::kTcp;
    probe->flags = sim::tcp_flags::kAck;
    probe->probe = true;
    z.recv(std::move(probe));
  }
  EXPECT_FALSE(z.running());
  EXPECT_EQ(z.evasion_pauses(), 1u);
  const auto sent = z.packets_sent();
  sim.run_until(0.4);  // still paused
  EXPECT_EQ(z.packets_sent(), sent);
  sim.run_until(1.0);  // resumed
  EXPECT_TRUE(z.running());
  EXPECT_GT(z.packets_sent(), sent);
}

TEST(ProbeEvasion, NonEvadingZombieIgnoresProbes) {
  sim::Simulator sim;
  sim::PacketFactory factory;
  sim::Network net(&sim);
  sim::Node* host = net.add_host(util::make_addr(172, 16, 0, 1));
  sim::Node* peer = net.add_host(util::make_addr(172, 17, 0, 1));
  net.add_duplex(host->id(), peer->id(), {});
  net.build_routes();

  attack::Flooder::Config cfg;  // probe_evasion = false
  attack::Flooder z(&sim, &factory, host, 5000, cfg, util::Rng(1));
  z.connect(peer->addr(), 80);
  z.start();
  for (int i = 0; i < 10; ++i) {
    auto probe = factory.make();
    probe->proto = sim::Protocol::kTcp;
    probe->flags = sim::tcp_flags::kAck;
    z.recv(std::move(probe));
  }
  EXPECT_TRUE(z.running());
  EXPECT_EQ(z.evasion_pauses(), 0u);
}

scenario::ExperimentConfig evader_config() {
  scenario::ExperimentConfig cfg;
  cfg.total_flows = 20;
  cfg.router_count = 10;
  cfg.seed = 5;
  cfg.end_time = 12.0;
  cfg.attack_probe_evasion = true;
  cfg.spoofing.legitimate_weight = 0.0;
  cfg.spoofing.genuine_weight = 1.0;  // evader must receive the probe
  return cfg;
}

TEST(ProbeEvasion, EvaderDefeatsPaperFaithfulMafic) {
  scenario::Experiment exp(evader_config());
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  // The evader passes probation and floods from the permanent NFT.
  EXPECT_LT(r.metrics.alpha, 0.3);
  EXPECT_GT(r.metrics.theta_n, 0.7);
}

TEST(ProbeEvasion, RevalidationThrottlesTheEvader) {
  auto cfg = evader_config();
  scenario::Experiment baseline(cfg);
  const auto without = baseline.run();

  cfg.mafic.nft_revalidation_interval = 1.0;
  scenario::Experiment guarded(cfg);
  const auto with = guarded.run();

  ASSERT_TRUE(with.metrics.triggered);
  // More of the attack is caught, and the evader's delivered volume drops.
  EXPECT_GT(with.metrics.alpha, without.metrics.alpha);
  const double tail_without =
      without.victim_offered_bytes.rate_between(8.0, 11.0);
  const double tail_with = with.victim_offered_bytes.rate_between(8.0, 11.0);
  EXPECT_LT(tail_with, tail_without);
}

TEST(ProbeEvasion, SpoofingEvaderNeverSeesProbe) {
  auto cfg = evader_config();
  cfg.spoofing.genuine_weight = 0.0;
  cfg.spoofing.legitimate_weight = 1.0;  // probes go to innocent hosts
  scenario::Experiment exp(cfg);
  const auto r = exp.run();
  ASSERT_TRUE(r.metrics.triggered);
  // Unable to observe the probe, the zombie keeps flooding and is caught.
  EXPECT_GT(r.metrics.alpha, 0.97);
  for (auto* z : exp.zombies()) {
    EXPECT_EQ(z->evasion_pauses(), 0u);
  }
}

TEST(ProbeEvasion, RevalidationCostsLegitimateLoss) {
  // The trade-off: re-probing legitimate flows costs Lr even without any
  // attacker adaptation.
  scenario::ExperimentConfig cfg;
  cfg.total_flows = 20;
  cfg.router_count = 10;
  cfg.seed = 5;
  cfg.end_time = 12.0;
  scenario::Experiment plain(cfg);
  const auto without = plain.run();

  cfg.mafic.nft_revalidation_interval = 1.0;
  scenario::Experiment guarded(cfg);
  const auto with = guarded.run();
  EXPECT_GT(with.metrics.lr, without.metrics.lr);
}

}  // namespace
}  // namespace mafic
