#include <gtest/gtest.h>

#include "pushback/atr_identifier.hpp"
#include "pushback/coordinator.hpp"
#include "pushback/victim_detector.hpp"
#include "sim/simulator.hpp"

namespace mafic::pushback {
namespace {

/// Builds a snapshot where router `src` injected `n` packets terminating at
/// router `dst` (optionally with extra unrelated traffic).
sketch::TrafficMatrixSnapshot make_snapshot(std::size_t routers,
                                            sim::NodeId src, sim::NodeId dst,
                                            std::uint64_t n,
                                            std::uint64_t uid_base = 0) {
  sketch::RouterSketchBank bank(routers, 12, 77);
  for (std::uint64_t i = 0; i < n; ++i) {
    bank.record_ingress(src, uid_base + i);
    bank.record_egress(dst, uid_base + i);
  }
  sketch::TrafficMatrixSnapshot snap;
  snap.epoch_start = 0.0;
  snap.epoch_end = 0.1;
  for (std::size_t i = 0; i < routers; ++i) {
    snap.s.push_back(bank.s(sim::NodeId(i)));
    snap.d.push_back(bank.d(sim::NodeId(i)));
  }
  return snap;
}

TEST(VictimDetector, AlarmsOnSuddenSurge) {
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 2;
  cfg.trigger_factor = 2.0;
  cfg.min_packets_per_epoch = 50;
  VictimDetector det(cfg);
  std::vector<AttackAlarm> alarms;
  det.set_alarm_callback(
      [&](const AttackAlarm& a, const sketch::TrafficMatrixSnapshot&) {
        alarms.push_back(a);
      });

  // Baseline epochs: ~200 packets to router 1.
  for (int e = 0; e < 5; ++e) {
    det.on_epoch(make_snapshot(3, 0, 1, 200, e * 1000000ULL));
  }
  EXPECT_TRUE(alarms.empty());
  // Surge: 2000 packets.
  det.on_epoch(make_snapshot(3, 0, 1, 2000, 99000000ULL));
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].router, 1u);
  EXPECT_GT(alarms[0].observed, alarms[0].baseline * 2.0);
  EXPECT_TRUE(det.alarming(1));
  EXPECT_FALSE(det.alarming(0));
}

TEST(VictimDetector, NoAlarmDuringWarmup) {
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 10;
  VictimDetector det(cfg);
  int alarms = 0;
  det.set_alarm_callback(
      [&](const AttackAlarm&, const sketch::TrafficMatrixSnapshot&) {
        ++alarms;
      });
  det.on_epoch(make_snapshot(2, 0, 1, 100));
  det.on_epoch(make_snapshot(2, 0, 1, 5000, 1000000));
  EXPECT_EQ(alarms, 0);
}

TEST(VictimDetector, AbsoluteFloorSuppressesTinyTraffic) {
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 1;
  cfg.trigger_factor = 2.0;
  cfg.min_packets_per_epoch = 1000;
  VictimDetector det(cfg);
  int alarms = 0;
  det.set_alarm_callback(
      [&](const AttackAlarm&, const sketch::TrafficMatrixSnapshot&) {
        ++alarms;
      });
  for (int e = 0; e < 3; ++e) {
    det.on_epoch(make_snapshot(2, 0, 1, 20, e * 1000000ULL));
  }
  det.on_epoch(make_snapshot(2, 0, 1, 200, 99000000ULL));  // 10x but tiny
  EXPECT_EQ(alarms, 0);
}

TEST(VictimDetector, ClearsWhenTrafficSubsides) {
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 1;
  cfg.trigger_factor = 2.0;
  cfg.clear_factor = 1.5;
  cfg.min_packets_per_epoch = 50;
  VictimDetector det(cfg);
  std::vector<sim::NodeId> cleared;
  det.set_clear_callback(
      [&](sim::NodeId r, double) { cleared.push_back(r); });

  for (int e = 0; e < 3; ++e) {
    det.on_epoch(make_snapshot(2, 0, 1, 200, e * 1000000ULL));
  }
  det.on_epoch(make_snapshot(2, 0, 1, 2000, 90000000ULL));  // alarm
  EXPECT_TRUE(det.alarming(1));
  det.on_epoch(make_snapshot(2, 0, 1, 210, 91000000ULL));  // back to normal
  EXPECT_FALSE(det.alarming(1));
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], 1u);
}

TEST(VictimDetector, ClearsWhenAttackSubsidesBelowTriggerFloor) {
  // Regression: the trigger path floors at min_packets_per_epoch, but the
  // clear path used to check only d < clear_factor * max(base, 1). With a
  // small frozen baseline (30 << floor 100) an attack subsiding to
  // 50 pkts/epoch — below the floor, i.e. unable to ever re-trigger —
  // kept the router alarming forever and the baseline frozen.
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 1;
  cfg.trigger_factor = 2.5;
  cfg.clear_factor = 1.5;
  cfg.min_packets_per_epoch = 100;
  VictimDetector det(cfg);
  std::vector<sim::NodeId> cleared;
  det.set_clear_callback(
      [&](sim::NodeId r, double) { cleared.push_back(r); });

  // Small baseline (~30/epoch), well under the alarm floor.
  for (int e = 0; e < 3; ++e) {
    det.on_epoch(make_snapshot(2, 0, 1, 30, e * 1000000ULL));
  }
  EXPECT_FALSE(det.alarming(1));
  det.on_epoch(make_snapshot(2, 0, 1, 3000, 90000000ULL));  // alarm
  ASSERT_TRUE(det.alarming(1));
  // Subside to 50/epoch: above 1.5 * 30 = 45, but below the 100 floor.
  // Must clear (and keep clearing on repeat epochs, baseline thawed).
  det.on_epoch(make_snapshot(2, 0, 1, 50, 91000000ULL));
  EXPECT_FALSE(det.alarming(1));
  ASSERT_EQ(cleared.size(), 1u);
  EXPECT_EQ(cleared[0], 1u);
  det.on_epoch(make_snapshot(2, 0, 1, 50, 92000000ULL));
  EXPECT_FALSE(det.alarming(1));
  EXPECT_GT(det.baseline(1), 30.0);  // baseline resumed tracking
}

TEST(VictimDetector, ConfiguredEwmaAlphaChangesDetection) {
  // Regression for the dead RouterState{0.3} member default: a
  // non-default ewma_alpha must actually change when the detector fires.
  // Baseline ramps 100, 200, ..., then a 900-packet epoch arrives. With
  // alpha=1.0 the baseline tracks the last sample (400) so 900 < 2.5*400
  // stays quiet; with a tiny alpha the baseline barely moves off 100 and
  // 900 > 2.5*~110 alarms.
  const auto alarms_with_alpha = [](double alpha) {
    VictimDetector::Config cfg;
    cfg.warmup_epochs = 1;
    cfg.trigger_factor = 2.5;
    cfg.min_packets_per_epoch = 50;
    cfg.ewma_alpha = alpha;
    VictimDetector det(cfg);
    for (int e = 1; e <= 4; ++e) {
      det.on_epoch(make_snapshot(2, 0, 1, 100ULL * e, e * 1000000ULL));
    }
    det.on_epoch(make_snapshot(2, 0, 1, 900, 99000000ULL));
    return det.alarms_raised();
  };
  EXPECT_EQ(alarms_with_alpha(1.0), 0u);
  EXPECT_EQ(alarms_with_alpha(0.05), 1u);
}

TEST(VictimDetector, BaselineFrozenWhileAlarming) {
  VictimDetector::Config cfg;
  cfg.warmup_epochs = 1;
  cfg.trigger_factor = 2.0;
  cfg.min_packets_per_epoch = 50;
  VictimDetector det(cfg);
  for (int e = 0; e < 3; ++e) {
    det.on_epoch(make_snapshot(2, 0, 1, 200, e * 1000000ULL));
  }
  const double base_before = det.baseline(1);
  for (int e = 0; e < 5; ++e) {  // sustained attack epochs
    det.on_epoch(make_snapshot(2, 0, 1, 3000, (10 + e) * 1000000ULL));
  }
  EXPECT_TRUE(det.alarming(1));
  EXPECT_NEAR(det.baseline(1), base_before, base_before * 0.05);
}

TEST(AtrIdentifier, SelectsContributingIngress) {
  // Router 0 sends 5000 packets to victim router 2; router 1 sends 100.
  sketch::RouterSketchBank bank(4, 12, 5);
  for (std::uint64_t i = 0; i < 5000; ++i) {
    bank.record_ingress(0, i);
    bank.record_egress(2, i);
  }
  for (std::uint64_t i = 100000; i < 100100; ++i) {
    bank.record_ingress(1, i);
    bank.record_egress(2, i);
  }
  sketch::TrafficMatrixSnapshot snap;
  for (std::size_t i = 0; i < 4; ++i) {
    snap.s.push_back(bank.s(sim::NodeId(i)));
    snap.d.push_back(bank.d(sim::NodeId(i)));
  }

  AtrConfig cfg;
  cfg.share_threshold = 0.3;
  cfg.min_intersection = 50;
  const auto atrs = identify_atrs(snap, 2, cfg);
  ASSERT_GE(atrs.size(), 1u);
  EXPECT_EQ(atrs[0].router, 0u);
  EXPECT_GT(atrs[0].share, 0.5);
}

TEST(AtrIdentifier, ExcludesVictimRouterAndRespectsCap) {
  sketch::RouterSketchBank bank(5, 12, 5);
  for (sim::NodeId r = 0; r < 4; ++r) {
    for (std::uint64_t i = 0; i < 3000; ++i) {
      const std::uint64_t uid = r * 1000000ULL + i;
      bank.record_ingress(r, uid);
      bank.record_egress(4, uid);
    }
  }
  sketch::TrafficMatrixSnapshot snap;
  for (std::size_t i = 0; i < 5; ++i) {
    snap.s.push_back(bank.s(sim::NodeId(i)));
    snap.d.push_back(bank.d(sim::NodeId(i)));
  }
  AtrConfig cfg;
  cfg.share_threshold = 0.05;
  cfg.min_intersection = 100;
  cfg.max_atrs = 2;
  const auto atrs = identify_atrs(snap, 4, cfg);
  EXPECT_EQ(atrs.size(), 2u);
  for (const auto& a : atrs) EXPECT_NE(a.router, 4u);
}

TEST(AtrIdentifier, EmptySnapshotYieldsNothing) {
  sketch::RouterSketchBank bank(3, 10, 1);
  sketch::TrafficMatrixSnapshot snap;
  for (std::size_t i = 0; i < 3; ++i) {
    snap.s.push_back(bank.s(sim::NodeId(i)));
    snap.d.push_back(bank.d(sim::NodeId(i)));
  }
  EXPECT_TRUE(identify_atrs(snap, 2, {}).empty());
}

/// Minimal actuator for coordinator tests.
class FakeActuator final : public core::DefenseActuator {
 public:
  void activate(const core::VictimSet& v) override {
    active_ = true;
    victims = v;
    ++activations;
  }
  void refresh() override { ++refreshes; }
  void deactivate() override { active_ = false; ++deactivations; }
  bool active() const noexcept override { return active_; }

  bool active_ = false;
  int activations = 0;
  int refreshes = 0;
  int deactivations = 0;
  core::VictimSet victims;
};

class CoordinatorTest : public ::testing::Test {
 protected:
  PushbackCoordinator::Config make_cfg(bool latch) {
    PushbackCoordinator::Config cfg;
    cfg.control_delay = 0.01;
    cfg.refresh_interval = 0.1;
    cfg.latch = latch;
    cfg.atr.share_threshold = 0.2;
    cfg.atr.min_intersection = 100;
    cfg.detector.warmup_epochs = 1;
    cfg.detector.trigger_factor = 2.0;
    cfg.detector.min_packets_per_epoch = 50;
    return cfg;
  }

  sim::Simulator sim;
};

TEST_F(CoordinatorTest, AlarmActivatesAtrActuatorsAfterControlDelay) {
  PushbackCoordinator coord(&sim, make_cfg(true));
  const util::Addr victim_addr = util::make_addr(172, 17, 0, 1);
  coord.protect(1, victim_addr);
  FakeActuator at_attacker, at_innocent;
  coord.register_actuator(0, &at_attacker);
  coord.register_actuator(2, &at_innocent);

  // Warm up, then surge through ingress router 0.
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 2000000));
  EXPECT_FALSE(at_attacker.active_);  // control delay pending
  sim.run_until(0.05);
  EXPECT_TRUE(at_attacker.active_);
  EXPECT_FALSE(at_innocent.active_);
  EXPECT_TRUE(at_attacker.victims.contains(victim_addr));
  EXPECT_TRUE(coord.triggered());
  ASSERT_EQ(coord.active_atrs().size(), 1u);
  EXPECT_EQ(coord.active_atrs()[0], 0u);
}

TEST_F(CoordinatorTest, RefreshLoopKeepsActuatorsAlive) {
  PushbackCoordinator coord(&sim, make_cfg(true));
  coord.protect(1, util::make_addr(172, 17, 0, 1));
  FakeActuator actuator;
  coord.register_actuator(0, &actuator);
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 2000000));
  sim.run_until(1.0);
  EXPECT_GE(actuator.refreshes, 8);
}

TEST_F(CoordinatorTest, CancelDeactivatesEverything) {
  PushbackCoordinator coord(&sim, make_cfg(true));
  coord.protect(1, util::make_addr(172, 17, 0, 1));
  FakeActuator actuator;
  coord.register_actuator(0, &actuator);
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 2000000));
  sim.run_until(0.1);
  EXPECT_TRUE(actuator.active_);
  coord.cancel();
  EXPECT_FALSE(actuator.active_);
  EXPECT_EQ(actuator.deactivations, 1);
  EXPECT_TRUE(coord.active_atrs().empty());
}

TEST_F(CoordinatorTest, UnlatchedCoordinatorCancelsOnClear) {
  PushbackCoordinator coord(&sim, make_cfg(false));
  coord.protect(1, util::make_addr(172, 17, 0, 1));
  FakeActuator actuator;
  coord.register_actuator(0, &actuator);
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 2000000));
  sim.run_until(0.05);
  EXPECT_TRUE(actuator.active_);
  // Traffic subsides -> detector clears -> coordinator cancels.
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 210, 3000000));
  EXPECT_FALSE(actuator.active_);
}

TEST_F(CoordinatorTest, AlarmsForOtherRoutersIgnored) {
  PushbackCoordinator coord(&sim, make_cfg(true));
  coord.protect(1, util::make_addr(172, 17, 0, 1));  // protect router 1
  FakeActuator actuator;
  coord.register_actuator(0, &actuator);
  // Surge toward router 2 (not the protected victim).
  coord.detector().on_epoch(make_snapshot(3, 0, 2, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 2, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 2, 5000, 2000000));
  sim.run_until(0.1);
  EXPECT_FALSE(actuator.active_);
  EXPECT_FALSE(coord.triggered());
}

TEST_F(CoordinatorTest, TriggerCallbackFiresOnce) {
  PushbackCoordinator coord(&sim, make_cfg(true));
  coord.protect(1, util::make_addr(172, 17, 0, 1));
  FakeActuator actuator;
  coord.register_actuator(0, &actuator);
  int triggers = 0;
  coord.set_trigger_callback(
      [&](double, const std::vector<AtrScore>&) { ++triggers; });
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 0));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 200, 1000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 2000000));
  coord.detector().on_epoch(make_snapshot(3, 0, 1, 5000, 3000000));
  sim.run_until(0.5);
  EXPECT_EQ(triggers, 1);
}

}  // namespace
}  // namespace mafic::pushback
