#!/usr/bin/env python3
"""Offline markdown link checker for README and docs.

Walks the given markdown files (or directories), extracts inline links
and images, and fails when a *relative* link points at a file that does
not exist in the repository, or an intra-document anchor has no matching
heading. External links (http/https/mailto) are not fetched — CI must
not depend on the network — they are only counted.

Usage:
    tools/check_markdown_links.py README.md docs [more files...]
"""

import argparse
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)


def anchor_of(heading: str) -> str:
    """GitHub-style slug: lowercase, drop punctuation, spaces to dashes."""
    heading = re.sub(r"[`*_~]", "", heading).strip().lower()
    heading = re.sub(r"[^\w\- ]", "", heading)
    return heading.replace(" ", "-")


def collect_files(paths):
    for p in paths:
        if os.path.isdir(p):
            for root, _dirs, files in os.walk(p):
                for f in sorted(files):
                    if f.endswith(".md"):
                        yield os.path.join(root, f)
        else:
            yield p


def check_file(path: str) -> list:
    with open(path, "r", encoding="utf-8") as f:
        raw = f.read()
    text = CODE_FENCE_RE.sub("", raw)  # links inside code blocks are code
    anchors = {anchor_of(h) for h in HEADING_RE.findall(text)}
    base = os.path.dirname(path)

    errors = []
    external = 0
    for m in LINK_RE.finditer(text):
        target = m.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            external += 1
            continue
        if target.startswith("#"):
            if target[1:] not in anchors:
                errors.append(f"{path}: broken anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            errors.append(f"{path}: broken link {target} -> {resolved}")
            continue
        if anchor and resolved.endswith(".md"):
            with open(resolved, "r", encoding="utf-8") as f:
                other = CODE_FENCE_RE.sub("", f.read())
            if anchor_of(anchor) not in {
                anchor_of(h) for h in HEADING_RE.findall(other)
            }:
                errors.append(f"{path}: broken anchor {target}")
    print(f"  {path}: {len(LINK_RE.findall(text))} links "
          f"({external} external, not fetched)")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("paths", nargs="+",
                        help="markdown files or directories to scan")
    args = parser.parse_args()

    errors = []
    for path in collect_files(args.paths):
        errors.extend(check_file(path))

    if errors:
        print(f"\nFAIL: {len(errors)} broken link(s):")
        for e in errors:
            print(f"  {e}")
        return 1
    print("\nall markdown links resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
