#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_flow_store.json trajectory.

The perf benches append one record per (bench, series, flows-tier) per run
to a single JSON array; the repo commits the trajectory so every CI run
can compare its fresh measurement against the previous one. This script
fails (exit 1) when the newest entry of any tier is more than --threshold
slower (ns/packet) than the entry before it.

Usage:
    tools/check_bench_regression.py BENCH_flow_store.json [--threshold 0.10]

A tier seen for the first time passes trivially (there is nothing to
compare against); a shrinking ns/packet is reported as an improvement.
"""

import argparse
import json
import sys
from collections import defaultdict


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="path to BENCH_flow_store.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional ns/packet regression (default 0.10)",
    )
    args = parser.parse_args()

    try:
        with open(args.trajectory, "r", encoding="utf-8") as f:
            records = json.load(f)
    except FileNotFoundError:
        print(f"no trajectory at {args.trajectory}; nothing to gate")
        return 0
    except json.JSONDecodeError as e:
        print(f"FAIL: {args.trajectory} is not valid JSON: {e}")
        return 1

    tiers = defaultdict(list)  # (bench, name, flows) -> [ns_per_packet...]
    for r in records:
        key = (r.get("bench", "?"), r.get("name", "?"), r.get("flows", 0))
        tiers[key].append(float(r.get("ns_per_packet", 0.0)))

    failures = []
    for (bench, name, flows), series in sorted(tiers.items()):
        if len(series) < 2:
            print(f"  new    {bench}/{name}@{flows:.0f}: "
                  f"{series[-1]:.2f} ns/pkt (no previous entry)")
            continue
        prev, last = series[-2], series[-1]
        if prev <= 0.0:
            continue
        delta = (last - prev) / prev
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSION"
            failures.append((bench, name, flows, prev, last, delta))
        elif delta < 0:
            verdict = "improved"
        print(f"  {verdict:<10} {bench}/{name}@{flows:.0f}: "
              f"{prev:.2f} -> {last:.2f} ns/pkt ({delta:+.1%})")

    if failures:
        print(f"\nFAIL: {len(failures)} tier(s) regressed more than "
              f"{args.threshold:.0%}:")
        for bench, name, flows, prev, last, delta in failures:
            print(f"  {bench}/{name}@{flows:.0f}: "
                  f"{prev:.2f} -> {last:.2f} ns/pkt ({delta:+.1%})")
        return 1
    print("\nbench trajectory within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
