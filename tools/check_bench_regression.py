#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_flow_store.json trajectory.

The perf benches append one record per (bench, series, flows-tier) per run
to a single JSON array; the repo commits the trajectory so every CI run
can compare its fresh measurement against the previous one. This script
fails (exit 1) when the newest entry of any tier is more than --threshold
slower (ns/packet) than the entry before it.

Multi-shard rows additionally carry a "threads" tag: true for real
one-thread-per-shard measurements (CI runners with the cores), false for
serial projections (shards run back-to-back on one core, aggregate = the
contention-free sum). The two measure different things — a threaded row
prices shared cache/memory-bandwidth contention, a serial row does not —
so the gate keys tiers on the tag and only ever compares like with like.
Rows from before the tag (or untagged single-stream series) form their
own legacy group.

Rows may also carry a "calib_ns" machine-speed calibration (ns per step
of a fixed ALU + DRAM-latency reference workload, measured by the same
run that produced the row — see bench_json.hpp). The trajectory spans
heterogeneous dev boxes, and a raw ns/packet comparison across two boxes
measures the hardware, not the code; when both entries of a comparison
carry a calibration, the newer entry's ns/packet is scaled by
prev_calib/last_calib before the threshold check (the calibration
workload contains no library code, so a code regression cannot hide in
it). When only one side carries a calibration the pair straddles the
instrumentation boundary and the comparison is skipped as a loud series
rebase; two uncalibrated legacy entries compare raw, as before.

Rows also carry a "run" sequence number (one id per bench invocation,
stamped on append). Besides the slowdown gate, the script diffs the tier
sets of each bench's last two runs: a tier the previous run produced and
the newest run silently dropped is a failure — a removed benchmark must
be removed loudly, not by quietly shrinking coverage. The missing-tier
comparison keys on (name, flows) only, NOT on the threads/serial mode
tag, because the same sweep legitimately flips tags across boxes with
different core counts. Rows predating the "run" field are exempt.
--allow-missing downgrades missing tiers to warnings (for intentional
retirements; pair it with a trajectory note).

Usage:
    tools/check_bench_regression.py BENCH_flow_store.json [--threshold 0.10]
        [--allow-missing]

A tier seen for the first time passes trivially (there is nothing to
compare against); a shrinking ns/packet is reported as an improvement.
"""

import argparse
import json
import sys
from collections import defaultdict


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", help="path to BENCH_flow_store.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional ns/packet regression (default 0.10)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="downgrade tiers missing from the newest run to warnings",
    )
    args = parser.parse_args()

    try:
        with open(args.trajectory, "r", encoding="utf-8") as f:
            records = json.load(f)
    except FileNotFoundError:
        print(f"no trajectory at {args.trajectory}; nothing to gate")
        return 0
    except json.JSONDecodeError as e:
        print(f"FAIL: {args.trajectory} is not valid JSON: {e}")
        return 1

    def mode_tag(record):
        """Execution-mode component of the tier key.

        "threads" / "serial" for tagged multi-shard rows, "" for
        single-stream series and for rows predating the tag (legacy rows
        group together and never against tagged measurements).
        """
        threads = record.get("threads")
        if threads is None:
            return ""
        return "threads" if threads else "serial"

    # (bench, name, flows, mode) -> [(ns_per_packet, calib_ns), ...]
    tiers = defaultdict(list)
    for r in records:
        key = (r.get("bench", "?"), r.get("name", "?"), r.get("flows", 0),
               mode_tag(r))
        tiers[key].append((float(r.get("ns_per_packet", 0.0)),
                           float(r.get("calib_ns", 0.0))))

    failures = []
    for (bench, name, flows, mode), series in sorted(tiers.items()):
        tier = f"{bench}/{name}@{flows:.0f}" + (f"[{mode}]" if mode else "")
        if len(series) < 2:
            print(f"  new    {tier}: "
                  f"{series[-1][0]:.2f} ns/pkt (no previous entry)")
            continue
        (prev, prev_calib), (last, last_calib) = series[-2], series[-1]
        if prev <= 0.0:
            continue
        if (prev_calib > 0.0) != (last_calib > 0.0):
            # One side predates the machine calibration: the pair cannot
            # be compared across the hardware difference. Start a fresh
            # calibrated series here (loudly).
            print(f"  rebase     {tier}: {prev:.2f} -> {last:.2f} ns/pkt "
                  f"(calibration boundary; comparison skipped)")
            continue
        scaled_last = last
        note = ""
        if prev_calib > 0.0 and last_calib > 0.0:
            scaled_last = last * prev_calib / last_calib
            note = (f" [raw {last:.2f}, box speed factor "
                    f"{last_calib / prev_calib:.2f}x]")
        delta = (scaled_last - prev) / prev
        verdict = "ok"
        if delta > args.threshold:
            verdict = "REGRESSION"
            failures.append((tier, prev, scaled_last, delta))
        elif delta < 0:
            verdict = "improved"
        print(f"  {verdict:<10} {tier}: "
              f"{prev:.2f} -> {scaled_last:.2f} ns/pkt ({delta:+.1%})"
              f"{note}")

    # Missing-tier check: per bench, the newest run must cover every
    # (name, flows) tier the run before it produced. Mode-tag agnostic
    # (see module docstring); rows without a "run" id are exempt.
    runs_by_bench = defaultdict(lambda: defaultdict(set))
    for r in records:
        run = r.get("run")
        if run is None:
            continue
        runs_by_bench[r.get("bench", "?")][int(run)].add(
            (r.get("name", "?"), r.get("flows", 0)))

    missing = []
    for bench, runs in sorted(runs_by_bench.items()):
        if len(runs) < 2:
            continue
        order = sorted(runs)
        prev_run, last_run = order[-2], order[-1]
        for name, flows in sorted(runs[prev_run] - runs[last_run]):
            missing.append(f"{bench}/{name}@{flows:.0f} "
                           f"(in run {prev_run}, absent from run {last_run})")
    if missing:
        label = "WARNING" if args.allow_missing else "FAIL"
        print(f"\n{label}: {len(missing)} tier(s) from the previous run "
              f"are missing from the newest run:")
        for m in missing:
            print(f"  {m}")
        if not args.allow_missing:
            print("pass --allow-missing if the retirement is intentional")

    if failures or (missing and not args.allow_missing):
        if failures:
            print(f"\nFAIL: {len(failures)} tier(s) regressed more than "
                  f"{args.threshold:.0%}:")
            for tier, prev, last, delta in failures:
                print(f"  {tier}: {prev:.2f} -> {last:.2f} ns/pkt "
                      f"({delta:+.1%})")
        return 1
    print("\nbench trajectory within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
