#!/usr/bin/env python3
"""Bench-regression gate over the BENCH_flow_store.json trajectory.

The perf benches append one record per (bench, series, flows-tier) per run
to a single JSON array; the repo commits the trajectory so every CI run
can compare its fresh measurement against the previous one. This script
fails (exit 1) when the newest entry of any tier is more than --threshold
slower (ns/packet) than the entry before it.

Multi-shard rows additionally carry a "threads" tag: true for real
one-thread-per-shard measurements (CI runners with the cores), false for
serial projections (shards run back-to-back on one core, aggregate = the
contention-free sum). The two measure different things — a threaded row
prices shared cache/memory-bandwidth contention, a serial row does not —
so the gate keys tiers on the tag and only ever compares like with like.
Rows from before the tag (or untagged single-stream series) form their
own legacy group.

Rows may also carry a "calib_ns" machine-speed calibration (ns per step
of a fixed ALU + DRAM-latency reference workload, measured by the same
run that produced the row — see bench_json.hpp). The trajectory spans
heterogeneous dev boxes, and a raw ns/packet comparison across two boxes
measures the hardware, not the code; when both entries of a comparison
carry a calibration, the newer entry's ns/packet is scaled by
prev_calib/last_calib before the threshold check (the calibration
workload contains no library code, so a code regression cannot hide in
it). When only one side carries a calibration the pair straddles the
instrumentation boundary and the comparison is skipped as a loud series
rebase; two uncalibrated legacy entries compare raw, as before.

Replay-harness rows (bench_replay_path) additionally carry "pps" and
"cycles_per_packet". The gate still decides on ns/packet — pps is the
same measurement inverted, and TSC deltas are not comparable across
boxes — but when both entries of a comparison carry pps, the raw
(uncalibrated) pps shift is printed as information. Rows that carry only
an accuracy metric ("lr", e.g. the Fig. 7 series) set ns_per_packet = 0
and are exempt from the time gate.

Rows also carry a "run" sequence number (one id per bench invocation,
stamped on append). Besides the slowdown gate, the script diffs the tier
sets of each bench's last two runs: a tier the previous run produced and
the newest run silently dropped is a failure — a removed benchmark must
be removed loudly, not by quietly shrinking coverage. The missing-tier
comparison keys on (name, flows) only, NOT on the threads/serial mode
tag, because the same sweep legitimately flips tags across boxes with
different core counts. Rows predating the "run" field are exempt.
--allow-missing downgrades missing tiers to warnings (for intentional
retirements; pair it with a trajectory note).

Usage:
    tools/check_bench_regression.py BENCH_flow_store.json [--threshold 0.10]
        [--allow-missing]
    tools/check_bench_regression.py --self-test

A tier seen for the first time passes trivially (there is nothing to
compare against); a shrinking ns/packet is reported as an improvement.
--self-test runs the checker's own unit battery over synthetic
trajectories (invoked from CI, so checker regressions are not silent).
"""

import argparse
import json
import sys
from collections import defaultdict


def mode_tag(record):
    """Execution-mode component of the tier key.

    "threads" / "serial" for tagged multi-shard rows, "" for
    single-stream series and for rows predating the tag (legacy rows
    group together and never against tagged measurements).
    """
    threads = record.get("threads")
    if threads is None:
        return ""
    return "threads" if threads else "serial"


def evaluate(records, threshold=0.10, allow_missing=False):
    """The whole gate as a pure function over a record list.

    Returns (lines, failures, missing): the report lines to print, the
    list of over-threshold regressions, and the list of tiers the newest
    run silently dropped. The caller decides the exit code (missing
    tiers only fail when allow_missing is False).
    """
    lines = []

    # (bench, name, flows, mode) -> [(ns_per_packet, calib_ns, pps), ...]
    tiers = defaultdict(list)
    for r in records:
        key = (r.get("bench", "?"), r.get("name", "?"), r.get("flows", 0),
               mode_tag(r))
        tiers[key].append((float(r.get("ns_per_packet", 0.0)),
                           float(r.get("calib_ns", 0.0)),
                           float(r.get("pps", 0.0))))

    failures = []
    for (bench, name, flows, mode), series in sorted(tiers.items()):
        tier = f"{bench}/{name}@{flows:.0f}" + (f"[{mode}]" if mode else "")
        if len(series) < 2:
            lines.append(f"  new    {tier}: "
                         f"{series[-1][0]:.2f} ns/pkt (no previous entry)")
            continue
        (prev, prev_calib, prev_pps), (last, last_calib, last_pps) = \
            series[-2], series[-1]
        if prev <= 0.0:
            continue
        if (prev_calib > 0.0) != (last_calib > 0.0):
            # One side predates the machine calibration: the pair cannot
            # be compared across the hardware difference. Start a fresh
            # calibrated series here (loudly).
            lines.append(f"  rebase     {tier}: {prev:.2f} -> {last:.2f} "
                         f"ns/pkt (calibration boundary; comparison "
                         f"skipped)")
            continue
        scaled_last = last
        note = ""
        if prev_calib > 0.0 and last_calib > 0.0:
            scaled_last = last * prev_calib / last_calib
            note = (f" [raw {last:.2f}, box speed factor "
                    f"{last_calib / prev_calib:.2f}x]")
        if prev_pps > 0.0 and last_pps > 0.0:
            # Informational: the same shift in the unit the line-rate
            # claim speaks in (raw, not calibration-scaled).
            pps_delta = (last_pps - prev_pps) / prev_pps
            note += (f" [pps {prev_pps:.3e} -> {last_pps:.3e} "
                     f"({pps_delta:+.1%})]")
        delta = (scaled_last - prev) / prev
        verdict = "ok"
        if delta > threshold:
            verdict = "REGRESSION"
            failures.append((tier, prev, scaled_last, delta))
        elif delta < 0:
            verdict = "improved"
        lines.append(f"  {verdict:<10} {tier}: "
                     f"{prev:.2f} -> {scaled_last:.2f} ns/pkt "
                     f"({delta:+.1%}){note}")

    # Missing-tier check: per bench, the newest run must cover every
    # (name, flows) tier the run before it produced. Mode-tag agnostic
    # (see module docstring); rows without a "run" id are exempt.
    runs_by_bench = defaultdict(lambda: defaultdict(set))
    for r in records:
        run = r.get("run")
        if run is None:
            continue
        runs_by_bench[r.get("bench", "?")][int(run)].add(
            (r.get("name", "?"), r.get("flows", 0)))

    missing = []
    for bench, runs in sorted(runs_by_bench.items()):
        if len(runs) < 2:
            continue
        order = sorted(runs)
        prev_run, last_run = order[-2], order[-1]
        for name, flows in sorted(runs[prev_run] - runs[last_run]):
            missing.append(f"{bench}/{name}@{flows:.0f} "
                           f"(in run {prev_run}, absent from run {last_run})")
    if missing:
        label = "WARNING" if allow_missing else "FAIL"
        lines.append(f"\n{label}: {len(missing)} tier(s) from the previous "
                     f"run are missing from the newest run:")
        for m in missing:
            lines.append(f"  {m}")
        if not allow_missing:
            lines.append(
                "pass --allow-missing if the retirement is intentional")

    return lines, failures, missing


def self_test():
    """Unit battery over synthetic trajectories; returns 0 on success."""

    def row(bench="b", name="t", flows=100, ns=10.0, run=0, calib=0.0,
            pps=0.0, threads=None):
        r = {"bench": bench, "name": name, "flows": flows,
             "ns_per_packet": ns, "run": run}
        if calib > 0:
            r["calib_ns"] = calib
        if pps > 0:
            r["pps"] = pps
        if threads is not None:
            r["threads"] = threads
        return r

    checks = []

    def check(label, cond):
        checks.append((label, cond))
        print(f"  {'ok' if cond else 'FAIL'}: {label}")

    # 1. A >threshold slowdown is a failure; a small one is not.
    _, failures, _ = evaluate([row(ns=10, run=0), row(ns=12, run=1)])
    check("detects a 20% regression", len(failures) == 1)
    _, failures, _ = evaluate([row(ns=10, run=0), row(ns=10.5, run=1)])
    check("tolerates a 5% shift", len(failures) == 0)

    # 2. An improvement is reported as such, never as a failure.
    lines, failures, _ = evaluate([row(ns=10, run=0), row(ns=8, run=1)])
    check("reports improvements",
          len(failures) == 0 and any("improved" in ln for ln in lines))

    # 3. Calibration scaling: 10 ns on a 1.0 box vs 18 ns on a 2.0 box is
    #    9 ns of code — an improvement, not a regression.
    _, failures, _ = evaluate([row(ns=10, run=0, calib=1.0),
                               row(ns=18, run=1, calib=2.0)])
    check("divides out box-speed shifts", len(failures) == 0)

    # 4. A calibration boundary rebases (skips) instead of comparing.
    lines, failures, _ = evaluate([row(ns=10, run=0),
                                   row(ns=30, run=1, calib=1.0)])
    check("rebases across the calibration boundary",
          len(failures) == 0 and any("rebase" in ln for ln in lines))

    # 5. A tier the newest run silently dropped is reported missing;
    #    --allow-missing keeps the report but downgrades the label.
    two_then_one = [row(name="a", run=0), row(name="b", run=0),
                    row(name="a", run=1)]
    _, _, missing = evaluate(two_then_one)
    check("catches a silently dropped tier", len(missing) == 1)
    lines, _, missing = evaluate(two_then_one, allow_missing=True)
    check("--allow-missing downgrades to a warning",
          len(missing) == 1 and any("WARNING" in ln for ln in lines))

    # 6. Accuracy-only rows (ns 0, e.g. Fig. 7 lr series) skip the gate.
    _, failures, _ = evaluate([row(ns=0, run=0), row(ns=0, run=1)])
    check("skips lr-only rows (ns_per_packet = 0)", len(failures) == 0)

    # 7. pps deltas print as information and never flip the verdict.
    lines, failures, _ = evaluate([row(ns=10, run=0, pps=1e8),
                                   row(ns=10.2, run=1, pps=0.98e8)])
    check("prints pps deltas without gating on them",
          len(failures) == 0 and any("pps" in ln for ln in lines))

    # 8. A first-time tier passes trivially.
    lines, failures, _ = evaluate([row(run=0)])
    check("first appearance passes",
          len(failures) == 0 and any("new" in ln for ln in lines))

    # 9. Mode tags split the tier: a serial row never compares against a
    #    threaded row of the same (name, flows).
    _, failures, _ = evaluate([row(ns=10, run=0, threads=True),
                               row(ns=30, run=1, threads=False)])
    check("threaded and serial rows never compare", len(failures) == 0)

    bad = [label for label, cond in checks if not cond]
    if bad:
        print(f"\nFAIL: {len(bad)} self-test check(s) failed")
        return 1
    print(f"\nself-test: all {len(checks)} checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trajectory", nargs="?",
                        help="path to BENCH_flow_store.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="max tolerated fractional ns/packet regression (default 0.10)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="downgrade tiers missing from the newest run to warnings",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="run the checker's own unit battery and exit",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if args.trajectory is None:
        parser.error("trajectory path required (or --self-test)")

    try:
        with open(args.trajectory, "r", encoding="utf-8") as f:
            records = json.load(f)
    except FileNotFoundError:
        print(f"no trajectory at {args.trajectory}; nothing to gate")
        return 0
    except json.JSONDecodeError as e:
        print(f"FAIL: {args.trajectory} is not valid JSON: {e}")
        return 1

    lines, failures, missing = evaluate(records, args.threshold,
                                        args.allow_missing)
    for ln in lines:
        print(ln)

    if failures or (missing and not args.allow_missing):
        if failures:
            print(f"\nFAIL: {len(failures)} tier(s) regressed more than "
                  f"{args.threshold:.0%}:")
            for tier, prev, last, delta in failures:
                print(f"  {tier}: {prev:.2f} -> {last:.2f} ns/pkt "
                      f"({delta:+.1%})")
        return 1
    print("\nbench trajectory within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
