#pragma once

// Fixture: any core file may include sim VOCABULARY headers. Zero findings.
#include "sim/types.hpp"

namespace fix {
struct VocabUser {};
}  // namespace fix
