#pragma once

// Fixture: a core file that is NOT a declared adapter pulling in the sim
// runtime header. Vocabulary headers (sim/types.hpp) would be fine;
// simulator.hpp is not.
#include "sim/simulator.hpp"

namespace fix {
struct BadRuntimeUser {};
}  // namespace fix
