#pragma once

// Fixture: a manifest-listed worker-side file that illegally names
// coordinator-side objects — once for the event loop, once for the
// metrics layer.

namespace fix {

struct Worker {
  void attach(Simulator* event_loop);
  void log_drop() { metrics::touch(); }
};

}  // namespace fix
