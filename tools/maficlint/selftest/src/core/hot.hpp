#pragma once

// Fixture: hot-path allocation lint. `alloc_twice` and `erase_types` each
// carry two violations; `sized_once` suppresses a resize with allow().

#include <functional>
#include <vector>

namespace fix {

struct HotFixture {
  std::vector<int> buf;

  // maficlint: hot
  void alloc_twice(int v) {
    buf.push_back(v);
    int* p = new int[4];
    delete[] p;
  }

  // maficlint: hot
  int erase_types(int v) {
    std::function<int(int)> f = [](int x) { return x + 1; };
    if (v < 0) throw v;
    return f(v);
  }

  // maficlint: hot
  void sized_once() {
    // maficlint: allow(hotpath) fixture: sized exactly once at activation
    buf.resize(64);
  }
};

}  // namespace fix
