// Fixture: ambient-entropy calls, banned everywhere in src/. Three
// violations plus one allow()-suppressed use.

#include <cstdlib>
#include <ctime>
#include <random>

namespace fix {

int three_banned_calls() {
  int seed = std::rand();
  seed ^= static_cast<int>(time(nullptr));
  if (std::getenv("FIX_SEED") != nullptr) seed = 1;
  return seed;
}

int suppressed_use() {
  // maficlint: allow(determinism) fixture: jitter telemetry only, never feeds results
  std::random_device rd;
  return static_cast<int>(rd());
}

}  // namespace fix
