#pragma once

// Fixture: a layering violation suppressed by the escape hatch — must be
// counted as an allow() waiver, not reported as a finding.
// maficlint: allow(layering) fixture: legacy include pending migration
#include "scenario/spec.hpp"

namespace fix {
struct AllowedBad {};
}  // namespace fix
