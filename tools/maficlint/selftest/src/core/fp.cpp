// Fixture: a fingerprint-feeding TU (listed in the manifest's
// fingerprint_tus). Iterating an unordered container here leaks
// hash-bucket order into results: one range-for and one iterator walk.

#include <unordered_map>

namespace fix {

struct FingerprintFeeder {
  std::unordered_map<int, int> counts_;

  int range_for_leak() const {
    int sum = 0;
    for (const auto& kv : counts_) {
      sum = sum * 31 + kv.second;  // order-sensitive fold
    }
    return sum;
  }

  int iterator_leak() const {
    int first = 0;
    for (auto it = counts_.begin(); it != counts_.end(); ++it) {
      first = it->first;
      break;
    }
    return first;
  }
};

}  // namespace fix
