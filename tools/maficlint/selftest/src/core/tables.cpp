// Fixture: the epoch-bump audit. `admit` is listed and bumps (clean);
// `flush` is listed but forgot its bump (finding); `sneaky` shows a
// mutation signal but is not in the manifest's mutator list (finding);
// `has` is a clean read-only method.

#include <cstdint>
#include <set>

namespace fix {

class Tables {
 public:
  void admit(std::uint64_t key);
  void flush();
  void sneaky(std::uint64_t key);
  bool has(std::uint64_t key) const;

 private:
  std::set<std::uint64_t> store_;
  std::uint64_t epoch_ = 0;
};

void Tables::admit(std::uint64_t key) {
  store_.insert(key);
  ++epoch_;
}

void Tables::flush() {
  store_.clear();
}

void Tables::sneaky(std::uint64_t key) {
  store_.erase(key);
  ++epoch_;
}

bool Tables::has(std::uint64_t key) const {
  return store_.count(key) != 0;
}

}  // namespace fix
