#pragma once

// Fixture: escape-hatch hygiene. An allow() naming an unknown rule and an
// allow() with no justification are both findings in their own right.

// maficlint: allow(nonexistent) this rule name does not exist
// maficlint: allow(determinism)

namespace fix {
struct BadAllows {};
}  // namespace fix
