#pragma once

// Fixture: a manifest-listed control-plane file (named seam sub-group)
// that illegally names datapath engines — once for the flow tables,
// once for the filter engine.

namespace fix {

struct ControlPlane {
  void snapshot(FlowTables* tables);
  void actuate() { FilterEngine::activate_all(); }
};

}  // namespace fix
