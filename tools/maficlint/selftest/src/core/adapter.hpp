#pragma once

// Fixture: the declared core->sim adapter. Including the runtime header
// from HERE is legal — this file must produce zero findings.
#include "sim/simulator.hpp"
#include "sim/types.hpp"

namespace fix {
struct Adapter {};
}  // namespace fix
