#pragma once

// Fixture: sim must never include scenario (or any layer above itself).
#include "scenario/spec.hpp"

namespace fix {
struct SimThing {};
}  // namespace fix
