#pragma once

// Fixture: util is the bottom layer and may depend on nothing but itself.
#include "sim/types.hpp"

namespace fix {
using BadAlias = int;
}  // namespace fix
