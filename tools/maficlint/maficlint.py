#!/usr/bin/env python3
"""maficlint — project-invariant static analysis for the MAFIC tree.

Machine-checks the contracts every bit-identity guarantee in this repo
rests on (see docs/INVARIANTS.md for the catalogue):

  layering     the include DAG: util depends on nothing, core reaches the
               simulator only through declared seam/adapter files, sim
               never includes scenario/, ... (full edge list in the
               manifest).
  determinism  bans ambient-entropy calls (std::rand, time(),
               system_clock, random_device, getenv) everywhere in src/,
               and bans iteration over std::unordered_map/set in the
               translation units that feed fingerprints, stats
               aggregation or report output (manifest-listed).
  epoch        every FlowTables mutating method named in the manifest
               must bump the structural epoch; a method that shows a
               mutation signal (store_ insert/erase/clear, arena alloc/
               free) but is not listed fails the build.
  hotpath      functions annotated `// maficlint: hot` may not allocate
               (new/malloc/push_back/emplace_back/resize/reserve),
               construct std::function, or throw.
  seams        worker-side code (the journaled sub-span path) may not
               name the Simulator, the shared Prober, or the metrics
               ledger.

Escape hatch: `// maficlint: allow(<rule>) <reason>` on the offending
line (or the line directly above) suppresses that line for that rule.
The reason is mandatory; allows are counted and printed so the waiver
surface stays visible in CI logs.

Dependency-free: python3 stdlib only (tomllib for the manifest).

Usage:
  maficlint.py [--root DIR] [--manifest FILE]   lint src/ under DIR
  maficlint.py --self-test                      fixture battery (selftest/)
  maficlint.py --check-tools                    stdlib lint of tools/*.py
"""

from __future__ import annotations

import argparse
import ast
import builtins
import os
import re
import sys
import tomllib

# --------------------------------------------------------------------------
# Findings and allow() suppressions
# --------------------------------------------------------------------------

RULES = ("layering", "determinism", "epoch", "hotpath", "seams", "manifest")

ALLOW_RE = re.compile(r"//\s*maficlint:\s*allow\((\w+)\)\s*(.*)$")
HOT_RE = re.compile(r"//\s*maficlint:\s*hot\b")


class Finding:
    def __init__(self, path, line, rule, message):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __repr__(self):
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class Allow:
    def __init__(self, path, line, rule, reason):
        self.path = path
        self.line = line
        self.rule = rule
        self.reason = reason


def parse_allows(path, lines):
    """All allow() comments in the file, keyed by (rule, line). An allow
    suppresses its own line and the line below (so it can sit above a
    long statement)."""
    allows = []
    for i, text in enumerate(lines, start=1):
        m = ALLOW_RE.search(text)
        if m:
            allows.append(Allow(path, i, m.group(1), m.group(2).strip()))
    return allows


def allowed(allows, rule, line):
    for a in allows:
        if a.rule == rule and line in (a.line, a.line + 1):
            return a
    return None


# --------------------------------------------------------------------------
# Source model
# --------------------------------------------------------------------------


class SourceFile:
    """One file: raw text, per-line view, comment/string-stripped view
    (same line count, so line numbers survive), and allow() comments."""

    def __init__(self, relpath, text):
        self.relpath = relpath
        self.text = text
        self.lines = text.splitlines()
        self.code = strip_comments(text)
        self.code_lines = self.code.splitlines()
        self.allows = parse_allows(relpath, self.lines)


def strip_comments(text):
    """Blanks out comments and string/char literals, preserving newlines
    (and the `//` of maficlint markers is gone too — rules that need the
    markers read .lines, rules that match code read .code)."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif c == "/" and nxt == "*":
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        elif c in "\"'":
            quote = c
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    i += 1
                elif text[i] == "\n":
                    out.append("\n")
                i += 1
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_tree(root, subdir, exts=(".hpp", ".cpp", ".h", ".cc")):
    """relpath (posix, relative to root) -> SourceFile for every source
    file under root/subdir."""
    files = {}
    base = os.path.join(root, subdir)
    for dirpath, _dirnames, filenames in os.walk(base):
        for name in sorted(filenames):
            if not name.endswith(exts):
                continue
            full = os.path.join(dirpath, name)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, encoding="utf-8") as f:
                files[rel] = SourceFile(rel, f.read())
    return files


def line_of_offset(text, offset):
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Rule 1: layering DAG
# --------------------------------------------------------------------------

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.M)


def check_layering(files, manifest):
    cfg = manifest.get("layering", {})
    allowed_edges = cfg.get("allowed", {})
    restricted = cfg.get("restricted", {})
    findings = []
    for rel, sf in sorted(files.items()):
        # layer = first path component under src/ ("src/core/x.hpp" -> core)
        parts = rel.split("/")
        if len(parts) < 3 or parts[0] != "src":
            continue
        layer = parts[1]
        inner = "/".join(parts[1:])  # e.g. core/flow_tables.hpp
        # Include paths are string literals, which the comment-stripped
        # view blanks — match the raw text, but only where the stripped
        # view still shows a preprocessor line (skips commented-out
        # includes).
        for m in INCLUDE_RE.finditer(sf.text):
            target = m.group(1)
            tgt_layer = target.split("/")[0]
            line = line_of_offset(sf.text, m.start())
            if line <= len(sf.code_lines) and \
                    not sf.code_lines[line - 1].lstrip().startswith("#"):
                continue
            a = allowed(sf.allows, "layering", line)
            if a:
                continue
            if layer not in allowed_edges:
                findings.append(Finding(
                    rel, line, "layering",
                    f"layer '{layer}' is not in the manifest's allowed-edge "
                    f"list (manifest drift?)"))
                continue
            if tgt_layer not in allowed_edges[layer]:
                findings.append(Finding(
                    rel, line, "layering",
                    f"include edge {layer} -> {tgt_layer} "
                    f"(\"{target}\") is not an allowed layering edge"))
                continue
            # Restricted target layer: only manifest-listed headers of the
            # target may be included outside the declared adapter files.
            rcfg = restricted.get(f"{layer}->{tgt_layer}")
            if rcfg is None:
                continue
            if target in rcfg.get("vocabulary", []):
                continue
            if inner in rcfg.get("adapters", []):
                continue
            findings.append(Finding(
                rel, line, "layering",
                f"{layer} file includes runtime header \"{target}\" of "
                f"restricted layer '{tgt_layer}' but is neither a declared "
                f"adapter nor including a vocabulary header"))
    return findings


# --------------------------------------------------------------------------
# Rule 2: determinism bans
# --------------------------------------------------------------------------


def check_determinism(files, manifest):
    cfg = manifest.get("determinism", {})
    banned = cfg.get("banned", [])
    fingerprint_tus = set(cfg.get("fingerprint_tus", []))
    findings = []
    for rel, sf in sorted(files.items()):
        for ban in banned:
            for m in re.finditer(ban["pattern"], sf.code):
                line = line_of_offset(sf.code, m.start())
                if allowed(sf.allows, "determinism", line):
                    continue
                findings.append(Finding(
                    rel, line, "determinism",
                    f"banned call '{m.group(0).strip()}': {ban['why']}"))
        if rel in fingerprint_tus:
            findings.extend(check_unordered_iteration(sf))
    return findings


UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set)\s*<[^;{}()]*?>[ \t\r\n&]*(\w+)\s*[;({=]")


def check_unordered_iteration(sf):
    """In a fingerprint-feeding TU: no range-for / .begin() iteration over
    any name declared (variable, member, or accessor return) with an
    unordered_map/unordered_set type anywhere in the same file."""
    tainted = set(UNORDERED_DECL_RE.findall(sf.code))
    findings = []
    if not tainted:
        return findings
    # Range-fors: `for (` ... one top-level non-`::` colon ... `)` with no
    # semicolon (which would make it a classic for).
    for m in re.finditer(r"\bfor\s*\(", sf.code):
        start = m.end() - 1
        depth = 0
        colon = -1
        end = -1
        for i in range(start, min(start + 2000, len(sf.code))):
            c = sf.code[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    end = i
                    break
            elif c == ";" and depth == 1:
                break  # classic for
            elif c == ":" and depth == 1 and colon < 0:
                prev = sf.code[i - 1]
                nxt = sf.code[i + 1] if i + 1 < len(sf.code) else ""
                if prev != ":" and nxt != ":":
                    colon = i
        if colon < 0 or end < 0:
            continue
        range_expr = sf.code[colon + 1:end]
        hits = sorted(t for t in tainted
                      if re.search(rf"\b{re.escape(t)}\b", range_expr))
        if not hits:
            continue
        line = line_of_offset(sf.code, m.start())
        if allowed(sf.allows, "determinism", line):
            continue
        findings.append(Finding(
            sf.relpath, line, "determinism",
            f"range-for over unordered container '{hits[0]}' in a "
            f"fingerprint-feeding TU: iteration order is hash-bucket "
            f"order; use a sorted/flat container or sort before emitting"))
    # Explicit iterator loops.
    for t in sorted(tainted):
        for m in re.finditer(rf"\b{re.escape(t)}\s*\.\s*c?begin\s*\(",
                             sf.code):
            line = line_of_offset(sf.code, m.start())
            if allowed(sf.allows, "determinism", line):
                continue
            findings.append(Finding(
                sf.relpath, line, "determinism",
                f"iterator walk over unordered container '{t}' in a "
                f"fingerprint-feeding TU"))
    return findings


# --------------------------------------------------------------------------
# Rule 3: FlowTables epoch-bump audit
# --------------------------------------------------------------------------


def method_bodies(code, class_name):
    """name -> (start_line, body_text) for every `T Class::name(...) {...}`
    out-of-line definition in a .cpp, via brace matching."""
    bodies = {}
    for m in re.finditer(
            rf"\b{re.escape(class_name)}\s*::\s*(~?\w+)\s*\(", code):
        name = m.group(1)
        # Walk past the parameter list, then any specifiers, to the body.
        i = m.end() - 1
        depth = 0
        while i < len(code):
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        j = i + 1
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue  # declaration or pointer-to-member use
        # Initializer lists contain braces; match until depth returns to 0.
        k = j
        depth = 0
        while k < len(code):
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        body = code[j:k + 1]
        bodies[name] = (line_of_offset(code, m.start()), body)
    return bodies


def check_epoch(files, manifest):
    cfg = manifest.get("epoch", {})
    rel = cfg.get("file")
    findings = []
    if not rel:
        return findings
    sf = files.get(rel)
    if sf is None:
        return [Finding(rel, 1, "manifest",
                        f"epoch audit file '{rel}' not found")]
    class_name = cfg.get("class", "FlowTables")
    mutators = cfg.get("mutators", [])
    bump_re = cfg.get("bump", r"\+\+\s*epoch_|epoch_\s*\+=|epoch_\s*\+\+")
    signals = cfg.get("mutation_signals", [])
    bodies = method_bodies(sf.code, class_name)

    for name in mutators:
        if name not in bodies:
            findings.append(Finding(
                rel, 1, "manifest",
                f"manifest lists mutator {class_name}::{name} but no "
                f"definition was found (manifest drift — update "
                f"invariants.toml [epoch] mutators)"))
            continue
        line, body = bodies[name]
        if not re.search(bump_re, body):
            if allowed(sf.allows, "epoch", line):
                continue
            findings.append(Finding(
                rel, line, "epoch",
                f"{class_name}::{name} is a manifest-listed structural "
                f"mutator but its body never bumps the epoch "
                f"(expected /{bump_re}/)"))

    listed = set(mutators)
    for name, (line, body) in sorted(bodies.items()):
        if name in listed:
            continue
        hits = [s for s in signals if re.search(s, body)]
        if not hits:
            continue
        if allowed(sf.allows, "epoch", line):
            continue
        findings.append(Finding(
            rel, line, "epoch",
            f"{class_name}::{name} mutates table structure "
            f"(matched {hits[0]}) but is not in the manifest's mutator "
            f"list — add it AND bump the epoch, or it will invalidate "
            f"batched Peeks silently"))
    return findings


# --------------------------------------------------------------------------
# Rule 4: hot-path allocation lint
# --------------------------------------------------------------------------


def hot_regions(sf):
    """(anchor_line, fn_line, body_start_line, body_text) for every
    function definition annotated `// maficlint: hot` (marker on its own
    line or trailing a line directly above the signature)."""
    regions = []
    # Offsets of code line starts, to map marker lines into .code.
    line_start = [0]
    for i, c in enumerate(sf.code):
        if c == "\n":
            line_start.append(i + 1)
    for i, text in enumerate(sf.lines, start=1):
        if not HOT_RE.search(text):
            continue
        # Find the next `{` at or after the marker line; its matching close
        # brace bounds the function body.
        search_from = line_start[min(i, len(line_start) - 1)]
        open_idx = sf.code.find("{", search_from)
        if open_idx < 0:
            continue
        depth = 0
        k = open_idx
        while k < len(sf.code):
            if sf.code[k] == "{":
                depth += 1
            elif sf.code[k] == "}":
                depth -= 1
                if depth == 0:
                    break
            k += 1
        regions.append((i, line_of_offset(sf.code, open_idx),
                        open_idx, sf.code[open_idx:k + 1]))
    return regions


def check_hotpath(files, manifest):
    cfg = manifest.get("hotpath", {})
    banned = cfg.get("banned", [])
    findings = []
    hot_count = 0
    for rel, sf in sorted(files.items()):
        for _anchor, _fn_line, body_off, body in hot_regions(sf):
            hot_count += 1
            for ban in banned:
                for m in re.finditer(ban["pattern"], body):
                    line = line_of_offset(sf.code, body_off + m.start())
                    if allowed(sf.allows, "hotpath", line):
                        continue
                    findings.append(Finding(
                        rel, line, "hotpath",
                        f"hot function calls '{m.group(0).strip()}': "
                        f"{ban['why']}"))
    return findings, hot_count


# --------------------------------------------------------------------------
# Rule 5: seam discipline
# --------------------------------------------------------------------------


def check_seams(files, manifest):
    """Seam groups: the legacy top-level [seams] worker_files/banned pair,
    plus any number of NAMED sub-groups ([seams.<name>] with files= and
    [[seams.<name>.banned]]) so each side of a seam can declare its own
    vocabulary ban list (e.g. control-plane files may not name the
    datapath engines)."""
    cfg = manifest.get("seams", {})
    groups = []
    if cfg.get("worker_files"):
        groups.append(("worker-side", cfg.get("worker_files", []),
                       cfg.get("banned", [])))
    for name, sub in sorted(cfg.items()):
        if isinstance(sub, dict):
            groups.append((name.replace("_", "-"), sub.get("files", []),
                           sub.get("banned", [])))
    findings = []
    for label, group_files, banned in groups:
        for rel in group_files:
            sf = files.get(rel)
            if sf is None:
                findings.append(Finding(
                    rel, 1, "manifest",
                    f"seam-discipline {label} file '{rel}' not found "
                    f"(manifest drift — update invariants.toml [seams])"))
                continue
            for ban in banned:
                for m in re.finditer(ban["pattern"], sf.code):
                    line = line_of_offset(sf.code, m.start())
                    if allowed(sf.allows, "seams", line):
                        continue
                    findings.append(Finding(
                        rel, line, "seams",
                        f"{label} file names '{m.group(0).strip()}': "
                        f"{ban['why']}"))
    return findings


# --------------------------------------------------------------------------
# Allow-comment hygiene
# --------------------------------------------------------------------------


def check_allows(files):
    """Every allow() must name a known rule and carry a reason."""
    findings = []
    all_allows = []
    for rel, sf in sorted(files.items()):
        for a in sf.allows:
            all_allows.append(a)
            if a.rule not in RULES:
                findings.append(Finding(
                    rel, a.line, "manifest",
                    f"allow() names unknown rule '{a.rule}'"))
            if not a.reason:
                findings.append(Finding(
                    rel, a.line, "manifest",
                    f"allow({a.rule}) without a reason — the escape hatch "
                    f"requires a justification"))
    return findings, all_allows


# --------------------------------------------------------------------------
# Engine
# --------------------------------------------------------------------------


def run_all(files, manifest):
    findings = []
    findings += check_layering(files, manifest)
    findings += check_determinism(files, manifest)
    findings += check_epoch(files, manifest)
    hp, hot_count = check_hotpath(files, manifest)
    findings += hp
    findings += check_seams(files, manifest)
    allow_findings, allows = check_allows(files)
    findings += allow_findings
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, allows, hot_count


def lint_main(root, manifest_path):
    with open(manifest_path, "rb") as f:
        manifest = tomllib.load(f)
    files = load_tree(root, "src")
    findings, allows, hot_count = run_all(files, manifest)
    for f in findings:
        print(f)
    print(f"maficlint: {len(files)} files, {hot_count} hot-annotated "
          f"functions, {len(allows)} allow() waivers, "
          f"{len(findings)} findings")
    for a in allows:
        print(f"  allow({a.rule}) {a.path}:{a.line}: {a.reason}")
    return 1 if findings else 0


# --------------------------------------------------------------------------
# --check-tools: stdlib-only lint of the repo's python gate scripts
# --------------------------------------------------------------------------


def collect_bindings(tree):
    names = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)):
            names.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                               ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.arg):
            names.add(node.arg)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ExceptHandler) and node.name:
            names.add(node.name)
        elif isinstance(node, ast.Global):
            names.update(node.names)
    return names


def check_python_file(path):
    """pyflakes-lite: syntax, unused module-level imports, and names that
    are loaded but bound nowhere in the module (scope-insensitive on
    purpose: no false positives, still catches typos and deleted
    helpers)."""
    problems = []
    with open(path, encoding="utf-8") as f:
        src = f.read()
    try:
        tree = ast.parse(src, filename=path)
    except SyntaxError as e:
        return [f"{path}:{e.lineno}: syntax error: {e.msg}"]

    bound = collect_bindings(tree)
    loaded = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            loaded.setdefault(node.id, node.lineno)
    builtin_names = set(dir(builtins)) | {"__file__", "__name__", "__doc__"}
    for name, lineno in sorted(loaded.items(), key=lambda kv: kv[1]):
        if name not in bound and name not in builtin_names:
            problems.append(f"{path}:{lineno}: undefined name '{name}'")

    # Unused imports (module level only; "import x as _x" opts out).
    used = set(loaded)
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            root = node
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name):
                used.add(root.id)
    for node in tree.body:
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            if isinstance(node, ast.ImportFrom) and \
                    node.module == "__future__":
                continue
            for alias in node.names:
                top = (alias.asname or alias.name).split(".")[0]
                if alias.name == "*" or top.startswith("_"):
                    continue
                if top not in used:
                    problems.append(
                        f"{path}:{node.lineno}: unused import '{top}'")
    return problems


def check_tools_main(root):
    targets = []
    for base in ("tools", "tools/maficlint"):
        d = os.path.join(root, base)
        if not os.path.isdir(d):
            continue
        for name in sorted(os.listdir(d)):
            if name.endswith(".py"):
                targets.append(os.path.join(d, name))
    problems = []
    for t in targets:
        problems.extend(check_python_file(t))
    for p in problems:
        print(p)
    print(f"maficlint --check-tools: {len(targets)} scripts, "
          f"{len(problems)} problems")
    return 1 if problems else 0


# --------------------------------------------------------------------------
# --self-test: seeded-violation fixtures + live epoch-deletion battery
# --------------------------------------------------------------------------


def selftest_main(repo_root):
    here = os.path.dirname(os.path.abspath(__file__))
    fixture_root = os.path.join(here, "selftest")
    with open(os.path.join(fixture_root, "invariants.toml"), "rb") as f:
        fixture_manifest = tomllib.load(f)
    with open(os.path.join(fixture_root, "expected.toml"), "rb") as f:
        expected_cfg = tomllib.load(f)

    failures = []

    def expect(cond, what):
        if cond:
            print(f"  ok   {what}")
        else:
            print(f"  FAIL {what}")
            failures.append(what)

    # -- 1. fixture tree: every seeded violation found, nothing else -------
    files = load_tree(fixture_root, "src")
    findings, allows, hot_count = run_all(files, fixture_manifest)
    got = {}
    for f in findings:
        got[(f.path, f.rule)] = got.get((f.path, f.rule), 0) + 1
    want = {}
    for e in expected_cfg.get("finding", []):
        key = (e["file"], e["rule"])
        want[key] = want.get(key, 0) + int(e.get("count", 1))
    print(f"self-test: fixture tree ({len(files)} files, "
          f"{len(findings)} findings, {len(allows)} allows, "
          f"{hot_count} hot fns)")
    for key in sorted(set(want) | set(got)):
        w, g = want.get(key, 0), got.get(key, 0)
        expect(w == g,
               f"{key[0]} [{key[1]}]: expected {w} findings, got {g}")
    min_allows = int(expected_cfg.get("min_allows", 0))
    expect(len(allows) >= min_allows,
           f"allow() suppressions counted (>= {min_allows}, "
           f"got {len(allows)})")

    # -- 2. manifest drift: a listed mutator that does not exist ----------
    drift = dict(fixture_manifest)
    drift_epoch = dict(drift.get("epoch", {}))
    drift_epoch["mutators"] = list(drift_epoch.get("mutators", [])) + [
        "mutator_that_does_not_exist"]
    drift["epoch"] = drift_epoch
    drift_findings, _, _ = run_all(files, drift)
    expect(any(f.rule == "manifest" and "mutator_that_does_not_exist"
               in f.message for f in drift_findings),
           "manifest drift (listed mutator missing) is detected")

    # -- 3. live flow_tables.cpp: the epoch audit has teeth ---------------
    # Run against the REAL repo manifest and the REAL flow_tables.cpp:
    # deleting any single `++epoch_;` bump, or appending an unlisted
    # mutator, must flip the lint from green to red.
    with open(os.path.join(repo_root, "tools", "maficlint",
                           "invariants.toml"), "rb") as f:
        real_manifest = tomllib.load(f)
    real_rel = real_manifest["epoch"]["file"]
    real_path = os.path.join(repo_root, real_rel)
    with open(real_path, encoding="utf-8") as f:
        real_text = f.read()

    def epoch_findings_for(text):
        overlay = {real_rel: SourceFile(real_rel, text)}
        return check_epoch(overlay, real_manifest)

    base = epoch_findings_for(real_text)
    expect(not base, f"pristine {real_rel} passes the epoch audit")

    bumps = [m.start() for m in re.finditer(r"\+\+epoch_;", real_text)]
    n_mutators = len(real_manifest["epoch"]["mutators"])
    expect(len(bumps) == n_mutators,
           f"{real_rel} has exactly {n_mutators} epoch bumps "
           f"(one per manifest-listed mutator; got {len(bumps)})")
    for idx, off in enumerate(bumps):
        mutated = real_text[:off] + real_text[off + len("++epoch_;"):]
        broken = epoch_findings_for(mutated)
        expect(any(f.rule == "epoch" for f in broken),
               f"deleting epoch bump #{idx + 1} (offset {off}) fails "
               f"the audit")

    sneaky = real_text.replace(
        "}  // namespace mafic::core",
        "void FlowTables::sneaky_unlisted_mutator(std::uint64_t key) {\n"
        "  store_.erase(key);\n"
        "}\n\n}  // namespace mafic::core")
    expect(any(f.rule == "epoch" and "sneaky_unlisted_mutator" in f.message
               for f in epoch_findings_for(sneaky)),
           "an unlisted mutator with a mutation signal fails the audit")

    # -- 4. python self-lint: a seeded-broken script is caught ------------
    bad_py = os.path.join(fixture_root, "bad_tool.py.fixture")
    if os.path.exists(bad_py):
        probs = check_python_file(bad_py)
        expect(any("undefined name" in p for p in probs),
               "--check-tools catches an undefined name")
        expect(any("unused import" in p for p in probs),
               "--check-tools catches an unused import")

    print(f"self-test: {len(failures)} failures")
    return 1 if failures else 0


# --------------------------------------------------------------------------


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this file)")
    ap.add_argument("--manifest", default=None,
                    help="invariants manifest (default: beside this file)")
    ap.add_argument("--self-test", action="store_true",
                    help="run the seeded-violation fixture battery")
    ap.add_argument("--check-tools", action="store_true",
                    help="stdlib lint of tools/*.py gate scripts")
    args = ap.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    root = args.root or os.path.dirname(os.path.dirname(here))
    manifest = args.manifest or os.path.join(here, "invariants.toml")

    if args.self_test:
        return selftest_main(root)
    if args.check_tools:
        return check_tools_main(root)
    return lint_main(root, manifest)


if __name__ == "__main__":
    sys.exit(main())
