#pragma once

/// \file set_union.hpp
/// Set-algebra estimators over mergeable cardinality sketches. The pushback
/// scheme (paper section II) computes the traffic-matrix entry
///   a_ij = |Si ∩ Dj| = |Si| + |Dj| − |Si ∪ Dj|
/// where the union cardinality comes from the distributed max-merge of the
/// two routers' counters.

#include <algorithm>

namespace mafic::sketch {

/// Inclusion–exclusion intersection estimate; clamped at zero because
/// sketch noise can push the raw value slightly negative.
template <typename Counter>
double intersection_estimate(const Counter& a, const Counter& b) {
  const double ea = a.estimate();
  const double eb = b.estimate();
  const double eu = Counter::union_estimate(a, b);
  return std::max(0.0, ea + eb - eu);
}

/// Jaccard-style overlap fraction (intersection / union); in [0, 1] up to
/// estimator noise. Used by tests and diagnostics.
template <typename Counter>
double overlap_fraction(const Counter& a, const Counter& b) {
  const double eu = Counter::union_estimate(a, b);
  if (eu <= 0.0) return 0.0;
  return std::clamp(intersection_estimate(a, b) / eu, 0.0, 1.0);
}

}  // namespace mafic::sketch
