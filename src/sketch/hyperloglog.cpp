#include "sketch/hyperloglog.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace mafic::sketch {

namespace {
double hll_alpha(std::size_t m) noexcept {
  switch (m) {
    case 16:
      return 0.673;
    case 32:
      return 0.697;
    case 64:
      return 0.709;
    default:
      return 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
}
}  // namespace

HyperLogLog::HyperLogLog(unsigned precision_bits, std::uint64_t hash_seed)
    : precision_bits_(precision_bits),
      hash_seed_(hash_seed),
      registers_(std::size_t{1} << precision_bits, 0),
      alpha_m_(hll_alpha(std::size_t{1} << precision_bits)) {
  if (precision_bits < 4 || precision_bits > 20) {
    throw std::invalid_argument(
        "HyperLogLog precision_bits must be in [4, 20]");
  }
}

void HyperLogLog::add(std::uint64_t item) noexcept {
  const std::uint64_t h = util::seeded_hash(hash_seed_, item);
  const std::size_t bucket = h >> (64 - precision_bits_);
  const std::uint64_t rest = h << precision_bits_;
  const int rank = rest == 0 ? static_cast<int>(64 - precision_bits_) + 1
                             : std::countl_zero(rest) + 1;
  auto& reg = registers_[bucket];
  reg = std::max(reg, static_cast<std::uint8_t>(rank));
  ++items_added_;
}

double HyperLogLog::estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double harmonic = 0.0;
  std::size_t zeros = 0;
  for (const auto r : registers_) {
    harmonic += std::exp2(-static_cast<double>(r));
    if (r == 0) ++zeros;
  }
  double e = alpha_m_ * m * m / harmonic;
  // Small-range correction: linear counting when registers are sparse.
  if (e <= 2.5 * m && zeros > 0) {
    e = m * std::log(m / static_cast<double>(zeros));
  }
  return e;
}

void HyperLogLog::merge(const HyperLogLog& other) {
  if (!compatible(other)) {
    throw std::invalid_argument("merging incompatible HyperLogLog counters");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  items_added_ += other.items_added_;
}

double HyperLogLog::union_estimate(const HyperLogLog& a,
                                   const HyperLogLog& b) {
  HyperLogLog u = a;
  u.merge(b);
  return u.estimate();
}

}  // namespace mafic::sketch
