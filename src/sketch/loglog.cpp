#include "sketch/loglog.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace mafic::sketch {

double loglog_alpha(std::size_t m) noexcept {
  // Asymptotic constant; the small-m bias is below our needs for m >= 64.
  (void)m;
  return 0.39701;
}

LogLog::LogLog(unsigned precision_bits, std::uint64_t hash_seed)
    : precision_bits_(precision_bits),
      hash_seed_(hash_seed),
      registers_(std::size_t{1} << precision_bits, 0),
      alpha_m_(loglog_alpha(std::size_t{1} << precision_bits)) {
  if (precision_bits < 4 || precision_bits > 20) {
    throw std::invalid_argument("LogLog precision_bits must be in [4, 20]");
  }
}

void LogLog::add(std::uint64_t item) noexcept {
  const std::uint64_t h = util::seeded_hash(hash_seed_, item);
  const std::size_t bucket = h >> (64 - precision_bits_);
  const std::uint64_t rest = h << precision_bits_;
  // Rank = position of the leftmost 1-bit in the remaining bits (1-based).
  const int rank =
      rest == 0 ? static_cast<int>(64 - precision_bits_) + 1
                : std::countl_zero(rest) + 1;
  auto& reg = registers_[bucket];
  reg = std::max(reg, static_cast<std::uint8_t>(rank));
  ++items_added_;
}

double LogLog::estimate() const noexcept {
  const auto m = static_cast<double>(registers_.size());
  double sum = 0.0;
  std::size_t zeros = 0;
  for (const auto r : registers_) {
    sum += static_cast<double>(r);
    if (r == 0) ++zeros;
  }
  const double raw = alpha_m_ * m * std::exp2(sum / m);
  // Small-range correction (super-LogLog style): the raw estimator floors
  // at alpha_m * m, which would make near-empty per-epoch router sketches
  // look like hundreds of packets. Linear counting over the untouched
  // registers is accurate in exactly that regime.
  if (zeros > 0 && raw < 3.0 * m) {
    return m * std::log(m / static_cast<double>(zeros));
  }
  return raw;
}

void LogLog::merge(const LogLog& other) {
  if (!compatible(other)) {
    throw std::invalid_argument("merging incompatible LogLog counters");
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] = std::max(registers_[i], other.registers_[i]);
  }
  items_added_ += other.items_added_;
}

double LogLog::union_estimate(const LogLog& a, const LogLog& b) {
  LogLog u = a;
  u.merge(b);
  return u.estimate();
}

}  // namespace mafic::sketch
