#pragma once

/// \file control_snapshot.hpp
/// The control plane's copy-on-epoch snapshot seam.
///
/// The asynchronous control-plane detector (pushback/control_plane.hpp)
/// never touches live datapath state: at every TrafficMonitor epoch the
/// sim thread assembles a ControlSnapshot — a frozen copy of the epoch's
/// traffic matrix plus plain-integer samples of the per-victim decision
/// counters — and hands THAT to the detection step, which may run on a
/// ShardWorkerPool worker. Because the snapshot is a by-value copy taken
/// at an epoch-aligned sim event, detection is a pure function of it:
/// results are bit-identical whether the step runs inline or pooled, and
/// workers share nothing with the engines they observe (same race-free
/// shape as the PR 5 seam journals, applied to the control plane).
///
/// This header is vocabulary only: plain structs of integers/doubles and
/// the already-frozen TrafficMatrixSnapshot. It must not name live
/// datapath types (FlowTables, FilterEngine, the verdict pipeline) — the
/// maficlint `seams` rule machine-checks that for every control-plane
/// file, this one included.

#include <cstdint>
#include <vector>

#include "sketch/traffic_matrix.hpp"
#include "util/ip.hpp"

namespace mafic::sketch {

/// One protected destination's decision counters, sampled cumulatively at
/// the snapshot instant (plain integers; the provider reads whatever
/// engine aggregation it likes and writes numbers here).
struct VictimCounterSample {
  util::Addr victim = util::kInvalidAddr;
  sim::NodeId last_hop_router = sim::kInvalidNode;
  std::uint64_t decided_nice = 0;
  std::uint64_t decided_malicious = 0;
  std::uint64_t screened_sources = 0;
  std::uint64_t evictions = 0;
};

/// Frozen epoch view handed to the detection step.
struct ControlSnapshot {
  TrafficMatrixSnapshot matrix;
  /// Victim order (primary first, then extras) — the order every
  /// per-victim walk in the control plane uses, so nothing downstream
  /// depends on container iteration order.
  std::vector<VictimCounterSample> victims;
};

}  // namespace mafic::sketch
