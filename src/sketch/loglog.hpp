#pragma once

/// \file loglog.hpp
/// Durand–Flajolet LogLog cardinality counter (their reference [3]) with
/// stochastic averaging over m = 2^k buckets. This is the O(log log n)
/// per-router statistic the set-union counting pushback scheme keeps for
/// the packet sets Si (injected at router i) and Di (terminating at i).
///
/// Two counters are *mergeable* (register-wise max) exactly when they share
/// the same precision and hash seed; the merge of the counters of two sets
/// estimates |A ∪ B| — the operation behind the traffic matrix
/// a_ij = |Si| + |Dj| − |Si ∪ Dj|.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace mafic::sketch {

class LogLog {
 public:
  /// `precision_bits` = k, giving m = 2^k registers; standard error is
  /// roughly 1.30 / sqrt(m). `hash_seed` must match across counters that
  /// will be merged.
  explicit LogLog(unsigned precision_bits = 10, std::uint64_t hash_seed = 0);

  /// Adds one item (e.g. a packet uid).
  void add(std::uint64_t item) noexcept;

  /// Durand–Flajolet estimator: alpha_m * m * 2^{mean(registers)}.
  double estimate() const noexcept;

  /// Register-wise max merge; requires compatible() with `other`.
  void merge(const LogLog& other);

  /// Union estimate of two compatible counters without mutating either.
  static double union_estimate(const LogLog& a, const LogLog& b);

  bool compatible(const LogLog& other) const noexcept {
    return registers_.size() == other.registers_.size() &&
           hash_seed_ == other.hash_seed_;
  }

  void reset() noexcept {
    std::fill(registers_.begin(), registers_.end(), std::uint8_t{0});
    items_added_ = 0;
  }

  std::size_t register_count() const noexcept { return registers_.size(); }
  std::uint64_t hash_seed() const noexcept { return hash_seed_; }
  std::uint64_t items_added() const noexcept { return items_added_; }

  /// Storage footprint in bytes (the paper's O(log log n) selling point:
  /// 5-bit registers suffice; we spend a byte each for simplicity).
  std::size_t memory_bytes() const noexcept { return registers_.size(); }

  const std::vector<std::uint8_t>& registers() const noexcept {
    return registers_;
  }

 private:
  unsigned precision_bits_;
  std::uint64_t hash_seed_;
  std::vector<std::uint8_t> registers_;
  std::uint64_t items_added_ = 0;
  double alpha_m_;
};

/// alpha_m constant for the LogLog estimator (asymptotic 0.39701 with
/// small-m corrections per Durand–Flajolet).
double loglog_alpha(std::size_t m) noexcept;

}  // namespace mafic::sketch
