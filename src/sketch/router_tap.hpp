#pragma once

/// \file router_tap.hpp
/// The paper's `LogLogCounter` Connector: installed at the head of access
/// SimplexLinks so routers record the packet sets entering (Si) and leaving
/// (Dj) the core. These helpers wire TapConnectors to a RouterSketchBank
/// (and optionally an ExactSketchBank for ground truth).

#include "sim/link.hpp"
#include "sketch/traffic_matrix.hpp"

namespace mafic::sketch {

/// Records packets traversing `access_link` (host -> router) into the
/// S-sketch of `router`.
inline void attach_ingress_counter(sim::SimplexLink* access_link,
                                   sim::NodeId router, RouterSketchBank* bank,
                                   ExactSketchBank* exact = nullptr) {
  access_link->add_head_filter(std::make_unique<sim::TapConnector>(
      [bank, exact, router](const sim::Packet& p) {
        bank->record_ingress(router, p.uid);
        if (exact != nullptr) exact->record_ingress(router, p.uid);
      }));
}

/// Records packets traversing `access_link` (router -> host) into the
/// D-sketch of `router`.
inline void attach_egress_counter(sim::SimplexLink* access_link,
                                  sim::NodeId router, RouterSketchBank* bank,
                                  ExactSketchBank* exact = nullptr) {
  access_link->add_head_filter(std::make_unique<sim::TapConnector>(
      [bank, exact, router](const sim::Packet& p) {
        bank->record_egress(router, p.uid);
        if (exact != nullptr) exact->record_egress(router, p.uid);
      }));
}

}  // namespace mafic::sketch
