#include "sketch/traffic_matrix.hpp"

namespace mafic::sketch {

RouterSketchBank::RouterSketchBank(std::size_t router_count,
                                   unsigned precision_bits,
                                   std::uint64_t hash_seed) {
  s_.reserve(router_count);
  d_.reserve(router_count);
  for (std::size_t i = 0; i < router_count; ++i) {
    s_.emplace_back(precision_bits, hash_seed);
    d_.emplace_back(precision_bits, hash_seed);
  }
}

void RouterSketchBank::record_ingress(sim::NodeId router, std::uint64_t uid) {
  s_.at(router).add(uid);
}

void RouterSketchBank::record_egress(sim::NodeId router, std::uint64_t uid) {
  d_.at(router).add(uid);
}

void RouterSketchBank::reset() noexcept {
  for (auto& c : s_) c.reset();
  for (auto& c : d_) c.reset();
}

std::size_t RouterSketchBank::memory_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& c : s_) total += c.memory_bytes();
  for (const auto& c : d_) total += c.memory_bytes();
  return total;
}

double ExactSketchBank::intersection(sim::NodeId i, sim::NodeId j) const {
  const auto& a = s_.at(i);
  const auto& b = d_.at(j);
  const auto& small = a.size() <= b.size() ? a : b;
  const auto& large = a.size() <= b.size() ? b : a;
  std::size_t n = 0;
  for (const auto uid : small) {
    if (large.contains(uid)) ++n;
  }
  return static_cast<double>(n);
}

void ExactSketchBank::reset() noexcept {
  for (auto& set : s_) set.clear();
  for (auto& set : d_) set.clear();
}

std::vector<double> TrafficMatrixSnapshot::column(sim::NodeId j) const {
  std::vector<double> col(s.size(), 0.0);
  for (std::size_t i = 0; i < s.size(); ++i) {
    col[i] = a(static_cast<sim::NodeId>(i), j);
  }
  return col;
}

TrafficMonitor::TrafficMonitor(sim::Simulator* sim, RouterSketchBank* bank,
                               double epoch_seconds)
    : sim_(sim), bank_(bank), epoch_seconds_(epoch_seconds) {}

void TrafficMonitor::start() {
  if (running_) return;
  running_ = true;
  epoch_start_ = sim_->now();
  timer_ = sim_->schedule(epoch_seconds_, [this] { tick(); });
}

void TrafficMonitor::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
}

void TrafficMonitor::tick() {
  timer_ = sim::kInvalidEvent;
  if (!running_) return;

  TrafficMatrixSnapshot snap;
  snap.epoch_start = epoch_start_;
  snap.epoch_end = sim_->now();
  snap.epoch_index = epoch_index_++;
  snap.s.reserve(bank_->router_count());
  snap.d.reserve(bank_->router_count());
  for (std::size_t i = 0; i < bank_->router_count(); ++i) {
    snap.s.push_back(bank_->s(static_cast<sim::NodeId>(i)));
    snap.d.push_back(bank_->d(static_cast<sim::NodeId>(i)));
  }
  bank_->reset();
  epoch_start_ = sim_->now();

  for (const auto& cb : callbacks_) cb(snap);

  if (running_) {
    timer_ = sim_->schedule(epoch_seconds_, [this] { tick(); });
  }
}

}  // namespace mafic::sketch
