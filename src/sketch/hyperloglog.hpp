#pragma once

/// \file hyperloglog.hpp
/// HyperLogLog (Flajolet et al. 2007) — the harmonic-mean successor of
/// LogLog. Provided as an ablation comparator (DESIGN.md A2): same
/// interface, same mergeability, better constant (~1.04/sqrt(m)).

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/hash.hpp"

namespace mafic::sketch {

class HyperLogLog {
 public:
  explicit HyperLogLog(unsigned precision_bits = 10,
                       std::uint64_t hash_seed = 0);

  void add(std::uint64_t item) noexcept;
  double estimate() const noexcept;
  void merge(const HyperLogLog& other);
  static double union_estimate(const HyperLogLog& a, const HyperLogLog& b);

  bool compatible(const HyperLogLog& other) const noexcept {
    return registers_.size() == other.registers_.size() &&
           hash_seed_ == other.hash_seed_;
  }

  void reset() noexcept {
    std::fill(registers_.begin(), registers_.end(), std::uint8_t{0});
    items_added_ = 0;
  }

  std::size_t register_count() const noexcept { return registers_.size(); }
  std::uint64_t items_added() const noexcept { return items_added_; }
  std::size_t memory_bytes() const noexcept { return registers_.size(); }

 private:
  unsigned precision_bits_;
  std::uint64_t hash_seed_;
  std::vector<std::uint8_t> registers_;
  std::uint64_t items_added_ = 0;
  double alpha_m_;
};

}  // namespace mafic::sketch
