#pragma once

/// \file traffic_matrix.hpp
/// Per-router packet-set sketches and the epoch-based traffic monitor.
///
/// Si = packets injected into the core at router i (recorded on access
/// links host->router); Dj = packets leaving the core at router j (recorded
/// on access links router->host). Every epoch the TrafficMonitor snapshots
/// all counters, hands the snapshot to its subscriber (the pushback victim
/// detector), and resets for the next epoch — matching the paper's
/// "TrafficMonitor ... for each time period ... computes the traffic matrix
/// for this time period".

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/types.hpp"
#include "sketch/loglog.hpp"
#include "sketch/set_union.hpp"

namespace mafic::sketch {

/// Holds one S and one D LogLog counter per router, all mutually
/// compatible (same precision, same seed) so any pair can be max-merged.
class RouterSketchBank {
 public:
  RouterSketchBank(std::size_t router_count, unsigned precision_bits,
                   std::uint64_t hash_seed);

  void record_ingress(sim::NodeId router, std::uint64_t packet_uid);
  void record_egress(sim::NodeId router, std::uint64_t packet_uid);

  const LogLog& s(sim::NodeId router) const { return s_.at(router); }
  const LogLog& d(sim::NodeId router) const { return d_.at(router); }

  std::size_t router_count() const noexcept { return s_.size(); }
  void reset() noexcept;

  /// Total sketch memory across all routers (both directions).
  std::size_t memory_bytes() const noexcept;

 private:
  std::vector<LogLog> s_;
  std::vector<LogLog> d_;
};

/// Exact mirror of RouterSketchBank used for ground truth in tests and for
/// the sketch-error ablation (A2). Stores packet uids in hash sets.
class ExactSketchBank {
 public:
  explicit ExactSketchBank(std::size_t router_count)
      : s_(router_count), d_(router_count) {}

  void record_ingress(sim::NodeId router, std::uint64_t uid) {
    s_.at(router).insert(uid);
  }
  void record_egress(sim::NodeId router, std::uint64_t uid) {
    d_.at(router).insert(uid);
  }

  double s_count(sim::NodeId i) const { return double(s_.at(i).size()); }
  double d_count(sim::NodeId j) const { return double(d_.at(j).size()); }
  double intersection(sim::NodeId i, sim::NodeId j) const;

  void reset() noexcept;

 private:
  std::vector<std::unordered_set<std::uint64_t>> s_;
  std::vector<std::unordered_set<std::uint64_t>> d_;
};

/// Frozen copy of one epoch's counters with matrix accessors.
struct TrafficMatrixSnapshot {
  double epoch_start = 0.0;
  double epoch_end = 0.0;
  std::uint64_t epoch_index = 0;
  std::vector<LogLog> s;
  std::vector<LogLog> d;

  double s_count(sim::NodeId i) const { return s.at(i).estimate(); }
  double d_count(sim::NodeId j) const { return d.at(j).estimate(); }

  /// a_ij = |Si| + |Dj| − |Si ∪ Dj|, clamped at 0.
  double a(sim::NodeId i, sim::NodeId j) const {
    return intersection_estimate(s.at(i), d.at(j));
  }

  /// Full column j (destination = victim's last-hop router).
  std::vector<double> column(sim::NodeId j) const;

  double duration() const noexcept { return epoch_end - epoch_start; }
};

/// Periodically snapshots a RouterSketchBank and notifies a subscriber.
class TrafficMonitor {
 public:
  using EpochCallback = std::function<void(const TrafficMatrixSnapshot&)>;

  TrafficMonitor(sim::Simulator* sim, RouterSketchBank* bank,
                 double epoch_seconds);
  ~TrafficMonitor() { stop(); }

  TrafficMonitor(const TrafficMonitor&) = delete;
  TrafficMonitor& operator=(const TrafficMonitor&) = delete;

  void subscribe(EpochCallback cb) { callbacks_.push_back(std::move(cb)); }

  void start();
  void stop();
  bool running() const noexcept { return running_; }
  std::uint64_t epochs_completed() const noexcept { return epoch_index_; }
  double epoch_seconds() const noexcept { return epoch_seconds_; }

 private:
  void tick();

  sim::Simulator* sim_;
  RouterSketchBank* bank_;
  double epoch_seconds_;
  std::vector<EpochCallback> callbacks_;
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEvent;
  std::uint64_t epoch_index_ = 0;
  double epoch_start_ = 0.0;
};

}  // namespace mafic::sketch
