#pragma once

/// \file atr_identifier.hpp
/// Given an epoch snapshot and the alarming last-hop router j, ranks
/// ingress routers by their estimated contribution a_ij = |Si ∩ Dj| and
/// selects the Attack-Transit Routers (paper section II: "we can identify
/// the ATRs by checking the values of a_ij for all ingress routers i").

#include <vector>

#include "sketch/traffic_matrix.hpp"

namespace mafic::pushback {

struct AtrConfig {
  /// An ingress router is an ATR when its a_ij is at least this share of
  /// the total column mass ...
  double share_threshold = 0.05;
  /// ... and at least this many distinct packets in the epoch (filters
  /// sketch noise around zero).
  double min_intersection = 20.0;
  /// Optional cap on how many ATRs are selected (0 = unlimited).
  std::size_t max_atrs = 0;
};

struct AtrScore {
  sim::NodeId router = sim::kInvalidNode;
  double intersection = 0.0;  ///< a_ij estimate
  double share = 0.0;         ///< fraction of the column total
};

/// Returns selected ATRs sorted by descending contribution.
std::vector<AtrScore> identify_atrs(
    const sketch::TrafficMatrixSnapshot& snap, sim::NodeId victim_router,
    const AtrConfig& cfg);

}  // namespace mafic::pushback
