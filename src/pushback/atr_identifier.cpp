#include "pushback/atr_identifier.hpp"

#include <algorithm>

namespace mafic::pushback {

std::vector<AtrScore> identify_atrs(
    const sketch::TrafficMatrixSnapshot& snap, sim::NodeId victim_router,
    const AtrConfig& cfg) {
  const auto col = snap.column(victim_router);
  double total = 0.0;
  for (const double v : col) total += v;

  std::vector<AtrScore> selected;
  if (total <= 0.0) return selected;

  for (std::size_t i = 0; i < col.size(); ++i) {
    if (static_cast<sim::NodeId>(i) == victim_router) continue;
    const double share = col[i] / total;
    if (col[i] >= cfg.min_intersection && share >= cfg.share_threshold) {
      selected.push_back(
          AtrScore{static_cast<sim::NodeId>(i), col[i], share});
    }
  }
  std::sort(selected.begin(), selected.end(),
            [](const AtrScore& a, const AtrScore& b) {
              return a.intersection > b.intersection;
            });
  if (cfg.max_atrs > 0 && selected.size() > cfg.max_atrs) {
    selected.resize(cfg.max_atrs);
  }
  return selected;
}

}  // namespace mafic::pushback
