#pragma once

/// \file victim_detector.hpp
/// Watches the per-epoch traffic-matrix snapshots and raises an alarm when
/// some router's egress cardinality |Dj| becomes "abnormally high"
/// (paper section II) relative to its EWMA baseline. Baselines freeze
/// while a router is alarming so the attack does not poison them.

#include <functional>
#include <vector>

#include "sketch/traffic_matrix.hpp"
#include "util/stats.hpp"

namespace mafic::pushback {

struct AttackAlarm {
  sim::NodeId router = sim::kInvalidNode;
  double time = 0.0;
  double observed = 0.0;  ///< |Dj| estimate this epoch
  double baseline = 0.0;  ///< EWMA baseline before the alarm
};

class VictimDetector {
 public:
  struct Config {
    int warmup_epochs = 3;       ///< epochs before detection may fire
    double trigger_factor = 2.5; ///< alarm when d > factor * baseline
    double clear_factor = 1.5;   ///< clear when d < factor * baseline
    double min_packets_per_epoch = 100.0;  ///< absolute floor for alarms
    double ewma_alpha = 0.3;
  };

  using AlarmCallback = std::function<void(
      const AttackAlarm&, const sketch::TrafficMatrixSnapshot&)>;
  using ClearCallback = std::function<void(sim::NodeId, double)>;

  VictimDetector() : VictimDetector(Config{}) {}
  explicit VictimDetector(Config cfg) : cfg_(cfg) {}

  /// Feed one epoch snapshot (wire this to TrafficMonitor::subscribe).
  void on_epoch(const sketch::TrafficMatrixSnapshot& snap);

  void set_alarm_callback(AlarmCallback cb) { on_alarm_ = std::move(cb); }
  void set_clear_callback(ClearCallback cb) { on_clear_ = std::move(cb); }

  bool alarming(sim::NodeId router) const {
    return router < states_.size() && states_[router].alarming;
  }
  double baseline(sim::NodeId router) const {
    return router < states_.size() ? states_[router].baseline.value() : 0.0;
  }
  std::uint64_t alarms_raised() const noexcept { return alarms_; }

  const Config& config() const noexcept { return cfg_; }

 private:
  struct RouterState {
    /// No default constructor on purpose: every state must be built from
    /// the configured alpha. (A member initializer with its own constant
    /// used to live here; it was silently dead — on_epoch's resize always
    /// overrode it — and a config-ignoring trap for any future
    /// default-constructed state.)
    explicit RouterState(double ewma_alpha) : baseline(ewma_alpha) {}

    util::Ewma baseline;
    int epochs_seen = 0;
    bool alarming = false;
  };

  Config cfg_;
  std::vector<RouterState> states_;
  AlarmCallback on_alarm_;
  ClearCallback on_clear_;
  std::uint64_t alarms_ = 0;
};

}  // namespace mafic::pushback
