#include "pushback/victim_detector.hpp"

#include <algorithm>

namespace mafic::pushback {

void VictimDetector::on_epoch(const sketch::TrafficMatrixSnapshot& snap) {
  if (states_.size() < snap.d.size()) {
    states_.resize(snap.d.size(), RouterState{cfg_.ewma_alpha});
  }

  for (std::size_t j = 0; j < snap.d.size(); ++j) {
    auto& st = states_[j];
    const double d = snap.d[j].estimate();
    ++st.epochs_seen;

    if (!st.alarming) {
      const double base = st.baseline.initialized()
                              ? st.baseline.value()
                              : d;  // first epoch: self-baseline
      const bool warm = st.epochs_seen > cfg_.warmup_epochs;
      const bool high = d > std::max(cfg_.min_packets_per_epoch,
                                     cfg_.trigger_factor * base) &&
                        st.baseline.initialized();
      if (warm && high) {
        st.alarming = true;
        ++alarms_;
        if (on_alarm_) {
          on_alarm_(AttackAlarm{static_cast<sim::NodeId>(j), snap.epoch_end,
                                d, base},
                    snap);
        }
        continue;  // baseline frozen while alarming
      }
      st.baseline.update(d);
    } else {
      // Clear hysteresis must honor the same absolute floor the trigger
      // path applies: an alarm needs d > max(min_packets_per_epoch,
      // trigger_factor * base), so traffic that has subsided BELOW the
      // floor could never re-trigger and must clear — otherwise a flood
      // over a small frozen baseline (e.g. base 30, floor 100) that drops
      // to 50 pkts/epoch keeps the router alarming forever and the
      // baseline never thaws.
      const double base = st.baseline.value();
      const double clear_below = std::max(
          cfg_.clear_factor * std::max(base, 1.0),
          cfg_.min_packets_per_epoch);
      if (d < clear_below) {
        st.alarming = false;
        if (on_clear_) {
          on_clear_(static_cast<sim::NodeId>(j), snap.epoch_end);
        }
        st.baseline.update(d);
      }
    }
  }
}

}  // namespace mafic::pushback
