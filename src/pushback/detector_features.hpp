#pragma once

/// \file detector_features.hpp
/// Per-victim feature extraction + alarm decision for the asynchronous
/// control plane. Each epoch the pipeline consumes one frozen
/// ControlSnapshot and, for every protected destination, emits a
/// FeatureVector (|Dj|, EWMA baseline, flow-arrival velocity, ingress
/// fan-in, decision-population shift) plus the alarm transition for that
/// victim.
///
/// The alarm rule itself is still the paper's abnormal-|Dj| test — the
/// pipeline embeds a VictimDetector so trigger/clear/warmup/freeze
/// semantics are literally the same code path the inline detector uses.
/// The extra features ship in the vector for reporting, and two optional
/// gates (velocity, fan-in) can ALSO raise an alarm; both default to
/// "off" so the pipeline's default decision is bit-identical to the
/// plain detector.
///
/// Everything here is a pure function of the snapshot plus the
/// pipeline's own per-victim state: no live datapath access, so a step
/// may run on a ShardWorkerPool worker (the submitting sim thread joins
/// before reading the results).

#include <cstdint>
#include <vector>

#include "pushback/victim_detector.hpp"
#include "sketch/control_snapshot.hpp"

namespace mafic::pushback {

/// One epoch's observations for one protected destination.
struct FeatureVector {
  double d = 0.0;         ///< |Dj| estimate at the victim's last-hop router
  double baseline = 0.0;  ///< EWMA baseline (pre-update, frozen if alarming)
  /// Change in |Dj| versus the previous epoch (first epoch: 0). The
  /// "flow-arrival velocity" proxy: distinct-packet growth per epoch.
  double velocity = 0.0;
  /// Number of ingress routers whose a_ij meets the fan-in floor — how
  /// widely distributed the traffic converging on this victim is.
  double fan_in = 0.0;
  /// Cumulative malicious share of decided flows for this victim,
  /// decided_malicious / (decided_nice + decided_malicious); 0 until the
  /// filters have decided anything (i.e. before activation).
  double malicious_share = 0.0;
  /// Change in malicious_share versus the previous epoch. Only
  /// meaningful once a response is active and flows are being decided.
  double population_shift = 0.0;
};

struct FeatureConfig {
  /// The abnormal-|Dj| rule (trigger/clear factors, warmup, floor, alpha).
  VictimDetector::Config ewma{};
  /// a_ij floor for counting an ingress router into fan_in.
  double fan_in_floor = 10.0;
  /// Optional extra alarm gates; 0 disables. When enabled, a victim also
  /// alarms (no hysteresis — the gate clears as soon as the condition
  /// stops holding) while velocity >= velocity_trigger or fan_in >=
  /// fan_in_trigger.
  double velocity_trigger = 0.0;
  double fan_in_trigger = 0.0;
};

/// Alarm transition for one victim after one epoch.
struct VictimDecision {
  util::Addr victim = util::kInvalidAddr;
  sim::NodeId router = sim::kInvalidNode;
  bool raised = false;   ///< entered the alarming state this epoch
  bool cleared = false;  ///< left the alarming state this epoch
  bool alarming = false; ///< state after this epoch
  FeatureVector features{};
};

class DetectorFeaturePipeline {
 public:
  DetectorFeaturePipeline() : DetectorFeaturePipeline(FeatureConfig{}) {}
  explicit DetectorFeaturePipeline(FeatureConfig cfg);

  /// Consumes one epoch snapshot: feeds the |Dj| detector over every
  /// router, then extracts features and the combined decision for each
  /// victim, in snapshot victim order. Deterministic: same snapshot
  /// sequence, same decisions, regardless of which thread calls it.
  std::vector<VictimDecision> step(const sketch::ControlSnapshot& snap);

  const VictimDetector& ewma_detector() const noexcept { return ewma_; }
  std::uint64_t epochs_processed() const noexcept { return epochs_; }
  const FeatureConfig& config() const noexcept { return cfg_; }

 private:
  struct VictimState {
    double prev_d = 0.0;
    bool have_prev_d = false;
    double prev_share = 0.0;
    bool have_prev_share = false;
    bool gate_alarming = false;  ///< extra velocity/fan-in gate state
    bool alarming = false;       ///< combined state after the last epoch
  };

  FeatureConfig cfg_;
  VictimDetector ewma_;
  std::vector<VictimState> states_;
  std::uint64_t epochs_ = 0;
};

}  // namespace mafic::pushback
