#pragma once

/// \file coordinator.hpp
/// End-to-end pushback control: subscribes the victim detector to the
/// traffic monitor, identifies ATRs when an alarm fires, activates the
/// defense actuators registered at those routers (after a control-plane
/// delay), keeps them refreshed while the attack persists, and tears the
/// response down when the detector clears (unless latched).

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "core/actuator.hpp"
#include "pushback/atr_identifier.hpp"
#include "pushback/victim_detector.hpp"
#include "sim/simulator.hpp"

namespace mafic::pushback {

class PushbackCoordinator {
 public:
  struct Config {
    double control_delay = 0.01;    ///< victim router -> ATR signaling
    double refresh_interval = 0.25; ///< keep-alive period
    bool latch = true;  ///< once triggered, refresh until the run ends
    AtrConfig atr{};
    VictimDetector::Config detector{};
  };

  using TriggerCallback = std::function<void(
      double time, const std::vector<AtrScore>& atrs)>;

  /// Per-victim response bookkeeping for the multi-victim control-plane
  /// path (engage_victim / disengage_victim). The legacy single-victim
  /// watch() path does not touch these.
  struct VictimResponse {
    sim::NodeId router = sim::kInvalidNode;  ///< victim's last-hop router
    bool engaged = false;
    double trigger_time = -1.0;  ///< first engagement (never reset)
    double clear_time = -1.0;    ///< last disengagement
    std::uint64_t engagements = 0;  ///< disengage->engage transitions
    std::vector<sim::NodeId> atrs;  ///< currently engaged ATRs, sorted
  };

  PushbackCoordinator(sim::Simulator* sim, Config cfg);
  ~PushbackCoordinator();

  PushbackCoordinator(const PushbackCoordinator&) = delete;
  PushbackCoordinator& operator=(const PushbackCoordinator&) = delete;

  /// Subscribes to epoch snapshots from the traffic monitor.
  void watch(sketch::TrafficMonitor& monitor);

  /// Declares the protected victim (its last-hop router and address).
  void protect(sim::NodeId victim_router, util::Addr victim_addr);

  /// Registers a defense actuator living at `router` (e.g. a MaficFilter
  /// on one of its ingress links). Multiple actuators per router are fine.
  void register_actuator(sim::NodeId router, core::DefenseActuator* a);

  /// First-activation notification (used by the ledger to set the
  /// trigger time).
  void set_trigger_callback(TriggerCallback cb) {
    on_trigger_ = std::move(cb);
  }

  bool triggered() const noexcept { return triggered_; }
  double trigger_time() const noexcept { return trigger_time_; }
  const std::vector<sim::NodeId>& active_atrs() const noexcept {
    return active_atrs_;
  }
  VictimDetector& detector() noexcept { return detector_; }
  const Config& config() const noexcept { return cfg_; }

  /// --- Multi-victim actuation (asynchronous control-plane path) ---
  ///
  /// The ControlPlane runs detection off-path and calls these at its
  /// apply event (the control delay has already elapsed), so activation
  /// is immediate. Engaging activates actuators at any newly-identified
  /// ATRs with the union of victims every engaged response wants at that
  /// router; disengaging deactivates exclusive routers outright and
  /// RETARGETS shared ones (engines cannot shrink their victim set
  /// without a flush, so shared routers are flushed and re-activated
  /// with the remaining union).

  /// Engages or extends the response for one victim. No-op when `atrs`
  /// is empty; already-engaged ATRs are skipped. Fires the trigger
  /// callback on the first engagement overall.
  void engage_victim(util::Addr victim, sim::NodeId victim_router,
                     const std::vector<AtrScore>& atrs);

  /// Tears down one victim's response (detector cleared, unlatched).
  void disengage_victim(util::Addr victim);

  /// Per-victim responses, keyed (and iterated) in address order.
  const std::map<util::Addr, VictimResponse>& responses() const noexcept {
    return responses_;
  }

  /// Sorted, deduplicated union of all engaged responses' ATRs.
  std::vector<sim::NodeId> engaged_atrs() const;

  /// Shared-router flush+re-activate cycles performed by disengage.
  std::uint64_t retargets() const noexcept { return retargets_; }

  /// Manually ends the response (also invoked on detector clear when not
  /// latched). Tears down both the legacy single-victim response and
  /// every engaged multi-victim response.
  void cancel();

 private:
  void on_alarm(const AttackAlarm& alarm,
                const sketch::TrafficMatrixSnapshot& snap);
  /// Identifies ATRs from `snap` and activates any new ones. Called on the
  /// alarm transition and again on every epoch while the alarm persists,
  /// so late-ramping attack sources are still caught.
  void engage(const sketch::TrafficMatrixSnapshot& snap);
  void on_clear(sim::NodeId router, double time);
  void activate_router(sim::NodeId router);
  void refresh_tick();
  /// Union of victim addresses every *engaged* response wants defended
  /// at `router` (address-ordered map walk: deterministic).
  core::VictimSet victims_for_router(sim::NodeId router) const;
  void start_refresh_loop();

  sim::Simulator* sim_;
  Config cfg_;
  VictimDetector detector_;

  sim::NodeId victim_router_ = sim::kInvalidNode;
  core::VictimSet victims_;

  /// Ordered by router id: control-plane only (registration + activation
  /// lookups), and any future walk over all actuators is deterministic.
  std::map<sim::NodeId, std::vector<core::DefenseActuator*>> actuators_;
  std::vector<sim::NodeId> active_atrs_;
  std::map<util::Addr, VictimResponse> responses_;
  std::uint64_t retargets_ = 0;

  bool triggered_ = false;
  double trigger_time_ = 0.0;
  bool refreshing_ = false;
  sim::EventId refresh_event_ = sim::kInvalidEvent;
  TriggerCallback on_trigger_;
};

}  // namespace mafic::pushback
