#include "pushback/detector_features.hpp"

namespace mafic::pushback {

DetectorFeaturePipeline::DetectorFeaturePipeline(FeatureConfig cfg)
    : cfg_(cfg), ewma_(cfg.ewma) {}

std::vector<VictimDecision> DetectorFeaturePipeline::step(
    const sketch::ControlSnapshot& snap) {
  // The |Dj| detector walks every router; baselines for non-victim
  // routers cost a few doubles each and keep its semantics identical to
  // the inline single-victim path.
  ewma_.on_epoch(snap.matrix);
  ++epochs_;

  if (states_.size() < snap.victims.size()) {
    states_.resize(snap.victims.size());
  }

  std::vector<VictimDecision> out;
  out.reserve(snap.victims.size());
  for (std::size_t vi = 0; vi < snap.victims.size(); ++vi) {
    const auto& sample = snap.victims[vi];
    auto& st = states_[vi];

    VictimDecision dec;
    dec.victim = sample.victim;
    dec.router = sample.last_hop_router;

    FeatureVector& f = dec.features;
    f.d = sample.last_hop_router < snap.matrix.d.size()
              ? snap.matrix.d_count(sample.last_hop_router)
              : 0.0;
    f.baseline = ewma_.baseline(sample.last_hop_router);
    f.velocity = st.have_prev_d ? f.d - st.prev_d : 0.0;
    st.prev_d = f.d;
    st.have_prev_d = true;

    if (sample.last_hop_router < snap.matrix.s.size()) {
      for (sim::NodeId i = 0;
           i < static_cast<sim::NodeId>(snap.matrix.s.size()); ++i) {
        if (snap.matrix.a(i, sample.last_hop_router) >= cfg_.fan_in_floor) {
          f.fan_in += 1.0;
        }
      }
    }

    const double decided = static_cast<double>(sample.decided_nice) +
                           static_cast<double>(sample.decided_malicious);
    f.malicious_share =
        decided > 0.0
            ? static_cast<double>(sample.decided_malicious) / decided
            : 0.0;
    f.population_shift =
        st.have_prev_share ? f.malicious_share - st.prev_share : 0.0;
    st.prev_share = f.malicious_share;
    st.have_prev_share = true;

    // Extra gates (default off): level-triggered, no hysteresis.
    st.gate_alarming =
        (cfg_.velocity_trigger > 0.0 && f.velocity >= cfg_.velocity_trigger) ||
        (cfg_.fan_in_trigger > 0.0 && f.fan_in >= cfg_.fan_in_trigger);

    const bool now_alarming =
        ewma_.alarming(sample.last_hop_router) || st.gate_alarming;
    dec.raised = now_alarming && !st.alarming;
    dec.cleared = !now_alarming && st.alarming;
    dec.alarming = now_alarming;
    st.alarming = now_alarming;

    out.push_back(dec);
  }
  return out;
}

}  // namespace mafic::pushback
