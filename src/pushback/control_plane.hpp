#pragma once

/// \file control_plane.hpp
/// The asynchronous control-plane detector: multi-victim detection that
/// runs off the classify path.
///
/// Shape (mirrors the SDN-controller split of the related repos — a
/// detection loop polling frozen stats, actuation through a registry):
///
///   1. SNAPSHOT — at every TrafficMonitor epoch (an epoch-aligned sim
///      event on the sim thread) the plane freezes a ControlSnapshot:
///      a by-value copy of the traffic matrix plus per-victim counter
///      samples pulled through an opaque CounterSource callback. No
///      datapath structure is referenced after this point.
///   2. DETECT — the DetectorFeaturePipeline consumes the snapshot:
///      abnormal-|Dj| per protected destination (identical rule to the
///      inline VictimDetector), feature extraction (velocity, fan-in,
///      population shift), and ATR identification for every alarming
///      victim. The step is a pure function of the snapshot plus the
///      pipeline's own state, so when a ShardWorkerPool is attached it
///      runs as a pool task (submit + wait inside the epoch callback —
///      the fan-out/join pair is the happens-before edge) and produces
///      bit-identical results to the inline path.
///   3. APPLY — pending per-victim actions are applied at ONE scheduled
///      event a fixed control delay later, through the coordinator's
///      engage_victim / disengage_victim registry.
///
/// Determinism contract: snapshot points are epoch events, the apply
/// event fires at epoch_end + control_delay, and detection never reads
/// live state — so detector-mode runs are bit-identical across the
/// scalar / sharded / threaded / fleet strategies and across pooled vs
/// inline detection (the scenario-catalog equivalence battery pins it).
///
/// This file is control-plane code: the maficlint `seams` rule checks
/// it never names FlowTables or the verdict pipeline — engines are
/// reached only through DefenseActuator (via the coordinator) and the
/// CounterSource seam.

#include <cstdint>
#include <functional>
#include <vector>

#include "core/shard_worker_pool.hpp"
#include "pushback/coordinator.hpp"
#include "pushback/detector_features.hpp"
#include "sketch/control_snapshot.hpp"
#include "sketch/traffic_matrix.hpp"
#include "sim/simulator.hpp"

namespace mafic::pushback {

class ControlPlane {
 public:
  struct Config {
    double control_delay = 0.01;  ///< detect -> apply signaling delay
    bool latch = true;  ///< keep responses engaged after the alarm clears
    AtrConfig atr{};
    FeatureConfig features{};
  };

  /// Everything the plane knows about one protected destination.
  struct VictimStatus {
    util::Addr victim = util::kInvalidAddr;
    sim::NodeId router = sim::kInvalidNode;  ///< last-hop router
    bool alarming = false;  ///< detector state after the latest epoch
    bool engaged = false;   ///< response currently active
    std::uint64_t alarms = 0;    ///< raise transitions observed
    double trigger_time = -1.0;  ///< first engagement (apply-event time)
    double clear_time = -1.0;    ///< last disengagement
    std::vector<sim::NodeId> atrs;  ///< engaged ATRs, sorted
    FeatureVector features{};       ///< latest epoch's feature vector
  };

  /// Fills the counter fields of pre-sized samples (victim + router are
  /// already set, in protect() order). The experiment wires this to its
  /// engine aggregation; the plane itself never sees those types.
  using CounterSource =
      std::function<void(std::vector<sketch::VictimCounterSample>&)>;

  ControlPlane(sim::Simulator* sim, PushbackCoordinator* coordinator,
               Config cfg);

  /// Declares a protected destination. Call once per victim, primary
  /// first — statuses() and counter samples keep this order.
  void protect(sim::NodeId victim_router, util::Addr victim_addr);

  /// Subscribes the plane's epoch handler to the traffic monitor.
  void watch(sketch::TrafficMonitor& monitor);

  /// Feeds one epoch snapshot directly (what watch() subscribes). Must
  /// be called from the sim thread at an epoch-aligned event; schedules
  /// the apply event itself.
  void ingest(const sketch::TrafficMatrixSnapshot& snap);

  void set_counter_source(CounterSource src) {
    counter_source_ = std::move(src);
  }

  /// Attaches a worker pool; detection steps then run as pool tasks.
  /// Pass nullptr (or never call) for inline detection — results are
  /// identical either way.
  void set_pool(core::ShardWorkerPool* pool) { pool_ = pool; }

  const std::vector<VictimStatus>& statuses() const noexcept {
    return statuses_;
  }
  /// Sorted union of all engaged responses' ATRs.
  std::vector<sim::NodeId> active_atrs() const {
    return coordinator_->engaged_atrs();
  }

  std::uint64_t epochs_observed() const noexcept { return epochs_; }
  std::uint64_t detection_steps_pooled() const noexcept {
    return pooled_steps_;
  }
  std::uint64_t apply_events() const noexcept { return apply_events_; }
  const Config& config() const noexcept { return cfg_; }

 private:
  /// One victim's pending transition, decided at the epoch event and
  /// executed at the apply event.
  struct Action {
    std::size_t index = 0;  ///< into statuses_
    bool engage = false;
    bool disengage = false;
    std::vector<AtrScore> atrs;  ///< newly-identified ATRs to engage
  };

  void apply(const std::vector<Action>& actions);

  sim::Simulator* sim_;
  PushbackCoordinator* coordinator_;
  Config cfg_;
  DetectorFeaturePipeline pipeline_;
  core::ShardWorkerPool* pool_ = nullptr;
  CounterSource counter_source_;
  std::vector<VictimStatus> statuses_;
  std::uint64_t epochs_ = 0;
  std::uint64_t pooled_steps_ = 0;
  std::uint64_t apply_events_ = 0;
};

}  // namespace mafic::pushback
