#include "pushback/coordinator.hpp"

#include <algorithm>

namespace mafic::pushback {

PushbackCoordinator::PushbackCoordinator(sim::Simulator* sim, Config cfg)
    : sim_(sim), cfg_(cfg), detector_(cfg.detector) {
  detector_.set_alarm_callback(
      [this](const AttackAlarm& a, const sketch::TrafficMatrixSnapshot& s) {
        on_alarm(a, s);
      });
  detector_.set_clear_callback(
      [this](sim::NodeId r, double t) { on_clear(r, t); });
}

PushbackCoordinator::~PushbackCoordinator() {
  if (refresh_event_ != sim::kInvalidEvent) sim_->cancel(refresh_event_);
}

void PushbackCoordinator::watch(sketch::TrafficMonitor& monitor) {
  monitor.subscribe([this](const sketch::TrafficMatrixSnapshot& snap) {
    detector_.on_epoch(snap);
    // While the alarm persists, keep re-evaluating the ATR set: zombies
    // that ramped up after the first alarming epoch must also be engaged.
    if (triggered_ && detector_.alarming(victim_router_)) {
      engage(snap);
    }
  });
}

void PushbackCoordinator::protect(sim::NodeId victim_router,
                                  util::Addr victim_addr) {
  // First call fixes the legacy single-victim watch() path's router;
  // later calls only extend the scripted-activation victim set (the
  // multi-victim control-plane path tracks routers per response).
  if (victim_router_ == sim::kInvalidNode) victim_router_ = victim_router;
  victims_.insert(victim_addr);
}

void PushbackCoordinator::register_actuator(sim::NodeId router,
                                            core::DefenseActuator* a) {
  actuators_[router].push_back(a);
}

void PushbackCoordinator::on_alarm(const AttackAlarm& alarm,
                                   const sketch::TrafficMatrixSnapshot& snap) {
  // Only the protected victim's last-hop router matters here; alarms for
  // other routers would be separate incidents.
  if (alarm.router != victim_router_ || victims_.empty()) return;
  engage(snap);
}

void PushbackCoordinator::engage(const sketch::TrafficMatrixSnapshot& snap) {
  const auto atrs = identify_atrs(snap, victim_router_, cfg_.atr);
  if (atrs.empty()) return;

  bool any_new = false;
  for (const auto& score : atrs) {
    if (std::find(active_atrs_.begin(), active_atrs_.end(), score.router) !=
        active_atrs_.end()) {
      continue;
    }
    active_atrs_.push_back(score.router);
    any_new = true;
    sim_->schedule(cfg_.control_delay,
                   [this, router = score.router] { activate_router(router); });
  }

  if (!triggered_ && any_new) {
    triggered_ = true;
    trigger_time_ = sim_->now() + cfg_.control_delay;
    if (on_trigger_) on_trigger_(trigger_time_, atrs);
  }
  start_refresh_loop();
}

void PushbackCoordinator::start_refresh_loop() {
  if (refreshing_) return;
  refreshing_ = true;
  refresh_event_ =
      sim_->schedule(cfg_.refresh_interval, [this] { refresh_tick(); });
}

core::VictimSet PushbackCoordinator::victims_for_router(
    sim::NodeId router) const {
  core::VictimSet set;
  for (const auto& [victim, resp] : responses_) {
    if (!resp.engaged) continue;
    if (std::binary_search(resp.atrs.begin(), resp.atrs.end(), router)) {
      set.insert(victim);
    }
  }
  return set;
}

void PushbackCoordinator::engage_victim(util::Addr victim,
                                        sim::NodeId victim_router,
                                        const std::vector<AtrScore>& atrs) {
  if (atrs.empty()) return;
  auto& resp = responses_[victim];
  resp.router = victim_router;

  if (!resp.engaged) {
    resp.engaged = true;
    ++resp.engagements;
    if (resp.trigger_time < 0.0) resp.trigger_time = sim_->now();
  }

  std::vector<sim::NodeId> fresh;
  for (const auto& score : atrs) {
    const auto it =
        std::lower_bound(resp.atrs.begin(), resp.atrs.end(), score.router);
    if (it != resp.atrs.end() && *it == score.router) continue;
    resp.atrs.insert(it, score.router);
    fresh.push_back(score.router);
  }

  // Activate (or extend: engine activation is additive, so an actuator
  // already defending another victim just gains this one) every router
  // that is new FOR THIS response, with the full per-router union.
  for (const sim::NodeId router : fresh) {
    const auto it = actuators_.find(router);
    if (it == actuators_.end()) continue;
    const core::VictimSet set = victims_for_router(router);
    for (core::DefenseActuator* a : it->second) a->activate(set);
  }

  if (!triggered_) {
    triggered_ = true;
    trigger_time_ = sim_->now();
    if (on_trigger_) on_trigger_(trigger_time_, atrs);
  }
  start_refresh_loop();
}

void PushbackCoordinator::disengage_victim(util::Addr victim) {
  const auto rit = responses_.find(victim);
  if (rit == responses_.end() || !rit->second.engaged) return;
  auto& resp = rit->second;
  resp.engaged = false;
  resp.clear_time = sim_->now();
  const std::vector<sim::NodeId> routers = std::move(resp.atrs);
  resp.atrs.clear();

  for (const sim::NodeId router : routers) {
    const auto it = actuators_.find(router);
    if (it == actuators_.end()) continue;
    const core::VictimSet remaining = victims_for_router(router);
    if (remaining.empty()) {
      for (core::DefenseActuator* a : it->second) a->deactivate();
    } else {
      // Shared router: other victims still need it. Engines only grow
      // their victim set while active, so shrinking is a flush +
      // re-activate with the remaining union.
      for (core::DefenseActuator* a : it->second) {
        a->deactivate();
        a->activate(remaining);
      }
      ++retargets_;
    }
  }
}

std::vector<sim::NodeId> PushbackCoordinator::engaged_atrs() const {
  std::vector<sim::NodeId> out;
  for (const auto& [victim, resp] : responses_) {
    if (!resp.engaged) continue;
    out.insert(out.end(), resp.atrs.begin(), resp.atrs.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void PushbackCoordinator::activate_router(sim::NodeId router) {
  const auto it = actuators_.find(router);
  if (it == actuators_.end()) return;
  for (core::DefenseActuator* a : it->second) a->activate(victims_);
}

void PushbackCoordinator::refresh_tick() {
  refresh_event_ = sim::kInvalidEvent;
  if (!refreshing_) return;
  // Legacy single-victim path: refresh while latched or still alarming.
  const bool attack_ongoing =
      cfg_.latch || detector_.alarming(victim_router_);
  std::vector<sim::NodeId> routers;
  if (attack_ongoing) {
    routers.assign(active_atrs_.begin(), active_atrs_.end());
  }
  // Multi-victim responses: "engaged" already encodes the keep-alive
  // decision (the control plane disengages on clear when unlatched), so
  // every engaged router gets refreshed.
  for (const auto& [victim, resp] : responses_) {
    if (!resp.engaged) continue;
    routers.insert(routers.end(), resp.atrs.begin(), resp.atrs.end());
  }
  std::sort(routers.begin(), routers.end());
  routers.erase(std::unique(routers.begin(), routers.end()), routers.end());
  for (const sim::NodeId router : routers) {
    const auto it = actuators_.find(router);
    if (it == actuators_.end()) continue;
    for (core::DefenseActuator* a : it->second) a->refresh();
  }
  refresh_event_ =
      sim_->schedule(cfg_.refresh_interval, [this] { refresh_tick(); });
}

void PushbackCoordinator::on_clear(sim::NodeId router, double) {
  if (router != victim_router_ || cfg_.latch) return;
  cancel();
}

void PushbackCoordinator::cancel() {
  refreshing_ = false;
  if (refresh_event_ != sim::kInvalidEvent) {
    sim_->cancel(refresh_event_);
    refresh_event_ = sim::kInvalidEvent;
  }
  for (const auto router : active_atrs_) {
    const auto it = actuators_.find(router);
    if (it == actuators_.end()) continue;
    for (core::DefenseActuator* a : it->second) a->deactivate();
  }
  active_atrs_.clear();
  for (auto& [victim, resp] : responses_) {
    if (!resp.engaged) continue;
    resp.engaged = false;
    resp.clear_time = sim_->now();
    for (const sim::NodeId router : resp.atrs) {
      const auto it = actuators_.find(router);
      if (it == actuators_.end()) continue;
      // Deactivating a shared router twice is fine (idempotent flush);
      // after cancel() nothing is engaged, so no retarget is needed.
      for (core::DefenseActuator* a : it->second) a->deactivate();
    }
    resp.atrs.clear();
  }
}

}  // namespace mafic::pushback
