#include "pushback/coordinator.hpp"

#include <algorithm>

namespace mafic::pushback {

PushbackCoordinator::PushbackCoordinator(sim::Simulator* sim, Config cfg)
    : sim_(sim), cfg_(cfg), detector_(cfg.detector) {
  detector_.set_alarm_callback(
      [this](const AttackAlarm& a, const sketch::TrafficMatrixSnapshot& s) {
        on_alarm(a, s);
      });
  detector_.set_clear_callback(
      [this](sim::NodeId r, double t) { on_clear(r, t); });
}

PushbackCoordinator::~PushbackCoordinator() {
  if (refresh_event_ != sim::kInvalidEvent) sim_->cancel(refresh_event_);
}

void PushbackCoordinator::watch(sketch::TrafficMonitor& monitor) {
  monitor.subscribe([this](const sketch::TrafficMatrixSnapshot& snap) {
    detector_.on_epoch(snap);
    // While the alarm persists, keep re-evaluating the ATR set: zombies
    // that ramped up after the first alarming epoch must also be engaged.
    if (triggered_ && detector_.alarming(victim_router_)) {
      engage(snap);
    }
  });
}

void PushbackCoordinator::protect(sim::NodeId victim_router,
                                  util::Addr victim_addr) {
  victim_router_ = victim_router;
  victims_.insert(victim_addr);
}

void PushbackCoordinator::register_actuator(sim::NodeId router,
                                            core::DefenseActuator* a) {
  actuators_[router].push_back(a);
}

void PushbackCoordinator::on_alarm(const AttackAlarm& alarm,
                                   const sketch::TrafficMatrixSnapshot& snap) {
  // Only the protected victim's last-hop router matters here; alarms for
  // other routers would be separate incidents.
  if (alarm.router != victim_router_ || victims_.empty()) return;
  engage(snap);
}

void PushbackCoordinator::engage(const sketch::TrafficMatrixSnapshot& snap) {
  const auto atrs = identify_atrs(snap, victim_router_, cfg_.atr);
  if (atrs.empty()) return;

  bool any_new = false;
  for (const auto& score : atrs) {
    if (std::find(active_atrs_.begin(), active_atrs_.end(), score.router) !=
        active_atrs_.end()) {
      continue;
    }
    active_atrs_.push_back(score.router);
    any_new = true;
    sim_->schedule(cfg_.control_delay,
                   [this, router = score.router] { activate_router(router); });
  }

  if (!triggered_ && any_new) {
    triggered_ = true;
    trigger_time_ = sim_->now() + cfg_.control_delay;
    if (on_trigger_) on_trigger_(trigger_time_, atrs);
  }
  if (!refreshing_) {
    refreshing_ = true;
    refresh_event_ =
        sim_->schedule(cfg_.refresh_interval, [this] { refresh_tick(); });
  }
}

void PushbackCoordinator::activate_router(sim::NodeId router) {
  const auto it = actuators_.find(router);
  if (it == actuators_.end()) return;
  for (core::DefenseActuator* a : it->second) a->activate(victims_);
}

void PushbackCoordinator::refresh_tick() {
  refresh_event_ = sim::kInvalidEvent;
  if (!refreshing_) return;
  const bool attack_ongoing =
      cfg_.latch || detector_.alarming(victim_router_);
  if (attack_ongoing) {
    for (const auto router : active_atrs_) {
      const auto it = actuators_.find(router);
      if (it == actuators_.end()) continue;
      for (core::DefenseActuator* a : it->second) a->refresh();
    }
  }
  refresh_event_ =
      sim_->schedule(cfg_.refresh_interval, [this] { refresh_tick(); });
}

void PushbackCoordinator::on_clear(sim::NodeId router, double) {
  if (router != victim_router_ || cfg_.latch) return;
  cancel();
}

void PushbackCoordinator::cancel() {
  refreshing_ = false;
  if (refresh_event_ != sim::kInvalidEvent) {
    sim_->cancel(refresh_event_);
    refresh_event_ = sim::kInvalidEvent;
  }
  for (const auto router : active_atrs_) {
    const auto it = actuators_.find(router);
    if (it == actuators_.end()) continue;
    for (core::DefenseActuator* a : it->second) a->deactivate();
  }
  active_atrs_.clear();
}

}  // namespace mafic::pushback
