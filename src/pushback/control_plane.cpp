#include "pushback/control_plane.hpp"

#include <algorithm>

#include "pushback/atr_identifier.hpp"

namespace mafic::pushback {

ControlPlane::ControlPlane(sim::Simulator* sim,
                           PushbackCoordinator* coordinator, Config cfg)
    : sim_(sim), coordinator_(coordinator), cfg_(cfg),
      pipeline_(cfg.features) {}

void ControlPlane::protect(sim::NodeId victim_router,
                           util::Addr victim_addr) {
  VictimStatus st;
  st.victim = victim_addr;
  st.router = victim_router;
  statuses_.push_back(st);
}

void ControlPlane::watch(sketch::TrafficMonitor& monitor) {
  monitor.subscribe([this](const sketch::TrafficMatrixSnapshot& snap) {
    ingest(snap);
  });
}

void ControlPlane::ingest(const sketch::TrafficMatrixSnapshot& snap) {
  ++epochs_;
  if (statuses_.empty()) return;

  // 1. Freeze the control snapshot: matrix copy + counter samples. After
  // this point detection touches nothing live.
  sketch::ControlSnapshot cs;
  cs.matrix = snap;
  cs.victims.reserve(statuses_.size());
  for (const auto& st : statuses_) {
    sketch::VictimCounterSample sample;
    sample.victim = st.victim;
    sample.last_hop_router = st.router;
    cs.victims.push_back(sample);
  }
  if (counter_source_) counter_source_(cs.victims);

  // 2. Detection: pure function of the frozen snapshot (plus the
  // pipeline's own state). With a pool attached it runs as a single
  // task; submit + wait inside this epoch callback means the batch is
  // never left in flight to collide with classify bursts, and the join
  // is the happens-before edge back to the sim thread. Pooled and
  // inline execution are bit-identical by construction.
  std::vector<VictimDecision> decisions;
  std::vector<std::vector<AtrScore>> atr_sets(statuses_.size());
  const auto detect = [&] {
    decisions = pipeline_.step(cs);
    for (std::size_t i = 0; i < decisions.size(); ++i) {
      if (decisions[i].alarming) {
        atr_sets[i] = identify_atrs(cs.matrix, decisions[i].router, cfg_.atr);
      }
    }
  };
  if (pool_ != nullptr) {
    pool_->submit([&detect](std::size_t) { detect(); }, 1);
    pool_->wait();
    ++pooled_steps_;
  } else {
    detect();
  }

  // 3. Fold results into the statuses and collect pending transitions.
  std::vector<Action> actions;
  for (std::size_t i = 0; i < statuses_.size(); ++i) {
    auto& st = statuses_[i];
    const auto& dec = decisions[i];
    st.alarming = dec.alarming;
    st.features = dec.features;
    if (dec.raised) ++st.alarms;

    if (dec.alarming) {
      // Engage any ATRs not yet applied for this victim. Re-evaluated
      // every alarming epoch so late-ramping attack sources are caught.
      std::vector<AtrScore> fresh;
      for (const auto& score : atr_sets[i]) {
        if (!std::binary_search(st.atrs.begin(), st.atrs.end(),
                                score.router)) {
          fresh.push_back(score);
        }
      }
      if (!fresh.empty()) {
        Action a;
        a.index = i;
        a.engage = true;
        a.atrs = std::move(fresh);
        // Record as applied now: the apply event is unconditional once
        // scheduled, and control_delay < epoch length keeps it ordered
        // before the next epoch's decisions.
        for (const auto& score : a.atrs) {
          st.atrs.insert(std::lower_bound(st.atrs.begin(), st.atrs.end(),
                                          score.router),
                         score.router);
        }
        actions.push_back(std::move(a));
      }
    } else if (dec.cleared && !cfg_.latch && st.engaged) {
      Action a;
      a.index = i;
      a.disengage = true;
      actions.push_back(std::move(a));
      st.atrs.clear();
    }
  }

  // 4. One apply event per epoch with pending actions, a fixed control
  // delay out — the deterministic stand-in for victim->ATR signaling.
  if (!actions.empty()) {
    sim_->schedule(cfg_.control_delay,
                   [this, acts = std::move(actions)] { apply(acts); });
  }
}

void ControlPlane::apply(const std::vector<Action>& actions) {
  ++apply_events_;
  for (const auto& a : actions) {
    auto& st = statuses_[a.index];
    if (a.engage) {
      coordinator_->engage_victim(st.victim, st.router, a.atrs);
      st.engaged = true;
      if (st.trigger_time < 0.0) st.trigger_time = sim_->now();
    } else if (a.disengage) {
      coordinator_->disengage_victim(st.victim);
      st.engaged = false;
      st.clear_time = sim_->now();
    }
  }
}

}  // namespace mafic::pushback
