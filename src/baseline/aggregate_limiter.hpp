#pragma once

/// \file aggregate_limiter.hpp
/// Second comparator: an aggregate rate limiter in the spirit of classic
/// pushback (Ioannidis & Bellovin, the paper's reference [8]). All
/// victim-bound traffic at the ATR shares one token bucket; excess is
/// dropped regardless of which flow it belongs to.

#include <algorithm>
#include <cstdint>

#include "core/actuator.hpp"
#include "sim/connector.hpp"
#include "sim/simulator.hpp"

namespace mafic::baseline {

class AggregateLimiter final : public sim::InlineFilter,
                               public core::DefenseActuator {
 public:
  struct Config {
    double limit_bps = 1e6;     ///< allowed aggregate toward the victim
    double burst_bytes = 4000;  ///< token bucket depth
  };

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
  };

  AggregateLimiter(sim::Simulator* sim, Config cfg)
      : sim_(sim), cfg_(cfg), tokens_(cfg.burst_bytes) {}

  // --- DefenseActuator ---
  void activate(const core::VictimSet& victims) override {
    for (const auto v : victims) victims_.insert(v);
    active_ = true;
    tokens_ = cfg_.burst_bytes;
    last_refill_ = sim_->now();
  }
  void refresh() override {}
  void deactivate() override {
    active_ = false;
    victims_.clear();
  }
  bool active() const noexcept override { return active_; }

  using OfferedCallback = std::function<void(const sim::Packet&)>;
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  const Config& config() const noexcept { return cfg_; }
  const Stats& stats() const noexcept { return stats_; }

 protected:
  Decision inspect(sim::Packet& p) override {
    if (!active_ || !victims_.contains(p.label.dst)) {
      return Decision::forward();
    }
    ++stats_.offered;
    if (on_offered_) on_offered_(p);
    refill();
    const double need = static_cast<double>(p.size_bytes);
    if (tokens_ >= need) {
      tokens_ -= need;
      ++stats_.forwarded;
      return Decision::forward();
    }
    ++stats_.dropped;
    return Decision::drop(sim::DropReason::kDefenseBaseline);
  }

  /// Token-bucket batch path for link bursts: one refill covers the whole
  /// span (every packet of a burst arrives at the same simulation
  /// instant, so the per-packet refills after the first would add
  /// (now - now) * rate = 0 tokens — the arithmetic below is exactly the
  /// per-packet sequence with those no-ops elided) and the span is judged
  /// in one pass without a virtual inspect() dispatch per packet.
  /// Verdicts, stats and callback order are bit-identical to recv()ing
  /// each packet in span order (test_baseline pins this).
  void inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                     Decision* out) override {
    bool refilled = false;
    for (std::size_t i = 0; i < n; ++i) {
      const sim::Packet& p = *pkts[i];
      if (!active_ || !victims_.contains(p.label.dst)) {
        out[i] = Decision::forward();
        continue;
      }
      ++stats_.offered;
      if (on_offered_) on_offered_(p);
      if (!refilled) {
        // First victim-bound packet of the span: matches where the
        // per-packet path would have refilled (refilling earlier would
        // also be a no-op at equal `now`, but keeping the exact call
        // point makes the bit-for-bit claim self-evident).
        refill();
        refilled = true;
      }
      const double need = static_cast<double>(p.size_bytes);
      if (tokens_ >= need) {
        tokens_ -= need;
        ++stats_.forwarded;
        out[i] = Decision::forward();
      } else {
        ++stats_.dropped;
        out[i] = Decision::drop(sim::DropReason::kDefenseBaseline);
      }
    }
  }

 private:
  void refill() {
    const double now = sim_->now();
    tokens_ = std::min(cfg_.burst_bytes,
                       tokens_ + (now - last_refill_) * cfg_.limit_bps / 8.0);
    last_refill_ = now;
  }

  sim::Simulator* sim_;
  Config cfg_;
  double tokens_;
  double last_refill_ = 0.0;
  bool active_ = false;
  core::VictimSet victims_;
  OfferedCallback on_offered_;
  Stats stats_;
};

}  // namespace mafic::baseline
