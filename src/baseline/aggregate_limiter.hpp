#pragma once

/// \file aggregate_limiter.hpp
/// Second comparator: an aggregate rate limiter in the spirit of classic
/// pushback (Ioannidis & Bellovin, the paper's reference [8]). All
/// victim-bound traffic at the ATR shares one token bucket; excess is
/// dropped regardless of which flow it belongs to.

#include <algorithm>
#include <cstdint>

#include "core/actuator.hpp"
#include "sim/connector.hpp"
#include "sim/simulator.hpp"

namespace mafic::baseline {

class AggregateLimiter final : public sim::InlineFilter,
                               public core::DefenseActuator {
 public:
  struct Config {
    double limit_bps = 1e6;     ///< allowed aggregate toward the victim
    double burst_bytes = 4000;  ///< token bucket depth
  };

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
  };

  AggregateLimiter(sim::Simulator* sim, Config cfg)
      : sim_(sim), cfg_(cfg), tokens_(cfg.burst_bytes) {}

  // --- DefenseActuator ---
  void activate(const core::VictimSet& victims) override {
    for (const auto v : victims) victims_.insert(v);
    active_ = true;
    tokens_ = cfg_.burst_bytes;
    last_refill_ = sim_->now();
  }
  void refresh() override {}
  void deactivate() override {
    active_ = false;
    victims_.clear();
  }
  bool active() const noexcept override { return active_; }

  using OfferedCallback = std::function<void(const sim::Packet&)>;
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  const Config& config() const noexcept { return cfg_; }
  const Stats& stats() const noexcept { return stats_; }

 protected:
  Decision inspect(sim::Packet& p) override {
    if (!active_ || !victims_.contains(p.label.dst)) {
      return Decision::forward();
    }
    ++stats_.offered;
    if (on_offered_) on_offered_(p);
    refill();
    const double need = static_cast<double>(p.size_bytes);
    if (tokens_ >= need) {
      tokens_ -= need;
      ++stats_.forwarded;
      return Decision::forward();
    }
    ++stats_.dropped;
    return Decision::drop(sim::DropReason::kDefenseBaseline);
  }

 private:
  void refill() {
    const double now = sim_->now();
    tokens_ = std::min(cfg_.burst_bytes,
                       tokens_ + (now - last_refill_) * cfg_.limit_bps / 8.0);
    last_refill_ = now;
  }

  sim::Simulator* sim_;
  Config cfg_;
  double tokens_;
  double last_refill_ = 0.0;
  bool active_ = false;
  core::VictimSet victims_;
  OfferedCallback on_offered_;
  Stats stats_;
};

}  // namespace mafic::baseline
