#pragma once

/// \file proportional_dropper.hpp
/// The baseline MAFIC improves upon (paper section II, closing paragraph):
/// "in [2] we only used a simple proportionate packet dropping approach,
/// i.e., all packets, legitimate or malicious, are dropped with the same
/// probability." Flow-blind Pd dropping on everything bound for the
/// victim.
///
/// Coin modes mirror core::CoinMode: the legacy kRngStream draws one
/// Bernoulli per hot packet from the filter's RNG in inspection order
/// (order-dependent — fine for a single serial filter), while
/// kPacketHash derives the coin statelessly from (coin_seed, flow-label
/// hash, packet uid) exactly like FilterEngine's packet-hash Pd coin, so
/// a packet's fate is independent of inspection order and batching. The
/// inspect_burst override exploits that: under burst links it walks the
/// span without touching any mutable coin state, and its verdict stream
/// is bit-identical to the per-packet path (test_baseline pins both the
/// identity and golden drop counts at fixed seeds).

#include <cstdint>

#include "core/actuator.hpp"
#include "sim/connector.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mafic::baseline {

class ProportionalDropper final : public sim::InlineFilter,
                                  public core::DefenseActuator {
 public:
  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
  };

  /// Pd coin source (see file comment).
  enum class CoinKind : std::uint8_t { kRngStream, kPacketHash };

  ProportionalDropper(double drop_probability, util::Rng rng)
      : pd_(drop_probability), rng_(rng) {}

  // --- DefenseActuator ---
  void activate(const core::VictimSet& victims) override {
    for (const auto v : victims) victims_.insert(v);
    active_ = true;
  }
  void refresh() override {}
  void deactivate() override {
    active_ = false;
    victims_.clear();
  }
  bool active() const noexcept override { return active_; }

  using OfferedCallback = std::function<void(const sim::Packet&)>;
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  /// Switches to the stateless packet-hash coin (or back). Call before
  /// traffic flows; changing mid-run changes the coin stream, nothing
  /// else.
  void set_coin(CoinKind kind, std::uint64_t seed = 0) noexcept {
    coin_kind_ = kind;
    coin_seed_ = seed;
  }
  CoinKind coin_kind() const noexcept { return coin_kind_; }

  double drop_probability() const noexcept { return pd_; }
  const Stats& stats() const noexcept { return stats_; }

 protected:
  Decision inspect(sim::Packet& p) override { return decide(p); }

  /// Span walk sharing decide(): with kPacketHash coins this reads no
  /// mutable coin state, so verdicts are bit-identical to per-packet
  /// inspection (with kRngStream it simply preserves the draw order the
  /// per-packet path would use).
  void inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                     Decision* out) override {
    for (std::size_t i = 0; i < n; ++i) out[i] = decide(*pkts[i]);
  }

 private:
  Decision decide(const sim::Packet& p) {
    if (!active_ || !victims_.contains(p.label.dst)) {
      return Decision::forward();
    }
    ++stats_.offered;
    if (on_offered_) on_offered_(p);
    if (drop_coin(p)) {
      ++stats_.dropped;
      return Decision::drop(sim::DropReason::kDefenseBaseline);
    }
    ++stats_.forwarded;
    return Decision::forward();
  }

  /// True = drop. The packet-hash branch is the same construction as
  /// FilterEngine's kPacketHash Pd coin: 53 uniform mantissa bits from a
  /// mix of seed, flow key and uid.
  bool drop_coin(const sim::Packet& p) {
    if (coin_kind_ == CoinKind::kRngStream) return rng_.bernoulli(pd_);
    if (pd_ <= 0.0) return false;
    if (pd_ >= 1.0) return true;
    const std::uint64_t h = util::mix64(coin_seed_ ^ hash_label(p.label) ^
                                        util::mix64(p.uid));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < pd_;
  }

  double pd_;
  util::Rng rng_;
  CoinKind coin_kind_ = CoinKind::kRngStream;
  std::uint64_t coin_seed_ = 0;
  bool active_ = false;
  core::VictimSet victims_;
  OfferedCallback on_offered_;
  Stats stats_;
};

}  // namespace mafic::baseline
