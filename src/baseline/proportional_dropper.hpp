#pragma once

/// \file proportional_dropper.hpp
/// The baseline MAFIC improves upon (paper section II, closing paragraph):
/// "in [2] we only used a simple proportionate packet dropping approach,
/// i.e., all packets, legitimate or malicious, are dropped with the same
/// probability." Flow-blind Pd dropping on everything bound for the
/// victim.

#include <cstdint>

#include "core/actuator.hpp"
#include "sim/connector.hpp"
#include "util/rng.hpp"

namespace mafic::baseline {

class ProportionalDropper final : public sim::InlineFilter,
                                  public core::DefenseActuator {
 public:
  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t forwarded = 0;
  };

  ProportionalDropper(double drop_probability, util::Rng rng)
      : pd_(drop_probability), rng_(rng) {}

  // --- DefenseActuator ---
  void activate(const core::VictimSet& victims) override {
    for (const auto v : victims) victims_.insert(v);
    active_ = true;
  }
  void refresh() override {}
  void deactivate() override {
    active_ = false;
    victims_.clear();
  }
  bool active() const noexcept override { return active_; }

  using OfferedCallback = std::function<void(const sim::Packet&)>;
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  double drop_probability() const noexcept { return pd_; }
  const Stats& stats() const noexcept { return stats_; }

 protected:
  Decision inspect(sim::Packet& p) override {
    if (!active_ || !victims_.contains(p.label.dst)) {
      return Decision::forward();
    }
    ++stats_.offered;
    if (on_offered_) on_offered_(p);
    if (rng_.bernoulli(pd_)) {
      ++stats_.dropped;
      return Decision::drop(sim::DropReason::kDefenseBaseline);
    }
    ++stats_.forwarded;
    return Decision::forward();
  }

 private:
  double pd_;
  util::Rng rng_;
  bool active_ = false;
  core::VictimSet victims_;
  OfferedCallback on_offered_;
  Stats stats_;
};

}  // namespace mafic::baseline
