#include "metrics/ledger.hpp"

namespace mafic::metrics {

void PacketLedger::register_flow(const FlowGroundTruth& truth) {
  FlowRecord rec;
  rec.truth = truth;
  // Re-registration overwrites in place and keeps the flow's original
  // position in the iteration order.
  if (flows_.find(truth.id) == flows_.end()) order_.push_back(truth.id);
  flows_[truth.id] = rec;
}

const PacketLedger::FlowRecord* PacketLedger::flow(sim::FlowId id) const {
  const auto it = flows_.find(id);
  return it == flows_.end() ? nullptr : &it->second;
}

void PacketLedger::on_defense_offered(const sim::Packet& p, double now) {
  const auto it = flows_.find(p.flow_id);
  if (it == flows_.end()) return;
  ++phase(it->second, now).offered_at_defense;
}

void PacketLedger::on_drop(const sim::Packet& p, sim::DropReason r,
                           sim::NodeId /*where*/, double now) {
  if (p.probe) {
    ++probe_seen_;
    return;  // probe losses are overhead, not flow traffic
  }
  const auto it = flows_.find(p.flow_id);
  if (it == flows_.end()) {
    ++untracked_drops_;
    return;
  }
  auto& counters = phase(it->second, now);
  switch (r) {
    case sim::DropReason::kDefenseProbe:
      ++counters.dropped_probation;
      break;
    case sim::DropReason::kDefensePdt:
      ++counters.dropped_pdt;
      break;
    case sim::DropReason::kDefenseBaseline:
      ++counters.dropped_baseline;
      break;
    case sim::DropReason::kQueueOverflow:
    case sim::DropReason::kRedEarly:
      ++counters.queue_drops;
      break;
    default:
      break;  // routing/ttl/port drops are not attributed
  }
}

void PacketLedger::on_victim_offered(const sim::Packet& p, double now) {
  victim_offered_bytes_.add(now, static_cast<double>(p.size_bytes));
  victim_offered_packets_.add(now, 1.0);
}

void PacketLedger::on_victim_delivered(const sim::Packet& p, double now) {
  victim_delivered_bytes_.add(now, static_cast<double>(p.size_bytes));
  const auto it = flows_.find(p.flow_id);
  if (it == flows_.end()) return;
  ++phase(it->second, now).victim_arrivals;
}

}  // namespace mafic::metrics
