#pragma once

/// \file ledger.hpp
/// Ground-truth accounting. The ledger knows which flow each packet came
/// from (via the metrics-only flow_id side channel) and whether that flow
/// is malicious; the defense never reads any of this. All five paper
/// metrics are computed from the counters collected here.

#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/time_series.hpp"

namespace mafic::metrics {

/// What the experiment knows about one traffic source.
struct FlowGroundTruth {
  sim::FlowId id = sim::kUntrackedFlow;
  bool malicious = false;
  bool tcp = false;         ///< congestion-responsive transport
  sim::FlowLabel label;     ///< wire label (spoofed source for zombies)
  sim::NodeId ingress_router = sim::kInvalidNode;
};

class PacketLedger {
 public:
  /// Counters for one flow within one phase (pre/post trigger).
  struct PhaseCounters {
    std::uint64_t offered_at_defense = 0;
    std::uint64_t dropped_probation = 0;  ///< Pd drops (probe phase)
    std::uint64_t dropped_pdt = 0;
    std::uint64_t dropped_baseline = 0;
    std::uint64_t queue_drops = 0;
    std::uint64_t victim_arrivals = 0;  ///< delivered over the last hop

    std::uint64_t defense_drops() const noexcept {
      return dropped_probation + dropped_pdt + dropped_baseline;
    }
  };

  struct FlowRecord {
    FlowGroundTruth truth;
    PhaseCounters pre;
    PhaseCounters post;
  };

  explicit PacketLedger(double series_bin_width = 0.05)
      : victim_offered_bytes_(series_bin_width),
        victim_delivered_bytes_(series_bin_width),
        victim_offered_packets_(series_bin_width) {}

  void register_flow(const FlowGroundTruth& truth);
  const FlowRecord* flow(sim::FlowId id) const;
  std::size_t flow_count() const noexcept { return flows_.size(); }

  /// Called once when the pushback first activates; earlier events count
  /// as "pre", later ones as "post".
  void set_trigger_time(double t) noexcept { trigger_time_ = t; }
  bool triggered() const noexcept {
    return trigger_time_ != std::numeric_limits<double>::infinity();
  }
  double trigger_time() const noexcept { return trigger_time_; }

  // --- event hooks -------------------------------------------------------
  void on_defense_offered(const sim::Packet& p, double now);
  void on_drop(const sim::Packet& p, sim::DropReason r, sim::NodeId where,
               double now);
  /// Pre-queue observation on the victim's last-hop link (bandwidth
  /// series for Fig. 4(b); the beta numerator/denominator).
  void on_victim_offered(const sim::Packet& p, double now);
  /// Post-queue delivery over the last hop ("hit the victim node").
  void on_victim_delivered(const sim::Packet& p, double now);

  // --- aggregates ---------------------------------------------------------
  const util::BinnedSeries& victim_offered_bytes() const noexcept {
    return victim_offered_bytes_;
  }
  const util::BinnedSeries& victim_offered_packets() const noexcept {
    return victim_offered_packets_;
  }
  const util::BinnedSeries& victim_delivered_bytes() const noexcept {
    return victim_delivered_bytes_;
  }

  /// Visits every registered flow in REGISTRATION order (deterministic:
  /// the experiment registers flows in construction order). The storage
  /// map is unordered for O(1) per-packet counter lookups; iterating it
  /// directly would leak hash-bucket order into anything summed in
  /// floating point or emitted per-flow, so the walk goes through the
  /// registration-order index instead.
  template <typename Fn>
  void for_each_flow(Fn&& fn) const {
    for (const sim::FlowId id : order_) fn(flows_.find(id)->second);
  }

  std::uint64_t untracked_drops() const noexcept { return untracked_drops_; }
  std::uint64_t probe_packets_seen() const noexcept { return probe_seen_; }

 private:
  PhaseCounters& phase(FlowRecord& rec, double now) noexcept {
    return now < trigger_time_ ? rec.pre : rec.post;
  }

  std::unordered_map<sim::FlowId, FlowRecord> flows_;
  std::vector<sim::FlowId> order_;  ///< registration order (for_each_flow)
  double trigger_time_ = std::numeric_limits<double>::infinity();
  util::BinnedSeries victim_offered_bytes_;
  util::BinnedSeries victim_delivered_bytes_;
  util::BinnedSeries victim_offered_packets_;
  std::uint64_t untracked_drops_ = 0;
  std::uint64_t probe_seen_ = 0;
};

}  // namespace mafic::metrics
