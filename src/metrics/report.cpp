#include "metrics/report.hpp"

#include <cstdio>

namespace mafic::metrics {

Metrics compute_metrics(const PacketLedger& ledger,
                        const ReportWindows& windows) {
  Metrics m;
  m.triggered = ledger.triggered();
  if (!m.triggered) return m;
  m.trigger_time = ledger.trigger_time();

  ledger.for_each_flow([&](const PacketLedger::FlowRecord& rec) {
    const auto& post = rec.post;
    m.total_offered += post.offered_at_defense;
    if (rec.truth.malicious) {
      m.malicious_offered += post.offered_at_defense;
      m.malicious_dropped += post.defense_drops();
      m.malicious_arrived += post.victim_arrivals;
    } else {
      m.legit_offered += post.offered_at_defense;
      m.legit_dropped += post.defense_drops();
      if (rec.truth.tcp) {
        m.legit_pdt_dropped += post.dropped_pdt;
      }
    }
  });

  if (m.malicious_offered > 0) {
    m.alpha = static_cast<double>(m.malicious_dropped) /
              static_cast<double>(m.malicious_offered);
    // "Not dropped ... across the defense line": packets the defense let
    // through. (Arrivals at the victim additionally depend on downstream
    // queues; m.malicious_arrived keeps that raw count.)
    m.theta_n =
        static_cast<double>(m.malicious_offered - m.malicious_dropped) /
        static_cast<double>(m.malicious_offered);
  }
  if (m.legit_offered > 0) {
    m.lr = static_cast<double>(m.legit_dropped) /
           static_cast<double>(m.legit_offered);
  }
  if (m.total_offered > 0) {
    m.theta_p = static_cast<double>(m.legit_pdt_dropped) /
                static_cast<double>(m.total_offered);
  }

  const auto& series = ledger.victim_offered_bytes();
  const double t = m.trigger_time;
  m.pre_rate_bps =
      series.rate_between(t - windows.beta_pre_window, t) * 8.0;
  const double post_start = t + windows.beta_post_skip;
  m.post_rate_bps =
      series.rate_between(post_start, post_start + windows.beta_post_window) *
      8.0;
  if (m.pre_rate_bps > 0.0) {
    m.beta = 1.0 - m.post_rate_bps / m.pre_rate_bps;
  }
  return m;
}

std::string format_metrics(const Metrics& m) {
  char buf[512];
  if (!m.triggered) {
    return "pushback never triggered; no defense metrics available";
  }
  std::snprintf(
      buf, sizeof(buf),
      "trigger at t=%.3fs | alpha=%.2f%% beta=%.1f%% theta_p=%.4f%% "
      "theta_n=%.3f%% Lr=%.2f%% | malicious %llu/%llu dropped, "
      "legit %llu/%llu dropped",
      m.trigger_time, m.alpha * 100.0, m.beta * 100.0, m.theta_p * 100.0,
      m.theta_n * 100.0, m.lr * 100.0,
      static_cast<unsigned long long>(m.malicious_dropped),
      static_cast<unsigned long long>(m.malicious_offered),
      static_cast<unsigned long long>(m.legit_dropped),
      static_cast<unsigned long long>(m.legit_offered));
  return buf;
}

}  // namespace mafic::metrics
