#pragma once

/// \file report.hpp
/// Computes the paper's five evaluation metrics from the ledger:
///
///   alpha   attack-packet dropping accuracy (Fig. 3)
///   beta    traffic reduction rate at the victim (Fig. 4a)
///   theta_p false positive rate (Fig. 5)
///   theta_n false negative rate (Fig. 6)
///   Lr      legitimate-packet dropping rate (Fig. 7)
///
/// Definitions (DESIGN.md section 4):
///   alpha   = malicious defense-drops / malicious offered (post-trigger)
///   beta    = 1 - victim offered-rate(post window) / offered-rate(pre)
///   theta_p = responsive-legit PDT drops / all offered (post-trigger)
///   theta_n = malicious packets passed by the defense / malicious offered
///   Lr      = legit defense-drops / legit offered (post-trigger)

#include <cmath>
#include <string>

#include "metrics/ledger.hpp"

namespace mafic::metrics {

struct Metrics {
  double alpha = std::numeric_limits<double>::quiet_NaN();
  double beta = std::numeric_limits<double>::quiet_NaN();
  double theta_p = std::numeric_limits<double>::quiet_NaN();
  double theta_n = std::numeric_limits<double>::quiet_NaN();
  double lr = std::numeric_limits<double>::quiet_NaN();

  // Supporting raw numbers (post-trigger unless noted).
  std::uint64_t malicious_offered = 0;
  std::uint64_t malicious_dropped = 0;
  std::uint64_t malicious_arrived = 0;
  std::uint64_t legit_offered = 0;
  std::uint64_t legit_dropped = 0;
  std::uint64_t legit_pdt_dropped = 0;  ///< responsive flows only
  std::uint64_t total_offered = 0;
  double pre_rate_bps = 0.0;
  double post_rate_bps = 0.0;
  double trigger_time = 0.0;
  bool triggered = false;
};

struct ReportWindows {
  double beta_pre_window = 0.4;   ///< seconds before the trigger
  double beta_post_skip = 0.04;   ///< lets in-flight packets drain first
  double beta_post_window = 0.1;  ///< probing phase + early PDT cutoff
};

/// Computes all metrics. NaNs indicate an undefined ratio (e.g. the
/// pushback never triggered or a denominator was zero).
Metrics compute_metrics(const PacketLedger& ledger,
                        const ReportWindows& windows = {});

/// One-paragraph human-readable rendering (examples use this).
std::string format_metrics(const Metrics& m);

}  // namespace mafic::metrics
