#pragma once

/// \file topology.hpp
/// Topology descriptions and builders. The evaluation topology is a domain
/// of N core routers (paper Table II: N = 40, swept 20-160 in Figs. 5c/6c)
/// with one victim behind a last-hop router, legitimate hosts and zombies
/// behind ingress routers, and a connected random core.

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/network.hpp"
#include "util/ip.hpp"
#include "util/rng.hpp"

namespace mafic::topology {

struct DomainConfig {
  std::size_t router_count = 40;

  // Core mesh: random spanning tree + extra chords for path diversity.
  double extra_edge_fraction = 0.5;  ///< chords as a fraction of N
  double core_bandwidth_bps = 100e6;
  double core_delay_min_s = 0.002;
  double core_delay_max_s = 0.006;
  std::size_t core_queue_packets = 200;

  // Host access links.
  double access_bandwidth_bps = 20e6;
  double access_delay_s = 0.001;
  std::size_t access_queue_packets = 100;
  /// Departure coalescing on host->router uplinks (the ingress direction
  /// the ATR defense filters): back-to-back departures leave as one span
  /// of up to this many packets (SimplexLink::Config::burst_packets).
  /// 1 = per-packet delivery (legacy).
  std::size_t access_uplink_burst_packets = 1;

  // The victim's last-hop link is the contended resource.
  double victim_bandwidth_bps = 10e6;
  double victim_delay_s = 0.001;
  std::size_t victim_queue_packets = 100;
};

/// One host attached to an ingress router via a duplex access link.
struct AccessLink {
  sim::NodeId router = sim::kInvalidNode;
  sim::NodeId host = sim::kInvalidNode;
  sim::SimplexLink* uplink = nullptr;    ///< host -> router (core ingress)
  sim::SimplexLink* downlink = nullptr;  ///< router -> host (core egress)
};

/// A built domain. Non-owning views into the Network plus the address
/// bookkeeping MAFIC's address policy consults.
class Domain {
 public:
  Domain(sim::Network* net, util::Rng rng, DomainConfig cfg);

  /// Builds the router core and the victim. Hosts are attached afterwards
  /// with attach_host(); call net->build_routes() when done.
  void build_core();

  /// Attaches a new host behind `router` (default: random non-victim
  /// ingress router). Returns the access link record.
  AccessLink& attach_host(std::optional<sim::NodeId> router = std::nullopt);

  sim::Network& net() noexcept { return *net_; }
  const DomainConfig& config() const noexcept { return cfg_; }

  const std::vector<sim::NodeId>& routers() const noexcept {
    return routers_;
  }
  sim::NodeId victim_router() const noexcept { return victim_router_; }
  sim::NodeId victim_host() const noexcept { return victim_host_; }
  util::Addr victim_addr() const noexcept;

  const std::vector<AccessLink>& access_links() const noexcept {
    return access_;
  }
  const AccessLink& victim_access() const noexcept { return victim_access_; }

  /// Registered subnets + allocated hosts; MAFIC's address-legality policy
  /// consults this.
  const util::AddressValidator& validator() const noexcept {
    return validator_;
  }

  /// All allocated (reachable) host addresses except the victim — the pool
  /// a spoofing attacker draws "legitimate" addresses from.
  const std::vector<util::Addr>& host_addresses() const noexcept {
    return host_addrs_;
  }

  /// A legal-but-never-allocated subnet (spoofed "unreachable" sources)
  /// and an unregistered one (spoofed "illegal" sources).
  util::Subnet unreachable_subnet() const noexcept { return unreachable_; }
  util::Subnet illegal_subnet() const noexcept { return illegal_; }

  /// Ingress routers eligible to host attackers/clients (all but victim's).
  std::vector<sim::NodeId> ingress_routers() const;

 private:
  util::Addr next_router_addr();

  sim::Network* net_;
  util::Rng rng_;
  DomainConfig cfg_;

  std::vector<sim::NodeId> routers_;
  sim::NodeId victim_router_ = sim::kInvalidNode;
  sim::NodeId victim_host_ = sim::kInvalidNode;
  AccessLink victim_access_;

  std::vector<AccessLink> access_;
  std::vector<util::Addr> host_addrs_;
  util::AddressValidator validator_;
  std::vector<util::SubnetAllocator> host_allocators_;  // one per router
  util::Subnet unreachable_{};
  util::Subnet illegal_{};
  unsigned router_addr_suffix_ = 1;
};

/// Small fixed topology for unit tests and the quickstart example:
/// n_left hosts -- left router == bottleneck ==> right router -- n_right
/// hosts.
struct Dumbbell {
  sim::NodeId left_router = sim::kInvalidNode;
  sim::NodeId right_router = sim::kInvalidNode;
  std::vector<sim::NodeId> left_hosts;
  std::vector<sim::NodeId> right_hosts;
  sim::SimplexLink* bottleneck_forward = nullptr;   ///< left -> right
  sim::SimplexLink* bottleneck_backward = nullptr;  ///< right -> left
};

struct DumbbellConfig {
  std::size_t left_hosts = 2;
  std::size_t right_hosts = 1;
  double access_bandwidth_bps = 10e6;
  double access_delay_s = 0.002;
  double bottleneck_bandwidth_bps = 5e6;
  double bottleneck_delay_s = 0.020;
  std::size_t bottleneck_queue_packets = 50;
  std::size_t access_queue_packets = 100;
};

Dumbbell build_dumbbell(sim::Network& net, const DumbbellConfig& cfg);

}  // namespace mafic::topology
