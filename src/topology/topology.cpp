#include "topology/topology.hpp"

#include <cassert>
#include <stdexcept>

namespace mafic::topology {

namespace {
// Address plan:
//   10.0.x.y        router loopbacks            (registered, core)
//   172.16.r.0/24   hosts behind router r       (registered, allocated)
//   172.31.0.0/16   registered but never allocated -> "unreachable"
//   203.0.113.0/24  never registered            -> "illegal"
constexpr util::Subnet kRouterSubnet{util::make_addr(10, 0, 0, 0), 16};
constexpr util::Subnet kUnreachable{util::make_addr(172, 31, 0, 0), 16};
constexpr util::Subnet kIllegal{util::make_addr(203, 0, 113, 0), 24};

util::Subnet host_subnet_for(std::size_t router_index) {
  // 172.16.0.0/12 carved into /24s: supports 4096 routers.
  const auto hi = static_cast<unsigned>(16 + router_index / 256);
  const auto lo = static_cast<unsigned>(router_index % 256);
  return util::Subnet{util::make_addr(172, hi, lo, 0), 24};
}
}  // namespace

Domain::Domain(sim::Network* net, util::Rng rng, DomainConfig cfg)
    : net_(net), rng_(rng), cfg_(cfg), unreachable_(kUnreachable),
      illegal_(kIllegal) {}

util::Addr Domain::next_router_addr() {
  const unsigned s = router_addr_suffix_++;
  return util::make_addr(10, 0, (s >> 8) & 0xff, s & 0xff);
}

void Domain::build_core() {
  if (!routers_.empty()) {
    throw std::logic_error("Domain::build_core called twice");
  }
  if (cfg_.router_count < 2) {
    throw std::invalid_argument("domain needs at least 2 routers");
  }

  validator_.add_subnet(kRouterSubnet);
  validator_.add_subnet(kUnreachable);

  // Routers + per-router host subnets.
  routers_.reserve(cfg_.router_count);
  host_allocators_.reserve(cfg_.router_count);
  for (std::size_t i = 0; i < cfg_.router_count; ++i) {
    sim::Node* r = net_->add_router(next_router_addr());
    routers_.push_back(r->id());
    const util::Subnet hs = host_subnet_for(i);
    validator_.add_subnet(hs);
    host_allocators_.emplace_back(hs);
  }

  // Random spanning tree: router i>0 connects to a uniformly random
  // earlier router, guaranteeing connectivity.
  auto core_cfg = [&] {
    sim::SimplexLink::Config c;
    c.bandwidth_bps = cfg_.core_bandwidth_bps;
    c.delay_s = rng_.uniform(cfg_.core_delay_min_s, cfg_.core_delay_max_s);
    c.queue_capacity_packets = cfg_.core_queue_packets;
    return c;
  };
  for (std::size_t i = 1; i < routers_.size(); ++i) {
    const auto j = rng_.index(i);
    net_->add_duplex(routers_[i], routers_[j], core_cfg());
  }
  // Extra chords for path diversity.
  const auto extra = static_cast<std::size_t>(
      cfg_.extra_edge_fraction * static_cast<double>(cfg_.router_count));
  for (std::size_t e = 0; e < extra; ++e) {
    const auto a = routers_[rng_.index(routers_.size())];
    const auto b = routers_[rng_.index(routers_.size())];
    if (a == b || net_->find_link(a, b) != nullptr) continue;
    net_->add_duplex(a, b, core_cfg());
  }

  // Victim: host behind router 0 over the contended last-hop link.
  victim_router_ = routers_.front();
  auto victim_alloc = host_allocators_.front().allocate();
  assert(victim_alloc.has_value());
  sim::Node* victim = net_->add_host(*victim_alloc);
  victim_host_ = victim->id();
  validator_.add_host(*victim_alloc);

  sim::SimplexLink::Config vcfg;
  vcfg.bandwidth_bps = cfg_.victim_bandwidth_bps;
  vcfg.delay_s = cfg_.victim_delay_s;
  vcfg.queue_capacity_packets = cfg_.victim_queue_packets;
  auto [down, up] = net_->add_duplex(victim_router_, victim_host_, vcfg);
  victim_access_ =
      AccessLink{victim_router_, victim_host_, /*uplink=*/up,
                 /*downlink=*/down};
}

AccessLink& Domain::attach_host(std::optional<sim::NodeId> router) {
  if (routers_.empty()) {
    throw std::logic_error("attach_host before build_core");
  }
  sim::NodeId r = router.value_or(sim::kInvalidNode);
  if (r == sim::kInvalidNode) {
    // Any router except the victim's last hop.
    r = routers_[1 + rng_.index(routers_.size() - 1)];
  }
  // Find the allocator for this router.
  std::size_t idx = 0;
  while (idx < routers_.size() && routers_[idx] != r) ++idx;
  if (idx == routers_.size()) {
    throw std::invalid_argument("attach_host: unknown router id");
  }

  auto addr = host_allocators_[idx].allocate();
  if (!addr) throw std::runtime_error("host subnet exhausted");
  sim::Node* h = net_->add_host(*addr);
  validator_.add_host(*addr);
  host_addrs_.push_back(*addr);

  sim::SimplexLink::Config acfg;
  acfg.bandwidth_bps = cfg_.access_bandwidth_bps;
  acfg.delay_s = cfg_.access_delay_s;
  acfg.queue_capacity_packets = cfg_.access_queue_packets;
  // Burst mode applies to the ingress direction only: the uplink is what
  // feeds the ATR's (batch-capable) defense filter.
  sim::SimplexLink* down = net_->add_simplex(r, h->id(), acfg);
  acfg.burst_packets = cfg_.access_uplink_burst_packets;
  sim::SimplexLink* up = net_->add_simplex(h->id(), r, acfg);
  access_.push_back(AccessLink{r, h->id(), /*uplink=*/up, /*downlink=*/down});
  return access_.back();
}

util::Addr Domain::victim_addr() const noexcept {
  return net_->node(victim_host_)->addr();
}

std::vector<sim::NodeId> Domain::ingress_routers() const {
  std::vector<sim::NodeId> out;
  for (const auto r : routers_) {
    if (r != victim_router_) out.push_back(r);
  }
  return out;
}

Dumbbell build_dumbbell(sim::Network& net, const DumbbellConfig& cfg) {
  Dumbbell d;
  sim::Node* lr = net.add_router(util::make_addr(10, 0, 0, 1));
  sim::Node* rr = net.add_router(util::make_addr(10, 0, 0, 2));
  d.left_router = lr->id();
  d.right_router = rr->id();

  sim::SimplexLink::Config bn;
  bn.bandwidth_bps = cfg.bottleneck_bandwidth_bps;
  bn.delay_s = cfg.bottleneck_delay_s;
  bn.queue_capacity_packets = cfg.bottleneck_queue_packets;
  auto [fwd, bwd] = net.add_duplex(d.left_router, d.right_router, bn);
  d.bottleneck_forward = fwd;
  d.bottleneck_backward = bwd;

  sim::SimplexLink::Config ac;
  ac.bandwidth_bps = cfg.access_bandwidth_bps;
  ac.delay_s = cfg.access_delay_s;
  ac.queue_capacity_packets = cfg.access_queue_packets;

  for (std::size_t i = 0; i < cfg.left_hosts; ++i) {
    sim::Node* h =
        net.add_host(util::make_addr(172, 16, 0, static_cast<unsigned>(i + 1)));
    net.add_duplex(d.left_router, h->id(), ac);
    d.left_hosts.push_back(h->id());
  }
  for (std::size_t i = 0; i < cfg.right_hosts; ++i) {
    sim::Node* h =
        net.add_host(util::make_addr(172, 17, 0, static_cast<unsigned>(i + 1)));
    net.add_duplex(d.right_router, h->id(), ac);
    d.right_hosts.push_back(h->id());
  }
  net.build_routes();
  return d;
}

}  // namespace mafic::topology
