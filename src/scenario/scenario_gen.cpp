#include "scenario/scenario_spec.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace mafic::scenario {

const char* to_string(AttackShape s) noexcept {
  switch (s) {
    case AttackShape::kNone:
      return "none";
    case AttackShape::kFlood:
      return "flood";
    case AttackShape::kPulse:
      return "pulse";
    case AttackShape::kCarpetBomb:
      return "carpet_bomb";
    case AttackShape::kSpoofChurn:
      return "spoof_churn";
  }
  return "?";
}

std::vector<Strategy> equivalence_strategies() {
  return {
      {"scalar", 1, 0, false, 8},
      {"sharded", 4, 0, false, 8},
      {"threaded", 4, 2, false, 8},
      {"fleet", 4, 2, true, 8},
  };
}

Strategy head_strategy() { return {"head", 0, 0, false, 1}; }

ExperimentConfig compile(const ScenarioSpec& spec) {
  const std::size_t zombies =
      spec.shape == AttackShape::kNone
          ? 0
          : std::max<std::size_t>(1, spec.zombies);
  const std::size_t total = spec.legit_flows + zombies;

  ExperimentConfig cfg;
  cfg.seed = spec.seed;
  cfg.total_flows = total;
  // Gamma is the legit share; build_flows rounds it back to the exact
  // flow split (legit is an integer, so lround recovers it precisely).
  cfg.tcp_fraction =
      total > 0 ? double(spec.legit_flows) / double(total) : 1.0;
  cfg.router_count = spec.routers;
  cfg.extra_victims = spec.victims > 0 ? spec.victims - 1 : 0;
  cfg.legit_udp_fraction = spec.legit_udp_fraction;
  cfg.flash_crowd_fraction = spec.flash_fraction;
  cfg.flash_crowd_start = spec.flash_start;
  cfg.flash_crowd_ramp = spec.flash_ramp;

  cfg.attack_army_total_bps = spec.attack_total_bps;
  cfg.attack_start = spec.attack_start;
  cfg.attack_ramp = spec.attack_ramp;
  cfg.per_packet_spoofing = spec.per_packet_spoofing;

  cfg.drop_probability = spec.drop_probability;
  cfg.sft_victim_quota = spec.sft_victim_quota;
  cfg.sft_victim_weights = spec.victim_provisioned_bps;
  cfg.mafic.sft_capacity = spec.sft_capacity;
  cfg.scripted_trigger_time = spec.trigger_time;
  if (spec.detector_trigger) {
    cfg.trigger = TriggerMode::kDetector;
    cfg.pushback.latch = spec.detector_latch;
    if (spec.detector_min_packets > 0.0) {
      cfg.pushback.detector.min_packets_per_epoch =
          spec.detector_min_packets;
    }
  }
  cfg.end_time = spec.end_time;
  return cfg;
}

void apply_strategy(const Strategy& strat, ExperimentConfig& cfg) {
  cfg.num_shards = strat.num_shards;
  cfg.shard_threads = strat.shard_threads;
  cfg.fleet_tick_batch = strat.fleet_tick_batch;
  cfg.link_burst_size = strat.link_burst;
}

Timeline generate_timeline(const ScenarioSpec& spec) {
  Timeline tl;
  // Phase zero: the army finished spawning (arm() staggers starts across
  // [attack_start, attack_start + attack_ramp]); nothing may fire before.
  const double t0 = spec.attack_start + spec.attack_ramp;
  switch (spec.shape) {
    case AttackShape::kNone:
    case AttackShape::kFlood:
      break;

    case AttackShape::kPulse: {
      // Shrew cycles anchored at t0: on for pulse_on, silent for the rest
      // of each period. The on-time is clamped under the period so every
      // cycle has both edges.
      const double period = std::max(1e-3, spec.pulse_period);
      const double on = std::min(std::max(1e-3, spec.pulse_on),
                                 0.9 * period);
      for (std::size_t k = 0;; ++k) {
        const double off_at = t0 + double(k) * period + on;
        const double on_at = t0 + double(k + 1) * period;
        if (off_at >= spec.end_time) break;
        tl.push_back({off_at, attack::PhaseAction::kStop, 0});
        if (on_at >= spec.end_time) break;
        tl.push_back({on_at, attack::PhaseAction::kStart, 0});
      }
      break;
    }

    case AttackShape::kCarpetBomb: {
      // Rolling sweeps: each sweep is a fresh seeded permutation of the
      // victim set, every victim hit exactly once per sweep, the army
      // dwelling carpet_dwell on each. Only complete sweeps are emitted
      // so the exactly-once-per-sweep contract holds by construction.
      const std::size_t v = std::max<std::size_t>(1, spec.victims);
      const double dwell = std::max(1e-3, spec.carpet_dwell);
      util::Rng rng(util::mix64(spec.seed ^ 0xca59e7b0b5eedULL));
      std::vector<std::size_t> order(v);
      std::iota(order.begin(), order.end(), std::size_t{0});
      double t = t0;
      while (t + double(v - 1) * dwell < spec.end_time) {
        rng.shuffle(order);
        for (const std::size_t victim : order) {
          tl.push_back({t, attack::PhaseAction::kRetarget, victim});
          t += dwell;
        }
      }
      break;
    }

    case AttackShape::kSpoofChurn: {
      const double interval = std::max(1e-3, spec.churn_interval);
      for (double t = t0 + interval; t < spec.end_time; t += interval) {
        tl.push_back({t, attack::PhaseAction::kRotateSpoof, 0});
      }
      break;
    }
  }
  return tl;
}

std::string validate_timeline(const ScenarioSpec& spec, const Timeline& tl) {
  const double t0 = spec.attack_start + spec.attack_ramp;
  if ((spec.shape == AttackShape::kNone ||
       spec.shape == AttackShape::kFlood) &&
      !tl.empty()) {
    return "steady shapes must have an empty timeline";
  }
  double prev = t0;
  bool running = true;  // arm() starts the whole army by t0
  std::vector<std::size_t> sweep;  // in-progress carpet sweep
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const TimelineEvent& ev = tl[i];
    if (ev.at <= 0.0 || ev.at >= spec.end_time) {
      return "event outside (0, end_time)";
    }
    if (ev.at < t0) return "phase fires before the army finished spawning";
    if (ev.at < prev) return "events not in time order";
    prev = ev.at;
    switch (ev.action) {
      case attack::PhaseAction::kStart:
        if (spec.shape != AttackShape::kPulse) {
          return "start edge outside a pulse shape";
        }
        if (running) return "start while already running";
        running = true;
        break;
      case attack::PhaseAction::kStop:
        if (spec.shape != AttackShape::kPulse) {
          return "stop edge outside a pulse shape";
        }
        if (!running) return "stop while already stopped";
        running = false;
        break;
      case attack::PhaseAction::kRetarget: {
        if (spec.shape != AttackShape::kCarpetBomb) {
          return "retarget outside a carpet-bomb shape";
        }
        if (!running) return "retarget while stopped";
        if (ev.victim >= spec.victims) return "retarget victim out of range";
        if (std::find(sweep.begin(), sweep.end(), ev.victim) !=
            sweep.end()) {
          return "victim hit twice in one carpet sweep";
        }
        sweep.push_back(ev.victim);
        if (sweep.size() == spec.victims) sweep.clear();  // sweep complete
        break;
      }
      case attack::PhaseAction::kRotateSpoof:
        if (spec.shape != AttackShape::kSpoofChurn) {
          return "rotate_spoof outside a spoof-churn shape";
        }
        if (!running) return "rotate_spoof while stopped";
        break;
    }
  }
  if (!sweep.empty()) {
    return "trailing partial carpet sweep (victims not each hit once)";
  }
  return "";
}

ScenarioSpec smoke_scale(ScenarioSpec spec) {
  spec.routers = std::min<std::size_t>(spec.routers, 10);
  spec.victims = std::min<std::size_t>(std::max<std::size_t>(spec.victims, 1),
                                       4);
  if (spec.victim_provisioned_bps.size() > spec.victims) {
    spec.victim_provisioned_bps.resize(spec.victims);
  }
  spec.legit_flows = std::min<std::size_t>(spec.legit_flows, 32);
  spec.zombies = std::min<std::size_t>(spec.zombies, 8);
  spec.attack_total_bps = std::min(spec.attack_total_bps, 8e6);
  spec.sft_capacity = std::min<std::size_t>(spec.sft_capacity, 512);
  spec.end_time = std::min(spec.end_time, 7.0);
  return spec;
}

std::uint64_t fingerprint(const ExperimentResult& r) {
  // FNV-1a 64-bit over the little-endian bytes of each integer field.
  std::uint64_t h = 14695981039346656037ULL;
  const auto add = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  add(r.legit_flows);
  add(r.attack_flows);
  add(r.events_processed);
  add(r.sft_admissions);
  add(r.sft_evictions);
  add(r.quota_evictions);
  add(r.moved_to_nft);
  add(r.moved_to_pdt);
  add(r.screened_sources);
  add(r.probes_issued);
  add(r.metrics.malicious_offered);
  add(r.metrics.malicious_dropped);
  add(r.metrics.malicious_arrived);
  add(r.metrics.legit_offered);
  add(r.metrics.legit_dropped);
  add(r.metrics.legit_pdt_dropped);
  add(r.metrics.total_offered);
  add(r.metrics.triggered ? 1 : 0);
  add(r.per_victim.size());
  for (const VictimBreakdown& pv : r.per_victim) {
    add(pv.victim);
    add(pv.decided_nice);
    add(pv.decided_malicious);
    add(pv.screened_sources);
    add(pv.evictions);
    add(pv.quota_evictions);
  }
  return h;
}

std::uint64_t detector_fingerprint(const ExperimentResult& r) {
  std::uint64_t h = fingerprint(r);
  const auto add = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const VictimBreakdown& pv : r.per_victim) {
    add(pv.alarms);
    add(pv.trigger_time >= 0.0 ? 1 : 0);
    add(pv.clear_time >= 0.0 ? 1 : 0);
  }
  add(r.atr.identified.size());
  for (const sim::NodeId id : r.atr.identified) add(id);
  return h;
}

ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const Strategy& strat) {
  ExperimentConfig cfg = compile(spec);
  apply_strategy(strat, cfg);
  Timeline tl = generate_timeline(spec);
  const std::string err = validate_timeline(spec, tl);
  if (!err.empty()) {
    throw std::runtime_error("scenario '" + spec.name +
                             "': malformed timeline: " + err);
  }

  Experiment exp(cfg);
  exp.setup();
  if (!tl.empty() && exp.attack_plan() != nullptr) {
    // Resolve spec-space victim indices to the addresses the experiment
    // assigned, and hand the concrete phase list to the army.
    std::vector<attack::AttackPlan::Phase> phases;
    phases.reserve(tl.size());
    for (const TimelineEvent& ev : tl) {
      attack::AttackPlan::Phase ph;
      ph.at = ev.at;
      ph.action = ev.action;
      if (ev.action == attack::PhaseAction::kRetarget) {
        ph.target = exp.victim_addrs()[ev.victim];
      }
      phases.push_back(ph);
    }
    exp.attack_plan()->arm_phases(std::move(phases));
  }

  ScenarioOutcome out;
  out.result = exp.run();
  out.timeline = std::move(tl);
  out.phases_fired =
      exp.attack_plan() != nullptr ? exp.attack_plan()->phases_fired() : 0;
  out.fingerprint = fingerprint(out.result);
  return out;
}

}  // namespace mafic::scenario
