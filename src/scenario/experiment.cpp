#include "scenario/experiment.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace mafic::scenario {

namespace {
constexpr std::uint16_t kSourcePort = 5000;
constexpr std::uint16_t kVictimPortBase = 2000;
}  // namespace

topology::DomainConfig ExperimentConfig::default_domain() {
  // 3 Mb/s victim last hop against a default zombie army of ~16-20 Mb/s:
  // the flood outweighs legitimate traffic roughly 5:1, the regime the
  // paper's evaluation (and Fig. 4(b)'s overload spike) depicts.
  topology::DomainConfig d;
  d.victim_bandwidth_bps = 3e6;
  return d;
}

pushback::PushbackCoordinator::Config ExperimentConfig::default_pushback() {
  pushback::PushbackCoordinator::Config p;
  p.latch = true;
  p.control_delay = 0.01;
  p.refresh_interval = 0.25;
  p.detector.warmup_epochs = 12;
  p.detector.trigger_factor = 1.8;
  p.detector.min_packets_per_epoch = 30.0;
  p.atr.share_threshold = 0.04;
  p.atr.min_intersection = 10.0;
  return p;
}

Experiment::Experiment(ExperimentConfig cfg)
    : cfg_(cfg),
      sim_(cfg.mafic.timer_wheel_resolution),
      rng_(cfg.seed),
      ledger_(cfg.series_bin_width) {
  cfg_.mafic.drop_probability = cfg_.drop_probability;
  cfg_.mafic.sft_victim_quota = cfg_.sft_victim_quota;
  if (cfg_.num_shards > 0) {
    // The sharded adapter's scalar-vs-sharded equivalence needs
    // interleaving-independent Pd coins; seed them from the experiment
    // seed so only num_shards may differ between compared runs.
    cfg_.mafic.coin_mode = core::CoinMode::kPacketHash;
    cfg_.mafic.coin_seed = util::mix64(cfg_.seed ^ 0xc0115eedULL);
  }
}

Experiment::~Experiment() = default;

void Experiment::setup() {
  if (setup_done_) return;
  setup_done_ = true;

  build_topology();
  build_sketches();
  build_flows();   // hosts must exist before routes are built
  net_->build_routes();
  build_defense();
  arm_trigger();

  // Global drop accounting must see every component; installing it last
  // covers links, nodes and filters alike.
  net_->set_drop_handler(
      [this](const sim::Packet& p, sim::DropReason r, sim::NodeId where) {
        ledger_.on_drop(p, r, where, sim_.now());
      });
}

void Experiment::build_topology() {
  net_ = std::make_unique<sim::Network>(&sim_);
  auto domain_cfg = cfg_.domain;
  domain_cfg.router_count = cfg_.router_count;
  domain_cfg.access_uplink_burst_packets = cfg_.link_burst_size;
  domain_ = std::make_unique<topology::Domain>(net_.get(), rng_.split(),
                                               domain_cfg);
  domain_->build_core();
  policy_ = std::make_unique<core::AddressPolicy>(&domain_->validator());

  // Victim last-hop instrumentation: offered (pre-queue) and delivered
  // (post-queue) on the router->victim downlink.
  sim::SimplexLink* down = domain_->victim_access().downlink;
  down->add_head_filter(std::make_unique<sim::TapConnector>(
      [this](const sim::Packet& p) {
        ledger_.on_victim_offered(p, sim_.now());
      }));
  down->add_tail_tap(std::make_unique<sim::TapConnector>(
      [this](const sim::Packet& p) {
        ledger_.on_victim_delivered(p, sim_.now());
      }));

  // Protected destinations: the domain's victim plus any extra victims,
  // each an ordinary host behind a random ingress router. Flows target
  // them round-robin; every MAFIC filter defends the whole set.
  victim_addrs_.push_back(domain_->victim_addr());
  victim_hosts_.push_back(domain_->victim_host());
  victim_routers_.push_back(domain_->victim_router());
  for (std::size_t i = 0; i < cfg_.extra_victims; ++i) {
    auto& access = domain_->attach_host();
    victim_addrs_.push_back(net_->node(access.host)->addr());
    victim_hosts_.push_back(access.host);
    victim_routers_.push_back(access.router);
  }
}

void Experiment::build_sketches() {
  bank_ = std::make_unique<sketch::RouterSketchBank>(
      cfg_.router_count, cfg_.sketch_precision_bits,
      /*hash_seed=*/cfg_.seed ^ 0x5ca1ab1eULL);
  monitor_ = std::make_unique<sketch::TrafficMonitor>(&sim_, bank_.get(),
                                                      cfg_.epoch_seconds);
  // Victim access counts as an egress point for D_victim.
  sketch::attach_egress_counter(domain_->victim_access().downlink,
                                domain_->victim_router(), bank_.get());
  sketch::attach_ingress_counter(domain_->victim_access().uplink,
                                 domain_->victim_router(), bank_.get());
  // Extra victims are ordinary attached hosts, but they are protected
  // destinations: without egress taps on their access links their
  // last-hop routers' |Dj| never fills and the detector is blind to
  // them. (At this point access_links() holds exactly the extra-victim
  // hosts — traffic hosts are attached later, in build_flows.)
  for (const auto& access : domain_->access_links()) {
    if (std::find(victim_hosts_.begin() + 1, victim_hosts_.end(),
                  access.host) == victim_hosts_.end()) {
      continue;
    }
    sketch::attach_egress_counter(access.downlink, access.router,
                                  bank_.get());
    sketch::attach_ingress_counter(access.uplink, access.router,
                                   bank_.get());
  }
  monitor_->start();
}

void Experiment::build_flows() {
  const std::size_t vt = cfg_.total_flows;
  legit_count_ =
      static_cast<std::size_t>(std::lround(cfg_.tcp_fraction * double(vt)));
  legit_count_ = std::min(legit_count_, vt);
  attack_count_ = vt - legit_count_;
  if (attack_count_ == 0 && cfg_.tcp_fraction < 1.0 && vt > 0) {
    attack_count_ = 1;
    legit_count_ = vt - 1;
  }

  // Flows target the protected destinations round-robin (one victim:
  // identical to targeting it directly).
  sim::FlowId next_flow = 1;
  const auto target_addr = [this](sim::FlowId flow) {
    return victim_addrs_[(flow - 1) % victim_addrs_.size()];
  };
  const auto target_node = [this](sim::FlowId flow) {
    return net_->node(victim_hosts_[(flow - 1) % victim_hosts_.size()]);
  };

  // --- legitimate flows ---------------------------------------------------
  const auto n_udp = static_cast<std::size_t>(
      std::lround(cfg_.legit_udp_fraction * double(legit_count_)));
  // Flash crowd: the tail n_flash legit flows start in a tight correlated
  // window instead of the steady-state one (spanning both the TCP and the
  // CBR mix, since the UDP share is carved from the head of the range).
  const auto n_flash =
      cfg_.flash_crowd_fraction > 0.0
          ? std::min(legit_count_,
                     static_cast<std::size_t>(std::lround(
                         cfg_.flash_crowd_fraction * double(legit_count_))))
          : std::size_t{0};
  const auto legit_start = [this, n_flash](std::size_t i) {
    if (n_flash > 0 && i >= legit_count_ - n_flash) {
      return rng_.uniform(cfg_.flash_crowd_start,
                          cfg_.flash_crowd_start + cfg_.flash_crowd_ramp);
    }
    return rng_.uniform(cfg_.legit_start_min, cfg_.legit_start_max);
  };
  for (std::size_t i = 0; i < legit_count_; ++i) {
    auto& access = domain_->attach_host();
    sketch::attach_ingress_counter(access.uplink, access.router, bank_.get());
    sketch::attach_egress_counter(access.downlink, access.router,
                                  bank_.get());
    sim::Node* host = net_->node(access.host);
    const auto vport =
        static_cast<std::uint16_t>(kVictimPortBase + next_flow);
    const sim::FlowId flow = next_flow++;
    const util::Addr victim = target_addr(flow);
    sim::Node* victim_node = target_node(flow);

    const bool is_udp = i < n_udp;
    if (is_udp) {
      transport::CbrSource::Config cc;
      cc.rate_bps = cfg_.legit_udp_rate_bps;
      cc.packet_bytes = cfg_.legit_packet_bytes;
      auto src = std::make_unique<transport::CbrSource>(
          &sim_, &factory_, host, kSourcePort, cc, rng_.split());
      src->connect(victim, vport);
      src->set_flow_id(flow);
      auto sink = std::make_unique<transport::UdpSink>(&sim_, &factory_,
                                                       victim_node, vport);
      const double start = legit_start(i);
      transport::CbrSource* src_ptr = src.get();
      sim_.schedule_at(start, [src_ptr] { src_ptr->start(); });
      agents_.push_back(std::move(src));
      agents_.push_back(std::move(sink));
    } else {
      transport::TcpSender::Config tc;
      tc.mss_bytes = cfg_.legit_packet_bytes;
      auto src = std::make_unique<transport::TcpSender>(
          &sim_, &factory_, host, kSourcePort, tc);
      src->connect(victim, vport);
      src->set_flow_id(flow);
      auto sink = std::make_unique<transport::TcpSink>(&sim_, &factory_,
                                                       victim_node, vport);
      sink->connect(host->addr(), kSourcePort);
      const double start = legit_start(i);
      transport::TcpSender* src_ptr = src.get();
      sim_.schedule_at(start, [src_ptr] { src_ptr->start(); });
      tcp_sender_ptrs_.push_back(src.get());
      agents_.push_back(std::move(src));
      agents_.push_back(std::move(sink));
    }

    metrics::FlowGroundTruth truth;
    truth.id = flow;
    truth.malicious = false;
    truth.tcp = !is_udp;
    truth.label = sim::FlowLabel{host->addr(), victim, kSourcePort, vport};
    truth.ingress_router = access.router;
    ledger_.register_flow(truth);
  }

  // The spoofing pool contains only innocent hosts (snapshot before
  // zombies are attached).
  spoof_model_ = std::make_unique<attack::SpoofingModel>(
      cfg_.spoofing, domain_->host_addresses(), domain_->unreachable_subnet(),
      domain_->illegal_subnet(), rng_.split());

  // --- attack flows ---------------------------------------------------------
  attack::AttackPlan::Config pc;
  pc.start_time = cfg_.attack_start;
  pc.ramp_seconds = cfg_.attack_ramp;
  attack_plan_ = std::make_unique<attack::AttackPlan>(&sim_, pc);

  for (std::size_t i = 0; i < attack_count_; ++i) {
    auto& access = domain_->attach_host();
    sketch::attach_ingress_counter(access.uplink, access.router, bank_.get());
    sketch::attach_egress_counter(access.downlink, access.router,
                                  bank_.get());
    sim::Node* host = net_->node(access.host);
    const auto vport =
        static_cast<std::uint16_t>(kVictimPortBase + next_flow);
    const sim::FlowId flow = next_flow++;
    const util::Addr victim = target_addr(flow);

    attack::Flooder::Config fc;
    fc.framing = cfg_.attack_framing;
    fc.rate_bps = cfg_.attack_army_total_bps > 0.0
                      ? cfg_.attack_army_total_bps / double(attack_count_)
                      : cfg_.attack_rate_bps;
    fc.packet_bytes = cfg_.attack_packet_bytes;
    fc.per_packet_spoofing = cfg_.per_packet_spoofing;
    fc.probe_evasion = cfg_.attack_probe_evasion;
    fc.evasion_pause_s = cfg_.attack_evasion_pause_s;
    auto z = std::make_unique<attack::Flooder>(&sim_, &factory_, host,
                                               kSourcePort, fc, rng_.split());
    z->connect(victim, vport);
    z->set_flow_id(flow);
    z->set_spoof(spoof_model_.get());

    metrics::FlowGroundTruth truth;
    truth.id = flow;
    truth.malicious = true;
    truth.tcp = false;
    truth.label = z->wire_label();
    truth.ingress_router = access.router;
    ledger_.register_flow(truth);

    zombie_routers_.push_back(access.router);
    attack_plan_->add(z.get());
    zombie_ptrs_.push_back(z.get());
    agents_.push_back(std::move(z));
  }
  attack_plan_->arm(rng_);
}

void Experiment::build_defense() {
  if (cfg_.defense == DefenseKind::kNone) return;

  if (cfg_.num_shards > 0 && cfg_.shard_threads > 0) {
    shard_pool_ =
        std::make_unique<core::ShardWorkerPool>(cfg_.shard_threads);
    if (cfg_.fleet_tick_batch) {
      fleet_ =
          std::make_unique<core::FleetBurstScheduler>(shard_pool_.get());
      sim_.set_tick_drain(fleet_.get());
    }
  }

  coordinator_ = std::make_unique<pushback::PushbackCoordinator>(
      &sim_, cfg_.pushback);
  // Protect EVERY configured destination. This used to register only the
  // primary victim, so with extra_victims > 0 detector-mode defense never
  // engaged for the secondaries and atr.recall silently counted their
  // ATRs as misses.
  for (std::size_t i = 0; i < victim_addrs_.size(); ++i) {
    coordinator_->protect(victim_routers_[i], victim_addrs_[i]);
  }
  if (cfg_.trigger == TriggerMode::kDetector) {
    coordinator_->set_trigger_callback(
        [this](double t, const std::vector<pushback::AtrScore>&) {
          if (!ledger_.triggered()) ledger_.set_trigger_time(t);
        });
    // Asynchronous control plane: detection runs against frozen epoch
    // snapshots (as pool work when the threaded datapath is on) and is
    // applied per victim through the coordinator's actuator registry —
    // the epoch callback no longer walks the matrix inline.
    pushback::ControlPlane::Config cp;
    cp.control_delay = cfg_.pushback.control_delay;
    cp.latch = cfg_.pushback.latch;
    cp.atr = cfg_.pushback.atr;
    cp.features.ewma = cfg_.pushback.detector;
    cp.features.fan_in_floor = cfg_.pushback.atr.min_intersection;
    control_plane_ = std::make_unique<pushback::ControlPlane>(
        &sim_, coordinator_.get(), cp);
    for (std::size_t i = 0; i < victim_addrs_.size(); ++i) {
      control_plane_->protect(victim_routers_[i], victim_addrs_[i]);
    }
    control_plane_->set_counter_source(
        [this](std::vector<sketch::VictimCounterSample>& samples) {
          for (auto& s : samples) {
            const VictimBreakdown b = victim_breakdown(s.victim);
            s.decided_nice = b.decided_nice;
            s.decided_malicious = b.decided_malicious;
            s.screened_sources = b.screened_sources;
            s.evictions = b.evictions;
          }
        });
    if (shard_pool_ != nullptr) {
      control_plane_->set_pool(shard_pool_.get());
    }
    control_plane_->watch(*monitor_);
  }

  // Weighted per-victim quotas: pair each protected destination with its
  // configured weight (victim order; missing entries weigh 1.0). Applied
  // to every MAFIC filter below so all ATRs/shards agree on reservations.
  std::vector<std::pair<util::Addr, double>> quota_weights;
  if (cfg_.sft_victim_quota > 0.0 && !cfg_.sft_victim_weights.empty()) {
    quota_weights.reserve(victim_addrs_.size());
    for (std::size_t i = 0; i < victim_addrs_.size(); ++i) {
      quota_weights.emplace_back(victim_addrs_[i],
                                 i < cfg_.sft_victim_weights.size()
                                     ? cfg_.sft_victim_weights[i]
                                     : 1.0);
    }
  }

  // One filter per ingress access uplink (except the victim's own).
  for (const auto& access : domain_->access_links()) {
    sim::Node* atr = net_->node(access.router);
    switch (cfg_.defense) {
      case DefenseKind::kMafic: {
        if (cfg_.num_shards > 0) {
          // Sharded datapath: the filter sits at the receiving end of
          // the uplink, where burst mode delivers coalesced spans.
          auto filter = std::make_unique<core::ShardedMaficFilter>(
              &sim_, &factory_, atr, cfg_.num_shards, cfg_.mafic,
              policy_.get(), /*seed=*/rng_.next(), shard_pool_.get());
          filter->set_offered_callback([this](const sim::Packet& p) {
            ledger_.on_defense_offered(p, sim_.now());
          });
          core::ShardedMaficFilter* raw = filter.get();
          if (!quota_weights.empty()) raw->set_victim_weights(quota_weights);
          access.uplink->add_tail_tap(std::move(filter));
          if (fleet_ != nullptr) {
            // Defer this filter's spans into the shared tick drain and
            // tag the uplink's deliveries batchable so the simulator can
            // coalesce same-instant spans across the fleet.
            raw->set_fleet(fleet_.get());
            access.uplink->transmitter().set_batchable_delivery(true);
          }
          sharded_filters_.push_back(raw);
          coordinator_->register_actuator(access.router, raw);
          break;
        }
        auto filter = std::make_unique<core::MaficFilter>(
            &sim_, &factory_, atr, cfg_.mafic, policy_.get(), rng_.split());
        filter->set_offered_callback([this](const sim::Packet& p) {
          ledger_.on_defense_offered(p, sim_.now());
        });
        core::MaficFilter* raw = filter.get();
        if (!quota_weights.empty()) raw->set_victim_weights(quota_weights);
        access.uplink->add_head_filter(std::move(filter));
        mafic_filters_.push_back(raw);
        coordinator_->register_actuator(access.router, raw);
        break;
      }
      case DefenseKind::kProportional: {
        auto filter = std::make_unique<baseline::ProportionalDropper>(
            cfg_.drop_probability, rng_.split());
        filter->set_offered_callback([this](const sim::Packet& p) {
          ledger_.on_defense_offered(p, sim_.now());
        });
        baseline::ProportionalDropper* raw = filter.get();
        access.uplink->add_head_filter(std::move(filter));
        proportional_filters_.push_back(raw);
        coordinator_->register_actuator(access.router, raw);
        break;
      }
      case DefenseKind::kAggregate: {
        auto filter = std::make_unique<baseline::AggregateLimiter>(
            &sim_, cfg_.aggregate);
        filter->set_offered_callback([this](const sim::Packet& p) {
          ledger_.on_defense_offered(p, sim_.now());
        });
        baseline::AggregateLimiter* raw = filter.get();
        access.uplink->add_head_filter(std::move(filter));
        aggregate_filters_.push_back(raw);
        coordinator_->register_actuator(access.router, raw);
        break;
      }
      case DefenseKind::kNone:
        break;
    }
  }
}

VictimBreakdown Experiment::victim_breakdown(util::Addr victim) const {
  VictimBreakdown b;
  b.victim = victim;
  for (const auto* f : mafic_filters_) {
    const auto& per = f->engine().victim_stats();
    const auto it = per.find(victim);
    if (it == per.end()) continue;
    b.decided_nice += it->second.decided_nice;
    b.decided_malicious += it->second.decided_malicious;
    b.screened_sources += it->second.screened_sources;
    b.evictions += it->second.evictions;
    b.quota_evictions += it->second.quota_evictions;
  }
  for (const auto* f : sharded_filters_) {
    const auto vs = f->victim_stats_for(victim);
    b.decided_nice += vs.decided_nice;
    b.decided_malicious += vs.decided_malicious;
    b.screened_sources += vs.screened_sources;
    b.evictions += vs.evictions;
    b.quota_evictions += vs.quota_evictions;
  }
  return b;
}

std::vector<sim::NodeId> Experiment::ground_truth_atrs() const {
  // Sorted + deduped: this lands in ExperimentResult::atr.ground_truth, so
  // its order must not depend on any hash-bucket layout.
  std::vector<sim::NodeId> atrs(zombie_routers_.begin(),
                                zombie_routers_.end());
  std::sort(atrs.begin(), atrs.end());
  atrs.erase(std::unique(atrs.begin(), atrs.end()), atrs.end());
  return atrs;
}

void Experiment::arm_trigger() {
  if (cfg_.defense == DefenseKind::kNone ||
      cfg_.trigger != TriggerMode::kScripted) {
    return;
  }
  sim_.schedule_at(cfg_.scripted_trigger_time, [this] {
    if (ledger_.triggered()) return;
    ledger_.set_trigger_time(sim_.now());
    core::VictimSet victims(victim_addrs_.begin(), victim_addrs_.end());
    const bool all = cfg_.atr_scope == AtrScope::kAllIngress;
    std::unordered_set<sim::NodeId> scope;
    if (!all) {
      const auto atrs = ground_truth_atrs();
      scope.insert(atrs.begin(), atrs.end());
    }
    auto in_scope = [&](sim::NodeId router) {
      return all || scope.contains(router);
    };
    for (auto* f : mafic_filters_) {
      if (in_scope(f->atr_node_id())) f->activate(victims);
    }
    for (auto* f : sharded_filters_) {
      if (in_scope(f->atr_node_id())) f->activate(victims);
    }
    for (auto* f : proportional_filters_) {
      if (in_scope(f->location())) f->activate(victims);
    }
    for (auto* f : aggregate_filters_) {
      if (in_scope(f->location())) f->activate(victims);
    }
  });
}

void Experiment::run_until(double t) {
  setup();
  sim_.run_until(t);
}

ExperimentResult Experiment::run() {
  setup();
  sim_.run_until(cfg_.end_time);
  return snapshot_result();
}

ExperimentResult Experiment::snapshot_result() const {
  ExperimentResult r;
  r.metrics = metrics::compute_metrics(ledger_, cfg_.windows);
  r.victim_offered_bytes = ledger_.victim_offered_bytes();
  r.legit_flows = legit_count_;
  r.attack_flows = attack_count_;
  r.events_processed = sim_.events_processed();

  for (const auto* f : mafic_filters_) {
    const auto& ts = f->tables().stats();
    r.sft_admissions += ts.sft_admissions;
    r.sft_evictions += ts.sft_evictions;
    r.quota_evictions += ts.quota_evictions;
    r.moved_to_nft += ts.moved_to_nft;
    r.moved_to_pdt += ts.moved_to_pdt;
    r.screened_sources += f->stats().screened_sources;
    r.probes_issued += f->stats().probes_issued;
  }
  for (const auto* f : sharded_filters_) {
    const auto ts = f->tables_stats();
    r.sft_admissions += ts.sft_admissions;
    r.sft_evictions += ts.sft_evictions;
    r.quota_evictions += ts.quota_evictions;
    r.moved_to_nft += ts.moved_to_nft;
    r.moved_to_pdt += ts.moved_to_pdt;
    const auto es = f->stats();
    r.screened_sources += es.screened_sources;
    r.probes_issued += es.probes_issued;
  }
  if (shard_pool_ != nullptr) {
    r.pool_occupancy = shard_pool_->occupancy();
    r.pool_workers = shard_pool_->worker_count();
  }
  if (fleet_ != nullptr) {
    r.fleet_drains = fleet_->drains();
    r.fleet_coalesced_drains = fleet_->coalesced_drains();
    r.fleet_spans = fleet_->spans_drained();
  }

  // Per-victim decision breakdown (engine-side accounting keyed by the
  // flow label's destination), aggregated across every filter, plus the
  // control plane's per-victim trigger outcome in detector mode.
  for (std::size_t i = 0; i < victim_addrs_.size(); ++i) {
    VictimBreakdown b = victim_breakdown(victim_addrs_[i]);
    if (control_plane_ != nullptr &&
        i < control_plane_->statuses().size()) {
      const auto& st = control_plane_->statuses()[i];
      b.trigger_time = st.trigger_time;
      b.clear_time = st.clear_time;
      b.alarms = st.alarms;
    }
    r.per_victim.push_back(b);
  }

  // ATR diagnostics: identified (detector mode) or assumed (scripted).
  r.atr.ground_truth = ground_truth_atrs();
  if (control_plane_ != nullptr) {
    r.atr.identified = control_plane_->active_atrs();
  } else if (cfg_.trigger == TriggerMode::kDetector &&
             coordinator_ != nullptr) {
    r.atr.identified = coordinator_->active_atrs();
  } else {
    for (const auto* f : mafic_filters_) {
      if (f->active()) r.atr.identified.push_back(f->atr_node_id());
    }
    for (const auto* f : sharded_filters_) {
      if (f->active()) r.atr.identified.push_back(f->atr_node_id());
    }
    std::sort(r.atr.identified.begin(), r.atr.identified.end());
    r.atr.identified.erase(
        std::unique(r.atr.identified.begin(), r.atr.identified.end()),
        r.atr.identified.end());
  }
  std::unordered_set<sim::NodeId> truth(r.atr.ground_truth.begin(),
                                        r.atr.ground_truth.end());
  std::size_t hits = 0;
  for (const auto id : r.atr.identified) {
    if (truth.contains(id)) ++hits;
  }
  if (!r.atr.identified.empty()) {
    r.atr.precision = double(hits) / double(r.atr.identified.size());
  }
  if (!truth.empty()) {
    r.atr.recall = double(hits) / double(truth.size());
  }
  return r;
}

metrics::Metrics run_averaged(const ExperimentConfig& base, std::size_t seeds,
                              std::vector<ExperimentResult>* out) {
  metrics::Metrics sum;
  sum.alpha = sum.beta = sum.theta_p = sum.theta_n = sum.lr = 0.0;
  std::size_t alpha_n = 0, beta_n = 0, tp_n = 0, tn_n = 0, lr_n = 0;

  for (std::size_t s = 0; s < seeds; ++s) {
    ExperimentConfig cfg = base;
    cfg.seed = base.seed + s * 7919;
    Experiment exp(cfg);
    ExperimentResult r = exp.run();
    const auto& m = r.metrics;
    if (!std::isnan(m.alpha)) { sum.alpha += m.alpha; ++alpha_n; }
    if (!std::isnan(m.beta)) { sum.beta += m.beta; ++beta_n; }
    if (!std::isnan(m.theta_p)) { sum.theta_p += m.theta_p; ++tp_n; }
    if (!std::isnan(m.theta_n)) { sum.theta_n += m.theta_n; ++tn_n; }
    if (!std::isnan(m.lr)) { sum.lr += m.lr; ++lr_n; }
    sum.malicious_offered += m.malicious_offered;
    sum.malicious_dropped += m.malicious_dropped;
    sum.malicious_arrived += m.malicious_arrived;
    sum.legit_offered += m.legit_offered;
    sum.legit_dropped += m.legit_dropped;
    sum.legit_pdt_dropped += m.legit_pdt_dropped;
    sum.total_offered += m.total_offered;
    sum.triggered = sum.triggered || m.triggered;
    if (out != nullptr) out->push_back(std::move(r));
  }

  const auto nan = std::numeric_limits<double>::quiet_NaN();
  sum.alpha = alpha_n ? sum.alpha / double(alpha_n) : nan;
  sum.beta = beta_n ? sum.beta / double(beta_n) : nan;
  sum.theta_p = tp_n ? sum.theta_p / double(tp_n) : nan;
  sum.theta_n = tn_n ? sum.theta_n / double(tn_n) : nan;
  sum.lr = lr_n ? sum.lr / double(lr_n) : nan;
  return sum;
}

}  // namespace mafic::scenario
