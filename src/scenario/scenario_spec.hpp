#pragma once

/// \file scenario_spec.hpp
/// Seeded scenario/workload generator: a declarative ScenarioSpec
/// (topology shape, victim set, legitimate background mix, attack shape)
/// compiled into the existing ExperimentConfig / Topology / AttackPlan
/// machinery, plus a generated attack TIMELINE of army-wide phase actions
/// (attack_plan.hpp) realizing the dynamic shapes the related work
/// enumerates — pulsing shrew on/off cycles, flash-crowd ramps of
/// legitimate flows, carpet-bombing that rolls across victims, spoof-churn
/// that rotates source addresses mid-flood — on top of the steady flood
/// the paper evaluated.
///
/// Everything is a pure function of the spec: compile() and
/// generate_timeline() are deterministic (same spec -> same config, same
/// timeline), and validate_timeline() checks the structural contract the
/// fuzz battery pins (sorted times, no phase before the army finished
/// spawning, start/stop alternation, carpet sweeps covering every victim
/// exactly once per sweep).
///
/// run_scenario() executes one spec under one datapath Strategy (scalar
/// head filter, sharded, threaded shards, fleet tick batching) and
/// fingerprints the integer decision statistics, which is what the
/// cross-strategy differential battery (test_scenario_catalog.cpp)
/// compares bit-for-bit. The named catalog lives in scenario_catalog.hpp.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "attack/attack_plan.hpp"
#include "scenario/experiment.hpp"

namespace mafic::scenario {

/// Attack-plan shape a spec compiles into a phase timeline.
enum class AttackShape : std::uint8_t {
  kNone,        ///< no zombies (flash-crowd / baseline studies)
  kFlood,       ///< the paper's steady flood: ramp up, never stop
  kPulse,       ///< shrew on/off cycles (kStopAll/kStartAll edges)
  kCarpetBomb,  ///< the army rolls across victims (kRetarget sweeps)
  kSpoofChurn,  ///< sources re-spoof mid-flood (kRotateSpoof ticks)
};

const char* to_string(AttackShape s) noexcept;

/// Declarative scenario description. Defaults are a small single-victim
/// flood; the catalog scales the knobs per entry.
struct ScenarioSpec {
  std::string name;  ///< catalog key (also used in test labels)
  std::uint64_t seed = 1;

  // --- topology ------------------------------------------------------------
  std::size_t routers = 40;  ///< domain fan-out (ingress routers)
  std::size_t victims = 1;   ///< protected destinations (>= 1)
  /// Per-victim provisioned bandwidth (bps), victim order; drives the
  /// weighted SFT quotas (reservations proportional to provisioned
  /// bandwidth). Empty = equal split.
  std::vector<double> victim_provisioned_bps;

  // --- legitimate background ----------------------------------------------
  std::size_t legit_flows = 45;
  double legit_udp_fraction = 0.0;  ///< CBR/UDP share of the background
  /// Flash crowd: this share of the legit flows starts in a tight window
  /// at flash_start instead of trickling in at sim start.
  double flash_fraction = 0.0;
  double flash_start = 3.5;
  double flash_ramp = 0.3;

  // --- attack --------------------------------------------------------------
  AttackShape shape = AttackShape::kFlood;
  std::size_t zombies = 5;        ///< ignored (forced 0) for kNone
  double attack_total_bps = 16e6; ///< army total, split across zombies
  double attack_start = 2.0;
  double attack_ramp = 0.2;       ///< army spawn stagger window
  bool per_packet_spoofing = false;
  double pulse_period = 1.2;      ///< kPulse: cycle length (s)
  double pulse_on = 0.4;          ///< kPulse: on-time per cycle (s)
  double carpet_dwell = 0.6;      ///< kCarpetBomb: time on each victim (s)
  double churn_interval = 0.5;    ///< kSpoofChurn: re-spoof period (s)

  // --- defense -------------------------------------------------------------
  double drop_probability = 0.9;
  double sft_victim_quota = 0.0;  ///< MaficConfig::sft_victim_quota
  std::size_t sft_capacity = 4096;
  double trigger_time = 2.7;      ///< scripted pushback notification
  /// TriggerMode::kDetector: the asynchronous control plane (epoch
  /// snapshots, per-victim feature detection, apply-after-control-delay)
  /// drives activation instead of the scripted notification. The
  /// detector battery runs catalog shapes with this on and compares
  /// detector_fingerprint() across strategies.
  bool detector_trigger = false;
  bool detector_latch = true;  ///< pushback latch in detector mode
  /// Detector |Dj| floor override (packets/epoch; 0 = library default).
  /// A victim's last-hop router also carries colocated hosts' egress
  /// (TCP ack streams), so batteries set this above that noise.
  double detector_min_packets = 0.0;

  // --- run -----------------------------------------------------------------
  double end_time = 8.0;
};

/// One generated timeline event in SPEC space: `victim` is an index into
/// the victim set (kRetarget only) — resolved to a concrete address only
/// after Experiment::setup() assigned them. Actions apply army-wide.
struct TimelineEvent {
  double at = 0.0;
  attack::PhaseAction action = attack::PhaseAction::kStart;
  std::size_t victim = 0;
};

using Timeline = std::vector<TimelineEvent>;

/// One datapath configuration the battery runs every scenario through.
/// num_shards 0 = the legacy scalar filter at the uplink HEAD (drops
/// before the queue, so its packet interleaving legitimately differs —
/// it is smoke-checked, not bit-compared); num_shards >= 1 mounts the
/// sharded engine at the uplink tail, where 1 is the scalar comparator
/// of the PR 3 equivalence contract.
struct Strategy {
  const char* label = "scalar";
  std::size_t num_shards = 1;
  std::size_t shard_threads = 0;
  bool fleet_tick_batch = false;
  std::size_t link_burst = 8;
};

/// The four bit-comparable strategies of the differential battery:
/// scalar(1 shard), sharded(4), threaded(4x2), fleet(4x2+tick batching).
/// All share the same link burst size, so the packet arrival order —
/// and therefore every per-flow decision — must match exactly.
std::vector<Strategy> equivalence_strategies();

/// The legacy head-filter strategy (per-packet, pre-queue drops).
Strategy head_strategy();

/// Compiles the declarative spec into a runnable ExperimentConfig
/// (topology, flow counts, defense, timing). Pure and deterministic; does
/// NOT include the Strategy (apply_strategy) or timeline (install after
/// setup). kNone forces zero zombies.
ExperimentConfig compile(const ScenarioSpec& spec);

/// Overlays a datapath strategy onto a compiled config.
void apply_strategy(const Strategy& strat, ExperimentConfig& cfg);

/// Generates the attack-phase timeline for the spec's shape. Seeded by
/// spec.seed: carpet-bomb sweep orders are per-sweep permutations drawn
/// from a dedicated stream. kNone/kFlood yield an empty timeline.
Timeline generate_timeline(const ScenarioSpec& spec);

/// Structural well-formedness check ("" = OK, else a diagnostic):
///  - times strictly inside (0, end_time), non-decreasing;
///  - nothing fires before attack_start + attack_ramp (the army must have
///    finished spawning — no zombie fires before spawn);
///  - start/stop edges alternate (the army starts running: first edge is
///    a stop) and retarget/rotate only happen while running;
///  - kRetarget victim indices are in range; for kCarpetBomb the
///    retargets split into consecutive sweeps, each covering every victim
///    exactly once;
///  - shapes only emit their own action kinds (kNone/kFlood: empty).
std::string validate_timeline(const ScenarioSpec& spec, const Timeline& tl);

/// Deterministically shrinks a nominal (internet-scale) spec to a size a
/// unit test / CI smoke step can run in seconds, preserving the shape:
/// victim count capped at 4 (weights re-truncated), flow counts and
/// fan-out capped, end_time tightened. Idempotent.
ScenarioSpec smoke_scale(ScenarioSpec spec);

/// What one scenario run produces.
struct ScenarioOutcome {
  ExperimentResult result;
  Timeline timeline;               ///< as installed (spec space)
  std::uint64_t phases_fired = 0;  ///< timeline boundaries that ran
  std::uint64_t fingerprint = 0;   ///< fingerprint(result)
};

/// FNV-1a (64-bit) over the result's INTEGER decision statistics: flow
/// counts, events processed, aggregated defense internals, the metrics
/// packet counters, and the ordered per-victim breakdown. Doubles (rates,
/// times) and unordered diagnostics are excluded, so the value is exactly
/// reproducible across strategies that make identical per-flow decisions.
std::uint64_t fingerprint(const ExperimentResult& r);

/// fingerprint(r) extended with the detector-mode outcome: per-victim
/// alarm counts and engage/clear flags, and the ordered identified-ATR
/// set. Trigger/clear TIMES are doubles and stay out of the hash (same
/// exclusion rule as fingerprint()); the battery compares them with
/// exact equality across strategies instead, since apply events are
/// epoch-aligned.
std::uint64_t detector_fingerprint(const ExperimentResult& r);

/// Compiles, applies the strategy, installs the generated timeline and
/// runs to end_time. Aborts (assert) on a timeline that fails validation —
/// generate_timeline and validate_timeline are tested to agree.
ScenarioOutcome run_scenario(const ScenarioSpec& spec,
                             const Strategy& strat);

}  // namespace mafic::scenario
