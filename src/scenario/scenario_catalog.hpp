#pragma once

/// \file scenario_catalog.hpp
/// The named scenario catalog: each entry is a nominal (internet-scale)
/// ScenarioSpec plus the paper motivation and the expected qualitative
/// outcome. docs/SCENARIOS.md renders the same table for humans;
/// examples/scenario_catalog.cpp lists/runs entries by name; the
/// cross-strategy differential battery (test_scenario_catalog.cpp) runs
/// every entry at smoke scale (smoke_scale) through all datapath
/// strategies and pins FNV golden fingerprints.

#include <string_view>
#include <vector>

#include "scenario/scenario_spec.hpp"

namespace mafic::scenario {

struct CatalogEntry {
  ScenarioSpec spec;        ///< nominal scale (run smoke_scale for CI)
  const char* motivation;   ///< paper / related-work hook
  const char* expectation;  ///< expected qualitative outcome
};

/// The built-in catalog (stable order; names are unique).
const std::vector<CatalogEntry>& catalog();

/// Entry by spec name; nullptr when unknown.
const CatalogEntry* find_scenario(std::string_view name);

}  // namespace mafic::scenario
