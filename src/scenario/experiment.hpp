#pragma once

/// \file experiment.hpp
/// End-to-end experiment wiring for the paper's evaluation: builds the
/// N-router domain, populates it with Vt flows (a Γ fraction of
/// long-lived TCP clients plus zombies flooding the victim at R bps each),
/// installs the LogLogCounter taps and MAFIC filters on every ingress
/// link, runs the pushback pipeline, and reports the five metrics.
///
/// Trigger modes:
///  * kScripted (default for figure benches): the pushback notification
///    arrives at a fixed time at the ground-truth ATRs. This mirrors the
///    paper's evaluation, which studies MAFIC's dropping behaviour *given*
///    the notification ("On receiving the notification of DDoS attack from
///    the victim router, each ATR begins dropping packets", section III-A);
///    detection quality belongs to the set-union substrate of [2].
///  * kDetector: the full pipeline — LogLog sketches, per-epoch traffic
///    matrix, |Dj| anomaly detection, a_ij ATR identification — drives the
///    activation, asynchronously: a pushback::ControlPlane freezes an
///    epoch snapshot, runs the feature-based detection step per protected
///    destination (as a worker-pool task when the threaded datapath is
///    on), and applies per-victim engage/disengage decisions one control
///    delay later. Every victim in victim_addrs() is protected.

#include <memory>
#include <vector>

#include "attack/attack_plan.hpp"
#include "attack/spoofing.hpp"
#include "attack/zombie.hpp"
#include "baseline/aggregate_limiter.hpp"
#include "baseline/proportional_dropper.hpp"
#include "core/address_policy.hpp"
#include "core/fleet_burst_scheduler.hpp"
#include "core/mafic_filter.hpp"
#include "core/sharded_mafic_filter.hpp"
#include "metrics/ledger.hpp"
#include "metrics/report.hpp"
#include "pushback/control_plane.hpp"
#include "pushback/coordinator.hpp"
#include "sim/monitor.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sketch/router_tap.hpp"
#include "sketch/traffic_matrix.hpp"
#include "topology/topology.hpp"
#include "transport/cbr.hpp"
#include "transport/tcp.hpp"
#include "transport/tcp_sink.hpp"
#include "transport/udp.hpp"

namespace mafic::scenario {

enum class DefenseKind : std::uint8_t {
  kNone,
  kMafic,
  kProportional,
  kAggregate,
};

enum class TriggerMode : std::uint8_t { kScripted, kDetector };

/// Which routers the scripted pushback notification reaches. With spoofed
/// sources the victim cannot exonerate any ingress point, so the paper's
/// response covers every ingress router forwarding victim-bound traffic
/// (kAllIngress, default). kZombieRouters assumes oracle identification
/// and is used by focused tests/ablations.
enum class AtrScope : std::uint8_t { kAllIngress, kZombieRouters };

struct ExperimentConfig {
  // --- Table II parameters -------------------------------------------------
  std::size_t total_flows = 50;    ///< Vt
  double tcp_fraction = 0.95;      ///< Γ (share of legitimate TCP flows)
  double drop_probability = 0.9;   ///< Pd
  double attack_rate_bps = 8e6;    ///< R, per zombie (used when army=0)
  std::size_t router_count = 40;   ///< N
  std::uint64_t seed = 1;

  // --- timing --------------------------------------------------------------
  double legit_start_min = 0.05;
  double legit_start_max = 0.60;
  double attack_start = 2.0;
  double attack_ramp = 0.2;
  double scripted_trigger_time = 2.7;
  double end_time = 15.0;

  // --- workload ------------------------------------------------------------
  /// When > 0, the zombie army's *total* rate is fixed at this value and
  /// split evenly across the (1-Γ)·Vt zombies, keeping the flood intensity
  /// constant across the Vt sweeps (as the paper's flat Fig. 4a suggests).
  /// Set to 0 to use attack_rate_bps per zombie (the Fig. 3b R sweep).
  double attack_army_total_bps = 16e6;
  std::uint32_t legit_packet_bytes = 1000;
  std::uint32_t attack_packet_bytes = 250;
  sim::Protocol attack_framing = sim::Protocol::kTcp;
  attack::SpoofingConfig spoofing{};  ///< default: all spoofs look legit
  bool per_packet_spoofing = false;
  /// Adaptive adversary (ablation A6): zombies back off when probed,
  /// earning NFT entries, then resume flooding. Pair with
  /// mafic.nft_revalidation_interval to study the countermeasure.
  bool attack_probe_evasion = false;
  double attack_evasion_pause_s = 0.3;
  double legit_udp_fraction = 0.0;  ///< share of legit flows that are CBR
  double legit_udp_rate_bps = 200e3;

  /// Flash crowd: this share of the legitimate flows (taken from the tail
  /// of the legit index range, mixed TCP/UDP) does NOT start in the
  /// steady-state [legit_start_min, legit_start_max] window; instead each
  /// starts uniformly in [flash_crowd_start, flash_crowd_start +
  /// flash_crowd_ramp] — a sudden, correlated surge of *genuine* clients
  /// that the defense must tell apart from a flood (Argyraki & Cheriton's
  /// flash-crowd-vs-flood distinction). 0 disables.
  double flash_crowd_fraction = 0.0;
  double flash_crowd_start = 3.5;
  double flash_crowd_ramp = 0.3;

  /// Additional concurrent victims beyond the domain's primary victim.
  /// Each extra victim is a host attached behind a random ingress router;
  /// legitimate flows and zombies target the victims round-robin, the
  /// scripted trigger activates every ATR with the full victim set, and
  /// the per-victim decision breakdown lands in
  /// ExperimentResult::per_victim. Flow keys hash the destination, so one
  /// ATR's tables partition naturally per victim. In kDetector mode every
  /// extra victim's access link is sketch-tapped and the control plane
  /// protects each one independently (per-victim trigger/clear times land
  /// in per_victim). Caveat: the victim-bandwidth instrumentation — beta
  /// and victim_offered_bytes — covers the primary victim's link only;
  /// extra-victim outcomes are reported via per_victim and alpha (defense
  /// drops are counted at the ATRs, victim-agnostic).
  std::size_t extra_victims = 0;

  // --- topology ------------------------------------------------------------
  topology::DomainConfig domain = default_domain();

  // --- defense -------------------------------------------------------------
  DefenseKind defense = DefenseKind::kMafic;
  TriggerMode trigger = TriggerMode::kScripted;
  AtrScope atr_scope = AtrScope::kAllIngress;
  /// Pd and the SFT victim quota are overwritten from the top-level
  /// drop_probability / sft_victim_quota knobs.
  core::MaficConfig mafic{};
  baseline::AggregateLimiter::Config aggregate{};

  /// Per-victim SFT filtering budget (core::MaficConfig::sft_victim_quota;
  /// copied over mafic.sft_victim_quota like drop_probability). With
  /// extra_victims >= 1 and a quota > 0, a capacity-saturating flood at
  /// one victim can no longer recycle another victim's in-flight
  /// probations — each protected destination keeps its reserved SFT
  /// slots, and per-victim eviction counts land in
  /// ExperimentResult::per_victim. 0 keeps the legacy global ring.
  double sft_victim_quota = 0.0;

  /// Weighted per-victim quotas: weight of each protected destination in
  /// victim order (primary victim first, then the extras in attachment
  /// order), e.g. its provisioned bandwidth in bps. With
  /// sft_victim_quota > 0, each victim's SFT reservation becomes
  /// proportional to its weight instead of an equal split (missing
  /// entries weigh 1.0, extra entries are ignored). Empty = equal split.
  std::vector<double> sft_victim_weights;

  /// Sharded ATR datapath. 0 (default) = the scalar MaficFilter at the
  /// head of each ingress uplink — the legacy, golden-pinned path.
  /// >= 1 (power of two) = a ShardedMaficFilter with this many engine
  /// shards at the RECEIVING end of each ingress uplink, fed link bursts
  /// through ShardedFilter::inspect_batch. Forces
  /// MaficConfig::coin_mode = kPacketHash (seeded from `seed`) so runs
  /// that differ only in num_shards make identical per-flow
  /// classification decisions — num_shards = 1 is the scalar comparator.
  std::size_t num_shards = 0;

  /// Speculative threaded sim shards (requires num_shards >= 1). 0
  /// (default) classifies burst spans in arrival order on the sim
  /// thread — the serial, golden-pinned path. >= 1 spins up a shared
  /// core::ShardWorkerPool with this many persistent workers; every
  /// sharded filter partitions its burst spans into per-shard sub-spans,
  /// fans them out, and merges the per-shard seam journals
  /// deterministically, so results are bit-identical to shard_threads=0
  /// at any worker count (test_core_threaded_sim pins this; the
  /// bench_flow_store_scale sim_threaded_sweep tier gates it).
  std::size_t shard_threads = 0;

  /// Fleet-wide tick batching (requires num_shards >= 1 and
  /// shard_threads >= 1; meaningful with link_burst_size > 1). Every
  /// sharded filter defers its burst spans into a shared
  /// core::FleetBurstScheduler installed as the simulator's tick drain:
  /// all same-instant deliveries across the whole ingress fleet run as
  /// ONE worker-pool submission (one fan-out/join per tick instead of
  /// one per filter), then replay their journals in arrival order —
  /// still bit-identical to shard_threads=0 (test_core_fleet_sim pins
  /// this; the bench sim_fleet_threaded tier gates the speedup).
  bool fleet_tick_batch = false;

  /// Departure coalescing on ingress access uplinks
  /// (DomainConfig::access_uplink_burst_packets): back-to-back departures
  /// reach the ATR as one span of up to this many packets, which is what
  /// drives the batched inspection path. 1 = per-packet delivery.
  std::size_t link_burst_size = 1;

  // --- pushback substrate ----------------------------------------------------
  double epoch_seconds = 0.1;
  unsigned sketch_precision_bits = 10;
  pushback::PushbackCoordinator::Config pushback = default_pushback();

  // --- measurement -----------------------------------------------------------
  metrics::ReportWindows windows{};
  double series_bin_width = 0.05;

  static topology::DomainConfig default_domain();
  static pushback::PushbackCoordinator::Config default_pushback();
};

/// ATR identification quality relative to ground truth (routers that
/// actually host zombies).
struct AtrDiagnostics {
  std::vector<sim::NodeId> identified;
  std::vector<sim::NodeId> ground_truth;
  double precision = 0.0;
  double recall = 0.0;
};

/// Per-victim defense outcome (aggregated over every MAFIC filter).
struct VictimBreakdown {
  util::Addr victim = util::kInvalidAddr;
  std::uint64_t decided_nice = 0;
  std::uint64_t decided_malicious = 0;
  std::uint64_t screened_sources = 0;
  /// This victim's probations evicted at SFT capacity before deciding
  /// (the cross-victim starvation signal; zero for a victim whose working
  /// set fits its quota when sft_victim_quota > 0).
  std::uint64_t evictions = 0;
  /// Subset where this victim, over quota, paid for another victim.
  std::uint64_t quota_evictions = 0;
  /// Detector-mode control-plane outcome for this victim (kDetector only;
  /// -1.0 / 0 otherwise). trigger_time is the first apply-event
  /// engagement; clear_time the last disengagement (unlatched runs).
  double trigger_time = -1.0;
  double clear_time = -1.0;
  std::uint64_t alarms = 0;  ///< detector raise transitions observed
};

struct ExperimentResult {
  metrics::Metrics metrics;
  AtrDiagnostics atr;
  std::vector<VictimBreakdown> per_victim;  ///< primary first, then extras
  util::BinnedSeries victim_offered_bytes;  ///< Fig. 4(b) raw series
  std::size_t legit_flows = 0;
  std::size_t attack_flows = 0;
  std::uint64_t events_processed = 0;

  // Fleet tick-batching / worker-pool diagnostics (all zero unless
  // shard_threads > 0; the fleet_* fields additionally need
  // fleet_tick_batch). Occupancy is the raw pool counter block —
  // tasks_per_submission() and busy_fraction(pool_workers) are the two
  // numbers the bench tier reports.
  std::uint64_t fleet_drains = 0;
  std::uint64_t fleet_coalesced_drains = 0;
  std::uint64_t fleet_spans = 0;
  core::ShardWorkerPool::Occupancy pool_occupancy{};
  std::size_t pool_workers = 0;

  // Aggregated defense internals (across all filters).
  std::uint64_t sft_admissions = 0;
  std::uint64_t sft_evictions = 0;
  std::uint64_t quota_evictions = 0;
  std::uint64_t moved_to_nft = 0;
  std::uint64_t moved_to_pdt = 0;
  std::uint64_t screened_sources = 0;
  std::uint64_t probes_issued = 0;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig cfg);
  ~Experiment();

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  /// Builds topology, flows, defense and measurement. Called implicitly by
  /// run(); exposed so examples can inspect/modify before running.
  void setup();
  bool is_setup() const noexcept { return setup_done_; }

  /// Runs to cfg.end_time and computes the result.
  ExperimentResult run();

  /// Advances the simulation clock (setup() must have been called).
  void run_until(double t);

  /// Result computation at the current sim time (usable mid-run).
  ExperimentResult snapshot_result() const;

  // --- component access (valid after setup) --------------------------------
  sim::Simulator& simulator() noexcept { return sim_; }
  sim::Network& network() noexcept { return *net_; }
  topology::Domain& domain() noexcept { return *domain_; }
  metrics::PacketLedger& ledger() noexcept { return ledger_; }
  pushback::PushbackCoordinator* coordinator() noexcept {
    return coordinator_.get();
  }
  /// Asynchronous detection layer (non-null iff trigger == kDetector and
  /// a defense is installed).
  pushback::ControlPlane* control_plane() noexcept {
    return control_plane_.get();
  }
  const std::vector<core::MaficFilter*>& mafic_filters() const noexcept {
    return mafic_filters_;
  }
  /// Sharded-datapath filters (non-empty iff cfg.num_shards > 0).
  const std::vector<core::ShardedMaficFilter*>& sharded_filters()
      const noexcept {
    return sharded_filters_;
  }
  const std::vector<transport::TcpSender*>& tcp_senders() const noexcept {
    return tcp_sender_ptrs_;
  }
  const std::vector<attack::Flooder*>& zombies() const noexcept {
    return zombie_ptrs_;
  }
  sketch::TrafficMonitor* traffic_monitor() noexcept {
    return monitor_.get();
  }
  /// The armed zombie-army plan (valid after setup; null with no army).
  /// The scenario engine installs attack-shape phase timelines through
  /// this (AttackPlan::arm_phases).
  attack::AttackPlan* attack_plan() noexcept { return attack_plan_.get(); }
  const ExperimentConfig& config() const noexcept { return cfg_; }
  /// All protected destinations (primary victim + extras).
  const std::vector<util::Addr>& victim_addrs() const noexcept {
    return victim_addrs_;
  }

 private:
  void build_topology();
  void build_sketches();
  void build_defense();
  void build_flows();
  void arm_trigger();
  std::vector<sim::NodeId> ground_truth_atrs() const;
  /// One victim's decision counters aggregated across every MAFIC filter
  /// (shared by snapshot_result and the control plane's counter source).
  VictimBreakdown victim_breakdown(util::Addr victim) const;

  ExperimentConfig cfg_;
  sim::Simulator sim_;
  sim::PacketFactory factory_;
  util::Rng rng_;

  /// Shared worker pool for the speculative threaded shard path; created
  /// iff num_shards > 0 && shard_threads > 0. Declared before net_ so it
  /// outlives the link-owned filters that borrow it.
  std::unique_ptr<core::ShardWorkerPool> shard_pool_;
  /// Fleet tick-batching scheduler (cfg.fleet_tick_batch); installed as
  /// sim_'s tick drain. Declared before net_ for the same lifetime
  /// reason as shard_pool_.
  std::unique_ptr<core::FleetBurstScheduler> fleet_;
  std::unique_ptr<sim::Network> net_;
  std::unique_ptr<topology::Domain> domain_;
  std::unique_ptr<core::AddressPolicy> policy_;

  std::unique_ptr<sketch::RouterSketchBank> bank_;
  std::unique_ptr<sketch::TrafficMonitor> monitor_;
  std::unique_ptr<pushback::PushbackCoordinator> coordinator_;
  std::unique_ptr<pushback::ControlPlane> control_plane_;

  metrics::PacketLedger ledger_;

  std::unique_ptr<attack::SpoofingModel> spoof_model_;
  std::unique_ptr<attack::AttackPlan> attack_plan_;

  // Owned traffic agents.
  std::vector<std::unique_ptr<transport::Agent>> agents_;
  std::vector<transport::TcpSender*> tcp_sender_ptrs_;
  std::vector<attack::Flooder*> zombie_ptrs_;

  // Filters are owned by their links; we keep handles.
  std::vector<core::MaficFilter*> mafic_filters_;
  std::vector<core::ShardedMaficFilter*> sharded_filters_;
  std::vector<baseline::ProportionalDropper*> proportional_filters_;
  std::vector<baseline::AggregateLimiter*> aggregate_filters_;

  // Router each zombie sits behind (ground truth for diagnostics).
  std::vector<sim::NodeId> zombie_routers_;

  // Protected destinations: primary victim + cfg.extra_victims hosts,
  // parallel arrays of address, host node, and last-hop router.
  std::vector<util::Addr> victim_addrs_;
  std::vector<sim::NodeId> victim_hosts_;
  std::vector<sim::NodeId> victim_routers_;

  std::size_t legit_count_ = 0;
  std::size_t attack_count_ = 0;
  bool setup_done_ = false;
};

/// Averages metrics over `seeds` runs of the same configuration (only the
/// seed differs). Used by every figure bench.
metrics::Metrics run_averaged(const ExperimentConfig& base,
                              std::size_t seeds,
                              std::vector<ExperimentResult>* out = nullptr);

}  // namespace mafic::scenario
