#include "scenario/scenario_catalog.hpp"

namespace mafic::scenario {

namespace {

std::vector<CatalogEntry> build_catalog() {
  std::vector<CatalogEntry> entries;

  {
    // Shrew-style pulsing: the army blasts for pulse_on out of every
    // pulse_period seconds, starving probation windows of the traffic
    // they need to converge while keeping the average rate low.
    ScenarioSpec s;
    s.name = "pulse_shrew";
    s.seed = 11;
    s.routers = 48;
    s.victims = 1;
    s.legit_flows = 4000;
    s.shape = AttackShape::kPulse;
    s.zombies = 1200;
    s.attack_total_bps = 24e6;
    s.pulse_period = 1.2;
    s.pulse_on = 0.35;
    s.end_time = 12.0;
    entries.push_back(
        {s,
         "Kuzmanovic & Knightly's shrew attacks; Li et al. (PAPERS.md) "
         "list pulsing as the low-rate evasion of rate-based defenses",
         "probations resolve across off-phases: malicious flows still "
         "reach PDT (alpha high), but slower than under a steady flood"});
  }

  {
    // A flash crowd with NO attack: thousands of genuine clients arrive
    // nearly at once while the defense is already active. Measures pure
    // collateral damage (false positives) under a legit surge.
    ScenarioSpec s;
    s.name = "flash_crowd";
    s.seed = 22;
    s.routers = 48;
    s.victims = 1;
    s.legit_flows = 8000;
    s.shape = AttackShape::kNone;
    s.zombies = 0;
    s.flash_fraction = 0.5;
    s.flash_start = 3.2;
    s.flash_ramp = 0.4;
    s.trigger_time = 2.7;
    s.end_time = 10.0;
    entries.push_back(
        {s,
         "Argyraki & Cheriton: a defense must tell flash crowds from "
         "floods — the surge is responsive, a flood is not",
         "surge flows answer probes and land in NFT: theta_p and Lr stay "
         "low, no flow reaches PDT for unresponsiveness"});
  }

  {
    // The paper's own evaluation shape at scale: a steady spoofed flood
    // from thousands of zombies, ramping once and never stopping.
    ScenarioSpec s;
    s.name = "udp_flood";
    s.seed = 33;
    s.routers = 64;
    s.victims = 1;
    s.legit_flows = 5000;
    s.shape = AttackShape::kFlood;
    s.zombies = 2000;
    s.attack_total_bps = 64e6;
    s.end_time = 10.0;
    entries.push_back(
        {s,
         "the paper's Table II evaluation: steady flood, spoofed "
         "sources, scripted pushback notification",
         "the classic result: alpha near Pd quickly, theta_n low, "
         "legit TCP mostly probed into NFT"});
  }

  {
    // Rolling carpet-bombing: the whole army sweeps across many
    // protected victims, dwelling briefly on each, so no single victim
    // stays hot long enough for naive per-victim state to converge.
    ScenarioSpec s;
    s.name = "carpet_bomb";
    s.seed = 44;
    s.routers = 48;
    s.victims = 8;
    s.legit_flows = 4000;
    s.shape = AttackShape::kCarpetBomb;
    s.zombies = 1500;
    s.attack_total_bps = 48e6;
    s.carpet_dwell = 0.6;
    s.sft_victim_quota = 0.1;
    s.end_time = 12.0;
    entries.push_back(
        {s,
         "carpet-bombing DDoS (rolling the flood across a victim set) — "
         "the workload PR 4's per-victim SFT quotas exist for",
         "every victim shows decisions; quotas stop the hot victim from "
         "evicting the others' probations (bounded cross-victim "
         "evictions)"});
  }

  {
    // Spoof-churn: the army periodically redraws its spoofed source
    // addresses, orphaning SFT probations mid-window and refilling the
    // table with fresh suspects — the probation-heavy stress shape.
    ScenarioSpec s;
    s.name = "spoof_churn";
    s.seed = 55;
    s.routers = 48;
    s.victims = 1;
    s.legit_flows = 3000;
    s.shape = AttackShape::kSpoofChurn;
    s.zombies = 1000;
    s.attack_total_bps = 32e6;
    s.churn_interval = 0.4;
    s.sft_capacity = 512;
    s.end_time = 10.0;
    entries.push_back(
        {s,
         "source-address churn defeats per-flow state by construction "
         "(Li et al.'s spoofing taxonomy; ablation A5 is the per-packet "
         "limit of the same idea)",
         "SFT admissions and capacity evictions dominate: each rotation "
         "abandons probations, alpha degrades vs the steady flood"});
  }

  {
    // Mixed TCP/UDP background at 100k flows across 8 victims with
    // UNEQUAL provisioned bandwidth: the weighted-quota study. The SFT
    // reservations follow the provisioning, so the big victims keep
    // proportionally more probation slots under the shared flood.
    ScenarioSpec s;
    s.name = "mixed_background";
    s.seed = 66;
    s.routers = 64;
    s.victims = 8;
    s.victim_provisioned_bps = {8e6, 6e6, 4e6, 4e6, 2e6, 2e6, 1e6, 1e6};
    s.legit_flows = 100000;
    s.legit_udp_fraction = 0.3;
    s.shape = AttackShape::kFlood;
    s.zombies = 2000;
    s.attack_total_bps = 80e6;
    s.sft_victim_quota = 0.12;
    s.end_time = 12.0;
    entries.push_back(
        {s,
         "the ROADMAP's mixed TCP/UDP background at 100k-1M flows; "
         "weighted per-victim quotas proportional to provisioned "
         "bandwidth",
         "per-victim SFT reservations scale with provisioning (8:1 "
         "across the set); collateral damage concentrates on the "
         "thin-provisioned victims, not the whole set"});
  }

  return entries;
}

}  // namespace

const std::vector<CatalogEntry>& catalog() {
  static const std::vector<CatalogEntry> entries = build_catalog();
  return entries;
}

const CatalogEntry* find_scenario(std::string_view name) {
  for (const CatalogEntry& e : catalog()) {
    if (e.spec.name == name) return &e;
  }
  return nullptr;
}

}  // namespace mafic::scenario
