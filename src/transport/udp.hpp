#pragma once

/// \file udp.hpp
/// Minimal UDP endpoints: a datagram sender and a counting sink. The CBR
/// source (cbr.hpp) layers constant-rate scheduling on the sender.

#include <cstdint>
#include <functional>

#include "transport/agent.hpp"

namespace mafic::transport {

class UdpSender : public Agent {
 public:
  UdpSender(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
            std::uint16_t port)
      : Agent(sim, factory, node, port) {}

  /// Emits one datagram of `bytes` toward the connected remote.
  void send_datagram(std::uint32_t bytes);

  /// UDP senders ignore whatever comes back.
  void recv(sim::PacketPtr) override { ++ignored_; }

  std::uint64_t packets_sent() const noexcept { return sent_; }
  std::uint64_t ignored_packets() const noexcept { return ignored_; }

 protected:
  std::uint64_t sent_ = 0;
  std::uint64_t ignored_ = 0;
};

class UdpSink final : public Agent {
 public:
  UdpSink(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
          std::uint16_t port)
      : Agent(sim, factory, node, port) {}

  void recv(sim::PacketPtr p) override {
    ++packets_;
    bytes_ += p->size_bytes;
    if (on_packet_) on_packet_(*p);
  }

  void set_observer(std::function<void(const sim::Packet&)> obs) {
    on_packet_ = std::move(obs);
  }

  std::uint64_t packets_received() const noexcept { return packets_; }
  std::uint64_t bytes_received() const noexcept { return bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  std::function<void(const sim::Packet&)> on_packet_;
};

}  // namespace mafic::transport
