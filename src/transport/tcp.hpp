#pragma once

/// \file tcp.hpp
/// TCP Reno sender over packet-granularity sequence numbers (NS-2 style:
/// each data packet carries one sequence number and a fixed MSS payload).
///
/// Implements: slow start, congestion avoidance, fast retransmit + fast
/// recovery on three duplicate ACKs, Jacobson/Karels RTO estimation with
/// exponential backoff, go-back-N on timeout, and the timestamp option
/// (TSval/TSecr) that lets both endpoints and in-path routers sample RTT.
///
/// Duplicate-ACK handling matters for MAFIC: the sender counts any ACK that
/// does not advance snd_una as a duplicate. A MAFIC router can therefore
/// probe a claimed source by injecting duplicate ACKs — a genuine TCP
/// sender fast-retransmits and halves cwnd, visibly cutting its arrival
/// rate at the router within about one RTT.

#include <cstdint>

#include "transport/agent.hpp"

namespace mafic::transport {

class TcpSender final : public Agent {
 public:
  struct Config {
    std::uint32_t mss_bytes = 1000;   ///< data packet size on the wire
    std::uint32_t ack_bytes = 40;     ///< pure-ACK size
    double initial_cwnd = 2.0;        ///< packets
    double initial_ssthresh = 64.0;   ///< packets
    double max_cwnd = 128.0;          ///< packets (receiver window stand-in)
    double min_rto = 0.2;             ///< seconds
    double max_rto = 8.0;             ///< seconds
    double initial_rto = 1.0;         ///< seconds before first RTT sample

    /// Application-limited sending rate (0 = greedy FTP source). Modeled
    /// as a token bucket over whole packets: the window may be open while
    /// the application simply has nothing more to send yet.
    double app_rate_bps = 0.0;
    double app_burst_packets = 2.0;
  };

  struct Stats {
    std::uint64_t data_packets_sent = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_recoveries = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t dup_acks_received = 0;
  };

  TcpSender(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
            std::uint16_t port)
      : TcpSender(sim, factory, node, port, Config{}) {}

  TcpSender(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
            std::uint16_t port, Config cfg)
      : Agent(sim, factory, node, port), cfg_(cfg), rto_(cfg.initial_rto) {}

  ~TcpSender() override { cancel_rto(); }

  /// Begins transmitting an unbounded (FTP-like) byte stream.
  void start();
  /// Stops sending new data (outstanding timers are cancelled).
  void stop();

  void recv(sim::PacketPtr p) override;  ///< ACK processing

  // Introspection for tests / experiments.
  double cwnd() const noexcept { return cwnd_; }
  double ssthresh() const noexcept { return ssthresh_; }
  double rto() const noexcept { return rto_; }
  double srtt() const noexcept { return srtt_; }
  bool in_fast_recovery() const noexcept { return in_fast_recovery_; }
  std::uint32_t snd_una() const noexcept { return snd_una_; }
  std::uint32_t snd_nxt() const noexcept { return snd_nxt_; }
  bool running() const noexcept { return running_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  void send_window();
  void refill_app_tokens();
  void send_data(std::uint32_t seq, bool retransmission);
  void on_new_ack(std::uint32_t ackno, const sim::Packet& ack);
  void on_dup_ack();
  void on_timeout();
  void update_rtt(double sample);
  void arm_rto();
  void cancel_rto();
  double flight_size() const noexcept {
    return static_cast<double>(snd_nxt_ - snd_una_);
  }
  double effective_window() const noexcept;

  Config cfg_;

  bool running_ = false;
  std::uint32_t snd_una_ = 1;
  std::uint32_t snd_nxt_ = 1;
  double cwnd_ = 2.0;
  double ssthresh_ = 64.0;
  std::uint32_t dupacks_ = 0;
  bool in_fast_recovery_ = false;
  std::uint32_t recover_ = 0;

  // RTT estimation (Jacobson/Karels).
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  double rto_;
  bool have_rtt_ = false;

  double last_peer_tsval_ = 0.0;
  sim::EventId rto_timer_ = sim::kInvalidEvent;

  // Application-limited pacing state.
  double app_tokens_ = 0.0;
  double app_last_refill_ = 0.0;
  sim::EventId app_timer_ = sim::kInvalidEvent;

  Stats stats_;
};

}  // namespace mafic::transport
