#include "transport/cbr.hpp"

#include <algorithm>

namespace mafic::transport {

void CbrSource::start() {
  if (running_) return;
  running_ = true;
  // First emission staggered within one interval so simultaneous starts
  // don't synchronize.
  timer_ = sim_->schedule(rng_.uniform01() * next_interval(),
                          [this] { tick(); });
}

void CbrSource::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
}

void CbrSource::tick() {
  timer_ = sim::kInvalidEvent;
  if (!running_) return;
  send_datagram(cfg_.packet_bytes);
  timer_ = sim_->schedule(next_interval(), [this] { tick(); });
}

double CbrSource::next_interval() {
  const double base =
      static_cast<double>(cfg_.packet_bytes) * 8.0 / cfg_.rate_bps;
  if (cfg_.jitter_fraction <= 0.0) return base;
  const double j = cfg_.jitter_fraction;
  return std::max(1e-6, base * rng_.uniform(1.0 - j, 1.0 + j));
}

}  // namespace mafic::transport
