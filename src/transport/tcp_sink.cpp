#include "transport/tcp_sink.hpp"

namespace mafic::transport {

void TcpSink::recv(sim::PacketPtr p) {
  if (p->proto != sim::Protocol::kTcp) return;
  ++stats_.packets_received;
  stats_.bytes_received += p->size_bytes;

  reply_label_ = p->label.reversed();
  reply_flow_ = p->flow_id;
  pending_tsecr_ = p->tsval;

  const std::uint32_t seq = p->seq;
  if (seq == rcv_nxt_) {
    ++rcv_nxt_;
    ++stats_.unique_delivered;
    // Drain any buffered continuation.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && *it == rcv_nxt_) {
      ++rcv_nxt_;
      ++stats_.unique_delivered;
      it = out_of_order_.erase(it);
    }
    if (!out_of_order_.empty()) {
      // The hole above rcv_nxt_ persists: ACK immediately so the sender
      // keeps learning about it.
      send_ack(/*duplicate=*/false);
    } else if (cfg_.delayed_ack) {
      if (have_unacked_) {
        send_ack(/*duplicate=*/false);  // every second segment
      } else {
        have_unacked_ = true;
        arm_ack_timer();
      }
    } else {
      send_ack(/*duplicate=*/false);
    }
  } else if (seq > rcv_nxt_) {
    out_of_order_.insert(seq);
    send_ack(/*duplicate=*/true);  // gap: duplicate ACK for rcv_nxt
  } else {
    ++stats_.duplicate_data;  // retransmission overlap (go-back-N)
    send_ack(/*duplicate=*/false);
  }
}

void TcpSink::send_ack(bool duplicate) {
  cancel_ack_timer();
  have_unacked_ = false;
  auto ack = factory_->make();
  ack->label = reply_label_;
  ack->flow_id = reply_flow_;  // reverse traffic attributed to same flow
  ack->proto = sim::Protocol::kTcp;
  ack->flags = sim::tcp_flags::kAck;
  ack->size_bytes = cfg_.ack_bytes;
  ack->ack_no = rcv_nxt_;
  ack->tsval = sim_->now();
  ack->tsecr = pending_tsecr_;  // timestamp echo
  ack->sent_time = sim_->now();
  ++stats_.acks_sent;
  if (duplicate) ++stats_.dup_acks_sent;
  inject(std::move(ack));
}

void TcpSink::arm_ack_timer() {
  if (ack_timer_ != sim::kInvalidEvent) return;
  ack_timer_ = sim_->schedule(cfg_.ack_delay_s, [this] {
    ack_timer_ = sim::kInvalidEvent;
    if (!have_unacked_) return;
    ++stats_.delayed_acks;
    send_ack(/*duplicate=*/false);
  });
}

void TcpSink::cancel_ack_timer() {
  if (ack_timer_ != sim::kInvalidEvent) {
    sim_->cancel(ack_timer_);
    ack_timer_ = sim::kInvalidEvent;
  }
}

}  // namespace mafic::transport
