#pragma once

/// \file agent.hpp
/// Transport agents: protocol endpoints bound to a node+port. Agents build
/// packets through the experiment's PacketFactory so every packet gets a
/// unique uid (which the distinct-counting sketches rely on).

#include <cstdint>

#include "sim/network.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace mafic::transport {

class Agent : public sim::PacketHandler {
 public:
  Agent(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
        std::uint16_t port)
      : sim_(sim), factory_(factory), node_(node), port_(port) {
    node_->bind_port(port_, this);
  }

  ~Agent() override {
    if (node_ != nullptr) node_->unbind_port(port_);
  }

  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Sets the remote endpoint; the flow label becomes fully defined.
  void connect(util::Addr raddr, std::uint16_t rport) {
    raddr_ = raddr;
    rport_ = rport;
  }

  /// Metrics-only flow id stamped on every emitted packet.
  void set_flow_id(sim::FlowId id) noexcept { flow_id_ = id; }
  sim::FlowId flow_id() const noexcept { return flow_id_; }

  sim::FlowLabel label() const noexcept {
    return {node_->addr(), raddr_, port_, rport_};
  }

  sim::Node* node() noexcept { return node_; }
  std::uint16_t port() const noexcept { return port_; }

 protected:
  /// Allocates a fresh packet pre-stamped with label/flow-id/time.
  sim::PacketPtr make_packet() {
    auto p = factory_->make();
    p->label = label();
    p->flow_id = flow_id_;
    p->sent_time = sim_->now();
    return p;
  }

  void inject(sim::PacketPtr p) { node_->send(std::move(p)); }

  sim::Simulator* sim_;
  sim::PacketFactory* factory_;
  sim::Node* node_;
  std::uint16_t port_;
  util::Addr raddr_ = util::kInvalidAddr;
  std::uint16_t rport_ = 0;
  sim::FlowId flow_id_ = sim::kUntrackedFlow;
};

}  // namespace mafic::transport
