#include "transport/tcp.hpp"

#include <algorithm>

#include "sim/types.hpp"

namespace mafic::transport {

void TcpSender::start() {
  if (running_) return;
  running_ = true;
  cwnd_ = cfg_.initial_cwnd;
  ssthresh_ = cfg_.initial_ssthresh;
  send_window();
}

void TcpSender::stop() {
  running_ = false;
  cancel_rto();
  if (app_timer_ != sim::kInvalidEvent) {
    sim_->cancel(app_timer_);
    app_timer_ = sim::kInvalidEvent;
  }
}

void TcpSender::refill_app_tokens() {
  const double now = sim_->now();
  const double pkts_per_s =
      cfg_.app_rate_bps / (8.0 * static_cast<double>(cfg_.mss_bytes));
  app_tokens_ = std::min(cfg_.app_burst_packets,
                         app_tokens_ + (now - app_last_refill_) * pkts_per_s);
  app_last_refill_ = now;
}

double TcpSender::effective_window() const noexcept {
  return std::min(cwnd_, cfg_.max_cwnd);
}

void TcpSender::send_window() {
  if (!running_) return;
  const bool app_limited = cfg_.app_rate_bps > 0.0;
  if (app_limited) refill_app_tokens();

  // Tokens within epsilon of a whole packet count as sendable: without
  // this, rounding in the refill arithmetic can leave the balance just
  // below 1.0 forever, and the pacing timer would reschedule with
  // geometrically shrinking waits (a floating-point Zeno freeze).
  constexpr double kTokenEpsilon = 1e-6;
  const auto window = static_cast<std::uint32_t>(effective_window());
  while (snd_nxt_ < snd_una_ + std::max<std::uint32_t>(window, 1)) {
    if (app_limited) {
      if (app_tokens_ < 1.0 - kTokenEpsilon) break;
      app_tokens_ -= 1.0;
    }
    send_data(snd_nxt_, /*retransmission=*/false);
    ++snd_nxt_;
  }

  if (app_limited && app_timer_ == sim::kInvalidEvent &&
      snd_nxt_ < snd_una_ + std::max<std::uint32_t>(window, 1)) {
    // Window is open but the application is pacing: wake up when the next
    // packet's worth of tokens has accumulated (floored to guarantee
    // forward progress of simulated time).
    const double pkts_per_s =
        cfg_.app_rate_bps / (8.0 * static_cast<double>(cfg_.mss_bytes));
    const double wait =
        std::max((1.0 - app_tokens_) / pkts_per_s, 16.0 * kTokenEpsilon);
    app_timer_ = sim_->schedule(wait, [this] {
      app_timer_ = sim::kInvalidEvent;
      send_window();
    });
  }
  if (rto_timer_ == sim::kInvalidEvent && flight_size() > 0) arm_rto();
}

void TcpSender::send_data(std::uint32_t seq, bool retransmission) {
  auto p = make_packet();
  p->proto = sim::Protocol::kTcp;
  p->size_bytes = cfg_.mss_bytes;
  p->seq = seq;
  p->flags = sim::tcp_flags::kAck;
  p->tsval = sim_->now();
  p->tsecr = last_peer_tsval_;
  ++stats_.data_packets_sent;
  if (retransmission) ++stats_.retransmits;
  inject(std::move(p));
}

void TcpSender::recv(sim::PacketPtr p) {
  if (!running_) return;
  if (p->proto != sim::Protocol::kTcp || !p->has_flag(sim::tcp_flags::kAck)) {
    return;  // not an ACK; senders ignore stray data
  }
  ++stats_.acks_received;
  if (p->tsval > 0.0) last_peer_tsval_ = p->tsval;

  if (p->ack_no > snd_una_) {
    on_new_ack(p->ack_no, *p);
  } else {
    // Anything not advancing snd_una counts as a duplicate — including
    // MAFIC probe ACKs, which carry ack_no = 0.
    ++stats_.dup_acks_received;
    on_dup_ack();
  }
}

void TcpSender::on_new_ack(std::uint32_t ackno, const sim::Packet& ack) {
  // RTT sample from the echoed timestamp (Karn's rule is implicit: the
  // sink echoes the tsval of the packet that triggered the ACK, and
  // retransmitted packets carry fresh tsvals).
  if (ack.tsecr > 0.0) update_rtt(sim_->now() - ack.tsecr);

  snd_una_ = std::min(ackno, snd_nxt_);
  dupacks_ = 0;

  if (in_fast_recovery_) {
    if (snd_una_ >= recover_) {
      in_fast_recovery_ = false;
      cwnd_ = ssthresh_;  // deflate
    } else {
      // Reno partial ACK: retransmit the next hole, stay in recovery.
      send_data(snd_una_, /*retransmission=*/true);
    }
  } else if (cwnd_ < ssthresh_) {
    cwnd_ += 1.0;  // slow start
  } else {
    cwnd_ += 1.0 / cwnd_;  // congestion avoidance
  }

  cancel_rto();
  if (flight_size() > 0 || running_) arm_rto();
  send_window();
}

void TcpSender::on_dup_ack() {
  ++dupacks_;
  if (!in_fast_recovery_ && dupacks_ == 3) {
    ++stats_.fast_recoveries;
    ssthresh_ = std::max(flight_size() / 2.0, 2.0);
    cwnd_ = ssthresh_ + 3.0;
    in_fast_recovery_ = true;
    recover_ = snd_nxt_;
    send_data(snd_una_, /*retransmission=*/true);  // fast retransmit
    arm_rto();
  } else if (in_fast_recovery_) {
    cwnd_ += 1.0;  // window inflation per extra dup ACK
    send_window();
  }
}

void TcpSender::on_timeout() {
  rto_timer_ = sim::kInvalidEvent;
  if (!running_) return;
  ++stats_.timeouts;
  ssthresh_ = std::max(flight_size() / 2.0, 2.0);
  cwnd_ = 1.0;
  in_fast_recovery_ = false;
  dupacks_ = 0;
  snd_nxt_ = snd_una_;  // go-back-N
  rto_ = std::min(rto_ * 2.0, cfg_.max_rto);
  send_window();
}

void TcpSender::update_rtt(double sample) {
  if (sample <= 0.0) return;
  if (!have_rtt_) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
    have_rtt_ = true;
  } else {
    constexpr double kAlpha = 0.125;
    constexpr double kBeta = 0.25;
    rttvar_ = (1.0 - kBeta) * rttvar_ + kBeta * std::abs(srtt_ - sample);
    srtt_ = (1.0 - kAlpha) * srtt_ + kAlpha * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, cfg_.min_rto, cfg_.max_rto);
}

void TcpSender::arm_rto() {
  cancel_rto();
  rto_timer_ = sim_->schedule(rto_, [this] { on_timeout(); });
}

void TcpSender::cancel_rto() {
  if (rto_timer_ != sim::kInvalidEvent) {
    sim_->cancel(rto_timer_);
    rto_timer_ = sim::kInvalidEvent;
  }
}

}  // namespace mafic::transport
