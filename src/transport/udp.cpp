#include "transport/udp.hpp"

namespace mafic::transport {

void UdpSender::send_datagram(std::uint32_t bytes) {
  auto p = make_packet();
  p->proto = sim::Protocol::kUdp;
  p->size_bytes = bytes;
  p->seq = static_cast<std::uint32_t>(++sent_);
  inject(std::move(p));
}

}  // namespace mafic::transport
