#pragma once

/// \file cbr.hpp
/// Constant-bit-rate source over UDP with optional inter-packet jitter
/// (to avoid phase locking between many concurrent sources).

#include "transport/udp.hpp"
#include "util/rng.hpp"

namespace mafic::transport {

class CbrSource : public UdpSender {
 public:
  struct Config {
    double rate_bps = 500e3;
    std::uint32_t packet_bytes = 1000;
    double jitter_fraction = 0.1;  ///< uniform +/- fraction of the interval
  };

  CbrSource(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
            std::uint16_t port, Config cfg, util::Rng rng)
      : UdpSender(sim, factory, node, port), cfg_(cfg), rng_(rng) {}

  ~CbrSource() override { stop(); }

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  const Config& config() const noexcept { return cfg_; }
  void set_rate_bps(double r) noexcept { cfg_.rate_bps = r; }

 private:
  void tick();
  double next_interval();

  Config cfg_;
  util::Rng rng_;
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEvent;
};

}  // namespace mafic::transport
