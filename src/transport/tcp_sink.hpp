#pragma once

/// \file tcp_sink.hpp
/// Receiving side of the packet-granularity TCP: cumulative ACKs, duplicate
/// ACKs on out-of-order arrivals (the loss signal both real congestion and
/// MAFIC's Pd drops produce), timestamp echo, and optional delayed ACKs
/// (RFC 1122-style: ACK every second segment or after a short timer;
/// out-of-order data is always ACKed immediately so fast retransmit still
/// works).

#include <cstdint>
#include <set>

#include "transport/agent.hpp"

namespace mafic::transport {

class TcpSink final : public Agent {
 public:
  struct Config {
    std::uint32_t ack_bytes = 40;
    bool delayed_ack = false;   ///< ACK every 2nd in-order segment
    double ack_delay_s = 0.2;   ///< upper bound before a lone ACK goes out
  };

  struct Stats {
    std::uint64_t packets_received = 0;   ///< all data arrivals
    std::uint64_t unique_delivered = 0;   ///< in-order goodput, packets
    std::uint64_t duplicate_data = 0;     ///< below rcv_nxt
    std::uint64_t acks_sent = 0;
    std::uint64_t dup_acks_sent = 0;
    std::uint64_t delayed_acks = 0;       ///< ACKs emitted by the timer
    std::uint64_t bytes_received = 0;
  };

  TcpSink(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
          std::uint16_t port, std::uint32_t ack_bytes = 40)
      : TcpSink(sim, factory, node, port, Config{ack_bytes, false, 0.2}) {}

  TcpSink(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
          std::uint16_t port, Config cfg)
      : Agent(sim, factory, node, port), cfg_(cfg) {}

  ~TcpSink() override { cancel_ack_timer(); }

  void recv(sim::PacketPtr p) override;

  std::uint32_t rcv_nxt() const noexcept { return rcv_nxt_; }
  const Stats& stats() const noexcept { return stats_; }

 private:
  void send_ack(bool duplicate);
  void arm_ack_timer();
  void cancel_ack_timer();

  Config cfg_;
  std::uint32_t rcv_nxt_ = 1;
  std::set<std::uint32_t> out_of_order_;
  // Echo state for the next outgoing ACK.
  double pending_tsecr_ = 0.0;
  sim::FlowLabel reply_label_{};
  sim::FlowId reply_flow_ = sim::kUntrackedFlow;
  bool have_unacked_ = false;
  sim::EventId ack_timer_ = sim::kInvalidEvent;
  Stats stats_;
};

}  // namespace mafic::transport
