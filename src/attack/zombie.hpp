#pragma once

/// \file zombie.hpp
/// Attack sources. A Flooder emits a constant-rate stream toward the victim
/// with a (possibly spoofed) source address and, crucially, *ignores all
/// feedback*: it neither slows down on loss nor reacts to duplicate ACKs.
/// That unresponsiveness is exactly what MAFIC's probing detects.
///
/// Flooders can frame their packets as TCP (the common case the paper
/// cites: "major parts of attacks use TCP protocol") or UDP.

#include <cstdint>

#include "attack/spoofing.hpp"
#include "transport/agent.hpp"
#include "util/rng.hpp"

namespace mafic::attack {

class Flooder final : public transport::Agent {
 public:
  struct Config {
    sim::Protocol framing = sim::Protocol::kTcp;
    double rate_bps = 1e6;         ///< paper's R, per zombie
    std::uint32_t packet_bytes = 1000;
    double jitter_fraction = 0.05;
    bool per_packet_spoofing = false;  ///< ablation A5: new label per packet

    /// Adaptive adversary (ablation A6): when true, the zombie mimics a
    /// responsive sender — on seeing three duplicate ACKs (MAFIC's probe)
    /// it pauses for `evasion_pause_s`, earning itself an NFT entry, then
    /// resumes flooding at full rate.
    bool probe_evasion = false;
    double evasion_pause_s = 0.3;
  };

  Flooder(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* node,
          std::uint16_t port, Config cfg, util::Rng rng)
      : Agent(sim, factory, node, port), cfg_(cfg), rng_(rng) {}

  ~Flooder() override { stop(); }

  /// Chooses the spoofed source identity for this flow. Must be called
  /// before start() when spoofing is desired; otherwise the real address
  /// is used.
  void set_spoof(SpoofingModel* model);

  void start();
  void stop();
  bool running() const noexcept { return running_; }

  /// Rolls the flood onto a new victim mid-run (carpet-bombing): rebinds
  /// the remote endpoint and the wire label's destination while keeping
  /// the (possibly spoofed) source identity, so the defense sees a brand
  /// new flow label aimed at the next victim. `vport` 0 keeps the current
  /// remote port. Takes effect from the next emitted packet; legal before
  /// start() too (it just redefines the initial target).
  void retarget(util::Addr victim, std::uint16_t vport = 0);

  /// Redraws the spoofed source identity from the attached SpoofingModel
  /// (spoof-churn): subsequent packets carry a fresh label, orphaning any
  /// per-flow state the defense accumulated against the old one. No-op
  /// without a spoof model.
  void rotate_spoof();

  std::uint64_t retargets() const noexcept { return retargets_; }
  std::uint64_t spoof_rotations() const noexcept { return spoof_rotations_; }

  /// The label actually stamped on attack packets (spoofed source).
  sim::FlowLabel wire_label() const noexcept { return wire_label_; }
  SpoofKind spoof_kind() const noexcept { return spoof_kind_; }

  /// Feedback is counted and (unless probe_evasion is on) discarded.
  void recv(sim::PacketPtr p) override;

  std::uint64_t packets_sent() const noexcept { return sent_; }
  std::uint64_t feedback_ignored() const noexcept {
    return feedback_ignored_;
  }
  std::uint64_t evasion_pauses() const noexcept { return evasion_pauses_; }

  const Config& config() const noexcept { return cfg_; }
  void set_rate_bps(double r) noexcept { cfg_.rate_bps = r; }

 private:
  void tick();
  void emit();
  double next_interval();

  Config cfg_;
  util::Rng rng_;
  SpoofingModel* spoof_model_ = nullptr;
  sim::FlowLabel wire_label_{};
  SpoofKind spoof_kind_ = SpoofKind::kGenuine;
  bool running_ = false;
  sim::EventId timer_ = sim::kInvalidEvent;
  sim::EventId resume_event_ = sim::kInvalidEvent;
  std::uint64_t sent_ = 0;
  std::uint64_t feedback_ignored_ = 0;
  std::uint64_t evasion_pauses_ = 0;
  std::uint64_t retargets_ = 0;
  std::uint64_t spoof_rotations_ = 0;
  std::uint32_t dup_ack_run_ = 0;
  std::uint32_t next_seq_ = 1;
};

}  // namespace mafic::attack
