#include "attack/spoofing.hpp"

#include <stdexcept>

namespace mafic::attack {

const char* to_string(SpoofKind k) noexcept {
  switch (k) {
    case SpoofKind::kGenuine:
      return "genuine";
    case SpoofKind::kLegitimate:
      return "legitimate";
    case SpoofKind::kUnreachable:
      return "unreachable";
    case SpoofKind::kIllegal:
      return "illegal";
  }
  return "?";
}

SpoofingModel::SpoofingModel(SpoofingConfig cfg,
                             std::vector<util::Addr> host_pool,
                             util::Subnet unreachable, util::Subnet illegal,
                             util::Rng rng)
    : cfg_(cfg),
      host_pool_(std::move(host_pool)),
      unreachable_(unreachable),
      illegal_(illegal),
      rng_(rng),
      total_weight_(cfg.genuine_weight + cfg.legitimate_weight +
                    cfg.unreachable_weight + cfg.illegal_weight) {
  if (total_weight_ <= 0.0) {
    throw std::invalid_argument("spoofing weights must sum to > 0");
  }
}

SpoofKind SpoofingModel::draw_kind() {
  double x = rng_.uniform01() * total_weight_;
  if ((x -= cfg_.genuine_weight) < 0.0) return SpoofKind::kGenuine;
  if ((x -= cfg_.legitimate_weight) < 0.0) return SpoofKind::kLegitimate;
  if ((x -= cfg_.unreachable_weight) < 0.0) return SpoofKind::kUnreachable;
  return SpoofKind::kIllegal;
}

util::Addr SpoofingModel::draw_address(SpoofKind kind, util::Addr genuine) {
  switch (kind) {
    case SpoofKind::kGenuine:
      return genuine;
    case SpoofKind::kLegitimate:
      if (host_pool_.empty()) return genuine;
      return host_pool_[rng_.index(host_pool_.size())];
    case SpoofKind::kUnreachable: {
      const auto span = unreachable_.capacity();
      return (unreachable_.base & unreachable_.mask()) |
             static_cast<util::Addr>(rng_.uniform_int(1, span));
    }
    case SpoofKind::kIllegal: {
      const auto span = illegal_.capacity();
      return (illegal_.base & illegal_.mask()) |
             static_cast<util::Addr>(rng_.uniform_int(1, span));
    }
  }
  return genuine;
}

}  // namespace mafic::attack
