#pragma once

/// \file attack_plan.hpp
/// Orchestrates a zombie army: staggers start times across a ramp window
/// and stops everything at a configured time. Owns nothing; it drives
/// Flooders owned by the scenario.

#include <vector>

#include "attack/zombie.hpp"
#include "sim/simulator.hpp"

namespace mafic::attack {

class AttackPlan {
 public:
  struct Config {
    double start_time = 1.0;    ///< first zombie fires
    double ramp_seconds = 0.2;  ///< stagger window for the remaining ones
    double stop_time = 0.0;     ///< 0 = never stop
  };

  AttackPlan(sim::Simulator* sim, Config cfg) : sim_(sim), cfg_(cfg) {}

  void add(Flooder* z) { zombies_.push_back(z); }

  /// Schedules all starts (and the stop, when configured).
  void arm(util::Rng& rng) {
    for (Flooder* z : zombies_) {
      const double at =
          cfg_.start_time + rng.uniform01() * cfg_.ramp_seconds;
      sim_->schedule_at(at, [z] { z->start(); });
    }
    if (cfg_.stop_time > 0.0) {
      sim_->schedule_at(cfg_.stop_time, [this] {
        for (Flooder* z : zombies_) z->stop();
      });
    }
  }

  std::size_t zombie_count() const noexcept { return zombies_.size(); }
  const Config& config() const noexcept { return cfg_; }

 private:
  sim::Simulator* sim_;
  Config cfg_;
  std::vector<Flooder*> zombies_;
};

}  // namespace mafic::attack
