#pragma once

/// \file attack_plan.hpp
/// Orchestrates a zombie army: staggers start times across a ramp window
/// and stops everything at a configured time, plus an optional phase
/// timeline of army-wide mid-run actions (pulse on/off, rolling retarget,
/// spoof rotation) that the scenario engine compiles attack shapes into.
/// Owns nothing; it drives Flooders owned by the scenario.

#include <cstdint>
#include <utility>
#include <vector>

#include "attack/zombie.hpp"
#include "sim/simulator.hpp"

namespace mafic::attack {

/// Army-wide action fired at a phase boundary.
enum class PhaseAction : std::uint8_t {
  kStart,        ///< resume every zombie (pulse "on" edge)
  kStop,         ///< silence every zombie (pulse "off" edge)
  kRetarget,     ///< roll every zombie onto `target` (carpet-bombing)
  kRotateSpoof,  ///< every zombie redraws its spoofed source (spoof-churn)
};

inline const char* to_string(PhaseAction a) noexcept {
  switch (a) {
    case PhaseAction::kStart:
      return "start";
    case PhaseAction::kStop:
      return "stop";
    case PhaseAction::kRetarget:
      return "retarget";
    case PhaseAction::kRotateSpoof:
      return "rotate_spoof";
  }
  return "?";
}

class AttackPlan {
 public:
  struct Config {
    double start_time = 1.0;    ///< first zombie fires
    double ramp_seconds = 0.2;  ///< stagger window for the remaining ones
    double stop_time = 0.0;     ///< 0 = never stop
  };

  /// One timeline entry: at sim time `at`, apply `action` to the whole
  /// army. `target`/`target_port` are read for kRetarget only; port 0
  /// keeps each zombie's current remote port.
  struct Phase {
    double at = 0.0;
    PhaseAction action = PhaseAction::kStart;
    util::Addr target = util::kInvalidAddr;
    std::uint16_t target_port = 0;
  };

  AttackPlan(sim::Simulator* sim, Config cfg) : sim_(sim), cfg_(cfg) {}

  void add(Flooder* z) { zombies_.push_back(z); }

  /// Schedules all starts (and the stop, when configured).
  void arm(util::Rng& rng) {
    for (Flooder* z : zombies_) {
      const double at =
          cfg_.start_time + rng.uniform01() * cfg_.ramp_seconds;
      sim_->schedule_at(at, [z] { z->start(); });
    }
    if (cfg_.stop_time > 0.0) {
      sim_->schedule_at(cfg_.stop_time, [this] {
        for (Flooder* z : zombies_) z->stop();
      });
    }
  }

  /// Schedules a phase timeline on top of arm(). Call after every add();
  /// the scenario engine validates ordering/shape before handing the
  /// timeline over (scenario_spec.hpp), the plan just fires what it gets.
  void arm_phases(std::vector<Phase> phases) {
    phases_ = std::move(phases);
    for (const Phase& ph : phases_) {
      sim_->schedule_at(ph.at, [this, ph] {
        ++phases_fired_;
        for (Flooder* z : zombies_) {
          switch (ph.action) {
            case PhaseAction::kStart:
              z->start();
              break;
            case PhaseAction::kStop:
              z->stop();
              break;
            case PhaseAction::kRetarget:
              z->retarget(ph.target, ph.target_port);
              break;
            case PhaseAction::kRotateSpoof:
              z->rotate_spoof();
              break;
          }
        }
      });
    }
  }

  std::size_t zombie_count() const noexcept { return zombies_.size(); }
  const Config& config() const noexcept { return cfg_; }
  const std::vector<Phase>& phases() const noexcept { return phases_; }
  /// Phase boundaries that have fired so far (tests/diagnostics).
  std::uint64_t phases_fired() const noexcept { return phases_fired_; }

 private:
  sim::Simulator* sim_;
  Config cfg_;
  std::vector<Flooder*> zombies_;
  std::vector<Phase> phases_;
  std::uint64_t phases_fired_ = 0;
};

}  // namespace mafic::attack
