#include "attack/zombie.hpp"

#include <algorithm>

namespace mafic::attack {

void Flooder::set_spoof(SpoofingModel* model) {
  spoof_model_ = model;
  const auto s = model->draw(node_->addr());
  spoof_kind_ = s.kind;
  wire_label_ = sim::FlowLabel{s.addr, raddr_, port_, rport_};
}

void Flooder::retarget(util::Addr victim, std::uint16_t vport) {
  if (vport == 0) vport = rport_;
  connect(victim, vport);
  if (wire_label_.src == util::kInvalidAddr) {
    wire_label_ = label();  // unspoofed and not yet started
  } else {
    wire_label_.dst = victim;
    wire_label_.dport = vport;
  }
  ++retargets_;
}

void Flooder::rotate_spoof() {
  if (spoof_model_ == nullptr) return;
  const auto s = spoof_model_->draw(node_->addr());
  spoof_kind_ = s.kind;
  wire_label_.src = s.addr;
  ++spoof_rotations_;
}

void Flooder::start() {
  if (running_) return;
  running_ = true;
  if (wire_label_.dst == util::kInvalidAddr) {
    wire_label_ = label();  // unspoofed
  }
  timer_ =
      sim_->schedule(rng_.uniform01() * next_interval(), [this] { tick(); });
}

void Flooder::stop() {
  running_ = false;
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
  if (resume_event_ != sim::kInvalidEvent) {
    sim_->cancel(resume_event_);
    resume_event_ = sim::kInvalidEvent;
  }
}

void Flooder::recv(sim::PacketPtr p) {
  ++feedback_ignored_;
  if (!cfg_.probe_evasion || !running_) return;
  if (p->proto != sim::Protocol::kTcp ||
      !p->has_flag(sim::tcp_flags::kAck)) {
    return;
  }
  // Mimic a responsive sender: three duplicate ACKs => back off briefly.
  if (++dup_ack_run_ < 3) return;
  dup_ack_run_ = 0;
  ++evasion_pauses_;
  running_ = false;
  if (timer_ != sim::kInvalidEvent) {
    sim_->cancel(timer_);
    timer_ = sim::kInvalidEvent;
  }
  resume_event_ = sim_->schedule(cfg_.evasion_pause_s, [this] {
    resume_event_ = sim::kInvalidEvent;
    start();
  });
}

void Flooder::tick() {
  timer_ = sim::kInvalidEvent;
  if (!running_) return;
  emit();
  timer_ = sim_->schedule(next_interval(), [this] { tick(); });
}

void Flooder::emit() {
  auto p = make_packet();
  if (cfg_.per_packet_spoofing && spoof_model_ != nullptr) {
    const auto s = spoof_model_->draw(node_->addr());
    p->label = sim::FlowLabel{s.addr, raddr_, port_, rport_};
  } else {
    p->label = wire_label_;
  }
  p->proto = cfg_.framing;
  p->size_bytes = cfg_.packet_bytes;
  p->seq = next_seq_++;
  if (cfg_.framing == sim::Protocol::kTcp) {
    p->flags = sim::tcp_flags::kAck;  // mimics established-connection data
    // No timestamp option: zombies don't bother echoing timestamps, so
    // in-path RTT estimation falls back to its default for these flows.
  }
  ++sent_;
  inject(std::move(p));
}

double Flooder::next_interval() {
  const double base =
      static_cast<double>(cfg_.packet_bytes) * 8.0 / cfg_.rate_bps;
  if (cfg_.jitter_fraction <= 0.0) return base;
  const double j = cfg_.jitter_fraction;
  return std::max(1e-6, base * rng_.uniform(1.0 - j, 1.0 + j));
}

}  // namespace mafic::attack
