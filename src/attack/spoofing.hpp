#pragma once

/// \file spoofing.hpp
/// IP source-address spoofing models. The paper positions MAFIC on the
/// spectrum between "all sources illegal/unreachable" and "all sources
/// legitimate-looking" (section III-A); these models generate flow labels
/// along that spectrum:
///
///  * kGenuine       — the zombie's real address (no spoofing)
///  * kLegitimate    — a real allocated host address inside the domain
///  * kUnreachable   — a legal prefix that was never assigned to a host
///  * kIllegal       — an address outside every registered subnet
///
/// A SpoofingModel mixes these categories with configured weights and
/// produces stable per-flow source addresses (per-packet randomization is
/// available for the spoofing ablation A5).

#include <cstdint>
#include <vector>

#include "util/ip.hpp"
#include "util/rng.hpp"

namespace mafic::attack {

enum class SpoofKind : std::uint8_t {
  kGenuine,
  kLegitimate,
  kUnreachable,
  kIllegal,
};

const char* to_string(SpoofKind k) noexcept;

struct SpoofingConfig {
  double genuine_weight = 0.0;
  double legitimate_weight = 1.0;  ///< default: all spoofs look legitimate
  double unreachable_weight = 0.0;
  double illegal_weight = 0.0;
};

class SpoofingModel {
 public:
  /// `host_pool` supplies real allocated addresses for kLegitimate;
  /// `unreachable`/`illegal` supply prefixes for the bogus categories.
  SpoofingModel(SpoofingConfig cfg, std::vector<util::Addr> host_pool,
                util::Subnet unreachable, util::Subnet illegal,
                util::Rng rng);

  /// Draws a category according to the configured weights.
  SpoofKind draw_kind();

  /// Draws a source address of the given kind; `genuine` is the zombie's
  /// real address, returned unchanged for kGenuine.
  util::Addr draw_address(SpoofKind kind, util::Addr genuine);

  /// Convenience: category + address in one step.
  struct Spoof {
    SpoofKind kind;
    util::Addr addr;
  };
  Spoof draw(util::Addr genuine) {
    const SpoofKind k = draw_kind();
    return {k, draw_address(k, genuine)};
  }

  const SpoofingConfig& config() const noexcept { return cfg_; }

 private:
  SpoofingConfig cfg_;
  std::vector<util::Addr> host_pool_;
  util::Subnet unreachable_;
  util::Subnet illegal_;
  util::Rng rng_;
  double total_weight_;
};

}  // namespace mafic::attack
