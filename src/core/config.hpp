#pragma once

/// \file config.hpp
/// Tunables of the MAFIC algorithm. Defaults reflect the paper: Pd = 90%
/// (Table II), probe timer = 2 x RTT (section III-B), three duplicate ACKs
/// (the standard fast-retransmit trigger).

#include <cstddef>
#include <cstdint>

namespace mafic::core {

/// How the engine draws the Pd coin.
enum class CoinMode : std::uint8_t {
  /// One util::Rng stream per engine, drawn in inspection order — the
  /// paper-faithful i.i.d. coin. The fixed-seed classification goldens
  /// pin this discipline; it is the default everywhere.
  kEngineStream,
  /// Each coin is a stateless hash of (coin_seed, flow key, packet uid):
  /// still i.i.d. per packet, but a flow's coin sequence no longer
  /// depends on how other flows interleave or which engine inspects it.
  /// This is the property the scalar-vs-sharded simulator equivalence
  /// stands on (a flow's verdicts are identical whether one engine sees
  /// all flows or its home shard sees only its own), standing in for the
  /// per-packet header entropy a hardware datapath would hash.
  kPacketHash,
};

struct MaficConfig {
  /// Pd — probability of dropping a packet of an untested / suspicious
  /// flow during the probing phase.
  double drop_probability = 0.9;

  /// Pd coin discipline (see CoinMode). kPacketHash additionally mixes in
  /// `coin_seed`, which must be shared by every engine whose decisions
  /// are meant to be comparable (all shards of one deployment).
  CoinMode coin_mode = CoinMode::kEngineStream;
  std::uint64_t coin_seed = 0;

  /// The response timer as a multiple of the flow's RTT ("we set the timer
  /// equal 2 x RTT"). The first half of the window measures the baseline
  /// arrival rate, the second half the post-probe rate.
  double probe_window_rtt_multiple = 2.0;

  /// RTT bookkeeping. Timestamp echoes sampled at an ingress router see
  /// roughly half of the true round trip (sink -> sender -> router), so the
  /// sample is multiplied by `rtt_correction`. Flows without usable
  /// timestamps get `default_rtt`.
  double default_rtt = 0.04;
  double rtt_correction = 2.0;
  double min_rtt = 0.01;
  double max_rtt = 0.1;
  double rtt_ewma_alpha = 0.25;

  /// "Arriving rate decreased?" — the flow passes the test when its probe-
  /// half arrival count is below `decrease_ratio` times its baseline-half
  /// count AND at least `min_absolute_decrease` packets fewer arrived.
  /// The absolute guard matters for slow flows: counting noise on a
  /// handful of packets can fake a 15% relative drop, but a genuine TCP
  /// sender halving its window always sheds whole packets.
  double decrease_ratio = 0.85;
  std::uint32_t min_absolute_decrease = 2;

  /// Flows with fewer baseline-half packets than this are too thin to
  /// judge; they get the benefit of the doubt (moved to the NFT). Keeps
  /// false positives on low-rate legitimate flows down at the price of
  /// letting equally thin attack flows through (a false-negative source
  /// the paper also exhibits).
  std::uint32_t min_baseline_packets = 2;

  /// Probe: number of duplicate ACKs sent to the claimed source and their
  /// spacing. Three is the fast-retransmit trigger.
  std::uint32_t probe_dup_acks = 3;
  double probe_spacing_s = 0.0005;
  std::uint32_t probe_ack_bytes = 40;
  bool probe_enabled = true;  ///< ablation A4 switches this off

  /// Flowchart-literal mode: drop *every* SFT packet during the window
  /// instead of dropping with probability Pd (ablation).
  bool drop_all_in_sft = false;

  /// Table capacity bounds; overflowing SFT entries evict the oldest.
  std::size_t sft_capacity = 4096;
  std::size_t nft_capacity = 65536;
  std::size_t pdt_capacity = 65536;

  /// Bound on per-flow RTT estimates kept by the (flat) RttEstimator.
  /// When full, admitting a new flow recycles an arbitrary resident
  /// estimate (round-robin), so fresh flows keep getting estimates under
  /// label churn while the store never reallocates.
  std::size_t rtt_capacity = 65536;

  /// Occupancy ceiling of the flat open-addressing flow store. Higher
  /// values trade longer robin-hood probe sequences for less memory; the
  /// store sizes itself for the three capacity bounds above and grows by
  /// doubling until it reaches that bound, after which it never
  /// reallocates. 0.65 keeps the worst-case post-doubling occupancy low
  /// enough that lookups average about one cache line even when growth
  /// stops just under the ceiling.
  double flow_store_max_load = 0.65;

  /// Tick width of the simulator's hierarchical timer wheel, which carries
  /// the per-flow probe and decision timers (O(1) schedule/cancel instead
  /// of heap events). Timers fire on the first tick boundary at or after
  /// their nominal time; 0.5 ms is well under every probation window the
  /// paper sweeps. Experiment harnesses construct their Simulator with
  /// this value.
  double timer_wheel_resolution = 0.0005;

  /// Initial bucket count of the SFT deadline-bucketed eviction ring
  /// (rounded up to a power of two). Buckets are one timer-wheel tick
  /// wide; capacity eviction pops the nearest-deadline probation from the
  /// first occupied bucket in O(1) amortized. The ring doubles on demand
  /// (up to 65536 buckets) when live probation deadlines span more ticks;
  /// 512 covers the widest paper window (2 x max_rtt) with headroom.
  std::size_t sft_eviction_ring_buckets = 512;

  /// Per-victim SFT filtering budget. 0 (default) keeps the legacy
  /// behaviour: one global eviction ring, so at capacity a flood aimed at
  /// one protected destination can recycle another destination's
  /// probations before their 2 x RTT deadlines. When > 0 each protected
  /// destination becomes a victim class with its own eviction ring and a
  /// reserved quota of SFT slots: values in (0, 1] are a fraction of
  /// sft_capacity per victim, values > 1 are absolute slots per victim
  /// (either way clamped so the summed quotas never exceed sft_capacity).
  /// Slots beyond the summed quotas form a shared overflow pool. At
  /// capacity the admitting victim pays from its own ring while at/over
  /// quota; an under-quota victim instead reclaims a slot from the most
  /// over-quota class (draining overflow users back toward their
  /// reservations pro-rata), so no flood can push a victim below its
  /// quota. Takes effect when FilterEngine::activate registers the victim
  /// set with the tables.
  double sft_victim_quota = 0.0;

  /// Reject sources whose address is illegal (outside every registered
  /// subnet) or unreachable (never allocated) straight into the PDT.
  bool address_screening = true;

  /// Extension (paper future-work direction): when > 0, Nice Flow Table
  /// entries expire after this many seconds and the flow faces a fresh
  /// probation. Defends against on-off attackers that behave during the
  /// probe window and flood afterwards. 0 = paper-faithful (NFT is
  /// permanent until tables are flushed).
  double nft_revalidation_interval = 0.0;

  /// Pushback keep-alive: if > 0, the filter deactivates itself (flushing
  /// all tables) when no refresh() arrives within this many seconds —
  /// the "Pushback Continue? -> No" arc of Fig. 2. 0 means the activation
  /// is latched until an explicit deactivate().
  double refresh_timeout = 0.0;
};

}  // namespace mafic::core
