#pragma once

/// \file address_policy.hpp
/// Source-address screening (paper section III-A): "For packets with
/// illegal or unreachable source IP addresses, we place them in ... the
/// Permanently Drop Table and drop all such kind of packets."

#include "util/ip.hpp"

namespace mafic::core {

class AddressPolicy {
 public:
  /// `validator` describes the domain's registered subnets and allocated
  /// hosts; non-owning, must outlive the policy.
  explicit AddressPolicy(const util::AddressValidator* validator)
      : validator_(validator) {}

  /// A source is acceptable when it is both legal (inside a registered
  /// subnet) and reachable (actually allocated to a host).
  bool acceptable(util::Addr src) const noexcept {
    if (validator_ == nullptr) return true;
    return validator_->is_reachable(src);
  }

 private:
  const util::AddressValidator* validator_;
};

}  // namespace mafic::core
