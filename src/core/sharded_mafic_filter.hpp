#pragma once

/// \file sharded_mafic_filter.hpp
/// The multi-core MAFIC datapath inside the discrete-event simulator: a
/// sim adapter that mounts a core::ShardedFilter (N engines partitioned
/// by flow-key hash) behind the same seams MaficFilter uses —
///   Clock        -> the simulation clock (one SimClock, all shards)
///   TimerService -> the simulator's shared hierarchical wheel (the sim
///                   is single-threaded, so shards can share it; a
///                   deployed shard owns a private wheel instead)
///   ProbeSink    -> one ShardProbeSink per shard, each forwarding to a
///                   shared Prober that crafts real duplicate-ACK packets
///                   out of the ATR node. Because bursts are classified
///                   in span order (below), every shard schedules its
///                   probe timers in packet-arrival order on the shared
///                   wheel, so the per-shard probe streams merge onto the
///                   wire in arrival order — exactly as one engine would
///                   emit them. The sinks keep per-shard counts.
///
/// Placement: unlike the scalar MaficFilter (head of the ingress uplink,
/// i.e. before the link queue), this adapter is installed at the
/// RECEIVING end of the uplink (SimplexLink::add_tail_tap) — the ATR
/// router's ingress side — because that is where the link's burst mode
/// delivers coalesced departure spans. Bursts route through
/// inspect_burst -> ShardedFilter::inspect_batch: a window of keys is
/// pre-hashed and each key's home slot prefetched in its home shard's
/// store (deterministic key-hash dispatch, the shard-partition invariant
/// of sharded_filter.hpp), then packets are classified sequentially in
/// arrival order, each by its home engine.
///
/// Scalar equivalence: with CoinMode::kPacketHash (a flow's Pd coins
/// depend only on (coin_seed, flow key, packet uid)), every per-flow
/// quantity this adapter computes — admission times, half-window counts,
/// probe schedules, NFT/PDT verdicts — is identical for num_shards = 1
/// and num_shards = N, because all cross-flow coupling is gone: flows
/// never share tables, timers, RTT estimates or coin streams.
/// test_core_sharded_sim pins this end-to-end at fixed seeds; the
/// remaining caveat is capacity (per-shard tables come from the config
/// verbatim, so N shards hold N times the flows — keep working sets
/// under the single-shard bounds when comparing).

#include <cstdint>
#include <vector>

#include "core/actuator.hpp"
#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/prober.hpp"
#include "core/sharded_filter.hpp"
#include "core/sim_seams.hpp"
#include "sim/connector.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {

class ShardedMaficFilter final : public sim::InlineFilter,
                                 public DefenseActuator {
 public:
  /// `num_shards` rounds up to a power of two (see
  /// ShardedFilter::usable_shard_count). `seed` derives the per-shard
  /// RNG streams (unused for coins under kPacketHash, which reads
  /// cfg.coin_seed instead).
  ShardedMaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
                     sim::Node* atr_node, std::size_t num_shards,
                     MaficConfig cfg, const AddressPolicy* policy,
                     std::uint64_t seed);

  // --- DefenseActuator ---
  void activate(const VictimSet& victims) override {
    sharded_.activate(victims);
  }
  void refresh() override { sharded_.refresh(); }
  void deactivate() override { sharded_.deactivate(); }
  bool active() const noexcept override { return sharded_.active(); }

  /// Fans the callback out to every shard engine.
  void set_offered_callback(FilterEngine::OfferedCallback cb);
  void set_classification_callback(FilterEngine::ClassificationCallback cb);

  std::size_t num_shards() const noexcept { return sharded_.shard_count(); }
  ShardedFilter& sharded() noexcept { return sharded_; }
  const ShardedFilter& sharded() const noexcept { return sharded_; }
  const FilterEngine& engine(std::size_t i) const noexcept {
    return sharded_.engine(i);
  }
  const Prober& prober() const noexcept { return prober_; }
  sim::NodeId atr_node_id() const noexcept;

  /// Engine stats summed across shards.
  FilterEngine::Stats stats() const { return sharded_.aggregate_stats(); }
  /// Flow-table stats summed across shards.
  FlowTables::Stats tables_stats() const;
  /// Per-victim decision tally for `victim`, summed across shards.
  FilterEngine::VictimStats victim_stats_for(util::Addr victim) const;
  /// Probe requests shard `i`'s engine issued.
  std::uint64_t shard_probes(std::size_t i) const noexcept {
    return shard_sinks_[i].requested;
  }
  /// Largest burst span inspect_burst has received (diagnostics).
  std::size_t max_burst_seen() const noexcept { return max_burst_; }

 protected:
  Decision inspect(sim::Packet& p) override;
  void inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                     Decision* out) override;

 private:
  /// Per-shard ProbeSink: counts the shard's requests, then forwards to
  /// the shared Prober. Span-ordered classification makes the shared
  /// wheel fire probe timers in admission-arrival order, so the merged
  /// probe stream hits the wire in arrival order.
  struct ShardProbeSink final : ProbeSink {
    Prober* wire = nullptr;
    std::uint64_t requested = 0;
    void send_probe(const sim::FlowLabel& flow) override {
      ++requested;
      wire->send_probe(flow);
    }
  };

  sim::Node* atr_node_;
  SimClock clock_;
  SimTimerService timers_;
  Prober prober_;
  std::vector<ShardProbeSink> shard_sinks_;  ///< one per shard, stable
  ShardedFilter sharded_;

  // inspect_burst scratch (reused; steady state allocates nothing).
  std::vector<const sim::Packet*> batch_ptrs_;
  std::vector<EngineVerdict> batch_verdicts_;
  std::size_t max_burst_ = 0;
};

}  // namespace mafic::core
