#pragma once

/// \file sharded_mafic_filter.hpp
/// The multi-core MAFIC datapath inside the discrete-event simulator: a
/// sim adapter that mounts a core::ShardedFilter (N engines partitioned
/// by flow-key hash) behind the same seams MaficFilter uses —
///   Clock        -> the simulation clock (one SimClock, all shards)
///   TimerService -> the simulator's shared hierarchical wheel (the sim
///                   is single-threaded, so shards can share it; a
///                   deployed shard owns a private wheel instead)
///   ProbeSink    -> one ShardProbeSink per shard, each forwarding to a
///                   shared Prober that crafts real duplicate-ACK packets
///                   out of the ATR node. Because bursts are classified
///                   in span order (below), every shard schedules its
///                   probe timers in packet-arrival order on the shared
///                   wheel, so the per-shard probe streams merge onto the
///                   wire in arrival order — exactly as one engine would
///                   emit them. The sinks keep per-shard counts.
///
/// Placement: unlike the scalar MaficFilter (head of the ingress uplink,
/// i.e. before the link queue), this adapter is installed at the
/// RECEIVING end of the uplink (SimplexLink::add_tail_tap) — the ATR
/// router's ingress side — because that is where the link's burst mode
/// delivers coalesced departure spans. Bursts route through
/// inspect_burst; with no worker pool they run the serial in-order walk
/// (ShardedFilter::inspect_batch, shared partition pass + windowed
/// prefetch + sequential classification by home engine).
///
/// Speculative threaded mode (pool != nullptr): the burst span is fanned
/// out to a persistent ShardWorkerPool, one task per shard. The
/// partition is worker-side and cooperative: tasks atomically claim span
/// chunks and run the shared gate/hash/home-shard routine
/// (ShardedFilter::partition_span_range) over them — each packet hashed
/// exactly once, in parallel, so the submitting thread's fan-out cost
/// does not scale with span size — then barrier and gather their own
/// sub-spans (stable within-shard arrival order) off the partition
/// arrays. Each worker then runs its shard's
/// FilterEngine::inspect_batch_keyed against
/// shard-local store/wheel-slots/RNG — recording every timer schedule,
/// cancel, probe request and callback into that shard's ShardSeamJournal
/// instead of touching the shared wheel, prober or ledger. After the
/// join, the sim thread merges the journals deterministically (a single
/// forward pass interleaving shards by original span index) and replays
/// them against the real seams. Because each engine sees exactly the
/// packets, in exactly the order, that the serial walk would have fed
/// it, and the replay reproduces the serial seam call sequence, the
/// verdict stream, timer order, probe order and every per-shard counter
/// are bit-identical to the serial path regardless of worker count
/// (test_core_threaded_sim pins this; the TSan CI job race-checks the
/// fan-out/join and journal handoff).
///
/// Scalar equivalence: with CoinMode::kPacketHash (a flow's Pd coins
/// depend only on (coin_seed, flow key, packet uid)), every per-flow
/// quantity this adapter computes — admission times, half-window counts,
/// probe schedules, NFT/PDT verdicts — is identical for num_shards = 1
/// and num_shards = N, because all cross-flow coupling is gone: flows
/// never share tables, timers, RTT estimates or coin streams.
/// test_core_sharded_sim pins this end-to-end at fixed seeds; the
/// remaining caveat is capacity (per-shard tables come from the config
/// verbatim, so N shards hold N times the flows — keep working sets
/// under the single-shard bounds when comparing).
///
/// Fleet mode (set_fleet, threaded only): instead of fanning each burst
/// out on its own, recv_burst moves the span into a held buffer and
/// enqueues this filter with the FleetBurstScheduler; the simulator's
/// tick drain later runs fleet_prepare (partition-array sizing + journal
/// open, one cooperative pool Task per shard) for every same-instant
/// filter, ONE shared pool submission, then fleet_complete (journal
/// replay + finish_burst) in arrival order — see
/// fleet_burst_scheduler.hpp for the determinism argument. Same-tick
/// spans to the SAME filter (impossible through a real LinkTransmitter,
/// whose trains serialize for non-zero time) concatenate into one held
/// span at the first span's arrival position.

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/actuator.hpp"
#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/journal_seams.hpp"
#include "core/prober.hpp"
#include "core/shard_worker_pool.hpp"
#include "core/sharded_filter.hpp"
#include "core/sim_seams.hpp"
#include "sim/connector.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {

class FleetBurstScheduler;

class ShardedMaficFilter final : public sim::InlineFilter,
                                 public DefenseActuator {
 public:
  /// `num_shards` rounds up to a power of two (see
  /// ShardedFilter::usable_shard_count). `seed` derives the per-shard
  /// RNG streams (unused for coins under kPacketHash, which reads
  /// cfg.coin_seed instead). `pool` (non-owning, may be shared across
  /// filters, must outlive this one) switches bursts onto the
  /// speculative threaded path; nullptr keeps the serial in-order walk.
  ShardedMaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
                     sim::Node* atr_node, std::size_t num_shards,
                     MaficConfig cfg, const AddressPolicy* policy,
                     std::uint64_t seed, ShardWorkerPool* pool = nullptr);

  // --- DefenseActuator ---
  void activate(const VictimSet& victims) override {
    sharded_.activate(victims);
  }
  void refresh() override { sharded_.refresh(); }
  void deactivate() override { sharded_.deactivate(); }
  /// Weighted per-victim SFT quotas, fanned out to every shard engine.
  void set_victim_weights(
      const std::vector<std::pair<util::Addr, double>>& w) {
    sharded_.set_victim_weights(w);
  }
  bool active() const noexcept override { return sharded_.active(); }

  /// Fans the callback out to every shard engine. In threaded mode the
  /// installed callback is a journaling wrapper: invocations from worker
  /// threads are recorded and replayed to `cb` on the sim thread in span
  /// order, so `cb` may touch shared state (the ledger does). Callbacks
  /// must not mutate the filter itself (activate/deactivate) mid-burst.
  void set_offered_callback(FilterEngine::OfferedCallback cb);
  void set_classification_callback(FilterEngine::ClassificationCallback cb);

  /// Switches bursts onto the fleet-batched path (threaded mode only;
  /// asserts otherwise). The scheduler is non-owning and shared across
  /// the experiment's filters; it must be installed as the simulator's
  /// tick drain and its pool must be this filter's pool.
  void set_fleet(FleetBurstScheduler* fleet);

  /// Fleet phase 1 (scheduler only): sizes the held span's partition
  /// arrays, opens the shard journals, and appends one cooperative pool
  /// task per shard. The task array is owned by the scheduler and stays
  /// alive through the pool's wait().
  void fleet_prepare(std::vector<ShardWorkerPool::Task>& tasks);

  /// Fleet phase 3 (scheduler only): replays the shard journals in span
  /// order, applies the verdicts, and forwards the surviving packets
  /// downstream (InlineFilter::finish_burst). Clears the held span.
  void fleet_complete();

  std::size_t num_shards() const noexcept { return sharded_.shard_count(); }
  bool threaded() const noexcept { return pool_ != nullptr; }
  bool fleet_mode() const noexcept { return fleet_ != nullptr; }
  ShardedFilter& sharded() noexcept { return sharded_; }
  const ShardedFilter& sharded() const noexcept { return sharded_; }
  const FilterEngine& engine(std::size_t i) const noexcept {
    return sharded_.engine(i);
  }
  const Prober& prober() const noexcept { return prober_; }
  sim::NodeId atr_node_id() const noexcept;

  /// Engine stats summed across shards.
  FilterEngine::Stats stats() const { return sharded_.aggregate_stats(); }
  /// Flow-table stats summed across shards.
  FlowTables::Stats tables_stats() const;
  /// Per-victim decision tally for `victim`, summed across shards.
  FilterEngine::VictimStats victim_stats_for(util::Addr victim) const;
  /// Probe requests shard `i`'s engine issued.
  std::uint64_t shard_probes(std::size_t i) const noexcept {
    return shard_sinks_[i].requested;
  }
  /// Largest burst span inspect_burst has received (diagnostics).
  std::size_t max_burst_seen() const noexcept { return max_burst_; }
  /// Bursts that took the speculative threaded path (diagnostics; stays
  /// zero without a pool).
  std::uint64_t threaded_bursts() const noexcept { return threaded_bursts_; }
  /// Spans deferred into the fleet tick drain (diagnostics; stays zero
  /// outside fleet mode).
  std::uint64_t fleet_bursts() const noexcept { return fleet_bursts_; }

  /// Fleet mode defers the span into the tick drain; otherwise the
  /// inherited inspect-then-finish path runs.
  void recv_burst(sim::PacketPtr* pkts, std::size_t n) override;

 protected:
  Decision inspect(sim::Packet& p) override;
  void inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                     Decision* out) override;

 private:
  /// Per-shard ProbeSink: counts the shard's requests, then forwards to
  /// the shared Prober. Span-ordered classification (serial walk or
  /// journal replay alike) makes the shared wheel fire probe timers in
  /// admission-arrival order, so the merged probe stream hits the wire
  /// in arrival order.
  struct ShardProbeSink final : ProbeSink {
    Prober* wire = nullptr;
    std::uint64_t requested = 0;
    void send_probe(const sim::FlowLabel& flow) override {
      ++requested;
      wire->send_probe(flow);
    }
  };

  /// One shard's sub-span staging (reused across bursts).
  struct SubSpan {
    std::vector<const sim::Packet*> pkts;
    std::vector<std::uint64_t> keys;
    std::vector<std::uint32_t> span_idx;  ///< original position in span
    std::vector<EngineVerdict> verdicts;
    void clear() {
      pkts.clear();
      keys.clear();
      span_idx.clear();
      verdicts.clear();
    }
  };

  void inspect_burst_threaded(std::size_t n, Decision* out);
  /// Phase 1 of the threaded walk: size the shared partition arrays,
  /// stash `out` for the workers' Decision scatter, arm the chunk-claim
  /// counters and open the shard journals. The partition itself is
  /// worker-side (run_shard), so this phase costs the submitting thread
  /// nothing per packet beyond amortised resizes.
  void prepare_shards(std::size_t n, Decision* out);
  /// Phase 3: close the journals and replay the seam ops via a K-way
  /// span-index merge of the per-shard op streams (apply_op, exact
  /// serial order). Per-packet work already happened worker-side — the
  /// verdict scatter in run_shard — so this walk scales with the number
  /// of seam ops, not the span size.
  void complete_shards(std::size_t n, Decision* out);
  /// Worker-side body: one shard's sub-span through the journaled batch.
  void run_shard(std::size_t s);
  /// Pool-task trampoline for the fleet scheduler's heterogeneous batch.
  static void run_shard_task(void* ctx, std::size_t arg);
  /// Replays one journaled op (sim thread, span-merge order).
  void apply_op(std::size_t s, const ShardSeamJournal::Op& op);

  sim::Node* atr_node_;
  SimClock clock_;
  SimTimerService timers_;
  Prober prober_;
  std::vector<ShardProbeSink> shard_sinks_;  ///< one per shard, stable
  ShardWorkerPool* pool_;  ///< non-owning; nullptr = serial bursts
  FleetBurstScheduler* fleet_ = nullptr;  ///< non-owning; see set_fleet
  /// Threaded mode only: shard i's buffering seams (stable addresses).
  std::vector<std::unique_ptr<ShardSeamJournal>> journals_;
  ShardedFilter sharded_;

  /// User callbacks (threaded mode installs journaling wrappers on the
  /// engines and replays into these on the sim thread).
  FilterEngine::OfferedCallback user_offered_;
  FilterEngine::ClassificationCallback user_classified_;

  // inspect_burst scratch (reused; steady state allocates nothing).
  std::vector<const sim::Packet*> batch_ptrs_;
  std::vector<EngineVerdict> batch_verdicts_;
  ShardedFilter::SpanPartition part_;
  /// Cooperative worker-side partition state (see run_shard): tasks
  /// atomically claim span chunks until none remain, then barrier on
  /// chunks_done_ before gathering their sub-spans. Re-armed per burst
  /// by prepare_shards; the pool's join fences the final reads.
  std::uint32_t chunk_total_ = 0;
  std::atomic<std::uint32_t> next_chunk_{0};
  std::atomic<std::uint32_t> chunks_done_{0};
  /// Destination of the workers' per-packet Decision scatter for the
  /// burst in flight (caller's array or held_decisions_). Set by
  /// prepare_shards; workers write disjoint span indices.
  Decision* cur_out_ = nullptr;
  std::vector<SubSpan> sub_;
  std::vector<std::size_t> op_cursor_;
  std::size_t max_burst_ = 0;
  std::uint64_t threaded_bursts_ = 0;
  std::uint64_t fleet_bursts_ = 0;

  /// Fleet mode: the span(s) deferred this tick (we own the packets
  /// until fleet_complete forwards the survivors) and their decisions.
  std::vector<sim::PacketPtr> held_;
  std::vector<Decision> held_decisions_;
};

}  // namespace mafic::core
