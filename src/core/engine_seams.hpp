#pragma once

/// \file engine_seams.hpp
/// The three seams that make the MAFIC decision engine simulator-agnostic.
///
/// FilterEngine (filter_engine.hpp) owns the Fig. 2 control flow — flow
/// tables, probation windows, the Pd coin and the decision rule — but not
/// the environment it runs in. Everything environmental reaches it through
/// these interfaces:
///
///   Clock        — "what time is it" (sim clock, shard-local clock, TSC…)
///   TimerService — arm/cancel/move the per-probation probe and decision
///                  timers (the simulator's wheel, or a shard-private
///                  wheel driven by the datapath thread)
///   ProbeSink    — emit the duplicate-ACK probe toward a flow's claimed
///                  source (a wired Prober in simulation, a raw socket in
///                  a deployment, a counter in benches)
///
/// The discrete-event adapter is core::MaficFilter; the standalone
/// shard runtime is core::EngineRuntime (standalone_runtime.hpp). Both
/// drive the *same* engine object, which is what lets the fixed-seed
/// classification goldens pin the sharded datapath too.
///
/// Journaled (speculative-threaded) seams: when several engines run
/// their sub-spans of one burst on worker threads, the seam
/// implementations must not touch shared state mid-burst. The buffering
/// variants in journal_seams.hpp record every seam side effect instead,
/// tagged with the packet's original span index via the BatchSequencer
/// hook below, and the driving thread replays the merged journals in
/// span order afterwards — reproducing exactly the seam call sequence a
/// serial in-order walk would have made.

#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/unique_function.hpp"

namespace mafic::core {

/// Timer callback type shared with the hierarchical wheel: inline-storable,
/// so arming a probation timer performs no heap allocation.
using TimerFn = util::UniqueFunction<void()>;

/// Read-only time source.
///
/// Contract:
///  * pre:  none — now() must be callable at any point in the engine's
///          lifetime, including from inside timer callbacks.
///  * post: monotonically non-decreasing within one engine's lifetime;
///          two consecutive calls may return the same value. The engine
///          never compares times across engines, so shard-local clocks
///          need no mutual synchronization.
///  * The engine samples now() on the inspection path; implementations
///    should be O(1) and allocation-free.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const noexcept = 0;
};

/// O(1)-amortized one-shot timers at absolute times. Semantics follow
/// sim::TimerWheel.
///
/// Contract:
///  * schedule_at(t, fn) —
///    pre:  fn non-empty. t may lie in the past; implementations clamp
///          it to now (the timer then fires on the next service step).
///    post: returns an id != sim::kInvalidTimer that stays valid until
///          the timer fires or is cancelled. fn runs at the first tick
///          boundary >= t, at most once, with Clock::now() already
///          advanced to (at least) the fire time. Timers landing on the
///          same tick fire in schedule order — the engine relies on
///          this for cross-run determinism. Scheduling must not invoke
///          fn inline.
///  * cancel(id) —
///    post: true iff a pending timer was revoked; its fn never runs.
///          Stale/foreign ids return false and are harmless (the engine
///          cancels defensively from eviction hooks).
///  * reschedule(id, t) —
///    post: true iff the pending timer now fires at (the tick of) t,
///          keeping its id; false for stale ids, after which the caller
///          must schedule_at afresh. Never loses or duplicates a fire.
///  * All three are called from the datapath; implementations should be
///    O(1) amortized and allocation-free in steady state (TimerFn's
///    inline storage holds the engine's small captures).
class TimerService {
 public:
  virtual ~TimerService() = default;
  virtual sim::TimerId schedule_at(double t, TimerFn fn) = 0;
  virtual bool cancel(sim::TimerId id) = 0;
  virtual bool reschedule(sim::TimerId id, double t) = 0;
};

/// Emits the duplicate-ACK probe train toward `flow`'s claimed source.
///
/// Contract:
///  * pre:  called at most once per probation (the engine latches
///          probe_sent), from a TimerService callback — i.e. never
///          re-entrantly from inside inspect().
///  * post: the implementation owns delivery: crafting the
///          cfg.probe_dup_acks ACKs, their spacing, and any further
///          scheduling. It must not call back into the engine
///          synchronously. `flow` is passed by reference and is only
///          valid for the duration of the call — copy what you keep.
///  * Ordering: implementations that merge several engines onto one
///    wire (ShardedMaficFilter's per-shard sinks) preserve call order;
///    the engine in turn requests probes in admission-arrival order
///    when driven through span-ordered batches.
class ProbeSink {
 public:
  virtual ~ProbeSink() = default;
  virtual void send_probe(const sim::FlowLabel& flow) = 0;
};

/// Per-packet sequence hook for the journaled batch path
/// (FilterEngine::inspect_batch_keyed): the engine announces a packet's
/// original span index immediately before inspecting it, so buffering
/// seam implementations can tag the side effects that packet produces.
/// begin_packet is called with strictly increasing indices within one
/// batch; implementations need no synchronization (one sequencer is
/// driven by exactly one thread at a time).
class BatchSequencer {
 public:
  virtual ~BatchSequencer() = default;
  virtual void begin_packet(std::uint32_t span_index) = 0;
};

}  // namespace mafic::core
