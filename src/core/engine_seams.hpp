#pragma once

/// \file engine_seams.hpp
/// The three seams that make the MAFIC decision engine simulator-agnostic.
///
/// FilterEngine (filter_engine.hpp) owns the Fig. 2 control flow — flow
/// tables, probation windows, the Pd coin and the decision rule — but not
/// the environment it runs in. Everything environmental reaches it through
/// these interfaces:
///
///   Clock        — "what time is it" (sim clock, shard-local clock, TSC…)
///   TimerService — arm/cancel/move the per-probation probe and decision
///                  timers (the simulator's wheel, or a shard-private
///                  wheel driven by the datapath thread)
///   ProbeSink    — emit the duplicate-ACK probe toward a flow's claimed
///                  source (a wired Prober in simulation, a raw socket in
///                  a deployment, a counter in benches)
///
/// The discrete-event adapter is core::MaficFilter; the standalone
/// shard runtime is core::EngineRuntime (standalone_runtime.hpp). Both
/// drive the *same* engine object, which is what lets the fixed-seed
/// classification goldens pin the sharded datapath too.

#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/unique_function.hpp"

namespace mafic::core {

/// Timer callback type shared with the hierarchical wheel: inline-storable,
/// so arming a probation timer performs no heap allocation.
using TimerFn = util::UniqueFunction<void()>;

/// Read-only time source. Implementations must be monotonic within one
/// engine's lifetime; the engine never compares times across engines.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double now() const noexcept = 0;
};

/// O(1)-amortized one-shot timers at absolute times. Semantics follow
/// sim::TimerWheel: a timer scheduled at `t` fires at the first tick
/// boundary at or after `t`; cancel/reschedule of a stale id returns
/// false and is harmless.
class TimerService {
 public:
  virtual ~TimerService() = default;
  virtual sim::TimerId schedule_at(double t, TimerFn fn) = 0;
  virtual bool cancel(sim::TimerId id) = 0;
  virtual bool reschedule(sim::TimerId id, double t) = 0;
};

/// Emits the duplicate-ACK probe train toward `flow`'s claimed source.
class ProbeSink {
 public:
  virtual ~ProbeSink() = default;
  virtual void send_probe(const sim::FlowLabel& flow) = 0;
};

}  // namespace mafic::core
