#pragma once

/// \file flow_tables.hpp
/// The three MAFIC flow tables (paper Fig. 2):
///   SFT — Suspicious Flow Table: flows under probation, with the response
///         timer and the two rate-measurement half-windows;
///   NFT — Nice Flow Table: flows that responded to the probe (never
///         dropped again until tables are flushed);
///   PDT — Permanently Drop Table: unresponsive flows and flows with
///         illegal/unreachable sources (every packet dropped).
///
/// Tables store 64-bit hashes of the 4-tuple label, not the label itself
/// (section III-B). Class invariant: a key is in at most one table.

#include <cstdint>
#include <limits>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "core/config.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"

namespace mafic::core {

enum class TableKind : std::uint8_t {
  kNone,
  kSuspicious,
  kNice,
  kPermanentDrop,
};

const char* to_string(TableKind k) noexcept;

/// Probation record for one suspicious flow.
struct SftEntry {
  std::uint64_t key = 0;
  sim::FlowLabel label;      ///< kept to craft the probe ACKs
  double entry_time = 0.0;   ///< when the flow was first dropped into SFT
  double split_time = 0.0;   ///< baseline half ends / probe half begins
  double deadline = 0.0;     ///< timer expiry (entry + 2 x RTT)
  std::uint32_t baseline_count = 0;  ///< arrivals in [entry, split)
  std::uint32_t probe_count = 0;     ///< arrivals in [split, deadline)
  bool probe_sent = false;
  sim::EventId probe_event = sim::kInvalidEvent;
  sim::EventId decision_event = sim::kInvalidEvent;
};

class FlowTables {
 public:
  explicit FlowTables(const MaficConfig& cfg) : cfg_(cfg) {}

  struct Stats {
    std::uint64_t sft_admissions = 0;
    std::uint64_t sft_evictions = 0;
    std::uint64_t moved_to_nft = 0;
    std::uint64_t moved_to_pdt = 0;
    std::uint64_t direct_pdt = 0;  ///< illegal/unreachable screening
    std::uint64_t nft_expirations = 0;  ///< revalidation extension
    std::uint64_t flushes = 0;
  };

  /// Current table of `key`. When NFT revalidation is enabled, an expired
  /// NFT entry is lazily removed and the key reports kNone, sending the
  /// flow back through probation on its next drop.
  TableKind classify(std::uint64_t key,
                     double now = -std::numeric_limits<double>::infinity());

  SftEntry* find_sft(std::uint64_t key) noexcept;

  /// Admits a flow into the SFT (must not be in any table). Returns the
  /// new entry, or nullptr if the key is already tabled. Evicts the oldest
  /// probation when full.
  SftEntry* admit_sft(std::uint64_t key, const sim::FlowLabel& label,
                      double now, double window_seconds);

  /// Resolves a probation: removes the SFT entry and inserts the key into
  /// NFT or PDT. Returns the resolved entry by value (for callbacks).
  /// `now` stamps the NFT expiry when revalidation is configured.
  SftEntry resolve(std::uint64_t key, TableKind destination,
                   double now = 0.0);

  /// Screening shortcut: key goes straight to the PDT (no probation).
  void add_pdt_direct(std::uint64_t key);

  bool in_nft(std::uint64_t key) const noexcept {
    return nft_.contains(key);
  }
  /// Expiry stamp of an NFT entry (tests/diagnostics); +inf when the entry
  /// never expires, NaN when absent.
  double nft_expiry(std::uint64_t key) const noexcept {
    const auto it = nft_.find(key);
    return it == nft_.end() ? std::numeric_limits<double>::quiet_NaN()
                            : it->second;
  }
  bool in_pdt(std::uint64_t key) const noexcept {
    return pdt_.contains(key);
  }

  /// "End dropping & flush all tables" (Fig. 2 exit arc).
  void flush();

  std::size_t sft_size() const noexcept { return sft_.size(); }
  std::size_t nft_size() const noexcept { return nft_.size(); }
  std::size_t pdt_size() const noexcept { return pdt_.size(); }
  const Stats& stats() const noexcept { return stats_; }

  /// Visits every live SFT entry (tests, diagnostics).
  template <typename Fn>
  void for_each_sft(Fn&& fn) const {
    for (const auto& [key, entry] : sft_) fn(entry);
  }

 private:
  void insert_bounded(std::unordered_set<std::uint64_t>& set,
                      std::size_t capacity, std::uint64_t key);

  const MaficConfig& cfg_;
  std::unordered_map<std::uint64_t, SftEntry> sft_;
  /// key -> expiry time (+inf when revalidation is off).
  std::unordered_map<std::uint64_t, double> nft_;
  std::unordered_set<std::uint64_t> pdt_;
  Stats stats_;
};

}  // namespace mafic::core
