#pragma once

/// \file flow_tables.hpp
/// The three MAFIC flow tables (paper Fig. 2):
///   SFT — Suspicious Flow Table: flows under probation, with the response
///         timer and the two rate-measurement half-windows;
///   NFT — Nice Flow Table: flows that responded to the probe (never
///         dropped again until tables are flushed);
///   PDT — Permanently Drop Table: unresponsive flows and flows with
///         illegal/unreachable sources (every packet dropped).
///
/// Tables store 64-bit hashes of the 4-tuple label, not the label itself
/// (section III-B). Class invariant: a key is in at most one table.
///
/// Storage: all three tables live in ONE flat open-addressing store
/// (util::FlatTable) — each resident key maps to a small record carrying
/// its TableKind tag plus either the NFT expiry stamp or an index into a
/// contiguous SftEntry arena. One probe sequence answers "which table is
/// this key in", and the steady-state lookup touches adjacent cache lines
/// instead of chasing per-node heap pointers. The arena is freelist-
/// recycled, so admitting/resolving probations allocates nothing once the
/// working set is resident.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/config.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/flat_table.hpp"

namespace mafic::core {

enum class TableKind : std::uint8_t {
  kNone,
  kSuspicious,
  kNice,
  kPermanentDrop,
};

const char* to_string(TableKind k) noexcept;

/// Probation record for one suspicious flow.
struct SftEntry {
  std::uint64_t key = 0;
  sim::FlowLabel label;      ///< kept to craft the probe ACKs
  double entry_time = 0.0;   ///< when the flow was first dropped into SFT
  double split_time = 0.0;   ///< baseline half ends / probe half begins
  double deadline = 0.0;     ///< timer expiry (entry + 2 x RTT)
  std::uint32_t baseline_count = 0;  ///< arrivals in [entry, split)
  std::uint32_t probe_count = 0;     ///< arrivals in [split, deadline)
  bool probe_sent = false;
  sim::TimerId probe_timer = sim::kInvalidTimer;
  sim::TimerId decision_timer = sim::kInvalidTimer;
};

class FlowTables {
 public:
  explicit FlowTables(const MaficConfig& cfg);

  struct Stats {
    std::uint64_t sft_admissions = 0;
    std::uint64_t sft_evictions = 0;
    std::uint64_t moved_to_nft = 0;
    std::uint64_t moved_to_pdt = 0;
    std::uint64_t direct_pdt = 0;  ///< illegal/unreachable screening
    std::uint64_t nft_expirations = 0;  ///< revalidation extension
    std::uint64_t flushes = 0;
  };

  /// Invoked whenever a probation leaves the SFT *without* being resolved
  /// (capacity eviction or flush); gives the owner a chance to cancel the
  /// entry's pending probe/decision timers.
  using EvictionHook = std::function<void(const SftEntry&)>;
  void set_eviction_hook(EvictionHook hook) { on_evicted_ = std::move(hook); }

  /// Current table of `key`. When NFT revalidation is enabled, an expired
  /// NFT entry is lazily removed and the key reports kNone, sending the
  /// flow back through probation on its next drop.
  TableKind classify(std::uint64_t key,
                     double now = -std::numeric_limits<double>::infinity());

  SftEntry* find_sft(std::uint64_t key) noexcept;

  /// Software-prefetches the key's home slot in the flat store. Batched
  /// inspection prefetches a window of keys before classifying them so the
  /// random-access loads overlap instead of serializing on DRAM latency.
  void prefetch(std::uint64_t key) const noexcept { store_.prefetch(key); }

  /// Admits a flow into the SFT (must not be in any table). Returns the
  /// new entry, or nullptr if the key is already tabled. Evicts the oldest
  /// probation when full. The returned pointer is valid until the next
  /// admit/resolve/flush call.
  SftEntry* admit_sft(std::uint64_t key, const sim::FlowLabel& label,
                      double now, double window_seconds);

  /// Resolves a probation: removes the SFT entry and inserts the key into
  /// NFT or PDT. Returns the resolved entry by value (for callbacks).
  /// `now` stamps the NFT expiry when revalidation is configured.
  SftEntry resolve(std::uint64_t key, TableKind destination,
                   double now = 0.0);

  /// Screening shortcut: key goes straight to the PDT (no probation).
  void add_pdt_direct(std::uint64_t key);

  bool in_nft(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kNice;
  }
  /// Expiry stamp of an NFT entry (tests/diagnostics); +inf when the entry
  /// never expires, NaN when absent.
  double nft_expiry(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kNice
               ? r->nft_expiry
               : std::numeric_limits<double>::quiet_NaN();
  }
  bool in_pdt(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kPermanentDrop;
  }

  /// "End dropping & flush all tables" (Fig. 2 exit arc).
  void flush();

  std::size_t sft_size() const noexcept { return sft_count_; }
  std::size_t nft_size() const noexcept { return nft_count_; }
  std::size_t pdt_size() const noexcept { return pdt_count_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Total resident keys across all three tables (one flat store).
  std::size_t resident() const noexcept { return store_.size(); }
  /// Longest probe sequence in the flat store (diagnostics).
  std::uint32_t max_probe_length() const noexcept {
    return store_.max_probe_length();
  }

  /// Visits every live SFT entry (tests, diagnostics).
  template <typename Fn>
  void for_each_sft(Fn&& fn) const {
    for (std::uint32_t i = 0; i < arena_.size(); ++i) {
      if (arena_live_[i] != 0) fn(arena_[i]);
    }
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One flat-store record: the table tag plus the per-kind payload.
  struct FlowRecord {
    TableKind kind = TableKind::kNone;
    std::uint32_t sft_slot = kNoSlot;  ///< arena index (kSuspicious only)
    double nft_expiry = 0.0;           ///< expiry stamp (kNice only)
  };

  std::uint32_t alloc_arena_slot();
  void free_arena_slot(std::uint32_t slot) noexcept;
  /// Evicts the probation closest to (or past) its deadline — O(1)
  /// amortized via the deadline-bucketed ring below.
  void evict_oldest_probation();
  /// Evicts an arbitrary resident entry of `kind` (NFT/PDT bound guard).
  void evict_any(TableKind kind);

  // --- deadline-bucketed eviction ring ---------------------------------
  // Live probations hang off a ring of FIFO buckets keyed by their
  // deadline quantized to the timer wheel's tick (TimerWheel::quantize),
  // so capacity eviction pops the nearest-deadline probation in O(1)
  // amortized instead of scanning the arena. Matters under per-packet-
  // spoofed floods (ablation A5), where every admission at a full SFT
  // evicts. `ring_cursor_` is a monotone lower bound on the minimum live
  // tick; all live ticks fit in [cursor, cursor + buckets), the ring
  // doubling (rare) or the far-future clamp keeping that invariant.
  void ring_insert(std::uint32_t slot, double deadline);
  void ring_unlink(std::uint32_t slot) noexcept;
  void ring_clear() noexcept;
  /// Advances ring_cursor_ to the minimum occupied tick; ring_live_ > 0.
  void ring_seek() noexcept;
  void ring_grow(std::size_t min_buckets);

  const MaficConfig& cfg_;
  util::FlatTable<FlowRecord> store_;
  std::vector<SftEntry> arena_;        ///< probation payloads, contiguous
  std::vector<std::uint8_t> arena_live_;
  std::vector<std::uint32_t> arena_free_;
  std::size_t sft_count_ = 0;
  std::size_t nft_count_ = 0;
  std::size_t pdt_count_ = 0;
  std::size_t evict_cursor_ = 0;  ///< rotating scan hint for evict_any
  EvictionHook on_evicted_;
  Stats stats_;

  double ring_res_;                       ///< tick width (wheel resolution)
  std::vector<std::uint32_t> ring_head_;  ///< per-bucket FIFO head slot
  std::vector<std::uint32_t> ring_tail_;
  std::vector<std::uint64_t> ring_occ_;   ///< bucket occupancy bitmap
  std::vector<std::uint32_t> ring_next_;  ///< per-arena-slot bucket links
  std::vector<std::uint32_t> ring_prev_;
  std::vector<std::uint64_t> slot_tick_;  ///< per-arena-slot deadline tick
  std::uint64_t ring_cursor_ = 0;
  std::size_t ring_live_ = 0;
};

}  // namespace mafic::core
