#pragma once

/// \file flow_tables.hpp
/// The three MAFIC flow tables (paper Fig. 2):
///   SFT — Suspicious Flow Table: flows under probation, with the response
///         timer and the two rate-measurement half-windows;
///   NFT — Nice Flow Table: flows that responded to the probe (never
///         dropped again until tables are flushed);
///   PDT — Permanently Drop Table: unresponsive flows and flows with
///         illegal/unreachable sources (every packet dropped).
///
/// Tables store 64-bit hashes of the 4-tuple label, not the label itself
/// (section III-B). Class invariant: a key is in at most one table.
///
/// Storage: all three tables live in ONE flat open-addressing store
/// (util::FlatTable) — each resident key maps to a small record carrying
/// its TableKind tag plus either the NFT expiry stamp or an index into a
/// contiguous SftEntry arena. One probe sequence answers "which table is
/// this key in", and the steady-state lookup touches adjacent cache lines
/// instead of chasing per-node heap pointers. The arena is freelist-
/// recycled, so admitting/resolving probations allocates nothing once the
/// working set is resident.

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "core/config.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"
#include "util/flat_table.hpp"

namespace mafic::core {

enum class TableKind : std::uint8_t {
  kNone,
  kSuspicious,
  kNice,
  kPermanentDrop,
};

const char* to_string(TableKind k) noexcept;

/// Why a probation left the SFT without being resolved (eviction hook).
enum class EvictCause : std::uint8_t {
  kCapacity,  ///< table full; the admitting victim class paid from its
              ///< own ring (or quotas are disabled and the ring is global)
  kQuota,     ///< table full; an over-quota class gave a slot back so an
              ///< under-quota victim could admit (cross-victim payment)
  kFlush,     ///< "End dropping & flush all tables" (Fig. 2 exit arc)
};

const char* to_string(EvictCause c) noexcept;

/// Probation record for one suspicious flow.
struct SftEntry {
  std::uint64_t key = 0;
  sim::FlowLabel label;      ///< kept to craft the probe ACKs
  double entry_time = 0.0;   ///< when the flow was first dropped into SFT
  double split_time = 0.0;   ///< baseline half ends / probe half begins
  double deadline = 0.0;     ///< timer expiry (entry + 2 x RTT)
  std::uint32_t baseline_count = 0;  ///< arrivals in [entry, split)
  std::uint32_t probe_count = 0;     ///< arrivals in [split, deadline)
  bool probe_sent = false;
  sim::TimerId probe_timer = sim::kInvalidTimer;
  sim::TimerId decision_timer = sim::kInvalidTimer;
};

class FlowTables {
 public:
  explicit FlowTables(const MaficConfig& cfg);

  struct Stats {
    std::uint64_t sft_admissions = 0;
    std::uint64_t sft_evictions = 0;
    std::uint64_t quota_evictions = 0;  ///< subset of sft_evictions where
                                        ///< an over-quota class paid for
                                        ///< another victim's admission
    std::uint64_t moved_to_nft = 0;
    std::uint64_t moved_to_pdt = 0;
    std::uint64_t direct_pdt = 0;  ///< illegal/unreachable screening
    std::uint64_t nft_expirations = 0;  ///< revalidation extension
    std::uint64_t flushes = 0;
  };

  /// Invoked whenever a probation leaves the SFT *without* being resolved
  /// (capacity/quota eviction or flush); gives the owner a chance to
  /// cancel the entry's pending probe/decision timers and to attribute
  /// the eviction to the entry's victim.
  using EvictionHook = std::function<void(const SftEntry&, EvictCause)>;
  void set_eviction_hook(EvictionHook hook) { on_evicted_ = std::move(hook); }

  /// Registers the protected destinations as victim classes for the
  /// per-victim quota machinery (MaficConfig::sft_victim_quota). With the
  /// quota disabled — or fewer than two victims — everything collapses
  /// into one shared class (the legacy global ring). Victims are sorted
  /// internally so class indices are deterministic regardless of caller
  /// order (the scalar-vs-sharded equivalence depends on this). Live
  /// probations are re-ringed under the new classes; destinations outside
  /// the registered set share class 0. Idempotent for a repeated set.
  void set_victim_classes(const std::vector<util::Addr>& victims);

  /// Weighted variant: `weights[i]` is victim[i]'s share weight (e.g. its
  /// provisioned bandwidth), parallel to the CALLER's victim order; the
  /// pair is sorted together internally. Reservations are proportional:
  /// class i gets floor(pool * w_i / sum(w)) slots, where the pool is the
  /// unweighted total min(per_victim_quota * n, sft_capacity) — so the
  /// summed-reservations-fit-the-table invariant of the equal-split path
  /// is preserved and a zero-weight victim simply holds no reserved slots
  /// (it still admits through the unreserved overflow share). Negative
  /// weights clamp to 0; an all-zero/empty weight vector falls back to the
  /// equal split. Idempotent for a repeated (victims, weights) pair.
  void set_victim_classes(const std::vector<util::Addr>& victims,
                          const std::vector<double>& weights);

  /// Number of victim classes (1 when quotas are off / unregistered).
  std::size_t victim_classes() const noexcept {
    return 1 + extra_rings_.size();
  }
  /// Reserved SFT slots per victim class (0 when quotas are off). With
  /// weighted quotas classes differ — this reports class 0's; use
  /// quota_slots_of() for a specific victim.
  std::size_t quota_slots() const noexcept {
    return class_quota_.empty() ? 0 : class_quota_.front();
  }
  /// Reserved SFT slots of `victim`'s class (0 when quotas are off;
  /// unregistered destinations report class 0's share).
  std::size_t quota_slots_of(util::Addr victim) const noexcept {
    return class_quota_.empty() ? 0 : class_quota_[class_of(victim)];
  }
  /// Live probations belonging to `victim`'s class (its ring occupancy).
  /// With quotas off every destination shares the single class, so this
  /// reports sft_size(); unregistered destinations report class 0's.
  std::size_t sft_size_of(util::Addr victim) const noexcept;
  /// Live probations across every class ring; always equals sft_size().
  std::size_t ring_occupancy() const noexcept;

  /// Current table of `key`. When NFT revalidation is enabled, an expired
  /// NFT entry is lazily removed and the key reports kNone, sending the
  /// flow back through probation on its next drop.
  TableKind classify(std::uint64_t key,
                     double now = -std::numeric_limits<double>::infinity());

  SftEntry* find_sft(std::uint64_t key) noexcept;

  /// Software-prefetches the key's home slot in the flat store. Batched
  /// inspection prefetches a window of keys before classifying them so the
  /// random-access loads overlap instead of serializing on DRAM latency.
  void prefetch(std::uint64_t key) const noexcept { store_.prefetch(key); }

  /// Prefetches an SFT arena entry by slot (second-stage prefetch of the
  /// batched verdict pipeline: peek() yields the slot, the lane decision
  /// then reads the entry's deadline one pass later).
  void prefetch_sft(std::uint32_t slot) const noexcept {
    __builtin_prefetch(&arena_[slot], /*rw=*/0, /*locality=*/1);
  }

  /// Read-only table snapshot for the batched verdict pipeline
  /// (verdict_pipeline.hpp): one probe sequence, NO lazy NFT expiry and no
  /// other side effect — the pipeline replicates classify()'s expiry test
  /// from `nft_expiry` itself and routes expired entries through the
  /// scalar path. `sft_slot`/`nft_expiry` are only meaningful for their
  /// respective kinds.
  struct Peek {
    TableKind kind = TableKind::kNone;
    std::uint32_t sft_slot = 0xffffffffu;
    double nft_expiry = 0.0;
  };
  Peek peek(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    if (r == nullptr) return {};
    return {r->kind, r->sft_slot, r->nft_expiry};
  }

  /// Live SFT entry by arena slot (from Peek::sft_slot). The reference is
  /// valid only while epoch() is unchanged: any structural mutation may
  /// recycle or relocate the slot.
  SftEntry& sft_at(std::uint32_t slot) noexcept { return arena_[slot]; }

  /// Structural-mutation counter: bumped by every insert/erase/kind
  /// change/eviction/flush — anything that can invalidate a Peek or an
  /// sft_at() reference. In-place SFT count updates do NOT bump it. The
  /// batched pipeline snapshots the epoch, materializes a window of Peeks,
  /// and falls back to the scalar path the moment the epoch moves.
  std::uint64_t epoch() const noexcept { return epoch_; }

  /// Admits a flow into the SFT (must not be in any table). Returns the
  /// new entry, or nullptr if the key is already tabled. Evicts the oldest
  /// probation when full. The returned pointer is valid until the next
  /// admit/resolve/flush call.
  SftEntry* admit_sft(std::uint64_t key, const sim::FlowLabel& label,
                      double now, double window_seconds);

  /// Resolves a probation: removes the SFT entry and inserts the key into
  /// NFT or PDT. Returns the resolved entry by value (for callbacks).
  /// `now` stamps the NFT expiry when revalidation is configured.
  SftEntry resolve(std::uint64_t key, TableKind destination,
                   double now = 0.0);

  /// Screening shortcut: key goes straight to the PDT (no probation).
  void add_pdt_direct(std::uint64_t key);

  bool in_nft(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kNice;
  }
  /// Expiry stamp of an NFT entry (tests/diagnostics); +inf when the entry
  /// never expires, NaN when absent.
  double nft_expiry(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kNice
               ? r->nft_expiry
               : std::numeric_limits<double>::quiet_NaN();
  }
  bool in_pdt(std::uint64_t key) const noexcept {
    const FlowRecord* r = store_.find(key);
    return r != nullptr && r->kind == TableKind::kPermanentDrop;
  }

  /// "End dropping & flush all tables" (Fig. 2 exit arc).
  void flush();

  std::size_t sft_size() const noexcept { return sft_count_; }
  std::size_t nft_size() const noexcept { return nft_count_; }
  std::size_t pdt_size() const noexcept { return pdt_count_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Total resident keys across all three tables (one flat store).
  std::size_t resident() const noexcept { return store_.size(); }
  /// Longest probe sequence in the flat store (diagnostics).
  std::uint32_t max_probe_length() const noexcept {
    return store_.max_probe_length();
  }

  /// Visits every live SFT entry (tests, diagnostics).
  template <typename Fn>
  void for_each_sft(Fn&& fn) const {
    for (std::uint32_t i = 0; i < arena_.size(); ++i) {
      if (arena_live_[i] != 0) fn(arena_[i]);
    }
  }

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One flat-store record: the table tag plus the per-kind payload.
  struct FlowRecord {
    TableKind kind = TableKind::kNone;
    std::uint32_t sft_slot = kNoSlot;  ///< arena index (kSuspicious only)
    double nft_expiry = 0.0;           ///< expiry stamp (kNice only)
  };

  // --- deadline-bucketed eviction rings --------------------------------
  // Live probations hang off per-victim-class rings of FIFO buckets keyed
  // by their deadline quantized to the timer wheel's tick
  // (TimerWheel::quantize), so capacity eviction pops the nearest-deadline
  // probation of the paying class in O(1) amortized instead of scanning
  // the arena. Matters under per-packet-spoofed floods (ablation A5),
  // where every admission at a full SFT evicts. Each ring's `cursor` is a
  // monotone lower bound on its minimum live tick; all of a ring's live
  // ticks fit in [cursor, cursor + buckets), the ring doubling (rare) or
  // the far-future clamp keeping that invariant. With quotas off there is
  // exactly one ring and the behaviour is the legacy global ordering.
  struct Ring {
    std::vector<std::uint32_t> head;  ///< per-bucket FIFO head slot
    std::vector<std::uint32_t> tail;
    std::vector<std::uint64_t> occ;   ///< bucket occupancy bitmap
    std::uint64_t cursor = 0;
    std::size_t live = 0;
  };

  std::uint32_t alloc_arena_slot();
  void free_arena_slot(std::uint32_t slot) noexcept;
  /// Victim class of a destination; 0 when quotas are off/unregistered.
  std::uint32_t class_of(util::Addr dst) const noexcept;
  /// Frees one SFT slot so class `cls` can admit (quota mode only; the
  /// single-class path calls evict_from_class directly): the admitter
  /// pays from its own ring while at/over quota, otherwise the most
  /// over-quota class pays (EvictCause::kQuota) — O(classes) worst case.
  void evict_for_admission(std::uint32_t cls);
  /// Evicts the nearest-deadline probation of class `cls`.
  void evict_from_class(std::uint32_t cls, EvictCause cause);
  /// Evicts an arbitrary resident entry of `kind` (NFT/PDT bound guard).
  void evict_any(TableKind kind);

  void ring_reset(Ring& r);  ///< (re)sizes to the configured bucket count
  /// `r` must be rings_[cls] — resolved once by the caller so the hot
  /// admit/evict path pays the rings_ indirection once per operation.
  void ring_insert(Ring& r, std::uint32_t cls, std::uint32_t slot,
                   double deadline);
  void ring_unlink(std::uint32_t slot) noexcept;  ///< resolves slot's ring
  void ring_unlink_in(Ring& r, std::uint32_t slot) noexcept;
  void ring_clear() noexcept;
  /// Advances r.cursor to the minimum occupied tick; requires r.live > 0.
  void ring_seek(Ring& r) noexcept;
  void ring_grow(Ring& r, std::size_t min_buckets);

  const MaficConfig& cfg_;
  util::FlatTable<FlowRecord> store_;
  std::vector<SftEntry> arena_;        ///< probation payloads, contiguous
  std::vector<std::uint8_t> arena_live_;
  std::vector<std::uint32_t> arena_free_;
  std::size_t sft_count_ = 0;
  std::size_t nft_count_ = 0;
  std::size_t pdt_count_ = 0;
  std::size_t evict_cursor_ = 0;  ///< rotating scan hint for evict_any
  std::uint64_t epoch_ = 0;       ///< structural-mutation counter (epoch())
  EvictionHook on_evicted_;
  Stats stats_;

  /// Ring of victim class `cls`. Class 0 lives inline in the object so
  /// the quotas-off hot path (exactly one class) touches no extra
  /// indirection vs the pre-quota single-ring layout; extra classes only
  /// exist in multi-victim quota mode, off the flood-critical default.
  Ring& ring_at(std::uint32_t cls) noexcept {
    return cls == 0 ? ring0_ : extra_rings_[cls - 1];
  }
  const Ring& ring_at(std::uint32_t cls) const noexcept {
    return cls == 0 ? ring0_ : extra_rings_[cls - 1];
  }

  double ring_res_;                 ///< tick width (wheel resolution)
  Ring ring0_;                      ///< class 0 (the only ring, quotas off)
  std::vector<Ring> extra_rings_;   ///< classes 1..n-1 (quota mode only)
  std::vector<util::Addr> class_victims_;  ///< sorted; empty = one class
  std::vector<double> class_weights_;      ///< parallel; empty = equal split
  std::vector<std::size_t> class_quota_;   ///< reserved slots per class
  std::vector<std::uint32_t> ring_next_;   ///< per-arena-slot bucket links
  std::vector<std::uint32_t> ring_prev_;
  std::vector<std::uint64_t> slot_tick_;   ///< per-slot deadline tick
  std::vector<std::uint32_t> slot_class_;  ///< per-slot victim class
};

}  // namespace mafic::core
