#pragma once

/// \file shard_worker_pool.hpp
/// A small persistent worker pool for the speculative threaded shard
/// path: the sim thread fans a burst's per-shard sub-spans out as tasks,
/// workers run them against shard-local engine state, and the sim thread
/// joins before merging the journals (sharded_mafic_filter.hpp).
///
/// Shape: one batch in flight at a time. submit() publishes a task
/// function and a task count and wakes the workers; wait() has the
/// calling thread help drain the task index before blocking until every
/// task has finished. The pool is shared by all filters of an experiment
/// (bursts are serialized on the sim thread, so sharing is free), and
/// the threads persist across bursts — steady state costs two condvar
/// hops per burst, not a thread spawn per sub-span.
///
/// Memory ordering: everything a task reads (sub-spans, journals, the
/// sim clock) is written by the submitting thread before the mutex-
/// protected epoch publication, and everything it writes is read by the
/// submitter only after the mutex-protected completion wait — the
/// fan-out/join pair is the happens-before edge the whole threaded
/// datapath leans on (the TSan CI job checks it).
///
/// Destruction is safe with a batch still in flight: the destructor
/// finishes the pending batch (helping to drain it) before asking the
/// workers to stop, so in-flight sub-spans always complete.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mafic::core {

class ShardWorkerPool {
 public:
  /// Task callback: invoked once per task index in [0, n); any thread,
  /// any order, each index exactly once.
  using TaskFn = std::function<void(std::size_t)>;

  /// One entry of a heterogeneous task list (the fleet scheduler's
  /// per-tick batch: every (filter, shard) sub-span of the tick as its
  /// own task). A plain function pointer + context so building the list
  /// never allocates.
  struct Task {
    void (*run)(void* ctx, std::size_t arg) = nullptr;
    void* ctx = nullptr;
    std::size_t arg = 0;
  };

  /// Pool occupancy counters, accumulated across batches. Pure
  /// diagnostics (mutated only under the pool mutex; never read by task
  /// bodies), reported by the fleet bench tier.
  struct Occupancy {
    std::uint64_t submissions = 0;  ///< non-empty batches submitted
    std::uint64_t tasks = 0;        ///< tasks across all batches
    std::uint64_t max_tasks = 0;    ///< largest single batch
    /// Wall time summed over every thread's task executions (ns).
    std::uint64_t busy_ns = 0;
    /// Wall time summed over submit()->batch-complete windows (ns).
    std::uint64_t wall_ns = 0;

    double tasks_per_submission() const noexcept {
      return submissions == 0 ? 0.0
                              : double(tasks) / double(submissions);
    }
    /// Fraction of `workers` x wall-clock capacity spent inside task
    /// bodies. The submitting thread helps drain, so a saturated pool
    /// can exceed 1.0.
    double busy_fraction(std::size_t workers) const noexcept {
      return wall_ns == 0 || workers == 0
                 ? 0.0
                 : double(busy_ns) / (double(workers) * double(wall_ns));
    }
  };

  /// Spawns `workers` persistent threads (at least 1).
  explicit ShardWorkerPool(std::size_t workers);

  /// Completes any in-flight batch, then stops and joins the workers.
  ~ShardWorkerPool();

  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Publishes a batch of `n` tasks and wakes the workers. At most one
  /// batch may be in flight; call wait() before the next submit().
  void submit(TaskFn fn, std::size_t n);

  /// Heterogeneous batch: task index i runs tasks[i].run(ctx, arg). The
  /// array must stay alive and unchanged until wait() returns. Same
  /// one-batch-in-flight contract as submit(TaskFn, n).
  void submit(const Task* tasks, std::size_t n);

  /// Occupancy counters snapshot (consistent; taken under the lock).
  Occupancy occupancy() const;

  /// Drains remaining task indices on the calling thread, then blocks
  /// until every task (including those running on workers) has finished.
  /// No-op when no batch is in flight.
  void wait();

 private:
  void worker_loop();
  /// Claims and runs task indices until the batch's index space is
  /// exhausted; returns the number of tasks this thread completed.
  std::size_t drain_tasks();
  /// Shared publication path of both submit overloads; call under no
  /// lock with exactly one of fn/tasks set.
  void publish(TaskFn fn, const Task* tasks, std::size_t n);

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers wait for a new epoch
  std::condition_variable done_cv_;  ///< wait() blocks on completion

  // Batch state, all guarded by mu_ (task *bodies* run unlocked).
  TaskFn fn_;
  const Task* tasks_ = nullptr;  ///< heterogeneous batch, else nullptr
  std::size_t n_tasks_ = 0;
  std::size_t next_task_ = 0;
  std::size_t finished_ = 0;
  std::uint64_t epoch_ = 0;
  bool batch_open_ = false;
  bool stop_ = false;
  Occupancy occupancy_;
  std::uint64_t batch_start_ns_ = 0;  ///< steady-clock stamp at submit

  std::vector<std::thread> threads_;
};

}  // namespace mafic::core
