#pragma once

/// \file prober.hpp
/// The duplicate-ACK probe: "send duplicated ACKs to hosts with source IP
/// address" (section III-A). The ATR crafts ACK packets that pretend to
/// come from the flow's destination (the victim) and addresses them to the
/// flow's *claimed* source. A genuine TCP sender counts them as duplicate
/// ACKs (ack_no = 0 never advances snd_una), fast-retransmits and halves
/// its window; a zombie, or an innocent third party whose address was
/// spoofed, does not change the flow's sending rate.
///
/// Prober is the simulator-side ProbeSink implementation (engine_seams.hpp):
/// the FilterEngine asks for a probe through the seam, and this class puts
/// real packets on the ATR's wire. Holds its config by value so it has no
/// lifetime tie to the engine that drives it.

#include <cstdint>

#include "core/config.hpp"
#include "core/engine_seams.hpp"
#include "sim/node.hpp"
#include "sim/packet.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {

class Prober final : public ProbeSink {
 public:
  Prober(sim::Simulator* sim, sim::PacketFactory* factory, sim::Node* atr,
         const MaficConfig& cfg)
      : sim_(sim), factory_(factory), atr_(atr), cfg_(cfg) {}

  /// Emits cfg.probe_dup_acks duplicate ACKs toward flow.src, spaced
  /// cfg.probe_spacing_s apart.
  void probe(const sim::FlowLabel& flow);

  // --- ProbeSink ---
  void send_probe(const sim::FlowLabel& flow) override { probe(flow); }

  std::uint64_t probes_issued() const noexcept { return probes_; }
  std::uint64_t probe_packets_sent() const noexcept { return packets_; }

 private:
  void emit(const sim::FlowLabel& flow);

  sim::Simulator* sim_;
  sim::PacketFactory* factory_;
  sim::Node* atr_;
  MaficConfig cfg_;
  std::uint64_t probes_ = 0;
  std::uint64_t packets_ = 0;
};

}  // namespace mafic::core
