#pragma once

/// \file fleet_burst_scheduler.hpp
/// Fleet-wide tick batching for the threaded shard datapath. PR 5's
/// speculative path fans each filter's burst out to the worker pool on
/// its own: every uplink delivery costs one submit/join pair, and with
/// many ingress filters per simulated instant the pool ping-pongs
/// through many small batches per tick — condvar hops and worker
/// wake-ups dominate, and shards too small to amortize a hop run
/// serially anyway.
///
/// This scheduler coalesces them. Fleet-mode filters
/// (ShardedMaficFilter::set_fleet) do not classify inside their
/// delivery event; they move the span into a held buffer and enqueue
/// themselves here. The simulator's tick drain (sim::TickDrain,
/// Simulator::set_tick_drain) calls drain() before the run loop touches
/// anything that is not another same-instant batchable delivery, and
/// the drain runs three phases:
///
///   1. prepare  — each pending filter, in arrival order, partitions its
///                 held span and opens its shard journals
///                 (ShardedMaficFilter::fleet_prepare), appending one
///                 heterogeneous pool task per non-empty (filter, shard)
///                 sub-span;
///   2. execute  — ONE ShardWorkerPool::submit covers every sub-span of
///                 the tick, so the whole fleet's classification work
///                 shares a single fan-out/join;
///   3. complete — each filter, again in arrival order, replays its
///                 journals and finishes its burst
///                 (ShardedMaficFilter::fleet_complete).
///
/// Determinism: arrival order IS serial order. A filter enqueues itself
/// synchronously from its delivery event, and the simulator only defers
/// across events that are batchable and at the same instant, so the
/// pending list is exactly the sequence of delivery events the serial
/// run loop would have popped. Phase 3 replays each filter's seam ops
/// (timers, probes, ledger callbacks) in that sequence, and the filters
/// share no engine state, so every externally visible effect lands in
/// the order the unbatched path produces — verdicts, timer wheel
/// insertion order, probe emission and counters are bit-identical
/// (test_core_fleet_sim pins this against the serial path).
///
/// Re-entrancy: completing a burst forwards survivors downstream, which
/// only schedules future events (transmission takes non-zero time), so
/// filters cannot re-enqueue synchronously during a drain. If one ever
/// does (zero-delay custom topologies), the new arrival is left pending
/// and the simulator drains again before its next step.

#include <cstdint>
#include <vector>

#include "core/shard_worker_pool.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {

class ShardedMaficFilter;

class FleetBurstScheduler final : public sim::TickDrain {
 public:
  /// `pool` is non-owning and shared with the filters; must outlive the
  /// scheduler.
  explicit FleetBurstScheduler(ShardWorkerPool* pool) : pool_(pool) {}

  FleetBurstScheduler(const FleetBurstScheduler&) = delete;
  FleetBurstScheduler& operator=(const FleetBurstScheduler&) = delete;

  /// Registers a filter holding a deferred span. Called by the filter
  /// itself (once per tick, on its first held span); arrival order is
  /// preserved through the drain.
  void enqueue(ShardedMaficFilter* f) { pending_.push_back(f); }

  // --- sim::TickDrain ---
  bool pending() const noexcept override { return !pending_.empty(); }
  void drain() override;

  ShardWorkerPool* pool() const noexcept { return pool_; }

  /// Drains executed (each = one pool submission window, possibly with
  /// zero tasks when every held span was all-cold).
  std::uint64_t drains() const noexcept { return drains_; }
  /// Drains that coalesced more than one filter — the ticks where fleet
  /// batching actually saved submit/join pairs.
  std::uint64_t coalesced_drains() const noexcept { return coalesced_; }
  /// Filter spans drained in total.
  std::uint64_t spans_drained() const noexcept { return spans_; }
  double spans_per_drain() const noexcept {
    return drains_ == 0 ? 0.0
                        : static_cast<double>(spans_) /
                              static_cast<double>(drains_);
  }

 private:
  ShardWorkerPool* pool_;
  std::vector<ShardedMaficFilter*> pending_;  ///< arrival order
  std::vector<ShardWorkerPool::Task> tasks_;  ///< per-tick scratch
  std::uint64_t drains_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t spans_ = 0;
};

}  // namespace mafic::core
