#pragma once

/// \file rtt_estimator.hpp
/// Per-flow RTT estimation at a router from TCP timestamp echoes, as the
/// paper suggests ("RTT information is available in most TCP traffic flows
/// by checking the time stamp in the packet header"). A data packet's
/// TSecr is the stamp of the ACK the sender most recently received, so
/// (now - TSecr) sampled at an ingress router covers sink -> sender ->
/// router: roughly half the round trip. The configured correction factor
/// scales the sample back to a full-RTT estimate.
///
/// Storage: one flat open-addressing table (util::FlatTable) of EWMA
/// records — the same substrate as the flow store — bounded by
/// MaficConfig::rtt_capacity. Presence in the table IS the initialized
/// flag, so observe()/rtt() are one probe sequence each and steady-state
/// tsecr-bearing traffic touches no allocator. Estimates live outside the
/// flow tables, so they persist across probation transitions (SFT ->
/// NFT/PDT, NFT revalidation) and are only discarded by clear() when the
/// defense deactivates. The EWMA arithmetic is the same
/// initialize-then-blend sequence as util::Ewma, so estimates are
/// bit-identical to the pre-flat unordered_map implementation
/// (test_core_rtt_flat pins this against a reference map).

#include <cstdint>
#include <functional>

#include "core/config.hpp"
#include "util/flat_table.hpp"

namespace mafic::core {

class RttEstimator {
 public:
  explicit RttEstimator(const MaficConfig& cfg)
      : cfg_(cfg), flows_(cfg.rtt_capacity, cfg.flow_store_max_load) {}

  /// Marks keys that must not be recycled at capacity (the engine pins
  /// flows with an *active probation*: their estimate backs the live
  /// probation window and would otherwise be lost mid-probation, sending
  /// the flow's next window back to default_rtt). Checked only on the
  /// cold recycle path; unset (the default) pins nothing.
  using PinCheck = std::function<bool(std::uint64_t)>;
  void set_pin_check(PinCheck pin) { pinned_ = std::move(pin); }

  /// Feeds one timestamp-echo sample (now - tsecr) for a flow key.
  /// At capacity an unpinned resident estimate is recycled to make room;
  /// if every resident estimate is pinned the sample is dropped instead
  /// (the new flow stays at default_rtt until a slot frees up).
  void observe(std::uint64_t key, double raw_sample) {
    if (raw_sample <= 0.0) return;
    const double corrected = raw_sample * cfg_.rtt_correction;
    if (corrected < cfg_.min_rtt / 4.0 || corrected > cfg_.max_rtt * 4.0) {
      return;  // garbage echo (e.g. stale stamp after idleness)
    }
    if (Estimate* e = flows_.find(key)) {
      e->value += cfg_.rtt_ewma_alpha * (corrected - e->value);
      return;
    }
    if (flows_.size() >= flows_.max_entries() && !recycle_one()) return;
    flows_.insert(key).first->value = corrected;
  }

  /// Current estimate for the flow, clamped; default when never observed.
  double rtt(std::uint64_t key) const {
    const Estimate* e = flows_.find(key);
    if (e == nullptr) return cfg_.default_rtt;
    if (e->value < cfg_.min_rtt) return cfg_.min_rtt;
    if (e->value > cfg_.max_rtt) return cfg_.max_rtt;
    return e->value;
  }

  bool has_estimate(std::uint64_t key) const {
    return flows_.contains(key);
  }

  std::size_t tracked_flows() const noexcept { return flows_.size(); }
  std::uint64_t recycled() const noexcept { return recycled_; }
  void clear() {
    flows_.clear();
    recycle_cursor_ = 0;
  }

 private:
  struct Estimate {
    double value = 0.0;
  };

  /// Capacity bound hit: drop an arbitrary *unpinned* resident estimate,
  /// rotating through the table so no flow is recycled twice in a row.
  /// The evicted flow falls back to default_rtt until its next usable
  /// echo. Returns false — and recycles nothing — when every resident
  /// estimate is pinned (a slot backing an active probation must survive
  /// to the probation's decision).
  bool recycle_one() {
    std::uint64_t victim = 0;
    const std::size_t at = flows_.scan(
        recycle_cursor_, [&](std::uint64_t key, const Estimate&) {
          if (pinned_ && pinned_(key)) return false;
          victim = key;
          return true;
        });
    if (at == util::FlatTable<Estimate>::kNpos) return false;
    recycle_cursor_ = at + 1;
    flows_.erase(victim);
    ++recycled_;
    return true;
  }

  const MaficConfig& cfg_;
  util::FlatTable<Estimate> flows_;
  PinCheck pinned_;
  std::size_t recycle_cursor_ = 0;
  std::uint64_t recycled_ = 0;
};

}  // namespace mafic::core
