#pragma once

/// \file rtt_estimator.hpp
/// Per-flow RTT estimation at a router from TCP timestamp echoes, as the
/// paper suggests ("RTT information is available in most TCP traffic flows
/// by checking the time stamp in the packet header"). A data packet's
/// TSecr is the stamp of the ACK the sender most recently received, so
/// (now - TSecr) sampled at an ingress router covers sink -> sender ->
/// router: roughly half the round trip. The configured correction factor
/// scales the sample back to a full-RTT estimate.

#include <cstdint>
#include <unordered_map>

#include "core/config.hpp"
#include "util/stats.hpp"

namespace mafic::core {

class RttEstimator {
 public:
  explicit RttEstimator(const MaficConfig& cfg) : cfg_(cfg) {}

  /// Feeds one timestamp-echo sample (now - tsecr) for a flow key.
  void observe(std::uint64_t key, double raw_sample) {
    if (raw_sample <= 0.0) return;
    const double corrected = raw_sample * cfg_.rtt_correction;
    if (corrected < cfg_.min_rtt / 4.0 || corrected > cfg_.max_rtt * 4.0) {
      return;  // garbage echo (e.g. stale stamp after idleness)
    }
    auto [it, inserted] =
        flows_.try_emplace(key, util::Ewma{cfg_.rtt_ewma_alpha});
    it->second.update(corrected);
  }

  /// Current estimate for the flow, clamped; default when never observed.
  double rtt(std::uint64_t key) const {
    const auto it = flows_.find(key);
    if (it == flows_.end() || !it->second.initialized()) {
      return cfg_.default_rtt;
    }
    const double v = it->second.value();
    if (v < cfg_.min_rtt) return cfg_.min_rtt;
    if (v > cfg_.max_rtt) return cfg_.max_rtt;
    return v;
  }

  bool has_estimate(std::uint64_t key) const {
    return flows_.contains(key);
  }

  std::size_t tracked_flows() const noexcept { return flows_.size(); }
  void clear() { flows_.clear(); }

 private:
  const MaficConfig& cfg_;
  std::unordered_map<std::uint64_t, util::Ewma> flows_;
};

}  // namespace mafic::core
