#include "core/sharded_mafic_filter.hpp"

namespace mafic::core {

ShardedMaficFilter::ShardedMaficFilter(sim::Simulator* sim,
                                       sim::PacketFactory* factory,
                                       sim::Node* atr_node,
                                       std::size_t num_shards,
                                       MaficConfig cfg,
                                       const AddressPolicy* policy,
                                       std::uint64_t seed)
    : atr_node_(atr_node),
      clock_(sim),
      timers_(sim),
      prober_(sim, factory, atr_node, cfg),
      shard_sinks_(ShardedFilter::usable_shard_count(num_shards)),
      sharded_(num_shards, cfg, policy, seed,
               [this](std::size_t i) {
                 shard_sinks_[i].wire = &prober_;
                 return ShardedFilter::ShardSeams{&clock_, &timers_,
                                                 &shard_sinks_[i]};
               }) {}

sim::NodeId ShardedMaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

void ShardedMaficFilter::set_offered_callback(
    FilterEngine::OfferedCallback cb) {
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    sharded_.engine(i).set_offered_callback(cb);
  }
}

void ShardedMaficFilter::set_classification_callback(
    FilterEngine::ClassificationCallback cb) {
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    sharded_.engine(i).set_classification_callback(cb);
  }
}

FlowTables::Stats ShardedMaficFilter::tables_stats() const {
  return sharded_.aggregate_tables_stats();
}

FilterEngine::VictimStats ShardedMaficFilter::victim_stats_for(
    util::Addr victim) const {
  return sharded_.victim_stats_for(victim);
}

sim::InlineFilter::Decision ShardedMaficFilter::inspect(sim::Packet& p) {
  if (max_burst_ == 0) max_burst_ = 1;
  return to_decision(sharded_.inspect(p));
}

void ShardedMaficFilter::inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                                       Decision* out) {
  if (n > max_burst_) max_burst_ = n;
  inspect_burst_via(sharded_, pkts, n, batch_ptrs_, batch_verdicts_, out);
}

}  // namespace mafic::core
