#include "core/sharded_mafic_filter.hpp"

#include <cassert>
#include <thread>
#include <utility>

#include "core/fleet_burst_scheduler.hpp"

namespace mafic::core {

ShardedMaficFilter::ShardedMaficFilter(sim::Simulator* sim,
                                       sim::PacketFactory* factory,
                                       sim::Node* atr_node,
                                       std::size_t num_shards,
                                       MaficConfig cfg,
                                       const AddressPolicy* policy,
                                       std::uint64_t seed,
                                       ShardWorkerPool* pool)
    : atr_node_(atr_node),
      clock_(sim),
      timers_(sim),
      prober_(sim, factory, atr_node, cfg),
      shard_sinks_(ShardedFilter::usable_shard_count(num_shards)),
      pool_(pool),
      sharded_(num_shards, cfg, policy, seed,
               [this](std::size_t i) {
                 shard_sinks_[i].wire = &prober_;
                 if (pool_ == nullptr) {
                   return ShardedFilter::ShardSeams{&clock_, &timers_,
                                                   &shard_sinks_[i]};
                 }
                 // Threaded mode: each shard's timer/probe seams buffer
                 // into its journal during bursts and pass through to
                 // the shared wheel / per-shard sink otherwise.
                 journals_.push_back(std::make_unique<ShardSeamJournal>(
                     &timers_, &shard_sinks_[i]));
                 ShardSeamJournal* j = journals_.back().get();
                 return ShardedFilter::ShardSeams{&clock_, j, j};
               }) {
  if (pool_ != nullptr) {
    sub_.resize(sharded_.shard_count());
    op_cursor_.resize(sharded_.shard_count());
  }
}

sim::NodeId ShardedMaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

void ShardedMaficFilter::set_fleet(FleetBurstScheduler* fleet) {
  assert((fleet == nullptr || pool_ != nullptr) &&
         "fleet batching requires the threaded shard path");
  assert((fleet == nullptr || fleet->pool() == pool_) &&
         "fleet scheduler must share this filter's worker pool");
  fleet_ = fleet;
}

void ShardedMaficFilter::set_offered_callback(
    FilterEngine::OfferedCallback cb) {
  user_offered_ = std::move(cb);
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    if (pool_ != nullptr && user_offered_) {
      // Worker-side invocations are journaled and replayed in span
      // order; sim-thread invocations (scalar recv, timer paths) go
      // straight through.
      ShardSeamJournal* j = journals_[i].get();
      sharded_.engine(i).set_offered_callback(
          [this, j](const sim::Packet& p) {
            if (j->buffering()) {
              j->record_offered(p);
            } else {
              user_offered_(p);
            }
          });
    } else {
      sharded_.engine(i).set_offered_callback(user_offered_);
    }
  }
}

void ShardedMaficFilter::set_classification_callback(
    FilterEngine::ClassificationCallback cb) {
  user_classified_ = std::move(cb);
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    if (pool_ != nullptr && user_classified_) {
      ShardSeamJournal* j = journals_[i].get();
      sharded_.engine(i).set_classification_callback(
          [this, j](const SftEntry& e, TableKind dest) {
            if (j->buffering()) {
              j->record_classified(e, dest);
            } else {
              user_classified_(e, dest);
            }
          });
    } else {
      sharded_.engine(i).set_classification_callback(user_classified_);
    }
  }
}

FlowTables::Stats ShardedMaficFilter::tables_stats() const {
  return sharded_.aggregate_tables_stats();
}

FilterEngine::VictimStats ShardedMaficFilter::victim_stats_for(
    util::Addr victim) const {
  return sharded_.victim_stats_for(victim);
}

sim::InlineFilter::Decision ShardedMaficFilter::inspect(sim::Packet& p) {
  if (max_burst_ == 0) max_burst_ = 1;
  return to_decision(sharded_.inspect(p));
}

void ShardedMaficFilter::inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                                       Decision* out) {
  if (n > max_burst_) max_burst_ = n;
  if (pool_ == nullptr) {
    inspect_burst_via(sharded_, pkts, n, batch_ptrs_, batch_verdicts_, out);
    return;
  }
  batch_ptrs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) batch_ptrs_[i] = pkts[i].get();
  inspect_burst_threaded(n, out);
}

void ShardedMaficFilter::run_shard(std::size_t s) {
  const std::size_t n = batch_ptrs_.size();

  // Cooperative chunk partition: every shard task claims unpartitioned
  // chunks until none remain, so each packet is gated + hashed exactly
  // once, fully inside the pool tasks (the submitting thread's fan-out
  // cost no longer scales with span size), with no claim order
  // dependence (chunks write disjoint index ranges of part_). A task
  // that finds all chunks claimed waits for the stragglers — and because
  // claiming is work-stealing, the barrier cannot deadlock at any worker
  // count: whichever task runs first partitions everything itself.
  for (std::uint32_t c = next_chunk_.fetch_add(1, std::memory_order_relaxed);
       c < chunk_total_;
       c = next_chunk_.fetch_add(1, std::memory_order_relaxed)) {
    const std::size_t begin = n * c / chunk_total_;
    const std::size_t end = n * (c + 1) / chunk_total_;
    sharded_.partition_span_range(batch_ptrs_.data(), begin, end, part_);
    // Cold packets belong to no shard; their final Decision is written
    // here by the chunk's owner (still disjoint-index, still parallel).
    for (std::size_t i = begin; i < end; ++i) {
      if (part_.hot[i] == 0) cur_out_[i] = Decision::forward();
    }
    chunks_done_.fetch_add(1, std::memory_order_release);
  }
  while (chunks_done_.load(std::memory_order_acquire) < chunk_total_) {
    std::this_thread::yield();
  }

  // Gather this shard's sub-span (arrival order) off the shared
  // partition arrays — sequential integer reads, no packet derefs until
  // a packet is actually ours.
  SubSpan& sub = sub_[s];
  for (std::size_t i = 0; i < n; ++i) {
    if (part_.hot[i] == 0 || part_.shard[i] != s) continue;
    sub.pkts.push_back(batch_ptrs_[i]);
    sub.keys.push_back(part_.keys[i]);
    sub.span_idx.push_back(static_cast<std::uint32_t>(i));
  }
  if (sub.pkts.empty()) return;
  sub.verdicts.resize(sub.pkts.size());
  sharded_.engine(s).inspect_batch_keyed(sub.pkts.data(), sub.keys.data(),
                                         sub.span_idx.data(),
                                         sub.pkts.size(),
                                         sub.verdicts.data(),
                                         journals_[s].get());
  // Scatter this shard's verdicts straight into the span's Decision
  // array (disjoint indices again), so the sim thread never walks the
  // span after the join: complete_shards only merges the sparse seam
  // journals.
  for (std::size_t j = 0; j < sub.pkts.size(); ++j) {
    cur_out_[sub.span_idx[j]] = to_decision(sub.verdicts[j]);
  }
}

void ShardedMaficFilter::apply_op(std::size_t s,
                                  const ShardSeamJournal::Op& op) {
  using OpKind = ShardSeamJournal::OpKind;
  switch (op.kind) {
    case OpKind::kTimerSchedule:
    case OpKind::kTimerCancel:
    case OpKind::kTimerReschedule:
      journals_[s]->apply_timer(op);
      return;
    case OpKind::kProbe:
      shard_sinks_[s].send_probe(op.flow);
      return;
    case OpKind::kOffered:
      if (user_offered_) user_offered_(*op.pkt);
      return;
    case OpKind::kClassified:
      if (user_classified_) user_classified_(op.entry, op.dest);
      return;
  }
}

void ShardedMaficFilter::prepare_shards(std::size_t n, Decision* out) {
  const std::size_t shards = sharded_.shard_count();

  // The partition itself is worker-side (see run_shard): here we only
  // size the shared arrays, arm the chunk-claim counters and open the
  // journals — nothing the submitting thread does scales with n beyond
  // the (amortised) resizes. 2x chunks per shard keeps the cooperative
  // barrier's straggler tail to half a sub-span scan.
  part_.hot.resize(n);
  part_.keys.resize(n);
  part_.shard.resize(n);
  cur_out_ = out;
  chunk_total_ = static_cast<std::uint32_t>(2 * shards);
  next_chunk_.store(0, std::memory_order_relaxed);
  chunks_done_.store(0, std::memory_order_relaxed);
  for (std::size_t s = 0; s < shards; ++s) sub_[s].clear();
  for (std::size_t s = 0; s < shards; ++s) journals_[s]->begin_burst();
}

void ShardedMaficFilter::complete_shards(std::size_t n, Decision* out) {
  (void)n;
  (void)out;  // every Decision was scattered worker-side (run_shard)
  const std::size_t shards = sharded_.shard_count();
  for (std::size_t s = 0; s < shards; ++s) journals_[s]->end_burst();

  // Deterministic merge: a K-way interleave of the per-shard op streams
  // by original span index — the exact seam call sequence the serial
  // in-order walk produces. Each stream is span-sorted (sub-spans are
  // walked in arrival order) and a span index lives in exactly one
  // shard, so the minimum is always unique. Unlike the verdicts (dense,
  // handled worker-side), seam ops are sparse — admissions, timer moves,
  // probes — so this replay walk no longer scales with span size.
  for (std::size_t s = 0; s < shards; ++s) op_cursor_[s] = 0;
  while (true) {
    std::size_t best = shards;
    std::uint32_t best_span = 0;
    for (std::size_t s = 0; s < shards; ++s) {
      const auto& ops = journals_[s]->ops();
      if (op_cursor_[s] >= ops.size()) continue;
      const std::uint32_t span = ops[op_cursor_[s]].span;
      if (best == shards || span < best_span) {
        best = s;
        best_span = span;
      }
    }
    if (best == shards) break;
    apply_op(best, journals_[best]->ops()[op_cursor_[best]++]);
  }
  for (std::size_t s = 0; s < shards; ++s) {
    assert(op_cursor_[s] == journals_[s]->ops().size());
    journals_[s]->clear_ops();
  }
}

void ShardedMaficFilter::inspect_burst_threaded(std::size_t n,
                                                Decision* out) {
  ++threaded_bursts_;
  // Speculative fan-out: workers classify sub-spans against shard-local
  // state, journaling every seam side effect. The pool's fan-out/join is
  // the happens-before edge for everything the workers read and wrote.
  prepare_shards(n, out);
  pool_->submit([this](std::size_t s) { run_shard(s); },
                sharded_.shard_count());
  pool_->wait();
  complete_shards(n, out);
}

void ShardedMaficFilter::run_shard_task(void* ctx, std::size_t arg) {
  static_cast<ShardedMaficFilter*>(ctx)->run_shard(arg);
}

void ShardedMaficFilter::recv_burst(sim::PacketPtr* pkts, std::size_t n) {
  if (fleet_ == nullptr) {
    InlineFilter::recv_burst(pkts, n);
    return;
  }
  // Defer: take ownership of the span and wait for the tick drain. A
  // second same-tick span (impossible through a real LinkTransmitter)
  // concatenates onto the held one.
  const bool first = held_.empty();
  held_.reserve(held_.size() + n);
  for (std::size_t i = 0; i < n; ++i) held_.push_back(std::move(pkts[i]));
  ++fleet_bursts_;
  if (first) fleet_->enqueue(this);
}

void ShardedMaficFilter::fleet_prepare(
    std::vector<ShardWorkerPool::Task>& tasks) {
  const std::size_t n = held_.size();
  if (n > max_burst_) max_burst_ = n;
  held_decisions_.resize(n);
  batch_ptrs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) batch_ptrs_[i] = held_[i].get();
  prepare_shards(n, held_decisions_.data());
  // One task per shard, unconditionally: which shards own packets is
  // only known once the workers partition, and an empty shard's task
  // costs a chunk claim plus an integer gather scan.
  for (std::size_t s = 0; s < sharded_.shard_count(); ++s) {
    tasks.push_back(ShardWorkerPool::Task{
        &ShardedMaficFilter::run_shard_task, this, s});
  }
}

void ShardedMaficFilter::fleet_complete() {
  const std::size_t n = held_.size();
  complete_shards(n, held_decisions_.data());
  finish_burst(held_.data(), n, held_decisions_.data());
  held_.clear();
}

}  // namespace mafic::core
