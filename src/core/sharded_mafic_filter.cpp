#include "core/sharded_mafic_filter.hpp"

#include <cassert>

namespace mafic::core {

ShardedMaficFilter::ShardedMaficFilter(sim::Simulator* sim,
                                       sim::PacketFactory* factory,
                                       sim::Node* atr_node,
                                       std::size_t num_shards,
                                       MaficConfig cfg,
                                       const AddressPolicy* policy,
                                       std::uint64_t seed,
                                       ShardWorkerPool* pool)
    : atr_node_(atr_node),
      clock_(sim),
      timers_(sim),
      prober_(sim, factory, atr_node, cfg),
      shard_sinks_(ShardedFilter::usable_shard_count(num_shards)),
      pool_(pool),
      sharded_(num_shards, cfg, policy, seed,
               [this](std::size_t i) {
                 shard_sinks_[i].wire = &prober_;
                 if (pool_ == nullptr) {
                   return ShardedFilter::ShardSeams{&clock_, &timers_,
                                                   &shard_sinks_[i]};
                 }
                 // Threaded mode: each shard's timer/probe seams buffer
                 // into its journal during bursts and pass through to
                 // the shared wheel / per-shard sink otherwise.
                 journals_.push_back(std::make_unique<ShardSeamJournal>(
                     &timers_, &shard_sinks_[i]));
                 ShardSeamJournal* j = journals_.back().get();
                 return ShardedFilter::ShardSeams{&clock_, j, j};
               }) {
  if (pool_ != nullptr) {
    sub_.resize(sharded_.shard_count());
    op_cursor_.resize(sharded_.shard_count());
    sub_pos_.resize(sharded_.shard_count());
  }
}

sim::NodeId ShardedMaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

void ShardedMaficFilter::set_offered_callback(
    FilterEngine::OfferedCallback cb) {
  user_offered_ = std::move(cb);
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    if (pool_ != nullptr && user_offered_) {
      // Worker-side invocations are journaled and replayed in span
      // order; sim-thread invocations (scalar recv, timer paths) go
      // straight through.
      ShardSeamJournal* j = journals_[i].get();
      sharded_.engine(i).set_offered_callback(
          [this, j](const sim::Packet& p) {
            if (j->buffering()) {
              j->record_offered(p);
            } else {
              user_offered_(p);
            }
          });
    } else {
      sharded_.engine(i).set_offered_callback(user_offered_);
    }
  }
}

void ShardedMaficFilter::set_classification_callback(
    FilterEngine::ClassificationCallback cb) {
  user_classified_ = std::move(cb);
  for (std::size_t i = 0; i < sharded_.shard_count(); ++i) {
    if (pool_ != nullptr && user_classified_) {
      ShardSeamJournal* j = journals_[i].get();
      sharded_.engine(i).set_classification_callback(
          [this, j](const SftEntry& e, TableKind dest) {
            if (j->buffering()) {
              j->record_classified(e, dest);
            } else {
              user_classified_(e, dest);
            }
          });
    } else {
      sharded_.engine(i).set_classification_callback(user_classified_);
    }
  }
}

FlowTables::Stats ShardedMaficFilter::tables_stats() const {
  return sharded_.aggregate_tables_stats();
}

FilterEngine::VictimStats ShardedMaficFilter::victim_stats_for(
    util::Addr victim) const {
  return sharded_.victim_stats_for(victim);
}

sim::InlineFilter::Decision ShardedMaficFilter::inspect(sim::Packet& p) {
  if (max_burst_ == 0) max_burst_ = 1;
  return to_decision(sharded_.inspect(p));
}

void ShardedMaficFilter::inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                                       Decision* out) {
  if (n > max_burst_) max_burst_ = n;
  if (pool_ == nullptr) {
    inspect_burst_via(sharded_, pkts, n, batch_ptrs_, batch_verdicts_, out);
    return;
  }
  batch_ptrs_.resize(n);
  for (std::size_t i = 0; i < n; ++i) batch_ptrs_[i] = pkts[i].get();
  inspect_burst_threaded(n, out);
}

void ShardedMaficFilter::run_shard(std::size_t s) {
  SubSpan& sub = sub_[s];
  if (sub.pkts.empty()) return;
  sub.verdicts.resize(sub.pkts.size());
  sharded_.engine(s).inspect_batch_keyed(sub.pkts.data(), sub.keys.data(),
                                         sub.span_idx.data(),
                                         sub.pkts.size(),
                                         sub.verdicts.data(),
                                         journals_[s].get());
}

void ShardedMaficFilter::apply_op(std::size_t s,
                                  const ShardSeamJournal::Op& op) {
  using OpKind = ShardSeamJournal::OpKind;
  switch (op.kind) {
    case OpKind::kTimerSchedule:
    case OpKind::kTimerCancel:
    case OpKind::kTimerReschedule:
      journals_[s]->apply_timer(op);
      return;
    case OpKind::kProbe:
      shard_sinks_[s].send_probe(op.flow);
      return;
    case OpKind::kOffered:
      if (user_offered_) user_offered_(*op.pkt);
      return;
    case OpKind::kClassified:
      if (user_classified_) user_classified_(op.entry, op.dest);
      return;
  }
}

void ShardedMaficFilter::inspect_burst_threaded(std::size_t n,
                                                Decision* out) {
  ++threaded_bursts_;
  const std::size_t shards = sharded_.shard_count();

  // Shared partition pass (same routine as the serial walk), then build
  // the per-shard sub-spans in stable within-shard arrival order.
  sharded_.partition_span(batch_ptrs_.data(), n, part_);
  for (std::size_t s = 0; s < shards; ++s) sub_[s].clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (part_.hot[i] == 0) {
      out[i] = Decision::forward();
      continue;
    }
    SubSpan& sub = sub_[part_.shard[i]];
    sub.pkts.push_back(batch_ptrs_[i]);
    sub.keys.push_back(part_.keys[i]);
    sub.span_idx.push_back(static_cast<std::uint32_t>(i));
  }

  // Speculative fan-out: workers classify sub-spans against shard-local
  // state, journaling every seam side effect. The pool's fan-out/join is
  // the happens-before edge for everything the workers read and wrote.
  for (std::size_t s = 0; s < shards; ++s) journals_[s]->begin_burst();
  pool_->submit([this](std::size_t s) { run_shard(s); }, shards);
  pool_->wait();
  for (std::size_t s = 0; s < shards; ++s) journals_[s]->end_burst();

  // Deterministic merge: one forward pass over the span interleaves the
  // per-shard journals by original span index — the exact seam call
  // sequence (and verdict stream) the serial in-order walk produces.
  for (std::size_t s = 0; s < shards; ++s) {
    op_cursor_[s] = 0;
    sub_pos_[s] = 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (part_.hot[i] == 0) continue;
    const std::size_t s = part_.shard[i];
    const SubSpan& sub = sub_[s];
    assert(sub.span_idx[sub_pos_[s]] == i);
    out[i] = to_decision(sub.verdicts[sub_pos_[s]]);
    ++sub_pos_[s];
    const auto& ops = journals_[s]->ops();
    std::size_t& cur = op_cursor_[s];
    while (cur < ops.size() && ops[cur].span == i) {
      apply_op(s, ops[cur]);
      ++cur;
    }
  }
  for (std::size_t s = 0; s < shards; ++s) {
    assert(op_cursor_[s] == journals_[s]->ops().size());
    journals_[s]->clear_ops();
  }
}

}  // namespace mafic::core
