#include "core/fleet_burst_scheduler.hpp"

#include "core/sharded_mafic_filter.hpp"

namespace mafic::core {

void FleetBurstScheduler::drain() {
  // Snapshot the arrival-ordered set; anything enqueued while we
  // complete (zero-delay topologies only) stays for the next drain.
  const std::size_t count = pending_.size();
  if (count == 0) return;
  ++drains_;
  if (count > 1) ++coalesced_;
  spans_ += count;

  tasks_.clear();
  for (std::size_t i = 0; i < count; ++i) {
    pending_[i]->fleet_prepare(tasks_);
  }
  if (!tasks_.empty()) {
    pool_->submit(tasks_.data(), tasks_.size());
    pool_->wait();
  }
  for (std::size_t i = 0; i < count; ++i) {
    pending_[i]->fleet_complete();
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(count));
}

}  // namespace mafic::core
