#pragma once

/// \file mafic_filter.hpp
/// The MAFIC datapath element inside the discrete-event simulator: a thin
/// adapter that sits at the head of an ingress SimplexLink of an
/// Attack-Transit Router and feeds packets to a simulator-agnostic
/// core::FilterEngine (filter_engine.hpp), which owns the paper's Fig. 2
/// control flow.
///
/// The adapter contributes exactly the simulator bindings:
///   * Clock        -> Simulator::now()
///   * TimerService -> Simulator::schedule_timer_at / cancel / reschedule
///                     (the shared hierarchical wheel)
///   * ProbeSink    -> Prober, which crafts duplicate-ACK packets and
///                     sends them out of the ATR node
/// plus the InlineFilter verdict mapping and the DefenseActuator control
/// surface the pushback coordinator drives. Because the engine makes every
/// decision (and every RNG draw) itself, the fixed-seed classification
/// goldens pin the engine through this adapter.

#include "core/actuator.hpp"
#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/filter_engine.hpp"
#include "core/prober.hpp"
#include "core/sim_seams.hpp"
#include "sim/connector.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mafic::core {

class MaficFilter final : public sim::InlineFilter, public DefenseActuator {
 public:
  using Stats = FilterEngine::Stats;
  using ClassificationCallback = FilterEngine::ClassificationCallback;
  using OfferedCallback = FilterEngine::OfferedCallback;

  MaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
              sim::Node* atr_node, MaficConfig cfg,
              const AddressPolicy* policy, util::Rng rng);

  // --- DefenseActuator ---
  void activate(const VictimSet& victims) override {
    engine_.activate(victims);
  }
  void refresh() override { engine_.refresh(); }
  void deactivate() override { engine_.deactivate(); }
  /// Weighted per-victim SFT quotas: forwarded to the engine, consumed by
  /// the next activate().
  void set_victim_weights(std::vector<std::pair<util::Addr, double>> w) {
    engine_.set_victim_weights(std::move(w));
  }
  bool active() const noexcept override { return engine_.active(); }

  void set_classification_callback(ClassificationCallback cb) {
    engine_.set_classification_callback(std::move(cb));
  }
  void set_offered_callback(OfferedCallback cb) {
    engine_.set_offered_callback(std::move(cb));
  }

  /// The underlying decision engine (shared with standalone/sharded
  /// runtimes; see filter_engine.hpp).
  FilterEngine& engine() noexcept { return engine_; }
  const FilterEngine& engine() const noexcept { return engine_; }

  const MaficConfig& config() const noexcept { return engine_.config(); }
  const FlowTables& tables() const noexcept { return engine_.tables(); }
  const RttEstimator& rtt_estimator() const noexcept {
    return engine_.rtt_estimator();
  }
  const Prober& prober() const noexcept { return prober_; }
  const Stats& stats() const noexcept { return engine_.stats(); }
  sim::NodeId atr_node_id() const noexcept;

 protected:
  Decision inspect(sim::Packet& p) override;
  /// Bursts route through the engine's batched (pre-hash + prefetch)
  /// inspection; verdict-identical to per-packet inspect().
  void inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                     Decision* out) override;

 private:
  sim::Node* atr_node_;
  SimClock clock_;
  SimTimerService timers_;
  Prober prober_;
  FilterEngine engine_;
  std::vector<const sim::Packet*> batch_ptrs_;     ///< burst scratch
  std::vector<EngineVerdict> batch_verdicts_;      ///< burst scratch
};

}  // namespace mafic::core
