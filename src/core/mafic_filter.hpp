#pragma once

/// \file mafic_filter.hpp
/// The MAFIC datapath element — the paper's contribution. One filter sits
/// at the head of an ingress SimplexLink of an Attack-Transit Router and
/// implements the Fig. 2 control flow:
///
///   packet destined to a protected victim arrives
///     -> PDT match?  drop
///     -> NFT match?  forward
///     -> SFT match?  update the arrival counts; on timer expiry decide:
///                    rate decreased => NFT, else => PDT;
///                    while under probation drop with probability Pd
///     -> new flow:   illegal/unreachable source => PDT, drop;
///                    otherwise drop with probability Pd and, when the
///                    drop fires, admit to SFT, schedule the duplicate-ACK
///                    probe and the 2 x RTT response timer
///
/// The probe is sent at the *midpoint* of the response window: the first
/// half measures the flow's baseline arrival rate, the second half its
/// post-probe rate, and the decision compares the two halves.

#include <functional>

#include "core/actuator.hpp"
#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/flow_tables.hpp"
#include "core/prober.hpp"
#include "core/rtt_estimator.hpp"
#include "sim/connector.hpp"
#include "sim/node.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace mafic::core {

class MaficFilter final : public sim::InlineFilter, public DefenseActuator {
 public:
  struct Stats {
    std::uint64_t offered = 0;        ///< victim-bound packets inspected
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_probation = 0;  ///< Pd drops (SFT / admission)
    std::uint64_t dropped_pdt = 0;
    std::uint64_t screened_sources = 0;  ///< illegal/unreachable -> PDT
    std::uint64_t probes_issued = 0;
    std::uint64_t decided_nice = 0;
    std::uint64_t decided_malicious = 0;
  };

  /// Invoked when a probation resolves; receives the resolved entry and
  /// its destination table.
  using ClassificationCallback =
      std::function<void(const SftEntry&, TableKind)>;
  /// Invoked for every victim-bound packet inspected while active.
  using OfferedCallback = std::function<void(const sim::Packet&)>;

  MaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
              sim::Node* atr_node, MaficConfig cfg,
              const AddressPolicy* policy, util::Rng rng);

  // --- DefenseActuator ---
  void activate(const VictimSet& victims) override;
  void refresh() override;
  void deactivate() override;
  bool active() const noexcept override { return active_; }

  void set_classification_callback(ClassificationCallback cb) {
    on_classified_ = std::move(cb);
  }
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  const MaficConfig& config() const noexcept { return cfg_; }
  const FlowTables& tables() const noexcept { return tables_; }
  const RttEstimator& rtt_estimator() const noexcept { return rtt_; }
  const Prober& prober() const noexcept { return prober_; }
  const Stats& stats() const noexcept { return stats_; }
  sim::NodeId atr_node_id() const noexcept;

 protected:
  Decision inspect(sim::Packet& p) override;

 private:
  /// Resolves a probation according to the two half-window counts.
  TableKind decide(std::uint64_t key);
  void admit(const sim::Packet& p, std::uint64_t key);
  void schedule_probe(SftEntry& e);
  void schedule_decision(SftEntry& e);
  void cancel_entry_timers(const SftEntry& e);

  sim::Simulator* sim_;
  sim::Node* atr_node_;
  MaficConfig cfg_;
  FlowTables tables_;
  RttEstimator rtt_;
  Prober prober_;
  const AddressPolicy* policy_;
  util::Rng rng_;

  bool active_ = false;
  VictimSet victims_;
  double expires_at_ = 0.0;
  sim::TimerId expiry_timer_ = sim::kInvalidTimer;

  ClassificationCallback on_classified_;
  OfferedCallback on_offered_;
  Stats stats_;
};

}  // namespace mafic::core
