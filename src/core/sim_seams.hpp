#pragma once

/// \file sim_seams.hpp
/// Discrete-event-simulator implementations of the engine seams
/// (engine_seams.hpp), shared by the scalar adapter (MaficFilter) and the
/// sharded adapter (ShardedMaficFilter):
///   SimClock        -> Simulator::now()
///   SimTimerService -> the simulator's shared hierarchical timer wheel
/// The ProbeSink binding is Prober (prober.hpp), which puts real packets
/// on the ATR's wire. Also home to the shared EngineVerdict ->
/// InlineFilter::Decision mapping so the two adapters cannot drift.

#include "core/engine_seams.hpp"
#include "core/filter_engine.hpp"
#include "sim/connector.hpp"
#include "sim/simulator.hpp"

namespace mafic::core {

/// Maps an engine verdict onto the sim datapath's drop vocabulary; both
/// sim adapters use this one mapping so ledger drop accounting can never
/// diverge between the scalar and sharded paths.
inline sim::InlineFilter::Decision to_decision(EngineVerdict v) noexcept {
  switch (v) {
    case EngineVerdict::kForward:
      return sim::InlineFilter::Decision::forward();
    case EngineVerdict::kDropProbation:
      return sim::InlineFilter::Decision::drop(
          sim::DropReason::kDefenseProbe);
    case EngineVerdict::kDropPdt:
      return sim::InlineFilter::Decision::drop(sim::DropReason::kDefensePdt);
  }
  return sim::InlineFilter::Decision::forward();
}

/// Stages a burst span for an indirect inspect_batch and translates the
/// verdicts into datapath decisions — the shared body of both adapters'
/// inspect_burst. `batch` is a FilterEngine or a ShardedFilter (both
/// expose inspect_batch(const Packet* const*, n, out)); `ptrs` and
/// `verdicts` are caller-owned scratch, reused across bursts so steady
/// state allocates nothing.
template <typename Batch>
inline void inspect_burst_via(Batch& batch, sim::PacketPtr* pkts,
                              std::size_t n,
                              std::vector<const sim::Packet*>& ptrs,
                              std::vector<EngineVerdict>& verdicts,
                              sim::InlineFilter::Decision* out) {
  ptrs.resize(n);
  verdicts.resize(n);
  for (std::size_t i = 0; i < n; ++i) ptrs[i] = pkts[i].get();
  batch.inspect_batch(ptrs.data(), n, verdicts.data());
  for (std::size_t i = 0; i < n; ++i) out[i] = to_decision(verdicts[i]);
}

/// Clock seam over the simulation clock.
class SimClock final : public Clock {
 public:
  explicit SimClock(sim::Simulator* sim) noexcept : sim_(sim) {}
  double now() const noexcept override { return sim_->now(); }

 private:
  sim::Simulator* sim_;
};

/// TimerService seam over the simulator's hierarchical timer wheel.
class SimTimerService final : public TimerService {
 public:
  explicit SimTimerService(sim::Simulator* sim) noexcept : sim_(sim) {}
  sim::TimerId schedule_at(double t, TimerFn fn) override {
    return sim_->schedule_timer_at(t, std::move(fn));
  }
  bool cancel(sim::TimerId id) override { return sim_->cancel_timer(id); }
  bool reschedule(sim::TimerId id, double t) override {
    return sim_->reschedule_timer(id, t);
  }

 private:
  sim::Simulator* sim_;
};

}  // namespace mafic::core
