#include "core/mafic_filter.hpp"

namespace mafic::core {

MaficFilter::MaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
                         sim::Node* atr_node, MaficConfig cfg,
                         const AddressPolicy* policy, util::Rng rng)
    : atr_node_(atr_node),
      clock_(sim),
      timers_(sim),
      prober_(sim, factory, atr_node, cfg),
      engine_(cfg, &clock_, &timers_, &prober_, policy, rng) {}

sim::NodeId MaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

sim::InlineFilter::Decision MaficFilter::inspect(sim::Packet& p) {
  switch (engine_.inspect(p)) {
    case EngineVerdict::kForward:
      return Decision::forward();
    case EngineVerdict::kDropProbation:
      return Decision::drop(sim::DropReason::kDefenseProbe);
    case EngineVerdict::kDropPdt:
      return Decision::drop(sim::DropReason::kDefensePdt);
  }
  return Decision::forward();
}

}  // namespace mafic::core
