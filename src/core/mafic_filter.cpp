#include "core/mafic_filter.hpp"

namespace mafic::core {

MaficFilter::MaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
                         sim::Node* atr_node, MaficConfig cfg,
                         const AddressPolicy* policy, util::Rng rng)
    : atr_node_(atr_node),
      clock_(sim),
      timers_(sim),
      prober_(sim, factory, atr_node, cfg),
      engine_(cfg, &clock_, &timers_, &prober_, policy, rng) {}

sim::NodeId MaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

sim::InlineFilter::Decision MaficFilter::inspect(sim::Packet& p) {
  return to_decision(engine_.inspect(p));
}

void MaficFilter::inspect_burst(sim::PacketPtr* pkts, std::size_t n,
                                Decision* out) {
  inspect_burst_via(engine_, pkts, n, batch_ptrs_, batch_verdicts_, out);
}

}  // namespace mafic::core
