#include "core/mafic_filter.hpp"

#include <algorithm>

namespace mafic::core {

MaficFilter::MaficFilter(sim::Simulator* sim, sim::PacketFactory* factory,
                         sim::Node* atr_node, MaficConfig cfg,
                         const AddressPolicy* policy, util::Rng rng)
    : sim_(sim),
      atr_node_(atr_node),
      cfg_(cfg),
      tables_(cfg_),
      rtt_(cfg_),
      prober_(sim, factory, atr_node, cfg_),
      policy_(policy),
      rng_(rng) {
  // Probations leaving the SFT without a decision (capacity eviction or
  // flush) must not leave their probe/decision timers armed: the stale
  // callbacks could fire into a *new* probation of the same key.
  tables_.set_eviction_hook(
      [this](const SftEntry& e) { cancel_entry_timers(e); });
}

sim::NodeId MaficFilter::atr_node_id() const noexcept {
  return atr_node_->id();
}

void MaficFilter::activate(const VictimSet& victims) {
  for (const auto v : victims) victims_.insert(v);
  active_ = true;
  refresh();
}

void MaficFilter::refresh() {
  if (!active_ || cfg_.refresh_timeout <= 0.0) return;
  expires_at_ = sim_->now() + cfg_.refresh_timeout;
  // Keep-alive on the wheel: each refresh is an O(1) reschedule instead of
  // abandoning a lazily-cancelled heap event.
  if (expiry_timer_ != sim::kInvalidTimer &&
      sim_->reschedule_timer(expiry_timer_, expires_at_)) {
    return;
  }
  expiry_timer_ = sim_->schedule_timer_at(expires_at_, [this] {
    expiry_timer_ = sim::kInvalidTimer;
    if (active_) deactivate();  // "Pushback Continue? -> No"
  });
}

void MaficFilter::deactivate() {
  active_ = false;
  victims_.clear();
  tables_.flush();  // "End dropping & Flush all tables"
  rtt_.clear();
  if (expiry_timer_ != sim::kInvalidTimer) {
    sim_->cancel_timer(expiry_timer_);
    expiry_timer_ = sim::kInvalidTimer;
  }
}

sim::InlineFilter::Decision MaficFilter::inspect(sim::Packet& p) {
  if (!active_) return Decision::forward();
  if (!victims_.contains(p.label.dst)) return Decision::forward();
  if (p.proto == sim::Protocol::kControl) return Decision::forward();

  ++stats_.offered;
  if (on_offered_) on_offered_(p);

  const std::uint64_t key = sim::hash_label(p.label);
  const double now = sim_->now();

  // Router-side RTT refinement from the timestamp echo.
  if (p.tsecr > 0.0) rtt_.observe(key, now - p.tsecr);

  switch (tables_.classify(key, now)) {
    case TableKind::kPermanentDrop:
      ++stats_.dropped_pdt;
      return Decision::drop(sim::DropReason::kDefensePdt);

    case TableKind::kNice:
      ++stats_.forwarded;
      return Decision::forward();

    case TableKind::kSuspicious: {
      SftEntry* e = tables_.find_sft(key);
      if (now >= e->deadline) {
        // Timer expired and the decision event has not fired yet (same
        // timestamp): decide now, then treat this packet under the new
        // table.
        const TableKind dest = decide(key);
        if (dest == TableKind::kPermanentDrop) {
          ++stats_.dropped_pdt;
          return Decision::drop(sim::DropReason::kDefensePdt);
        }
        ++stats_.forwarded;
        return Decision::forward();
      }
      if (now < e->split_time) {
        ++e->baseline_count;
      } else {
        ++e->probe_count;
      }
      const bool drop_it =
          cfg_.drop_all_in_sft || rng_.bernoulli(cfg_.drop_probability);
      if (drop_it) {
        ++stats_.dropped_probation;
        return Decision::drop(sim::DropReason::kDefenseProbe);
      }
      ++stats_.forwarded;
      return Decision::forward();
    }

    case TableKind::kNone:
      break;
  }

  // New flow. Screen clearly-bogus sources first (paper section III-A).
  if (cfg_.address_screening && policy_ != nullptr &&
      !policy_->acceptable(p.label.src)) {
    tables_.add_pdt_direct(key);
    ++stats_.screened_sources;
    ++stats_.dropped_pdt;
    return Decision::drop(sim::DropReason::kDefensePdt);
  }

  // "Drop packet with probability Pd"; the drop is what opens probation.
  if (rng_.bernoulli(cfg_.drop_probability)) {
    admit(p, key);
    ++stats_.dropped_probation;
    return Decision::drop(sim::DropReason::kDefenseProbe);
  }
  ++stats_.forwarded;
  return Decision::forward();
}

void MaficFilter::admit(const sim::Packet& p, std::uint64_t key) {
  const double window = cfg_.probe_window_rtt_multiple * rtt_.rtt(key);
  SftEntry* e = tables_.admit_sft(key, p.label, sim_->now(), window);
  if (e == nullptr) return;  // raced into another table (should not happen)
  // The admitting packet itself is NOT counted into the baseline half:
  // it is present by construction (it opened the probation), so counting
  // it would bias the baseline up by one and let arrival jitter fake a
  // "decrease" on slow flows.
  if (cfg_.probe_enabled) schedule_probe(*e);
  schedule_decision(*e);
}

void MaficFilter::schedule_probe(SftEntry& e) {
  const std::uint64_t key = e.key;
  e.probe_timer = sim_->schedule_timer_at(e.split_time, [this, key] {
    if (!active_) return;
    SftEntry* entry = tables_.find_sft(key);
    if (entry == nullptr || entry->probe_sent) return;
    entry->probe_sent = true;
    entry->probe_timer = sim::kInvalidTimer;
    ++stats_.probes_issued;
    prober_.probe(entry->label);
  });
}

void MaficFilter::schedule_decision(SftEntry& e) {
  const std::uint64_t key = e.key;
  // Epsilon after the deadline so that a packet arriving exactly at the
  // deadline is handled by the lazy path first (the wheel then rounds up
  // to its next tick, which the lazy path also covers).
  e.decision_timer =
      sim_->schedule_timer_at(e.deadline + 1e-9, [this, key] {
        if (!active_) return;
        if (tables_.find_sft(key) != nullptr) decide(key);
      });
}

void MaficFilter::cancel_entry_timers(const SftEntry& e) {
  if (e.probe_timer != sim::kInvalidTimer) sim_->cancel_timer(e.probe_timer);
  if (e.decision_timer != sim::kInvalidTimer) {
    sim_->cancel_timer(e.decision_timer);
  }
}

TableKind MaficFilter::decide(std::uint64_t key) {
  SftEntry* e = tables_.find_sft(key);
  if (e == nullptr) return TableKind::kNone;

  cancel_entry_timers(*e);

  bool decreased;
  if (e->baseline_count < cfg_.min_baseline_packets) {
    // Too thin to judge: benefit of the doubt.
    decreased = true;
  } else {
    const bool relative_drop =
        static_cast<double>(e->probe_count) <
        cfg_.decrease_ratio * static_cast<double>(e->baseline_count);
    const bool absolute_drop =
        e->probe_count + cfg_.min_absolute_decrease <= e->baseline_count;
    decreased = relative_drop && absolute_drop;
  }

  const TableKind dest =
      decreased ? TableKind::kNice : TableKind::kPermanentDrop;
  const SftEntry resolved = tables_.resolve(key, dest, sim_->now());
  if (dest == TableKind::kNice) {
    ++stats_.decided_nice;
  } else {
    ++stats_.decided_malicious;
  }
  if (on_classified_) on_classified_(resolved, dest);
  return dest;
}

}  // namespace mafic::core
