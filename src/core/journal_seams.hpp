#pragma once

/// \file journal_seams.hpp
/// Buffering seam implementations for the speculative threaded shard
/// path (sharded_mafic_filter.hpp). One ShardSeamJournal per shard plays
/// TimerService + ProbeSink + BatchSequencer for that shard's engine:
///
///   * Outside a burst (control plane, timer callbacks) it is a thin
///     passthrough to the underlying seams — the shard behaves exactly
///     as if it were wired to them directly.
///   * Between begin_burst()/end_burst() — while the shard's sub-span
///     runs on a worker thread — every seam call is RECORDED instead of
///     executed, tagged with the original span index of the packet that
///     produced it (via BatchSequencer::begin_packet). The driving
///     thread then interleaves the per-shard journals by span index and
///     replays the ops literally, reproducing the exact underlying-seam
///     call sequence a serial in-order walk of the whole span would have
///     made. Same schedule order => same same-tick firing order on the
///     wheel => the timer, probe and callback streams are bit-identical
///     to the serial path.
///
/// Timer ids survive the deferral through a generation-tagged slot
/// table: schedule_at returns a slot handle immediately (the engine
/// stores it in the SftEntry), the slot resolves to the real underlying
/// id once the merge applies the schedule, and the callback handed to
/// the underlying service is a 16-byte trampoline (inline-storable in
/// TimerFn) that releases the slot before running the engine's callback.
/// Slots mirror underlying liveness exactly — every fire and cancel
/// passes through here — so cancel/reschedule can answer truthfully from
/// worker threads without touching the underlying wheel, and stale
/// handles (ABA across slot reuse) are rejected by the generation check,
/// matching sim::TimerWheel's own id semantics.
///
/// Thread contract: one journal belongs to one shard. Worker threads
/// touch it only between begin_burst/end_burst and only from the single
/// worker running that shard's sub-span; the driving thread owns it the
/// rest of the time (handoff ordering is the worker pool's fan-out/join,
/// see shard_worker_pool.hpp). The underlying seams are only ever called
/// from the driving thread.

#include <cassert>
#include <cstdint>
#include <vector>

#include "core/engine_seams.hpp"
#include "core/flow_tables.hpp"
#include "sim/packet.hpp"
#include "sim/types.hpp"

namespace mafic::core {

class ShardSeamJournal final : public TimerService,
                               public ProbeSink,
                               public BatchSequencer {
 public:
  enum class OpKind : std::uint8_t {
    kTimerSchedule,
    kTimerCancel,
    kTimerReschedule,
    kProbe,
    kOffered,
    kClassified,
  };

  /// One recorded seam side effect. Per-packet ops appear in the journal
  /// in issue order; packets appear in sub-span (= ascending span index)
  /// order, which is what lets the merge interleave shards with a single
  /// forward pass.
  struct Op {
    std::uint32_t span = 0;  ///< original span index of the packet
    OpKind kind = OpKind::kTimerSchedule;
    std::uint32_t slot = 0;              ///< timer ops: slot index
    sim::TimerId id = sim::kInvalidTimer;  ///< cancel/reschedule handle
    double time = 0.0;                   ///< reschedule target
    const sim::Packet* pkt = nullptr;    ///< offered (alive until merge)
    sim::FlowLabel flow{};               ///< probe
    SftEntry entry{};                    ///< classified (resolved copy)
    TableKind dest = TableKind::kNone;   ///< classified destination
  };

  /// Both underlying seams are non-owning and must outlive the journal.
  ShardSeamJournal(TimerService* timers, ProbeSink* probes)
      : timers_(timers), probes_(probes) {}

  ShardSeamJournal(const ShardSeamJournal&) = delete;
  ShardSeamJournal& operator=(const ShardSeamJournal&) = delete;

  // --- burst lifecycle (driving thread only) ---------------------------
  void begin_burst() {
    assert(ops_.empty() && "previous burst's journal not drained");
    buffering_ = true;
  }
  void end_burst() { buffering_ = false; }
  bool buffering() const noexcept { return buffering_; }

  const std::vector<Op>& ops() const noexcept { return ops_; }
  void clear_ops() { ops_.clear(); }

  /// Replays one journaled timer op against the underlying service
  /// (driving thread, after end_burst). Ops must be applied in journal
  /// order per shard, interleaved across shards by span index.
  void apply_timer(const Op& op) {
    switch (op.kind) {
      case OpKind::kTimerSchedule: {
        Slot& s = slots_[op.slot];
        assert(s.state == Slot::kBuffered);
        s.real = timers_->schedule_at(
            s.time, make_trampoline(op.slot, s.gen));
        s.state = Slot::kArmed;
        return;
      }
      case OpKind::kTimerCancel: {
        const std::uint32_t idx = index_of(op.id);
        Slot& s = slots_[idx];
        assert(s.state == Slot::kArmed && s.cancel_queued);
        timers_->cancel(s.real);
        release(idx);
        return;
      }
      case OpKind::kTimerReschedule: {
        const std::uint32_t idx = index_of(op.id);
        Slot& s = slots_[idx];
        if (s.gen != gen_of(op.id) || s.state != Slot::kArmed ||
            s.cancel_queued) {
          return;  // raced with a later journaled cancel; already settled
        }
        timers_->reschedule(s.real, op.time);
        return;
      }
      default:
        assert(false && "apply_timer called with a non-timer op");
    }
  }

  /// Live timer slots (armed or buffered) — diagnostics for tests.
  std::size_t live_slots() const noexcept {
    return slots_.size() - free_.size();
  }

  // --- callback journaling (worker thread, buffering only) -------------
  // maficlint: hot
  void record_offered(const sim::Packet& p) {
    Op op;
    op.span = current_span_;
    op.kind = OpKind::kOffered;
    op.pkt = &p;
    // maficlint: allow(hotpath) journal buffer keeps its capacity across spans, so growth amortizes to zero in steady state
    ops_.push_back(op);
  }
  // maficlint: hot
  void record_classified(const SftEntry& e, TableKind dest) {
    Op op;
    op.span = current_span_;
    op.kind = OpKind::kClassified;
    op.entry = e;
    op.dest = dest;
    // maficlint: allow(hotpath) journal buffer keeps its capacity across spans, so growth amortizes to zero in steady state
    ops_.push_back(op);
  }

  // --- TimerService ----------------------------------------------------
  sim::TimerId schedule_at(double t, TimerFn fn) override {
    const std::uint32_t idx = alloc_slot();
    Slot& s = slots_[idx];
    s.fn = std::move(fn);
    s.time = t;
    if (buffering_) {
      s.state = Slot::kBuffered;
      Op op;
      op.span = current_span_;
      op.kind = OpKind::kTimerSchedule;
      op.slot = idx;
      ops_.push_back(op);
    } else {
      s.real = timers_->schedule_at(t, make_trampoline(idx, s.gen));
      s.state = Slot::kArmed;
    }
    return make_id(idx, s.gen);
  }

  bool cancel(sim::TimerId id) override {
    const std::uint32_t idx = index_of(id);
    if (idx >= slots_.size()) return false;
    Slot& s = slots_[idx];
    if (s.gen != gen_of(id) || s.state == Slot::kFree) return false;
    if (buffering_) {
      if (s.cancel_queued) return false;  // second cancel: already revoked
      // A kBuffered slot was scheduled earlier in this same burst; the
      // literal replay will put it on the wheel and immediately revoke
      // it, exactly as a serial walk would have.
      s.cancel_queued = true;
      Op op;
      op.span = current_span_;
      op.kind = OpKind::kTimerCancel;
      op.id = id;
      ops_.push_back(op);
      return true;
    }
    assert(s.state == Slot::kArmed);
    const bool revoked = timers_->cancel(s.real);
    release(idx);
    return revoked;
  }

  bool reschedule(sim::TimerId id, double t) override {
    const std::uint32_t idx = index_of(id);
    if (idx >= slots_.size()) return false;
    Slot& s = slots_[idx];
    if (s.gen != gen_of(id) || s.state == Slot::kFree) return false;
    if (buffering_) {
      if (s.cancel_queued) return false;
      Op op;
      op.span = current_span_;
      op.kind = OpKind::kTimerReschedule;
      op.id = id;
      op.time = t;
      ops_.push_back(op);
      return true;
    }
    assert(s.state == Slot::kArmed);
    return timers_->reschedule(s.real, t);
  }

  // --- ProbeSink -------------------------------------------------------
  /// Never actually hit from worker threads today (probes are requested
  /// from timer callbacks, which only fire on the driving thread), but
  /// buffered defensively so the seam contract holds if that changes.
  void send_probe(const sim::FlowLabel& flow) override {
    if (buffering_) {
      Op op;
      op.span = current_span_;
      op.kind = OpKind::kProbe;
      op.flow = flow;
      ops_.push_back(op);
      return;
    }
    probes_->send_probe(flow);
  }

  /// The underlying sink, for the merge to replay journaled probes into.
  ProbeSink* underlying_probes() const noexcept { return probes_; }

  // --- BatchSequencer --------------------------------------------------
  void begin_packet(std::uint32_t span_index) override {
    current_span_ = span_index;
  }

 private:
  struct Slot {
    enum State : std::uint8_t { kFree, kBuffered, kArmed };
    TimerFn fn;
    double time = 0.0;
    sim::TimerId real = sim::kInvalidTimer;
    std::uint32_t gen = 1;
    State state = kFree;
    bool cancel_queued = false;
  };

  /// Slot handle layout: generation in the high 32 bits, index+1 in the
  /// low 32 (the +1 keeps every handle != sim::kInvalidTimer).
  static sim::TimerId make_id(std::uint32_t idx, std::uint32_t gen) noexcept {
    return (static_cast<sim::TimerId>(gen) << 32) | (idx + 1);
  }
  static std::uint32_t index_of(sim::TimerId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  static std::uint32_t gen_of(sim::TimerId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  std::uint32_t alloc_slot() {
    if (!free_.empty()) {
      const std::uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void release(std::uint32_t idx) {
    Slot& s = slots_[idx];
    s.fn = TimerFn{};
    s.real = sim::kInvalidTimer;
    ++s.gen;  // outstanding handles to this slot are now stale
    s.state = Slot::kFree;
    s.cancel_queued = false;
    free_.push_back(idx);
  }

  /// 16-byte fire trampoline: releases the slot (so the engine's own
  /// stale-cancel of a fired timer is a clean miss), then runs the
  /// engine's callback. Fits TimerFn's inline storage, so the underlying
  /// wheel stays allocation-free.
  TimerFn make_trampoline(std::uint32_t idx, std::uint32_t gen) {
    return [this, idx, gen] {
      Slot& s = slots_[idx];
      if (s.gen != gen || s.state != Slot::kArmed) return;
      TimerFn fn = std::move(s.fn);
      release(idx);
      fn();
    };
  }

  TimerService* timers_;
  ProbeSink* probes_;

  bool buffering_ = false;
  std::uint32_t current_span_ = 0;
  std::vector<Op> ops_;

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace mafic::core
