#pragma once

/// \file actuator.hpp
/// Common control interface for in-router defense policies. The pushback
/// coordinator activates actuators at identified ATRs, refreshes them while
/// the attack persists ("Pushback Continue?"), and deactivates them — at
/// which point MAFIC flushes all tables (Fig. 2 exit arc).

#include <unordered_set>

#include "util/ip.hpp"

namespace mafic::core {

using VictimSet = std::unordered_set<util::Addr>;

class DefenseActuator {
 public:
  virtual ~DefenseActuator() = default;

  /// Starts defending the given victim addresses.
  virtual void activate(const VictimSet& victims) = 0;

  /// Keep-alive from the coordinator; extends any activation timeout.
  virtual void refresh() = 0;

  /// Ends the response and clears all per-flow state.
  virtual void deactivate() = 0;

  virtual bool active() const noexcept = 0;
};

}  // namespace mafic::core
