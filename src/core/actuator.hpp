#pragma once

/// \file actuator.hpp
/// Common control interface for in-router defense policies. The pushback
/// coordinator activates actuators at identified ATRs, refreshes them while
/// the attack persists ("Pushback Continue?"), and deactivates them — at
/// which point MAFIC flushes all tables (Fig. 2 exit arc).

#include <algorithm>
#include <initializer_list>
#include <vector>

#include "util/ip.hpp"

namespace mafic::core {

/// The set of protected victim addresses, stored as a sorted flat vector.
/// Iteration order is ascending address order — deterministic by
/// construction, so anything derived from walking the set (victim class
/// registration, per-victim emission, golden fingerprints) cannot depend
/// on hash-bucket layout. The set is tiny (one victim in the common case,
/// single digits under carpet-bombing), so the binary-search contains()
/// on the packet gate is at worst a few compares over one cache line.
class VictimSet {
 public:
  VictimSet() = default;
  VictimSet(std::initializer_list<util::Addr> addrs) {
    for (const util::Addr a : addrs) insert(a);
  }
  template <typename It>
  VictimSet(It first, It last) {
    for (; first != last; ++first) insert(*first);
  }

  void insert(util::Addr a) {
    const auto it = std::lower_bound(addrs_.begin(), addrs_.end(), a);
    if (it == addrs_.end() || *it != a) addrs_.insert(it, a);
  }
  bool contains(util::Addr a) const noexcept {
    const auto it = std::lower_bound(addrs_.begin(), addrs_.end(), a);
    return it != addrs_.end() && *it == a;
  }

  bool empty() const noexcept { return addrs_.empty(); }
  std::size_t size() const noexcept { return addrs_.size(); }
  void clear() noexcept { addrs_.clear(); }

  /// Ascending address order.
  std::vector<util::Addr>::const_iterator begin() const noexcept {
    return addrs_.begin();
  }
  std::vector<util::Addr>::const_iterator end() const noexcept {
    return addrs_.end();
  }

 private:
  std::vector<util::Addr> addrs_;
};

class DefenseActuator {
 public:
  virtual ~DefenseActuator() = default;

  /// Starts defending the given victim addresses.
  virtual void activate(const VictimSet& victims) = 0;

  /// Keep-alive from the coordinator; extends any activation timeout.
  virtual void refresh() = 0;

  /// Ends the response and clears all per-flow state.
  virtual void deactivate() = 0;

  virtual bool active() const noexcept = 0;
};

}  // namespace mafic::core
