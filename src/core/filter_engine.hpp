#pragma once

/// \file filter_engine.hpp
/// The simulator-agnostic MAFIC decision engine — the paper's Fig. 2
/// control flow with nothing else attached:
///
///   packet destined to a protected victim arrives
///     -> PDT match?  drop
///     -> NFT match?  forward
///     -> SFT match?  update the arrival counts; on timer expiry decide:
///                    rate decreased => NFT, else => PDT;
///                    while under probation drop with probability Pd
///     -> new flow:   illegal/unreachable source => PDT, drop;
///                    otherwise drop with probability Pd and, when the
///                    drop fires, admit to SFT, schedule the duplicate-ACK
///                    probe and the 2 x RTT response timer
///
/// The engine owns the per-flow state (FlowTables store + arena, RTT
/// estimator, Pd RNG) and reaches its environment only through the
/// Clock / TimerService / ProbeSink seams (engine_seams.hpp). One engine
/// is single-threaded by construction; multi-core deployments run one
/// engine per shard with flows partitioned by key hash (sharded_filter.hpp)
/// and never share an engine across threads.
///
/// Batched inspection: inspect_batch() and friends run the staged SoA
/// verdict pipeline (verdict_pipeline.hpp) — a 4-wide unrolled pre-hash
/// pass feeding FlatTable::prefetch, a read-only peek pass materializing
/// per-packet table state into parallel arrays, a table-driven lane
/// select, and one in-arrival-order verdict walk whose fast lanes
/// (resident NFT/PDT, live probations) skip the scalar branch ladder.
/// Decisions, stats, RNG draws and callback order are identical to
/// per-packet inspect() calls in the same order: stateful packets fall
/// back to the scalar tail, and a per-packet epoch check reroutes
/// anything materialized before a structural table mutation.

#include <functional>
#include <map>

#include "core/actuator.hpp"
#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/engine_seams.hpp"
#include "core/flow_tables.hpp"
#include "core/rtt_estimator.hpp"
#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace mafic::core {

/// The engine's verdict for one packet. The sim adapter maps these onto
/// sim::DropReason; standalone drivers count them directly.
enum class EngineVerdict : std::uint8_t {
  kForward,
  kDropProbation,  ///< Pd drop (SFT window / admission coin)
  kDropPdt,        ///< Permanently Drop Table (incl. screened sources)
};

class FilterEngine {
 public:
  struct Stats {
    std::uint64_t offered = 0;  ///< victim-bound packets inspected
    std::uint64_t forwarded = 0;
    std::uint64_t dropped_probation = 0;  ///< Pd drops (SFT / admission)
    std::uint64_t dropped_pdt = 0;
    std::uint64_t screened_sources = 0;  ///< illegal/unreachable -> PDT
    std::uint64_t probes_issued = 0;
    std::uint64_t decided_nice = 0;
    std::uint64_t decided_malicious = 0;
  };

  /// Per-victim decision accounting (multi-victim scenarios): how this
  /// victim's flows resolved. Keyed by the flow label's destination, so
  /// one engine protecting several victims reports each independently.
  struct VictimStats {
    std::uint64_t decided_nice = 0;
    std::uint64_t decided_malicious = 0;
    std::uint64_t screened_sources = 0;
    /// Probations of this victim evicted at SFT capacity before their
    /// deadline (flushes excluded). Nonzero for a victim whose own flood
    /// churns the table; with quotas on it stays zero for a victim whose
    /// working set fits inside its reserved slots.
    std::uint64_t evictions = 0;
    /// Subset of `evictions` where this victim, over its quota, paid a
    /// slot back for another victim's admission (EvictCause::kQuota).
    std::uint64_t quota_evictions = 0;
  };

  /// Invoked when a probation resolves; receives the resolved entry and
  /// its destination table.
  using ClassificationCallback =
      std::function<void(const SftEntry&, TableKind)>;
  /// Invoked for every victim-bound packet inspected while active.
  using OfferedCallback = std::function<void(const sim::Packet&)>;

  /// All seam pointers are non-owning and must outlive the engine.
  /// `policy` may be null (no source screening).
  FilterEngine(MaficConfig cfg, Clock* clock, TimerService* timers,
               ProbeSink* probes, const AddressPolicy* policy,
               util::Rng rng);

  // Not movable: tables_/rtt_ reference the engine's own cfg_, and the
  // eviction hook captures `this`. Heap-allocate and keep put.
  FilterEngine(const FilterEngine&) = delete;
  FilterEngine& operator=(const FilterEngine&) = delete;

  // --- activation (Fig. 2 outer loop) ---------------------------------
  void activate(const VictimSet& victims);

  /// Registers per-victim quota weights (e.g. provisioned bandwidth in
  /// bps) consumed by the next activate(): SFT reservations become
  /// proportional to the weights instead of an equal split
  /// (FlowTables::set_victim_classes weighted overload). Victims absent
  /// from the map weigh 1.0. Call before activate(); calling while active
  /// takes effect on the next activation (activate() is the only point
  /// where classes are (re)registered). Empty map = equal split.
  void set_victim_weights(std::vector<std::pair<util::Addr, double>> weights);
  void refresh();
  void deactivate();
  bool active() const noexcept { return active_; }

  // --- datapath --------------------------------------------------------
  EngineVerdict inspect(const sim::Packet& p);

  /// inspect() with the label hash already computed (callers that hashed
  /// the label to route, e.g. ShardedFilter, avoid hashing twice).
  /// `key` must equal sim::hash_label(p.label).
  EngineVerdict inspect_hashed(const sim::Packet& p, std::uint64_t key);

  /// Inspects `n` packets, writing one verdict per packet. Pre-hashes and
  /// prefetches a window of keys ahead of classification; allocation-free
  /// in steady state. Equivalent to calling inspect() per packet in order.
  void inspect_batch(const sim::Packet* pkts, std::size_t n,
                     EngineVerdict* out);

  /// inspect_batch over an indirect span (pointer array instead of a
  /// contiguous packet array) — what a simulator burst delivers. Same
  /// windowed pre-hash + prefetch, same verdicts.
  void inspect_batch(const sim::Packet* const* pkts, std::size_t n,
                     EngineVerdict* out);

  /// Journaled sub-span variant for the speculative threaded shard path:
  /// classifies `n` packets whose label hashes were already computed by
  /// the caller's partition pass (`keys[i] == hash_label(pkts[i]->label)`)
  /// in order, announcing each packet's original span index from
  /// `span_idx` to `seq` immediately before inspecting it, so buffering
  /// seams (journal_seams.hpp) can tag the packet's side effects.
  /// Verdict-identical to inspect_batch over the same packets; keeps the
  /// same windowed prefetch. `seq` may be null (indices are then unused).
  void inspect_batch_keyed(const sim::Packet* const* pkts,
                           const std::uint64_t* keys,
                           const std::uint32_t* span_idx, std::size_t n,
                           EngineVerdict* out, BatchSequencer* seq);

  /// The batched-inspection hot gate: true when `p` is inspectable
  /// victim-bound traffic (engine active, protected destination, not
  /// control). Cold packets forward without hashing or prefetching.
  /// One predicate shared by inspect_batch here and
  /// ShardedFilter::inspect_batch, so the batched paths cannot drift.
  /// The ubiquitous one-victim activation resolves to three compares
  /// instead of a hash-set probe — this runs once (or twice, on the
  /// re-gating paths) per packet.
  bool wants(const sim::Packet& p) const noexcept {
    if (!active_ || p.proto == sim::Protocol::kControl) return false;
    return single_victim_ ? p.label.dst == lone_victim_
                          : victims_.contains(p.label.dst);
  }

  /// The engine's current clock reading (one virtual call; the batched
  /// pipeline samples it once per batch instead of once per packet —
  /// every driver advances time only between batches).
  double now() const noexcept { return clock_->now(); }

  void set_classification_callback(ClassificationCallback cb) {
    on_classified_ = std::move(cb);
  }
  void set_offered_callback(OfferedCallback cb) {
    on_offered_ = std::move(cb);
  }

  const MaficConfig& config() const noexcept { return cfg_; }
  const FlowTables& tables() const noexcept { return tables_; }
  const RttEstimator& rtt_estimator() const noexcept { return rtt_; }
  const Stats& stats() const noexcept { return stats_; }
  /// Ordered by victim address, so per-victim emission (reports, golden
  /// fingerprints) never depends on hash-bucket iteration order.
  const std::map<util::Addr, VictimStats>& victim_stats() const noexcept {
    return victim_stats_;
  }
  const VictimSet& victims() const noexcept { return victims_; }

 private:
  /// The staged batch pipeline reaches the engine's tables, stats, RNG
  /// and callbacks directly; it lives in its own header so FilterEngine
  /// and ShardedFilter share ONE lane implementation.
  friend class VerdictPipeline;

  /// The Fig. 2 walk with the label hash already computed (shared by the
  /// scalar and batched paths).
  EngineVerdict inspect_keyed(const sim::Packet& p, std::uint64_t key);
  /// The Fig. 2 walk AFTER the per-packet prologue (offered stats +
  /// callback, RTT observe): classification against the tables at `now`,
  /// including the stateful paths (lazy NFT expiry, due-probation decide,
  /// screening, Pd admission). The batch pipeline's slow lane calls this
  /// directly — it is the oracle the fast lanes are checked against.
  EngineVerdict classify_slow(const sim::Packet& p, std::uint64_t key,
                              double now);
  /// Windowed pipeline walk over any packet accessor.
  template <typename GetPacket>
  void inspect_batch_impl(GetPacket&& get, std::size_t n,
                          EngineVerdict* out);
  /// The Pd coin under the configured CoinMode.
  bool pd_coin(const sim::Packet& p, std::uint64_t key);
  /// The stateless CoinMode::kPacketHash coin as a pure function — shared
  /// by pd_coin and the pipeline's branchless pass-3 precompute.
  static bool hash_coin(const MaficConfig& cfg, std::uint64_t key,
                        std::uint64_t uid) noexcept {
    const double pd = cfg.drop_probability;
    if (pd <= 0.0) return false;
    if (pd >= 1.0) return true;
    // Stateless per-packet draw: same (seed, flow, packet) -> same coin,
    // regardless of which engine inspects it or what interleaves.
    const std::uint64_t h =
        util::mix64(cfg.coin_seed ^ key ^ util::mix64(uid));
    return static_cast<double>(h >> 11) * 0x1.0p-53 < pd;
  }
  /// Resolves a probation according to the two half-window counts.
  TableKind decide(std::uint64_t key);
  void admit(const sim::Packet& p, std::uint64_t key);
  void schedule_probe(SftEntry& e);
  void schedule_decision(SftEntry& e);
  void cancel_entry_timers(const SftEntry& e);

  MaficConfig cfg_;
  Clock* clock_;
  TimerService* timers_;
  ProbeSink* probes_;
  FlowTables tables_;
  RttEstimator rtt_;
  const AddressPolicy* policy_;
  util::Rng rng_;

  bool active_ = false;
  VictimSet victims_;
  /// wants() fast path: with exactly one protected destination (the
  /// common case) the victim test is an integer compare, not a hash-set
  /// probe. Maintained by activate()/deactivate().
  bool single_victim_ = false;
  util::Addr lone_victim_{};
  /// Per-victim quota weights, sorted by address (set_victim_weights);
  /// empty = equal split.
  std::vector<std::pair<util::Addr, double>> victim_weights_;
  double expires_at_ = 0.0;
  sim::TimerId expiry_timer_ = sim::kInvalidTimer;

  ClassificationCallback on_classified_;
  OfferedCallback on_offered_;
  Stats stats_;
  /// Keyed and iterated in address order (decision paths only touch it on
  /// probation resolution / screening, never per forwarded packet).
  std::map<util::Addr, VictimStats> victim_stats_;
};

}  // namespace mafic::core
