#include "core/filter_engine.hpp"

#include <algorithm>

#include "core/verdict_pipeline.hpp"

namespace mafic::core {

FilterEngine::FilterEngine(MaficConfig cfg, Clock* clock,
                           TimerService* timers, ProbeSink* probes,
                           const AddressPolicy* policy, util::Rng rng)
    : cfg_(cfg),
      clock_(clock),
      timers_(timers),
      probes_(probes),
      tables_(cfg_),
      rtt_(cfg_),
      policy_(policy),
      rng_(rng) {
  // Probations leaving the SFT without a decision (capacity/quota
  // eviction or flush) must not leave their probe/decision timers armed:
  // the stale callbacks could fire into a *new* probation of the same
  // key. Capacity-class exits are also charged to the evicted entry's
  // victim, so multi-victim runs can see whose probations a flood
  // recycled (flushes are administrative, not attack pressure).
  tables_.set_eviction_hook([this](const SftEntry& e, EvictCause cause) {
    cancel_entry_timers(e);
    if (cause == EvictCause::kFlush) return;
    VictimStats& vs = victim_stats_[e.label.dst];
    ++vs.evictions;
    if (cause == EvictCause::kQuota) ++vs.quota_evictions;
  });
  // A flow under probation keeps its RTT estimate: recycling the slot
  // mid-probation would silently re-window the flow's *next* probation
  // from default_rtt even though the estimator had converged.
  rtt_.set_pin_check(
      [this](std::uint64_t key) { return tables_.find_sft(key) != nullptr; });
}

void FilterEngine::activate(const VictimSet& victims) {
  for (const auto v : victims) victims_.insert(v);
  if (cfg_.sft_victim_quota > 0.0) {
    // Register the victim classes for per-victim SFT quotas. VictimSet
    // iterates in ascending address order, so class indices are identical
    // no matter how the caller assembled the set — the scalar-vs-sharded
    // equivalence relies on every engine agreeing.
    std::vector<util::Addr> sorted(victims_.begin(), victims_.end());
    if (victim_weights_.empty()) {
      tables_.set_victim_classes(sorted);
    } else {
      // Victims without a registered weight default to 1.0 so a partial
      // weight map never zeroes out an unnamed victim's reservation.
      std::vector<double> weights;
      weights.reserve(sorted.size());
      for (const util::Addr v : sorted) {
        const auto it = std::lower_bound(
            victim_weights_.begin(), victim_weights_.end(), v,
            [](const auto& pair, util::Addr addr) {
              return pair.first < addr;
            });
        weights.push_back(it != victim_weights_.end() && it->first == v
                              ? it->second
                              : 1.0);
      }
      tables_.set_victim_classes(sorted, weights);
    }
  }
  active_ = true;
  single_victim_ = victims_.size() == 1;
  if (single_victim_) lone_victim_ = *victims_.begin();
  refresh();
}

void FilterEngine::set_victim_weights(
    std::vector<std::pair<util::Addr, double>> weights) {
  std::sort(weights.begin(), weights.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  victim_weights_ = std::move(weights);
}

void FilterEngine::refresh() {
  if (!active_ || cfg_.refresh_timeout <= 0.0) return;
  expires_at_ = clock_->now() + cfg_.refresh_timeout;
  // Keep-alive on the wheel: each refresh is an O(1) reschedule instead of
  // abandoning a lazily-cancelled heap event.
  if (expiry_timer_ != sim::kInvalidTimer &&
      timers_->reschedule(expiry_timer_, expires_at_)) {
    return;
  }
  expiry_timer_ = timers_->schedule_at(expires_at_, [this] {
    expiry_timer_ = sim::kInvalidTimer;
    if (active_) deactivate();  // "Pushback Continue? -> No"
  });
}

void FilterEngine::deactivate() {
  active_ = false;
  victims_.clear();
  single_victim_ = false;
  tables_.flush();  // "End dropping & Flush all tables"
  rtt_.clear();
  if (expiry_timer_ != sim::kInvalidTimer) {
    timers_->cancel(expiry_timer_);
    expiry_timer_ = sim::kInvalidTimer;
  }
}

// maficlint: hot
EngineVerdict FilterEngine::inspect(const sim::Packet& p) {
  if (!active_) return EngineVerdict::kForward;
  if (!victims_.contains(p.label.dst)) return EngineVerdict::kForward;
  if (p.proto == sim::Protocol::kControl) return EngineVerdict::kForward;
  return inspect_keyed(p, sim::hash_label(p.label));
}

// maficlint: hot
EngineVerdict FilterEngine::inspect_hashed(const sim::Packet& p,
                                           std::uint64_t key) {
  if (!active_) return EngineVerdict::kForward;
  if (!victims_.contains(p.label.dst)) return EngineVerdict::kForward;
  if (p.proto == sim::Protocol::kControl) return EngineVerdict::kForward;
  return inspect_keyed(p, key);
}

// maficlint: hot
template <typename GetPacket>
void FilterEngine::inspect_batch_impl(GetPacket&& get, std::size_t n,
                                      EngineVerdict* out) {
  constexpr std::size_t kWindow = VerdictPipeline::kWindow;
  std::uint64_t keys[kWindow];
  std::uint8_t hot[kWindow];  // victim-bound and inspectable

  // One clock sample per batch: drivers advance time only between
  // batches, so per-packet now() calls inside the batch are constant.
  const double now = clock_->now();
  auto engine_at = [this](std::size_t) -> FilterEngine& { return *this; };
  auto now_at = [now](std::size_t) { return now; };

  std::size_t i = 0;
  while (i < n) {
    const std::size_t m = std::min(kWindow, n - i);
    auto packet_at = [&get, i](std::size_t j) -> const sim::Packet& {
      return get(i + j);
    };
    VerdictPipeline::prehash_window(*this, packet_at, m, keys, hot);
    VerdictPipeline::window<false>(engine_at, packet_at, now_at, keys, hot,
                                   nullptr, m, out + i, nullptr);
    i += m;
  }
}

// maficlint: hot
void FilterEngine::inspect_batch(const sim::Packet* pkts, std::size_t n,
                                 EngineVerdict* out) {
  inspect_batch_impl(
      [pkts](std::size_t i) -> const sim::Packet& { return pkts[i]; }, n,
      out);
}

// maficlint: hot
void FilterEngine::inspect_batch(const sim::Packet* const* pkts,
                                 std::size_t n, EngineVerdict* out) {
  inspect_batch_impl(
      [pkts](std::size_t i) -> const sim::Packet& { return *pkts[i]; }, n,
      out);
}

// maficlint: hot
void FilterEngine::inspect_batch_keyed(const sim::Packet* const* pkts,
                                       const std::uint64_t* keys,
                                       const std::uint32_t* span_idx,
                                       std::size_t n, EngineVerdict* out,
                                       BatchSequencer* seq) {
  constexpr std::size_t kWindow = VerdictPipeline::kWindow;
  const double now = clock_->now();
  auto engine_at = [this](std::size_t) -> FilterEngine& { return *this; };
  auto now_at = [now](std::size_t) { return now; };

  std::size_t i = 0;
  while (i < n) {
    const std::size_t m = std::min(kWindow, n - i);
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      tables_.prefetch(keys[i + j + 0]);
      tables_.prefetch(keys[i + j + 1]);
      tables_.prefetch(keys[i + j + 2]);
      tables_.prefetch(keys[i + j + 3]);
    }
    for (; j < m; ++j) tables_.prefetch(keys[i + j]);
    auto packet_at = [pkts, i](std::size_t k) -> const sim::Packet& {
      return *pkts[i + k];
    };
    // kRegate: the active/victim/control gate is re-applied per packet in
    // the verdict pass, exactly as the old inspect_hashed walk did.
    VerdictPipeline::window<true>(engine_at, packet_at, now_at, keys + i,
                                  nullptr, span_idx + i, m, out + i, seq);
    i += m;
  }
}

bool FilterEngine::pd_coin(const sim::Packet& p, std::uint64_t key) {
  if (cfg_.coin_mode == CoinMode::kPacketHash) {
    return hash_coin(cfg_, key, p.uid);
  }
  return rng_.bernoulli(cfg_.drop_probability);
}

// maficlint: hot
EngineVerdict FilterEngine::inspect_keyed(const sim::Packet& p,
                                          std::uint64_t key) {
  ++stats_.offered;
  if (on_offered_) on_offered_(p);

  const double now = clock_->now();

  // Router-side RTT refinement from the timestamp echo.
  if (p.tsecr > 0.0) rtt_.observe(key, now - p.tsecr);

  return classify_slow(p, key, now);
}

// maficlint: hot
EngineVerdict FilterEngine::classify_slow(const sim::Packet& p,
                                          std::uint64_t key, double now) {
  switch (tables_.classify(key, now)) {
    case TableKind::kPermanentDrop:
      ++stats_.dropped_pdt;
      return EngineVerdict::kDropPdt;

    case TableKind::kNice:
      ++stats_.forwarded;
      return EngineVerdict::kForward;

    case TableKind::kSuspicious: {
      SftEntry* e = tables_.find_sft(key);
      if (now >= e->deadline) {
        // Timer expired and the decision event has not fired yet (same
        // timestamp): decide now, then treat this packet under the new
        // table.
        const TableKind dest = decide(key);
        if (dest == TableKind::kPermanentDrop) {
          ++stats_.dropped_pdt;
          return EngineVerdict::kDropPdt;
        }
        ++stats_.forwarded;
        return EngineVerdict::kForward;
      }
      if (now < e->split_time) {
        ++e->baseline_count;
      } else {
        ++e->probe_count;
      }
      const bool drop_it = cfg_.drop_all_in_sft || pd_coin(p, key);
      if (drop_it) {
        ++stats_.dropped_probation;
        return EngineVerdict::kDropProbation;
      }
      ++stats_.forwarded;
      return EngineVerdict::kForward;
    }

    case TableKind::kNone:
      break;
  }

  // New flow. Screen clearly-bogus sources first (paper section III-A).
  if (cfg_.address_screening && policy_ != nullptr &&
      !policy_->acceptable(p.label.src)) {
    tables_.add_pdt_direct(key);
    ++stats_.screened_sources;
    ++stats_.dropped_pdt;
    ++victim_stats_[p.label.dst].screened_sources;
    return EngineVerdict::kDropPdt;
  }

  // "Drop packet with probability Pd"; the drop is what opens probation.
  if (pd_coin(p, key)) {
    admit(p, key);
    ++stats_.dropped_probation;
    return EngineVerdict::kDropProbation;
  }
  ++stats_.forwarded;
  return EngineVerdict::kForward;
}

void FilterEngine::admit(const sim::Packet& p, std::uint64_t key) {
  const double window = cfg_.probe_window_rtt_multiple * rtt_.rtt(key);
  SftEntry* e = tables_.admit_sft(key, p.label, clock_->now(), window);
  if (e == nullptr) return;  // raced into another table (should not happen)
  // The admitting packet itself is NOT counted into the baseline half:
  // it is present by construction (it opened the probation), so counting
  // it would bias the baseline up by one and let arrival jitter fake a
  // "decrease" on slow flows.
  if (cfg_.probe_enabled) schedule_probe(*e);
  schedule_decision(*e);
}

void FilterEngine::schedule_probe(SftEntry& e) {
  const std::uint64_t key = e.key;
  e.probe_timer = timers_->schedule_at(e.split_time, [this, key] {
    if (!active_) return;
    SftEntry* entry = tables_.find_sft(key);
    if (entry == nullptr || entry->probe_sent) return;
    entry->probe_sent = true;
    entry->probe_timer = sim::kInvalidTimer;
    ++stats_.probes_issued;
    probes_->send_probe(entry->label);
  });
}

void FilterEngine::schedule_decision(SftEntry& e) {
  const std::uint64_t key = e.key;
  // Epsilon after the deadline so that a packet arriving exactly at the
  // deadline is handled by the lazy path first (the wheel then rounds up
  // to its next tick, which the lazy path also covers).
  e.decision_timer =
      timers_->schedule_at(e.deadline + 1e-9, [this, key] {
        if (!active_) return;
        if (tables_.find_sft(key) != nullptr) decide(key);
      });
}

void FilterEngine::cancel_entry_timers(const SftEntry& e) {
  if (e.probe_timer != sim::kInvalidTimer) timers_->cancel(e.probe_timer);
  if (e.decision_timer != sim::kInvalidTimer) {
    timers_->cancel(e.decision_timer);
  }
}

TableKind FilterEngine::decide(std::uint64_t key) {
  SftEntry* e = tables_.find_sft(key);
  if (e == nullptr) return TableKind::kNone;

  cancel_entry_timers(*e);

  bool decreased;
  if (e->baseline_count < cfg_.min_baseline_packets) {
    // Too thin to judge: benefit of the doubt.
    decreased = true;
  } else {
    const bool relative_drop =
        static_cast<double>(e->probe_count) <
        cfg_.decrease_ratio * static_cast<double>(e->baseline_count);
    const bool absolute_drop =
        e->probe_count + cfg_.min_absolute_decrease <= e->baseline_count;
    decreased = relative_drop && absolute_drop;
  }

  const TableKind dest =
      decreased ? TableKind::kNice : TableKind::kPermanentDrop;
  const SftEntry resolved = tables_.resolve(key, dest, clock_->now());
  VictimStats& vs = victim_stats_[resolved.label.dst];
  if (dest == TableKind::kNice) {
    ++stats_.decided_nice;
    ++vs.decided_nice;
  } else {
    ++stats_.decided_malicious;
    ++vs.decided_malicious;
  }
  if (on_classified_) on_classified_(resolved, dest);
  return dest;
}

}  // namespace mafic::core
