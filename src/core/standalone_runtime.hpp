#pragma once

/// \file standalone_runtime.hpp
/// Seam implementations for running a FilterEngine *outside* the
/// discrete-event simulator: a manually-advanced clock, a TimerService
/// backed by a private hierarchical TimerWheel, and a counting ProbeSink.
/// One EngineRuntime bundles the three with an engine — this is the unit a
/// datapath shard owns (sharded_filter.hpp) and what engine unit tests
/// drive directly.
///
/// Threading contract: an EngineRuntime is single-threaded. The shard's
/// driver thread interleaves inspect()/inspect_batch() calls with
/// advance_until(), which fires due probation timers and moves the clock
/// forward. Nothing here takes a lock; isolation across shards comes from
/// partitioning flows, not from synchronization.

#include <cstdint>
#include <utility>

#include "core/address_policy.hpp"
#include "core/config.hpp"
#include "core/engine_seams.hpp"
#include "core/filter_engine.hpp"
#include "sim/timer_wheel.hpp"
#include "util/rng.hpp"

namespace mafic::core {

/// A clock that only moves when told to. Never goes backwards.
class ManualClock final : public Clock {
 public:
  double now() const noexcept override { return now_; }
  void set(double t) noexcept {
    if (t > now_) now_ = t;
  }

 private:
  double now_ = 0.0;
};

/// TimerService over a private hierarchical wheel, driven by the owner
/// calling advance_until(). Matches the simulator's timer semantics
/// (fire at the first tick boundary >= nominal time, past times clamp to
/// now), so an engine behaves identically under either runtime.
class WheelTimerService final : public TimerService {
 public:
  explicit WheelTimerService(ManualClock* clock, double resolution = 0.0005)
      : clock_(clock), wheel_(resolution) {}

  sim::TimerId schedule_at(double t, TimerFn fn) override {
    const double now = clock_->now();
    return wheel_.schedule_at(t < now ? now : t, std::move(fn));
  }
  bool cancel(sim::TimerId id) override { return wheel_.cancel(id); }
  bool reschedule(sim::TimerId id, double t) override {
    const double now = clock_->now();
    return wheel_.reschedule(id, t < now ? now : t);
  }

  /// Fires every timer due at or before `t` (in wheel order), then
  /// advances the clock to `t`. Returns the number of timers fired.
  std::size_t advance_until(double t) {
    std::size_t fired = 0;
    while (!wheel_.empty() && wheel_.next_time() <= t) {
      sim::TimerWheel::Popped p = wheel_.pop();
      clock_->set(p.time);
      p.fn();
      ++fired;
    }
    clock_->set(t);
    return fired;
  }

  const sim::TimerWheel& wheel() const noexcept { return wheel_; }

 private:
  ManualClock* clock_;
  sim::TimerWheel wheel_;
};

/// ProbeSink that only counts. Standalone shards have no wire to put a
/// duplicate-ACK on; benches and property tests assert on the counter.
class CountingProbeSink final : public ProbeSink {
 public:
  void send_probe(const sim::FlowLabel&) override { ++count_; }
  std::uint64_t probes_sent() const noexcept { return count_; }

 private:
  std::uint64_t count_ = 0;
};

/// One self-contained engine shard: clock + wheel + probe counter + the
/// engine wired to them. Movable-nowhere by design (the engine keeps raw
/// seam pointers); heap-allocate and keep put.
class EngineRuntime {
 public:
  EngineRuntime(const MaficConfig& cfg, const AddressPolicy* policy,
                util::Rng rng)
      : timers_(&clock_, cfg.timer_wheel_resolution),
        engine_(cfg, &clock_, &timers_, &probes_, policy, rng) {}

  EngineRuntime(const EngineRuntime&) = delete;
  EngineRuntime& operator=(const EngineRuntime&) = delete;

  FilterEngine& engine() noexcept { return engine_; }
  const FilterEngine& engine() const noexcept { return engine_; }
  ManualClock& clock() noexcept { return clock_; }
  CountingProbeSink& probes() noexcept { return probes_; }

  /// Fires due probation timers and advances this shard's clock to `t`.
  std::size_t advance_until(double t) { return timers_.advance_until(t); }

 private:
  ManualClock clock_;
  WheelTimerService timers_;
  CountingProbeSink probes_;
  FilterEngine engine_;
};

}  // namespace mafic::core
