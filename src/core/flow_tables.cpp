#include "core/flow_tables.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "sim/timer_wheel.hpp"

namespace mafic::core {

namespace {
/// Ring growth ceiling. Beyond this span (65536 ticks = ~33 s at the
/// default resolution) far-future deadlines clamp into the last bucket —
/// eviction order among them degrades to FIFO, which only an absurdly
/// configured window can reach.
constexpr std::size_t kMaxRingBuckets = 1u << 16;

std::size_t pow2_at_least(std::size_t n) noexcept {
  return std::max<std::size_t>(64, std::bit_ceil(n));
}
}  // namespace

const char* to_string(TableKind k) noexcept {
  switch (k) {
    case TableKind::kNone:
      return "none";
    case TableKind::kSuspicious:
      return "SFT";
    case TableKind::kNice:
      return "NFT";
    case TableKind::kPermanentDrop:
      return "PDT";
  }
  return "?";
}

const char* to_string(EvictCause c) noexcept {
  switch (c) {
    case EvictCause::kCapacity:
      return "capacity";
    case EvictCause::kQuota:
      return "quota";
    case EvictCause::kFlush:
      return "flush";
  }
  return "?";
}

FlowTables::FlowTables(const MaficConfig& cfg)
    : cfg_(cfg),
      store_(cfg.sft_capacity + cfg.nft_capacity + cfg.pdt_capacity,
             cfg.flow_store_max_load),
      ring_res_(cfg.timer_wheel_resolution > 0.0 ? cfg.timer_wheel_resolution
                                                 : 0.0005) {
  ring_reset(ring0_);
  class_quota_.assign(1, 0);
}

void FlowTables::ring_reset(Ring& r) {
  const std::size_t buckets = pow2_at_least(
      cfg_.sft_eviction_ring_buckets < kMaxRingBuckets
          ? cfg_.sft_eviction_ring_buckets
          : kMaxRingBuckets);
  r.head.assign(buckets, kNoSlot);
  r.tail.assign(buckets, kNoSlot);
  r.occ.assign(buckets / 64, 0);
  r.cursor = 0;
  r.live = 0;
}

std::uint32_t FlowTables::class_of(util::Addr dst) const noexcept {
  if (class_victims_.empty()) return 0;
  const auto it =
      std::lower_bound(class_victims_.begin(), class_victims_.end(), dst);
  if (it != class_victims_.end() && *it == dst) {
    return static_cast<std::uint32_t>(it - class_victims_.begin());
  }
  return 0;  // unregistered destinations share the first class
}

void FlowTables::set_victim_classes(const std::vector<util::Addr>& victims) {
  set_victim_classes(victims, {});
}

void FlowTables::set_victim_classes(const std::vector<util::Addr>& victims,
                                    const std::vector<double>& weights) {
  // Sort victims and weights together so class indices are deterministic
  // regardless of caller order; duplicates keep their first weight.
  std::vector<std::pair<util::Addr, double>> paired;
  paired.reserve(victims.size());
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const double w = i < weights.size() ? std::max(0.0, weights[i]) : 1.0;
    paired.emplace_back(victims[i], w);
  }
  std::stable_sort(paired.begin(), paired.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  paired.erase(std::unique(paired.begin(), paired.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               paired.end());
  if (cfg_.sft_victim_quota <= 0.0 || paired.size() < 2) paired.clear();

  std::vector<util::Addr> sorted;
  std::vector<double> w_sorted;
  double w_sum = 0.0;
  sorted.reserve(paired.size());
  w_sorted.reserve(paired.size());
  for (const auto& [addr, w] : paired) {
    sorted.push_back(addr);
    w_sorted.push_back(w);
    w_sum += w;
  }
  // All-zero (or absent) weights mean "no preference": equal split.
  if (!(w_sum > 0.0) || weights.empty()) w_sorted.clear();

  if (sorted == class_victims_ && w_sorted == class_weights_) {
    return;  // repeated activate: no-op
  }

  class_victims_ = std::move(sorted);
  class_weights_ = std::move(w_sorted);
  const std::size_t n = std::max<std::size_t>(1, class_victims_.size());
  ring_reset(ring0_);
  extra_rings_.resize(n - 1);
  for (Ring& r : extra_rings_) ring_reset(r);
  class_quota_.assign(n, 0);
  if (n > 1) {
    std::size_t quota =
        cfg_.sft_victim_quota <= 1.0
            ? static_cast<std::size_t>(cfg_.sft_victim_quota *
                                       static_cast<double>(cfg_.sft_capacity))
            : static_cast<std::size_t>(cfg_.sft_victim_quota);
    // Summed reservations must fit in the table, or an under-quota victim
    // could find nobody over quota to reclaim from and fall back to
    // evicting another under-quota victim — the bug quotas exist to fix.
    quota = std::min(quota, cfg_.sft_capacity / n);
    class_quota_.assign(n, quota);
    if (!class_weights_.empty()) {
      // Weighted reservations: split the same total pool the equal path
      // would reserve, proportionally to the weights. floor() keeps the
      // summed reservations <= pool <= sft_capacity.
      const std::size_t pool =
          std::min(quota * n, cfg_.sft_capacity);
      for (std::size_t c = 0; c < n; ++c) {
        class_quota_[c] = static_cast<std::size_t>(
            static_cast<double>(pool) * class_weights_[c] / w_sum);
      }
    }
  }

  // Re-ring every live probation under the new classes (activation can
  // extend the victim set while probations are in flight) in ascending
  // deadline order: the first insert into an empty ring seeds its
  // cursor, and any earlier-deadline entry inserted after it would clamp
  // up to that cursor — flattening deadline order into arena order and
  // breaking nearest-deadline eviction.
  std::fill(ring_next_.begin(), ring_next_.end(), kNoSlot);
  std::fill(ring_prev_.begin(), ring_prev_.end(), kNoSlot);
  std::vector<std::uint32_t> live;
  for (std::uint32_t slot = 0; slot < arena_.size(); ++slot) {
    if (arena_live_[slot] != 0) live.push_back(slot);
  }
  std::sort(live.begin(), live.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              if (arena_[a].deadline != arena_[b].deadline) {
                return arena_[a].deadline < arena_[b].deadline;
              }
              return a < b;
            });
  for (const std::uint32_t slot : live) {
    const std::uint32_t cls = class_of(arena_[slot].label.dst);
    ring_insert(ring_at(cls), cls, slot, arena_[slot].deadline);
  }
}

std::size_t FlowTables::sft_size_of(util::Addr victim) const noexcept {
  return ring_at(class_of(victim)).live;
}

std::size_t FlowTables::ring_occupancy() const noexcept {
  std::size_t n = ring0_.live;
  for (const Ring& r : extra_rings_) n += r.live;
  return n;
}

TableKind FlowTables::classify(std::uint64_t key, double now) {
  FlowRecord* r = store_.find(key);
  if (r == nullptr) return TableKind::kNone;
  if (r->kind == TableKind::kNice && now > r->nft_expiry) {
    store_.erase(key);  // revalidation: niceness has expired
    --nft_count_;
    ++epoch_;
    ++stats_.nft_expirations;
    return TableKind::kNone;
  }
  return r->kind;
}

SftEntry* FlowTables::find_sft(std::uint64_t key) noexcept {
  FlowRecord* r = store_.find(key);
  if (r == nullptr || r->kind != TableKind::kSuspicious) return nullptr;
  return &arena_[r->sft_slot];
}

std::uint32_t FlowTables::alloc_arena_slot() {
  if (arena_free_.empty()) {
    // Grow the arena geometrically up to the configured bound; entry
    // pointers are only valid until the next admit, so relocation is safe.
    const std::size_t old = arena_.size();
    std::size_t grown = old == 0 ? 16 : old * 2;
    if (grown > cfg_.sft_capacity) grown = cfg_.sft_capacity;
    assert(grown > old && "arena grown past sft_capacity");
    arena_.resize(grown);
    arena_live_.resize(grown, 0);
    ring_next_.resize(grown, kNoSlot);
    ring_prev_.resize(grown, kNoSlot);
    slot_tick_.resize(grown, 0);
    slot_class_.resize(grown, 0);
    for (std::size_t i = grown; i > old; --i) {
      arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t slot = arena_free_.back();
  arena_free_.pop_back();
  arena_live_[slot] = 1;
  return slot;
}

void FlowTables::free_arena_slot(std::uint32_t slot) noexcept {
  arena_live_[slot] = 0;
  arena_free_.push_back(slot);
}

// --- deadline-bucketed eviction rings -----------------------------------

void FlowTables::ring_insert(Ring& r, std::uint32_t cls, std::uint32_t slot,
                             double deadline) {
  assert(&r == &ring_at(cls));
  std::uint64_t tick = sim::TimerWheel::quantize(deadline, ring_res_);
  if (r.live == 0) {
    r.cursor = tick;
  } else if (tick < r.cursor) {
    // Earlier than every live probation of this class: treat as due now.
    // The cursor is a lower bound on live ticks; rewinding it would
    // shrink the span available to the entries already ringed.
    tick = r.cursor;
  } else if (tick - r.cursor >= r.head.size()) {
    ring_seek(r);  // tighten the lower bound before paying for growth
    if (tick - r.cursor >= r.head.size()) {
      if (tick - r.cursor < kMaxRingBuckets) {
        ring_grow(r, static_cast<std::size_t>(tick - r.cursor) + 1);
      } else {
        tick = r.cursor + r.head.size() - 1;  // far-future clamp
      }
    }
  }

  const std::size_t mask = r.head.size() - 1;
  const std::size_t idx = static_cast<std::size_t>(tick) & mask;
  slot_tick_[slot] = tick;
  slot_class_[slot] = cls;
  ring_next_[slot] = kNoSlot;
  ring_prev_[slot] = r.tail[idx];
  if (r.tail[idx] != kNoSlot) {
    ring_next_[r.tail[idx]] = slot;
  } else {
    r.head[idx] = slot;
    r.occ[idx >> 6] |= 1ull << (idx & 63);
  }
  r.tail[idx] = slot;
  ++r.live;
}

void FlowTables::ring_unlink(std::uint32_t slot) noexcept {
  ring_unlink_in(ring_at(slot_class_[slot]), slot);
}

void FlowTables::ring_unlink_in(Ring& r, std::uint32_t slot) noexcept {
  const std::size_t mask = r.head.size() - 1;
  const std::size_t idx =
      static_cast<std::size_t>(slot_tick_[slot]) & mask;
  const std::uint32_t p = ring_prev_[slot];
  const std::uint32_t n = ring_next_[slot];
  if (p != kNoSlot) {
    ring_next_[p] = n;
  } else {
    r.head[idx] = n;
  }
  if (n != kNoSlot) {
    ring_prev_[n] = p;
  } else {
    r.tail[idx] = p;
  }
  if (r.head[idx] == kNoSlot) {
    r.occ[idx >> 6] &= ~(1ull << (idx & 63));
  }
  ring_prev_[slot] = ring_next_[slot] = kNoSlot;
  --r.live;
}

void FlowTables::ring_clear() noexcept {
  const auto clear_one = [](Ring& r) {
    std::fill(r.head.begin(), r.head.end(), kNoSlot);
    std::fill(r.tail.begin(), r.tail.end(), kNoSlot);
    std::fill(r.occ.begin(), r.occ.end(), 0);
    r.live = 0;
  };
  clear_one(ring0_);
  for (Ring& r : extra_rings_) clear_one(r);
}

void FlowTables::ring_seek(Ring& r) noexcept {
  assert(r.live > 0);
  const std::size_t buckets = r.head.size();
  const std::size_t mask = buckets - 1;
  const std::size_t start = static_cast<std::size_t>(r.cursor) & mask;
  std::size_t advance = 0;
  while (advance < buckets) {
    const std::size_t i = (start + advance) & mask;
    const unsigned bit = i & 63;
    const std::uint64_t w = r.occ[i >> 6] & (~0ull << bit);
    if (w != 0) {
      advance += std::countr_zero(w) - bit;
      if (advance >= buckets) break;  // found bit is before `start`
      r.cursor += advance;
      return;
    }
    advance += 64 - bit;
  }
  assert(false && "ring_seek with live entries but empty bitmap");
}

void FlowTables::ring_grow(Ring& r, std::size_t min_buckets) {
  std::size_t buckets = pow2_at_least(r.head.size() * 2);
  while (buckets < min_buckets) buckets *= 2;
  if (buckets > kMaxRingBuckets) buckets = kMaxRingBuckets;
  // Walk the OLD bucket lists to relink (slot ticks are kept). Scanning
  // arena_live_ instead would also pick up a slot that is mid-admission —
  // allocated but not yet ringed — and link it with a stale tick.
  std::vector<std::uint32_t> old_head = std::move(r.head);
  r.head.assign(buckets, kNoSlot);
  r.tail.assign(buckets, kNoSlot);
  r.occ.assign(buckets / 64, 0);
  const std::size_t live = r.live;
  r.live = 0;
  const std::size_t mask = buckets - 1;
  for (const std::uint32_t head : old_head) {
    std::uint32_t slot = head;
    while (slot != kNoSlot) {
      const std::uint32_t next = ring_next_[slot];  // FIFO order preserved
      const std::size_t idx =
          static_cast<std::size_t>(slot_tick_[slot]) & mask;
      ring_next_[slot] = kNoSlot;
      ring_prev_[slot] = r.tail[idx];
      if (r.tail[idx] != kNoSlot) {
        ring_next_[r.tail[idx]] = slot;
      } else {
        r.head[idx] = slot;
        r.occ[idx >> 6] |= 1ull << (idx & 63);
      }
      r.tail[idx] = slot;
      ++r.live;
      slot = next;
    }
  }
  assert(r.live == live);
  (void)live;
}

void FlowTables::evict_from_class(std::uint32_t cls, EvictCause cause) {
  // Evict the class's probation closest to (or past) its deadline; it has
  // had the most chance to be judged already. The ring hands us the first
  // occupied deadline bucket in O(1) amortized (the cursor only moves
  // forward), instead of a linear arena scan per admission.
  Ring& r = ring_at(cls);
  assert(r.live > 0);
  ring_seek(r);
  const std::size_t mask = r.head.size() - 1;
  const std::uint32_t victim =
      r.head[static_cast<std::size_t>(r.cursor) & mask];
  assert(victim != kNoSlot);
  if (on_evicted_) on_evicted_(arena_[victim], cause);
  store_.erase(arena_[victim].key);
  ring_unlink_in(r, victim);
  free_arena_slot(victim);
  --sft_count_;
  ++epoch_;
  ++stats_.sft_evictions;
  if (cause == EvictCause::kQuota) ++stats_.quota_evictions;
}

void FlowTables::evict_for_admission(std::uint32_t cls) {
  // Quota mode only: the single-class fast path dispatches straight to
  // evict_from_class at the admit_sft call site.
  assert(!extra_rings_.empty());
  const auto classes = static_cast<std::uint32_t>(victim_classes());
  // The admitting victim pays from its own quota first: while at/over its
  // reservation, its own nearest-deadline probation goes.
  const Ring& own = ring_at(cls);
  if (own.live >= class_quota_[cls] && own.live > 0) {
    evict_from_class(cls, EvictCause::kCapacity);
    return;
  }
  // Under quota: the admission is entitled to a reserved slot, so an
  // over-quota class gives one back. Draining the most overdrawn class
  // first shrinks overflow users toward their reservations pro-rata
  // (equal quotas -> equal steady-state overflow shares).
  std::uint32_t payer = kNoSlot;
  std::size_t payer_over = 0;
  for (std::uint32_t c = 0; c < classes; ++c) {
    const std::size_t live = ring_at(c).live;
    if (live <= class_quota_[c]) continue;
    const std::size_t over = live - class_quota_[c];
    if (payer == kNoSlot || over > payer_over) {
      payer = c;
      payer_over = over;
    }
  }
  if (payer != kNoSlot) {
    evict_from_class(payer, EvictCause::kQuota);
    return;
  }
  // Unreachable while summed quotas <= sft_capacity (a full table with
  // every class within quota leaves no room for an under-quota admitter);
  // kept as a defensive fallback: globally nearest deadline.
  std::uint32_t pick = kNoSlot;
  std::uint64_t pick_tick = 0;
  for (std::uint32_t c = 0; c < classes; ++c) {
    Ring& r = ring_at(c);
    if (r.live == 0) continue;
    ring_seek(r);
    if (pick == kNoSlot || r.cursor < pick_tick) {
      pick = c;
      pick_tick = r.cursor;
    }
  }
  assert(pick != kNoSlot);
  evict_from_class(pick, EvictCause::kCapacity);
}

void FlowTables::evict_any(TableKind kind) {
  // Drop an arbitrary resident entry of this kind. This bound mostly
  // matters under per-packet-spoofed label floods (ablation A5), where it
  // runs once per packet — the rotating scan cursor makes consecutive
  // evictions sweep the store round-robin, amortized O(1) whenever the
  // kind is a non-vanishing fraction of residents.
  std::uint64_t victim_key = 0;
  const std::size_t at = store_.scan(
      evict_cursor_, [&](std::uint64_t key, const FlowRecord& r) {
        if (r.kind != kind) return false;
        victim_key = key;
        return true;
      });
  assert(at != decltype(store_)::kNpos);
  evict_cursor_ = at;
  store_.erase(victim_key);
  ++epoch_;
  if (kind == TableKind::kNice) {
    --nft_count_;
  } else {
    --pdt_count_;
  }
}

SftEntry* FlowTables::admit_sft(std::uint64_t key,
                                const sim::FlowLabel& label, double now,
                                double window_seconds) {
  if (classify(key) != TableKind::kNone) return nullptr;

  // Quotas off (no registered classes) keeps the pre-quota call shape:
  // cls is the constant 0 and capacity eviction is one direct call — the
  // per-packet-spoofed flood pays nothing for the machinery it isn't
  // using. The class lookup and the quota walk only run in quota mode.
  std::uint32_t cls = 0;
  if (!class_victims_.empty()) cls = class_of(label.dst);
  if (sft_count_ >= cfg_.sft_capacity) {
    if (extra_rings_.empty()) {
      evict_from_class(0, EvictCause::kCapacity);
    } else {
      evict_for_admission(cls);
    }
  }

  const std::uint32_t slot = alloc_arena_slot();
  SftEntry& e = arena_[slot];
  e = SftEntry{};
  e.key = key;
  e.label = label;
  e.entry_time = now;
  e.split_time = now + window_seconds / 2.0;
  e.deadline = now + window_seconds;
  ring_insert(ring_at(cls), cls, slot, e.deadline);

  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kSuspicious;
  record->sft_slot = slot;
  ++sft_count_;
  ++epoch_;
  ++stats_.sft_admissions;
  return &e;
}

SftEntry FlowTables::resolve(std::uint64_t key, TableKind destination,
                             double now) {
  FlowRecord* r = store_.find(key);
  assert(r != nullptr && r->kind == TableKind::kSuspicious &&
         "resolving a flow that is not under probation");
  SftEntry out = arena_[r->sft_slot];
  ring_unlink(r->sft_slot);
  free_arena_slot(r->sft_slot);
  --sft_count_;
  ++epoch_;

  // The key stays resident: its record mutates in place to the
  // destination table (no erase + reinsert, no rehash churn).
  if (destination == TableKind::kNice) {
    if (nft_count_ >= cfg_.nft_capacity) {
      evict_any(TableKind::kNice);
      r = store_.find(key);  // eviction shifts slots; re-find
    }
    r->kind = TableKind::kNice;
    r->sft_slot = kNoSlot;
    r->nft_expiry = cfg_.nft_revalidation_interval > 0.0
                        ? now + cfg_.nft_revalidation_interval
                        : std::numeric_limits<double>::infinity();
    ++nft_count_;
    ++stats_.moved_to_nft;
  } else {
    assert(destination == TableKind::kPermanentDrop);
    if (pdt_count_ >= cfg_.pdt_capacity) {
      evict_any(TableKind::kPermanentDrop);
      r = store_.find(key);
    }
    r->kind = TableKind::kPermanentDrop;
    r->sft_slot = kNoSlot;
    ++pdt_count_;
    ++stats_.moved_to_pdt;
  }
  return out;
}

void FlowTables::add_pdt_direct(std::uint64_t key) {
  assert(classify(key) == TableKind::kNone);
  if (pdt_count_ >= cfg_.pdt_capacity) evict_any(TableKind::kPermanentDrop);
  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kPermanentDrop;
  ++pdt_count_;
  ++epoch_;
  ++stats_.direct_pdt;
}

void FlowTables::flush() {
  if (on_evicted_) {
    for_each_sft(
        [this](const SftEntry& e) { on_evicted_(e, EvictCause::kFlush); });
  }
  store_.clear();
  arena_free_.clear();
  for (std::size_t i = arena_.size(); i > 0; --i) {
    arena_live_[i - 1] = 0;
    arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  ring_clear();
  sft_count_ = 0;
  nft_count_ = 0;
  pdt_count_ = 0;
  ++epoch_;
  ++stats_.flushes;
}

}  // namespace mafic::core
