#include "core/flow_tables.hpp"

#include <cassert>
#include <limits>

namespace mafic::core {

const char* to_string(TableKind k) noexcept {
  switch (k) {
    case TableKind::kNone:
      return "none";
    case TableKind::kSuspicious:
      return "SFT";
    case TableKind::kNice:
      return "NFT";
    case TableKind::kPermanentDrop:
      return "PDT";
  }
  return "?";
}

FlowTables::FlowTables(const MaficConfig& cfg)
    : cfg_(cfg),
      store_(cfg.sft_capacity + cfg.nft_capacity + cfg.pdt_capacity,
             cfg.flow_store_max_load) {}

TableKind FlowTables::classify(std::uint64_t key, double now) {
  FlowRecord* r = store_.find(key);
  if (r == nullptr) return TableKind::kNone;
  if (r->kind == TableKind::kNice && now > r->nft_expiry) {
    store_.erase(key);  // revalidation: niceness has expired
    --nft_count_;
    ++stats_.nft_expirations;
    return TableKind::kNone;
  }
  return r->kind;
}

SftEntry* FlowTables::find_sft(std::uint64_t key) noexcept {
  FlowRecord* r = store_.find(key);
  if (r == nullptr || r->kind != TableKind::kSuspicious) return nullptr;
  return &arena_[r->sft_slot];
}

std::uint32_t FlowTables::alloc_arena_slot() {
  if (arena_free_.empty()) {
    // Grow the arena geometrically up to the configured bound; entry
    // pointers are only valid until the next admit, so relocation is safe.
    const std::size_t old = arena_.size();
    std::size_t grown = old == 0 ? 16 : old * 2;
    if (grown > cfg_.sft_capacity) grown = cfg_.sft_capacity;
    assert(grown > old && "arena grown past sft_capacity");
    arena_.resize(grown);
    arena_live_.resize(grown, 0);
    for (std::size_t i = grown; i > old; --i) {
      arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t slot = arena_free_.back();
  arena_free_.pop_back();
  arena_live_[slot] = 1;
  return slot;
}

void FlowTables::free_arena_slot(std::uint32_t slot) noexcept {
  arena_live_[slot] = 0;
  arena_free_.push_back(slot);
}

void FlowTables::evict_oldest_probation() {
  // Evict the probation closest to (or past) its deadline; it has had the
  // most chance to be judged already. Linear scan over the contiguous
  // arena — only reached when the SFT is at capacity.
  std::uint32_t victim = kNoSlot;
  for (std::uint32_t i = 0; i < arena_.size(); ++i) {
    if (arena_live_[i] == 0) continue;
    if (victim == kNoSlot || arena_[i].deadline < arena_[victim].deadline) {
      victim = i;
    }
  }
  assert(victim != kNoSlot);
  if (on_evicted_) on_evicted_(arena_[victim]);
  store_.erase(arena_[victim].key);
  free_arena_slot(victim);
  --sft_count_;
  ++stats_.sft_evictions;
}

void FlowTables::evict_any(TableKind kind) {
  // Drop an arbitrary resident entry of this kind. This bound mostly
  // matters under per-packet-spoofed label floods (ablation A5), where it
  // runs once per packet — the rotating scan cursor makes consecutive
  // evictions sweep the store round-robin, amortized O(1) whenever the
  // kind is a non-vanishing fraction of residents.
  std::uint64_t victim_key = 0;
  const std::size_t at = store_.scan(
      evict_cursor_, [&](std::uint64_t key, const FlowRecord& r) {
        if (r.kind != kind) return false;
        victim_key = key;
        return true;
      });
  assert(at != decltype(store_)::kNpos);
  evict_cursor_ = at;
  store_.erase(victim_key);
  if (kind == TableKind::kNice) {
    --nft_count_;
  } else {
    --pdt_count_;
  }
}

SftEntry* FlowTables::admit_sft(std::uint64_t key,
                                const sim::FlowLabel& label, double now,
                                double window_seconds) {
  if (classify(key) != TableKind::kNone) return nullptr;

  if (sft_count_ >= cfg_.sft_capacity) evict_oldest_probation();

  const std::uint32_t slot = alloc_arena_slot();
  SftEntry& e = arena_[slot];
  e = SftEntry{};
  e.key = key;
  e.label = label;
  e.entry_time = now;
  e.split_time = now + window_seconds / 2.0;
  e.deadline = now + window_seconds;

  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kSuspicious;
  record->sft_slot = slot;
  ++sft_count_;
  ++stats_.sft_admissions;
  return &e;
}

SftEntry FlowTables::resolve(std::uint64_t key, TableKind destination,
                             double now) {
  FlowRecord* r = store_.find(key);
  assert(r != nullptr && r->kind == TableKind::kSuspicious &&
         "resolving a flow that is not under probation");
  SftEntry out = arena_[r->sft_slot];
  free_arena_slot(r->sft_slot);
  --sft_count_;

  // The key stays resident: its record mutates in place to the
  // destination table (no erase + reinsert, no rehash churn).
  if (destination == TableKind::kNice) {
    if (nft_count_ >= cfg_.nft_capacity) {
      evict_any(TableKind::kNice);
      r = store_.find(key);  // eviction shifts slots; re-find
    }
    r->kind = TableKind::kNice;
    r->sft_slot = kNoSlot;
    r->nft_expiry = cfg_.nft_revalidation_interval > 0.0
                        ? now + cfg_.nft_revalidation_interval
                        : std::numeric_limits<double>::infinity();
    ++nft_count_;
    ++stats_.moved_to_nft;
  } else {
    assert(destination == TableKind::kPermanentDrop);
    if (pdt_count_ >= cfg_.pdt_capacity) {
      evict_any(TableKind::kPermanentDrop);
      r = store_.find(key);
    }
    r->kind = TableKind::kPermanentDrop;
    r->sft_slot = kNoSlot;
    ++pdt_count_;
    ++stats_.moved_to_pdt;
  }
  return out;
}

void FlowTables::add_pdt_direct(std::uint64_t key) {
  assert(classify(key) == TableKind::kNone);
  if (pdt_count_ >= cfg_.pdt_capacity) evict_any(TableKind::kPermanentDrop);
  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kPermanentDrop;
  ++pdt_count_;
  ++stats_.direct_pdt;
}

void FlowTables::flush() {
  if (on_evicted_) {
    for_each_sft([this](const SftEntry& e) { on_evicted_(e); });
  }
  store_.clear();
  arena_free_.clear();
  for (std::size_t i = arena_.size(); i > 0; --i) {
    arena_live_[i - 1] = 0;
    arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  sft_count_ = 0;
  nft_count_ = 0;
  pdt_count_ = 0;
  ++stats_.flushes;
}

}  // namespace mafic::core
