#include "core/flow_tables.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <limits>

#include "sim/timer_wheel.hpp"

namespace mafic::core {

namespace {
/// Ring growth ceiling. Beyond this span (65536 ticks = ~33 s at the
/// default resolution) far-future deadlines clamp into the last bucket —
/// eviction order among them degrades to FIFO, which only an absurdly
/// configured window can reach.
constexpr std::size_t kMaxRingBuckets = 1u << 16;

std::size_t pow2_at_least(std::size_t n) noexcept {
  return std::max<std::size_t>(64, std::bit_ceil(n));
}
}  // namespace

const char* to_string(TableKind k) noexcept {
  switch (k) {
    case TableKind::kNone:
      return "none";
    case TableKind::kSuspicious:
      return "SFT";
    case TableKind::kNice:
      return "NFT";
    case TableKind::kPermanentDrop:
      return "PDT";
  }
  return "?";
}

FlowTables::FlowTables(const MaficConfig& cfg)
    : cfg_(cfg),
      store_(cfg.sft_capacity + cfg.nft_capacity + cfg.pdt_capacity,
             cfg.flow_store_max_load),
      ring_res_(cfg.timer_wheel_resolution > 0.0 ? cfg.timer_wheel_resolution
                                                 : 0.0005) {
  const std::size_t buckets = pow2_at_least(
      cfg.sft_eviction_ring_buckets < kMaxRingBuckets
          ? cfg.sft_eviction_ring_buckets
          : kMaxRingBuckets);
  ring_head_.assign(buckets, kNoSlot);
  ring_tail_.assign(buckets, kNoSlot);
  ring_occ_.assign(buckets / 64, 0);
}

TableKind FlowTables::classify(std::uint64_t key, double now) {
  FlowRecord* r = store_.find(key);
  if (r == nullptr) return TableKind::kNone;
  if (r->kind == TableKind::kNice && now > r->nft_expiry) {
    store_.erase(key);  // revalidation: niceness has expired
    --nft_count_;
    ++stats_.nft_expirations;
    return TableKind::kNone;
  }
  return r->kind;
}

SftEntry* FlowTables::find_sft(std::uint64_t key) noexcept {
  FlowRecord* r = store_.find(key);
  if (r == nullptr || r->kind != TableKind::kSuspicious) return nullptr;
  return &arena_[r->sft_slot];
}

std::uint32_t FlowTables::alloc_arena_slot() {
  if (arena_free_.empty()) {
    // Grow the arena geometrically up to the configured bound; entry
    // pointers are only valid until the next admit, so relocation is safe.
    const std::size_t old = arena_.size();
    std::size_t grown = old == 0 ? 16 : old * 2;
    if (grown > cfg_.sft_capacity) grown = cfg_.sft_capacity;
    assert(grown > old && "arena grown past sft_capacity");
    arena_.resize(grown);
    arena_live_.resize(grown, 0);
    ring_next_.resize(grown, kNoSlot);
    ring_prev_.resize(grown, kNoSlot);
    slot_tick_.resize(grown, 0);
    for (std::size_t i = grown; i > old; --i) {
      arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t slot = arena_free_.back();
  arena_free_.pop_back();
  arena_live_[slot] = 1;
  return slot;
}

void FlowTables::free_arena_slot(std::uint32_t slot) noexcept {
  arena_live_[slot] = 0;
  arena_free_.push_back(slot);
}

// --- deadline-bucketed eviction ring ------------------------------------

void FlowTables::ring_insert(std::uint32_t slot, double deadline) {
  std::uint64_t tick = sim::TimerWheel::quantize(deadline, ring_res_);
  if (ring_live_ == 0) {
    ring_cursor_ = tick;
  } else if (tick < ring_cursor_) {
    // Earlier than every live probation: treat as due now. The cursor is
    // a lower bound on live ticks; rewinding it would shrink the span
    // available to the entries already ringed.
    tick = ring_cursor_;
  } else if (tick - ring_cursor_ >= ring_head_.size()) {
    ring_seek();  // tighten the lower bound before paying for growth
    if (tick - ring_cursor_ >= ring_head_.size()) {
      if (tick - ring_cursor_ < kMaxRingBuckets) {
        ring_grow(static_cast<std::size_t>(tick - ring_cursor_) + 1);
      } else {
        tick = ring_cursor_ + ring_head_.size() - 1;  // far-future clamp
      }
    }
  }

  const std::size_t mask = ring_head_.size() - 1;
  const std::size_t idx = static_cast<std::size_t>(tick) & mask;
  slot_tick_[slot] = tick;
  ring_next_[slot] = kNoSlot;
  ring_prev_[slot] = ring_tail_[idx];
  if (ring_tail_[idx] != kNoSlot) {
    ring_next_[ring_tail_[idx]] = slot;
  } else {
    ring_head_[idx] = slot;
    ring_occ_[idx >> 6] |= 1ull << (idx & 63);
  }
  ring_tail_[idx] = slot;
  ++ring_live_;
}

void FlowTables::ring_unlink(std::uint32_t slot) noexcept {
  const std::size_t mask = ring_head_.size() - 1;
  const std::size_t idx =
      static_cast<std::size_t>(slot_tick_[slot]) & mask;
  const std::uint32_t p = ring_prev_[slot];
  const std::uint32_t n = ring_next_[slot];
  if (p != kNoSlot) {
    ring_next_[p] = n;
  } else {
    ring_head_[idx] = n;
  }
  if (n != kNoSlot) {
    ring_prev_[n] = p;
  } else {
    ring_tail_[idx] = p;
  }
  if (ring_head_[idx] == kNoSlot) {
    ring_occ_[idx >> 6] &= ~(1ull << (idx & 63));
  }
  ring_prev_[slot] = ring_next_[slot] = kNoSlot;
  --ring_live_;
}

void FlowTables::ring_clear() noexcept {
  std::fill(ring_head_.begin(), ring_head_.end(), kNoSlot);
  std::fill(ring_tail_.begin(), ring_tail_.end(), kNoSlot);
  std::fill(ring_occ_.begin(), ring_occ_.end(), 0);
  ring_live_ = 0;
}

void FlowTables::ring_seek() noexcept {
  assert(ring_live_ > 0);
  const std::size_t buckets = ring_head_.size();
  const std::size_t mask = buckets - 1;
  const std::size_t start = static_cast<std::size_t>(ring_cursor_) & mask;
  std::size_t advance = 0;
  while (advance < buckets) {
    const std::size_t i = (start + advance) & mask;
    const unsigned bit = i & 63;
    const std::uint64_t w = ring_occ_[i >> 6] & (~0ull << bit);
    if (w != 0) {
      advance += std::countr_zero(w) - bit;
      if (advance >= buckets) break;  // found bit is before `start`
      ring_cursor_ += advance;
      return;
    }
    advance += 64 - bit;
  }
  assert(false && "ring_seek with live entries but empty bitmap");
}

void FlowTables::ring_grow(std::size_t min_buckets) {
  std::size_t buckets = pow2_at_least(ring_head_.size() * 2);
  while (buckets < min_buckets) buckets *= 2;
  if (buckets > kMaxRingBuckets) buckets = kMaxRingBuckets;
  // Walk the OLD bucket lists to relink (slot ticks are kept). Scanning
  // arena_live_ instead would also pick up a slot that is mid-admission —
  // allocated but not yet ringed — and link it with a stale tick.
  std::vector<std::uint32_t> old_head = std::move(ring_head_);
  ring_head_.assign(buckets, kNoSlot);
  ring_tail_.assign(buckets, kNoSlot);
  ring_occ_.assign(buckets / 64, 0);
  const std::size_t live = ring_live_;
  ring_live_ = 0;
  const std::size_t mask = buckets - 1;
  for (const std::uint32_t head : old_head) {
    std::uint32_t slot = head;
    while (slot != kNoSlot) {
      const std::uint32_t next = ring_next_[slot];  // FIFO order preserved
      const std::size_t idx =
          static_cast<std::size_t>(slot_tick_[slot]) & mask;
      ring_next_[slot] = kNoSlot;
      ring_prev_[slot] = ring_tail_[idx];
      if (ring_tail_[idx] != kNoSlot) {
        ring_next_[ring_tail_[idx]] = slot;
      } else {
        ring_head_[idx] = slot;
        ring_occ_[idx >> 6] |= 1ull << (idx & 63);
      }
      ring_tail_[idx] = slot;
      ++ring_live_;
      slot = next;
    }
  }
  assert(ring_live_ == live);
  (void)live;
}

void FlowTables::evict_oldest_probation() {
  // Evict the probation closest to (or past) its deadline; it has had the
  // most chance to be judged already. The ring hands us the first
  // occupied deadline bucket in O(1) amortized (the cursor only moves
  // forward), instead of a linear arena scan per admission.
  assert(ring_live_ > 0);
  ring_seek();
  const std::size_t mask = ring_head_.size() - 1;
  const std::uint32_t victim =
      ring_head_[static_cast<std::size_t>(ring_cursor_) & mask];
  assert(victim != kNoSlot);
  if (on_evicted_) on_evicted_(arena_[victim]);
  store_.erase(arena_[victim].key);
  ring_unlink(victim);
  free_arena_slot(victim);
  --sft_count_;
  ++stats_.sft_evictions;
}

void FlowTables::evict_any(TableKind kind) {
  // Drop an arbitrary resident entry of this kind. This bound mostly
  // matters under per-packet-spoofed label floods (ablation A5), where it
  // runs once per packet — the rotating scan cursor makes consecutive
  // evictions sweep the store round-robin, amortized O(1) whenever the
  // kind is a non-vanishing fraction of residents.
  std::uint64_t victim_key = 0;
  const std::size_t at = store_.scan(
      evict_cursor_, [&](std::uint64_t key, const FlowRecord& r) {
        if (r.kind != kind) return false;
        victim_key = key;
        return true;
      });
  assert(at != decltype(store_)::kNpos);
  evict_cursor_ = at;
  store_.erase(victim_key);
  if (kind == TableKind::kNice) {
    --nft_count_;
  } else {
    --pdt_count_;
  }
}

SftEntry* FlowTables::admit_sft(std::uint64_t key,
                                const sim::FlowLabel& label, double now,
                                double window_seconds) {
  if (classify(key) != TableKind::kNone) return nullptr;

  if (sft_count_ >= cfg_.sft_capacity) evict_oldest_probation();

  const std::uint32_t slot = alloc_arena_slot();
  SftEntry& e = arena_[slot];
  e = SftEntry{};
  e.key = key;
  e.label = label;
  e.entry_time = now;
  e.split_time = now + window_seconds / 2.0;
  e.deadline = now + window_seconds;
  ring_insert(slot, e.deadline);

  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kSuspicious;
  record->sft_slot = slot;
  ++sft_count_;
  ++stats_.sft_admissions;
  return &e;
}

SftEntry FlowTables::resolve(std::uint64_t key, TableKind destination,
                             double now) {
  FlowRecord* r = store_.find(key);
  assert(r != nullptr && r->kind == TableKind::kSuspicious &&
         "resolving a flow that is not under probation");
  SftEntry out = arena_[r->sft_slot];
  ring_unlink(r->sft_slot);
  free_arena_slot(r->sft_slot);
  --sft_count_;

  // The key stays resident: its record mutates in place to the
  // destination table (no erase + reinsert, no rehash churn).
  if (destination == TableKind::kNice) {
    if (nft_count_ >= cfg_.nft_capacity) {
      evict_any(TableKind::kNice);
      r = store_.find(key);  // eviction shifts slots; re-find
    }
    r->kind = TableKind::kNice;
    r->sft_slot = kNoSlot;
    r->nft_expiry = cfg_.nft_revalidation_interval > 0.0
                        ? now + cfg_.nft_revalidation_interval
                        : std::numeric_limits<double>::infinity();
    ++nft_count_;
    ++stats_.moved_to_nft;
  } else {
    assert(destination == TableKind::kPermanentDrop);
    if (pdt_count_ >= cfg_.pdt_capacity) {
      evict_any(TableKind::kPermanentDrop);
      r = store_.find(key);
    }
    r->kind = TableKind::kPermanentDrop;
    r->sft_slot = kNoSlot;
    ++pdt_count_;
    ++stats_.moved_to_pdt;
  }
  return out;
}

void FlowTables::add_pdt_direct(std::uint64_t key) {
  assert(classify(key) == TableKind::kNone);
  if (pdt_count_ >= cfg_.pdt_capacity) evict_any(TableKind::kPermanentDrop);
  auto [record, inserted] = store_.insert(key);
  assert(inserted);
  (void)inserted;
  record->kind = TableKind::kPermanentDrop;
  ++pdt_count_;
  ++stats_.direct_pdt;
}

void FlowTables::flush() {
  if (on_evicted_) {
    for_each_sft([this](const SftEntry& e) { on_evicted_(e); });
  }
  store_.clear();
  arena_free_.clear();
  for (std::size_t i = arena_.size(); i > 0; --i) {
    arena_live_[i - 1] = 0;
    arena_free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  ring_clear();
  sft_count_ = 0;
  nft_count_ = 0;
  pdt_count_ = 0;
  ++stats_.flushes;
}

}  // namespace mafic::core
