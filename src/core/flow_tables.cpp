#include "core/flow_tables.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace mafic::core {

const char* to_string(TableKind k) noexcept {
  switch (k) {
    case TableKind::kNone:
      return "none";
    case TableKind::kSuspicious:
      return "SFT";
    case TableKind::kNice:
      return "NFT";
    case TableKind::kPermanentDrop:
      return "PDT";
  }
  return "?";
}

TableKind FlowTables::classify(std::uint64_t key, double now) {
  if (pdt_.contains(key)) return TableKind::kPermanentDrop;
  const auto it = nft_.find(key);
  if (it != nft_.end()) {
    if (now <= it->second) return TableKind::kNice;
    nft_.erase(it);  // revalidation: niceness has expired
    ++stats_.nft_expirations;
    return TableKind::kNone;
  }
  if (sft_.contains(key)) return TableKind::kSuspicious;
  return TableKind::kNone;
}

SftEntry* FlowTables::find_sft(std::uint64_t key) noexcept {
  const auto it = sft_.find(key);
  return it == sft_.end() ? nullptr : &it->second;
}

SftEntry* FlowTables::admit_sft(std::uint64_t key,
                                const sim::FlowLabel& label, double now,
                                double window_seconds) {
  if (classify(key) != TableKind::kNone) return nullptr;

  if (sft_.size() >= cfg_.sft_capacity) {
    // Evict the probation closest to (or past) its deadline; it has had
    // the most chance to be judged already.
    auto victim = sft_.begin();
    for (auto it = sft_.begin(); it != sft_.end(); ++it) {
      if (it->second.deadline < victim->second.deadline) victim = it;
    }
    sft_.erase(victim);
    ++stats_.sft_evictions;
  }

  SftEntry e;
  e.key = key;
  e.label = label;
  e.entry_time = now;
  e.split_time = now + window_seconds / 2.0;
  e.deadline = now + window_seconds;
  auto [it, inserted] = sft_.emplace(key, e);
  assert(inserted);
  ++stats_.sft_admissions;
  return &it->second;
}

SftEntry FlowTables::resolve(std::uint64_t key, TableKind destination,
                             double now) {
  const auto it = sft_.find(key);
  assert(it != sft_.end() && "resolving a flow that is not under probation");
  SftEntry out = it->second;
  sft_.erase(it);
  if (destination == TableKind::kNice) {
    if (nft_.size() >= cfg_.nft_capacity) nft_.erase(nft_.begin());
    const double expiry = cfg_.nft_revalidation_interval > 0.0
                              ? now + cfg_.nft_revalidation_interval
                              : std::numeric_limits<double>::infinity();
    nft_[key] = expiry;
    ++stats_.moved_to_nft;
  } else {
    assert(destination == TableKind::kPermanentDrop);
    insert_bounded(pdt_, cfg_.pdt_capacity, key);
    ++stats_.moved_to_pdt;
  }
  return out;
}

void FlowTables::add_pdt_direct(std::uint64_t key) {
  assert(classify(key) == TableKind::kNone);
  insert_bounded(pdt_, cfg_.pdt_capacity, key);
  ++stats_.direct_pdt;
}

void FlowTables::flush() {
  sft_.clear();
  nft_.clear();
  pdt_.clear();
  ++stats_.flushes;
}

void FlowTables::insert_bounded(std::unordered_set<std::uint64_t>& set,
                                std::size_t capacity, std::uint64_t key) {
  if (set.size() >= capacity) {
    // Hash-set eviction: drop an arbitrary resident entry. Under the
    // paper's workloads the NFT/PDT never approach capacity; this bound
    // only protects against per-packet-spoofed label floods (ablation A5).
    set.erase(set.begin());
  }
  set.insert(key);
}

}  // namespace mafic::core
