#pragma once

/// \file verdict_pipeline.hpp
/// The batched classify micro-path: a staged, struct-of-arrays verdict
/// pipeline shared by every batched inspection entry point —
/// FilterEngine::inspect_batch (contiguous and indirect),
/// FilterEngine::inspect_batch_keyed (the journaled worker sub-span path)
/// and ShardedFilter::inspect_batch (the cross-shard arrival-order walk).
/// One template, three adapters, so the paths cannot drift.
///
/// A window of kWindow packets runs through four passes over parallel
/// stack arrays:
///
///   1. pre-hash  — gate (wants) + label hash, unrolled 4-wide, issuing a
///                  FlatTable::prefetch per hot key (driver-side for the
///                  pre-keyed callers);
///   2. peek      — one read-only flat-store probe per hot key
///                  (FlowTables::peek), materializing {kind, sft_slot,
///                  nft_expiry} by value and issuing a second-stage
///                  prefetch of the SFT arena entry for probations;
///   3. lane      — a table-driven lane select per packet: terminal kinds
///                  map through a 4-entry LUT, the two timestamp tests
///                  (NFT expiry, SFT deadline) demote to the slow lane via
///                  conditional moves, and the packet-hash Pd coin is
///                  evaluated branchlessly for live probations;
///   4. verdict   — one in-arrival-order walk applying side effects
///                  (offered stats/callback, RTT observe, SFT half-window
///                  counts, coin, verdict write). Fast lanes touch no
///                  branch ladder; anything stateful — new flows, expired
///                  NFT entries, deadline-due probations — drops to the
///                  scalar tail (FilterEngine::classify_slow), which IS
///                  the per-packet oracle.
///
/// Bit-identity to per-packet inspect() is preserved by construction:
///
///  * Passes 2–3 only read; every side effect (stats, callbacks, RTT,
///    counts, RNG draws, admissions) happens in pass 4 in arrival order,
///    exactly where the scalar walk performs it.
///  * The materialized window is speculation against table state at the
///    window start. FlowTables::epoch() counts every structural mutation;
///    pass 4 re-checks it per packet and reroutes the packet through the
///    scalar tail the moment an earlier packet in the window (an
///    admission, a lazy NFT expiry, an eviction, a decide) moved the
///    epoch — stale lanes and stale arena slots are never consumed.
///  * CoinMode::kEngineStream draws happen inline in pass 4, in arrival
///    order, under exactly the scalar short-circuit (no draw when
///    drop_all_in_sft, no draw for Pd outside (0,1)), so the engine RNG
///    stream stays bit-identical. CoinMode::kPacketHash coins are pure
///    per-packet functions and precompute in pass 3.
///  * The engine clock is sampled once per batch. Every driver in the
///    repo advances time only BETWEEN batches (ManualClock via
///    advance_until, the simulator between events), so per-packet
///    clock->now() calls inside one batch are constant by contract.
///
/// Thread safety: same as FilterEngine — one engine, one thread. The
/// speculative worker path calls inspect_batch_keyed on distinct engines
/// from distinct workers; the scratch here is stack-local per call.

#include <cstdint>

#include "core/filter_engine.hpp"
#include "core/flow_tables.hpp"
#include "sim/packet.hpp"

namespace mafic::core {

class VerdictPipeline {
 public:
  /// Window width: long enough that the per-window pass overhead
  /// amortizes and the prefetch pass exposes a full line-fill-buffer's
  /// worth of concurrent misses; short enough (32 lines = 2 KB of store
  /// slots) that prefetched lines survive until their peek.
  static constexpr std::size_t kWindow = 32;

  /// Pass 1 for the un-keyed callers: gate + hash + store prefetch over
  /// one window, 4-wide unrolled (independent mix64 chains schedule in
  /// parallel). Writes keys[j] / hot[j] for j in [0, m).
  // maficlint: hot
  template <typename PacketAt>
  static void prehash_window(const FilterEngine& eng, PacketAt&& packet_at,
                             std::size_t m, std::uint64_t* keys,
                             std::uint8_t* hot) {
    std::size_t j = 0;
    for (; j + 4 <= m; j += 4) {
      gate_hash(eng, packet_at(j + 0), keys + j + 0, hot + j + 0);
      gate_hash(eng, packet_at(j + 1), keys + j + 1, hot + j + 1);
      gate_hash(eng, packet_at(j + 2), keys + j + 2, hot + j + 2);
      gate_hash(eng, packet_at(j + 3), keys + j + 3, hot + j + 3);
    }
    for (; j < m; ++j) gate_hash(eng, packet_at(j), keys + j, hot + j);
    for (j = 0; j < m; ++j) {
      if (hot[j] != 0) eng.tables_.prefetch(keys[j]);
    }
  }

  /// Passes 2–4 over one window (m <= kWindow).
  ///
  ///  * engine_at(j) — the packet's home engine (constant for the
  ///    single-engine callers; per-packet for the sharded walk).
  ///  * now_at(j)    — the engine's batch-sampled clock value.
  ///  * hot          — pass-1/partition gate bits; nullptr = all hot.
  ///  * kRegate      — re-apply wants() per packet in pass 4, matching
  ///    the pre-pipeline behaviour of the keyed/sharded paths (their
  ///    inspect_hashed walk re-gated every packet). The un-keyed batch
  ///    gates in pass 1 only, as it always has.
  ///  * seq          — journaled-path sequencer; begin_packet(span_idx[j])
  ///    fires before any of packet j's side effects.
  // maficlint: hot
  template <bool kRegate, typename EngineAt, typename PacketAt,
            typename NowAt>
  static void window(EngineAt&& engine_at, PacketAt&& packet_at,
                     NowAt&& now_at, const std::uint64_t* keys,
                     const std::uint8_t* hot, const std::uint32_t* span_idx,
                     std::size_t m, EngineVerdict* out, BatchSequencer* seq) {
    // --- SoA scratch (stack; one cache line each) -----------------------
    FlowTables::Peek pk[kWindow];
    std::uint64_t epo[kWindow];
    std::uint8_t lane[kWindow];
    std::uint8_t coin[kWindow];

    // --- pass 2: peek + arena prefetch ---------------------------------
    for (std::size_t j = 0; j < m; ++j) {
      lane[j] = kLaneCold;
      if (hot != nullptr && hot[j] == 0) continue;
      FilterEngine& e = engine_at(j);
      epo[j] = e.tables_.epoch();
      pk[j] = e.tables_.peek(keys[j]);
      if (pk[j].kind == TableKind::kSuspicious) {
        e.tables_.prefetch_sft(pk[j].sft_slot);
      }
      lane[j] = kLaneHot;  // resolved in pass 3
    }

    // --- pass 3: table-driven lane select + branchless hash coin -------
    // TableKind {kNone, kSuspicious, kNice, kPermanentDrop} maps straight
    // to a lane; the two timestamp tests demote to the slow lane as
    // conditional moves. kNone (admission path), expired NFT entries and
    // deadline-due probations are stateful and belong to the scalar tail.
    static constexpr std::uint8_t kKindLane[4] = {kLaneSlow, kLaneSft,
                                                  kLaneNft, kLanePdt};
    for (std::size_t j = 0; j < m; ++j) {
      if (lane[j] == kLaneCold) continue;
      FilterEngine& e = engine_at(j);
      const double now = now_at(j);
      std::uint8_t ln = kKindLane[static_cast<std::uint8_t>(pk[j].kind)];
      if (ln == kLaneNft) {
        ln = now > pk[j].nft_expiry ? kLaneSlow : kLaneNft;
      } else if (ln == kLaneSft) {
        const SftEntry& se = e.tables_.sft_at(pk[j].sft_slot);
        ln = now >= se.deadline ? kLaneSlow : kLaneSft;
        if (ln == kLaneSft && e.cfg_.coin_mode == CoinMode::kPacketHash) {
          coin[j] = FilterEngine::hash_coin(e.cfg_, keys[j],
                                            packet_at(j).uid)
                        ? 1
                        : 0;
        }
      }
      lane[j] = ln;
    }

    // --- pass 4: in-order verdicts + side effects ----------------------
    for (std::size_t j = 0; j < m; ++j) {
      if (lane[j] == kLaneCold) {
        out[j] = EngineVerdict::kForward;
        continue;
      }
      if (seq != nullptr) seq->begin_packet(span_idx[j]);
      FilterEngine& e = engine_at(j);
      const sim::Packet& p = packet_at(j);
      if constexpr (kRegate) {
        if (!e.wants(p)) {
          out[j] = EngineVerdict::kForward;
          continue;
        }
      }
      ++e.stats_.offered;
      if (e.on_offered_) e.on_offered_(p);
      const double now = now_at(j);
      if (p.tsecr > 0.0) e.rtt_.observe(keys[j], now - p.tsecr);

      // Speculation check: an earlier packet's side effect (admission,
      // decide, eviction, lazy expiry, flush) structurally moved the
      // tables — this packet's materialized lane/slot may be stale, so it
      // takes the scalar tail, which re-reads everything.
      std::uint8_t ln = lane[j];
      if (ln != kLaneSlow && e.tables_.epoch() != epo[j]) ln = kLaneSlow;

      switch (ln) {
        case kLaneNft:
          ++e.stats_.forwarded;
          out[j] = EngineVerdict::kForward;
          break;
        case kLanePdt:
          ++e.stats_.dropped_pdt;
          out[j] = EngineVerdict::kDropPdt;
          break;
        case kLaneSft: {
          SftEntry& se = e.tables_.sft_at(pk[j].sft_slot);
          // Half-window arrival counts, as conditional increments.
          const bool in_probe_half = now >= se.split_time;
          se.baseline_count += in_probe_half ? 0u : 1u;
          se.probe_count += in_probe_half ? 1u : 0u;
          bool drop;
          if (e.cfg_.coin_mode == CoinMode::kPacketHash) {
            drop = e.cfg_.drop_all_in_sft || coin[j] != 0;
          } else {
            // Stream mode: the draw happens HERE, in arrival order, under
            // the scalar short-circuit (bernoulli itself consumes a draw
            // only for Pd inside (0,1)).
            drop = e.cfg_.drop_all_in_sft ||
                   e.rng_.bernoulli(e.cfg_.drop_probability);
          }
          if (drop) {
            ++e.stats_.dropped_probation;
            out[j] = EngineVerdict::kDropProbation;
          } else {
            ++e.stats_.forwarded;
            out[j] = EngineVerdict::kForward;
          }
          break;
        }
        default:  // kLaneSlow: the scalar oracle tail
          out[j] = e.classify_slow(p, keys[j], now);
          break;
      }
    }
  }

 private:
  enum : std::uint8_t {
    kLaneCold = 0,  ///< gated out before the pipeline (forward, no effects)
    kLaneSlow = 1,  ///< scalar tail: new flow / expired NFT / due SFT
    kLaneNft = 2,
    kLanePdt = 3,
    kLaneSft = 4,   ///< live probation (counts + Pd coin)
    kLaneHot = 5,   ///< pass-2 placeholder, resolved by pass 3
  };

  // maficlint: hot
  static void gate_hash(const FilterEngine& eng, const sim::Packet& p,
                        std::uint64_t* key, std::uint8_t* hot) noexcept {
    const bool h = eng.wants(p);
    *hot = h ? 1 : 0;
    if (h) *key = sim::hash_label(p.label);
  }
};

}  // namespace mafic::core
