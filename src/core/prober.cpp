#include "core/prober.hpp"

namespace mafic::core {

void Prober::probe(const sim::FlowLabel& flow) {
  ++probes_;
  for (std::uint32_t i = 0; i < cfg_.probe_dup_acks; ++i) {
    if (i == 0) {
      emit(flow);
    } else {
      // Spaced emissions ride the timer wheel with the rest of the
      // probation machinery; the label capture fits its inline storage.
      sim_->schedule_timer(cfg_.probe_spacing_s * i,
                           [this, flow] { emit(flow); });
    }
  }
}

void Prober::emit(const sim::FlowLabel& flow) {
  auto p = factory_->make();
  // The probe masquerades as an ACK from the flow's destination back to
  // the claimed source.
  p->label = flow.reversed();
  p->proto = sim::Protocol::kTcp;
  p->flags = sim::tcp_flags::kAck;
  p->size_bytes = cfg_.probe_ack_bytes;
  p->ack_no = 0;  // never advances snd_una => always counted as duplicate
  p->tsval = 0.0;
  p->tsecr = 0.0;
  p->probe = true;
  p->sent_time = sim_->now();
  ++packets_;
  atr_->send(std::move(p));
}

}  // namespace mafic::core
