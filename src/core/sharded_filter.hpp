#pragma once

/// \file sharded_filter.hpp
/// N MAFIC engines partitioned by flow-key hash — the multi-core ATR.
///
/// Shard-partition invariant: flow key `k` lives on shard
/// `shard_of(k) = top log2(N) bits of k`, and ONLY that shard ever touches
/// `k`'s table entry, probation timers or RNG. Each shard is a complete
/// EngineRuntime (flat store + arena, timer wheel, clock, RNG, probe
/// counter) with zero shared mutable state, so a driver may run one thread
/// per shard with no locks: equivalence with a single engine is structural,
/// not synchronized (test_core_sharded_filter pins it; the TSan CI job
/// watches the threaded bench driver).
///
/// Per-shard RNG streams derive deterministically from one base seed
/// (shard_seed), so a single-shard engine fed shard i's substream with
/// shard_seed(seed, i) reproduces shard i's decisions bit-for-bit.
///
/// The ShardedFilter itself spawns no threads: it is the passive state +
/// routing layer. Drivers (bench_flow_store_scale's multi-threaded
/// harness, or a DPDK-style run-to-completion loop) own the threads and
/// feed each shard its pre-partitioned bursts via engine(i).inspect_batch.
///
/// Two runtimes:
///  * standalone (default constructor): every shard is a self-contained
///    EngineRuntime — manual clock, private wheel, counting probe sink —
///    and the owner drives time with advance_until().
///  * external seams (SeamProvider constructor): the embedding runtime
///    supplies each shard's Clock/TimerService/ProbeSink — how the
///    discrete-event adapter (ShardedMaficFilter) mounts the shards on
///    the simulator's clock, shared wheel and a real Prober. In this mode
///    the environment drives time; advance_until() must not be called.

#include <bit>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/standalone_runtime.hpp"
#include "util/hash.hpp"

namespace mafic::core {

class ShardedFilter {
 public:
  /// One shard's environment bindings (non-owning; must outlive the
  /// filter). See engine_seams.hpp for the seam contracts.
  struct ShardSeams {
    Clock* clock = nullptr;
    TimerService* timers = nullptr;
    ProbeSink* probes = nullptr;
  };
  /// Supplies the seams for shard `i`; invoked once per shard during
  /// construction, in shard order.
  using SeamProvider = std::function<ShardSeams(std::size_t shard)>;

  /// The partition is a bit slice, so the effective shard count is
  /// `requested` rounded up to a power of two (3 -> 4, 0 -> 1); see
  /// shard_count() for what was actually built.
  static std::size_t usable_shard_count(std::size_t requested) noexcept {
    return std::bit_ceil(requested < 1 ? std::size_t{1} : requested);
  }

  /// `shard_count` rounds up to a power of two (the partition is a bit
  /// slice). Per-shard capacities come from `cfg` verbatim: N shards
  /// hold N times the flows of one engine, mirroring per-core table
  /// memory.
  ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                const AddressPolicy* policy, std::uint64_t seed);

  /// External-seams mode: engines bind to the provided environment
  /// instead of private EngineRuntimes.
  ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                const AddressPolicy* policy, std::uint64_t seed,
                const SeamProvider& seams);

  /// Deterministic per-shard RNG seed derivation; exposed so equivalence
  /// tests can rebuild shard i's stream in a standalone engine.
  static std::uint64_t shard_seed(std::uint64_t base_seed,
                                  std::size_t shard) noexcept {
    return util::mix64(base_seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
  }

  std::size_t shard_count() const noexcept { return engines_.size(); }

  /// Home shard of a flow key: the top log2(N) bits. hash_label output is
  /// well mixed, and the flat store indexes with an independent Fibonacci
  /// multiply, so the slice costs no lookup clustering.
  std::size_t shard_of(std::uint64_t key) const noexcept {
    return shard_bits_ == 0 ? 0 : static_cast<std::size_t>(key >> shift_);
  }
  std::size_t shard_for(const sim::Packet& p) const noexcept {
    return shard_of(sim::hash_label(p.label));
  }

  /// Standalone mode only: shard i's self-contained runtime (external-
  /// seams filters have no runtimes; use engine(i) there).
  EngineRuntime& shard(std::size_t i) noexcept {
    assert(!runtimes_.empty() && "shard() is standalone-mode only");
    return *runtimes_[i];
  }
  const EngineRuntime& shard(std::size_t i) const noexcept {
    assert(!runtimes_.empty() && "shard() is standalone-mode only");
    return *runtimes_[i];
  }
  FilterEngine& engine(std::size_t i) noexcept { return *engines_[i]; }
  const FilterEngine& engine(std::size_t i) const noexcept {
    return *engines_[i];
  }

  // --- control plane (single-threaded, between datapath bursts) --------
  void activate(const VictimSet& victims);
  /// Weighted per-victim SFT quotas: forwarded to EVERY shard engine so
  /// all shards agree on class reservations (the cross-shard equivalence
  /// depends on identical class tables). Consumed by the next activate().
  void set_victim_weights(
      const std::vector<std::pair<util::Addr, double>>& weights);
  void refresh();
  void deactivate();
  bool active() const noexcept;

  /// Routes one packet to its home shard (convenience / equivalence
  /// tests; the fast path is per-shard inspect_batch on partitioned
  /// bursts).
  EngineVerdict inspect(const sim::Packet& p);

  /// The shared pre-hash pass over one burst span: gate (wants), label
  /// hash and home-shard id per packet, computed exactly once. Both the
  /// serial in-order batch walk (inspect_batch) and the speculative
  /// threaded sub-span builder (ShardedMaficFilter) consume this one
  /// routine, so the two paths cannot disagree on a packet's home shard.
  /// Cold packets (hot[i] == 0) have undefined key/shard entries.
  struct SpanPartition {
    std::vector<std::uint8_t> hot;      ///< victim-bound and inspectable
    std::vector<std::uint64_t> keys;    ///< hash_label per hot packet
    std::vector<std::uint32_t> shard;   ///< home shard per hot packet
  };
  void partition_span(const sim::Packet* const* pkts, std::size_t n,
                      SpanPartition& out) const;

  /// Range slice of the same pass, for cooperative worker-side
  /// partitioning: fills out.hot/keys/shard for [begin, end) only. The
  /// caller sizes the three arrays to the full span first; concurrent
  /// workers then partition disjoint chunks race-free (each index is
  /// written by exactly the chunk that covers it). Identical per-packet
  /// routine to partition_span, so chunked and whole-span partitions
  /// cannot disagree.
  void partition_span_range(const sim::Packet* const* pkts,
                            std::size_t begin, std::size_t end,
                            SpanPartition& out) const;

  /// Batch-inspects an indirect span (what a simulator burst delivers)
  /// in ARRIVAL order: runs partition_span, prefetches each hot key's
  /// home slot in its home shard's store a window ahead, then classifies
  /// sequentially, dispatching every packet to its home engine. Keeps
  /// the memory-level parallelism of FilterEngine::inspect_batch while
  /// preserving cross-shard arrival order — admissions schedule their
  /// probe/decision timers in span order, so a shared timer service
  /// fires them (and emits probes) exactly as a single engine would.
  /// Single-threaded by design; the threaded path (speculative sub-span
  /// fan-out with a deterministic journal merge) lives in the sim
  /// adapter, ShardedMaficFilter.
  void inspect_batch(const sim::Packet* const* pkts, std::size_t n,
                     EngineVerdict* out);

  /// Advances every shard's clock, firing due probation timers.
  /// Standalone mode only (external seams are driven by the environment).
  void advance_until(double t);

  /// Sums engine stats across shards.
  FilterEngine::Stats aggregate_stats() const;
  /// Sums flow-table stats across shards. Per-shard quota accounting is
  /// strictly shard-local (each shard registers the same victim classes
  /// over its own ring set), so the sums are deterministic for a fixed
  /// per-shard operation sequence — the property the scalar-vs-sharded
  /// sim equivalence gate relies on with quotas enabled.
  FlowTables::Stats aggregate_tables_stats() const;
  /// Per-victim decision/eviction tally for `victim`, summed over shards.
  FilterEngine::VictimStats victim_stats_for(util::Addr victim) const;
  /// Sums resident flows (all tables) across shards.
  std::size_t resident() const;

 private:
  unsigned shard_bits_ = 0;
  unsigned shift_ = 64;
  /// Standalone mode: one self-contained runtime per shard (else empty).
  std::vector<std::unique_ptr<EngineRuntime>> runtimes_;
  /// External-seams mode: engines owned directly (else empty).
  std::vector<std::unique_ptr<FilterEngine>> owned_engines_;
  /// Both modes: shard i's engine (the common routing/datapath surface).
  std::vector<FilterEngine*> engines_;
  /// inspect_batch scratch (reused; steady state allocates nothing).
  SpanPartition part_;
  /// Per-shard batch-start clock samples (one now() per shard per batch).
  std::vector<double> nows_;
};

}  // namespace mafic::core
