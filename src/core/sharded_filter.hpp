#pragma once

/// \file sharded_filter.hpp
/// N MAFIC engines partitioned by flow-key hash — the multi-core ATR.
///
/// Shard-partition invariant: flow key `k` lives on shard
/// `shard_of(k) = top log2(N) bits of k`, and ONLY that shard ever touches
/// `k`'s table entry, probation timers or RNG. Each shard is a complete
/// EngineRuntime (flat store + arena, timer wheel, clock, RNG, probe
/// counter) with zero shared mutable state, so a driver may run one thread
/// per shard with no locks: equivalence with a single engine is structural,
/// not synchronized (test_core_sharded_filter pins it; the TSan CI job
/// watches the threaded bench driver).
///
/// Per-shard RNG streams derive deterministically from one base seed
/// (shard_seed), so a single-shard engine fed shard i's substream with
/// shard_seed(seed, i) reproduces shard i's decisions bit-for-bit.
///
/// The ShardedFilter itself spawns no threads: it is the passive state +
/// routing layer. Drivers (bench_flow_store_scale's multi-threaded
/// harness, or a DPDK-style run-to-completion loop) own the threads and
/// feed each shard its pre-partitioned bursts via engine(i).inspect_batch.

#include <cstdint>
#include <memory>
#include <vector>

#include "core/standalone_runtime.hpp"
#include "util/hash.hpp"

namespace mafic::core {

class ShardedFilter {
 public:
  /// `shard_count` must be a power of two (the partition is a bit slice).
  /// Per-shard capacities come from `cfg` verbatim: N shards hold N times
  /// the flows of one engine, mirroring per-core table memory.
  ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                const AddressPolicy* policy, std::uint64_t seed);

  /// Deterministic per-shard RNG seed derivation; exposed so equivalence
  /// tests can rebuild shard i's stream in a standalone engine.
  static std::uint64_t shard_seed(std::uint64_t base_seed,
                                  std::size_t shard) noexcept {
    return util::mix64(base_seed ^ (0x9e3779b97f4a7c15ULL * (shard + 1)));
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Home shard of a flow key: the top log2(N) bits. hash_label output is
  /// well mixed, and the flat store indexes with an independent Fibonacci
  /// multiply, so the slice costs no lookup clustering.
  std::size_t shard_of(std::uint64_t key) const noexcept {
    return shard_bits_ == 0 ? 0 : static_cast<std::size_t>(key >> shift_);
  }
  std::size_t shard_for(const sim::Packet& p) const noexcept {
    return shard_of(sim::hash_label(p.label));
  }

  EngineRuntime& shard(std::size_t i) noexcept { return *shards_[i]; }
  const EngineRuntime& shard(std::size_t i) const noexcept {
    return *shards_[i];
  }
  FilterEngine& engine(std::size_t i) noexcept {
    return shards_[i]->engine();
  }

  // --- control plane (single-threaded, between datapath bursts) --------
  void activate(const VictimSet& victims);
  void refresh();
  void deactivate();
  bool active() const noexcept;

  /// Routes one packet to its home shard (convenience / equivalence
  /// tests; the fast path is per-shard inspect_batch on partitioned
  /// bursts).
  EngineVerdict inspect(const sim::Packet& p);

  /// Advances every shard's clock, firing due probation timers.
  void advance_until(double t);

  /// Sums engine stats across shards.
  FilterEngine::Stats aggregate_stats() const;
  /// Sums resident flows (all tables) across shards.
  std::size_t resident() const;

 private:
  unsigned shard_bits_ = 0;
  unsigned shift_ = 64;
  std::vector<std::unique_ptr<EngineRuntime>> shards_;
};

}  // namespace mafic::core
