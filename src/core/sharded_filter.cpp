#include "core/sharded_filter.hpp"

#include <bit>
#include <cassert>

namespace mafic::core {

ShardedFilter::ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                             const AddressPolicy* policy,
                             std::uint64_t seed) {
  if (shard_count < 1) shard_count = 1;
  assert(std::has_single_bit(shard_count) &&
         "shard count must be a power of two");
  shard_bits_ = static_cast<unsigned>(std::countr_zero(shard_count));
  shift_ = 64 - shard_bits_;
  shards_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<EngineRuntime>(
        cfg, policy, util::Rng(shard_seed(seed, i))));
  }
}

void ShardedFilter::activate(const VictimSet& victims) {
  for (auto& s : shards_) s->engine().activate(victims);
}

void ShardedFilter::refresh() {
  for (auto& s : shards_) s->engine().refresh();
}

void ShardedFilter::deactivate() {
  for (auto& s : shards_) s->engine().deactivate();
}

bool ShardedFilter::active() const noexcept {
  return !shards_.empty() && shards_.front()->engine().active();
}

EngineVerdict ShardedFilter::inspect(const sim::Packet& p) {
  // Hash once: the routing key doubles as the table key.
  const std::uint64_t key = sim::hash_label(p.label);
  return shards_[shard_of(key)]->engine().inspect_hashed(p, key);
}

void ShardedFilter::advance_until(double t) {
  for (auto& s : shards_) s->advance_until(t);
}

FilterEngine::Stats ShardedFilter::aggregate_stats() const {
  FilterEngine::Stats sum;
  for (const auto& s : shards_) {
    const FilterEngine::Stats& st = s->engine().stats();
    sum.offered += st.offered;
    sum.forwarded += st.forwarded;
    sum.dropped_probation += st.dropped_probation;
    sum.dropped_pdt += st.dropped_pdt;
    sum.screened_sources += st.screened_sources;
    sum.probes_issued += st.probes_issued;
    sum.decided_nice += st.decided_nice;
    sum.decided_malicious += st.decided_malicious;
  }
  return sum;
}

std::size_t ShardedFilter::resident() const {
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->engine().tables().resident();
  return n;
}

}  // namespace mafic::core
