#include "core/sharded_filter.hpp"

#include <bit>
#include <cassert>

#include "core/verdict_pipeline.hpp"

namespace mafic::core {

namespace {
struct Partition {
  unsigned bits;
  unsigned shift;
};

Partition partition_for(std::size_t shard_count) {
  assert(std::has_single_bit(shard_count));
  const auto bits = static_cast<unsigned>(std::countr_zero(shard_count));
  return {bits, 64 - bits};
}
}  // namespace

ShardedFilter::ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                             const AddressPolicy* policy,
                             std::uint64_t seed) {
  shard_count = usable_shard_count(shard_count);
  const Partition part = partition_for(shard_count);
  shard_bits_ = part.bits;
  shift_ = part.shift;
  runtimes_.reserve(shard_count);
  engines_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    runtimes_.push_back(std::make_unique<EngineRuntime>(
        cfg, policy, util::Rng(shard_seed(seed, i))));
    engines_.push_back(&runtimes_.back()->engine());
  }
}

ShardedFilter::ShardedFilter(std::size_t shard_count, const MaficConfig& cfg,
                             const AddressPolicy* policy, std::uint64_t seed,
                             const SeamProvider& seams) {
  shard_count = usable_shard_count(shard_count);
  const Partition part = partition_for(shard_count);
  shard_bits_ = part.bits;
  shift_ = part.shift;
  owned_engines_.reserve(shard_count);
  engines_.reserve(shard_count);
  for (std::size_t i = 0; i < shard_count; ++i) {
    const ShardSeams s = seams(i);
    assert(s.clock != nullptr && s.timers != nullptr && s.probes != nullptr);
    owned_engines_.push_back(std::make_unique<FilterEngine>(
        cfg, s.clock, s.timers, s.probes, policy,
        util::Rng(shard_seed(seed, i))));
    engines_.push_back(owned_engines_.back().get());
  }
}

void ShardedFilter::set_victim_weights(
    const std::vector<std::pair<util::Addr, double>>& weights) {
  for (auto* e : engines_) e->set_victim_weights(weights);
}

void ShardedFilter::activate(const VictimSet& victims) {
  for (auto* e : engines_) e->activate(victims);
}

void ShardedFilter::refresh() {
  for (auto* e : engines_) e->refresh();
}

void ShardedFilter::deactivate() {
  for (auto* e : engines_) e->deactivate();
}

bool ShardedFilter::active() const noexcept {
  return !engines_.empty() && engines_.front()->active();
}

EngineVerdict ShardedFilter::inspect(const sim::Packet& p) {
  // Hash once: the routing key doubles as the table key.
  const std::uint64_t key = sim::hash_label(p.label);
  return engines_[shard_of(key)]->inspect_hashed(p, key);
}

void ShardedFilter::partition_span(const sim::Packet* const* pkts,
                                   std::size_t n, SpanPartition& out) const {
  out.hot.resize(n);
  out.keys.resize(n);
  out.shard.resize(n);
  partition_span_range(pkts, 0, n, out);
}

// maficlint: hot
void ShardedFilter::partition_span_range(const sim::Packet* const* pkts,
                                         std::size_t begin, std::size_t end,
                                         SpanPartition& out) const {
  // Every shard shares the activation state and victim set (the control
  // plane fans out), so the first engine's hot gate decides for all of
  // them — cold packets skip the hash and the shard-id slice.
  const FilterEngine& gate = *engines_.front();
  const auto one = [&](std::size_t i) {
    const bool h = gate.wants(*pkts[i]);
    out.hot[i] = h ? 1 : 0;
    if (h) {
      out.keys[i] = sim::hash_label(pkts[i]->label);
      out.shard[i] = static_cast<std::uint32_t>(shard_of(out.keys[i]));
    }
  };
  // 4-wide unroll: the mix64 chains of consecutive packets carry no
  // dependence on each other, so the multiplies schedule in parallel.
  std::size_t i = begin;
  for (; i + 4 <= end; i += 4) {
    one(i + 0);
    one(i + 1);
    one(i + 2);
    one(i + 3);
  }
  for (; i < end; ++i) one(i);
}

void ShardedFilter::inspect_batch(const sim::Packet* const* pkts,
                                  std::size_t n, EngineVerdict* out) {
  partition_span(pkts, n, part_);
  // One clock sample per shard per batch (drivers advance time only
  // between batches); the pipeline's now_at indexes this by home shard.
  nows_.resize(engines_.size());
  for (std::size_t s = 0; s < engines_.size(); ++s) {
    nows_[s] = engines_[s]->now();
  }
  auto engine_at = [this](std::size_t j) -> FilterEngine& {
    return *engines_[part_.shard[j]];
  };
  auto packet_at = [pkts](std::size_t j) -> const sim::Packet& {
    return *pkts[j];
  };
  auto now_at = [this](std::size_t j) { return nows_[part_.shard[j]]; };

  constexpr std::size_t kWindow = VerdictPipeline::kWindow;
  std::size_t i = 0;
  while (i < n) {
    const std::size_t m = n - i < kWindow ? n - i : kWindow;
    for (std::size_t j = 0; j < m; ++j) {
      if (part_.hot[i + j] != 0) {
        engines_[part_.shard[i + j]]->tables().prefetch(part_.keys[i + j]);
      }
    }
    // kRegate mirrors the old per-packet inspect_hashed walk: the
    // active/victim/control gate re-applies inside the verdict pass. One
    // interleaved arrival-order walk across shards, so cross-shard timer
    // and probe scheduling order is exactly the single-engine order.
    auto engine_off = [&engine_at, i](std::size_t j) -> FilterEngine& {
      return engine_at(i + j);
    };
    auto packet_off = [&packet_at, i](std::size_t j) -> const sim::Packet& {
      return packet_at(i + j);
    };
    auto now_off = [&now_at, i](std::size_t j) { return now_at(i + j); };
    VerdictPipeline::window<true>(engine_off, packet_off, now_off,
                                  part_.keys.data() + i,
                                  part_.hot.data() + i, nullptr, m, out + i,
                                  nullptr);
    i += m;
  }
}

void ShardedFilter::advance_until(double t) {
  assert(owned_engines_.empty() &&
         "advance_until is standalone-mode only; external seams are "
         "driven by their environment");
  for (auto& s : runtimes_) s->advance_until(t);
}

FilterEngine::Stats ShardedFilter::aggregate_stats() const {
  FilterEngine::Stats sum;
  for (const auto* e : engines_) {
    const FilterEngine::Stats& st = e->stats();
    sum.offered += st.offered;
    sum.forwarded += st.forwarded;
    sum.dropped_probation += st.dropped_probation;
    sum.dropped_pdt += st.dropped_pdt;
    sum.screened_sources += st.screened_sources;
    sum.probes_issued += st.probes_issued;
    sum.decided_nice += st.decided_nice;
    sum.decided_malicious += st.decided_malicious;
  }
  return sum;
}

FlowTables::Stats ShardedFilter::aggregate_tables_stats() const {
  FlowTables::Stats sum;
  for (const auto* e : engines_) {
    const FlowTables::Stats& st = e->tables().stats();
    sum.sft_admissions += st.sft_admissions;
    sum.sft_evictions += st.sft_evictions;
    sum.quota_evictions += st.quota_evictions;
    sum.moved_to_nft += st.moved_to_nft;
    sum.moved_to_pdt += st.moved_to_pdt;
    sum.direct_pdt += st.direct_pdt;
    sum.nft_expirations += st.nft_expirations;
    sum.flushes += st.flushes;
  }
  return sum;
}

FilterEngine::VictimStats ShardedFilter::victim_stats_for(
    util::Addr victim) const {
  FilterEngine::VictimStats sum;
  for (const auto* e : engines_) {
    const auto& per = e->victim_stats();
    const auto it = per.find(victim);
    if (it == per.end()) continue;
    sum.decided_nice += it->second.decided_nice;
    sum.decided_malicious += it->second.decided_malicious;
    sum.screened_sources += it->second.screened_sources;
    sum.evictions += it->second.evictions;
    sum.quota_evictions += it->second.quota_evictions;
  }
  return sum;
}

std::size_t ShardedFilter::resident() const {
  std::size_t n = 0;
  for (const auto* e : engines_) n += e->tables().resident();
  return n;
}

}  // namespace mafic::core
