#include "core/shard_worker_pool.hpp"

#include <cassert>
#include <utility>

namespace mafic::core {

ShardWorkerPool::ShardWorkerPool(std::size_t workers) {
  if (workers < 1) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ShardWorkerPool::~ShardWorkerPool() {
  wait();  // in-flight sub-spans always complete before shutdown
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardWorkerPool::submit(TaskFn fn, std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One batch at a time; the caller pairs every submit with a wait.
    assert(!batch_open_ && "submit() while a batch is still in flight");
    fn_ = std::move(fn);
    n_tasks_ = n;
    next_task_ = 0;
    finished_ = 0;
    batch_open_ = n > 0;
    ++epoch_;
  }
  if (n > 0) work_cv_.notify_all();
}

std::size_t ShardWorkerPool::drain_tasks() {
  std::size_t ran = 0;
  for (;;) {
    std::size_t idx;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch_open_ || next_task_ >= n_tasks_) return ran;
      idx = next_task_++;
    }
    fn_(idx);  // fn_ is stable while the batch is open
    ++ran;
    std::lock_guard<std::mutex> lock(mu_);
    if (++finished_ == n_tasks_) {
      batch_open_ = false;
      done_cv_.notify_all();
    }
  }
}

void ShardWorkerPool::wait() {
  drain_tasks();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return !batch_open_ || finished_ == n_tasks_; });
}

void ShardWorkerPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain_tasks();
  }
}

}  // namespace mafic::core
