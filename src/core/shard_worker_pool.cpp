#include "core/shard_worker_pool.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace mafic::core {

namespace {
std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          // maficlint: allow(determinism) occupancy telemetry only — feeds OccupancyStats, never verdicts or fingerprints
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

ShardWorkerPool::ShardWorkerPool(std::size_t workers) {
  if (workers < 1) workers = 1;
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ShardWorkerPool::~ShardWorkerPool() {
  wait();  // in-flight sub-spans always complete before shutdown
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ShardWorkerPool::publish(TaskFn fn, const Task* tasks, std::size_t n) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // One batch at a time; the caller pairs every submit with a wait.
    assert(!batch_open_ && "submit() while a batch is still in flight");
    fn_ = std::move(fn);
    tasks_ = tasks;
    n_tasks_ = n;
    next_task_ = 0;
    finished_ = 0;
    batch_open_ = n > 0;
    ++epoch_;
    if (n > 0) {
      ++occupancy_.submissions;
      occupancy_.tasks += n;
      if (n > occupancy_.max_tasks) occupancy_.max_tasks = n;
      batch_start_ns_ = steady_ns();
    }
  }
  if (n > 0) work_cv_.notify_all();
}

void ShardWorkerPool::submit(TaskFn fn, std::size_t n) {
  publish(std::move(fn), nullptr, n);
}

void ShardWorkerPool::submit(const Task* tasks, std::size_t n) {
  publish(TaskFn{}, tasks, n);
}

ShardWorkerPool::Occupancy ShardWorkerPool::occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return occupancy_;
}

std::size_t ShardWorkerPool::drain_tasks() {
  std::size_t ran = 0;
  std::uint64_t busy = 0;
  for (;;) {
    std::size_t idx;
    const Task* tasks;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!batch_open_ || next_task_ >= n_tasks_) {
        occupancy_.busy_ns += busy;
        return ran;
      }
      idx = next_task_++;
      tasks = tasks_;
    }
    // fn_/tasks_ are stable while the batch is open.
    const std::uint64_t t0 = steady_ns();
    if (tasks != nullptr) {
      tasks[idx].run(tasks[idx].ctx, tasks[idx].arg);
    } else {
      fn_(idx);
    }
    busy += steady_ns() - t0;
    ++ran;
    std::lock_guard<std::mutex> lock(mu_);
    if (++finished_ == n_tasks_) {
      batch_open_ = false;
      occupancy_.wall_ns += steady_ns() - batch_start_ns_;
      done_cv_.notify_all();
    }
  }
}

void ShardWorkerPool::wait() {
  drain_tasks();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return !batch_open_ || finished_ == n_tasks_; });
  tasks_ = nullptr;  // the caller's task array may die after wait()
}

void ShardWorkerPool::worker_loop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = epoch_;
    }
    drain_tasks();
  }
}

}  // namespace mafic::core
