#include "util/logging.hpp"

#include <cstdarg>

namespace mafic::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace:
      return "TRACE";
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

void log_message(LogLevel level, const char* fmt, ...) {
  std::fprintf(stderr, "[%s] ", level_tag(level));
  va_list args;
  va_start(args, fmt);
  std::vfprintf(stderr, fmt, args);
  va_end(args);
  std::fputc('\n', stderr);
}

}  // namespace mafic::util
