#pragma once

/// \file time_series.hpp
/// Binned time series used to reproduce Fig. 4(b) (victim arrival bandwidth
/// over time) and to measure pre/post-trigger rates for the traffic
/// reduction metric.

#include <algorithm>
#include <cstddef>
#include <vector>

namespace mafic::util {

/// Accumulates weighted samples into fixed-width time bins starting at t=0.
class BinnedSeries {
 public:
  explicit BinnedSeries(double bin_width = 0.1) : bin_width_(bin_width) {}

  void add(double t, double weight = 1.0) {
    if (t < 0) return;
    const auto idx = static_cast<std::size_t>(t / bin_width_);
    if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
    bins_[idx] += weight;
    total_ += weight;
  }

  /// Sum of weights that landed in [t0, t1). Bins partially covered by the
  /// interval contribute proportionally to the overlap (weights are
  /// treated as uniformly spread within each bin).
  double sum_between(double t0, double t1) const {
    double s = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      const double lo = static_cast<double>(i) * bin_width_;
      const double hi = lo + bin_width_;
      if (lo >= t1) break;
      if (hi <= t0) continue;
      const double overlap = std::min(hi, t1) - std::max(lo, t0);
      s += bins_[i] * (overlap / bin_width_);
    }
    return s;
  }

  /// Average rate (weight per second) over [t0, t1).
  double rate_between(double t0, double t1) const {
    if (t1 <= t0) return 0.0;
    return sum_between(t0, t1) / (t1 - t0);
  }

  double bin_width() const noexcept { return bin_width_; }
  const std::vector<double>& bins() const noexcept { return bins_; }
  double total() const noexcept { return total_; }
  bool empty() const noexcept { return bins_.empty(); }

  /// Rate within the bin containing time t (weight / bin width).
  double rate_at(double t) const {
    if (t < 0) return 0.0;
    const auto idx = static_cast<std::size_t>(t / bin_width_);
    if (idx >= bins_.size()) return 0.0;
    return bins_[idx] / bin_width_;
  }

 private:
  double bin_width_;
  std::vector<double> bins_;
  double total_ = 0.0;
};

}  // namespace mafic::util
