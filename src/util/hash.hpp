#pragma once

/// \file hash.hpp
/// 64-bit hashing utilities shared by the sketch module (packet identity
/// hashing for LogLog counters) and the MAFIC flow tables (hashed 4-tuple
/// labels, paper section III-B).

#include <cstdint>
#include <string_view>

namespace mafic::util {

/// Stafford variant 13 of the MurmurHash3 64-bit finalizer. Good avalanche;
/// suitable as the hash behind both flow-table keys and LogLog registers.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Combines two 64-bit hashes (boost-style but with a 64-bit constant).
constexpr std::uint64_t hash_combine(std::uint64_t seed,
                                     std::uint64_t value) noexcept {
  return seed ^ (mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) +
                 (seed >> 4));
}

/// FNV-1a for byte strings (used for hashing textual identifiers in tests
/// and for deriving per-sketch hash seeds from names).
constexpr std::uint64_t fnv1a64(std::string_view bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Seeded mixing: h(seed, x). Distinct seeds give (empirically) independent
/// hash functions, which the set-union sketches rely on.
constexpr std::uint64_t seeded_hash(std::uint64_t seed,
                                    std::uint64_t x) noexcept {
  return mix64(x ^ mix64(seed ^ 0x2545F4914F6CDD1DULL));
}

}  // namespace mafic::util
