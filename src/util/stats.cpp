#include "util/stats.hpp"

#include <cmath>

namespace mafic::util {

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return std::numeric_limits<double>::quiet_NaN();
  std::sort(sample.begin(), sample.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(bins == 0 ? 1 : bins)),
      counts_(bins == 0 ? 1 : bins, 0.0) {}

void Histogram::add(double x, double weight) noexcept {
  auto idx = static_cast<long>((x - lo_) / width_);
  idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
  counts_[static_cast<std::size_t>(idx)] += weight;
  total_ += weight;
}

}  // namespace mafic::util
