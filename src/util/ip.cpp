#include "util/ip.hpp"

#include <cstdio>

namespace mafic::util {

std::string format_addr(Addr addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  return buf;
}

std::string format_subnet(const Subnet& s) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%s/%d", format_addr(s.base).c_str(),
                s.prefix_len);
  return buf;
}

std::optional<Addr> SubnetAllocator::allocate() {
  if (next_suffix_ > subnet_.capacity()) return std::nullopt;
  const Addr a =
      (subnet_.base & subnet_.mask()) | static_cast<Addr>(next_suffix_);
  ++next_suffix_;
  return a;
}

bool AddressValidator::is_legal(Addr a) const noexcept {
  if (a == kInvalidAddr) return false;
  for (const auto& s : subnets_) {
    if (s.contains(a)) return true;
  }
  return false;
}

}  // namespace mafic::util
