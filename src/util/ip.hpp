#pragma once

/// \file ip.hpp
/// IPv4-style addressing for the simulated domain: address formatting,
/// subnets, an allocator that hands out addresses to topology builders, and
/// the validator MAFIC uses to detect *illegal* (outside any allocated
/// subnet) and *unreachable* (legal prefix but never assigned to a host)
/// source addresses — the packets the paper sends straight to the PDT.

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

namespace mafic::util {

/// 32-bit IPv4-style address. Value 0 is reserved as "invalid".
using Addr = std::uint32_t;

constexpr Addr kInvalidAddr = 0;

/// Builds an address from dotted-quad components.
constexpr Addr make_addr(unsigned a, unsigned b, unsigned c,
                         unsigned d) noexcept {
  return (static_cast<Addr>(a & 0xff) << 24) |
         (static_cast<Addr>(b & 0xff) << 16) |
         (static_cast<Addr>(c & 0xff) << 8) | static_cast<Addr>(d & 0xff);
}

/// Dotted-quad rendering, e.g. "10.0.3.17".
std::string format_addr(Addr addr);

/// A CIDR prefix.
struct Subnet {
  Addr base = 0;
  int prefix_len = 32;  ///< in [0, 32]

  constexpr Addr mask() const noexcept {
    return prefix_len == 0 ? 0 : ~Addr{0} << (32 - prefix_len);
  }
  constexpr bool contains(Addr a) const noexcept {
    return (a & mask()) == (base & mask());
  }
  /// Number of host addresses available (excluding the all-zero suffix).
  constexpr std::uint64_t capacity() const noexcept {
    return (std::uint64_t{1} << (32 - prefix_len)) - 1;
  }
};

std::string format_subnet(const Subnet& s);

/// Allocates host addresses sequentially from a subnet.
class SubnetAllocator {
 public:
  explicit SubnetAllocator(Subnet subnet) : subnet_(subnet) {}

  /// Next unused host address, or nullopt when the subnet is exhausted.
  std::optional<Addr> allocate();

  const Subnet& subnet() const noexcept { return subnet_; }
  std::uint64_t allocated_count() const noexcept { return next_suffix_ - 1; }

 private:
  Subnet subnet_;
  std::uint64_t next_suffix_ = 1;  // suffix 0 is the subnet base, skipped
};

/// Registry of the address space known to the protected domain.
///
/// * An address is *legal* when it falls inside some registered subnet.
/// * An address is *reachable* when it is legal and has actually been
///   assigned to a simulated host.
///
/// MAFIC's address policy (paper section III-A) consults this to route
/// clearly-bogus sources straight into the Permanently Drop Table.
class AddressValidator {
 public:
  void add_subnet(Subnet s) { subnets_.push_back(s); }
  void add_host(Addr a) { hosts_.insert(a); }

  bool is_legal(Addr a) const noexcept;
  bool is_reachable(Addr a) const noexcept {
    return hosts_.contains(a) && is_legal(a);
  }

  std::size_t subnet_count() const noexcept { return subnets_.size(); }
  std::size_t host_count() const noexcept { return hosts_.size(); }

 private:
  std::vector<Subnet> subnets_;
  std::unordered_set<Addr> hosts_;
};

}  // namespace mafic::util
