#pragma once

/// \file rng.hpp
/// Deterministic pseudo-random number generation for simulations.
///
/// Every experiment owns one `Rng` seeded from the experiment seed so that
/// runs are exactly reproducible. The generator is xoshiro256** (public
/// domain, Blackman & Vigna), seeded through SplitMix64 as its authors
/// recommend.

#include <array>
#include <cstdint>
#include <vector>

namespace mafic::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** with convenience distributions used across the simulator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    reseed(seed);
  }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  /// Derives an independent child stream; used to give subsystems their own
  /// streams so adding draws in one module does not perturb another.
  Rng split() noexcept { return Rng(next() ^ 0xa0761d6478bd642fULL); }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi) noexcept {
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) return next();  // full 64-bit range
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * range;
    auto lowbits = static_cast<std::uint64_t>(m);
    if (lowbits < range) {
      const std::uint64_t threshold = (0 - range) % range;
      while (lowbits < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * range;
        lowbits = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::uint64_t>(m >> 64);
  }

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) noexcept {
    double u;
    do {
      u = uniform01();
    } while (u <= 0.0);
    return -mean * __builtin_log(u);
  }

  /// Standard normal via Marsaglia polar method.
  double normal(double mean = 0.0, double stddev = 1.0) noexcept {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = __builtin_sqrt(-2.0 * __builtin_log(s) / s);
    spare_ = v * factor;
    have_spare_ = true;
    return mean + stddev * u * factor;
  }

  /// Uniformly chosen index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n) noexcept {
    return static_cast<std::size_t>(uniform_int(0, n - 1));
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace mafic::util
