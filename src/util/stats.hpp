#pragma once

/// \file stats.hpp
/// Small statistics helpers: streaming mean/variance, exponentially weighted
/// moving averages (rate baselines, RTT estimation), and percentile
/// computation for benchmark reporting.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace mafic::util {

/// Welford streaming mean/variance with min/max tracking.
class RunningStats {
 public:
  void push(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void reset() noexcept { *this = RunningStats{}; }

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const noexcept { return std::sqrt(variance()); }
  double min() const noexcept {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  double max() const noexcept {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exponentially weighted moving average. `alpha` is the weight of the new
/// sample; the first sample initializes the average directly.
class Ewma {
 public:
  explicit Ewma(double alpha = 0.25) noexcept : alpha_(alpha) {}

  void update(double x) noexcept {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ += alpha_ * (x - value_);
    }
  }

  void reset() noexcept {
    initialized_ = false;
    value_ = 0.0;
  }

  bool initialized() const noexcept { return initialized_; }
  double value() const noexcept { return value_; }
  double alpha() const noexcept { return alpha_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

/// Percentile (linear interpolation) of an unsorted sample; q in [0, 1].
/// Returns NaN on an empty sample.
double percentile(std::vector<double> sample, double q);

/// Fixed-width histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin. Used by benches for latency/error distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, double weight = 1.0) noexcept;
  const std::vector<double>& bins() const noexcept { return counts_; }
  double bin_width() const noexcept { return width_; }
  double lo() const noexcept { return lo_; }
  double total() const noexcept { return total_; }

 private:
  double lo_;
  double width_;
  std::vector<double> counts_;
  double total_ = 0.0;
};

}  // namespace mafic::util
