#pragma once

/// \file unique_function.hpp
/// Type-erased move-only callable (a C++20 stand-in for C++23's
/// std::move_only_function). The event queue and the timer wheel store
/// these so events can own packets (std::unique_ptr captures), which
/// std::function cannot.
///
/// Small callables (up to kInlineSize bytes, nothrow-move-constructible)
/// are stored inline; scheduling them performs no heap allocation. This is
/// what keeps the per-flow probation timers — lambdas capturing a pointer
/// and a 64-bit key — allocation-free on the datapath. Larger captures
/// fall back to the heap transparently.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mafic::util {

template <typename Signature>
class UniqueFunction;

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  /// Inline storage: enough for a lambda capturing [this, key, a couple of
  /// doubles] — the common shape of simulator events.
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(&storage_)) D(std::forward<F>(f));
      vtable_ = &kInlineVTable<D>;
    } else {
      *reinterpret_cast<D**>(&storage_) = new D(std::forward<F>(f));
      vtable_ = &kHeapVTable<D>;
    }
  }

  UniqueFunction(UniqueFunction&& other) noexcept { take(other); }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const noexcept { return vtable_ != nullptr; }

  R operator()(Args... args) {
    return vtable_->invoke(&storage_, std::forward<Args>(args)...);
  }

  /// True when the held callable lives in the inline buffer (diagnostics;
  /// the allocation-free guarantees of the hot path rest on this).
  bool is_inline() const noexcept {
    return vtable_ != nullptr && vtable_->inline_storage;
  }

 private:
  struct VTable {
    R (*invoke)(void*, Args&&...);
    void (*move_to)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void*) noexcept;
    bool inline_storage;
  };

  template <typename D>
  static constexpr bool kFitsInline =
      sizeof(D) <= kInlineSize &&
      alignof(D) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr VTable kInlineVTable{
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        D* f = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*f));
        f->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      true,
  };

  template <typename D>
  static constexpr VTable kHeapVTable{
      [](void* s, Args&&... args) -> R {
        return (**reinterpret_cast<D**>(s))(std::forward<Args>(args)...);
      },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* s) noexcept { delete *reinterpret_cast<D**>(s); },
      false,
  };

  void take(UniqueFunction& other) noexcept {
    if (other.vtable_ != nullptr) {
      other.vtable_->move_to(&other.storage_, &storage_);
      vtable_ = other.vtable_;
      other.vtable_ = nullptr;
    }
  }

  void reset() noexcept {
    if (vtable_ != nullptr) {
      vtable_->destroy(&storage_);
      vtable_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineSize];
  const VTable* vtable_ = nullptr;
};

}  // namespace mafic::util
