#pragma once

/// \file table_printer.hpp
/// Aligned console tables. The figure benches use this to print the same
/// rows/series the paper's plots report.

#include <cstdio>
#include <string>
#include <vector>

namespace mafic::util {

/// Collects rows of string cells and prints them with aligned columns.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; missing cells render empty, extra cells are kept.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders to the given stream (default stdout).
  void print(std::FILE* out = stdout) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mafic::util
