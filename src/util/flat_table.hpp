#pragma once

/// \file flat_table.hpp
/// Cache-friendly open-addressing hash table: 64-bit keys over contiguous
/// slots with robin-hood probing and backward-shift deletion (no
/// tombstones). Built for the MAFIC flow store, where the keys are already
/// well-mixed 64-bit label hashes and the value is a small flow record.
///
/// Design points:
///  * One flat array of {key, probe-distance, value} slots; a lookup is a
///    short linear scan over adjacent cache lines instead of the
///    node-per-entry pointer chase of std::unordered_map.
///  * Robin-hood insertion bounds the variance of probe distances, so the
///    worst-case lookup stays short even near the load-factor ceiling.
///  * Backward-shift deletion keeps the table tombstone-free: erase cost is
///    paid once instead of polluting every later probe.
///  * The table grows by doubling up to a fixed bound given at
///    construction. Once the working set is resident no further
///    allocation ever happens — the datapath premise of the flow store.
///
/// Slot indices derive from Fibonacci hashing of the key so that small
/// integer keys (tests) and mixed label hashes (production) both spread.

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace mafic::util {

template <typename Value>
class FlatTable {
 public:
  /// `max_entries` bounds how many keys the table will ever hold at once
  /// (the caller enforces it; the table only sizes for it). `max_load`
  /// caps occupancy per allocated slot array.
  explicit FlatTable(std::size_t max_entries, double max_load = 0.8)
      : max_entries_(max_entries < 1 ? 1 : max_entries),
        max_load_(max_load < 0.99 ? (max_load > 0.1 ? max_load : 0.1)
                                  : 0.99) {
    reallocate(kMinSlots);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t slot_count() const noexcept { return slots_.size(); }
  std::size_t max_entries() const noexcept { return max_entries_; }

  Value* find(std::uint64_t key) noexcept {
    std::size_t idx = home(key);
    std::uint32_t dist = 1;
    while (slots_[idx].dist >= dist) {
      if (slots_[idx].key == key) return &slots_[idx].value;
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return nullptr;
  }

  const Value* find(std::uint64_t key) const noexcept {
    return const_cast<FlatTable*>(this)->find(key);
  }

  bool contains(std::uint64_t key) const noexcept {
    return find(key) != nullptr;
  }

  /// Issues a software prefetch for the key's home slot. Batched lookups
  /// prefetch a window of keys ahead so the dependent loads of find()
  /// overlap instead of serializing on DRAM latency; with robin-hood
  /// probing nearly every lookup resolves within the home cache line.
  void prefetch(std::uint64_t key) const noexcept {
    __builtin_prefetch(&slots_[home(key)], /*rw=*/0, /*locality=*/1);
  }

  /// Inserts `key` with a default-constructed value. Returns the value
  /// slot and whether insertion happened (false: key already present, the
  /// existing value is returned). The caller must keep size() within
  /// max_entries(); exceeding it is a programming error.
  std::pair<Value*, bool> insert(std::uint64_t key) {
    assert(size_ < max_entries_ && "FlatTable over its entry bound");
    if ((size_ + 1) * kLoadDen > slots_.size() * load_num_ &&
        slots_.size() < bound_slots_) {
      reallocate(slots_.size() * 2);
    }

    std::size_t idx = home(key);
    std::uint32_t dist = 1;
    std::uint64_t cur_key = key;
    Value cur_val{};
    Value* placed = nullptr;
    for (;;) {
      Slot& s = slots_[idx];
      if (s.dist == 0) {
        s.key = cur_key;
        s.dist = dist;
        s.value = std::move(cur_val);
        ++size_;
        return {placed != nullptr ? placed : &s.value, true};
      }
      if (s.key == cur_key) {
        // Only reachable while still carrying the original key: all
        // resident keys are unique, so a displaced carry never matches.
        return {&s.value, false};
      }
      if (s.dist < dist) {  // robin hood: rich slot yields to the poor key
        std::swap(cur_key, s.key);
        std::swap(dist, s.dist);
        std::swap(cur_val, s.value);
        if (placed == nullptr) placed = &s.value;
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
  }

  bool erase(std::uint64_t key) noexcept {
    std::size_t idx = home(key);
    std::uint32_t dist = 1;
    while (slots_[idx].dist >= dist) {
      if (slots_[idx].key == key) {
        shift_back(idx);
        --size_;
        return true;
      }
      idx = (idx + 1) & mask_;
      ++dist;
    }
    return false;
  }

  void clear() noexcept {
    for (Slot& s : slots_) {
      if (s.dist != 0) {
        s.value = Value{};
        s.dist = 0;
      }
    }
    size_ = 0;
  }

  /// Visits every (key, value) pair in slot order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Slot& s : slots_) {
      if (s.dist != 0) fn(s.key, s.value);
    }
  }

  template <typename Fn>
  void for_each(Fn&& fn) {
    for (Slot& s : slots_) {
      if (s.dist != 0) fn(s.key, s.value);
    }
  }

  /// Visits occupied slots starting at slot index `hint` (wrapping),
  /// stopping at the first entry for which `fn` returns true. Returns the
  /// matched slot index — pass it back as the next scan's hint for
  /// amortized-O(1) round-robin selection (e.g. capacity eviction) — or
  /// kNpos when nothing matched.
  static constexpr std::size_t kNpos = ~std::size_t{0};

  template <typename Fn>
  std::size_t scan(std::size_t hint, Fn&& fn) const {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      const std::size_t at = (hint + i) & mask_;
      const Slot& s = slots_[at];
      if (s.dist != 0 && fn(s.key, s.value)) return at;
    }
    return kNpos;
  }

  /// Longest current probe sequence (diagnostics; robin hood keeps this
  /// small even at high load).
  std::uint32_t max_probe_length() const noexcept {
    std::uint32_t m = 0;
    for (const Slot& s : slots_) {
      if (s.dist > m) m = s.dist;
    }
    return m;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t dist = 0;  ///< probe distance + 1; 0 = empty
    Value value{};
  };

  static constexpr std::size_t kMinSlots = 16;
  static constexpr std::size_t kLoadDen = 1024;

  std::size_t home(std::uint64_t key) const noexcept {
    // Fibonacci hashing: spreads both raw small integers and mixed hashes.
    return static_cast<std::size_t>((key * 0x9e3779b97f4a7c15ULL) >> shift_);
  }

  void shift_back(std::size_t idx) noexcept {
    for (;;) {
      const std::size_t nxt = (idx + 1) & mask_;
      if (slots_[nxt].dist <= 1) {
        slots_[idx].value = Value{};
        slots_[idx].dist = 0;
        return;
      }
      slots_[idx].key = slots_[nxt].key;
      slots_[idx].dist = slots_[nxt].dist - 1;
      slots_[idx].value = std::move(slots_[nxt].value);
      idx = nxt;
    }
  }

  static std::size_t next_pow2(std::size_t n) noexcept {
    std::size_t p = kMinSlots;
    while (p < n) p *= 2;
    return p;
  }

  void reallocate(std::size_t new_slot_count) {
    load_num_ = static_cast<std::size_t>(max_load_ * kLoadDen);
    bound_slots_ = next_pow2(
        static_cast<std::size_t>(double(max_entries_) / max_load_) + 1);
    if (new_slot_count > bound_slots_) new_slot_count = bound_slots_;

    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_slot_count, Slot{});
    mask_ = new_slot_count - 1;
    shift_ = 64 - std::countr_zero(new_slot_count);
    size_ = 0;
    for (Slot& s : old) {
      if (s.dist != 0) *insert(s.key).first = std::move(s.value);
    }
  }

  std::size_t max_entries_;
  double max_load_;
  std::size_t load_num_ = 0;
  std::size_t bound_slots_ = kMinSlots;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

}  // namespace mafic::util
