#include "util/table_printer.hpp"

#include <algorithm>

namespace mafic::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void TablePrinter::print(std::FILE* out) const {
  std::size_t cols = headers_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());

  std::vector<std::size_t> widths(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  widen(headers_);
  for (const auto& r : rows_) widen(r);

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      std::fprintf(out, "%-*s", static_cast<int>(widths[i]) + 2, cell.c_str());
    }
    std::fputc('\n', out);
  };

  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  for (std::size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& r : rows_) print_row(r);
}

}  // namespace mafic::util
