#pragma once

/// \file logging.hpp
/// Minimal leveled logging. Disabled levels cost one branch. The simulator
/// is single-threaded, so no synchronization is needed.

#include <cstdio>
#include <string>

namespace mafic::util {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global minimum level; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Core sink; prepends the level tag. `printf`-style formatting.
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

inline bool log_enabled(LogLevel level) noexcept {
  return static_cast<int>(level) >= static_cast<int>(log_level());
}

#define MAFIC_LOG(level, ...)                                 \
  do {                                                        \
    if (::mafic::util::log_enabled(level)) {                  \
      ::mafic::util::log_message((level), __VA_ARGS__);       \
    }                                                         \
  } while (0)

#define MAFIC_TRACE(...) MAFIC_LOG(::mafic::util::LogLevel::kTrace, __VA_ARGS__)
#define MAFIC_DEBUG(...) MAFIC_LOG(::mafic::util::LogLevel::kDebug, __VA_ARGS__)
#define MAFIC_INFO(...) MAFIC_LOG(::mafic::util::LogLevel::kInfo, __VA_ARGS__)
#define MAFIC_WARN(...) MAFIC_LOG(::mafic::util::LogLevel::kWarn, __VA_ARGS__)
#define MAFIC_ERROR(...) MAFIC_LOG(::mafic::util::LogLevel::kError, __VA_ARGS__)

}  // namespace mafic::util
