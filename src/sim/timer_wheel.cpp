#include "sim/timer_wheel.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <cstring>

namespace mafic::sim {

namespace {
constexpr std::uint64_t kNoCandidate = ~0ull;
}

TimerWheel::TimerWheel(SimTime resolution)
    : resolution_(resolution > 0.0 ? resolution : 0.0005) {
  for (auto& level : heads_) {
    for (auto& head : level) head = kNil;
  }
  std::memset(occupied_, 0, sizeof(occupied_));
}

std::uint64_t TimerWheel::quantize(SimTime t, SimTime resolution) noexcept {
  if (t <= 0.0) return 0;
  const double q = t / resolution;
  auto tick = static_cast<std::uint64_t>(q);
  // Ceiling with a relative tolerance: a time within float fuzz of a tick
  // boundary belongs to that tick, not the next one.
  const double tol = 1e-9 * (q < 1.0 ? 1.0 : q);
  if (static_cast<double>(tick) + tol < q) ++tick;
  return tick;
}

std::uint64_t TimerWheel::tick_for(SimTime t) const noexcept {
  return quantize(t, resolution_);
}

std::uint32_t TimerWheel::alloc_node() {
  if (free_.empty()) {
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }
  const std::uint32_t idx = free_.back();
  free_.pop_back();
  return idx;
}

void TimerWheel::release_node(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  n.fn = TimerFn{};
  n.where = kFree;
  n.next = kNil;
  n.prev = kNil;
  free_.push_back(idx);
}

TimerWheel::Node* TimerWheel::resolve(TimerId id) noexcept {
  const auto idx = static_cast<std::uint32_t>(id & 0xffffffffu);
  if (idx == 0 || idx > nodes_.size()) return nullptr;
  Node& n = nodes_[idx - 1];
  if (n.gen != static_cast<std::uint32_t>(id >> 32)) return nullptr;
  if (n.where == kFree || n.where == kDead) return nullptr;
  return &n;
}

void TimerWheel::place(std::uint32_t idx) {
  Node& n = nodes_[idx];
  {
    // The cursor may have been peeked ahead (next_time advances it to the
    // then-earliest timer). A target behind the cursor but after the last
    // *fired* tick must rewind the wheel, not get clamped to the far
    // future.
    const std::uint64_t target =
        n.expiry_tick > fired_tick_ ? n.expiry_tick : fired_tick_;
    if (target < cur_tick_) rewind_to(target);
  }
  if (n.expiry_tick <= cur_tick_) {
    // Due immediately: join the tick currently being fired (or open a
    // fire buffer at the cursor). Sequence order keeps this deterministic.
    n.expiry_tick = cur_tick_;
    n.where = kInDue;
    due_.push_back({idx, n.seq});
    return;
  }

  std::uint64_t delta = n.expiry_tick - cur_tick_;
  std::uint64_t effective = n.expiry_tick;
  int level = 0;
  while (level < kLevels - 1 && delta >= (1ull << (kSlotBits * (level + 1)))) {
    ++level;
  }
  if (delta > 0xffffffffull) {
    // Beyond the wheel horizon: park in the farthest level-3 slot; the
    // node re-cascades (keeping its true expiry) as the cursor closes in.
    effective = cur_tick_ + 0xffffffffull;
  }
  const auto slot = static_cast<std::uint32_t>(
      (effective >> (kSlotBits * level)) & (kSlotsPerLevel - 1));

  n.where = static_cast<std::uint8_t>(kInLevel0 + level);
  n.slot = slot;
  n.prev = kNil;
  n.next = heads_[level][slot];
  if (n.next != kNil) nodes_[n.next].prev = idx;
  heads_[level][slot] = idx;
  occupied_[level][slot >> 6] |= 1ull << (slot & 63);
}

void TimerWheel::unlink(std::uint32_t idx) noexcept {
  Node& n = nodes_[idx];
  assert(n.where < kInDue);
  const int level = n.where - kInLevel0;
  const std::uint32_t slot = n.slot;
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    assert(heads_[level][slot] == idx);
    heads_[level][slot] = n.next;
  }
  if (n.next != kNil) nodes_[n.next].prev = n.prev;
  if (heads_[level][slot] == kNil) {
    occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  }
  n.next = kNil;
  n.prev = kNil;
}

TimerId TimerWheel::schedule_at(SimTime t, TimerFn fn) {
  const std::uint32_t idx = alloc_node();
  Node& n = nodes_[idx];
  n.fn = std::move(fn);
  n.expiry_tick = tick_for(t);
  n.seq = next_seq_++;
  place(idx);
  ++size_;
  return (static_cast<TimerId>(n.gen) << 32) | (idx + 1);
}

bool TimerWheel::cancel(TimerId id) {
  Node* n = resolve(id);
  if (n == nullptr) return false;
  ++n->gen;
  --size_;
  if (n->where == kInDue) {
    // Referenced by the due buffer: mark dead, recycled when it drains.
    n->fn = TimerFn{};
    n->where = kDead;
    return true;
  }
  unlink(static_cast<std::uint32_t>(n - nodes_.data()));
  release_node(static_cast<std::uint32_t>(n - nodes_.data()));
  return true;
}

bool TimerWheel::reschedule(TimerId id, SimTime t) {
  Node* n = resolve(id);
  if (n == nullptr) return false;
  const auto idx = static_cast<std::uint32_t>(n - nodes_.data());
  const std::uint64_t tick = tick_for(t);
  if (n->where == kInDue) {
    // Same tick (or committed past): it fires this batch either way.
    const std::uint64_t target = tick > fired_tick_ ? tick : fired_tick_;
    if (target >= cur_tick_ && tick <= cur_tick_) return true;
    // Move out of the due buffer; the stale buffer entry is recognized by
    // its outdated sequence number and skipped.
    n->expiry_tick = tick;
    n->seq = next_seq_++;
    place(idx);
    return true;
  }
  unlink(idx);
  n->expiry_tick = tick;
  n->seq = next_seq_++;
  place(idx);
  return true;
}

void TimerWheel::prime_due() noexcept {
  while (due_pos_ < due_.size()) {
    const DueEntry entry = due_[due_pos_];
    Node& n = nodes_[entry.idx];
    if (n.seq == entry.seq) {
      if (n.where == kInDue) return;  // live head
      if (n.where == kDead) release_node(entry.idx);
    }
    // Stale entry: the node was cancelled, rescheduled away, or recycled.
    ++due_pos_;
  }
  due_.clear();
  due_pos_ = 0;
}

int TimerWheel::next_occupied_distance(int level,
                                       std::uint32_t from) const noexcept {
  const std::uint64_t* bm = occupied_[level];
  const std::uint32_t w0 = from >> 6;
  const std::uint32_t bit = from & 63;
  std::uint64_t word = bm[w0] & (~0ull << bit);
  if (word != 0) {
    return static_cast<int>(
        (((w0 << 6) + std::countr_zero(word) - from)) & 0xff);
  }
  for (std::uint32_t k = 1; k <= 3; ++k) {
    const std::uint32_t w = (w0 + k) & 3;
    if (bm[w] != 0) {
      return static_cast<int>(
        (((w << 6) + std::countr_zero(bm[w])) - from) & 0xff);
    }
  }
  word = bit == 0 ? 0 : (bm[w0] & ~(~0ull << bit));
  if (word != 0) {
    return static_cast<int>(
        (((w0 << 6) + std::countr_zero(word)) - from) & 0xff);
  }
  return -1;
}

void TimerWheel::rewind_to(std::uint64_t tick) {
  assert(tick >= fired_tick_);
  // Gather every armed node: slot lists plus the unfired due buffer.
  // (The due buffer cannot be partially fired here: firing commits the
  // cursor via fired_tick_, and rewind targets never go behind it.)
  std::vector<std::uint32_t> armed;
  armed.reserve(size_);
  for (int level = 0; level < kLevels; ++level) {
    for (std::uint32_t slot = 0; slot < kSlotsPerLevel; ++slot) {
      std::uint32_t idx = heads_[level][slot];
      heads_[level][slot] = kNil;
      while (idx != kNil) {
        const std::uint32_t next = nodes_[idx].next;
        nodes_[idx].next = kNil;
        nodes_[idx].prev = kNil;
        armed.push_back(idx);
        idx = next;
      }
    }
  }
  std::memset(occupied_, 0, sizeof(occupied_));
  for (std::size_t i = due_pos_; i < due_.size(); ++i) {
    const DueEntry entry = due_[i];
    Node& n = nodes_[entry.idx];
    if (n.seq != entry.seq) continue;  // stale (rescheduled away/recycled)
    if (n.where == kDead) {
      release_node(entry.idx);
      continue;
    }
    if (n.where == kInDue) armed.push_back(entry.idx);
  }
  due_.clear();
  due_pos_ = 0;

  cur_tick_ = tick;
  for (const std::uint32_t idx : armed) place(idx);
}

void TimerWheel::cascade(int level, std::uint32_t slot) {
  std::uint32_t idx = heads_[level][slot];
  heads_[level][slot] = kNil;
  occupied_[level][slot >> 6] &= ~(1ull << (slot & 63));
  while (idx != kNil) {
    const std::uint32_t next = nodes_[idx].next;
    nodes_[idx].next = kNil;
    nodes_[idx].prev = kNil;
    place(idx);  // re-place relative to the advanced cursor
    idx = next;
  }
}

void TimerWheel::collect_next_tick() {
  assert(due_.empty());
  for (;;) {
    const auto cur0 = static_cast<std::uint32_t>(cur_tick_ & 0xff);
    const int d0 = next_occupied_distance(0, cur0);
    // Candidate fire tick: the nearest armed level-0 slot — or the cursor
    // itself when an earlier cascade already landed same-tick nodes in
    // the due buffer.
    std::uint64_t candidate =
        d0 < 0 ? kNoCandidate : cur_tick_ + static_cast<std::uint64_t>(d0);
    if (!due_.empty() && cur_tick_ < candidate) candidate = cur_tick_;

    // The next higher-level window boundary at or before the candidate:
    // cascading it may reveal timers that fire sooner (or tie). A
    // distance-0 boundary is legitimate right after a jump that crossed
    // several levels' windows at once.
    int cascade_level = -1;
    std::uint64_t cascade_start = candidate;
    for (int level = 1; level < kLevels; ++level) {
      const int shift = kSlotBits * level;
      const auto curl =
          static_cast<std::uint32_t>((cur_tick_ >> shift) & 0xff);
      const int dl = next_occupied_distance(level, curl);
      if (dl < 0) continue;
      const std::uint64_t start =
          ((cur_tick_ >> shift) + static_cast<std::uint64_t>(dl)) << shift;
      if (start <= cascade_start) {  // ties go to the highest level
        cascade_start = start;
        cascade_level = level;
      }
    }

    if (cascade_level >= 0) {
      cur_tick_ = cascade_start;  // never moves backwards
      const int shift = kSlotBits * cascade_level;
      cascade(cascade_level, static_cast<std::uint32_t>(
                                 (cascade_start >> shift) & 0xff));
      continue;
    }

    // No cascade can affect the candidate tick anymore: advance and merge
    // the candidate's level-0 slot (if armed) into the due buffer, then
    // establish schedule order across both arrival paths.
    assert(candidate != kNoCandidate &&
           "collect_next_tick on an empty wheel");
    cur_tick_ = candidate;
    const auto slot = static_cast<std::uint32_t>(candidate & 0xff);
    if ((occupied_[0][slot >> 6] >> (slot & 63)) & 1) {
      // A level-0 slot holds exactly one tick's nodes: indices equal mod
      // 256 within a 256-tick placement horizon collapse to equality.
      std::uint32_t idx = heads_[0][slot];
      if (nodes_[idx].expiry_tick == candidate) {
        heads_[0][slot] = kNil;
        occupied_[0][slot >> 6] &= ~(1ull << (slot & 63));
        while (idx != kNil) {
          Node& n = nodes_[idx];
          assert(n.expiry_tick == cur_tick_);
          n.where = kInDue;
          due_.push_back({idx, n.seq});
          const std::uint32_t next = n.next;
          n.next = kNil;
          n.prev = kNil;
          idx = next;
        }
      }
    }
    std::sort(due_.begin(), due_.end(),
              [](const DueEntry& a, const DueEntry& b) {
                return a.seq < b.seq;
              });
    assert(!due_.empty());
    return;
  }
}

SimTime TimerWheel::next_time() {
  prime_due();
  if (due_.empty()) {
    assert(size_ > 0 && "next_time on an empty wheel");
    collect_next_tick();
    prime_due();
  }
  return time_of(cur_tick_);
}

TimerWheel::Popped TimerWheel::pop() {
  prime_due();
  if (due_.empty()) {
    assert(size_ > 0 && "pop on an empty wheel");
    collect_next_tick();
    prime_due();
  }
  assert(due_pos_ < due_.size());
  fired_tick_ = cur_tick_;  // commits the cursor: no rewind behind this
  const DueEntry entry = due_[due_pos_++];
  Node& n = nodes_[entry.idx];
  Popped out{time_of(cur_tick_),
             (static_cast<TimerId>(n.gen) << 32) | (entry.idx + 1),
             std::move(n.fn)};
  ++n.gen;
  n.where = kDead;
  release_node(entry.idx);
  --size_;
  return out;
}

void TimerWheel::clear() {
  free_.clear();
  for (std::size_t i = nodes_.size(); i > 0; --i) {
    Node& n = nodes_[i - 1];
    n.fn = TimerFn{};
    ++n.gen;  // preserved (not reset) so stale ids keep failing to resolve
    n.next = kNil;
    n.prev = kNil;
    n.where = kFree;
    free_.push_back(static_cast<std::uint32_t>(i - 1));
  }
  for (auto& level : heads_) {
    for (auto& head : level) head = kNil;
  }
  std::memset(occupied_, 0, sizeof(occupied_));
  due_.clear();
  due_pos_ = 0;
  size_ = 0;
}

}  // namespace mafic::sim
