#pragma once

/// \file simulator.hpp
/// The discrete-event simulation kernel. Components hold a Simulator* and
/// schedule work with schedule()/schedule_at(); nothing in the library uses
/// global state, so independent simulations can coexist in one process.

#include <cstdint>

#include "sim/event_queue.hpp"
#include "sim/types.hpp"

namespace mafic::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` after `delay` seconds (clamped to now for negatives).
  EventId schedule(SimTime delay, EventFn fn) {
    return schedule_at(delay > 0 ? now_ + delay : now_, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(SimTime t, EventFn fn) {
    return queue_.push(t < now_ ? now_ : t, std::move(fn));
  }

  /// Cancels a pending event; safe to call with stale ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Runs until the queue drains or stop() is called. Returns the number of
  /// events processed.
  std::size_t run();

  /// Processes every event with time <= t, then advances the clock to t.
  std::size_t run_until(SimTime t);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  bool pending() const noexcept { return !queue_.empty(); }
  std::size_t pending_count() const noexcept { return queue_.size(); }
  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
};

}  // namespace mafic::sim
