#pragma once

/// \file simulator.hpp
/// The discrete-event simulation kernel. Components hold a Simulator* and
/// schedule work with schedule()/schedule_at(); nothing in the library uses
/// global state, so independent simulations can coexist in one process.
///
/// Two event sources drive the clock:
///  * the binary-heap EventQueue — exact-time, one-shot events (packet
///    arrivals, transmissions, experiment scripting);
///  * the hierarchical TimerWheel — high-churn per-flow timers (probation
///    probes/decisions, keep-alives) with O(1) schedule/cancel/reschedule,
///    quantized to the wheel resolution.
/// The run loop interleaves both in time order; at equal times, queue
/// events fire before wheel timers (deterministic regardless of internals).
///
/// Tick batching: a TickDrain hook lets a fleet-wide burst scheduler
/// (core::FleetBurstScheduler) accumulate same-instant burst deliveries
/// across events and flush them as one batch. Delivery events that defer
/// their side effects into the drain are scheduled with
/// schedule_batchable_at; the run loop flushes the drain before executing
/// ANY other event (or wheel timer, or advancing the clock), so deferred
/// effects land exactly where the undeferred events would have put them —
/// batching coalesces only runs of consecutive same-time batchable
/// events and can never reorder work relative to the serial schedule.

#include <cstdint>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/timer_wheel.hpp"
#include "sim/types.hpp"

namespace mafic::sim {

/// Deferred-work hook for fleet-wide tick batching (see file comment).
/// pending() must be cheap; drain() runs every deferred effect at the
/// current simulation time and leaves pending() false. drain() may
/// schedule new events (at now or later) but must not re-defer work.
class TickDrain {
 public:
  virtual ~TickDrain() = default;
  virtual bool pending() const noexcept = 0;
  virtual void drain() = 0;
};

class Simulator {
 public:
  explicit Simulator(SimTime timer_resolution = 0.0005)
      : wheel_(timer_resolution) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const noexcept { return now_; }

  /// Schedules `fn` after `delay` seconds (clamped to now for negatives).
  EventId schedule(SimTime delay, EventFn fn) {
    return schedule_at(delay > 0 ? now_ + delay : now_, std::move(fn));
  }

  /// Schedules `fn` at absolute time `t` (clamped to now if in the past).
  EventId schedule_at(SimTime t, EventFn fn) {
    return queue_.push(t < now_ ? now_ : t, std::move(fn));
  }

  /// Cancels a pending event; safe to call with stale ids.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Schedules a batchable burst-delivery event at absolute time `t`:
  /// the installed TickDrain stays un-flushed across consecutive
  /// same-time batchable events, letting their deferred work coalesce
  /// into one drain. Only for events that defer every externally visible
  /// side effect into the drain (LinkTransmitter burst deliveries whose
  /// filter participates in fleet batching).
  EventId schedule_batchable_at(SimTime t, EventFn fn) {
    return queue_.push(t < now_ ? now_ : t, std::move(fn),
                       /*batchable=*/true);
  }

  /// Installs (or clears, with nullptr) the tick-batching drain hook.
  void set_tick_drain(TickDrain* drain) noexcept { drain_ = drain; }
  TickDrain* tick_drain() const noexcept { return drain_; }

  /// Schedules `fn` on the timer wheel after `delay` seconds. Fires at the
  /// first tick boundary at or after the nominal time. Prefer this over
  /// schedule() for per-flow timers that are frequently cancelled or
  /// rescheduled — all three operations are O(1) on the wheel.
  TimerId schedule_timer(SimTime delay, TimerFn fn) {
    return wheel_.schedule_at(delay > 0 ? now_ + delay : now_,
                              std::move(fn));
  }

  /// Schedules `fn` on the timer wheel at absolute time `t`.
  TimerId schedule_timer_at(SimTime t, TimerFn fn) {
    return wheel_.schedule_at(t < now_ ? now_ : t, std::move(fn));
  }

  /// Cancels a pending wheel timer; safe to call with stale ids.
  bool cancel_timer(TimerId id) { return wheel_.cancel(id); }

  /// Moves a pending wheel timer to absolute time `t`, keeping its id.
  /// Returns false when the id is stale (fire a fresh schedule_timer_at).
  bool reschedule_timer(TimerId id, SimTime t) {
    return wheel_.reschedule(id, t < now_ ? now_ : t);
  }

  /// Runs until both event sources drain or stop() is called. Returns the
  /// number of events processed.
  std::size_t run();

  /// Processes every event with time <= t, then advances the clock to t.
  std::size_t run_until(SimTime t);

  /// Requests that run()/run_until() return after the current event.
  void stop() noexcept { stopped_ = true; }

  bool pending() const noexcept {
    return !queue_.empty() || !wheel_.empty();
  }
  std::size_t pending_count() const noexcept {
    return queue_.size() + wheel_.size();
  }
  std::uint64_t events_processed() const noexcept { return processed_; }

  const TimerWheel& timer_wheel() const noexcept { return wheel_; }

 private:
  /// Time of the next event across both sources; pending() must be true.
  SimTime next_event_time();
  /// Pops and runs the next event; advances the clock.
  void step();
  /// Flushes the tick drain unless the next event is a same-time
  /// batchable queue event (which may keep accumulating deferred work).
  void maybe_drain();
  /// Unconditionally flushes any deferred tick work (loop boundaries).
  void flush_drain();

  EventQueue queue_;
  TimerWheel wheel_;
  SimTime now_ = 0.0;
  bool stopped_ = false;
  std::uint64_t processed_ = 0;
  TickDrain* drain_ = nullptr;
};

}  // namespace mafic::sim
