#include "sim/types.hpp"

namespace mafic::sim {

const char* to_string(Protocol p) noexcept {
  switch (p) {
    case Protocol::kTcp:
      return "tcp";
    case Protocol::kUdp:
      return "udp";
    case Protocol::kControl:
      return "control";
  }
  return "?";
}

const char* to_string(DropReason r) noexcept {
  switch (r) {
    case DropReason::kQueueOverflow:
      return "queue-overflow";
    case DropReason::kRedEarly:
      return "red-early";
    case DropReason::kDefenseProbe:
      return "defense-probe";
    case DropReason::kDefensePdt:
      return "defense-pdt";
    case DropReason::kDefenseBaseline:
      return "defense-baseline";
    case DropReason::kNoRoute:
      return "no-route";
    case DropReason::kTtlExpired:
      return "ttl-expired";
    case DropReason::kUnboundPort:
      return "unbound-port";
  }
  return "?";
}

}  // namespace mafic::sim
