#pragma once

/// \file connector.hpp
/// NS-2-style connector chain. Every element of a link datapath (taps,
/// defense filters, queues, transmitters) is a Connector that receives a
/// packet and either passes it to its target or consumes/drops it. The
/// paper attaches both its LogLogCounter and the MAFIC dropper "to the head
/// of each SimplexLink" — our SimplexLink::add_head_filter does exactly
/// that.

#include <functional>
#include <utility>
#include <vector>

#include "sim/packet.hpp"
#include "sim/types.hpp"

namespace mafic::sim {

/// Callback invoked whenever a component discards a packet.
using DropHandler =
    std::function<void(const Packet&, DropReason, NodeId where)>;

class Connector {
 public:
  virtual ~Connector() = default;

  virtual void recv(PacketPtr p) = 0;

  /// Burst delivery: `n` packets that crossed the upstream element
  /// back-to-back (see LinkTransmitter's burst mode). The span is ordered
  /// (pkts[0] departed first) and the receiver takes ownership of every
  /// packet in it; the pointer array itself stays with the caller. The
  /// default unbatches — elements that can exploit a whole span
  /// (batch-inspecting filters, routing nodes) override this.
  virtual void recv_burst(PacketPtr* pkts, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) recv(std::move(pkts[i]));
  }

  void set_target(Connector* t) noexcept { target_ = t; }
  Connector* target() const noexcept { return target_; }

 protected:
  /// Forwards to the chained target; silently consumes if unchained
  /// (which only happens in partially built test fixtures).
  void pass(PacketPtr p) {
    if (target_ != nullptr) target_->recv(std::move(p));
  }

  /// Forwards a whole span, keeping it a burst for downstream elements.
  void pass_burst(PacketPtr* pkts, std::size_t n) {
    if (target_ != nullptr) {
      target_->recv_burst(pkts, n);
    } else {
      for (std::size_t i = 0; i < n; ++i) pkts[i].reset();
    }
  }

 private:
  Connector* target_ = nullptr;
};

/// A pass-through observer: sees every packet, never drops.
class TapConnector final : public Connector {
 public:
  using Observer = std::function<void(const Packet&)>;

  explicit TapConnector(Observer obs) : observer_(std::move(obs)) {}

  void recv(PacketPtr p) override {
    if (observer_) observer_(*p);
    pass(std::move(p));
  }

  /// Observes every packet but keeps the span intact for downstream
  /// batch consumers (the default recv_burst would unbatch it).
  void recv_burst(PacketPtr* pkts, std::size_t n) override {
    if (observer_) {
      for (std::size_t i = 0; i < n; ++i) observer_(*pkts[i]);
    }
    pass_burst(pkts, n);
  }

 private:
  Observer observer_;
};

/// An in-path element that inspects each packet and decides forward/drop.
/// Defense policies (MAFIC, the proportionate baseline, the aggregate
/// limiter) derive from this.
class InlineFilter : public Connector {
 public:
  enum class Verdict : std::uint8_t { kForward, kDrop };

  struct Decision {
    Verdict verdict = Verdict::kForward;
    DropReason reason = DropReason::kDefenseProbe;

    static Decision forward() noexcept { return {Verdict::kForward, {}}; }
    static Decision drop(DropReason r) noexcept {
      return {Verdict::kDrop, r};
    }
  };

  void recv(PacketPtr p) final {
    const Decision d = inspect(*p);
    if (d.verdict == Verdict::kForward) {
      pass(std::move(p));
    } else if (drop_handler_) {
      drop_handler_(*p, d.reason, location_);
    }
  }

  /// Inspects the whole span (batch-capable filters overlap their table
  /// lookups here), compacts the survivors in place, and forwards them as
  /// one burst. Verdict-equivalent to receiving each packet via recv().
  /// Virtual (not final) so a fleet-batching filter can defer the whole
  /// span into the simulator's tick drain instead — such an override must
  /// eventually run finish_burst() with the same decisions this default
  /// would have produced.
  void recv_burst(PacketPtr* pkts, std::size_t n) override {
    decisions_.resize(n);
    inspect_burst(pkts, n, decisions_.data());
    finish_burst(pkts, n, decisions_.data());
  }

  void set_drop_handler(DropHandler h) { drop_handler_ = std::move(h); }
  void set_location(NodeId where) noexcept { location_ = where; }
  NodeId location() const noexcept { return location_; }

 protected:
  virtual Decision inspect(Packet& p) = 0;

  /// Applies per-packet decisions to a span: drops through the drop
  /// handler, compacts survivors in place, forwards them as one burst.
  /// The tail half of the default recv_burst, exposed so deferring
  /// overrides can complete a held span later (at the same sim time).
  void finish_burst(PacketPtr* pkts, std::size_t n,
                    const Decision* decisions) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (decisions[i].verdict == Verdict::kForward) {
        pkts[kept++] = std::move(pkts[i]);
      } else if (drop_handler_) {
        drop_handler_(*pkts[i], decisions[i].reason, location_);
      }
    }
    if (kept > 0) pass_burst(pkts, kept);
  }

  /// One decision per packet of the span, in order. The default inspects
  /// packet-by-packet; batch-capable filters (MaficFilter,
  /// ShardedMaficFilter) override to route the span into inspect_batch.
  virtual void inspect_burst(PacketPtr* pkts, std::size_t n,
                             Decision* out) {
    for (std::size_t i = 0; i < n; ++i) out[i] = inspect(*pkts[i]);
  }

 private:
  DropHandler drop_handler_;
  NodeId location_ = kInvalidNode;
  std::vector<Decision> decisions_;  ///< recv_burst scratch (reused)
};

}  // namespace mafic::sim
