#pragma once

/// \file connector.hpp
/// NS-2-style connector chain. Every element of a link datapath (taps,
/// defense filters, queues, transmitters) is a Connector that receives a
/// packet and either passes it to its target or consumes/drops it. The
/// paper attaches both its LogLogCounter and the MAFIC dropper "to the head
/// of each SimplexLink" — our SimplexLink::add_head_filter does exactly
/// that.

#include <functional>
#include <utility>

#include "sim/packet.hpp"
#include "sim/types.hpp"

namespace mafic::sim {

/// Callback invoked whenever a component discards a packet.
using DropHandler =
    std::function<void(const Packet&, DropReason, NodeId where)>;

class Connector {
 public:
  virtual ~Connector() = default;

  virtual void recv(PacketPtr p) = 0;

  void set_target(Connector* t) noexcept { target_ = t; }
  Connector* target() const noexcept { return target_; }

 protected:
  /// Forwards to the chained target; silently consumes if unchained
  /// (which only happens in partially built test fixtures).
  void pass(PacketPtr p) {
    if (target_ != nullptr) target_->recv(std::move(p));
  }

 private:
  Connector* target_ = nullptr;
};

/// A pass-through observer: sees every packet, never drops.
class TapConnector final : public Connector {
 public:
  using Observer = std::function<void(const Packet&)>;

  explicit TapConnector(Observer obs) : observer_(std::move(obs)) {}

  void recv(PacketPtr p) override {
    if (observer_) observer_(*p);
    pass(std::move(p));
  }

 private:
  Observer observer_;
};

/// An in-path element that inspects each packet and decides forward/drop.
/// Defense policies (MAFIC, the proportionate baseline, the aggregate
/// limiter) derive from this.
class InlineFilter : public Connector {
 public:
  enum class Verdict : std::uint8_t { kForward, kDrop };

  struct Decision {
    Verdict verdict = Verdict::kForward;
    DropReason reason = DropReason::kDefenseProbe;

    static Decision forward() noexcept { return {Verdict::kForward, {}}; }
    static Decision drop(DropReason r) noexcept {
      return {Verdict::kDrop, r};
    }
  };

  void recv(PacketPtr p) final {
    const Decision d = inspect(*p);
    if (d.verdict == Verdict::kForward) {
      pass(std::move(p));
    } else if (drop_handler_) {
      drop_handler_(*p, d.reason, location_);
    }
  }

  void set_drop_handler(DropHandler h) { drop_handler_ = std::move(h); }
  void set_location(NodeId where) noexcept { location_ = where; }
  NodeId location() const noexcept { return location_; }

 protected:
  virtual Decision inspect(Packet& p) = 0;

 private:
  DropHandler drop_handler_;
  NodeId location_ = kInvalidNode;
};

}  // namespace mafic::sim
