#pragma once

/// \file queue.hpp
/// Output queues feeding a link transmitter. DropTail matches what the
/// paper's NS-2 setup used on every link; RED is provided for ablations.
///
/// Interaction model (pull): the queue buffers every accepted packet and
/// invokes its ready-callback; the transmitter pulls with dequeue() when it
/// is idle and again each time a transmission completes.

#include <deque>
#include <functional>
#include <optional>

#include "sim/connector.hpp"
#include "sim/packet.hpp"
#include "util/rng.hpp"

namespace mafic::sim {

class PacketQueue : public Connector {
 public:
  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;
    std::uint64_t dequeued = 0;
    std::size_t peak_depth = 0;
  };

  /// Next buffered packet, or null when empty.
  virtual PacketPtr dequeue() = 0;

  /// Burst arrival: buffers the whole span (per-packet accept/drop rules
  /// unchanged) and signals the transmitter ONCE at the end, so an idle
  /// transmitter in burst mode pulls the span as one train instead of
  /// racing the first packet out alone.
  void recv_burst(PacketPtr* pkts, std::size_t n) final {
    defer_ready_ = true;
    for (std::size_t i = 0; i < n; ++i) recv(std::move(pkts[i]));
    defer_ready_ = false;
    notify_ready();
  }

  /// Drains up to `max` buffered packets into `out`, preserving FIFO
  /// order; returns how many were taken. The transmitter's burst mode
  /// pulls departures through this so back-to-back packets leave as one
  /// span. The default loops dequeue(), so every queue discipline keeps
  /// its per-packet accounting.
  virtual std::size_t dequeue_burst(PacketPtr* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      PacketPtr p = dequeue();
      if (!p) break;
      out[n++] = std::move(p);
    }
    return n;
  }

  virtual std::size_t depth_packets() const noexcept = 0;
  virtual std::size_t depth_bytes() const noexcept = 0;

  void set_drop_handler(DropHandler h) { drop_handler_ = std::move(h); }
  void set_location(NodeId where) noexcept { location_ = where; }

  /// Invoked after a packet is accepted; the transmitter hooks this.
  void set_ready_callback(std::function<void()> cb) {
    ready_ = std::move(cb);
  }

  const Stats& stats() const noexcept { return stats_; }

 protected:
  void report_drop(const Packet& p, DropReason r) {
    ++stats_.dropped;
    if (drop_handler_) drop_handler_(p, r, location_);
  }

  void notify_ready() {
    if (defer_ready_) return;  // one signal at the end of a burst
    if (ready_) ready_();
  }

  Stats stats_;

 private:
  DropHandler drop_handler_;
  std::function<void()> ready_;
  NodeId location_ = kInvalidNode;
  bool defer_ready_ = false;
};

/// Classic drop-tail FIFO bounded in packets (and optionally bytes).
class DropTailQueue final : public PacketQueue {
 public:
  struct Config {
    std::size_t capacity_packets = 64;
    std::size_t capacity_bytes = 0;  ///< 0 = unlimited
  };

  DropTailQueue() : DropTailQueue(Config{}) {}
  explicit DropTailQueue(Config cfg) : cfg_(cfg) {}

  void recv(PacketPtr p) override;
  PacketPtr dequeue() override;

  std::size_t depth_packets() const noexcept override { return q_.size(); }
  std::size_t depth_bytes() const noexcept override { return bytes_; }

 private:
  Config cfg_;
  std::deque<PacketPtr> q_;
  std::size_t bytes_ = 0;
};

/// Random Early Detection (Floyd/Jacobson) with EWMA queue averaging.
/// Used by ablation experiments; defaults follow common ns-2 values.
class RedQueue final : public PacketQueue {
 public:
  struct Config {
    std::size_t capacity_packets = 64;
    double min_threshold = 5;   ///< packets
    double max_threshold = 15;  ///< packets
    double max_drop_probability = 0.1;
    double weight = 0.002;  ///< EWMA weight for the average depth
  };

  explicit RedQueue(util::Rng rng) : RedQueue(rng, Config{}) {}
  RedQueue(util::Rng rng, Config cfg) : cfg_(cfg), rng_(rng) {}

  void recv(PacketPtr p) override;
  PacketPtr dequeue() override;

  std::size_t depth_packets() const noexcept override { return q_.size(); }
  std::size_t depth_bytes() const noexcept override { return bytes_; }
  double average_depth() const noexcept { return avg_; }

 private:
  Config cfg_;
  util::Rng rng_;
  std::deque<PacketPtr> q_;
  std::size_t bytes_ = 0;
  double avg_ = 0.0;
  std::uint64_t since_last_drop_ = 0;
};

}  // namespace mafic::sim
