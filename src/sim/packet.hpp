#pragma once

/// \file packet.hpp
/// Simulated packets. One flat struct carries the union of fields the
/// library needs (IP 4-tuple label, TCP sequence/ACK/flags, timestamp
/// option); unused fields stay zero. Packets are heap objects recycled
/// through a freelist to keep the event loop allocation-free in steady
/// state.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "sim/types.hpp"
#include "util/hash.hpp"
#include "util/ip.hpp"

namespace mafic::sim {

/// The 4-tuple flow label the paper uses to mark each flow in the SFT, NFT
/// and PDT (section III-B). Source addresses may be spoofed; the label is
/// still what identifies "a flow" to the defense.
struct FlowLabel {
  util::Addr src = util::kInvalidAddr;
  util::Addr dst = util::kInvalidAddr;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;

  friend bool operator==(const FlowLabel&, const FlowLabel&) = default;

  /// Label of the reverse direction (used to craft probe ACKs).
  FlowLabel reversed() const noexcept { return {dst, src, dport, sport}; }
};

/// 64-bit hash of the label — this is what the flow tables store instead of
/// the label itself (paper section III-B, "we store only the output of a
/// hash function").
constexpr std::uint64_t hash_label(const FlowLabel& l) noexcept {
  std::uint64_t h = util::mix64((static_cast<std::uint64_t>(l.src) << 32) |
                                static_cast<std::uint64_t>(l.dst));
  return util::hash_combine(
      h, (static_cast<std::uint64_t>(l.sport) << 16) | l.dport);
}

std::string format_label(const FlowLabel& l);

/// TCP header flags (bitmask).
namespace tcp_flags {
constexpr std::uint8_t kSyn = 0x1;
constexpr std::uint8_t kAck = 0x2;
constexpr std::uint8_t kFin = 0x4;
constexpr std::uint8_t kRst = 0x8;
}  // namespace tcp_flags

struct Packet {
  std::uint64_t uid = 0;  ///< globally unique per simulation (sketch input)
  FlowLabel label;
  Protocol proto = Protocol::kUdp;
  std::uint32_t size_bytes = 0;

  // --- TCP-ish fields (packet-granularity sequence space, NS-2 style) ---
  std::uint32_t seq = 0;
  std::uint32_t ack_no = 0;
  std::uint8_t flags = 0;

  // --- Timestamp option (TSval / TSecr), used for router RTT estimation ---
  double tsval = 0.0;
  double tsecr = 0.0;

  double sent_time = 0.0;  ///< origination time (tracing)
  std::uint8_t ttl = 64;

  /// True for defense-crafted probe duplicate ACKs (tracing/overhead
  /// accounting only; endpoints treat probes as ordinary ACKs).
  bool probe = false;

  /// Metrics side channel: which traffic source emitted this packet. The
  /// defense must never read it; the ledger keys ground truth off it.
  FlowId flow_id = kUntrackedFlow;

  bool has_flag(std::uint8_t f) const noexcept { return (flags & f) != 0; }
  bool is_ack_only(std::uint32_t data_size = 0) const noexcept {
    return proto == Protocol::kTcp && has_flag(tcp_flags::kAck) &&
           size_bytes <= data_size;
  }

  // Freelist recycling: Packet is allocated/released on the hot path for
  // every simulated packet; the freelist removes malloc/free churn.
  static void* operator new(std::size_t size);
  static void operator delete(void* p) noexcept;
  static std::size_t freelist_size() noexcept;
  static void trim_freelist() noexcept;
};

using PacketPtr = std::unique_ptr<Packet>;

/// Stamps fresh packets with unique uids. One factory per simulation.
class PacketFactory {
 public:
  PacketPtr make() {
    auto p = std::make_unique<Packet>();
    p->uid = next_uid_++;
    return p;
  }

  /// Copy with a fresh uid (retransmissions are distinct packets on the
  /// wire, which matters for distinct-packet counting sketches).
  PacketPtr clone(const Packet& original) {
    auto p = std::make_unique<Packet>(original);
    p->uid = next_uid_++;
    return p;
  }

  std::uint64_t issued() const noexcept { return next_uid_ - 1; }

 private:
  std::uint64_t next_uid_ = 1;
};

}  // namespace mafic::sim
