#include "sim/node.hpp"

namespace mafic::sim {

Node::Node(Simulator* sim, NodeId id, util::Addr addr, NodeKind kind)
    : sim_(sim), id_(id), addr_(addr), kind_(kind), entry_(this) {
  (void)sim_;  // reserved for future use (e.g. processing delay)
}

void Node::bind_port(std::uint16_t port, PacketHandler* handler) {
  ports_[port] = handler;
}

void Node::unbind_port(std::uint16_t port) { ports_.erase(port); }

void Node::add_route(util::Addr dst, SimplexLink* out) {
  routes_[dst] = out;
}

SimplexLink* Node::route_for(util::Addr dst) const noexcept {
  const auto it = routes_.find(dst);
  if (it != routes_.end()) return it->second;
  return default_route_;
}

void Node::send(PacketPtr p) {
  ++stats_.originated;
  if (p->label.dst == addr_) {  // loopback
    deliver_local(std::move(p));
    return;
  }
  SimplexLink* out = route_for(p->label.dst);
  if (out == nullptr) {
    ++stats_.dropped_no_route;
    drop(*p, DropReason::kNoRoute);
    return;
  }
  out->entry()->recv(std::move(p));
}

void Node::handle_packet(PacketPtr p) {
  if (p->label.dst == addr_) {
    deliver_local(std::move(p));
    return;
  }
  // Forwarding path.
  if (p->ttl == 0 || --p->ttl == 0) {
    ++stats_.dropped_ttl;
    drop(*p, DropReason::kTtlExpired);
    return;
  }
  SimplexLink* out = route_for(p->label.dst);
  if (out == nullptr) {
    ++stats_.dropped_no_route;
    drop(*p, DropReason::kNoRoute);
    return;
  }
  ++stats_.forwarded;
  out->entry()->recv(std::move(p));
}

void Node::handle_burst(PacketPtr* pkts, std::size_t n) {
  // Forward maximal contiguous same-next-hop runs as one span; local
  // deliveries and drops are handled in place and end the current run.
  std::size_t run_start = 0;
  SimplexLink* run_link = nullptr;
  const auto flush = [&](std::size_t end) {
    if (run_link != nullptr && end > run_start) {
      run_link->entry()->recv_burst(pkts + run_start, end - run_start);
    }
    run_link = nullptr;
  };

  for (std::size_t i = 0; i < n; ++i) {
    Packet& p = *pkts[i];
    SimplexLink* out = nullptr;
    if (p.label.dst != addr_) {
      if (p.ttl == 0 || --p.ttl == 0) {
        flush(i);
        ++stats_.dropped_ttl;
        drop(p, DropReason::kTtlExpired);
        pkts[i].reset();
        continue;
      }
      out = route_for(p.label.dst);
      if (out == nullptr) {
        flush(i);
        ++stats_.dropped_no_route;
        drop(p, DropReason::kNoRoute);
        pkts[i].reset();
        continue;
      }
    }
    if (out == nullptr) {  // local delivery
      flush(i);
      deliver_local(std::move(pkts[i]));
      continue;
    }
    ++stats_.forwarded;
    if (out != run_link) {
      flush(i);
      run_link = out;
      run_start = i;
    }
  }
  flush(n);
}

void Node::deliver_local(PacketPtr p) {
  const auto it = ports_.find(p->label.dport);
  if (it == ports_.end()) {
    // Expected for e.g. probe ACKs aimed at a spoofed third party: the
    // host exists but runs no agent for that connection.
    ++stats_.dropped_unbound;
    drop(*p, DropReason::kUnboundPort);
    return;
  }
  ++stats_.delivered;
  it->second->recv(std::move(p));
}

void Node::drop(const Packet& p, DropReason r) {
  if (drop_handler_) drop_handler_(p, r, id_);
}

}  // namespace mafic::sim
