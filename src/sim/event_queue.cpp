#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace mafic::sim {

EventId EventQueue::push(SimTime t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Item{t, id, std::move(fn)});
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return live_.erase(id) > 0; }

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !live_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->drop_dead_head();
  assert(!heap_.empty());
  return heap_.top().time;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_head();
  assert(!heap_.empty());
  const Item& top = heap_.top();
  Popped out{top.time, top.id, std::move(top.fn)};
  live_.erase(top.id);
  heap_.pop();
  return out;
}

void EventQueue::clear() {
  heap_ = {};
  live_.clear();
}

}  // namespace mafic::sim
