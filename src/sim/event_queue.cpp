#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mafic::sim {

namespace {
/// Below this many entries the dead weight is noise; skip compaction.
constexpr std::size_t kCompactionFloor = 64;

struct ItemGreater {
  template <typename T>
  bool operator()(const T& a, const T& b) const noexcept {
    return a > b;
  }
};
}  // namespace

EventId EventQueue::push(SimTime t, EventFn fn, bool batchable) {
  const EventId id = next_id_++;
  heap_.push_back(Item{t, id, std::move(fn), batchable});
  std::push_heap(heap_.begin(), heap_.end(), ItemGreater{});
  live_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  const bool was_live = live_.erase(id) > 0;
  if (was_live) maybe_compact();
  return was_live;
}

void EventQueue::maybe_compact() {
  if (heap_.size() >= kCompactionFloor && heap_.size() > 2 * live_.size()) {
    compact();
  }
}

void EventQueue::compact() {
  std::erase_if(heap_,
                [this](const Item& it) { return !live_.contains(it.id); });
  std::make_heap(heap_.begin(), heap_.end(), ItemGreater{});
  heap_.shrink_to_fit();
  ++compactions_;
}

void EventQueue::drop_dead_head() {
  while (!heap_.empty() && !live_.contains(heap_.front().id)) {
    std::pop_heap(heap_.begin(), heap_.end(), ItemGreater{});
    heap_.pop_back();
  }
}

SimTime EventQueue::next_time() {
  drop_dead_head();
  assert(!heap_.empty());
  return heap_.front().time;
}

bool EventQueue::next_is_batchable() {
  drop_dead_head();
  assert(!heap_.empty());
  return heap_.front().batchable;
}

EventQueue::Popped EventQueue::pop() {
  drop_dead_head();
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), ItemGreater{});
  Item& top = heap_.back();
  Popped out{top.time, top.id, std::move(top.fn)};
  live_.erase(top.id);
  heap_.pop_back();
  return out;
}

void EventQueue::clear() {
  heap_.clear();
  heap_.shrink_to_fit();
  live_.clear();
}

}  // namespace mafic::sim
