#include "sim/simulator.hpp"

namespace mafic::sim {

SimTime Simulator::next_event_time() {
  if (queue_.empty()) return wheel_.next_time();
  if (wheel_.empty()) return queue_.next_time();
  const SimTime tq = queue_.next_time();
  const SimTime tw = wheel_.next_time();
  return tq <= tw ? tq : tw;
}

void Simulator::step() {
  // Queue events win ties so exact-time events (packet arrivals) precede
  // quantized timers that landed on the same instant.
  const bool from_queue =
      !queue_.empty() &&
      (wheel_.empty() || queue_.next_time() <= wheel_.next_time());
  if (from_queue) {
    auto ev = queue_.pop();
    if (ev.time > now_) now_ = ev.time;
    ev.fn();
  } else {
    auto timer = wheel_.pop();
    if (timer.time > now_) now_ = timer.time;
    timer.fn();
  }
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (pending() && !stopped_) {
    step();
    ++n;
  }
  processed_ += n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  stopped_ = false;
  std::size_t n = 0;
  while (pending() && !stopped_ && next_event_time() <= t) {
    step();
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  processed_ += n;
  return n;
}

}  // namespace mafic::sim
