#include "sim/simulator.hpp"

namespace mafic::sim {

SimTime Simulator::next_event_time() {
  if (queue_.empty()) return wheel_.next_time();
  if (wheel_.empty()) return queue_.next_time();
  const SimTime tq = queue_.next_time();
  const SimTime tw = wheel_.next_time();
  return tq <= tw ? tq : tw;
}

void Simulator::step() {
  // Queue events win ties so exact-time events (packet arrivals) precede
  // quantized timers that landed on the same instant.
  const bool from_queue =
      !queue_.empty() &&
      (wheel_.empty() || queue_.next_time() <= wheel_.next_time());
  if (from_queue) {
    auto ev = queue_.pop();
    if (ev.time > now_) now_ = ev.time;
    ev.fn();
  } else {
    auto timer = wheel_.pop();
    if (timer.time > now_) now_ = timer.time;
    timer.fn();
  }
}

void Simulator::maybe_drain() {
  if (drain_ == nullptr || !drain_->pending()) return;
  // Deferred work was registered at now_. It may keep accumulating only
  // while the very next thing to run is another batchable queue event at
  // this same instant; any other event (foreign queue event, wheel timer,
  // clock advance) must observe the deferred effects first, exactly as
  // the serial schedule would have applied them.
  const bool coalesce =
      !queue_.empty() && queue_.next_time() <= now_ &&
      (wheel_.empty() || queue_.next_time() <= wheel_.next_time()) &&
      queue_.next_is_batchable();
  if (!coalesce) drain_->drain();
}

void Simulator::flush_drain() {
  // Loop: a drain that forwards packets may (in zero-delay topologies)
  // re-register deferred work at the same instant.
  while (drain_ != nullptr && drain_->pending()) drain_->drain();
}

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    maybe_drain();  // may schedule new events; recheck pending after
    if (!pending()) break;
    step();
    ++n;
  }
  flush_drain();  // deferred work survives stop(); the clock has not moved
  processed_ += n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!stopped_) {
    maybe_drain();
    if (!pending() || next_event_time() > t) break;
    step();
    ++n;
  }
  flush_drain();
  if (!stopped_ && now_ < t) now_ = t;
  processed_ += n;
  return n;
}

}  // namespace mafic::sim
