#include "sim/simulator.hpp"

namespace mafic::sim {

std::size_t Simulator::run() {
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++n;
  }
  processed_ += n;
  return n;
}

std::size_t Simulator::run_until(SimTime t) {
  stopped_ = false;
  std::size_t n = 0;
  while (!queue_.empty() && !stopped_ && queue_.next_time() <= t) {
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.fn();
    ++n;
  }
  if (!stopped_ && now_ < t) now_ = t;
  processed_ += n;
  return n;
}

}  // namespace mafic::sim
