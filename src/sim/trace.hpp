#pragma once

/// \file trace.hpp
/// NS-2-style packet event tracing. A TraceWriter renders one text line per
/// event ('+' enqueue at a link, 'r' received across it, 'd' dropped),
/// which is the format generations of NS-2 tooling parsed:
///
///   + 2.701234 3 7 tcp 1000 ---A 12 172.16.0.5:5000 172.17.0.1:2042 417 88213
///   d 2.701240 3 7 tcp 1000 ---A 12 172.16.0.5:5000 172.17.0.1:2042 417 88213 defense-probe
///
/// LinkTracer instruments one SimplexLink; trace_drop_handler() adapts a
/// TraceWriter into a DropHandler that can be composed with the metrics
/// ledger's handler.

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "sim/connector.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"

namespace mafic::sim {

enum class TraceEvent : char {
  kEnqueue = '+',  ///< packet entered the link's head
  kReceive = 'r',  ///< packet delivered across the link
  kDrop = 'd',     ///< packet discarded
};

class TraceWriter {
 public:
  /// Writes to `out`, which must outlive the writer (typically an
  /// std::ofstream owned by the experiment driver).
  explicit TraceWriter(std::ostream* out) : out_(out) {}

  void record(TraceEvent ev, double time, NodeId from, NodeId to,
              const Packet& p, const char* annotation = nullptr);

  /// Limits output to the first `n` lines (0 = unlimited); further events
  /// are counted but not written. Keeps giant simulations traceable.
  void set_line_limit(std::uint64_t n) noexcept { line_limit_ = n; }

  std::uint64_t events_recorded() const noexcept { return events_; }
  std::uint64_t lines_written() const noexcept { return lines_; }

 private:
  std::ostream* out_;
  std::uint64_t events_ = 0;
  std::uint64_t lines_ = 0;
  std::uint64_t line_limit_ = 0;
};

/// Adapts a TraceWriter into a DropHandler ('d' records). Compose with
/// other handlers by invoking both from a wrapping lambda.
DropHandler trace_drop_handler(TraceWriter* writer, Simulator* sim);

/// Installs '+' (head) and 'r' (post-transmission) taps on a link.
class LinkTracer {
 public:
  LinkTracer(Simulator* sim, SimplexLink* link, TraceWriter* writer);
};

}  // namespace mafic::sim
