#pragma once

/// \file monitor.hpp
/// Passive measurement: a LinkMonitor installs a tap at the head of a link
/// and records packet/byte counts, per-flow totals, and a binned arrival
/// series (used for Fig. 4(b)'s bandwidth-vs-time plot and for the traffic
/// reduction metric).

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/link.hpp"
#include "util/time_series.hpp"

namespace mafic::sim {

class LinkMonitor {
 public:
  struct FlowCounters {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
  };

  /// Installs the monitor's tap at the tail of `link`'s head chain, i.e.
  /// it observes packets that survived any previously installed filters.
  /// `sim` provides timestamps; `bin_width` sizes the arrival series bins.
  LinkMonitor(Simulator* sim, SimplexLink* link, double bin_width = 0.05);

  std::uint64_t packets() const noexcept { return packets_; }
  std::uint64_t bytes() const noexcept { return bytes_; }

  const util::BinnedSeries& byte_series() const noexcept { return series_; }
  const util::BinnedSeries& packet_series() const noexcept {
    return packet_series_;
  }

  /// Counters of one flow (zeros when the monitor never saw it). The
  /// per-flow storage is an unordered map for O(1) per-packet updates;
  /// it is deliberately NOT exposed by reference — iteration over it
  /// would leak hash-bucket order into whatever the caller emits. Use
  /// per_flow_sorted() to walk all flows.
  FlowCounters per_flow(FlowId id) const {
    const auto it = flows_.find(id);
    return it == flows_.end() ? FlowCounters{} : it->second;
  }

  /// All observed flows in ascending FlowId order — the sort-before-emit
  /// accessor for reports and summaries (deterministic regardless of the
  /// storage map's bucket layout).
  std::vector<std::pair<FlowId, FlowCounters>> per_flow_sorted() const;

  std::size_t flow_count() const noexcept { return flows_.size(); }

 private:
  void observe(const Packet& p);

  Simulator* sim_;
  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  util::BinnedSeries series_;
  util::BinnedSeries packet_series_;
  std::unordered_map<FlowId, FlowCounters> flows_;
};

}  // namespace mafic::sim
