#pragma once

/// \file link.hpp
/// A simplex link: head connector chain (taps, defense filters), a bounded
/// output queue, a serializing transmitter, and propagation delay. Mirrors
/// the NS-2 SimplexLink structure the paper instruments — "a subclass of
/// Connector ... is added to the head of each SimplexLink" (section IV).

#include <memory>
#include <vector>

#include "sim/connector.hpp"
#include "sim/queue.hpp"
#include "sim/simulator.hpp"

namespace mafic::sim {

/// Serializes packets onto the wire at the configured bandwidth, then
/// delivers them to the endpoint after the propagation delay. Pulls from
/// its PacketQueue.
///
/// Burst mode (`burst_packets > 1`): up to that many queued packets are
/// pulled and serialized back-to-back as one train, and the whole span is
/// delivered to the endpoint in ONE event at last-bit time + propagation
/// delay — so downstream batch consumers (Node routing, inspect_batch
/// filters) see real bursts. Per-packet fields (uid, timestamps, order)
/// are untouched; the only semantic difference from per-packet mode is
/// that the first packets of a train arrive with it instead of up to
/// (burst-1) transmission times earlier. `burst_packets == 1` preserves
/// the original per-packet event sequence exactly.
class LinkTransmitter final : public Connector {
 public:
  LinkTransmitter(Simulator* sim, double bandwidth_bps, double delay_s,
                  std::size_t burst_packets = 1)
      : sim_(sim),
        bandwidth_bps_(bandwidth_bps),
        delay_s_(delay_s),
        burst_(burst_packets > 1 ? burst_packets : 1) {}

  /// Direct injection (used when there is no queue, e.g. unit tests).
  void recv(PacketPtr p) override;

  void attach_queue(PacketQueue* q);

  bool idle() const noexcept { return !busy_; }
  double bandwidth_bps() const noexcept { return bandwidth_bps_; }
  double delay_s() const noexcept { return delay_s_; }
  std::size_t burst_packets() const noexcept { return burst_; }

  /// Marks this transmitter's burst deliveries as tick-batchable: the
  /// delivery event is scheduled with Simulator::schedule_batchable_at so
  /// a fleet scheduler can coalesce consecutive same-instant deliveries
  /// into one drain. Only valid when the receiving chain defers all its
  /// side effects into the simulator's TickDrain (a fleet-mode
  /// ShardedMaficFilter at the tail); burst mode only.
  void set_batchable_delivery(bool b) noexcept { batchable_ = b; }
  bool batchable_delivery() const noexcept { return batchable_; }
  std::uint64_t packets_delivered() const noexcept { return delivered_; }
  std::uint64_t bytes_delivered() const noexcept { return bytes_; }
  std::uint64_t bursts_delivered() const noexcept { return bursts_; }

 private:
  void try_pull();
  void transmit(PacketPtr p);
  /// Serializes train_ onto the wire as one back-to-back departure.
  void transmit_train();

  Simulator* sim_;
  double bandwidth_bps_;
  double delay_s_;
  std::size_t burst_;
  PacketQueue* queue_ = nullptr;
  bool busy_ = false;
  bool batchable_ = false;
  std::uint64_t delivered_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t bursts_ = 0;
  std::vector<PacketPtr> train_;  ///< burst-mode staging
  /// Buffers returned by delivered trains; try_pull recycles them so
  /// steady-state bursting performs no per-train allocation.
  std::vector<std::vector<PacketPtr>> spare_trains_;
};

/// One-directional link between two nodes.
class SimplexLink {
 public:
  struct Config {
    double bandwidth_bps = 10e6;
    double delay_s = 0.010;
    std::size_t queue_capacity_packets = 64;
    /// Departure coalescing: the transmitter serializes up to this many
    /// queued packets back-to-back and delivers them as one span (see
    /// LinkTransmitter). 1 = per-packet delivery (legacy semantics).
    std::size_t burst_packets = 1;
  };

  SimplexLink(Simulator* sim, NodeId from, NodeId to, Config cfg);

  /// First connector of the datapath; the upstream node sends here.
  Connector* entry() noexcept;

  /// Where delivered packets go (the downstream node's ingress).
  void set_endpoint(Connector* ep) noexcept;

  /// Inserts a connector at the current tail of the head chain, i.e. it
  /// sees packets after previously installed head filters and before the
  /// queue. Ownership transfers to the link.
  void add_head_filter(std::unique_ptr<Connector> c);

  /// Inserts a connector after the transmitter (post-queue, post-drop),
  /// before delivery to the endpoint: it sees what actually crossed the
  /// link, including whole bursts in burst mode. An InlineFilter here is
  /// the receiving-side filtering point (location = to(), wired to the
  /// drop handler) — where a batch-consuming ATR filter sits. Ownership
  /// transfers to the link.
  void add_tail_tap(std::unique_ptr<Connector> c);

  /// Installs the drop handler on the queue (and remembers it so future
  /// filters can reuse it).
  void set_drop_handler(DropHandler h);

  NodeId from() const noexcept { return from_; }
  NodeId to() const noexcept { return to_; }
  const Config& config() const noexcept { return cfg_; }
  PacketQueue& queue() noexcept { return *queue_; }
  const PacketQueue& queue() const noexcept { return *queue_; }
  LinkTransmitter& transmitter() noexcept { return *tx_; }
  const LinkTransmitter& transmitter() const noexcept { return *tx_; }
  const DropHandler& drop_handler() const noexcept { return drop_handler_; }

 private:
  void rechain();

  NodeId from_;
  NodeId to_;
  Config cfg_;
  std::vector<std::unique_ptr<Connector>> heads_;
  std::vector<std::unique_ptr<Connector>> tails_;
  std::unique_ptr<PacketQueue> queue_;
  std::unique_ptr<LinkTransmitter> tx_;
  Connector* endpoint_ = nullptr;
  DropHandler drop_handler_;
};

}  // namespace mafic::sim
