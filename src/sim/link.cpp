#include "sim/link.hpp"

#include <cassert>
#include <utility>

namespace mafic::sim {

void LinkTransmitter::recv(PacketPtr p) {
  if (burst_ > 1 && !busy_ && train_.empty()) {
    train_.push_back(std::move(p));
    transmit_train();
    return;
  }
  // Legacy per-packet path: burst_ <= 1, or (misuse) direct injection
  // while a train is in flight — the latter asserts in debug and in
  // release is mistimed exactly like the pre-burst transmitter under
  // the same misuse, but never touches train_, so nothing is lost.
  transmit(std::move(p));
}

void LinkTransmitter::attach_queue(PacketQueue* q) {
  queue_ = q;
  queue_->set_ready_callback([this] { try_pull(); });
}

void LinkTransmitter::try_pull() {
  if (busy_ || queue_ == nullptr) return;
  if (burst_ > 1) {
    // Each delivered train hands its buffer to the propagation event;
    // recycled buffers come back through spare_trains_, so steady-state
    // bursting reuses capacity instead of allocating per train.
    if (train_.capacity() < burst_ && !spare_trains_.empty()) {
      train_ = std::move(spare_trains_.back());
      spare_trains_.pop_back();
    }
    train_.resize(burst_);
    const std::size_t n = queue_->dequeue_burst(train_.data(), burst_);
    train_.resize(n);
    if (n > 0) transmit_train();
    return;
  }
  if (PacketPtr p = queue_->dequeue()) transmit(std::move(p));
}

void LinkTransmitter::transmit(PacketPtr p) {
  assert(!busy_ && "transmitter received a packet while busy");
  busy_ = true;
  const double tx_time =
      static_cast<double>(p->size_bytes) * 8.0 / bandwidth_bps_;
  sim_->schedule(tx_time, [this, pkt = std::move(p)]() mutable {
    busy_ = false;
    ++delivered_;
    bytes_ += pkt->size_bytes;
    // Propagation: multiple packets may be in flight simultaneously.
    sim_->schedule(delay_s_, [this, pkt2 = std::move(pkt)]() mutable {
      pass(std::move(pkt2));
    });
    try_pull();
  });
}

void LinkTransmitter::transmit_train() {
  assert(!busy_ && !train_.empty());
  busy_ = true;
  std::uint64_t train_bytes = 0;
  for (const PacketPtr& p : train_) train_bytes += p->size_bytes;
  const double tx_time =
      static_cast<double>(train_bytes) * 8.0 / bandwidth_bps_;
  sim_->schedule(tx_time, [this, train_bytes] {
    busy_ = false;
    delivered_ += train_.size();
    bytes_ += train_bytes;
    ++bursts_;
    // Hand the span off to the propagation event before pulling the next
    // train (the pull refills train_); the buffer returns to the spare
    // pool after delivery. Batchable deliveries let the fleet tick drain
    // coalesce consecutive same-instant spans (the tail filter defers).
    auto deliver = [this, span = std::move(train_)]() mutable {
      pass_burst(span.data(), span.size());
      span.clear();
      spare_trains_.push_back(std::move(span));
    };
    if (batchable_) {
      sim_->schedule_batchable_at(sim_->now() + delay_s_,
                                  std::move(deliver));
    } else {
      sim_->schedule(delay_s_, std::move(deliver));
    }
    train_.clear();
    try_pull();
  });
}

SimplexLink::SimplexLink(Simulator* sim, NodeId from, NodeId to, Config cfg)
    : from_(from),
      to_(to),
      cfg_(cfg),
      queue_(std::make_unique<DropTailQueue>(
          DropTailQueue::Config{cfg.queue_capacity_packets, 0})),
      tx_(std::make_unique<LinkTransmitter>(sim, cfg.bandwidth_bps,
                                            cfg.delay_s,
                                            cfg.burst_packets)) {
  queue_->set_location(from);
  tx_->attach_queue(queue_.get());
  rechain();
}

Connector* SimplexLink::entry() noexcept {
  return heads_.empty() ? static_cast<Connector*>(queue_.get())
                        : heads_.front().get();
}

void SimplexLink::set_endpoint(Connector* ep) noexcept {
  endpoint_ = ep;
  rechain();
}

void SimplexLink::add_head_filter(std::unique_ptr<Connector> c) {
  if (auto* filter = dynamic_cast<InlineFilter*>(c.get())) {
    filter->set_location(from_);
    if (drop_handler_) filter->set_drop_handler(drop_handler_);
  }
  heads_.push_back(std::move(c));
  rechain();
}

void SimplexLink::add_tail_tap(std::unique_ptr<Connector> c) {
  if (auto* filter = dynamic_cast<InlineFilter*>(c.get())) {
    filter->set_location(to_);  // receiving-side filtering point
    if (drop_handler_) filter->set_drop_handler(drop_handler_);
  }
  tails_.push_back(std::move(c));
  rechain();
}

void SimplexLink::set_drop_handler(DropHandler h) {
  drop_handler_ = std::move(h);
  queue_->set_drop_handler(drop_handler_);
  for (auto& c : heads_) {
    if (auto* filter = dynamic_cast<InlineFilter*>(c.get())) {
      filter->set_drop_handler(drop_handler_);
    }
  }
  for (auto& c : tails_) {
    if (auto* filter = dynamic_cast<InlineFilter*>(c.get())) {
      filter->set_drop_handler(drop_handler_);
    }
  }
}

void SimplexLink::rechain() {
  for (std::size_t i = 0; i + 1 < heads_.size(); ++i) {
    heads_[i]->set_target(heads_[i + 1].get());
  }
  if (!heads_.empty()) heads_.back()->set_target(queue_.get());
  // The queue's "target" is informational; the transmitter pulls from it.
  queue_->set_target(tx_.get());
  // Post-transmission: tx -> tail taps -> endpoint.
  for (std::size_t i = 0; i + 1 < tails_.size(); ++i) {
    tails_[i]->set_target(tails_[i + 1].get());
  }
  if (tails_.empty()) {
    tx_->set_target(endpoint_);
  } else {
    tx_->set_target(tails_.front().get());
    tails_.back()->set_target(endpoint_);
  }
}

}  // namespace mafic::sim
